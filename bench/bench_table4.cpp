/// \file bench_table4.cpp
/// Table IV — "Example of port field and labeling": exact/range port
/// matching in the register file and the paper's label ordering (exact
/// first, then tightest range): for destination port 7812 the labels
/// must come out B, C, A.
#include "alg/port_registers.hpp"
#include "bench_util.hpp"

using namespace pclass;
using namespace pclass::bench;

int main() {
  header("Table IV — port field rules and labeling",
         "the paper's 3-register example, executed on the register-file "
         "model");

  alg::PortRegisterFile regs("dst_port", {});
  hw::CommandLog log;
  struct Example {
    char name;
    u16 lo, hi;
    u16 label;
  };
  // The paper writes the wildcard row as [65355 - 0]; high/low order and
  // the obvious 65535 typo normalized.
  const Example rows[] = {
      {'A', 0, 65535, 0}, {'B', 7812, 7812, 1}, {'C', 7810, 7820, 2}};
  TextTable t({"port field rule [hi - lo]", "label", "match method"});
  for (const Example& e : rows) {
    regs.insert(ruleset::PortRange::make(e.lo, e.hi), Label{e.label}, log);
    t.add_row({"[" + std::to_string(e.hi) + " - " + std::to_string(e.lo) +
                   "]",
               std::string(1, e.name),
               e.lo == e.hi ? "Exact matching" : "Range matching"});
  }
  t.print(std::cout);

  auto show = [&](u16 port) {
    hw::CycleRecorder rec;
    const auto labels = regs.lookup(port, &rec);
    std::cout << "  lookup(" << port << ") -> ";
    for (Label l : labels) {
      std::cout << rows[l.value].name << ' ';
    }
    std::cout << "(" << rec.cycles() << " cycles, "
              << rec.memory_accesses() << " memory accesses)\n";
  };
  std::cout << "\nlabel order produced by the parallel compare network:\n";
  show(7812);  // paper: B, C, A
  show(7815);  // C, A
  show(80);    // A
  std::cout << "\npaper: \"the labels of Port lookup will be ordered as "
               "B, C and A\" for port 7812 — reproduced.\n";
  return 0;
}
