/// \file bench_batch_ablation.cpp
/// Phase-2 batch engine ablation: scalar vs phase2 (memo off) vs phase2
/// with the per-batch memo vs the persistent snapshot-keyed memo at
/// ways=1 (direct-mapped) and ways=2 (set-associative) vs the adaptive
/// cost-model path controller, across batch sizes, on three workload
/// shapes —
///
///   * fw-like      wildcard-heavy lists, heavy combination reuse
///                  (the probe memo's home turf);
///   * zipf-flows   flow-structured ACL traffic (combine-level dedup +
///                  cross-batch flow locality: the persistent memo's
///                  best case vs the per-batch reset);
///   * cache-thrash every packet a distinct flow at maximal repeat
///                  distance (traffic engineered against batching; the
///                  controller must degrade to ~scalar cost).
///
/// For each point: single-threaded host throughput over the whole
/// trace, modeled mean/p99 lookup cycles (exact percentiles, not the
/// histogram buckets), probe-memo hits and invalidations. The
/// memo/batch vs memo/persist rows are the per-batch-reset vs
/// snapshot-keyed lifetime A/B — on byte-identical workloads when
/// --load-workloads replays scenario-saved PCR1/PCT1 files.
///
/// Correctness gate: every phase-2 verdict and per-packet access count
/// is compared against the scalar path; any mismatch exits nonzero.
///
/// --telemetry-gate runs the observability overhead gate instead of the
/// ablation matrix: the dataplane engine on a pinned single-worker
/// phase-2 config (flow cache off, so every packet takes the full
/// lookup), telemetry fully off vs live counters + trace ring +
/// background sampler on, interleaved best-of-N on the fw-like and
/// zipf shapes. Exits nonzero when the on-leg costs more than 3% Mpps —
/// the "near-zero-cost" contract CI enforces.
///
/// --supervisor-gate is the same A/B harness pointed at the robustness
/// plane (PR 9): supervisor off vs supervisor on (heartbeats, watchdog
/// thread, restart bookkeeping) with an armed empty-plan FaultInjector
/// — the drained-plan fast path every supervised production run pays.
/// Same shapes, same interleaved best-of-N, same 3% Mpps budget.
///
/// Usage: bench_batch_ablation [--packets N] [--ip-alg mbt|bst|rvh]
///                             [--load-workloads DIR]
///                             [--telemetry-gate] [--supervisor-gate]
#include <algorithm>
#include <chrono>
#include <iostream>
#include <span>
#include <vector>

#include "bench_util.hpp"
#include "common/parse.hpp"
#include "dataplane/engine.hpp"
#include "fault/fault.hpp"
#include "net/packet_batch.hpp"
#include "workload/binio.hpp"

using namespace pclass;
using namespace pclass::bench;

namespace {

struct Point {
  double mpps = 0;
  double mean_cycles = 0;
  u64 p99_cycles = 0;
  u64 memo_hits = 0;
  u64 memo_invalidations = 0;
  u64 memo_conflict_evictions = 0;
};

Point run_point(const core::ConfigurableClassifier& clf,
                std::span<const net::FiveTuple> in, usize batch,
                std::vector<core::ClassifyResult>& out) {
  out.assign(in.size(), {});
  core::BatchScratch scratch;
  const auto t0 = std::chrono::steady_clock::now();
  for (usize off = 0; off < in.size(); off += batch) {
    const usize len = std::min(batch, in.size() - off);
    clf.classify_batch(in.subspan(off, len),
                       std::span(out).subspan(off, len), scratch);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  Point p;
  p.mpps = secs <= 0 ? 0.0 : static_cast<double>(in.size()) / 1e6 / secs;
  p.memo_invalidations = scratch.memo_invalidations;
  p.memo_conflict_evictions = scratch.memo.conflict_evictions();
  u64 total = 0;
  std::vector<u64> cycles;
  cycles.reserve(out.size());
  for (const auto& r : out) {
    total += r.cycles;
    p.memo_hits += r.memo_hits;
    cycles.push_back(r.cycles);
  }
  std::sort(cycles.begin(), cycles.end());
  p.mean_cycles = static_cast<double>(total) /
                  static_cast<double>(out.size());
  p.p99_cycles = cycles[cycles.size() * 99 / 100];
  return p;
}

/// Verdict + access parity of a phase-2 run against the scalar results.
bool equivalent(const std::vector<core::ClassifyResult>& got,
                const std::vector<core::ClassifyResult>& want) {
  for (usize i = 0; i < got.size(); ++i) {
    const bool same_match =
        got[i].match.has_value() == want[i].match.has_value() &&
        (!got[i].match || (got[i].match->rule == want[i].match->rule &&
                           got[i].match->priority == want[i].match->priority));
    if (!same_match || got[i].memory_accesses != want[i].memory_accesses ||
        got[i].crossproduct_probes != want[i].crossproduct_probes) {
      return false;
    }
  }
  return true;
}

struct Shape {
  const char* name;
  Workload w;
};

/// One timed engine pass: single pinned worker, no flow cache (every
/// packet takes the full 4-phase lookup), telemetry per \p telemetry.
double gate_leg_mpps(const dataplane::RuleProgramPublisher& programs,
                     const net::Trace& trace, bool telemetry) {
  dataplane::TrafficPool pool =
      dataplane::TrafficPool::from_trace(trace, /*materialize=*/false);
  dataplane::Engine engine(
      {.workers = 1,
       .flow_cache_depth = 0,
       .telemetry = telemetry,
       // The gate measures the full shipping configuration: rings
       // written per batch *and* the background sampler reading them.
       .stats_interval_ms = telemetry ? u64{10} : u64{0}},
      programs);
  const dataplane::EngineReport rep = engine.run(pool);
  return rep.aggregate_mpps();
}

/// The telemetry overhead gate described in the file header. Interleaved
/// best-of-\p reps per leg: alternating off/on passes shares slow-host
/// noise between the legs instead of letting it land on one of them.
int run_telemetry_gate(const std::vector<Shape>& shapes, usize reps,
                       double max_overhead) {
  bool ok = true;
  TextTable t({"shape", "off Mpps", "on Mpps", "overhead", "budget"});
  for (const Shape& shape : shapes) {
    core::ClassifierConfig cfg =
        core::ClassifierConfig::for_scale(shape.w.rules.size());
    cfg.combine_mode = core::CombineMode::kCrossProduct;
    cfg.batch_path_policy = core::PathPolicy::kForcePhase2;
    dataplane::RuleProgramPublisher programs(cfg);
    programs.install_ruleset(shape.w.rules);

    // Warmup (page in the trace, fault the structures), then measure.
    (void)gate_leg_mpps(programs, shape.w.trace, false);
    (void)gate_leg_mpps(programs, shape.w.trace, true);
    double best_off = 0;
    double best_on = 0;
    for (usize r = 0; r < reps; ++r) {
      best_off = std::max(best_off,
                          gate_leg_mpps(programs, shape.w.trace, false));
      best_on = std::max(best_on,
                         gate_leg_mpps(programs, shape.w.trace, true));
    }
    const double overhead =
        best_off <= 0 ? 0.0 : (best_off - best_on) / best_off;
    if (overhead > max_overhead) ok = false;
    t.add_row({shape.name, TextTable::num(best_off, 3),
               TextTable::num(best_on, 3),
               TextTable::num(overhead * 100, 2) + "%",
               TextTable::num(max_overhead * 100, 0) + "%"});
  }
  header("Telemetry overhead gate",
         "1 worker, phase2 pinned, flow cache off, best of " +
             std::to_string(reps) + " interleaved reps per leg.");
  t.print(std::cout);
  if (!ok) {
    std::cerr << "FAIL: telemetry overhead exceeds the "
              << max_overhead * 100 << "% Mpps budget\n";
    return 1;
  }
  std::cout << "OK: telemetry (counters + ring + sampler) within the "
            << max_overhead * 100 << "% Mpps budget\n";
  return 0;
}

/// One timed engine pass for the supervisor gate: the same pinned
/// geometry as the telemetry gate (telemetry itself off in both legs,
/// so the delta isolates the robustness plane), baseline vs supervisor
/// enabled with an armed empty-plan FaultInjector — heartbeat stores,
/// the per-sweep injector fast path, and a live watchdog thread.
double supervisor_leg_mpps(const dataplane::RuleProgramPublisher& programs,
                           const net::Trace& trace, bool supervised) {
  dataplane::TrafficPool pool =
      dataplane::TrafficPool::from_trace(trace, /*materialize=*/false);
  fault::FaultInjector injector{fault::FaultPlan{}};
  dataplane::EngineConfig cfg;
  cfg.workers = 1;
  cfg.flow_cache_depth = 0;
  cfg.telemetry = false;
  if (supervised) {
    cfg.fault_injector = &injector;
    cfg.supervisor.enabled = true;  // defaults: the shipping knobs
  }
  dataplane::Engine engine(cfg, programs);
  const dataplane::EngineReport rep = engine.run(pool);
  return rep.aggregate_mpps();
}

/// The supervisor overhead gate: same interleaved best-of-\p reps
/// protocol as the telemetry gate, same budget.
int run_supervisor_gate(const std::vector<Shape>& shapes, usize reps,
                        double max_overhead) {
  bool ok = true;
  TextTable t({"shape", "off Mpps", "on Mpps", "overhead", "budget"});
  for (const Shape& shape : shapes) {
    core::ClassifierConfig cfg =
        core::ClassifierConfig::for_scale(shape.w.rules.size());
    cfg.combine_mode = core::CombineMode::kCrossProduct;
    cfg.batch_path_policy = core::PathPolicy::kForcePhase2;
    dataplane::RuleProgramPublisher programs(cfg);
    programs.install_ruleset(shape.w.rules);

    (void)supervisor_leg_mpps(programs, shape.w.trace, false);
    (void)supervisor_leg_mpps(programs, shape.w.trace, true);
    double best_off = 0;
    double best_on = 0;
    for (usize r = 0; r < reps; ++r) {
      best_off = std::max(best_off,
                          supervisor_leg_mpps(programs, shape.w.trace, false));
      best_on = std::max(best_on,
                         supervisor_leg_mpps(programs, shape.w.trace, true));
    }
    const double overhead =
        best_off <= 0 ? 0.0 : (best_off - best_on) / best_off;
    if (overhead > max_overhead) ok = false;
    t.add_row({shape.name, TextTable::num(best_off, 3),
               TextTable::num(best_on, 3),
               TextTable::num(overhead * 100, 2) + "%",
               TextTable::num(max_overhead * 100, 0) + "%"});
  }
  header("Supervisor overhead gate",
         "1 worker, phase2 pinned, flow cache off, empty fault plan, "
         "best of " +
             std::to_string(reps) + " interleaved reps per leg.");
  t.print(std::cout);
  if (!ok) {
    std::cerr << "FAIL: supervisor overhead exceeds the "
              << max_overhead * 100 << "% Mpps budget\n";
    return 1;
  }
  std::cout << "OK: supervisor (heartbeats + watchdog + armed empty-plan "
               "injector) within the "
            << max_overhead * 100 << "% Mpps budget\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  usize packets = 20'000;
  bool packets_set = false;
  bool telemetry_gate = false;
  bool supervisor_gate = false;
  core::IpAlgorithm ip_alg = core::IpAlgorithm::kMbt;
  std::string load_dir;
  u64 n = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--packets" && i + 1 < argc) {
      if (!parse_count(argv[++i], n) || n == 0 || n > 10'000'000) {
        std::cerr << "usage: bench_batch_ablation [--packets N] "
                     "[--ip-alg mbt|bst|rvh] [--load-workloads DIR] "
                     "[--telemetry-gate] [--supervisor-gate]\n";
        return 2;
      }
      packets = static_cast<usize>(n);
      packets_set = true;
    } else if (flag == "--ip-alg" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "mbt") ip_alg = core::IpAlgorithm::kMbt;
      else if (v == "bst") ip_alg = core::IpAlgorithm::kBst;
      else if (v == "rvh") ip_alg = core::IpAlgorithm::kRvh;
      else {
        std::cerr << "usage: bench_batch_ablation [--packets N] "
                     "[--ip-alg mbt|bst|rvh] [--load-workloads DIR] "
                     "[--telemetry-gate] [--supervisor-gate]\n";
        return 2;
      }
    } else if (flag == "--load-workloads" && i + 1 < argc) {
      load_dir = argv[++i];
    } else if (flag == "--telemetry-gate") {
      telemetry_gate = true;
    } else if (flag == "--supervisor-gate") {
      supervisor_gate = true;
    } else {
      std::cerr << "usage: bench_batch_ablation [--packets N] "
                   "[--ip-alg mbt|bst|rvh] [--load-workloads DIR] "
                   "[--telemetry-gate] [--supervisor-gate]\n";
      return 2;
    }
  }
  // Gate legs are whole-engine runs; they need enough packets for the
  // wall clock to dominate thread start/join noise.
  if ((telemetry_gate || supervisor_gate) && !packets_set) packets = 200'000;
  std::vector<Shape> shapes;
  if (!load_dir.empty()) {
    // Byte-identical replay of the scenario runner's saved workloads
    // (pclass_scenario --save-workloads DIR), so this ablation and the
    // scenario reports — and any two PRs — measure the same bytes. The
    // loaded traces are capped at --packets to keep runtimes bounded.
    for (const char* name : {"fw-like", "zipf-locality", "cache-thrash"}) {
      Workload w;
      w.rules = workload::binio::load_ruleset_file(
          load_dir + "/" + name + ".rules.pcr1");
      w.trace = workload::binio::load_trace_file(
          load_dir + "/" + name + ".trace.pct1");
      w.trace.truncate(packets);
      shapes.push_back({name, std::move(w)});
    }
  } else {
    shapes.push_back(
        {"fw-like",
         make_profile_workload(
             workload::RulesetProfile::fw(1500, 2026),
             workload::TraceProfile::standard(packets, 2026 ^ 0xABCD))});
    shapes.push_back(
        {"zipf-flows",
         make_profile_workload(
             workload::RulesetProfile::acl(1200, 2026),
             workload::TraceProfile::zipf_heavy(packets, 2026 ^ 0x21BF))});
    Workload w;
    w.rules = workload::synthesize(workload::RulesetProfile::acl(1200, 2026));
    w.trace = workload::make_cache_thrash_trace(w.rules, packets, 32'768,
                                                2026 ^ 0x7447);
    shapes.push_back({"cache-thrash", std::move(w)});
  }

  if (telemetry_gate || supervisor_gate) {
    // fw-like + zipf only: cache-thrash's engineered anti-locality
    // makes its single-run variance swamp a 3% budget.
    shapes.resize(2);
    if (telemetry_gate) {
      const int rc =
          run_telemetry_gate(shapes, /*reps=*/7, /*max_overhead=*/0.03);
      if (rc != 0 || !supervisor_gate) return rc;
    }
    return run_supervisor_gate(shapes, /*reps=*/7, /*max_overhead=*/0.03);
  }

  bool ok = true;
  for (const Shape& shape : shapes) {
    header("Batch-phase-2 ablation — " + std::string(shape.name),
           std::to_string(shape.w.rules.size()) + " rules, " +
               std::to_string(shape.w.trace.size()) +
               " headers, single thread, CrossProduct/" +
               to_string(ip_alg) + ".");

    core::ClassifierConfig cfg =
        core::ClassifierConfig::for_scale(shape.w.rules.size());
    cfg.combine_mode = core::CombineMode::kCrossProduct;
    cfg.ip_algorithm = ip_alg;
    core::ConfigurableClassifier clf(cfg);
    clf.add_rules(shape.w.rules);
    std::vector<net::FiveTuple> in;
    in.reserve(shape.w.trace.size());
    for (const auto& e : shape.w.trace) in.push_back(e.header);

    std::vector<core::ClassifyResult> scalar_res;
    std::vector<core::ClassifyResult> out;
    clf.set_batch_mode(core::BatchMode::kScalar);
    const Point scalar =
        run_point(clf, in, net::kDefaultBatchCapacity, scalar_res);

    // The mode matrix: forced rows isolate one mechanism each (batch
    // engine alone; + per-batch memo; + persistent memo at ways=1 vs
    // ways=2 — the lifetime and associativity A/Bs), the adaptive row
    // is the shipping configuration (cost-model controller free to
    // pick any path per batch).
    struct ModeSpec {
      const char* name;
      core::PathPolicy policy;
      bool memo;
      bool persistent;
      u32 ways;
    };
    constexpr ModeSpec kModes[] = {
        {"phase2", core::PathPolicy::kForcePhase2, false, true, 2},
        {"p2+memo/batch", core::PathPolicy::kForcePhase2, true, false, 2},
        {"p2+memo/persist", core::PathPolicy::kForcePhase2, true, true, 1},
        {"p2+memo/persist", core::PathPolicy::kForcePhase2, true, true, 2},
        {"adaptive", core::PathPolicy::kAdaptive, true, true, 2},
    };

    TextTable t({"batch", "mode", "ways", "Mpps", "vs scalar", "mean cyc",
                 "p99 cyc", "memo hits", "confl", "inval"});
    t.add_row({"-", "scalar", "-", TextTable::num(scalar.mpps, 3), "1.00x",
               TextTable::num(scalar.mean_cycles, 1),
               std::to_string(scalar.p99_cycles), "0", "-", "-"});
    for (const usize batch : {usize{8}, usize{32}, usize{128}}) {
      for (const ModeSpec& mode : kModes) {
        clf.set_batch_mode(core::BatchMode::kPhase2);
        clf.set_batch_path_policy(mode.policy);
        clf.set_batch_probe_memo(mode.memo);
        clf.set_batch_memo_persistent(mode.persistent);
        clf.set_batch_memo_ways(mode.ways);
        const Point p = run_point(clf, in, batch, out);
        if (!equivalent(out, scalar_res)) {
          std::cerr << "FAIL: " << mode.name << "/w" << mode.ways
                    << " (batch " << batch
                    << ") diverged from the scalar path on " << shape.name
                    << "\n";
          ok = false;
        }
        t.add_row({std::to_string(batch), mode.name,
                   mode.memo ? std::to_string(mode.ways) : "-",
                   TextTable::num(p.mpps, 3),
                   TextTable::num(p.mpps / scalar.mpps, 2) + "x",
                   TextTable::num(p.mean_cycles, 1),
                   std::to_string(p.p99_cycles),
                   std::to_string(p.memo_hits),
                   std::to_string(p.memo_conflict_evictions),
                   std::to_string(p.memo_invalidations)});
      }
    }
    t.print(std::cout);
  }

  if (!ok) {
    std::cerr << "FAIL: batch ablation found scalar/phase2 divergence\n";
    return 1;
  }
  std::cout << "OK: phase-2 verdicts and access counts match the scalar "
               "path on all shapes\n";
  return 0;
}
