/// \file bench_fig3_pipeline.cpp
/// Fig. 3 — "Lookup process pipelining": the four phases (header split,
/// parallel field lookup, label combination, rule filter access), their
/// latencies and initiation intervals, and the resulting stream timing
/// for both IP configurations. The analytic model and the cycle-stepped
/// simulation must agree (they are cross-checked here and in the tests).
#include "bench_util.hpp"

using namespace pclass;
using namespace pclass::bench;

int main() {
  const Workload w = make_workload(ruleset::FilterType::kAcl, 1000, 1);
  header("Fig. 3 — lookup process pipelining",
         "phase structure for both IP algorithm selections");

  for (const auto alg : {core::IpAlgorithm::kMbt, core::IpAlgorithm::kBst}) {
    auto clf = make_classifier(w.rules, alg, core::CombineMode::kFirstLabel);
    const hw::Pipeline pipe = clf->lookup_pipeline();

    std::cout << "configuration: IPalg_s = " << to_string(alg) << "\n";
    TextTable t({"phase", "latency (cycles)", "initiation interval"});
    for (const auto& s : pipe.stages()) {
      t.add_row({s.name, std::to_string(s.latency),
                 std::to_string(s.initiation_interval)});
    }
    t.add_row({"TOTAL", std::to_string(pipe.latency()),
               std::to_string(pipe.initiation_interval())});
    t.print(std::cout);

    TextTable s({"packets", "analytic cycles", "simulated cycles",
                 "cycles/packet"});
    for (u64 n : {u64{1}, u64{100}, u64{100000}}) {
      const auto a = pipe.run(n);
      const auto sim = pipe.simulate(n);
      s.add_row({std::to_string(n), std::to_string(a.total_cycles),
                 std::to_string(sim.total_cycles),
                 TextTable::num(sim.cycles_per_packet, 3)});
    }
    s.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "paper (section V.B): protocol 1 cycle, ports 2 cycles, MBT "
               "latency 6 cycles pipelined, BST ~16 reads/packet, +1 cycle "
               "label pointer, +2 cycles final processing. The MBT "
               "configuration streams 1 packet/cycle; BST serializes on "
               "its tree walk.\n";
  return 0;
}
