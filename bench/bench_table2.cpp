/// \file bench_table2.cpp
/// Table II — "No. of unique rule fields per rule set": unique values of
/// each 5-tuple field for acl1 at 1K/5K/10K, the statistic that sizes
/// the label method (13/7/2-bit labels) and motivates its >50 % storage
/// saving.
#include "bench_util.hpp"

using namespace pclass;
using namespace pclass::bench;

int main() {
  header("Table II — unique rule fields per rule set (acl1)",
         "paper values in parentheses; generator is calibrated to "
         "reproduce them exactly (DESIGN.md §2)");

  struct PaperRow {
    usize nominal, rules, src, dst, sport, dport, proto;
  };
  const PaperRow paper[] = {{1000, 916, 103, 297, 1, 99, 3},
                            {5000, 4415, 805, 640, 1, 108, 3},
                            {10000, 9603, 4784, 733, 1, 108, 3}};

  TextTable t({"field", "acl1 1K", "acl1 5K", "acl1 10K"});
  ruleset::RuleSetStats st[3];
  for (int i = 0; i < 3; ++i) {
    const auto rs =
        ruleset::make_classbench_like(ruleset::FilterType::kAcl,
                                      paper[i].nominal);
    st[i] = ruleset::RuleSetStats::analyze(rs);
  }
  auto row = [&](const char* name, auto get, auto paper_get) {
    std::vector<std::string> cells = {name};
    for (int i = 0; i < 3; ++i) {
      cells.push_back(std::to_string(get(st[i])) + " (" +
                      std::to_string(paper_get(paper[i])) + ")");
    }
    t.add_row(cells);
  };
  row("rules", [](const auto& s) { return s.rules; },
      [](const auto& p) { return p.rules; });
  row("source IP address", [](const auto& s) { return s.unique_src_ip; },
      [](const auto& p) { return p.src; });
  row("destination IP address",
      [](const auto& s) { return s.unique_dst_ip; },
      [](const auto& p) { return p.dst; });
  row("source port", [](const auto& s) { return s.unique_src_port; },
      [](const auto& p) { return p.sport; });
  row("destination port", [](const auto& s) { return s.unique_dst_port; },
      [](const auto& p) { return p.dport; });
  row("protocol", [](const auto& s) { return s.unique_protocol; },
      [](const auto& p) { return p.proto; });
  t.print(std::cout);

  std::cout << "\nper-dimension label demand (the architecture's 16-bit "
               "segment lookups):\n";
  TextTable t2({"dimension", "acl1 1K", "acl1 5K", "acl1 10K",
                "label width"});
  for (Dimension d : kAllDimensions) {
    t2.add_row({to_string(d),
                std::to_string(st[0].unique_per_dimension[index_of(d)]),
                std::to_string(st[1].unique_per_dimension[index_of(d)]),
                std::to_string(st[2].unique_per_dimension[index_of(d)]),
                std::to_string(label_bits(d)) + " bits (max " +
                    std::to_string(1u << label_bits(d)) + ")"});
  }
  t2.print(std::cout);

  std::cout << "\nfield storage: replicated vs unique-only (the paper's "
               ">50% claim):\n";
  TextTable t3({"set", "replicated Kb", "unique-only Kb", "saving",
                "with 68b label records Kb", "saving"});
  for (int i = 0; i < 3; ++i) {
    t3.add_row({"acl1 " + std::to_string(paper[i].nominal / 1000) + "K",
                kb(st[i].field_bits_replicated),
                kb(st[i].field_bits_unique_only),
                TextTable::num(100.0 * st[i].unique_only_saving(), 1) + "%",
                kb(st[i].field_bits_labelled),
                TextTable::num(100.0 * st[i].label_saving(), 1) + "%"});
  }
  t3.print(std::cout);
  return 0;
}
