/// \file bench_ablation_combine.cpp
/// Ablation A (DESIGN.md §1.1) — the paper's first-label combination vs
/// the exact cross-product combination, across all nine calibrated
/// workloads: HPMR agreement with the linear-search oracle, hash probes
/// and cycles per lookup. This quantifies the soundness gap the paper
/// does not evaluate: a single first-label probe is fast but rarely
/// lands on the highest-priority matching rule in overlapping sets.
#include "bench_util.hpp"

using namespace pclass;
using namespace pclass::bench;

int main() {
  header("Ablation — phase-3 combination policy",
         "agreement = classify() == linear-search oracle (HPMR), "
         "9 workloads x 2 modes, MBT configuration");

  TextTable t({"workload", "mode", "agreement", "hit-is-valid", "probes/pkt",
               "cycles/pkt"});
  for (const auto type : {ruleset::FilterType::kAcl, ruleset::FilterType::kFw,
                          ruleset::FilterType::kIpc}) {
    for (const usize nominal : {usize{1000}, usize{5000}, usize{10000}}) {
      const Workload w = make_workload(type, nominal, 2000);
      for (const auto mode : {core::CombineMode::kFirstLabel,
                              core::CombineMode::kCrossProduct}) {
        auto clf = make_classifier(w.rules, core::IpAlgorithm::kMbt, mode);
        baseline::LinearSearch oracle(w.rules);
        usize agree = 0, hits = 0, valid_hits = 0;
        u64 probes = 0, cycles = 0;
        for (const auto& e : w.trace) {
          const auto res = clf->classify(e.header);
          probes += res.crossproduct_probes;
          cycles += res.cycles;
          const auto* want = oracle.classify(e.header, nullptr);
          if (res.match) {
            ++hits;
            const auto rule = w.rules.find(res.match->rule);
            if (rule && rule->matches(e.header)) ++valid_hits;
          }
          const bool ok = want == nullptr
                              ? !res.match.has_value()
                              : res.match && res.match->rule == want->id;
          if (ok) ++agree;
        }
        const auto n = static_cast<double>(w.trace.size());
        t.add_row({w.rules.name(), to_string(mode),
                   TextTable::num(100.0 * static_cast<double>(agree) / n,
                                  1) +
                       " %",
                   hits == 0 ? "-"
                             : TextTable::num(100.0 *
                                                  static_cast<double>(
                                                      valid_hits) /
                                                  static_cast<double>(hits),
                                              1) +
                                   " %",
                   TextTable::num(static_cast<double>(probes) / n, 1),
                   TextTable::num(static_cast<double>(cycles) / n, 1)});
      }
    }
  }
  t.print(std::cout);
  std::cout
      << "\nreading: CrossProduct is exact by construction (100 % "
         "agreement, provable); FirstLabel returns only valid matching "
         "rules when it hits, but misses / under-prioritizes on "
         "overlapping sets — the cost of the paper's single-probe "
         "phase 3.\n";
  return 0;
}
