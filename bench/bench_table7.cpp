/// \file bench_table7.cpp
/// Table VII — "Performance comparison" of 5-field hardware classifiers
/// at 40-byte packets, plus the §VI headline (133 Mlookup/s => >100 Gbps
/// at 100-byte packets). Literature rows are the numbers those papers
/// report (as in the paper itself); our rows are measured on the device
/// model.
#include "bench_util.hpp"

using namespace pclass;
using namespace pclass::bench;

int main() {
  const Workload w = make_workload(ruleset::FilterType::kAcl, 10000, 2000);
  header("Table VII — performance comparison (40-byte packets)",
         "our rows measured on " + w.rules.name() +
             "; [9]/[6] rows are literature-reported values");

  const core::ThroughputModel rate;  // 133.51 MHz
  constexpr u64 kM20k = 20 * 1024;

  struct OurRow {
    std::string name;
    double mem_mb;
    usize rules;
    double gbps;
  };
  auto measure = [&](core::IpAlgorithm alg) {
    auto clf = make_classifier(w.rules, alg, core::CombineMode::kFirstLabel);
    const auto mem = clf->memory_report();
    u64 right_sized = 0;
    for (const auto& b : mem.blocks) {
      right_sized += ceil_div(std::max<u64>(b.used_bits, 1), kM20k) * kM20k;
    }
    const double ii =
        static_cast<double>(clf->lookup_pipeline().initiation_interval());
    return OurRow{std::string("Our system with ") + to_string(alg),
                  static_cast<double>(right_sized) / 1e6,
                  clf->rule_count(), rate.gbps(ii, 40)};
  };
  const OurRow mbt = measure(core::IpAlgorithm::kMbt);
  const OurRow bst = measure(core::IpAlgorithm::kBst);

  TextTable t({"algorithm", "memory space (Mb)", "stored rules",
               "throughput (Gbps)"});
  t.add_row({"Our system with MBT (paper)", "2.1", "8K", "42.73"});
  t.add_row({mbt.name + " (measured)", TextTable::num(mbt.mem_mb),
             std::to_string(mbt.rules), TextTable::num(mbt.gbps)});
  t.add_row({"Our system with BST (paper)", "2.1", "12K", "2.67"});
  t.add_row({bst.name + " (measured)", TextTable::num(bst.mem_mb),
             std::to_string(bst.rules), TextTable::num(bst.gbps)});
  t.add_row({"Optimizing HyperCuts [9] (reported)", "4.90", "10K",
             "80.23"});
  t.add_row({"DCFLE [6] (reported)", "1.77", "128", "16"});
  t.print(std::cout);

  // §VI: packet-size sweep at the MBT configuration.
  std::cout << "\nline rate vs packet size (MBT, II=1 @133.51 MHz):\n";
  TextTable ps({"packet bytes", "Mlookup/s", "Gbps", "paper claim"});
  for (u32 bytes : {40u, 64u, 100u, 256u, 1500u}) {
    std::string claim;
    if (bytes == 40) claim = "42.73 Gbps (Table VII)";
    if (bytes == 100) claim = ">100 Gbps (section VI)";
    ps.add_row({std::to_string(bytes),
                TextTable::num(rate.mega_lookups_per_sec(1.0)),
                TextTable::num(rate.gbps(1.0, bytes)), claim});
  }
  ps.print(std::cout);

  // BST sensitivity: throughput vs measured walk depth.
  auto clf = make_classifier(w.rules, core::IpAlgorithm::kBst,
                             core::CombineMode::kFirstLabel);
  const double ii =
      static_cast<double>(clf->lookup_pipeline().initiation_interval());
  std::cout << "\nBST walk depth on this set: " << ii
            << " cycles/packet -> " << TextTable::num(rate.gbps(ii, 40))
            << " Gbps @40B (paper budgets the worst case 16 -> 2.67)\n";
  return 0;
}
