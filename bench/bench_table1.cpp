/// \file bench_table1.cpp
/// Table I — "Performance evaluation of algorithm based on different
/// lookup approaches": average lookup memory accesses and memory space
/// for HyperCuts, RFC, DCFL and the Option-1/Option-2 single-field
/// combinations, on the acl1-like workload.
///
/// Paper values (from the authors' prior work [17]):
///   HyperCuts 60.05 acc / 5.96 Mb;  RFC 48 acc / 31.48 Mb;
///   DCFL 23.1 acc / 22.54 Mb;  Option1 49.3 acc / 5.57 Mb;
///   Option2 31.33 acc / 6.36 Mb.
/// Expected shape: RFC's memory dominates everything; DCFL needs the
/// fewest accesses within the decomposition family; Option 2 beats
/// Option 1. See EXPERIMENTS.md for metric-definition caveats.
#include "baseline/dcfl.hpp"
#include "baseline/hypercuts.hpp"
#include "baseline/option_trie.hpp"
#include "baseline/rfc.hpp"
#include "bench_util.hpp"

using namespace pclass;
using namespace pclass::bench;

int main(int argc, char** argv) {
  const usize nominal = argc > 1 ? std::stoul(argv[1]) : 5000;
  const Workload w =
      make_workload(ruleset::FilterType::kAcl, nominal, 5000);
  header("Table I — lookup approaches compared",
         "workload: " + w.rules.name() + " (" +
             std::to_string(w.rules.size()) + " rules), " +
             std::to_string(w.trace.size()) + " headers");

  baseline::HyperCuts hypercuts(w.rules);
  baseline::Rfc rfc(w.rules);
  baseline::Dcfl dcfl(w.rules);
  baseline::OptionTrie opt1(w.rules, baseline::OptionConfig::option1());
  baseline::OptionTrie opt2(w.rules, baseline::OptionConfig::option2());

  struct Row {
    const baseline::Baseline* b;
    double paper_acc;
    double paper_mb;
  };
  const Row rows[] = {{&hypercuts, 60.05, 5.96},
                      {&rfc, 48.0, 31.48},
                      {&dcfl, 23.1, 22.54},
                      {&opt1, 49.3, 5.57},
                      {&opt2, 31.33, 6.36}};

  TextTable t({"algorithm", "paper acc", "measured acc", "paper Mb",
               "measured Mb", "oracle agreement"});
  for (const Row& row : rows) {
    baseline::LookupCost cost;
    usize agree = 0;
    baseline::LinearSearch oracle(w.rules);
    for (const auto& e : w.trace) {
      const auto* got = row.b->classify(e.header, &cost);
      const auto* want = oracle.classify(e.header, nullptr);
      if ((got == nullptr) == (want == nullptr) &&
          (got == nullptr || got->id == want->id)) {
        ++agree;
      }
    }
    t.add_row({row.b->name(), TextTable::num(row.paper_acc),
               TextTable::num(static_cast<double>(cost.memory_accesses) /
                              static_cast<double>(w.trace.size())),
               TextTable::num(row.paper_mb),
               mb(row.b->memory_bits()),
               std::to_string(agree) + "/" +
                   std::to_string(w.trace.size())});
  }
  t.print(std::cout);
  std::cout << "\nshape checks: RFC memory dominates; DCFL fewest accesses "
               "in the decomposition family; Option2 <= Option1.\n";
  return 0;
}
