/// \file bench_ablation_strides.cpp
/// Ablation C — the MBT stride plan. The paper fixes 5-5-6 ("three
/// memory blocks corresponding to the three levels using 5-bit, 5-bit
/// and 6-bit partitions", §III.C); this sweep shows the trade it sits
/// on: fewer/wider levels reduce lookup latency but blow up node arrays
/// (controlled prefix expansion), while more/narrower levels save memory
/// at the cost of latency — and every plan remains exactly correct.
#include "bench_util.hpp"

using namespace pclass;
using namespace pclass::bench;

int main() {
  const Workload w = make_workload(ruleset::FilterType::kAcl, 5000, 1500);
  header("Ablation — MBT stride plan (paper: 5-5-6)",
         "workload: " + w.rules.name() + "; per-plan: latency = levels x "
         "2 cycles + 1 list cycle; memory = live node bits, 4 IP dims");

  struct Plan {
    std::string name;
    std::vector<unsigned> strides;
    std::vector<u32> capacity;
  };
  const Plan plans[] = {
      {"5-5-6 (paper)", {5, 5, 6}, {1, 128, 512}},
      {"4-4-4-4", {4, 4, 4, 4}, {1, 64, 512, 1024}},
      {"8-8", {8, 8}, {1, 1024}},
      {"6-5-5", {6, 5, 5}, {1, 128, 512}},
      {"2-7-7", {2, 7, 7}, {1, 64, 1024}},
  };

  TextTable t({"stride plan", "levels", "latency (cycles)",
               "live node Kb (4 dims)", "allocated Kb", "agreement"});
  for (const Plan& plan : plans) {
    core::ClassifierConfig cfg =
        core::ClassifierConfig::for_scale(w.rules.size());
    cfg.mbt.strides = plan.strides;
    cfg.mbt.level_capacity = plan.capacity;
    cfg.share_ip_memory = false;  // isolate the trie geometry
    cfg.combine_mode = core::CombineMode::kCrossProduct;
    core::ConfigurableClassifier clf(cfg);
    clf.add_rules(w.rules);

    u64 live = 0, alloc = 0;
    for (const auto& b : clf.memory_report().blocks) {
      if (b.name.find(".mbt.") != std::string::npos) {
        live += b.used_bits;
        alloc += b.capacity_bits;
      }
    }
    const auto res = sweep(clf, w);
    const u64 latency =
        u64{cfg.mbt.read_cycles} * static_cast<u64>(plan.strides.size()) +
        1;
    t.add_row({plan.name, std::to_string(plan.strides.size()),
               std::to_string(latency), kb(live), kb(alloc),
               std::to_string(res.oracle_agreement) + "/" +
                   std::to_string(res.headers)});
  }
  t.print(std::cout);
  std::cout << "\nreading: 8-8 halves the walk but multiplies the level-2 "
               "arrays (256 entries/node); 4-4-4-4 is compact but adds "
               "two cycles of latency. The paper's 5-5-6 balances the "
               "two — and every plan classifies identically (agreement "
               "column).\n";
  return 0;
}
