/// \file bench_fig5_sharing.cpp
/// Fig. 5 — memory sharing between the MBT level-2 block and the BST
/// node block: one physical memory serves whichever algorithm IPalg_s
/// selects, and the capacity the inactive algorithm would have wasted
/// becomes available (the paper uses it "to collect more rules").
/// Also measures the cost of flipping IPalg_s live.
#include "bench_util.hpp"

using namespace pclass;
using namespace pclass::bench;

int main() {
  const Workload w = make_workload(ruleset::FilterType::kAcl, 5000, 1);
  header("Fig. 5 — memory sharing (MBT level-2 <-> BST nodes)",
         "workload: " + w.rules.name());

  // Shared vs dedicated synthesis: physical bits of the device.
  u64 shared_bits = 0, dedicated_bits = 0;
  {
    core::ClassifierConfig cfg =
        core::ClassifierConfig::for_scale(w.rules.size());
    cfg.share_ip_memory = true;
    core::ConfigurableClassifier clf(cfg);
    shared_bits = clf.memory_report().total_capacity_bits;
  }
  {
    core::ClassifierConfig cfg =
        core::ClassifierConfig::for_scale(w.rules.size());
    cfg.share_ip_memory = false;
    core::ConfigurableClassifier clf(cfg);
    dedicated_bits = clf.memory_report().total_capacity_bits;
  }
  TextTable t({"synthesis", "block memory bits", "Mb"});
  t.add_row({"dedicated blocks per algorithm",
             std::to_string(dedicated_bits), mb(dedicated_bits)});
  t.add_row({"shared L2/BST block (Fig. 5)", std::to_string(shared_bits),
             mb(shared_bits)});
  t.add_row({"saved by sharing", std::to_string(dedicated_bits - shared_bits),
             mb(dedicated_bits - shared_bits)});
  t.print(std::cout);

  // Live occupancy of the shared block under each binding.
  core::ClassifierConfig cfg =
      core::ClassifierConfig::for_scale(w.rules.size());
  cfg.share_ip_memory = true;
  core::ConfigurableClassifier clf(cfg);
  clf.add_rules(w.rules);

  auto shared_usage = [&] {
    u64 cap = 0, used = 0;
    for (const auto& b : clf.memory_report().blocks) {
      if (b.name.find(".shared") != std::string::npos) {
        cap += b.capacity_bits;
        used += b.used_bits;
      }
    }
    return std::pair<u64, u64>{cap, used};
  };

  const auto [cap_mbt, used_mbt] = shared_usage();
  const auto cost_to_bst = clf.set_ip_algorithm(core::IpAlgorithm::kBst);
  const auto [cap_bst, used_bst] = shared_usage();
  const auto cost_to_mbt = clf.set_ip_algorithm(core::IpAlgorithm::kMbt);

  TextTable u({"IPalg_s binding", "shared block capacity", "live bits",
               "utilization"});
  u.add_row({"Data 1: MBT level-2 nodes", kb(cap_mbt) + " Kb",
             kb(used_mbt) + " Kb",
             TextTable::num(100.0 * static_cast<double>(used_mbt) /
                                static_cast<double>(cap_mbt),
                            1) +
                 " %"});
  u.add_row({"Data 2: BST nodes", kb(cap_bst) + " Kb", kb(used_bst) + " Kb",
             TextTable::num(100.0 * static_cast<double>(used_bst) /
                                static_cast<double>(cap_bst),
                            1) +
                 " %"});
  u.print(std::cout);

  // In BST mode, the MBT-dedicated L1/L3 blocks idle; their capacity is
  // the "rest of the memory ... used to collect more rules".
  u64 freed = 0;
  for (const auto& b : clf.memory_report().blocks) {
    if (b.name.find(".mbt.") != std::string::npos) {
      freed += b.capacity_bits;
    }
  }
  const double extra_rules =
      static_cast<double>(freed) /
      (static_cast<double>(core::RuleFilter::kWordBits) / 0.7);
  std::cout << "\nBST binding frees " << mb(freed)
            << " Mb of MBT level-1/3 capacity = room for ~"
            << static_cast<u64>(extra_rules)
            << " extra rule entries (the paper's 8K->12K capacity jump)\n";

  std::cout << "\nlive reconfiguration cost (clear + rebind + rebuild of "
            << w.rules.size() << " rules):\n";
  TextTable c({"transition", "bus cycles", "config toggles"});
  c.add_row({"MBT -> BST", std::to_string(cost_to_bst.cycles),
             std::to_string(cost_to_bst.config_toggles)});
  c.add_row({"BST -> MBT", std::to_string(cost_to_mbt.cycles),
             std::to_string(cost_to_mbt.config_toggles)});
  c.print(std::cout);
  return 0;
}
