/// \file bench_dataplane.cpp
/// The dataplane runtime's two headline claims:
///
///   1. Scaling curve — aggregate lookup throughput (host Mpps) of the
///      batched engine at 1/2/4/8 workers over a ClassBench-style
///      ruleset, with per-worker p50/p99 lookup-cycle latency. Speedup
///      is hardware-bound: showing 2x at 4 workers needs >= 4 cores.
///
///   2. Update storm — 10k controller updates stream through the
///      RuleProgramPublisher while 4 workers classify continuously.
///      The bench fails (nonzero exit) on any correctness violation:
///      non-monotonic snapshot versions, a torn verdict, or a stalled
///      engine (deadlock).
///
/// Usage: bench_dataplane [--duration-ms N] [--updates N]
#include <iostream>
#include <limits>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "common/parse.hpp"
#include "dataplane/engine.hpp"
#include "workload/trace_synth.hpp"

using namespace pclass;
using namespace pclass::bench;

namespace {

struct ScalePoint {
  usize workers = 0;
  double mpps = 0;
  double speedup = 1.0;
  u64 p50 = 0;
  u64 p99 = 0;
  double hit_rate = 0;
  u64 memo_hits = 0;
};

ScalePoint run_point(const dataplane::RuleProgramPublisher& programs,
                     dataplane::TrafficPool& pool, usize workers,
                     u32 cache_depth, int duration_ms) {
  pool.reset();
  dataplane::Engine engine(
      {.workers = workers,
       .batch_size = net::kDefaultBatchCapacity,
       .flow_cache_depth = cache_depth,
       .loop = true},
      programs);
  engine.start(pool);
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  const dataplane::EngineReport rep = engine.stop();

  ScalePoint p;
  p.workers = workers;
  p.mpps = rep.aggregate_mpps();
  const auto lat = rep.merged_latency();
  p.p50 = lat.percentile(50);
  p.p99 = lat.percentile(99);
  u64 hits = 0;
  u64 misses = 0;
  for (const auto& w : rep.workers) {
    hits += w.cache_hits;
    misses += w.cache_misses;
    p.memo_hits += w.probe_memo_hits;
  }
  p.hit_rate = hits + misses == 0
                   ? 0.0
                   : static_cast<double>(hits) /
                         static_cast<double>(hits + misses);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  int duration_ms = 400;
  u32 storm_updates = 10'000;
  const auto usage = [] {
    std::cerr << "usage: bench_dataplane [--duration-ms N] [--updates N]\n";
    return 2;
  };
  u64 n = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--duration-ms" && i + 1 < argc) {
      if (!parse_count(argv[++i], n) || n > 3'600'000) return usage();
      duration_ms = static_cast<int>(n);
    } else if (flag == "--updates" && i + 1 < argc) {
      if (!parse_count(argv[++i], n) ||
          n > std::numeric_limits<u32>::max()) {
        return usage();
      }
      storm_updates = static_cast<u32>(n);
    } else {
      return usage();
    }
  }

  header("Dataplane engine — multi-worker scaling",
         "Batched element pipeline over one shared rule program; "
         "host has " +
             std::to_string(std::thread::hardware_concurrency()) +
             " hardware threads.");

  // Structural ACL profile + flow-structured trace from the workload
  // subsystem (overlap control, correlated pairs, Zipf + bursts).
  const Workload w = make_profile_workload(
      workload::RulesetProfile::acl(4000),
      workload::TraceProfile::standard(20'000, 2014 ^ 0xABCD));
  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(
      w.rules.size() + 256 /* storm headroom */);
  cfg.combine_mode = core::CombineMode::kCrossProduct;  // exact lookups
  dataplane::RuleProgramPublisher programs(cfg);
  programs.install_ruleset(w.rules);
  dataplane::TrafficPool pool =
      dataplane::TrafficPool::from_trace(w.trace, /*materialize=*/false);

  TextTable scale({"workers", "Mpps", "speedup", "p50 cyc", "p99 cyc",
                   "cache hit%", "memo hits"});
  double base_mpps = 0;
  double speedup_at_4 = 0;
  for (const usize workers : {usize{1}, usize{2}, usize{4}, usize{8}}) {
    const ScalePoint p =
        run_point(programs, pool, workers, /*cache_depth=*/4096,
                  duration_ms);
    const double speedup = base_mpps == 0 ? 1.0 : p.mpps / base_mpps;
    if (workers == 1) base_mpps = p.mpps;
    if (workers == 4) speedup_at_4 = speedup;
    scale.add_row({std::to_string(workers), TextTable::num(p.mpps, 3),
                   TextTable::num(speedup, 2) + "x",
                   std::to_string(p.p50), std::to_string(p.p99),
                   TextTable::num(p.hit_rate * 100.0, 1),
                   std::to_string(p.memo_hits)});
  }
  scale.print(std::cout);
  std::cout << "speedup at 4 workers: " << TextTable::num(speedup_at_4, 2)
            << "x (target >= 2x; requires >= 4 free cores)\n";

  header("Batch mode A/B — phase-2 engine vs scalar loop",
         "Same ruleset and traffic, 4 workers; the phase-2 engine "
         "sorts per-dimension keys per batch and memoizes repeated "
         "combinations.");
  {
    core::ClassifierConfig scalar_cfg = cfg;
    scalar_cfg.batch_mode = core::BatchMode::kScalar;
    dataplane::RuleProgramPublisher scalar_programs(scalar_cfg);
    scalar_programs.install_ruleset(w.rules);
    const ScalePoint p2 =
        run_point(programs, pool, 4, /*cache_depth=*/4096, duration_ms);
    const ScalePoint sc = run_point(scalar_programs, pool, 4,
                                    /*cache_depth=*/4096, duration_ms);
    TextTable ab({"mode", "Mpps", "p99 cyc", "memo hits"});
    ab.add_row({"phase2", TextTable::num(p2.mpps, 3),
                std::to_string(p2.p99), std::to_string(p2.memo_hits)});
    ab.add_row({"scalar", TextTable::num(sc.mpps, 3),
                std::to_string(sc.p99), "0"});
    ab.print(std::cout);
  }

  header("Update storm — lookups under concurrent rule churn",
         std::to_string(storm_updates) +
             " add/remove updates stream through the publisher while 4 "
             "workers classify.");

  pool.reset();
  dataplane::Engine engine({.workers = 4,
                            .batch_size = net::kDefaultBatchCapacity,
                            .flow_cache_depth = 4096,
                            .loop = true},
                           programs);
  const u64 version_before = programs.version();
  engine.start(pool);

  const workload::UpdateStorm storm_sched = workload::make_update_storm(
      w.rules, storm_updates & ~u32{1}, /*first_id=*/60'000, 2014);
  const auto t0 = std::chrono::steady_clock::now();
  hw::UpdateStats device_cost;
  u64 applied = 0;
  for (const sdn::Message& msg : storm_sched.schedule) {
    device_cost += programs.apply(msg);
    ++applied;
  }
  const double storm_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const dataplane::EngineReport storm = engine.stop();

  const bool monotonic = storm.versions_monotonic();
  const bool progressed =
      storm.packets() > 0 && storm.first_error().empty();
  const bool versions_ok =
      programs.version() == version_before + applied;

  TextTable st({"metric", "value"});
  st.add_row({"updates applied", std::to_string(applied)});
  st.add_row({"update rate",
              TextTable::num(static_cast<double>(applied) / storm_secs / 1e3, 1) +
                  " K updates/s"});
  st.add_row({"device update cost",
              std::to_string(device_cost.cycles) + " bus cycles"});
  st.add_row({"grace-period yields",
              std::to_string(programs.stats().grace_spins)});
  st.add_row({"lookups during storm", std::to_string(storm.packets())});
  st.add_row({"storm throughput",
              TextTable::num(storm.aggregate_mpps(), 3) + " Mpps"});
  st.add_row({"versions monotonic", monotonic ? "yes" : "NO"});
  st.add_row({"engine progressed", progressed ? "yes" : "NO (deadlock?)"});
  st.add_row({"final version == expected", versions_ok ? "yes" : "NO"});
  st.print(std::cout);

  if (!monotonic || !progressed || !versions_ok) {
    std::cerr << "FAIL: snapshot consistency violated under update storm\n";
    return 1;
  }
  std::cout << "OK: lookups sustained across " << applied
            << " concurrent updates with monotonic snapshots\n";
  return 0;
}
