/// \file bench_table3.cpp
/// Table III — "Analysis of rule filters": actual rule counts of the
/// ACL / FW / IPC filter sets at nominal 1K/5K/10K (duplicate-match
/// rules removed, as ClassBench post-processing does).
#include "bench_util.hpp"

using namespace pclass;
using namespace pclass::bench;

int main() {
  header("Table III — analysis of rule filters",
         "measured (paper) rule counts after duplicate removal");

  const usize paper[3][3] = {{916, 4415, 9603},
                             {791, 4653, 9311},
                             {938, 4460, 9037}};
  const ruleset::FilterType types[3] = {ruleset::FilterType::kAcl,
                                        ruleset::FilterType::kFw,
                                        ruleset::FilterType::kIpc};

  TextTable t({"filter type", "1K rules", "5K rules", "10K rules"});
  for (int ti = 0; ti < 3; ++ti) {
    std::vector<std::string> cells = {to_string(types[ti])};
    for (int si = 0; si < 3; ++si) {
      const usize nominal = si == 0 ? 1000 : si == 1 ? 5000 : 10000;
      const auto rs = ruleset::make_classbench_like(types[ti], nominal);
      cells.push_back(std::to_string(rs.size()) + " (" +
                      std::to_string(paper[ti][si]) + ")");
    }
    t.add_row(cells);
  }
  t.print(std::cout);
  return 0;
}
