/// \file bench_ablation_labels.cpp
/// Ablation B — what the label method actually buys (§III.C): unique
/// field storage vs replicated storage (the paper's >50 % claim), and
/// the content-addressed label-list store's deduplication of leaf-pushed
/// trie lists (identical lists stored once, ref-counted).
#include "bench_util.hpp"

using namespace pclass;
using namespace pclass::bench;

int main() {
  header("Ablation — label method storage effect",
         "field storage (rule-set level) and live list storage "
         "(device level, MBT configuration)");

  TextTable t({"workload", "replicated Kb", "unique-only Kb", "saving",
               "distinct lists", "list refs", "live words",
               "no-dedup words", "dedup factor"});
  for (const auto type : {ruleset::FilterType::kAcl, ruleset::FilterType::kFw,
                          ruleset::FilterType::kIpc}) {
    for (const usize nominal : {usize{1000}, usize{10000}}) {
      const Workload w = make_workload(type, nominal, 1);
      const auto st = ruleset::RuleSetStats::analyze(w.rules);
      auto clf = make_classifier(w.rules, core::IpAlgorithm::kMbt,
                                 core::CombineMode::kFirstLabel);

      usize distinct = 0;
      u64 refs = 0, live = 0, replicated = 0;
      for (usize i = 0; i < 4; ++i) {
        const auto& store = clf->label_store(i);
        distinct += store.distinct_lists();
        refs += store.total_references();
        live += store.live_words();
        replicated += store.replicated_words();
      }
      t.add_row({w.rules.name(), kb(st.field_bits_replicated),
                 kb(st.field_bits_unique_only),
                 TextTable::num(100.0 * st.unique_only_saving(), 1) + " %",
                 std::to_string(distinct), std::to_string(refs),
                 std::to_string(live), std::to_string(replicated),
                 TextTable::num(static_cast<double>(replicated) /
                                    static_cast<double>(std::max<u64>(1,
                                                                      live)),
                                1) +
                     "x"});
    }
  }
  t.print(std::cout);
  std::cout << "\nreading: the >50% unique-field saving of Table II holds "
               "on every workload; on top of it, content addressing "
               "shrinks the leaf-pushed list storage by the dedup factor "
               "(leaf pushing would otherwise replicate ancestor lists "
               "across sibling entries).\n";
  return 0;
}
