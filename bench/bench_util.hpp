/// \file bench_util.hpp
/// Shared plumbing for the paper-reproduction bench binaries: workload
/// construction, classifier setup and measurement loops. Each bench
/// prints one table/figure of the paper with paper-reported values next
/// to our measured ones (see EXPERIMENTS.md for the comparison notes).
#pragma once

#include <iostream>
#include <string>

#include "baseline/linear_search.hpp"
#include "common/table.hpp"
#include "core/classifier.hpp"
#include "core/cycle_model.hpp"
#include "ruleset/generator.hpp"
#include "ruleset/stats.hpp"
#include "workload/profile.hpp"
#include "workload/ruleset_synth.hpp"
#include "workload/trace_synth.hpp"

namespace pclass::bench {

/// Standard workload: a calibrated ClassBench-like set plus its trace.
struct Workload {
  ruleset::RuleSet rules;
  net::Trace trace;
};

/// Paper-reproduction workload: the Table II/III-calibrated rule set
/// (unique-field counts must keep matching the paper), driven by the
/// workload subsystem's flow-structured trace (Zipf popularity + bursts)
/// instead of the old flat per-header draws.
inline Workload make_workload(ruleset::FilterType type, usize nominal,
                              usize headers = 10'000, u64 seed = 2014) {
  Workload w;
  w.rules = ruleset::make_classbench_like(type, nominal, seed);
  workload::TraceSynthesizer ts(
      w.rules, workload::TraceProfile::standard(headers, seed ^ 0xABCD));
  w.trace = ts.generate();
  return w;
}

/// Structural workload: a profile-synthesized set (overlap control,
/// correlated pairs, port classes) with a matching trace — what the
/// scenario catalog runs; exposed here for benches that want the same.
inline Workload make_profile_workload(const workload::RulesetProfile& rp,
                                      const workload::TraceProfile& tp) {
  Workload w;
  w.rules = workload::synthesize(rp);
  workload::TraceSynthesizer ts(w.rules, tp);
  w.trace = ts.generate();
  return w;
}

/// Build a classifier for \p rules with the given configuration knobs
/// and bulk-load the set.
inline std::unique_ptr<core::ConfigurableClassifier> make_classifier(
    const ruleset::RuleSet& rules, core::IpAlgorithm alg,
    core::CombineMode mode) {
  core::ClassifierConfig cfg =
      core::ClassifierConfig::for_scale(rules.size());
  cfg.ip_algorithm = alg;
  cfg.combine_mode = mode;
  auto clf = std::make_unique<core::ConfigurableClassifier>(cfg);
  clf->add_rules(rules);
  return clf;
}

/// Classification sweep: mean/max cycles and accesses over a trace.
struct SweepResult {
  double mean_cycles = 0;
  double mean_accesses = 0;
  u64 max_cycles = 0;
  u64 max_accesses = 0;
  usize hits = 0;
  usize oracle_agreement = 0;  ///< matches vs LinearSearch
  usize headers = 0;
};

inline SweepResult sweep(const core::ConfigurableClassifier& clf,
                         const Workload& w) {
  baseline::LinearSearch oracle(w.rules);
  SweepResult out;
  hw::CycleAggregate agg;
  for (const auto& e : w.trace) {
    const auto res = clf.classify(e.header);
    hw::CycleRecorder rec;
    rec.charge(res.cycles, res.memory_accesses);
    agg.add(rec);
    if (res.match) ++out.hits;
    const auto* want = oracle.classify(e.header, nullptr);
    const bool agree = want == nullptr
                           ? !res.match.has_value()
                           : res.match && res.match->rule == want->id;
    if (agree) ++out.oracle_agreement;
  }
  out.mean_cycles = agg.mean_cycles();
  out.mean_accesses = agg.mean_accesses();
  out.max_cycles = agg.max_cycles();
  out.max_accesses = agg.max_accesses();
  out.headers = w.trace.size();
  return out;
}

inline std::string mb(u64 bits) {
  return TextTable::num(static_cast<double>(bits) / 1e6, 2);
}
inline std::string kb(u64 bits) {
  return TextTable::num(static_cast<double>(bits) / 1e3, 0);
}

inline void header(const std::string& title, const std::string& note) {
  std::cout << "\n=== " << title << " ===\n";
  if (!note.empty()) {
    std::cout << note << "\n";
  }
  std::cout << "\n";
}

}  // namespace pclass::bench
