/// \file bench_table5.cpp
/// Table V — "Synthesis result on Altera Stratix V device
/// (5SGXMB6R3F43C4)". We cannot run Quartus here; block-memory and
/// register bits are MEASURED from the device model, logic is the
/// calibrated analytical estimate of hw::SynthesisModel, fmax is the
/// paper's number as a model parameter (see DESIGN.md §2).
///
/// Paper: 79,835/225,400 ALMs; 2,097,184/54,476,800 memory bits;
/// 129,273 registers; 133.51 MHz; 500/908 pins.
#include "bench_util.hpp"

using namespace pclass;
using namespace pclass::bench;

int main() {
  const Workload w = make_workload(ruleset::FilterType::kAcl, 10000, 1);
  auto clf = make_classifier(w.rules, core::IpAlgorithm::kMbt,
                             core::CombineMode::kFirstLabel);
  header("Table V — synthesis result (modelled)",
         "device loaded with " + w.rules.name() + " (" +
             std::to_string(w.rules.size()) + " rules)");

  const auto rep = clf->synthesis_report();
  const auto mem = clf->memory_report();

  // "Right-sized" block memory: what an engineer would synthesize for
  // this rule set — live bits rounded up to Stratix V M20K granularity.
  constexpr u64 kM20k = 20 * 1024;
  u64 right_sized = 0;
  for (const auto& b : mem.blocks) {
    right_sized += ceil_div(std::max<u64>(b.used_bits, 1), kM20k) * kM20k;
  }

  TextTable t({"resource", "paper", "this model"});
  t.add_row({"Logical utilization (ALMs)", "79,835 / 225,400",
             std::to_string(rep.logic_alms) + " / " +
                 std::to_string(rep.device.alms) + " (calibrated estimate)"});
  t.add_row({"Total block memory bits", "2,097,184 / 54,476,800",
             std::to_string(right_sized) + " right-sized / " +
                 std::to_string(rep.block_memory_bits) + " allocated"});
  t.add_row({"Total registers", "129,273",
             std::to_string(rep.registers) +
                 " (port banks + pipeline regs)"});
  t.add_row({"Maximum frequency", "133.51 MHz",
             TextTable::num(rep.fmax_mhz) + " MHz (model parameter)"});
  t.add_row({"Total pins", "500 / 908",
             std::to_string(rep.pins_used) + " / " +
                 std::to_string(rep.device.pins) + " (model parameter)"});
  t.print(std::cout);

  std::cout << "\nmemory utilization: "
            << TextTable::num(100.0 * static_cast<double>(right_sized) /
                                  static_cast<double>(
                                      rep.device.block_memory_bits),
                              2)
            << " % of the device (paper: ~4 %)\n";

  std::cout << "\nper-block occupancy:\n";
  TextTable bt({"block", "allocated Kb", "live Kb"});
  for (const auto& b : mem.blocks) {
    bt.add_row({b.name, kb(b.capacity_bits), kb(b.used_bits)});
  }
  bt.print(std::cout);
  return 0;
}
