/// \file bench_fig4_update.cpp
/// Fig. 4 / §V.A — incremental update methodology and its measured cost.
/// The paper claims "two clock cycles per rule; one cycle to store source
/// information and one clock cycle to store destination information"
/// plus "an additional clock cycle ... using hash function" — i.e. 3 bus
/// cycles for a rule whose field values are already labelled. New labels
/// additionally pay for the structure words they touch; the BST pays its
/// software-rebuild re-upload (its documented weakness, §III.C).
#include <algorithm>

#include "bench_util.hpp"

using namespace pclass;
using namespace pclass::bench;

namespace {

struct Dist {
  std::vector<u64> samples;
  void add(u64 x) { samples.push_back(x); }
  u64 pct(double p) {
    std::sort(samples.begin(), samples.end());
    if (samples.empty()) return 0;
    const auto idx = static_cast<usize>(
        p * static_cast<double>(samples.size() - 1));
    return samples[idx];
  }
};

}  // namespace

int main() {
  header("Fig. 4 / section V.A — incremental update cost",
         "bus cycles per FlowMod, measured on the update-bus model");

  // Bulk-load cost per rule set and configuration.
  TextTable bulk({"rule set", "config", "bulk cycles/rule"});
  for (const auto type :
       {ruleset::FilterType::kAcl, ruleset::FilterType::kFw}) {
    const Workload w = make_workload(type, 1000, 1);
    for (const auto alg :
         {core::IpAlgorithm::kMbt, core::IpAlgorithm::kBst}) {
      auto clf = make_classifier(w.rules, alg,
                                 core::CombineMode::kFirstLabel);
      bulk.add_row({w.rules.name(), to_string(alg),
                    TextTable::num(
                        static_cast<double>(clf->update_stats().cycles) /
                            static_cast<double>(w.rules.size()),
                        1)});
    }
  }
  bulk.print(std::cout);

  // Incremental inserts into a warm device: split label-hit (all 7 field
  // values already labelled -> the paper's 3-cycle case) from label-miss
  // (fresh field values from an unrelated set -> structure writes).
  const Workload w = make_workload(ruleset::FilterType::kAcl, 1000, 1);
  const ruleset::RuleSet fresh_src =
      ruleset::make_classbench_like(ruleset::FilterType::kAcl, 1000, 777);
  const usize warm = w.rules.size() * 9 / 10;
  for (const auto alg : {core::IpAlgorithm::kMbt, core::IpAlgorithm::kBst}) {
    core::ClassifierConfig cfg =
        core::ClassifierConfig::for_scale(2 * w.rules.size());
    cfg.ip_algorithm = alg;
    core::ConfigurableClassifier clf(cfg);
    for (usize i = 0; i < warm; ++i) {
      ruleset::Rule r = w.rules[i];
      clf.add_rule(r);
    }
    // Churn batch: the tail of the warm set (mostly label-hits) plus 100
    // rules drawn from an independently seeded set (mostly new labels).
    std::vector<ruleset::Rule> churn;
    for (usize i = warm; i < w.rules.size(); ++i) {
      churn.push_back(w.rules[i]);
    }
    for (usize i = 0; i < 100; ++i) {
      ruleset::Rule r = fresh_src[i];
      r.id = RuleId{50000 + static_cast<u32>(i)};
      r.priority = static_cast<Priority>(2000 + i);
      churn.push_back(r);
    }
    Dist hit, miss, del;
    usize hits = 0, misses = 0, skipped = 0;
    for (const ruleset::Rule& r : churn) {
      if (clf.installed_rule(r.id).has_value()) {
        ++skipped;
        continue;
      }
      const usize labels_before =
          clf.label_count(Dimension::kSrcIpHi) +
          clf.label_count(Dimension::kSrcIpLo) +
          clf.label_count(Dimension::kDstIpHi) +
          clf.label_count(Dimension::kDstIpLo) +
          clf.label_count(Dimension::kSrcPort) +
          clf.label_count(Dimension::kDstPort) +
          clf.label_count(Dimension::kProtocol);
      hw::UpdateStats cost;
      try {
        cost = clf.add_rule(r);
      } catch (const ConfigError&) {
        ++skipped;  // duplicate match part across the two seeded sets
        continue;
      } catch (const CapacityError&) {
        ++skipped;  // port-label space exhausted by the merged sets
        continue;
      }
      const usize labels_after =
          clf.label_count(Dimension::kSrcIpHi) +
          clf.label_count(Dimension::kSrcIpLo) +
          clf.label_count(Dimension::kDstIpHi) +
          clf.label_count(Dimension::kDstIpLo) +
          clf.label_count(Dimension::kSrcPort) +
          clf.label_count(Dimension::kDstPort) +
          clf.label_count(Dimension::kProtocol);
      if (labels_after == labels_before) {
        hit.add(cost.cycles);
        ++hits;
      } else {
        miss.add(cost.cycles);
        ++misses;
      }
    }
    for (const ruleset::Rule& r : churn) {
      if (clf.installed_rule(r.id).has_value()) {
        del.add(clf.remove_rule(r.id).cycles);
      }
    }

    std::cout << "\nconfig " << to_string(alg) << " — " << churn.size()
              << " incremental inserts (" << hits << " label-hit, "
              << misses << " label-miss, " << skipped << " skipped):\n";
    TextTable t({"operation", "min", "median", "p90", "max"});
    auto row = [&](const char* name, Dist& d) {
      if (d.samples.empty()) return;
      t.add_row({name, std::to_string(d.pct(0.0)),
                 std::to_string(d.pct(0.5)), std::to_string(d.pct(0.9)),
                 std::to_string(d.pct(1.0))});
    };
    row("insert, labels exist (paper: 3)", hit);
    row("insert, new labels", miss);
    row("delete", del);
    t.print(std::cout);
  }

  const core::ThroughputModel rate;
  std::cout << "\nlabel-hit update rate at 133.51 MHz: "
            << TextTable::num(rate.updates_per_sec(3.0) / 1e6, 1)
            << " M rules/s (the paper's fast-update headline)\n";
  return 0;
}
