/// \file bench_table6.cpp
/// Table VI — "Performance evaluation for IP algorithm": the MBT/BST
/// configuration trade. Paper: MBT 1 access/packet (pipelined), 543 Kb,
/// 8K rules; BST 16 accesses/packet, 49 Kb, 12K rules — same physical
/// blocks.
#include "bench_util.hpp"

using namespace pclass;
using namespace pclass::bench;

namespace {

struct ConfigResult {
  double pipelined_app;     // accesses (cycles) per packet, steady state
  double measured_ip_acc;   // mean IP-structure reads per packet
  u64 ip_live_bits;         // live node storage across the 4 IP dims
  u64 label_live_bits;
  usize rule_capacity;      // budget-model capacity (see below)
};

}  // namespace

int main() {
  const Workload w = make_workload(ruleset::FilterType::kAcl, 10000, 4000);
  header("Table VI — performance evaluation for IP algorithm",
         "workload: " + w.rules.name() + " (" +
             std::to_string(w.rules.size()) + " rules)");

  // Fixed block budget: the physical device allocation (identical for
  // both configurations — both algorithms are synthesized, Fig. 5).
  core::ClassifierConfig base =
      core::ClassifierConfig::for_scale(w.rules.size());
  const double kLoadHeadroom = 0.7;  // rule filter load target
  auto run = [&](core::IpAlgorithm alg) {
    auto clf = make_classifier(w.rules, alg, core::CombineMode::kFirstLabel);
    ConfigResult r{};
    r.pipelined_app =
        static_cast<double>(clf->lookup_pipeline().initiation_interval());
    // Measured IP accesses: total accesses minus the non-IP constants
    // (1 list read per IP dim in first-label mode, 1 proto read, rule
    // filter reads) — report the raw mean and the II; both tell the
    // story.
    const auto res = sweep(*clf, w);
    r.measured_ip_acc = res.mean_accesses;
    const auto mem = clf->memory_report();
    for (const auto& b : mem.blocks) {
      const bool ip_node_block =
          b.name.find(".mbt.") != std::string::npos ||
          b.name.find(".shared") != std::string::npos ||
          b.name.find(".bst") != std::string::npos;
      if (ip_node_block) r.ip_live_bits += b.used_bits;
      if (b.name.find(".labels") != std::string::npos) {
        r.label_live_bits += b.used_bits;
      }
    }
    // Rule capacity under the fixed budget: bits left for the Rule
    // Filter after the live IP structures + labels, at the configured
    // entry width and load headroom.
    const u64 budget = mem.total_capacity_bits;
    const u64 overhead = r.ip_live_bits + r.label_live_bits;
    const double entry_bits =
        static_cast<double>(core::RuleFilter::kWordBits) / kLoadHeadroom;
    r.rule_capacity = static_cast<usize>(
        static_cast<double>(budget - std::min(budget, overhead)) /
        entry_bits);
    return r;
  };

  const ConfigResult mbt = run(core::IpAlgorithm::kMbt);
  const ConfigResult bst = run(core::IpAlgorithm::kBst);

  TextTable t({"IP lookup algorithm", "lookup accesses/packet (pipelined)",
               "memory space required", "number of stored rules"});
  t.add_row({"MBT (paper)", "1 per packet", "543 Kbits", "8K rules"});
  t.add_row({"MBT (measured)",
             TextTable::num(mbt.pipelined_app, 0) + " per packet",
             kb(mbt.ip_live_bits) + " Kbits nodes + " +
                 kb(mbt.label_live_bits) + " Kbits labels",
             std::to_string(mbt.rule_capacity / 1000) + "." +
                 std::to_string((mbt.rule_capacity % 1000) / 100) +
                 "K rules (budget model)"});
  t.add_row({"BST (paper)", "16 per packet", "49 Kbits", "12K rules"});
  t.add_row({"BST (measured)",
             TextTable::num(bst.pipelined_app, 0) + " per packet",
             kb(bst.ip_live_bits) + " Kbits nodes + " +
                 kb(bst.label_live_bits) + " Kbits labels",
             std::to_string(bst.rule_capacity / 1000) + "." +
                 std::to_string((bst.rule_capacity % 1000) / 100) +
                 "K rules (budget model)"});
  t.print(std::cout);

  std::cout << "\nshape: BST node storage is "
            << TextTable::num(static_cast<double>(mbt.ip_live_bits) /
                                  static_cast<double>(
                                      std::max<u64>(1, bst.ip_live_bits)),
                              1)
            << "x smaller than MBT; BST stores "
            << TextTable::num(static_cast<double>(bst.rule_capacity) /
                                  static_cast<double>(
                                      std::max<usize>(1, mbt.rule_capacity)),
                              2)
            << "x the rules under the same block budget; MBT sustains 1 "
               "lookup/cycle, BST pays its walk depth per packet.\n";
  std::cout << "mean end-to-end accesses per lookup (all memories): MBT "
            << TextTable::num(mbt.measured_ip_acc, 1) << ", BST "
            << TextTable::num(bst.measured_ip_acc, 1) << "\n";
  return 0;
}
