/// \file bench_micro.cpp
/// google-benchmark micro-benchmarks of the host-side hot paths: the
/// classify loop for each configuration, incremental updates, and the
/// software baselines. These measure *simulator* performance (how fast
/// the model runs on the host), complementing the cycle-level numbers
/// of the table benches.
#include <benchmark/benchmark.h>

#include "baseline/hypercuts.hpp"
#include "baseline/linear_search.hpp"
#include "bench_util.hpp"

using namespace pclass;
using namespace pclass::bench;

namespace {

const Workload& acl1k() {
  static const Workload w = make_workload(ruleset::FilterType::kAcl, 1000,
                                          4096);
  return w;
}

void classify_loop(benchmark::State& state, core::IpAlgorithm alg,
                   core::CombineMode mode) {
  const Workload& w = acl1k();
  const auto clf = make_classifier(w.rules, alg, mode);
  usize i = 0;
  for (auto _ : state) {
    const auto res = clf->classify(w.trace[i & 4095].header);
    benchmark::DoNotOptimize(res.match);
    ++i;
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

}  // namespace

static void BM_ClassifyMbtFirstLabel(benchmark::State& state) {
  classify_loop(state, core::IpAlgorithm::kMbt,
                core::CombineMode::kFirstLabel);
}
BENCHMARK(BM_ClassifyMbtFirstLabel);

static void BM_ClassifyMbtCrossProduct(benchmark::State& state) {
  classify_loop(state, core::IpAlgorithm::kMbt,
                core::CombineMode::kCrossProduct);
}
BENCHMARK(BM_ClassifyMbtCrossProduct);

static void BM_ClassifyBstFirstLabel(benchmark::State& state) {
  classify_loop(state, core::IpAlgorithm::kBst,
                core::CombineMode::kFirstLabel);
}
BENCHMARK(BM_ClassifyBstFirstLabel);

static void BM_AddRemoveRuleMbt(benchmark::State& state) {
  const Workload& w = acl1k();
  const auto clf = make_classifier(w.rules, core::IpAlgorithm::kMbt,
                                   core::CombineMode::kFirstLabel);
  // Churn one synthetic rule combining existing field values.
  ruleset::Rule r = w.rules[0];
  r.dst_port = w.rules[1].dst_port;
  r.id = RuleId{60000};
  r.priority = static_cast<Priority>(w.rules.size() + 7);
  bool fresh = true;
  for (const auto& x : w.rules) fresh &= !x.same_match(r);
  if (!fresh) {
    state.SkipWithError("synthetic churn rule collides");
    return;
  }
  for (auto _ : state) {
    clf->add_rule(r);
    clf->remove_rule(r.id);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations() * 2));
}
BENCHMARK(BM_AddRemoveRuleMbt);

static void BM_LinearSearchOracle(benchmark::State& state) {
  const Workload& w = acl1k();
  const baseline::LinearSearch ls(w.rules);
  usize i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ls.classify(w.trace[i & 4095].header, nullptr));
    ++i;
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_LinearSearchOracle);

static void BM_HyperCutsLookup(benchmark::State& state) {
  const Workload& w = acl1k();
  const baseline::HyperCuts hc(w.rules);
  usize i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hc.classify(w.trace[i & 4095].header, nullptr));
    ++i;
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_HyperCutsLookup);

static void BM_PacketParse(benchmark::State& state) {
  const auto pkt = net::make_packet(
      {ipv4(10, 0, 0, 1), ipv4(10, 0, 0, 2), 1234, 80, net::kProtoTcp}, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::parse_five_tuple(pkt.bytes));
  }
}
BENCHMARK(BM_PacketParse);

BENCHMARK_MAIN();
