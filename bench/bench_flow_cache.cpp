/// \file bench_flow_cache.cpp
/// The paper's flow premise quantified (§I: "It is only necessary that
/// the first packet header of a flow matches the matching rule"): with
/// an exact-match flow cache in front of the classifier, steady-state
/// packets cost one hash + one read; only flow-opening packets pay the
/// 4-phase lookup. Sweeps cache size and traffic locality.
#include "bench_util.hpp"
#include "sdn/switch_device.hpp"

using namespace pclass;
using namespace pclass::bench;

int main() {
  header("Flow cache — fast path for established flows",
         "acl1-1K rules; packets-per-flow controls temporal locality");

  const auto rules =
      ruleset::make_classbench_like(ruleset::FilterType::kAcl, 1000);

  TextTable t({"cache lines", "packets/flow", "hit rate",
               "mean cycles/pkt", "vs no-cache"});
  for (const u32 depth : {0u, 1024u, 8192u}) {
    for (const usize pkts_per_flow : {usize{1}, usize{8}, usize{64}}) {
      core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(1000);
      cfg.combine_mode = core::CombineMode::kCrossProduct;
      sdn::SwitchDevice sw("s", cfg, depth);
      for (const auto& r : rules) {
        sdn::FlowMod fm;
        fm.command = sdn::FlowMod::Command::kAdd;
        fm.cookie = r.id;
        fm.match = r;
        fm.action = sdn::ActionSpec::decode(r.action.token);
        sw.handle(fm);
      }

      // Flow-structured traffic: each flow sends pkts_per_flow packets
      // back-to-back (flow tables see bursts; caches love them).
      workload::TraceProfile tp = workload::TraceProfile::standard(2000, 77);
      tp.miss_fraction = 0.05;
      const auto flows = workload::TraceSynthesizer(rules, tp).generate();
      u64 cycles = 0, packets = 0;
      for (const auto& e : flows) {
        for (usize k = 0; k < pkts_per_flow; ++k) {
          cycles += sw.process_header(e.header, 64).lookup_cycles;
          ++packets;
        }
      }
      const double mean =
          static_cast<double>(cycles) / static_cast<double>(packets);
      static double no_cache_baseline[3] = {0, 0, 0};
      const usize li = pkts_per_flow == 1 ? 0 : pkts_per_flow == 8 ? 1 : 2;
      if (depth == 0) no_cache_baseline[li] = mean;
      t.add_row({depth == 0 ? "off" : std::to_string(depth),
                 std::to_string(pkts_per_flow),
                 depth == 0 ? "-"
                            : TextTable::num(
                                  100.0 * sw.flow_cache_stats().hit_rate(),
                                  1) + " %",
                 TextTable::num(mean, 1),
                 depth == 0
                     ? "1.00x"
                     : TextTable::num(no_cache_baseline[li] / mean, 2) +
                           "x"});
    }
  }
  t.print(std::cout);
  std::cout << "\nreading: at realistic flow lengths the cache collapses "
               "the mean cost toward its 2-cycle hit path even in the "
               "exact (cross-product) combination mode — classification "
               "cost is paid per flow, not per packet, which is the "
               "premise the paper's update-centric design rests on.\n";
  return 0;
}
