// SDN layer: FlowMod handling, flow statistics, action dispatch and the
// controller's algorithm-selection policy.
#include <gtest/gtest.h>

#include "sdn/controller.hpp"
#include "sdn/switch_device.hpp"

using namespace pclass;
using namespace pclass::sdn;
using pclass::ruleset::IpPrefix;
using pclass::ruleset::PortRange;
using pclass::ruleset::ProtoMatch;
using pclass::ruleset::Rule;

namespace {

Rule web_rule(u32 id) {
  Rule r;
  r.id = RuleId{id};
  r.priority = id;
  r.dst_ip = IpPrefix::make(ipv4(10, 0, 0, 0), 8);
  r.dst_port = PortRange::exact(80);
  r.proto = ProtoMatch::exact(net::kProtoTcp);
  return r;
}

net::FiveTuple web_header() {
  return {ipv4(1, 2, 3, 4), ipv4(10, 9, 8, 7), 5555, 80, net::kProtoTcp};
}

FlowMod add_mod(const Rule& r, ActionSpec a) {
  FlowMod fm;
  fm.command = FlowMod::Command::kAdd;
  fm.cookie = r.id;
  fm.match = r;
  fm.action = a;
  return fm;
}

}  // namespace

TEST(ActionSpecTest, EncodeDecodeRoundTrip) {
  for (const ActionSpec a : {ActionSpec::drop(), ActionSpec::output(12),
                             ActionSpec::group(0x3FFF)}) {
    EXPECT_EQ(ActionSpec::decode(a.encode()), a);
  }
}

TEST(SwitchDevice, FlowModAddAndForward) {
  SwitchDevice sw("s1");
  const auto cost = sw.handle(add_mod(web_rule(1), ActionSpec::output(3)));
  EXPECT_GT(cost.cycles, 0u);
  EXPECT_EQ(sw.flow_count(), 1u);

  const auto res = sw.process_header(web_header(), 64);
  EXPECT_EQ(res.action.kind, ActionSpec::Kind::kOutput);
  EXPECT_EQ(res.action.arg, 3u);
  ASSERT_TRUE(res.rule.has_value());
  EXPECT_EQ(res.rule->value, 1u);
  EXPECT_GT(res.lookup_cycles, 0u);
  EXPECT_EQ(sw.stats().packets_matched, 1u);
}

TEST(SwitchDevice, TableMissDrops) {
  SwitchDevice sw("s1");
  sw.handle(add_mod(web_rule(1), ActionSpec::output(3)));
  net::FiveTuple other = web_header();
  other.dst_port = 443;
  const auto res = sw.process_header(other, 64);
  EXPECT_EQ(res.action.kind, ActionSpec::Kind::kDrop);
  EXPECT_FALSE(res.rule.has_value());
  EXPECT_EQ(sw.stats().packets_dropped, 1u);
}

TEST(SwitchDevice, ExplicitDropActionCounted) {
  SwitchDevice sw("s1");
  sw.handle(add_mod(web_rule(1), ActionSpec::drop()));
  const auto res = sw.process_header(web_header(), 64);
  ASSERT_TRUE(res.rule.has_value());  // matched...
  EXPECT_EQ(sw.stats().packets_matched, 1u);
  EXPECT_EQ(sw.stats().packets_dropped, 1u);  // ...and dropped by action
}

TEST(SwitchDevice, FlowStatsAccumulate) {
  SwitchDevice sw("s1");
  sw.handle(add_mod(web_rule(1), ActionSpec::output(1)));
  sw.process_header(web_header(), 100);
  sw.process_header(web_header(), 60);
  const auto fs = sw.flow_stats(RuleId{1});
  ASSERT_TRUE(fs.has_value());
  EXPECT_EQ(fs->packets, 2u);
  EXPECT_EQ(fs->bytes, 160u);
}

TEST(SwitchDevice, FlowModDelete) {
  SwitchDevice sw("s1");
  sw.handle(add_mod(web_rule(1), ActionSpec::output(1)));
  FlowMod del;
  del.command = FlowMod::Command::kDelete;
  del.cookie = RuleId{1};
  sw.handle(del);
  EXPECT_EQ(sw.flow_count(), 0u);
  EXPECT_FALSE(sw.process_header(web_header(), 64).rule.has_value());
}

TEST(SwitchDevice, RawPacketPath) {
  SwitchDevice sw("s1");
  sw.handle(add_mod(web_rule(1), ActionSpec::output(7)));
  const auto pkt = net::make_packet(web_header(), 32);
  const auto res = sw.process_packet(pkt.bytes);
  EXPECT_EQ(res.action.arg, 7u);
  // Garbage is a parse error.
  const std::vector<u8> junk(6, 0xAB);
  sw.process_packet(junk);
  EXPECT_EQ(sw.stats().parse_errors, 1u);
}

TEST(SwitchDevice, ConfigModSwitchesAlgorithm) {
  SwitchDevice sw("s1");
  sw.handle(add_mod(web_rule(1), ActionSpec::output(1)));
  EXPECT_EQ(sw.classifier().ip_algorithm(), core::IpAlgorithm::kMbt);
  const auto cost = sw.handle(ConfigMod{core::IpAlgorithm::kBst});
  EXPECT_GT(cost.config_toggles, 0u);
  EXPECT_EQ(sw.classifier().ip_algorithm(), core::IpAlgorithm::kBst);
  // Still forwards correctly after the switch.
  EXPECT_TRUE(sw.process_header(web_header(), 64).rule.has_value());
  // And the third backend family rides the same ConfigMod.
  const auto cost2 = sw.handle(ConfigMod{core::IpAlgorithm::kRvh});
  EXPECT_GT(cost2.config_toggles, 0u);
  EXPECT_EQ(sw.classifier().ip_algorithm(), core::IpAlgorithm::kRvh);
  EXPECT_TRUE(sw.process_header(web_header(), 64).rule.has_value());
}

TEST(Controller, PolicyPicksBstForLargeTables) {
  EXPECT_EQ(Controller::select_algorithm({.realtime = true,
                                          .expected_rules = 500},
                                         8000),
            core::IpAlgorithm::kMbt);
  EXPECT_EQ(Controller::select_algorithm({.realtime = false,
                                          .expected_rules = 12000},
                                         8000),
            core::IpAlgorithm::kBst);
}

TEST(Controller, BroadcastsToAllSwitches) {
  SwitchDevice s1("s1"), s2("s2");
  Controller ctl("c0");
  ctl.attach(s1);
  ctl.attach(s2);
  ctl.install(web_rule(1), ActionSpec::output(2));
  EXPECT_EQ(s1.flow_count(), 1u);
  EXPECT_EQ(s2.flow_count(), 1u);
  EXPECT_EQ(ctl.stats().flow_mods_sent, 1u);
  EXPECT_GT(ctl.stats().update_cycles_total, 0u);

  ctl.remove(RuleId{1});
  EXPECT_EQ(s1.flow_count(), 0u);
  EXPECT_EQ(s2.flow_count(), 0u);
}

TEST(Controller, ConfigureDrivesIpAlgS) {
  SwitchDevice sw("s1");
  Controller ctl("c0");
  ctl.attach(sw);
  ctl.configure({.realtime = false, .expected_rules = 20000}, 8000);
  EXPECT_EQ(sw.classifier().ip_algorithm(), core::IpAlgorithm::kBst);
  EXPECT_EQ(ctl.stats().config_mods_sent, 1u);
}

TEST(Controller, InstallRuleset) {
  SwitchDevice sw("s1");
  Controller ctl("c0");
  ctl.attach(sw);
  ruleset::RuleSet rs;
  for (u32 i = 0; i < 10; ++i) {
    Rule r = web_rule(i);
    r.dst_port = PortRange::exact(static_cast<u16>(8000 + i));
    r.action = ruleset::Action{ActionSpec::output(static_cast<u16>(i))
                                   .encode()};
    rs.add(r);
  }
  ctl.install_ruleset(rs);
  EXPECT_EQ(sw.flow_count(), 10u);
  net::FiveTuple h = web_header();
  h.dst_port = 8004;
  EXPECT_EQ(sw.process_header(h, 64).action.arg, 4u);
}
