/// Tests for the batched multi-worker dataplane runtime: element graph
/// wiring, batch boundary conditions, snapshot publication under a
/// concurrent writer (no torn reads, monotonic versions), and engine
/// end-to-end agreement with the single-threaded classifier.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "baseline/linear_search.hpp"
#include "common/error.hpp"
#include "dataplane/engine.hpp"
#include "ruleset/generator.hpp"
#include "ruleset/trace_gen.hpp"

using namespace pclass;
using namespace pclass::dataplane;

namespace {

/// A rule matching exactly src_ip == 10.0.(i>>8).(i&255), any dst/port.
ruleset::Rule probe_rule(u32 i) {
  ruleset::Rule r;
  r.src_ip = ruleset::IpPrefix::make(0x0A000000u | (i & 0xFFFFu), 32);
  r.id = RuleId{i};
  r.priority = i;
  r.action = ruleset::Action{sdn::ActionSpec::output(1).encode()};
  return r;
}

net::FiveTuple probe_tuple(u32 i) {
  net::FiveTuple t;
  t.src_ip = 0x0A000000u | (i & 0xFFFFu);
  t.dst_ip = 0x01020304u;
  t.protocol = net::kProtoTcp;
  return t;
}

sdn::Message add_msg(u32 i) {
  sdn::FlowMod fm;
  fm.command = sdn::FlowMod::Command::kAdd;
  fm.cookie = RuleId{i};
  fm.match = probe_rule(i);
  fm.action = sdn::ActionSpec::output(1);
  return fm;
}

/// An element that just counts what flows through it.
class CountingElement : public Element {
 public:
  CountingElement() : Element("counter") {}
  void push_batch(net::PacketBatch& b) override {
    ++batches;
    packets += b.size();
    forward(b);
  }
  u64 batches = 0;
  u64 packets = 0;
};

core::ClassifierConfig small_config() {
  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(1000);
  // The synthetic probe rules are hundreds of distinct /32s under one
  // /16; the compact BST holds them comfortably at this scale.
  cfg.ip_algorithm = core::IpAlgorithm::kBst;
  return cfg;
}

}  // namespace

// ---- PacketBatch ----------------------------------------------------------

TEST(PacketBatch, CapacityAndBoundaries) {
  net::PacketBatch b(4);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.capacity(), 4u);
  for (u32 i = 0; i < 4; ++i) {
    EXPECT_TRUE(b.push(probe_tuple(i)));
  }
  EXPECT_TRUE(b.full());
  EXPECT_FALSE(b.push(probe_tuple(99)));  // over capacity: rejected
  EXPECT_EQ(b.size(), 4u);
  b.clear();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.capacity(), 4u);
}

TEST(TrafficPool, RejectsMixedEntryKinds) {
  TrafficPool tuple_pool;
  tuple_pool.add(probe_tuple(1));
  EXPECT_THROW(tuple_pool.add(net::make_packet(probe_tuple(2))), Error);

  TrafficPool packet_pool;
  packet_pool.add(net::make_packet(probe_tuple(1)));
  EXPECT_THROW(packet_pool.add(probe_tuple(2)), Error);
}

// ---- element graph wiring -------------------------------------------------

TEST(ElementGraph, WiringForwardsDownstream) {
  RuleProgramPublisher programs(small_config());
  programs.apply(add_msg(1));

  Pipeline p;
  auto* counter_in = p.emplace<CountingElement>();
  auto* parser = p.emplace<Parser>();
  auto* clf = p.emplace<ClassifierElement>(&programs);
  auto* counter_out = p.emplace<CountingElement>();
  auto* sink = p.emplace<ActionSink>();
  ASSERT_EQ(p.size(), 5u);
  EXPECT_EQ(counter_in->next(), parser);
  EXPECT_EQ(parser->next(), clf);
  EXPECT_EQ(clf->next(), counter_out);
  EXPECT_EQ(counter_out->next(), sink);
  EXPECT_EQ(sink->next(), nullptr);

  net::PacketBatch b(8);
  b.push(probe_tuple(1));
  b.push(probe_tuple(2));  // no rule for it: miss
  p.push_batch(b);

  EXPECT_EQ(counter_in->packets, 2u);
  EXPECT_EQ(counter_out->packets, 2u);
  EXPECT_EQ(sink->packets(), 2u);
  EXPECT_EQ(sink->matched(), 1u);
  EXPECT_EQ(sink->dropped(), 1u);
  EXPECT_EQ(b.rule_version, 1u);
  EXPECT_TRUE(b.meta(0).matched);
  EXPECT_EQ(b.meta(0).rule, RuleId{1});
  EXPECT_FALSE(b.meta(1).matched);
}

TEST(ElementGraph, ParserHandlesRawAndMalformedPackets) {
  RuleProgramPublisher programs(small_config());
  programs.apply(add_msg(7));

  Pipeline p;
  auto* parser = p.emplace<Parser>();
  p.emplace<ClassifierElement>(&programs);
  auto* sink = p.emplace<ActionSink>();

  const net::Packet good = net::make_packet(probe_tuple(7));
  net::Packet bad;
  bad.bytes = {0xDE, 0xAD};  // truncated garbage

  net::PacketBatch b(8);
  b.push(&good);
  b.push(&bad);
  p.push_batch(b);

  EXPECT_EQ(parser->parsed(), 1u);
  EXPECT_EQ(parser->errors(), 1u);
  EXPECT_EQ(sink->matched(), 1u);
  EXPECT_EQ(sink->dropped(), 1u);
  EXPECT_TRUE(b.meta(1).parse_error);
}

// ---- batch boundaries through a full pipeline -----------------------------

TEST(BatchBoundaries, EmptyBatchOfOneAndOverCapacity) {
  RuleProgramPublisher programs(small_config());
  programs.apply(add_msg(3));

  Pipeline p;
  auto* parser = p.emplace<Parser>();
  auto* clf = p.emplace<ClassifierElement>(&programs);
  auto* sink = p.emplace<ActionSink>();
  (void)parser;

  // Empty batch: flows through, touches nothing.
  net::PacketBatch empty(4);
  p.push_batch(empty);
  EXPECT_EQ(sink->packets(), 0u);
  EXPECT_EQ(clf->lookups(), 0u);
  EXPECT_EQ(empty.rule_version, 1u);  // still stamped

  // Batch of one.
  net::PacketBatch one(4);
  one.push(probe_tuple(3));
  p.push_batch(one);
  EXPECT_EQ(sink->packets(), 1u);
  EXPECT_EQ(sink->matched(), 1u);

  // A pool larger than the batch capacity drains over several batches.
  TrafficPool pool;
  const usize kPackets = 10;  // capacity 4 -> batches of 4/4/2
  for (u32 i = 0; i < kPackets; ++i) pool.add(probe_tuple(3));
  PacketSource source(&pool, /*loop=*/false);
  source.connect(p.head());
  net::PacketBatch scratch(4);
  usize batches = 0;
  while (true) {
    source.push_batch(scratch);
    if (source.exhausted()) break;
    ++batches;
  }
  EXPECT_EQ(batches, 3u);
  EXPECT_EQ(sink->packets(), 1u + kPackets);
  EXPECT_EQ(sink->matched(), 1u + kPackets);
}

// ---- rule-program snapshots ----------------------------------------------

// ---- WorkerBudget ---------------------------------------------------------

TEST(WorkerBudget, AcquireClampsBlocksAndTracksPeak) {
  EXPECT_THROW(WorkerBudget{0}, ConfigError);
  WorkerBudget b(2);
  EXPECT_EQ(b.capacity(), 2u);
  // Over-asks are clamped to the capacity, never deadlocked.
  EXPECT_EQ(b.acquire(5), 2u);
  EXPECT_EQ(b.in_use(), 2u);

  // A second acquire must block until the grant comes back.
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    const usize g = b.acquire(1);
    got.store(true);
    b.release(g);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  b.release(2);
  waiter.join();
  EXPECT_TRUE(got.load());
  EXPECT_EQ(b.in_use(), 0u);
  EXPECT_EQ(b.peak_in_use(), 2u);  // never above capacity
  // Releasing more than held is a bug, not a no-op.
  EXPECT_THROW(b.release(1), InternalError);
}

TEST(WorkerBudget, EngineRunsWithTheGrantedWorkerCount) {
  RuleProgramPublisher programs(small_config());
  for (u32 i = 0; i < 64; ++i) programs.apply(add_msg(i));
  TrafficPool pool;
  for (u32 i = 0; i < 512; ++i) pool.add(probe_tuple(i % 64));

  WorkerBudget budget(2);
  Engine engine({.workers = 4, .batch_size = 16, .budget = &budget},
                programs);
  const EngineReport rep = engine.run(pool);
  // The budget clamped the engine to 2 workers, all packets still flowed.
  EXPECT_EQ(rep.workers.size(), 2u);
  EXPECT_EQ(rep.packets(), 512u);
  EXPECT_EQ(budget.in_use(), 0u);      // released after the run
  EXPECT_EQ(budget.peak_in_use(), 2u);
}

TEST(RuleProgram, VersionsCountUpdatesAndFailedBatchesRollBack) {
  RuleProgramPublisher programs(small_config());
  EXPECT_EQ(programs.version(), 0u);
  programs.apply(add_msg(1));
  programs.apply(add_msg(2));
  EXPECT_EQ(programs.version(), 2u);
  EXPECT_EQ(programs.acquire()->rule_count(), 2u);
  // Each update is accepted once, even though the standby replica also
  // re-applies older entries while catching up.
  EXPECT_EQ(programs.stats().updates_applied, 2u);

  // A batch whose last update is invalid (duplicate id) must leave no
  // trace: same version, same rule count, and later updates still work.
  std::vector<sdn::Message> batch = {add_msg(3), add_msg(3)};
  EXPECT_THROW(programs.apply_batch(batch), Error);
  EXPECT_EQ(programs.version(), 2u);
  EXPECT_EQ(programs.acquire()->rule_count(), 2u);
  programs.apply(add_msg(4));
  EXPECT_EQ(programs.version(), 3u);
  EXPECT_EQ(programs.acquire()->rule_count(), 3u);
  EXPECT_EQ(programs.stats().updates_applied, 3u);
}

TEST(RuleProgram, SnapshotSwapUnderConcurrentWriter) {
  RuleProgramPublisher programs(small_config());
  constexpr u32 kUpdates = 400;
  constexpr usize kReaders = 4;

  // Readers classify probe tuples against the acquired snapshot. The
  // consistency invariant of the publisher: snapshot version v contains
  // exactly rules {1..v}, so tuple i must match iff i <= v. Any torn
  // state (rule visible before its version, or missing after) fails.
  std::atomic<bool> stop{false};
  std::atomic<u64> violations{0};
  std::atomic<u64> reads{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (usize r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      u64 last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = programs.acquire();
        const u64 v = snap->version();
        if (v < last_version) {
          violations.fetch_add(1);  // non-monotonic acquire
        }
        last_version = v;
        if (snap->rule_count() != v) {
          violations.fetch_add(1);  // version/content mismatch
        }
        // Spot-check three tuples around the frontier.
        for (const u64 probe :
             {u64{1}, v > 0 ? v : u64{1}, u64{v + 1}}) {
          if (probe > kUpdates) continue;
          const auto res = snap->classifier().classify(
              probe_tuple(static_cast<u32>(probe)));
          const bool should_match = probe >= 1 && probe <= v;
          if (res.match.has_value() != should_match) {
            violations.fetch_add(1);
          }
        }
        reads.fetch_add(1);
      }
    });
  }

  for (u32 i = 1; i <= kUpdates; ++i) {
    programs.apply(add_msg(i));
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(programs.version(), kUpdates);
  EXPECT_EQ(programs.stats().publishes, kUpdates);
}

TEST(RuleProgram, EngineObservesMonotonicVersionsDuringUpdateStorm) {
  RuleProgramPublisher programs(small_config());
  programs.apply(add_msg(1));

  TrafficPool pool;
  for (u32 i = 1; i <= 64; ++i) pool.add(probe_tuple(i % 8 + 1));

  Engine engine({.workers = 2, .batch_size = 8, .loop = true}, programs);
  engine.start(pool);
  for (u32 i = 2; i <= 200; ++i) {
    programs.apply(add_msg(i));
  }
  const EngineReport rep = engine.stop();

  EXPECT_TRUE(rep.versions_monotonic());
  EXPECT_GT(rep.packets(), 0u);
  for (const auto& w : rep.workers) {
    EXPECT_GE(w.max_version, w.min_version);
    EXPECT_LE(w.max_version, 200u);
  }
}

// ---- batched classification ----------------------------------------------

TEST(ClassifyBatch, AgreesWithScalarClassify) {
  auto rules = ruleset::make_classbench_like(ruleset::FilterType::kAcl, 1000);
  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(rules.size());
  cfg.combine_mode = core::CombineMode::kCrossProduct;
  // Memo off pins the strict contract: per-packet cycles (not just
  // results/accesses) identical to the scalar path. The full matrix —
  // memo on/off, both engines, random batch sizes — lives in
  // tests/test_batch_phase2.cpp.
  cfg.batch_probe_memo = false;
  core::ConfigurableClassifier clf(cfg);
  clf.add_rules(rules);

  ruleset::TraceGenerator tg(rules, {.headers = 256, .seed = 11});
  const auto trace = tg.generate();
  std::vector<net::FiveTuple> in;
  for (const auto& e : trace) in.push_back(e.header);
  std::vector<core::ClassifyResult> out(in.size());
  clf.classify_batch(in, out);

  for (usize i = 0; i < in.size(); ++i) {
    const auto want = clf.classify(in[i]);
    EXPECT_EQ(out[i].match.has_value(), want.match.has_value());
    if (out[i].match && want.match) {
      EXPECT_EQ(out[i].match->rule, want.match->rule);
    }
    EXPECT_EQ(out[i].cycles, want.cycles);
  }
}

// ---- engine end-to-end ----------------------------------------------------

TEST(Engine, MultiWorkerMatchesSingleThreadedOracle) {
  auto rules = ruleset::make_classbench_like(ruleset::FilterType::kAcl, 1000);
  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(rules.size());
  cfg.combine_mode = core::CombineMode::kCrossProduct;

  RuleProgramPublisher programs(cfg);
  programs.install_ruleset(rules);

  ruleset::TraceGenerator tg(rules, {.headers = 2000, .seed = 5});
  const auto trace = tg.generate();

  // Single-threaded reference counts.
  baseline::LinearSearch oracle(rules);
  usize want_matched = 0;
  for (const auto& e : trace) {
    if (oracle.classify(e.header, nullptr) != nullptr) ++want_matched;
  }

  TrafficPool pool = TrafficPool::from_trace(trace, /*materialize=*/false);
  Engine engine({.workers = 3, .batch_size = 32, .flow_cache_depth = 1024},
                programs);
  const EngineReport rep = engine.run(pool);

  EXPECT_EQ(rep.packets(), trace.size());
  EXPECT_EQ(rep.matched(), want_matched);
  EXPECT_TRUE(rep.versions_monotonic());
  // Work was actually spread over the workers.
  usize active_workers = 0;
  for (const auto& w : rep.workers) {
    if (w.packets > 0) ++active_workers;
    EXPECT_EQ(w.parse_errors, 0u);
  }
  EXPECT_GE(active_workers, 2u);
  // Latency percentiles come out ordered.
  const auto lat = rep.merged_latency();
  EXPECT_LE(lat.percentile(50), lat.percentile(99));
  EXPECT_GE(lat.max(), lat.min());
}

TEST(FlowCacheElement, ServesRepeatsAndFlushesOnVersionBump) {
  RuleProgramPublisher programs(small_config());
  programs.apply(add_msg(5));

  Pipeline p;
  auto* cache = p.emplace<FlowCacheElement>(&programs, 256);
  p.emplace<ClassifierElement>(&programs, cache);
  auto* sink = p.emplace<ActionSink>();

  net::PacketBatch b(4);
  b.push(probe_tuple(5));
  p.push_batch(b);  // miss -> full lookup -> fill
  b.clear();
  b.push(probe_tuple(5));
  p.push_batch(b);  // repeat flow: served by the cache
  EXPECT_EQ(sink->cache_hits(), 1u);
  EXPECT_EQ(sink->matched(), 2u);
  EXPECT_EQ(cache->stats().hits, 1u);

  // A rule update bumps the version; the stale verdict must not outlive
  // the flush.
  sdn::FlowMod del;
  del.command = sdn::FlowMod::Command::kDelete;
  del.cookie = RuleId{5};
  programs.apply(del);

  b.clear();
  b.push(probe_tuple(5));
  p.push_batch(b);
  EXPECT_EQ(cache->stats().invalidations, 1u);
  EXPECT_EQ(sink->cache_hits(), 1u);   // not served from the stale line
  EXPECT_EQ(sink->matched(), 2u);      // rule is gone: miss
  EXPECT_EQ(b.rule_version, 2u);
}

TEST(Engine, SingleWorkerCacheHitsOnRepeatedFlows) {
  RuleProgramPublisher programs(small_config());
  programs.apply(add_msg(9));

  // 64 copies of one flow, batch size 16: batch 1 fills the cache, the
  // remaining 3 batches hit it.
  TrafficPool pool;
  for (u32 i = 0; i < 64; ++i) pool.add(probe_tuple(9));
  Engine engine({.workers = 1, .batch_size = 16, .flow_cache_depth = 64},
                programs);
  const EngineReport rep = engine.run(pool);
  ASSERT_EQ(rep.workers.size(), 1u);
  EXPECT_EQ(rep.workers[0].packets, 64u);
  EXPECT_EQ(rep.workers[0].cache_hits, 48u);
  EXPECT_GT(rep.workers[0].cache_hit_rate(), 0.7);
  EXPECT_EQ(rep.workers[0].classifier_lookups, 16u);
}

TEST(Engine, RawPacketPathParsesOnWorkers) {
  auto rules = ruleset::make_classbench_like(ruleset::FilterType::kIpc, 1000);
  RuleProgramPublisher programs(
      core::ClassifierConfig::for_scale(rules.size()));
  programs.install_ruleset(rules);

  ruleset::TraceGenerator tg(rules, {.headers = 300, .seed = 3});
  TrafficPool pool =
      TrafficPool::from_trace(tg.generate(), /*materialize=*/true);

  Engine engine({.workers = 2, .batch_size = 16}, programs);
  const EngineReport rep = engine.run(pool);
  EXPECT_EQ(rep.packets(), 300u);
  u64 lookups = 0;
  for (const auto& w : rep.workers) lookups += w.classifier_lookups;
  EXPECT_EQ(lookups, 300u);  // no flow cache: every packet classified
}
