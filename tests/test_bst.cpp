// Unit + property tests for the balanced-BST engine (the compact IP
// option): interval construction, balanced depth, rebuild-based updates.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "alg/binary_search_tree.hpp"
#include "common/error.hpp"
#include "common/random.hpp"

using namespace pclass;
using namespace pclass::alg;
using pclass::ruleset::SegmentPrefix;

namespace {

struct Rig {
  std::map<u16, Priority> prio;
  LabelListStore lists{"lists", 4096, kIpLabelBits};
  std::unique_ptr<BinarySearchTree> bst;
  hw::CommandLog log;

  explicit Rig(BstConfig c = {}) {
    bst = std::make_unique<BinarySearchTree>(
        "t", c, lists, [this](Label l) {
          const auto it = prio.find(l.value);
          return it == prio.end() ? kNoPriority : it->second;
        });
  }

  void insert(u16 value, u8 len, u16 label, Priority p) {
    prio[label] = p;
    bst->insert(SegmentPrefix::make(value, len), Label{label}, log);
  }
  std::vector<u16> lookup(u16 key) {
    hw::CycleRecorder rec;
    std::vector<u16> out;
    for (Label l : lists.read_list(bst->lookup(key, &rec), &rec)) {
      out.push_back(l.value);
    }
    return out;
  }
};

struct Oracle {
  struct Entry {
    SegmentPrefix p;
    u16 label;
    Priority prio;
  };
  std::vector<Entry> entries;
  std::vector<u16> lookup(u16 key) const {
    std::vector<Entry> hit;
    for (const Entry& e : entries) {
      if (e.p.matches(key)) hit.push_back(e);
    }
    std::sort(hit.begin(), hit.end(), [](const Entry& a, const Entry& b) {
      return a.prio != b.prio ? a.prio < b.prio : a.label < b.label;
    });
    std::vector<u16> out;
    for (const Entry& e : hit) out.push_back(e.label);
    return out;
  }
};

}  // namespace

TEST(Bst, EmptyMisses) {
  Rig rig;
  EXPECT_TRUE(rig.lookup(0x1234).empty());
  EXPECT_EQ(rig.bst->node_count(), 0u);
}

TEST(Bst, SinglePrefix) {
  Rig rig;
  rig.insert(0xAB00, 8, 1, 0);
  EXPECT_EQ(rig.lookup(0xAB42), std::vector<u16>{1});
  EXPECT_TRUE(rig.lookup(0xAC00).empty());
  EXPECT_TRUE(rig.lookup(0x0000).empty());
}

TEST(Bst, NestedPrefixesPriorityOrder) {
  Rig rig;
  rig.insert(0, 0, 10, 5);
  rig.insert(0xAB00, 8, 11, 2);
  rig.insert(0xABC0, 12, 12, 8);
  EXPECT_EQ(rig.lookup(0xABC5), (std::vector<u16>{11, 10, 12}));
  EXPECT_EQ(rig.lookup(0xAB00), (std::vector<u16>{11, 10}));
  EXPECT_EQ(rig.lookup(0x0001), std::vector<u16>{10});
}

TEST(Bst, IntervalCountIsElementary) {
  Rig rig;
  rig.insert(0xAB00, 8, 1, 0);
  // Intervals: [0, AAFF], [AB00, ABFF], [AC00, FFFF] -> 3 nodes.
  EXPECT_EQ(rig.bst->node_count(), 3u);
  rig.insert(0, 0, 2, 1);  // wildcard adds no boundary
  EXPECT_EQ(rig.bst->node_count(), 3u);
}

TEST(Bst, DepthIsLogarithmic) {
  Rig rig;
  // 32 disjoint /8 prefixes -> 32+ intervals; depth ~ log2.
  for (u16 i = 0; i < 32; ++i) {
    rig.insert(static_cast<u16>(i << 11), 5, static_cast<u16>(i), i);
  }
  EXPECT_LE(rig.bst->depth(), 6u);
  hw::CycleRecorder rec;
  (void)rig.bst->lookup(0x0800, &rec);
  EXPECT_LE(rec.memory_accesses(), rig.bst->depth());
  EXPECT_GE(rec.memory_accesses(), 1u);
}

TEST(Bst, SixteenAccessWorstCaseBound) {
  // The paper budgets 16 accesses/packet: even a dense set of host
  // prefixes stays within ceil(log2(n)) <= 16 for any segment content.
  Rig rig;
  Rng rng(3);
  for (u16 i = 0; i < 500; ++i) {
    const u16 v = static_cast<u16>(rng.next());
    if (rig.bst->prefix_count() !=
        (rig.insert(v, 16, i, i), rig.bst->prefix_count())) {
    }
    if (rig.bst->prefix_count() >= 400) break;
  }
  hw::CycleRecorder rec;
  u64 worst = 0;
  for (u32 k = 0; k < 2000; k += 17) {
    hw::CycleRecorder r;
    (void)rig.bst->lookup(static_cast<u16>(k * 31), &r);
    worst = std::max(worst, r.memory_accesses());
  }
  EXPECT_LE(worst, 16u);
}

TEST(Bst, RemoveRestores) {
  Rig rig;
  rig.insert(0xAB00, 8, 1, 1);
  rig.insert(0xABCD, 16, 2, 2);
  rig.bst->remove(SegmentPrefix::make(0xABCD, 16), rig.log);
  EXPECT_EQ(rig.lookup(0xABCD), std::vector<u16>{1});
  rig.bst->remove(SegmentPrefix::make(0xAB00, 8), rig.log);
  EXPECT_TRUE(rig.lookup(0xABCD).empty());
  EXPECT_EQ(rig.lists.live_words(), 0u);
  EXPECT_EQ(rig.bst->node_count(), 0u);
}

TEST(Bst, BulkEqualsIncremental) {
  Rig inc, bulk;
  std::vector<std::pair<SegmentPrefix, Label>> batch;
  Rng rng(9);
  for (u16 i = 0; i < 40; ++i) {
    const u8 len = static_cast<u8>(rng.below(17));
    const auto p = SegmentPrefix::make(static_cast<u16>(rng.next()), len);
    bool dup = false;
    for (const auto& [q, l] : batch) dup |= q == p;
    if (dup) continue;
    inc.prio[i] = i;
    bulk.prio[i] = i;
    inc.bst->insert(p, Label{i}, inc.log);
    batch.emplace_back(p, Label{i});
  }
  bulk.bst->insert_bulk(batch, bulk.log);
  for (u32 k = 0; k <= 0xFFFF; k += 97) {
    EXPECT_EQ(inc.lookup(static_cast<u16>(k)),
              bulk.lookup(static_cast<u16>(k)));
  }
  // The bulk path writes each final word once; incremental rebuilds
  // repeatedly — compact-update weakness measured.
  EXPECT_LT(bulk.log.size(), inc.log.size());
}

TEST(Bst, RefreshReorders) {
  Rig rig;
  rig.insert(0xAB00, 8, 1, 5);
  rig.insert(0, 0, 2, 9);
  EXPECT_EQ(rig.lookup(0xAB42), (std::vector<u16>{1, 2}));
  rig.prio[2] = 1;
  rig.bst->refresh(SegmentPrefix::make(0, 0), rig.log);
  EXPECT_EQ(rig.lookup(0xAB42), (std::vector<u16>{2, 1}));
}

TEST(Bst, DuplicateAndUnknownThrow) {
  Rig rig;
  rig.insert(0x1200, 8, 1, 0);
  EXPECT_THROW(
      rig.bst->insert(SegmentPrefix::make(0x1200, 8), Label{2}, rig.log),
      InternalError);
  EXPECT_THROW(rig.bst->remove(SegmentPrefix::make(0x3400, 8), rig.log),
               InternalError);
}

TEST(Bst, CapacityError) {
  BstConfig tiny;
  tiny.max_nodes = 4;
  Rig rig(tiny);
  rig.insert(0x1000, 4, 0, 0);  // 3 intervals
  EXPECT_THROW(rig.insert(0x8000, 4, 1, 1), CapacityError);  // 5 intervals
}

TEST(Bst, MemoryIsCompact) {
  // BST node storage is one word per interval — far less than the MBT's
  // expanded entry arrays for the same prefix set (Table VI's trade).
  Rig rig;
  for (u16 i = 0; i < 20; ++i) {
    rig.insert(static_cast<u16>(0x1000 + (i << 4)), 12, i, i);
  }
  EXPECT_EQ(rig.bst->live_node_bits(),
            u64{rig.bst->node_count()} * rig.bst->memory().word_bits());
  EXPECT_LE(rig.bst->node_count(), 2u * 20u + 1u);
}

class BstProperty : public ::testing::TestWithParam<u64> {};

TEST_P(BstProperty, MatchesCoveringOracleWithChurn) {
  Rng rng(GetParam());
  Rig rig;
  Oracle oracle;
  u16 next_label = 0;
  for (int step = 0; step < 60; ++step) {
    if (!oracle.entries.empty() && rng.chance(0.25)) {
      const usize idx = rng.below(oracle.entries.size());
      rig.bst->remove(oracle.entries[idx].p, rig.log);
      oracle.entries.erase(oracle.entries.begin() + static_cast<i64>(idx));
      continue;
    }
    const u8 len = static_cast<u8>(rng.below(17));
    const auto p = SegmentPrefix::make(static_cast<u16>(rng.next()), len);
    bool dup = false;
    for (const auto& e : oracle.entries) dup |= e.p == p;
    if (dup) continue;
    const u16 label = next_label++;
    const Priority prio = static_cast<Priority>(rng.below(50));
    rig.insert(p.value, p.length, label, prio);
    oracle.entries.push_back({p, label, prio});
  }
  std::vector<u16> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(static_cast<u16>(rng.next()));
  for (const auto& e : oracle.entries) {
    keys.push_back(e.p.value);
    keys.push_back(static_cast<u16>(e.p.value | mask_low(16u - e.p.length)));
  }
  for (u16 k : keys) {
    EXPECT_EQ(rig.lookup(k), oracle.lookup(k)) << "key=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BstProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 16));
