// PathController v2: the size-normalized two-parameter cost model
// (ns = a*packets + b*distinct_keys per path). These tests drive the
// controller with synthetic, noise-free batch costs — no host timing —
// so convergence and the per-size argmin are asserted deterministically.
#include <gtest/gtest.h>

#include "core/path_controller.hpp"

using namespace pclass;
using core::BatchPath;
using core::PathController;

namespace {

// True per-path cost surfaces used throughout: ns(n, d) = a*n + b*d.
struct Surface {
  double a;
  double b;
  [[nodiscard]] double at(usize n, usize d) const {
    return a * static_cast<double>(n) + b * static_cast<double>(d);
  }
};

// A batch shape: n packets, d distinct.
struct Shape {
  usize n;
  usize d;
};

/// Run the controller over \p shapes (cycled) for \p decisions rounds,
/// feeding the chosen path its exact synthetic cost.
void train(PathController& c, const std::array<Surface, 3>& cost,
           const std::vector<Shape>& shapes, usize decisions,
           bool memo_eligible = true) {
  for (usize i = 0; i < decisions; ++i) {
    const Shape s = shapes[i % shapes.size()];
    const BatchPath p = c.choose(memo_eligible, s.n, s.d);
    c.observe(p, cost[static_cast<usize>(p)].at(s.n, s.d), s.n, s.d);
  }
}

[[nodiscard]] BatchPath true_argmin(const std::array<Surface, 3>& cost,
                                    usize n, usize d) {
  usize best = 0;
  for (usize p = 1; p < 3; ++p) {
    if (cost[p].at(n, d) < cost[best].at(n, d)) best = p;
  }
  return static_cast<BatchPath>(best);
}

}  // namespace

TEST(PathController, ConvergesToArgminOnMixedSizes) {
  // memo is globally cheapest here at every shape; the controller must
  // settle on it within a small number of batches despite the mixed
  // batch sizes. Non-explore decisions are checked from decision 16 on
  // (warmup = 2 per arm, a few fitting rounds).
  const std::array<Surface, 3> cost = {
      Surface{120.0, 0.0},   // scalar loop
      Surface{20.0, 60.0},   // phase2
      Surface{20.0, 30.0},   // phase2+memo
  };
  const std::vector<Shape> shapes = {{2, 2}, {32, 8}, {256, 40}, {64, 64}};
  PathController c;
  train(c, cost, shapes, 16);
  usize right = 0, total = 0;
  for (usize i = 0; i < 120; ++i) {
    const Shape s = shapes[i % shapes.size()];
    const BatchPath p = c.choose(true, s.n, s.d);
    c.observe(p, cost[static_cast<usize>(p)].at(s.n, s.d), s.n, s.d);
    ++total;
    if (p == true_argmin(cost, s.n, s.d)) ++right;
  }
  // Exploration (1 in 24) is the only deliberate deviation.
  EXPECT_GE(right, total - total / PathController::kExplorePeriod - 2);
}

TEST(PathController, PicksDifferentArgminPerBatchShape) {
  // The v2 point: one fitted model serves *every* batch shape. Scalar
  // wins all-distinct remnant batches (no sharing to amortize), the
  // batch engine wins big high-sharing batches — the controller must
  // pick per shape, which a single flat ns/packet estimate cannot do.
  const std::array<Surface, 3> cost = {
      Surface{5.0, 0.0},   // scalar: 5n
      Surface{2.0, 4.0},   // phase2: 2n + 4d
      Surface{2.0, 5.0},   // phase2+memo: slightly worse here
  };
  const Shape small_distinct{4, 4};    // scalar 20 < phase2 24
  const Shape big_shared{256, 32};     // phase2 640 < scalar 1280
  ASSERT_EQ(true_argmin(cost, small_distinct.n, small_distinct.d),
            BatchPath::kScalarLoop);
  ASSERT_EQ(true_argmin(cost, big_shared.n, big_shared.d),
            BatchPath::kPhase2);

  PathController c;
  train(c, cost, {small_distinct, big_shared, {32, 8}}, 60);
  // Probe at a decision index that is not an exploration slot.
  const BatchPath at_small =
      c.choose(true, small_distinct.n, small_distinct.d);
  c.observe(at_small, cost[static_cast<usize>(at_small)].at(4, 4), 4, 4);
  const BatchPath at_big = c.choose(true, big_shared.n, big_shared.d);
  EXPECT_EQ(at_small, BatchPath::kScalarLoop);
  EXPECT_EQ(at_big, BatchPath::kPhase2);
}

TEST(PathController, SmallCacheMissBatchesDoNotPoisonLargeBatchEstimate) {
  // The PR 4 failure mode, reproduced: the v1 controller kept one flat
  // EWMA of ns/packet per path. On the dataplane, the flow cache
  // shrinks most batches to tiny all-distinct remnants, where the batch
  // engine's per-packet cost is high (fixed per-batch work over few
  // packets, nothing shared). Feeding 90% such batches drove v1's
  // phase2 estimate far above scalar's, so the occasional full batch —
  // where phase2 actually wins big — was misrouted to scalar.
  //
  // First show the poisoning is real for a flat ns/packet model, then
  // that v2's (packets, distinct) fit routes both shapes correctly.
  const std::array<Surface, 3> cost = {
      Surface{10.0, 0.0},   // scalar: 10 ns/pkt at every size
      Surface{1.0, 20.0},   // phase2: tiny replay cost, real per-key cost
      Surface{1.0, 21.0},
  };
  const Shape tiny{2, 2};       // phase2 = 42 ns vs scalar 20 ns
  const Shape full{256, 16};    // phase2 = 576 ns vs scalar 2560 ns

  // v1-style flat estimate, trained on the 90/10 mix the dataplane
  // produces: phase2's ns/packet EWMA is dominated by the tiny batches.
  double v1_scalar = 0, v1_phase2 = 0;
  bool first_s = true, first_p = true;
  for (usize i = 0; i < 200; ++i) {
    const Shape s = i % 10 == 9 ? full : tiny;
    const double alpha = 0.25;  // v1's EWMA weight
    const double scalar_pp = cost[0].at(s.n, s.d) / static_cast<double>(s.n);
    const double phase2_pp = cost[1].at(s.n, s.d) / static_cast<double>(s.n);
    v1_scalar = first_s ? scalar_pp
                        : alpha * scalar_pp + (1 - alpha) * v1_scalar;
    v1_phase2 = first_p ? phase2_pp
                        : alpha * phase2_pp + (1 - alpha) * v1_phase2;
    first_s = first_p = false;
  }
  // The poisoned flat model prefers scalar *everywhere* — including the
  // full batch where phase2 is 4.4x cheaper.
  EXPECT_LT(v1_scalar, v1_phase2);

  // v2 on a tiny-dominated mix (memo arm pinned off so scalar/phase2
  // are the only arms; the mix length is coprime with kExplorePeriod so
  // exploration eventually lands on a full batch — exactly how a live
  // worker's occasional full batch re-teaches the fit).
  PathController c;
  std::vector<Shape> mix;
  for (usize i = 0; i < 7; ++i) mix.push_back(i == 6 ? full : tiny);
  train(c, cost, mix, 200, /*memo_eligible=*/false);
  EXPECT_EQ(c.choose(false, full.n, full.d), BatchPath::kPhase2)
      << "full-batch decision was poisoned by the tiny-batch majority";
  c.observe(BatchPath::kPhase2, cost[1].at(full.n, full.d), full.n, full.d);
  EXPECT_EQ(c.choose(false, tiny.n, tiny.d), BatchPath::kScalarLoop);
}

TEST(PathController, RecoversCoefficientsFromExactObservations) {
  const Surface truth{3.0, 7.0};
  PathController c;
  // Varied (n, d) keeps the normal equations well-conditioned.
  const std::vector<Shape> shapes = {{8, 2}, {32, 32}, {64, 5}, {128, 90},
                                     {256, 17}, {16, 16}, {200, 120}};
  for (usize i = 0; i < 64; ++i) {
    const Shape s = shapes[i % shapes.size()];
    c.observe(BatchPath::kPhase2, truth.at(s.n, s.d), s.n, s.d);
  }
  const core::PathCostModel m = c.cost_model(BatchPath::kPhase2);
  EXPECT_NEAR(m.ns_per_packet, truth.a, 1e-6);
  EXPECT_NEAR(m.ns_per_distinct_key, truth.b, 1e-6);
  EXPECT_NEAR(c.predict_ns(BatchPath::kPhase2, 100, 10),
              truth.at(100, 10), 1e-3);
}

TEST(PathController, CollinearFeaturesFallBackToPerPacketFit) {
  // All-distinct traffic: d == n on every batch, the 2x2 system is
  // singular. The fit must degrade to the v1 one-slope model (a+b
  // collapsed into ns/packet) instead of producing garbage.
  PathController c;
  for (usize i = 0; i < 32; ++i) {
    const usize n = 8 + (i % 5) * 16;
    c.observe(BatchPath::kScalarLoop, 12.0 * static_cast<double>(n), n, n);
  }
  const core::PathCostModel m = c.cost_model(BatchPath::kScalarLoop);
  EXPECT_NEAR(m.ns_per_packet, 12.0, 1e-6);
  EXPECT_EQ(m.ns_per_distinct_key, 0.0);
  EXPECT_NEAR(c.predict_ns(BatchPath::kScalarLoop, 64, 64), 768.0, 1e-3);
}

TEST(PathController, ForcedBatchesCountWithoutFeedingTheFit) {
  PathController c;
  c.observe(BatchPath::kPhase2Memo, -1.0, 32, 8);  // forced: no clock read
  EXPECT_EQ(c.batches(BatchPath::kPhase2Memo), 1u);
  EXPECT_EQ(c.observations(BatchPath::kPhase2Memo), 0u);
  const core::PathCostModel m = c.cost_model(BatchPath::kPhase2Memo);
  EXPECT_EQ(m.ns_per_packet, 0.0);
  EXPECT_EQ(m.ns_per_distinct_key, 0.0);
}

TEST(PathController, MemoIneligibilityExcludesTheMemoArm) {
  const std::array<Surface, 3> cost = {
      Surface{50.0, 0.0},
      Surface{20.0, 10.0},
      Surface{1.0, 1.0},  // would win if eligible
  };
  PathController c;
  train(c, cost, {{32, 8}, {128, 16}}, 80, /*memo_eligible=*/false);
  for (usize i = 0; i < 40; ++i) {
    const BatchPath p = c.choose(false, 64, 12);
    EXPECT_NE(p, BatchPath::kPhase2Memo);
    c.observe(p, cost[static_cast<usize>(p)].at(64, 12), 64, 12);
  }
}
