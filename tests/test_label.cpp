// Unit tests for the label method (Fig. 4): ref-counted label tables and
// the content-addressed label-list store.
#include <gtest/gtest.h>

#include "alg/label_list_store.hpp"
#include "alg/label_table.hpp"
#include "common/error.hpp"
#include "ruleset/rule.hpp"

using namespace pclass;
using namespace pclass::alg;
using pclass::ruleset::PortRange;
using pclass::ruleset::ProtoMatch;
using pclass::ruleset::SegmentPrefix;

TEST(LabelTable, AcquireCreatesThenCounts) {
  LabelTable<SegmentPrefix> t(Dimension::kSrcIpHi);
  const auto v = SegmentPrefix::make(0x0A00, 8);
  const auto a1 = t.acquire(v, 5);
  EXPECT_TRUE(a1.created);
  const auto a2 = t.acquire(v, 3);
  EXPECT_FALSE(a2.created);
  EXPECT_EQ(a1.label, a2.label);
  EXPECT_EQ(t.refcount(v), 2u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(LabelTable, BestPriorityTracksMultiset) {
  LabelTable<PortRange> t(Dimension::kDstPort);
  const auto v = PortRange::exact(80);
  t.acquire(v, 9);
  EXPECT_EQ(t.best_priority(v), 9u);
  t.acquire(v, 2);
  EXPECT_EQ(t.best_priority(v), 2u);
  t.release(v, 2);
  EXPECT_EQ(t.best_priority(v), 9u);  // falls back to remaining rule
}

TEST(LabelTable, ReleaseFreesAtZeroAndReusesLabels) {
  LabelTable<ProtoMatch> t(Dimension::kProtocol);
  const auto tcp = ProtoMatch::exact(6);
  const Label l = t.acquire(tcp, 1).label;
  const auto rel = t.release(tcp, 1);
  EXPECT_TRUE(rel.freed);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.find(tcp).has_value());
  // Freed label value is recycled (2-bit label space is tiny).
  const Label l2 = t.acquire(ProtoMatch::exact(17), 1).label;
  EXPECT_EQ(l2, l);
}

TEST(LabelTable, PartialReleaseKeepsLabel) {
  LabelTable<SegmentPrefix> t(Dimension::kDstIpLo);
  const auto v = SegmentPrefix::make(0x1200, 8);
  t.acquire(v, 1);
  t.acquire(v, 2);
  const auto rel = t.release(v, 1);
  EXPECT_FALSE(rel.freed);
  EXPECT_EQ(t.refcount(v), 1u);
}

TEST(LabelTable, CapacityIsLabelWidth) {
  LabelTable<ProtoMatch> t(Dimension::kProtocol);  // 2-bit labels -> 4
  EXPECT_EQ(t.capacity(), 4u);
  t.acquire(ProtoMatch::exact(1), 0);
  t.acquire(ProtoMatch::exact(2), 0);
  t.acquire(ProtoMatch::exact(3), 0);
  t.acquire(ProtoMatch::any(), 0);
  EXPECT_THROW(t.acquire(ProtoMatch::exact(50), 0), CapacityError);
}

TEST(LabelTable, ReleaseUnknownThrows) {
  LabelTable<PortRange> t(Dimension::kSrcPort);
  EXPECT_THROW(t.release(PortRange::exact(1), 0), InternalError);
  t.acquire(PortRange::exact(1), 7);
  EXPECT_THROW(t.release(PortRange::exact(1), 8), InternalError);  // bad prio
}

TEST(LabelTable, ForEachDeterministicAndComplete) {
  LabelTable<SegmentPrefix> t(Dimension::kSrcIpLo);
  t.acquire(SegmentPrefix::make(0x0100, 8), 3);
  t.acquire(SegmentPrefix::make(0x0200, 8), 1);
  usize n = 0;
  Priority seen_prio = kNoPriority;
  t.for_each([&](const SegmentPrefix& v, Label l, Priority p) {
    ++n;
    EXPECT_TRUE(l.valid());
    if (v.value == 0x0200) seen_prio = p;
  });
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(seen_prio, 1u);
}

// ---- LabelListStore ----

namespace {
std::vector<Label> L(std::initializer_list<int> xs) {
  std::vector<Label> out;
  for (int x : xs) out.push_back(Label{static_cast<u16>(x)});
  return out;
}
}  // namespace

TEST(ListStore, StoresAndReadsBack) {
  LabelListStore s("s", 64, 13);
  hw::CommandLog log;
  const ListRef r = s.acquire(L({3, 1, 2}), log);
  ASSERT_FALSE(r.empty());
  hw::CycleRecorder rec;
  EXPECT_EQ(s.read_first(r, &rec).value, 3u);
  EXPECT_EQ(rec.memory_accesses(), 1u);  // first label = one access
  const auto all = s.read_list(r, &rec);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[1].value, 1u);
  EXPECT_EQ(rec.memory_accesses(), 4u);  // + full walk
}

TEST(ListStore, ContentAddressedDedup) {
  LabelListStore s("s", 64, 13);
  hw::CommandLog log;
  const ListRef a = s.acquire(L({1, 2}), log);
  const usize words_after_first = log.size();
  const ListRef b = s.acquire(L({1, 2}), log);
  EXPECT_EQ(a, b);                            // same storage
  EXPECT_EQ(log.size(), words_after_first);   // no new device writes
  EXPECT_EQ(s.distinct_lists(), 1u);
  const ListRef c = s.acquire(L({2, 1}), log);  // order matters
  EXPECT_NE(a, c);
}

TEST(ListStore, ReleaseFreesAndReuses) {
  LabelListStore s("s", 8, 13);  // tiny: 7 usable words
  hw::CommandLog log;
  const ListRef a = s.acquire(L({1, 2, 3}), log);
  const ListRef b = s.acquire(L({4, 5, 6}), log);
  EXPECT_EQ(s.live_words(), 6u);
  s.release(a);
  EXPECT_EQ(s.live_words(), 3u);
  // Freed block is reusable; without reuse this would overflow depth 8.
  const ListRef c = s.acquire(L({7, 8, 9}), log);
  EXPECT_FALSE(c.empty());
  (void)b;
}

TEST(ListStore, RefcountAcrossAcquires) {
  LabelListStore s("s", 32, 13);
  hw::CommandLog log;
  const ListRef a = s.acquire(L({5}), log);
  const ListRef b = s.acquire(L({5}), log);
  s.release(a);
  // Still alive through b.
  EXPECT_EQ(s.read_first(b, nullptr).value, 5u);
  EXPECT_EQ(s.live_words(), 1u);
  s.release(b);
  EXPECT_EQ(s.live_words(), 0u);
}

TEST(ListStore, CapacityError) {
  LabelListStore s("s", 4, 13);  // 3 usable words (addr 0 reserved)
  hw::CommandLog log;
  (void)s.acquire(L({1, 2}), log);
  EXPECT_THROW((void)s.acquire(L({3, 4}), log), CapacityError);
}

TEST(ListStore, EmptyListRejected) {
  LabelListStore s("s", 8, 13);
  hw::CommandLog log;
  EXPECT_THROW((void)s.acquire({}, log), ConfigError);
  EXPECT_EQ(s.read_list(ListRef{}, nullptr).size(), 0u);
}

TEST(ListStore, DoubleFreeDetected) {
  LabelListStore s("s", 8, 13);
  hw::CommandLog log;
  const ListRef a = s.acquire(L({1}), log);
  s.release(a);
  EXPECT_THROW(s.release(a), InternalError);
}

TEST(ListStore, CoalescingAllowsLargeReuse) {
  LabelListStore s("s", 16, 13);
  hw::CommandLog log;
  const ListRef a = s.acquire(L({1, 2}), log);
  const ListRef b = s.acquire(L({3, 4}), log);
  const ListRef c = s.acquire(L({5, 6}), log);
  s.release(a);
  s.release(b);
  s.release(c);  // all free -> coalesced -> bump reset
  // A 15-word list now fits even though the store saw fragmentation.
  const ListRef big = s.acquire(
      L({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}), log);
  EXPECT_FALSE(big.empty());
}

TEST(ListStore, WordLayoutHasEndFlag) {
  LabelListStore s("s", 8, 13);
  hw::CommandLog log;
  const ListRef r = s.acquire(L({7, 9}), log);
  const hw::Word w0 = s.memory().read(r.addr, nullptr);
  const hw::Word w1 = s.memory().read(r.addr + 1, nullptr);
  EXPECT_EQ(w0.get(0, 13), 7u);
  EXPECT_EQ(w0.get(13, 1), 0u);  // not last
  EXPECT_EQ(w1.get(0, 13), 9u);
  EXPECT_EQ(w1.get(13, 1), 1u);  // last
}
