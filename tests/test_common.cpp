// Unit tests for src/common: bit utilities, the 68-bit merged key, hash
// functions and the deterministic RNG.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/bits.hpp"
#include "common/hash.hpp"
#include "common/key68.hpp"
#include "common/random.hpp"

using namespace pclass;

TEST(Bits, MaskLow) {
  EXPECT_EQ(mask_low(0), 0u);
  EXPECT_EQ(mask_low(1), 1u);
  EXPECT_EQ(mask_low(13), 0x1FFFu);
  EXPECT_EQ(mask_low(63), 0x7FFFFFFFFFFFFFFFull);
  EXPECT_EQ(mask_low(64), ~u64{0});
}

TEST(Bits, ExtractBits) {
  EXPECT_EQ(extract_bits(0xABCD, 0, 4), 0xDu);
  EXPECT_EQ(extract_bits(0xABCD, 4, 4), 0xCu);
  EXPECT_EQ(extract_bits(0xABCD, 12, 4), 0xAu);
  EXPECT_EQ(extract_bits(~u64{0}, 0, 64), ~u64{0});
}

TEST(Bits, DepositBits) {
  EXPECT_EQ(deposit_bits(0, 0xF, 4, 4), 0xF0u);
  EXPECT_EQ(deposit_bits(0xFF, 0x0, 4, 4), 0x0Fu);
  EXPECT_EQ(deposit_bits(0xABCD, 0x7, 0, 4), 0xABC7u);
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(ceil_log2(0), 0u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1u << 16), 16u);
  EXPECT_EQ(ceil_log2((1u << 16) + 1), 17u);
}

TEST(Bits, CeilDivAndNextPow2) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(Bits, IpSegments) {
  const u32 ip = ipv4(192, 168, 1, 2);
  EXPECT_EQ(ip, 0xC0A80102u);
  EXPECT_EQ(ip_hi16(ip), 0xC0A8u);
  EXPECT_EQ(ip_lo16(ip), 0x0102u);
}

TEST(Bits, MulHigh) {
  EXPECT_EQ(mul_high_u64(0, 123), 0u);
  EXPECT_EQ(mul_high_u64(~u64{0}, ~u64{0}), ~u64{0} - 1);
  // (2^32)*(2^32) = 2^64 -> high half = 1.
  EXPECT_EQ(mul_high_u64(u64{1} << 32, u64{1} << 32), 1u);
}

TEST(Key68, ShiftInBuildsExpectedLayout) {
  Key68 k;
  k = k.shifted_in(0x1, 4);
  k = k.shifted_in(0x2, 4);
  EXPECT_EQ(k.lo64(), 0x12u);
  EXPECT_EQ(k.hi4(), 0u);
}

TEST(Key68, HighBitsSpillIntoHi4) {
  Key68 k;
  // Push 68 bits of all-ones.
  for (int i = 0; i < 4; ++i) {
    k = k.shifted_in(mask_low(17), 17);
  }
  EXPECT_EQ(k.lo64(), ~u64{0});
  EXPECT_EQ(k.hi4(), 0xFu);
}

TEST(Key68, MergeUsesCanonicalDimensionOrder) {
  std::array<Label, kNumDimensions> labels{};
  for (usize d = 0; d < kNumDimensions; ++d) {
    labels[d] = Label{static_cast<u16>(d + 1)};
  }
  const Key68 k = Key68::merge(labels);
  // Protocol label (value 7, 2 bits... but 7 > 3) — use valid widths.
  // Recompute with legal values:
  std::array<Label, kNumDimensions> ok{};
  ok[index_of(Dimension::kSrcIpHi)] = Label{0x1Au};
  ok[index_of(Dimension::kSrcIpLo)] = Label{0x2Bu};
  ok[index_of(Dimension::kDstIpHi)] = Label{0x3Cu};
  ok[index_of(Dimension::kDstIpLo)] = Label{0x4Du};
  ok[index_of(Dimension::kSrcPort)] = Label{0x55u};
  ok[index_of(Dimension::kDstPort)] = Label{0x66u};
  ok[index_of(Dimension::kProtocol)] = Label{0x2u};
  const Key68 k2 = Key68::merge(ok);
  // Manual composition: (((((srcHi<<13|srcLo)<<13|dstHi)<<13|dstLo)<<7|sp)<<7|dp)<<2|proto
  unsigned __int128 expect = 0;
  expect = (expect << 13) | 0x1A;
  expect = (expect << 13) | 0x2B;
  expect = (expect << 13) | 0x3C;
  expect = (expect << 13) | 0x4D;
  expect = (expect << 7) | 0x55;
  expect = (expect << 7) | 0x66;
  expect = (expect << 2) | 0x2;
  EXPECT_EQ(k2.lo64(), static_cast<u64>(expect));
  EXPECT_EQ(k2.hi4(), static_cast<u8>(expect >> 64));
  (void)k;
}

TEST(Key68, EqualityAndHash) {
  const Key68 a{0x3, 0xDEADBEEF};
  const Key68 b{0x3, 0xDEADBEEF};
  const Key68 c{0x3, 0xDEADBEF0};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(std::hash<Key68>{}(a), std::hash<Key68>{}(b));
  EXPECT_NE(std::hash<Key68>{}(a), std::hash<Key68>{}(c));
}

TEST(Crc32, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (classic check value).
  const char* s = "123456789";
  EXPECT_EQ(Crc32::compute(reinterpret_cast<const u8*>(s), 9), 0xCBF43926u);
}

TEST(Crc32, U64Deterministic) {
  EXPECT_EQ(Crc32::compute_u64(42), Crc32::compute_u64(42));
  EXPECT_NE(Crc32::compute_u64(42), Crc32::compute_u64(43));
}

TEST(Key68Hasher, StaysInRange) {
  Key68Hasher h(1000);
  for (u64 i = 0; i < 5000; ++i) {
    const Key68 k{static_cast<u8>(i & 0xF), i * 0x9E3779B97F4A7C15ull};
    EXPECT_LT(h(k), 1000u);
  }
}

TEST(Key68Hasher, SeedChangesMapping) {
  Key68Hasher a(4096, 1), b(4096, 2);
  usize differing = 0;
  for (u64 i = 0; i < 256; ++i) {
    if (a(Key68{0, i}) != b(Key68{0, i})) ++differing;
  }
  EXPECT_GT(differing, 200u);  // nearly all should move
}

TEST(Key68Hasher, ZeroCapacityThrows) {
  EXPECT_THROW(Key68Hasher(0), std::invalid_argument);
}

TEST(Key68Hasher, SpreadsDenseLabelKeys) {
  // Label keys are dense small integers per field; the hasher must not
  // cluster them (this is what the Rule Filter's probe bound relies on).
  Key68Hasher h(2048);
  std::vector<int> load(2048, 0);
  int n = 0;
  for (u16 a = 0; a < 32; ++a) {
    for (u16 b = 0; b < 32; ++b) {
      std::array<Label, kNumDimensions> ls{Label{a},    Label{b},
                                           Label{1},    Label{2},
                                           Label{0},    Label{3},
                                           Label{1}};
      ++load[h(Key68::merge(ls))];
      ++n;
    }
  }
  int mx = 0;
  for (int x : load) mx = std::max(mx, x);
  EXPECT_LE(mx, 8);  // ~0.5 load, uniform max bucket is tiny
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    const u64 x = a.next();
    EXPECT_EQ(x, b.next());
  }
  bool any_diff = false;
  Rng a2(7);
  for (int i = 0; i < 100; ++i) {
    any_diff |= a2.next() != c.next();
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowRespectsBound) {
  Rng r(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng r(2);
  std::set<u64> seen;
  for (int i = 0; i < 2000; ++i) {
    const u64 v = r.between(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values reachable
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng r(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Mix64, InjectiveOnSample) {
  std::unordered_set<u64> out;
  for (u64 i = 0; i < 10000; ++i) {
    out.insert(mix64(i));
  }
  EXPECT_EQ(out.size(), 10000u);
}

TEST(Types, DimensionMetadata) {
  EXPECT_EQ(kNumDimensions, 7u);
  unsigned total = 0;
  for (Dimension d : kAllDimensions) {
    total += label_bits(d);
  }
  EXPECT_EQ(total, kMergedKeyBits);
  EXPECT_STREQ(to_string(Dimension::kSrcIpHi), "src_ip_hi");
  EXPECT_STREQ(to_string(Dimension::kProtocol), "protocol");
}

TEST(Types, RuleIdAndLabel) {
  EXPECT_FALSE(RuleId{}.valid());
  EXPECT_TRUE(RuleId{5}.valid());
  EXPECT_LT(RuleId{3}, RuleId{5});
  EXPECT_FALSE(Label{}.valid());
  EXPECT_EQ(Label{7}, Label{7});
}
