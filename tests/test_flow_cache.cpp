// Flow-cache fast path: exact-match semantics, fill/invalidate policy,
// and end-to-end correctness under churn (a cached verdict must never
// outlive a rule change).
#include <gtest/gtest.h>

#include "baseline/linear_search.hpp"
#include "core/flow_cache.hpp"
#include "ruleset/generator.hpp"
#include "ruleset/trace_gen.hpp"
#include "sdn/switch_device.hpp"

using namespace pclass;
using namespace pclass::core;

namespace {

net::FiveTuple tuple(u32 a, u16 p) {
  return {a, a ^ 0xDEADBEEF, 1000, p, net::kProtoTcp};
}

}  // namespace

TEST(FlowCache, MissThenHit) {
  FlowCache c("c", 64);
  hw::CycleRecorder rec;
  EXPECT_FALSE(c.lookup(tuple(1, 80), &rec).has_value());
  c.fill(tuple(1, 80), RuleEntry{RuleId{7}, 3, 42});
  const auto hit = c.lookup(tuple(1, 80), &rec);
  ASSERT_TRUE(hit.has_value());
  ASSERT_TRUE(hit->has_value());
  EXPECT_EQ((*hit)->rule.value, 7u);
  EXPECT_EQ((*hit)->action, 42u);
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(FlowCache, CachesNegativeVerdicts) {
  FlowCache c("c", 64);
  c.fill(tuple(2, 81), std::nullopt);  // flow with no matching rule
  const auto hit = c.lookup(tuple(2, 81), nullptr);
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->has_value());  // cached "drop"
}

TEST(FlowCache, LookupCostIsTwoCycles) {
  FlowCache c("c", 64);
  c.fill(tuple(3, 82), RuleEntry{RuleId{1}, 0, 0});
  hw::CycleRecorder rec;
  (void)c.lookup(tuple(3, 82), &rec);
  EXPECT_EQ(rec.cycles(), 2u);           // hash + line read
  EXPECT_EQ(rec.memory_accesses(), 1u);
}

TEST(FlowCache, DirectMappedEviction) {
  FlowCache c("c", 1);  // every tuple maps to the same line
  c.fill(tuple(1, 80), RuleEntry{RuleId{1}, 0, 0});
  c.fill(tuple(2, 81), RuleEntry{RuleId{2}, 0, 0});
  EXPECT_FALSE(c.lookup(tuple(1, 80), nullptr).has_value());  // evicted
  EXPECT_TRUE(c.lookup(tuple(2, 81), nullptr).has_value());
}

TEST(FlowCache, InvalidateAllFlushes) {
  FlowCache c("c", 64);
  c.fill(tuple(1, 80), RuleEntry{RuleId{1}, 0, 0});
  c.invalidate_all();
  EXPECT_FALSE(c.lookup(tuple(1, 80), nullptr).has_value());
  EXPECT_EQ(c.stats().invalidations, 1u);
}

TEST(FlowCacheSwitch, SteadyStateHitsAndCorrectness) {
  const auto rules =
      ruleset::make_classbench_like(ruleset::FilterType::kAcl, 1000);
  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(1000);
  cfg.combine_mode = core::CombineMode::kCrossProduct;
  sdn::SwitchDevice sw("s1", cfg, /*flow_cache_depth=*/8192);
  for (const auto& r : rules) {
    sdn::FlowMod fm;
    fm.command = sdn::FlowMod::Command::kAdd;
    fm.cookie = r.id;
    fm.match = r;
    fm.action = sdn::ActionSpec::decode(r.action.token);
    sw.handle(fm);
  }

  // Replay each header twice: second pass must be cache hits with
  // identical verdicts.
  ruleset::TraceGenerator tg(rules, {.headers = 1000, .seed = 5});
  const auto trace = tg.generate();
  baseline::LinearSearch oracle(rules);
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& e : trace) {
      const auto res = sw.process_header(e.header, 64);
      const auto* want = oracle.classify(e.header, nullptr);
      if (want == nullptr) {
        EXPECT_FALSE(res.rule.has_value());
      } else {
        ASSERT_TRUE(res.rule.has_value());
        EXPECT_EQ(res.rule->value, want->id.value);
      }
    }
  }
  const auto cs = sw.flow_cache_stats();
  // Second pass is all hits modulo direct-mapped conflicts; first pass
  // already hits on repeated headers. Deterministic measurement ~0.43.
  EXPECT_GT(cs.hit_rate(), 0.40);
  EXPECT_GT(cs.fills, 0u);
}

TEST(FlowCacheSwitch, RuleChangeInvalidatesCachedVerdicts) {
  core::ClassifierConfig cfg;
  sdn::SwitchDevice sw("s1", cfg, 1024);
  ruleset::Rule allow;
  allow.id = RuleId{1};
  allow.priority = 1;
  allow.dst_port = ruleset::PortRange::exact(80);
  allow.proto = ruleset::ProtoMatch::exact(net::kProtoTcp);
  sdn::FlowMod add;
  add.command = sdn::FlowMod::Command::kAdd;
  add.cookie = allow.id;
  add.match = allow;
  add.action = sdn::ActionSpec::output(4);
  sw.handle(add);

  const net::FiveTuple h = tuple(9, 80);
  EXPECT_EQ(sw.process_header(h, 64).action.arg, 4u);
  EXPECT_EQ(sw.process_header(h, 64).action.arg, 4u);  // cached

  // A higher-priority drop rule arrives; the cached "output 4" verdict
  // must not survive.
  ruleset::Rule deny;
  deny.id = RuleId{0};
  deny.priority = 0;
  deny.dst_port = ruleset::PortRange::exact(80);
  deny.src_port = ruleset::PortRange::make(0, 32767);
  deny.proto = ruleset::ProtoMatch::exact(net::kProtoTcp);
  sdn::FlowMod add2;
  add2.command = sdn::FlowMod::Command::kAdd;
  add2.cookie = deny.id;
  add2.match = deny;
  add2.action = sdn::ActionSpec::drop();
  sw.handle(add2);

  const auto res = sw.process_header(h, 64);
  ASSERT_TRUE(res.rule.has_value());
  EXPECT_EQ(res.rule->value, 0u);  // the deny rule, not the stale cache
  EXPECT_EQ(res.action.kind, sdn::ActionSpec::Kind::kDrop);
}

TEST(FlowCacheSwitch, DisabledCacheIsTransparent) {
  sdn::SwitchDevice sw("s1", core::ClassifierConfig{}, 0);
  EXPECT_EQ(sw.flow_cache_stats().hits, 0u);
  EXPECT_EQ(sw.flow_cache_stats().fills, 0u);
}
