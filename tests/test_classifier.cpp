// Core classifier behaviour: exact equivalence in CrossProduct mode,
// FirstLabel-mode invariants (the paper's combination), incremental
// updates, algorithm reconfiguration, cost accounting and reports.
#include <gtest/gtest.h>

#include "baseline/linear_search.hpp"
#include "core/classifier.hpp"
#include "ruleset/generator.hpp"
#include "ruleset/stats.hpp"
#include "ruleset/trace_gen.hpp"

using namespace pclass;
using namespace pclass::core;
using pclass::ruleset::FilterType;
using pclass::ruleset::Rule;
using pclass::ruleset::RuleSet;

namespace {

RuleSet small_set() {
  return ruleset::make_classbench_like(FilterType::kAcl, 1000);
}

ClassifierConfig cfg_for(const RuleSet& rs, CombineMode mode,
                         IpAlgorithm alg) {
  ClassifierConfig c = ClassifierConfig::for_scale(rs.size());
  c.combine_mode = mode;
  c.ip_algorithm = alg;
  return c;
}

net::Trace trace_for(const RuleSet& rs, usize n, u64 seed = 77) {
  ruleset::TraceGenerator tg(rs,
                             {.headers = n, .random_fraction = 0.1,
                              .seed = seed});
  return tg.generate();
}

usize count_mismatches(const ConfigurableClassifier& clf,
                       const baseline::LinearSearch& oracle,
                       const net::Trace& trace) {
  usize mism = 0;
  for (const auto& e : trace) {
    const auto got = clf.classify(e.header);
    const auto* want = oracle.classify(e.header, nullptr);
    if (want == nullptr ? got.match.has_value()
                        : (!got.match || got.match->rule != want->id)) {
      ++mism;
    }
  }
  return mism;
}

}  // namespace

TEST(Classifier, FirstLabelHitIsAlwaysAMatchingRule) {
  // The paper's combination can return a lower-priority rule or miss,
  // but any HIT must be a rule that genuinely matches the header (the
  // label-combination soundness property).
  const RuleSet rs = small_set();
  ConfigurableClassifier clf(
      cfg_for(rs, CombineMode::kFirstLabel, IpAlgorithm::kMbt));
  clf.add_rules(rs);
  const auto trace = trace_for(rs, 2000);
  for (const auto& e : trace) {
    const auto got = clf.classify(e.header);
    if (got.match) {
      const auto rule = rs.find(got.match->rule);
      ASSERT_TRUE(rule.has_value());
      EXPECT_TRUE(rule->matches(e.header))
          << "FirstLabel returned a non-matching rule";
      EXPECT_EQ(got.crossproduct_probes, 1u);
    }
  }
}

TEST(Classifier, FirstLabelDisagreementIsMeasuredNotHidden) {
  // Reproduction finding (DESIGN.md §1.1): on a real overlapping ACL the
  // paper's first-label combination agrees with the HPMR only rarely —
  // the combination of per-dimension best labels seldom belongs to any
  // single rule. This test pins the *measurement* (deterministic seed)
  // so the ablation bench and EXPERIMENTS.md stay honest; CrossProduct
  // mode is the exact variant.
  const RuleSet rs = small_set();
  ConfigurableClassifier clf(
      cfg_for(rs, CombineMode::kFirstLabel, IpAlgorithm::kMbt));
  clf.add_rules(rs);
  baseline::LinearSearch oracle(rs);
  const auto trace = trace_for(rs, 2000);
  const usize mism = count_mismatches(clf, oracle, trace);
  const double agreement =
      1.0 - static_cast<double>(mism) / static_cast<double>(trace.size());
  fprintf(stderr, "[info] first-label agreement on %s: %.3f\n",
          rs.name().c_str(), agreement);
  EXPECT_GT(agreement, 0.0);  // some headers do resolve via first labels
  EXPECT_LT(agreement, 0.9);  // ...but the scheme is demonstrably unsound
}

TEST(Classifier, IncrementalAddsEqualBulkLoad) {
  const RuleSet rs = small_set();
  ConfigurableClassifier bulk(
      cfg_for(rs, CombineMode::kCrossProduct, IpAlgorithm::kMbt));
  bulk.add_rules(rs);
  ConfigurableClassifier inc(
      cfg_for(rs, CombineMode::kCrossProduct, IpAlgorithm::kMbt));
  for (const Rule& r : rs) {
    inc.add_rule(r);
  }
  const auto trace = trace_for(rs, 1000);
  for (const auto& e : trace) {
    const auto a = bulk.classify(e.header);
    const auto b = inc.classify(e.header);
    EXPECT_EQ(a.match.has_value(), b.match.has_value());
    if (a.match && b.match) {
      EXPECT_EQ(a.match->rule, b.match->rule);
    }
  }
}

TEST(Classifier, RemovalRestoresOracleEquivalence) {
  const RuleSet rs = small_set();
  ConfigurableClassifier clf(
      cfg_for(rs, CombineMode::kCrossProduct, IpAlgorithm::kMbt));
  clf.add_rules(rs);
  // Remove every third rule; build the reduced oracle.
  RuleSet reduced(rs.name());
  for (usize i = 0; i < rs.size(); ++i) {
    if (i % 3 == 0) {
      clf.remove_rule(rs[i].id);
    } else {
      Rule copy = rs[i];
      reduced.add(copy);
    }
  }
  EXPECT_EQ(clf.rule_count(), reduced.size());
  baseline::LinearSearch oracle(reduced);
  EXPECT_EQ(count_mismatches(clf, oracle, trace_for(rs, 1000)), 0u);
}

TEST(Classifier, RemoveAllLeavesEmptyDevice) {
  const RuleSet rs = ruleset::make_classbench_like(FilterType::kFw, 1000);
  ConfigurableClassifier clf(
      cfg_for(rs, CombineMode::kCrossProduct, IpAlgorithm::kMbt));
  clf.add_rules(rs);
  for (const Rule& r : rs) {
    clf.remove_rule(r.id);
  }
  EXPECT_EQ(clf.rule_count(), 0u);
  for (Dimension d : kAllDimensions) {
    EXPECT_EQ(clf.label_count(d), 0u) << to_string(d);
  }
  const auto got = clf.classify({1, 2, 3, 4, 6});
  EXPECT_FALSE(got.match.has_value());
}

TEST(Classifier, AlgorithmSwitchPreservesSemantics) {
  const RuleSet rs = small_set();
  ConfigurableClassifier clf(
      cfg_for(rs, CombineMode::kCrossProduct, IpAlgorithm::kMbt));
  clf.add_rules(rs);
  baseline::LinearSearch oracle(rs);
  const auto trace = trace_for(rs, 500);
  EXPECT_EQ(count_mismatches(clf, oracle, trace), 0u);

  const auto cost = clf.set_ip_algorithm(IpAlgorithm::kBst);
  EXPECT_GT(cost.cycles, 0u);
  EXPECT_GT(cost.config_toggles, 0u);
  EXPECT_EQ(clf.ip_algorithm(), IpAlgorithm::kBst);
  EXPECT_EQ(count_mismatches(clf, oracle, trace), 0u);

  // And back again.
  clf.set_ip_algorithm(IpAlgorithm::kMbt);
  EXPECT_EQ(count_mismatches(clf, oracle, trace), 0u);
}

TEST(Classifier, SwitchToSameAlgorithmIsFree) {
  ConfigurableClassifier clf;
  const auto cost = clf.set_ip_algorithm(IpAlgorithm::kMbt);
  EXPECT_EQ(cost.cycles, 0u);
}

TEST(Classifier, PaperUpdateCostWhenLabelsExist) {
  // §V.A: inserting a rule whose field values are already labelled costs
  // the hash cycle plus the two-beat rule upload — nothing else.
  const RuleSet rs = small_set();
  ConfigurableClassifier clf(
      cfg_for(rs, CombineMode::kCrossProduct, IpAlgorithm::kMbt));
  // Install all but the last rule.
  for (usize i = 0; i + 1 < rs.size(); ++i) {
    Rule r = rs[i];
    clf.add_rule(r);
  }
  // Find a held-out rule whose field values all already exist; craft one
  // from an installed rule with a fresh priority slot: combine fields of
  // two installed rules.
  Rule synth = rs[0];
  synth.dst_port = rs[1].dst_port;
  synth.id = RuleId{100000 & 0xFFFF};
  synth.priority = static_cast<Priority>(rs.size() + 1);
  bool fresh = true;
  for (usize i = 0; i + 1 < rs.size(); ++i) {
    fresh &= !rs[i].same_match(synth);
  }
  if (!fresh) {
    GTEST_SKIP() << "synthesized rule collided; calibration set quirk";
  }
  const auto cost = clf.add_rule(synth);
  EXPECT_EQ(cost.hash_computes, 1u);
  EXPECT_EQ(cost.memory_writes, 2u);
  EXPECT_EQ(cost.register_writes, 0u);
  EXPECT_EQ(cost.cycles, 3u);  // 2 + 1, the paper's claim
}

TEST(Classifier, DuplicateIdAndMatchRejected) {
  ConfigurableClassifier clf;
  Rule r;
  r.id = RuleId{1};
  r.dst_port = ruleset::PortRange::exact(80);
  clf.add_rule(r);
  EXPECT_THROW(clf.add_rule(r), ConfigError);  // same id
  Rule r2 = r;
  r2.id = RuleId{2};
  EXPECT_THROW(clf.add_rule(r2), ConfigError);  // same match
  Rule r3;
  r3.id = RuleId{};
  EXPECT_THROW(clf.add_rule(r3), ConfigError);  // invalid id
  EXPECT_THROW(clf.remove_rule(RuleId{99}), ConfigError);
}

TEST(Classifier, ClassifyPacketParsesWire) {
  ConfigurableClassifier clf;
  Rule r;
  r.id = RuleId{1};
  r.dst_port = ruleset::PortRange::exact(80);
  r.proto = ruleset::ProtoMatch::exact(net::kProtoTcp);
  clf.add_rule(r);
  const net::FiveTuple t{ipv4(1, 2, 3, 4), ipv4(5, 6, 7, 8), 999, 80,
                         net::kProtoTcp};
  const auto pkt = net::make_packet(t, 16);
  const auto via_bytes = clf.classify_packet(pkt.bytes);
  const auto via_tuple = clf.classify(t);
  ASSERT_TRUE(via_bytes.match.has_value());
  EXPECT_EQ(via_bytes.match->rule, via_tuple.match->rule);
  // Garbage bytes miss cleanly.
  const std::vector<u8> junk(10, 0xEE);
  EXPECT_FALSE(clf.classify_packet(junk).match.has_value());
}

TEST(Classifier, MemoryReportConsistency) {
  const RuleSet rs = small_set();
  ConfigurableClassifier clf(
      cfg_for(rs, CombineMode::kCrossProduct, IpAlgorithm::kMbt));
  clf.add_rules(rs);
  const MemoryReport rep = clf.memory_report();
  EXPECT_GT(rep.blocks.size(), 8u);
  EXPECT_GT(rep.total_used_bits, 0u);
  EXPECT_LE(rep.total_used_bits, rep.total_capacity_bits);
  for (const auto& b : rep.blocks) {
    EXPECT_LE(b.used_bits, b.capacity_bits) << b.name;
  }
  EXPECT_GT(rep.register_bits, 0u);
  // The shared block appears exactly once.
  usize shared_blocks = 0;
  for (const auto& b : rep.blocks) {
    if (b.name.find("shared") != std::string::npos) ++shared_blocks;
  }
  EXPECT_EQ(shared_blocks, 4u);  // one per IP dimension
}

TEST(Classifier, SynthesisReportShape) {
  ConfigurableClassifier clf;
  const auto rep = clf.synthesis_report();
  EXPECT_GT(rep.block_memory_bits, 0u);
  EXPECT_GT(rep.registers, 0u);
  EXPECT_GT(rep.logic_alms, 0u);
  EXPECT_DOUBLE_EQ(rep.fmax_mhz, 133.51);
  EXPECT_EQ(rep.pins_used, 500u);
  EXPECT_EQ(clf.memory_report().total_capacity_bits,
            rep.block_memory_bits);
}

TEST(Classifier, LabelCountsMatchRuleSetStats) {
  const RuleSet rs = small_set();
  ConfigurableClassifier clf(
      cfg_for(rs, CombineMode::kCrossProduct, IpAlgorithm::kMbt));
  clf.add_rules(rs);
  const auto st = ruleset::RuleSetStats::analyze(rs);
  for (Dimension d : kAllDimensions) {
    EXPECT_EQ(clf.label_count(d), st.unique_per_dimension[index_of(d)])
        << to_string(d);
  }
}

TEST(Classifier, PipelineModelMbtVsBst) {
  const RuleSet rs = small_set();
  ConfigurableClassifier clf(
      cfg_for(rs, CombineMode::kFirstLabel, IpAlgorithm::kMbt));
  clf.add_rules(rs);
  const auto mbt_pipe = clf.lookup_pipeline();
  EXPECT_EQ(mbt_pipe.initiation_interval(), 1u);  // Table VI: 1/packet
  // Analytic == simulated.
  EXPECT_EQ(mbt_pipe.run(1000).total_cycles,
            mbt_pipe.simulate(1000).total_cycles);

  clf.set_ip_algorithm(IpAlgorithm::kBst);
  const auto bst_pipe = clf.lookup_pipeline();
  EXPECT_GT(bst_pipe.initiation_interval(), 4u);   // not pipelined
  EXPECT_LE(bst_pipe.initiation_interval(), 16u);  // paper's bound
}

TEST(Classifier, AccessCountsMatchConfiguredAlgorithms) {
  const RuleSet rs = small_set();
  ConfigurableClassifier clf(
      cfg_for(rs, CombineMode::kFirstLabel, IpAlgorithm::kMbt));
  clf.add_rules(rs);
  const auto trace = trace_for(rs, 200);
  u64 mbt_total = 0, bst_total = 0;
  for (const auto& e : trace) {
    mbt_total += clf.classify(e.header).memory_accesses;
  }
  clf.set_ip_algorithm(IpAlgorithm::kBst);
  for (const auto& e : trace) {
    bst_total += clf.classify(e.header).memory_accesses;
  }
  // BST walks cost far more reads than the 3-level MBT.
  EXPECT_GT(bst_total, mbt_total);
}

TEST(Classifier, FailedAddKeepsDeviceCorrect) {
  // Orphaned labels from a failed insert must not corrupt results
  // (documented non-transactionality: the refcounted label is unreferenced
  // by any rule, so it can never produce a false hit).
  ClassifierConfig tiny = ClassifierConfig::for_scale(100);
  tiny.rule_filter_depth = 4;  // force a capacity failure
  tiny.rule_filter_max_probes = 2;
  tiny.combine_mode = CombineMode::kCrossProduct;
  ConfigurableClassifier clf(tiny);
  RuleSet installed("ok");
  usize failures = 0;
  const RuleSet rs = small_set();
  for (usize i = 0; i < 12; ++i) {
    Rule r = rs[i];
    try {
      clf.add_rule(r);
      installed.add(r);
    } catch (const CapacityError&) {
      ++failures;
    }
  }
  ASSERT_GT(failures, 0u);
  baseline::LinearSearch oracle(installed);
  EXPECT_EQ(count_mismatches(clf, oracle, trace_for(rs, 500)), 0u);
}

TEST(Classifier, UpdateStatsAccumulateOnBus) {
  const RuleSet rs = small_set();
  ConfigurableClassifier clf(
      cfg_for(rs, CombineMode::kCrossProduct, IpAlgorithm::kMbt));
  EXPECT_EQ(clf.update_stats().cycles, 0u);
  Rule r = rs[0];
  const auto c1 = clf.add_rule(r);
  EXPECT_EQ(clf.update_stats().cycles, c1.cycles);
  const auto c2 = clf.remove_rule(r.id);
  EXPECT_EQ(clf.update_stats().cycles, c1.cycles + c2.cycles);
}

// FirstLabel and CrossProduct agree whenever the first-label combination
// happens to own the HPMR — on a disjoint rule set they are identical.
TEST(Classifier, ModesAgreeOnDisjointRules) {
  RuleSet rs("disjoint");
  for (u16 i = 0; i < 50; ++i) {
    Rule r;
    r.src_ip = ruleset::IpPrefix::make(
        ipv4(10, static_cast<u8>(i), 0, 0), 16);
    r.dst_port = ruleset::PortRange::exact(static_cast<u16>(1000 + i));
    r.proto = ruleset::ProtoMatch::exact(net::kProtoTcp);
    rs.add(r);
  }
  ConfigurableClassifier clf(
      cfg_for(rs, CombineMode::kFirstLabel, IpAlgorithm::kMbt));
  clf.add_rules(rs);
  baseline::LinearSearch oracle(rs);
  const auto trace = trace_for(rs, 500, 123);
  EXPECT_EQ(count_mismatches(clf, oracle, trace), 0u);
}
