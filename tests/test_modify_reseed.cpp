// OpenFlow MODIFY semantics and the controller's automatic hash-reseed
// recovery (extensions over the paper's baseline update path).
#include <gtest/gtest.h>

#include "baseline/linear_search.hpp"
#include "core/classifier.hpp"
#include "core/rule_filter.hpp"
#include "ruleset/generator.hpp"
#include "ruleset/trace_gen.hpp"
#include "sdn/switch_device.hpp"

using namespace pclass;
using namespace pclass::core;
using pclass::ruleset::Rule;
using pclass::ruleset::RuleSet;

namespace {

Rule port_rule(u32 id, u16 port, u32 action_token) {
  Rule r;
  r.id = RuleId{id};
  r.priority = id;
  r.dst_port = ruleset::PortRange::exact(port);
  r.proto = ruleset::ProtoMatch::exact(net::kProtoTcp);
  r.action = ruleset::Action{action_token};
  return r;
}

net::FiveTuple header_for_port(u16 port) {
  return {ipv4(1, 2, 3, 4), ipv4(5, 6, 7, 8), 999, port, net::kProtoTcp};
}

}  // namespace

TEST(ModifyRule, RewritesActionInPlace) {
  ConfigurableClassifier clf;
  clf.add_rule(port_rule(1, 80, 7));
  ASSERT_EQ(clf.classify(header_for_port(80)).match->action, 7u);

  const auto cost = clf.modify_rule(RuleId{1}, ruleset::Action{42});
  EXPECT_EQ(clf.classify(header_for_port(80)).match->action, 42u);
  // As cheap as a label-hit insert: hash + two-beat rewrite.
  EXPECT_EQ(cost.cycles, 3u);
  EXPECT_EQ(cost.memory_writes, 2u);
  EXPECT_EQ(cost.hash_computes, 1u);
}

TEST(ModifyRule, PersistsAcrossAlgorithmSwitch) {
  ConfigurableClassifier clf;
  clf.add_rule(port_rule(1, 80, 7));
  clf.modify_rule(RuleId{1}, ruleset::Action{42});
  clf.set_ip_algorithm(IpAlgorithm::kBst);
  EXPECT_EQ(clf.classify(header_for_port(80)).match->action, 42u);
}

TEST(ModifyRule, UnknownRuleThrows) {
  ConfigurableClassifier clf;
  EXPECT_THROW(clf.modify_rule(RuleId{9}, ruleset::Action{1}), ConfigError);
}

TEST(ModifyRule, RemoveAfterModifyStillClean) {
  ConfigurableClassifier clf;
  clf.add_rule(port_rule(1, 80, 7));
  clf.modify_rule(RuleId{1}, ruleset::Action{42});
  clf.remove_rule(RuleId{1});
  EXPECT_EQ(clf.rule_count(), 0u);
  EXPECT_FALSE(clf.classify(header_for_port(80)).match.has_value());
}

TEST(ModifyRule, ViaFlowMod) {
  sdn::SwitchDevice sw("s1");
  sdn::FlowMod add;
  add.command = sdn::FlowMod::Command::kAdd;
  add.cookie = RuleId{5};
  add.match = port_rule(5, 443, 0);
  add.action = sdn::ActionSpec::output(3);
  sw.handle(add);
  sdn::FlowMod mod;
  mod.command = sdn::FlowMod::Command::kModify;
  mod.cookie = RuleId{5};
  mod.action = sdn::ActionSpec::output(9);
  sw.handle(mod);
  EXPECT_EQ(sw.process_header(header_for_port(443), 64).action.arg, 9u);
  EXPECT_EQ(sw.flow_count(), 1u);  // modify does not duplicate flows
}

TEST(Reseed, RecoversFromProbeBoundAndStaysCorrect) {
  // A deliberately hostile filter: tiny probe bound so clustering trips
  // the CapacityError; the classifier must re-seed and carry on, and the
  // final table must still answer exactly.
  ClassifierConfig cfg = ClassifierConfig::for_scale(1000);
  cfg.rule_filter_max_probes = 3;
  cfg.combine_mode = CombineMode::kCrossProduct;
  ConfigurableClassifier clf(cfg);

  const RuleSet rs =
      ruleset::make_classbench_like(ruleset::FilterType::kAcl, 1000);
  for (const Rule& r : rs) {
    Rule copy = r;
    clf.add_rule(copy);  // must never throw: reseed absorbs clustering
  }
  EXPECT_EQ(clf.rule_count(), rs.size());

  baseline::LinearSearch oracle(rs);
  ruleset::TraceGenerator tg(rs, {.headers = 500, .seed = 17});
  for (const auto& e : tg.generate()) {
    const auto got = clf.classify(e.header);
    const auto* want = oracle.classify(e.header, nullptr);
    ASSERT_EQ(got.match.has_value(), want != nullptr);
    if (want != nullptr) {
      EXPECT_EQ(got.match->rule, want->id);
    }
  }
}

TEST(Reseed, GenuinelyFullTableStillThrows) {
  ClassifierConfig cfg;
  cfg.rule_filter_depth = 4;
  cfg.rule_filter_max_probes = 4;
  ConfigurableClassifier clf(cfg);
  usize installed = 0;
  try {
    for (u32 i = 0; i < 10; ++i) {
      clf.add_rule(port_rule(i, static_cast<u16>(1000 + i), 0));
      ++installed;
    }
    FAIL() << "expected CapacityError";
  } catch (const CapacityError&) {
    EXPECT_LE(installed, 4u);  // reseed cannot conjure capacity
  }
}

TEST(Reseed, RuleFilterReseedScattersConstructedCollisions) {
  // Deterministic trigger: keys constructed to collide under seed 1 trip
  // the probe bound; a fresh seed scatters them and the full re-upload
  // cost is metered through the log.
  RuleFilter f("f", 64, 3, 1);
  Key68Hasher h(64, 1);
  std::vector<Key68> same;
  for (u64 x = 0; same.size() < 4; ++x) {
    const Key68 k{static_cast<u8>(x & 0xF), x * 0x9E37ull};
    if (h(k) == 0) same.push_back(k);
  }
  hw::CommandLog log;
  for (usize i = 0; i < 3; ++i) {
    f.insert(same[i], {RuleId{static_cast<u32>(i)}, 0, 0}, log);
  }
  EXPECT_THROW(f.insert(same[3], {RuleId{3}, 0, 0}, log), CapacityError);

  // Find a seed that breaks the cluster (deterministic search).
  bool recovered = false;
  for (u64 seed = 2; seed < 40 && !recovered; ++seed) {
    hw::CommandLog rlog;
    try {
      f.reseed(seed, rlog);
      f.insert(same[3], {RuleId{3}, 0, 0}, rlog);
      recovered = true;
      // Re-upload cost: at least 2 beats per live entry + hash computes.
      EXPECT_GE(rlog.size(), 3u * 3u);
    } catch (const CapacityError&) {
      // reseed restored the previous layout; all three originals must
      // still be present before we try the next seed.
      for (usize i = 0; i < 3; ++i) {
        ASSERT_TRUE(f.lookup(same[i], nullptr).has_value());
      }
    }
  }
  ASSERT_TRUE(recovered);
  for (usize i = 0; i < 4; ++i) {
    const auto hit = f.lookup(same[i], nullptr);
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(hit->rule.value, i);
  }
}
