// Seeded randomized differential harness for the whole batch hot path.
//
// Each iteration draws one configuration from the cross of
//   {acl,fw,ipc} RulesetProfile draws x synthesized traces
//   x IP lookup backends {mbt, bst, rvh}
//   x batch sizes {1, 32, 256}
//   x probe-memo {ways 1, ways 2} x {per-batch, persistent} x {off}
//   x memo slot counts {16, 64, 512} (tiny memos force eviction churn)
//   x all PathPolicy pins (adaptive / phase2 / scalar-loop)
// and drives the trace through classify_batch() with ONE long-lived
// BatchScratch (the dataplane-worker lifetime: the persistent memo and
// the controller survive across batches). Every packet is checked three
// ways:
//
//   * verdict  == baseline::LinearSearch over the installed rules
//                 (semantic ground truth);
//   * verdict  == the scalar classify() path (batch-engine parity);
//   * memory_accesses and crossproduct_probes == the scalar path's
//                 (the cycle-charging contract: the memo and the batch
//                 engine must never change modeled accesses).
//
// Half the iterations interleave random update-path mutations
// (remove / re-add / modify) at batch boundaries, then keep classifying
// with the same scratch: the persistent memo's epoch invalidation is
// what keeps the next batch's verdicts correct, so any stale entry
// served under the 2-way geometry shows up as a verdict or access
// mismatch against the freshly-rebuilt oracle.
//
// Determinism: the default run uses a fixed seed (what CI's main job
// runs); PCLASS_FUZZ_SEED / PCLASS_FUZZ_ITERS override it for the
// random-seed smoke (CI echoes the seed into the log so any failure is
// reproducible by exporting the same value).
//
// The second half of the file is the *sharded-engine* differential
// fuzzer: real multi-worker Engines (2-4 shards, 1..S threads, replica
// and partition geometry) with verdict capture on, while a concurrent
// mutator streams rule updates through the RuleProgramPublisher
// mid-classification. Every captured verdict is checked against a
// LinearSearch oracle reconstructed at exactly the rule-program
// version the verdict was stamped with, plus the steering invariant
// (each verdict's tuple hashes to the shard that logged it).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baseline/linear_search.hpp"
#include "common/random.hpp"
#include "core/classifier.hpp"
#include "dataplane/engine.hpp"
#include "dataplane/flow_steer.hpp"
#include "sdn/flow_mod.hpp"
#include "workload/profile.hpp"
#include "workload/ruleset_synth.hpp"
#include "workload/trace_synth.hpp"

using namespace pclass;

namespace {

constexpr u64 kDefaultSeed = 0xC1A551F1;
constexpr usize kDefaultIters = 200;

u64 env_u64(const char* name, u64 fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 0);
}

/// One drawn configuration, loggable for reproduction.
struct FuzzConfig {
  std::string family;
  usize rules_n = 0;
  usize packets = 0;
  bool zipf_trace = false;
  core::IpAlgorithm alg = core::IpAlgorithm::kMbt;
  usize batch = 0;
  bool memo_on = true;
  u32 memo_ways = 2;
  u32 memo_slots = 512;
  bool memo_persistent = true;
  core::PathPolicy policy = core::PathPolicy::kAdaptive;
  bool updates = false;
  u64 seed = 0;

  [[nodiscard]] std::string describe() const {
    return "family=" + family + " rules=" + std::to_string(rules_n) +
           " packets=" + std::to_string(packets) +
           (zipf_trace ? " trace=zipf" : " trace=standard") +
           " alg=" + std::string(to_string(alg)) +
           " batch=" + std::to_string(batch) +
           " memo=" + (memo_on ? "on" : "off") +
           " ways=" + std::to_string(memo_ways) +
           " slots=" + std::to_string(memo_slots) +
           (memo_persistent ? " persistent" : " per-batch") +
           " policy=" + std::string(to_string(policy)) +
           (updates ? " updates=yes" : " updates=no") +
           " seed=" + std::to_string(seed);
  }
};

FuzzConfig draw_config(Rng& rng, u64 seed) {
  FuzzConfig c;
  c.seed = seed;
  c.family = std::array{"acl", "fw", "ipc"}[rng.below(3)];
  c.rules_n = 40 + static_cast<usize>(rng.below(90));
  c.packets = 192 + static_cast<usize>(rng.below(192));
  c.zipf_trace = rng.below(2) == 0;
  c.alg = std::array{core::IpAlgorithm::kMbt, core::IpAlgorithm::kBst,
                     core::IpAlgorithm::kRvh}[rng.below(3)];
  c.batch = std::array<usize, 3>{1, 32, 256}[rng.below(3)];
  c.memo_on = rng.below(8) != 0;  // mostly on — it is the system under test
  c.memo_ways = rng.below(2) == 0 ? 1 : 2;
  c.memo_slots = std::array<u32, 3>{16, 64, 512}[rng.below(3)];
  c.memo_persistent = rng.below(2) == 0;
  c.policy = std::array{core::PathPolicy::kAdaptive,
                        core::PathPolicy::kForcePhase2,
                        core::PathPolicy::kForceScalarLoop}[rng.below(3)];
  c.updates = rng.below(2) == 0;
  return c;
}

/// Rebuild the linear-search oracle from what the classifier actually
/// has installed (priorities verbatim — no back-fill).
std::unique_ptr<baseline::LinearSearch> make_oracle(
    const core::ConfigurableClassifier& clf) {
  ruleset::RuleSet rs("oracle");
  for (const ruleset::Rule& r : clf.installed_rules()) {
    rs.add_verbatim(r);
  }
  return std::make_unique<baseline::LinearSearch>(rs);
}

/// Apply 1..4 random update-path mutations: remove an installed rule,
/// re-add a previously removed one, or rewrite an action in place.
/// Every mutation bumps the device epoch, so the persistent memo must
/// drop its entries before the next batch.
void mutate(core::ConfigurableClassifier& clf, Rng& rng,
            std::vector<ruleset::Rule>& removed) {
  const usize kMutations = 1 + rng.below(4);
  for (usize m = 0; m < kMutations; ++m) {
    const auto installed = clf.installed_rules();
    const u64 kind = rng.below(3);
    if (kind == 0 && installed.size() > 8) {
      const ruleset::Rule victim = installed[rng.below(installed.size())];
      clf.remove_rule(victim.id);
      removed.push_back(victim);
    } else if (kind == 1 && !removed.empty()) {
      const usize k = rng.below(removed.size());
      clf.add_rule(removed[k]);
      removed.erase(removed.begin() + static_cast<std::ptrdiff_t>(k));
    } else if (!installed.empty()) {
      const ruleset::Rule& r = installed[rng.below(installed.size())];
      clf.modify_rule(r.id,
                      ruleset::Action{static_cast<u32>(rng.below(0xFFFF))});
    }
  }
}

/// Run one drawn configuration end to end; every EXPECT carries the
/// config description so a failure is reproducible from the log alone.
void run_config(const FuzzConfig& c) {
  Rng rng(c.seed ^ 0x5EED5EEDULL);

  workload::RulesetProfile rp =
      workload::RulesetProfile::by_family(c.family, c.rules_n, c.seed);
  ruleset::RuleSet rules = workload::synthesize(rp);
  workload::TraceProfile tp =
      c.zipf_trace ? workload::TraceProfile::zipf_heavy(c.packets, c.seed ^ 1)
                   : workload::TraceProfile::standard(c.packets, c.seed ^ 1);
  net::Trace trace;
  {
    workload::TraceSynthesizer ts(rules, tp);
    trace = ts.generate();
  }

  core::ClassifierConfig cfg =
      core::ClassifierConfig::for_scale(rules.size() + 64);
  cfg.combine_mode = core::CombineMode::kCrossProduct;  // exact => oracle
  cfg.ip_algorithm = c.alg;
  cfg.batch_mode = core::BatchMode::kPhase2;
  cfg.batch_probe_memo = c.memo_on;
  cfg.batch_memo_slots = c.memo_slots;
  cfg.batch_memo_ways = c.memo_ways;
  cfg.batch_memo_persistent = c.memo_persistent;
  cfg.batch_path_policy = c.policy;
  core::ConfigurableClassifier clf(cfg);
  clf.add_rules(rules);

  std::unique_ptr<baseline::LinearSearch> oracle = make_oracle(clf);
  std::vector<ruleset::Rule> removed;

  // One scratch for the whole trace: the dataplane-worker lifetime the
  // persistent memo and controller are designed around.
  core::BatchScratch scratch;
  std::vector<net::FiveTuple> in;
  std::vector<core::ClassifyResult> out;

  usize off = 0;
  usize checked = 0;
  while (off < trace.size()) {
    const usize len = std::min(c.batch, trace.size() - off);
    in.clear();
    for (usize k = 0; k < len; ++k) in.push_back(trace[off + k].header);
    out.assign(len, {});
    clf.classify_batch(in, out, scratch);

    for (usize k = 0; k < len; ++k) {
      // Batch-engine parity: verdict, modeled accesses and probe count
      // must equal the scalar path's, memo or not.
      const core::ClassifyResult ref = clf.classify(in[k]);
      const bool batch_match = out[k].match.has_value();
      ASSERT_EQ(batch_match, ref.match.has_value())
          << c.describe() << " pkt " << off + k;
      if (batch_match) {
        ASSERT_EQ(out[k].match->rule, ref.match->rule)
            << c.describe() << " pkt " << off + k;
        ASSERT_EQ(out[k].match->priority, ref.match->priority)
            << c.describe() << " pkt " << off + k;
      }
      ASSERT_EQ(out[k].memory_accesses, ref.memory_accesses)
          << c.describe() << " pkt " << off + k
          << " (a memoized probe charged the wrong replaced-read count "
             "— stale or mis-tagged memo entry)";
      ASSERT_EQ(out[k].crossproduct_probes, ref.crossproduct_probes)
          << c.describe() << " pkt " << off + k;

      // Semantic ground truth.
      const ruleset::Rule* want = oracle->classify(in[k], nullptr);
      if (want == nullptr) {
        ASSERT_FALSE(batch_match) << c.describe() << " pkt " << off + k;
      } else {
        ASSERT_TRUE(batch_match) << c.describe() << " pkt " << off + k;
        ASSERT_EQ(out[k].match->rule, want->id)
            << c.describe() << " pkt " << off + k;
      }
      ++checked;
    }
    off += len;

    // Epoch-invalidation fuzz: mutate at some batch boundaries, then
    // keep going with the same scratch. If a stale memo entry survived
    // the epoch bump, the next batch diverges from the rebuilt oracle.
    if (c.updates && off < trace.size() && rng.below(4) == 0) {
      mutate(clf, rng, removed);
      oracle = make_oracle(clf);
    }
  }
  ASSERT_EQ(checked, trace.size()) << c.describe();
}

}  // namespace

TEST(DifferentialFuzz, RandomConfigsAgreeWithLinearSearch) {
  const u64 seed = env_u64("PCLASS_FUZZ_SEED", kDefaultSeed);
  const usize iters = static_cast<usize>(
      env_u64("PCLASS_FUZZ_ITERS", kDefaultIters));
  std::cerr << "[fuzz] seed=" << seed << " iters=" << iters
            << " (override via PCLASS_FUZZ_SEED / PCLASS_FUZZ_ITERS)\n";

  Rng meta(seed);
  for (usize i = 0; i < iters; ++i) {
    const u64 cseed = meta.next();
    Rng rng(cseed);
    const FuzzConfig c = draw_config(rng, cseed);
    SCOPED_TRACE("iter " + std::to_string(i) + ": " + c.describe());
    run_config(c);
    if (::testing::Test::HasFatalFailure()) {
      std::cerr << "[fuzz] FAILED at iter " << i << ": " << c.describe()
                << "\n";
      return;
    }
  }
}

// A focused stale-serve hunt: tiny memo, maximal collision pressure,
// updates every batch — the geometry where a broken 2-way epoch check
// would actually serve a stale verdict.
TEST(DifferentialFuzz, UpdateStormNeverServesStaleUnderTinyMemo) {
  const u64 seed = env_u64("PCLASS_FUZZ_SEED", kDefaultSeed) ^ 0xA11CE;
  Rng meta(seed);
  // Both backend families: the trie's rebuild-style updates and the
  // RVH's in-place bucket updates must bump the device epoch alike —
  // either one skipping it would serve a stale memo entry here.
  for (const core::IpAlgorithm alg :
       {core::IpAlgorithm::kMbt, core::IpAlgorithm::kRvh}) {
    for (const u32 ways : {1u, 2u}) {
      const u64 cseed = meta.next();
      FuzzConfig c;
      c.seed = cseed;
      c.family = "fw";  // wildcard-heavy: repeated combinations, hot memo
      c.rules_n = 80;
      c.packets = 512;
      c.zipf_trace = true;
      c.alg = alg;
      c.batch = 32;
      c.memo_on = true;
      c.memo_ways = ways;
      c.memo_slots = 16;  // minimum geometry: every set under pressure
      c.memo_persistent = true;
      c.policy = core::PathPolicy::kForcePhase2;  // memo always engaged
      c.updates = true;
      SCOPED_TRACE(c.describe());
      run_config(c);
    }
  }
}

// ===========================================================================
// Sharded-engine differential fuzz: real Engines, real worker threads,
// live publisher mutations. Where the harness above exercises one
// classifier on one thread, this one exercises the full sharded runtime
// — steering, per-shard replicas, RCU snapshot acquisition and the
// partition combiner — against per-version LinearSearch oracles.
// ===========================================================================

namespace {

/// One drawn sharded-engine configuration, loggable for reproduction.
struct ShardFuzzConfig {
  std::string family;
  usize rules_n = 0;
  usize packets = 0;
  bool zipf_trace = false;
  core::IpAlgorithm alg = core::IpAlgorithm::kMbt;
  usize shards = 2;
  usize workers = 1;   ///< worker threads (may be < shards: multi-shard threads)
  usize batch = 32;
  bool symmetric = false;
  bool partition = false;   ///< partition geometry (no mutations: the
                            ///< per-shard publishers version independently)
  bool mutations = false;   ///< concurrent publisher mutator (replica only)
  u32 cache_depth = 0;
  u64 seed = 0;

  [[nodiscard]] std::string describe() const {
    return "family=" + family + " rules=" + std::to_string(rules_n) +
           " packets=" + std::to_string(packets) +
           (zipf_trace ? " trace=zipf" : " trace=standard") +
           " alg=" + std::string(to_string(alg)) +
           " shards=" + std::to_string(shards) +
           " workers=" + std::to_string(workers) +
           " batch=" + std::to_string(batch) +
           (symmetric ? " steer=symmetric" : " steer=plain") +
           (partition ? " mode=partition" : " mode=replica") +
           (mutations ? " mutations=yes" : " mutations=no") +
           " cache=" + std::to_string(cache_depth) +
           " seed=" + std::to_string(seed);
  }
};

ShardFuzzConfig draw_shard_config(Rng& rng, u64 seed) {
  ShardFuzzConfig c;
  c.seed = seed;
  c.family = std::array{"acl", "fw", "ipc"}[rng.below(3)];
  c.rules_n = 40 + static_cast<usize>(rng.below(81));
  c.packets = 256 + static_cast<usize>(rng.below(513));
  c.zipf_trace = rng.below(2) == 0;
  c.alg = std::array{core::IpAlgorithm::kMbt, core::IpAlgorithm::kBst,
                     core::IpAlgorithm::kRvh}[rng.below(3)];
  c.shards = 2 + static_cast<usize>(rng.below(3));           // 2..4
  c.workers = 1 + static_cast<usize>(rng.below(c.shards));   // 1..S
  c.batch = std::array<usize, 3>{8, 32, 64}[rng.below(3)];
  c.symmetric = rng.below(2) == 0;
  c.partition = rng.below(4) == 0;  // every ~4th iteration
  if (!c.partition) {
    c.mutations = rng.below(2) == 0;
    // The flow cache's one-batch stale window is by design; the
    // per-version oracle check demands exact verdicts, so the cache
    // stays off whenever the mutator runs.
    c.cache_depth = c.mutations ? 0 : (rng.below(2) == 0 ? 0 : 64);
  }
  return c;
}

/// Version -> LinearSearch oracle over the rules that were installed at
/// exactly that published version. The single mutator thread record()s
/// after every publish (and once for the initial install), so by join
/// time every version a worker could have stamped a verdict with has an
/// entry. Oracles build lazily — most versions are only ever hit by a
/// few batches.
class VersionedOracles {
 public:
  void record(const dataplane::RuleProgramPublisher& pub) {
    const std::shared_ptr<const dataplane::RuleProgram> prog = pub.acquire();
    ruleset::RuleSet rs("v" + std::to_string(prog->version()));
    for (const ruleset::Rule& r : prog->classifier().installed_rules()) {
      rs.add_verbatim(r);
    }
    rules_.insert_or_assign(prog->version(), std::move(rs));
  }

  /// Oracle for \p version, or nullptr if that version was never
  /// published (a stamped verdict with an unknown version is itself a
  /// bug — it means a worker saw a torn or fabricated snapshot).
  [[nodiscard]] const baseline::LinearSearch* at(u64 version) {
    const auto built = oracles_.find(version);
    if (built != oracles_.end()) return built->second.get();
    const auto it = rules_.find(version);
    if (it == rules_.end()) return nullptr;
    auto oracle = std::make_unique<baseline::LinearSearch>(it->second);
    return oracles_.emplace(version, std::move(oracle)).first->second.get();
  }

 private:
  std::map<u64, ruleset::RuleSet> rules_;
  std::map<u64, std::unique_ptr<baseline::LinearSearch>> oracles_;
};

/// One random southbound mutation through the publisher — delete an
/// installed rule, re-add a previously deleted one (verbatim, same id
/// and priority), or rewrite an action in place — followed by a
/// snapshot record at the new version.
void mutate_publisher(dataplane::RuleProgramPublisher& pub, Rng& rng,
                      std::vector<ruleset::Rule>& removed,
                      VersionedOracles& oracles) {
  const std::vector<ruleset::Rule> installed =
      pub.acquire()->classifier().installed_rules();
  sdn::FlowMod fm;
  const u64 kind = rng.below(3);
  if (kind == 0 && installed.size() > 8) {
    const ruleset::Rule victim = installed[rng.below(installed.size())];
    fm.command = sdn::FlowMod::Command::kDelete;
    fm.cookie = victim.id;
    pub.apply(fm);
    removed.push_back(victim);
  } else if (kind == 1 && !removed.empty()) {
    const usize k = rng.below(removed.size());
    fm.command = sdn::FlowMod::Command::kAdd;
    fm.cookie = removed[k].id;
    fm.match = removed[k];
    fm.action = sdn::ActionSpec::decode(removed[k].action.token);
    pub.apply(fm);
    removed.erase(removed.begin() + static_cast<std::ptrdiff_t>(k));
  } else if (!installed.empty()) {
    fm.command = sdn::FlowMod::Command::kModify;
    fm.cookie = installed[rng.below(installed.size())].id;
    fm.action = sdn::ActionSpec::output(static_cast<u16>(1 + rng.below(1000)));
    pub.apply(fm);
  } else {
    return;  // nothing to mutate (fully drained set)
  }
  oracles.record(pub);
}

/// Drive one drawn configuration through a real Engine and check every
/// captured verdict against the oracle at its stamped version.
void run_shard_config(const ShardFuzzConfig& c) {
  workload::RulesetProfile rp =
      workload::RulesetProfile::by_family(c.family, c.rules_n, c.seed);
  ruleset::RuleSet rules = workload::synthesize(rp);
  workload::TraceProfile tp =
      c.zipf_trace ? workload::TraceProfile::zipf_heavy(c.packets, c.seed ^ 1)
                   : workload::TraceProfile::standard(c.packets, c.seed ^ 1);
  net::Trace trace;
  {
    workload::TraceSynthesizer ts(rules, tp);
    trace = ts.generate();
  }
  dataplane::TrafficPool pool =
      dataplane::TrafficPool::from_trace(trace, /*materialize=*/false);

  core::ClassifierConfig cfg =
      core::ClassifierConfig::for_scale(rules.size() + 64);
  cfg.combine_mode = core::CombineMode::kCrossProduct;  // exact => oracle
  cfg.ip_algorithm = c.alg;

  if (c.partition) {
    // Disjoint rule subsets, one publisher per shard, no mutations: the
    // combined stream must equal LinearSearch over the full set.
    const std::vector<ruleset::RuleSet> parts =
        dataplane::partition_rules(rules, c.shards);
    std::vector<std::unique_ptr<dataplane::RuleProgramPublisher>> pubs;
    std::vector<const dataplane::RuleProgramPublisher*> ptrs;
    for (const ruleset::RuleSet& part : parts) {
      pubs.push_back(std::make_unique<dataplane::RuleProgramPublisher>(cfg));
      pubs.back()->install_ruleset(part);
      ptrs.push_back(pubs.back().get());
    }
    dataplane::Engine engine(
        {.workers = c.workers,
         .batch_size = c.batch,
         .telemetry = false,
         .shards = c.shards,
         .shard_mode = dataplane::ShardMode::kPartition},
        ptrs);
    const dataplane::EngineReport rep = engine.run(pool);
    ASSERT_TRUE(rep.first_error().empty())
        << c.describe() << ": " << rep.first_error();
    ASSERT_EQ(rep.combined.size(), trace.size()) << c.describe();
    ASSERT_EQ(rep.workers.size(), 1u) << c.describe();
    EXPECT_EQ(rep.workers[0].packets, trace.size()) << c.describe();
    const baseline::LinearSearch oracle(rules);
    for (usize i = 0; i < trace.size(); ++i) {
      const ruleset::Rule* want = oracle.classify(trace[i].header, nullptr);
      const dataplane::CapturedVerdict& cv = rep.combined[i];
      ASSERT_EQ(cv.matched, want != nullptr) << c.describe() << " pkt " << i;
      if (want != nullptr) {
        ASSERT_EQ(cv.rule, want->id) << c.describe() << " pkt " << i;
        ASSERT_EQ(cv.priority, want->priority) << c.describe() << " pkt " << i;
        ASSERT_EQ(cv.action_token, want->action.token)
            << c.describe() << " pkt " << i;
      }
    }
    return;
  }

  // Replica geometry: one publisher, steered slices, optional live
  // mutator racing the workers.
  dataplane::RuleProgramPublisher pub(cfg);
  pub.install_ruleset(rules);
  VersionedOracles oracles;
  oracles.record(pub);

  // Workers drain a few hundred packets in tens of microseconds — far
  // faster than a wall-clock-paced mutator (each publish pays an RCU
  // grace period) could interleave. So the two sides gate on each
  // other's *progress*: the per-batch hook bumps `batches_seen` and
  // waits for the mutator to reach that batch's share of the mutation
  // budget, while mutation m waits for the m-th slice of the expected
  // batch count before publishing. The wait conditions are
  // complementary (a worker blocks only past B(d+1)/n batches, the
  // mutator only before B(d+1)/(n+1) — disjoint for every d), so the
  // lockstep cannot deadlock, and every run interleaves publishes
  // densely through the packet stream: workers re-acquire the snapshot
  // per batch, so successive batches observe successive versions.
  // `drained` / `mutations_done == n` break the coupling when either
  // side finishes early (leftover mutations publish after the run,
  // harmlessly).
  std::atomic<u64> batches_seen{0};
  std::atomic<u64> mutations_done{0};
  std::atomic<bool> drained{false};
  Rng mrng(c.seed ^ 0x0DDBA11ULL);
  const u64 n_mut =
      c.mutations ? 8 + static_cast<u64>(mrng.below(25)) : 0;  // 8..32
  const u64 expected_batches =
      static_cast<u64>((trace.size() + c.batch - 1) / c.batch);

  dataplane::EngineConfig ecfg{
      .workers = c.workers,
      .batch_size = c.batch,
      .flow_cache_depth = c.cache_depth,
      .telemetry = false,
      .shards = c.shards,
      .shard_mode = dataplane::ShardMode::kReplica,
      .steer_symmetric = c.symmetric,
      .capture_verdicts = true};
  if (c.mutations) {
    ecfg.worker_fault_hook = [&batches_seen, &mutations_done, n_mut,
                              expected_batches](usize) {
      const u64 b = batches_seen.fetch_add(1, std::memory_order_relaxed) + 1;
      const u64 want = std::min(n_mut, b * n_mut / expected_batches);
      while (mutations_done.load(std::memory_order_relaxed) < want) {
        std::this_thread::yield();
      }
    };
  }
  dataplane::Engine engine(ecfg, pub);

  // The mutator is the only writer; it records the installed-rule
  // snapshot after every publish, and is joined before any oracle read,
  // so VersionedOracles needs no locking.
  std::thread mutator;
  if (c.mutations) {
    mutator = std::thread([&pub, &oracles, &batches_seen, &mutations_done,
                           &drained, n_mut, expected_batches, mrng]() mutable {
      std::vector<ruleset::Rule> removed;
      for (u64 m = 0; m < n_mut; ++m) {
        const u64 gate = (m + 1) * expected_batches / (n_mut + 1);
        while (batches_seen.load(std::memory_order_relaxed) < gate &&
               !drained.load(std::memory_order_relaxed)) {
          std::this_thread::yield();
        }
        mutate_publisher(pub, mrng, removed, oracles);
        mutations_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  const dataplane::EngineReport rep = engine.run(pool);
  drained.store(true, std::memory_order_relaxed);
  if (mutator.joinable()) mutator.join();

  ASSERT_TRUE(rep.first_error().empty())
      << c.describe() << ": " << rep.first_error();
  EXPECT_TRUE(rep.versions_monotonic()) << c.describe();
  ASSERT_EQ(rep.captured.size(), c.shards) << c.describe();
  ASSERT_EQ(rep.shards.size(), c.shards) << c.describe();

  usize total = 0;
  for (usize s = 0; s < c.shards; ++s) {
    total += rep.captured[s].size();
    EXPECT_EQ(rep.captured[s].size(), rep.shards[s].packets)
        << c.describe() << " shard " << s;
    for (usize k = 0; k < rep.captured[s].size(); ++k) {
      const dataplane::CapturedVerdict& cv = rep.captured[s][k];
      ASSERT_FALSE(cv.parse_error) << c.describe() << " shard " << s;
      // Steering invariant: the verdict's flow hashes to the shard that
      // logged it.
      ASSERT_EQ(dataplane::shard_of(cv.tuple, c.shards, c.symmetric), s)
          << c.describe() << " pkt " << k;
      const baseline::LinearSearch* oracle = oracles.at(cv.version);
      ASSERT_NE(oracle, nullptr)
          << c.describe() << " shard " << s << " pkt " << k
          << ": verdict stamped with never-published version " << cv.version;
      const ruleset::Rule* want = oracle->classify(cv.tuple, nullptr);
      ASSERT_EQ(cv.matched, want != nullptr)
          << c.describe() << " shard " << s << " pkt " << k << " version "
          << cv.version;
      if (want != nullptr) {
        ASSERT_EQ(cv.rule, want->id)
            << c.describe() << " shard " << s << " pkt " << k << " version "
            << cv.version;
        ASSERT_EQ(cv.priority, want->priority)
            << c.describe() << " shard " << s << " pkt " << k;
        // Action tokens pin kModify visibility: a verdict carrying the
        // pre-modify action at a post-modify version is a stale serve.
        ASSERT_EQ(cv.action_token, want->action.token)
            << c.describe() << " shard " << s << " pkt " << k << " version "
            << cv.version;
      }
    }
  }
  EXPECT_EQ(total, trace.size()) << c.describe();
  EXPECT_EQ(rep.packets(), trace.size()) << c.describe();
}

}  // namespace

TEST(ShardedDifferentialFuzz, MultiWorkerEnginesAgreeWithVersionedOracles) {
  const u64 seed = env_u64("PCLASS_FUZZ_SEED", kDefaultSeed) ^ 0x5AADED;
  const usize iters =
      static_cast<usize>(env_u64("PCLASS_FUZZ_ITERS", kDefaultIters));
  std::cerr << "[shard-fuzz] seed=" << seed << " iters=" << iters
            << " (override via PCLASS_FUZZ_SEED / PCLASS_FUZZ_ITERS)\n";

  Rng meta(seed);
  for (usize i = 0; i < iters; ++i) {
    const u64 cseed = meta.next();
    Rng rng(cseed);
    const ShardFuzzConfig c = draw_shard_config(rng, cseed);
    SCOPED_TRACE("iter " + std::to_string(i) + ": " + c.describe());
    run_shard_config(c);
    if (::testing::Test::HasFatalFailure()) {
      std::cerr << "[shard-fuzz] FAILED at iter " << i << ": " << c.describe()
                << "\n";
      return;
    }
  }
}

// A focused cross-shard update storm: max shard fan-out, every worker
// thread busy, long trace so the mutator's 8..32 publishes land *during*
// classification — the geometry where a worker pinning an old snapshot
// (or stamping the wrong version on a batch) actually shows up.
TEST(ShardedDifferentialFuzz, UpdateStormAcrossShardsNeverServesStaleVerdict) {
  const u64 base = env_u64("PCLASS_FUZZ_SEED", kDefaultSeed) ^ 0x57EE1;
  Rng meta(base);
  // Both backend families under the storm: the RVH leg pins its
  // incremental bucket updates against per-version oracles on the real
  // multi-worker RCU path, not just the single-thread harness above.
  for (const core::IpAlgorithm alg :
       {core::IpAlgorithm::kMbt, core::IpAlgorithm::kRvh}) {
    for (const bool symmetric : {false, true}) {
      ShardFuzzConfig c;
      c.seed = meta.next();
      c.family = "fw";  // wildcard-heavy: verdicts shift under mutation
      c.rules_n = 96;
      c.packets = 2048;
      c.zipf_trace = true;
      c.alg = alg;
      c.shards = 4;
      c.workers = 4;
      c.batch = 16;  // many snapshot acquisitions per run
      c.symmetric = symmetric;
      c.partition = false;
      c.mutations = true;
      c.cache_depth = 0;
      SCOPED_TRACE(c.describe());
      run_shard_config(c);
    }
  }
}
