// Seeded randomized differential harness for the whole batch hot path.
//
// Each iteration draws one configuration from the cross of
//   {acl,fw,ipc} RulesetProfile draws x synthesized traces
//   x batch sizes {1, 32, 256}
//   x probe-memo {ways 1, ways 2} x {per-batch, persistent} x {off}
//   x memo slot counts {16, 64, 512} (tiny memos force eviction churn)
//   x all PathPolicy pins (adaptive / phase2 / scalar-loop)
// and drives the trace through classify_batch() with ONE long-lived
// BatchScratch (the dataplane-worker lifetime: the persistent memo and
// the controller survive across batches). Every packet is checked three
// ways:
//
//   * verdict  == baseline::LinearSearch over the installed rules
//                 (semantic ground truth);
//   * verdict  == the scalar classify() path (batch-engine parity);
//   * memory_accesses and crossproduct_probes == the scalar path's
//                 (the cycle-charging contract: the memo and the batch
//                 engine must never change modeled accesses).
//
// Half the iterations interleave random update-path mutations
// (remove / re-add / modify) at batch boundaries, then keep classifying
// with the same scratch: the persistent memo's epoch invalidation is
// what keeps the next batch's verdicts correct, so any stale entry
// served under the 2-way geometry shows up as a verdict or access
// mismatch against the freshly-rebuilt oracle.
//
// Determinism: the default run uses a fixed seed (what CI's main job
// runs); PCLASS_FUZZ_SEED / PCLASS_FUZZ_ITERS override it for the
// random-seed smoke (CI echoes the seed into the log so any failure is
// reproducible by exporting the same value).
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "baseline/linear_search.hpp"
#include "common/random.hpp"
#include "core/classifier.hpp"
#include "workload/profile.hpp"
#include "workload/ruleset_synth.hpp"
#include "workload/trace_synth.hpp"

using namespace pclass;

namespace {

constexpr u64 kDefaultSeed = 0xC1A551F1;
constexpr usize kDefaultIters = 200;

u64 env_u64(const char* name, u64 fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 0);
}

/// One drawn configuration, loggable for reproduction.
struct FuzzConfig {
  std::string family;
  usize rules_n = 0;
  usize packets = 0;
  bool zipf_trace = false;
  usize batch = 0;
  bool memo_on = true;
  u32 memo_ways = 2;
  u32 memo_slots = 512;
  bool memo_persistent = true;
  core::PathPolicy policy = core::PathPolicy::kAdaptive;
  bool updates = false;
  u64 seed = 0;

  [[nodiscard]] std::string describe() const {
    return "family=" + family + " rules=" + std::to_string(rules_n) +
           " packets=" + std::to_string(packets) +
           (zipf_trace ? " trace=zipf" : " trace=standard") +
           " batch=" + std::to_string(batch) +
           " memo=" + (memo_on ? "on" : "off") +
           " ways=" + std::to_string(memo_ways) +
           " slots=" + std::to_string(memo_slots) +
           (memo_persistent ? " persistent" : " per-batch") +
           " policy=" + std::string(to_string(policy)) +
           (updates ? " updates=yes" : " updates=no") +
           " seed=" + std::to_string(seed);
  }
};

FuzzConfig draw_config(Rng& rng, u64 seed) {
  FuzzConfig c;
  c.seed = seed;
  c.family = std::array{"acl", "fw", "ipc"}[rng.below(3)];
  c.rules_n = 40 + static_cast<usize>(rng.below(90));
  c.packets = 192 + static_cast<usize>(rng.below(192));
  c.zipf_trace = rng.below(2) == 0;
  c.batch = std::array<usize, 3>{1, 32, 256}[rng.below(3)];
  c.memo_on = rng.below(8) != 0;  // mostly on — it is the system under test
  c.memo_ways = rng.below(2) == 0 ? 1 : 2;
  c.memo_slots = std::array<u32, 3>{16, 64, 512}[rng.below(3)];
  c.memo_persistent = rng.below(2) == 0;
  c.policy = std::array{core::PathPolicy::kAdaptive,
                        core::PathPolicy::kForcePhase2,
                        core::PathPolicy::kForceScalarLoop}[rng.below(3)];
  c.updates = rng.below(2) == 0;
  return c;
}

/// Rebuild the linear-search oracle from what the classifier actually
/// has installed (priorities verbatim — no back-fill).
std::unique_ptr<baseline::LinearSearch> make_oracle(
    const core::ConfigurableClassifier& clf) {
  ruleset::RuleSet rs("oracle");
  for (const ruleset::Rule& r : clf.installed_rules()) {
    rs.add_verbatim(r);
  }
  return std::make_unique<baseline::LinearSearch>(rs);
}

/// Apply 1..4 random update-path mutations: remove an installed rule,
/// re-add a previously removed one, or rewrite an action in place.
/// Every mutation bumps the device epoch, so the persistent memo must
/// drop its entries before the next batch.
void mutate(core::ConfigurableClassifier& clf, Rng& rng,
            std::vector<ruleset::Rule>& removed) {
  const usize kMutations = 1 + rng.below(4);
  for (usize m = 0; m < kMutations; ++m) {
    const auto installed = clf.installed_rules();
    const u64 kind = rng.below(3);
    if (kind == 0 && installed.size() > 8) {
      const ruleset::Rule victim = installed[rng.below(installed.size())];
      clf.remove_rule(victim.id);
      removed.push_back(victim);
    } else if (kind == 1 && !removed.empty()) {
      const usize k = rng.below(removed.size());
      clf.add_rule(removed[k]);
      removed.erase(removed.begin() + static_cast<std::ptrdiff_t>(k));
    } else if (!installed.empty()) {
      const ruleset::Rule& r = installed[rng.below(installed.size())];
      clf.modify_rule(r.id,
                      ruleset::Action{static_cast<u32>(rng.below(0xFFFF))});
    }
  }
}

/// Run one drawn configuration end to end; every EXPECT carries the
/// config description so a failure is reproducible from the log alone.
void run_config(const FuzzConfig& c) {
  Rng rng(c.seed ^ 0x5EED5EEDULL);

  workload::RulesetProfile rp =
      workload::RulesetProfile::by_family(c.family, c.rules_n, c.seed);
  ruleset::RuleSet rules = workload::synthesize(rp);
  workload::TraceProfile tp =
      c.zipf_trace ? workload::TraceProfile::zipf_heavy(c.packets, c.seed ^ 1)
                   : workload::TraceProfile::standard(c.packets, c.seed ^ 1);
  net::Trace trace;
  {
    workload::TraceSynthesizer ts(rules, tp);
    trace = ts.generate();
  }

  core::ClassifierConfig cfg =
      core::ClassifierConfig::for_scale(rules.size() + 64);
  cfg.combine_mode = core::CombineMode::kCrossProduct;  // exact => oracle
  cfg.batch_mode = core::BatchMode::kPhase2;
  cfg.batch_probe_memo = c.memo_on;
  cfg.batch_memo_slots = c.memo_slots;
  cfg.batch_memo_ways = c.memo_ways;
  cfg.batch_memo_persistent = c.memo_persistent;
  cfg.batch_path_policy = c.policy;
  core::ConfigurableClassifier clf(cfg);
  clf.add_rules(rules);

  std::unique_ptr<baseline::LinearSearch> oracle = make_oracle(clf);
  std::vector<ruleset::Rule> removed;

  // One scratch for the whole trace: the dataplane-worker lifetime the
  // persistent memo and controller are designed around.
  core::BatchScratch scratch;
  std::vector<net::FiveTuple> in;
  std::vector<core::ClassifyResult> out;

  usize off = 0;
  usize checked = 0;
  while (off < trace.size()) {
    const usize len = std::min(c.batch, trace.size() - off);
    in.clear();
    for (usize k = 0; k < len; ++k) in.push_back(trace[off + k].header);
    out.assign(len, {});
    clf.classify_batch(in, out, scratch);

    for (usize k = 0; k < len; ++k) {
      // Batch-engine parity: verdict, modeled accesses and probe count
      // must equal the scalar path's, memo or not.
      const core::ClassifyResult ref = clf.classify(in[k]);
      const bool batch_match = out[k].match.has_value();
      ASSERT_EQ(batch_match, ref.match.has_value())
          << c.describe() << " pkt " << off + k;
      if (batch_match) {
        ASSERT_EQ(out[k].match->rule, ref.match->rule)
            << c.describe() << " pkt " << off + k;
        ASSERT_EQ(out[k].match->priority, ref.match->priority)
            << c.describe() << " pkt " << off + k;
      }
      ASSERT_EQ(out[k].memory_accesses, ref.memory_accesses)
          << c.describe() << " pkt " << off + k
          << " (a memoized probe charged the wrong replaced-read count "
             "— stale or mis-tagged memo entry)";
      ASSERT_EQ(out[k].crossproduct_probes, ref.crossproduct_probes)
          << c.describe() << " pkt " << off + k;

      // Semantic ground truth.
      const ruleset::Rule* want = oracle->classify(in[k], nullptr);
      if (want == nullptr) {
        ASSERT_FALSE(batch_match) << c.describe() << " pkt " << off + k;
      } else {
        ASSERT_TRUE(batch_match) << c.describe() << " pkt " << off + k;
        ASSERT_EQ(out[k].match->rule, want->id)
            << c.describe() << " pkt " << off + k;
      }
      ++checked;
    }
    off += len;

    // Epoch-invalidation fuzz: mutate at some batch boundaries, then
    // keep going with the same scratch. If a stale memo entry survived
    // the epoch bump, the next batch diverges from the rebuilt oracle.
    if (c.updates && off < trace.size() && rng.below(4) == 0) {
      mutate(clf, rng, removed);
      oracle = make_oracle(clf);
    }
  }
  ASSERT_EQ(checked, trace.size()) << c.describe();
}

}  // namespace

TEST(DifferentialFuzz, RandomConfigsAgreeWithLinearSearch) {
  const u64 seed = env_u64("PCLASS_FUZZ_SEED", kDefaultSeed);
  const usize iters = static_cast<usize>(
      env_u64("PCLASS_FUZZ_ITERS", kDefaultIters));
  std::cerr << "[fuzz] seed=" << seed << " iters=" << iters
            << " (override via PCLASS_FUZZ_SEED / PCLASS_FUZZ_ITERS)\n";

  Rng meta(seed);
  for (usize i = 0; i < iters; ++i) {
    const u64 cseed = meta.next();
    Rng rng(cseed);
    const FuzzConfig c = draw_config(rng, cseed);
    SCOPED_TRACE("iter " + std::to_string(i) + ": " + c.describe());
    run_config(c);
    if (::testing::Test::HasFatalFailure()) {
      std::cerr << "[fuzz] FAILED at iter " << i << ": " << c.describe()
                << "\n";
      return;
    }
  }
}

// A focused stale-serve hunt: tiny memo, maximal collision pressure,
// updates every batch — the geometry where a broken 2-way epoch check
// would actually serve a stale verdict.
TEST(DifferentialFuzz, UpdateStormNeverServesStaleUnderTinyMemo) {
  const u64 seed = env_u64("PCLASS_FUZZ_SEED", kDefaultSeed) ^ 0xA11CE;
  Rng meta(seed);
  for (const u32 ways : {1u, 2u}) {
    const u64 cseed = meta.next();
    FuzzConfig c;
    c.seed = cseed;
    c.family = "fw";  // wildcard-heavy: repeated combinations, hot memo
    c.rules_n = 80;
    c.packets = 512;
    c.zipf_trace = true;
    c.batch = 32;
    c.memo_on = true;
    c.memo_ways = ways;
    c.memo_slots = 16;  // minimum geometry: every set under pressure
    c.memo_persistent = true;
    c.policy = core::PathPolicy::kForcePhase2;  // memo always engaged
    c.updates = true;
    SCOPED_TRACE(c.describe());
    run_config(c);
  }
}
