// Unit tests for the Rule Filter (hashed rule memory with the 68-bit
// merged label key, §III.D / §IV.A).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/rule_filter.hpp"

using namespace pclass;
using namespace pclass::core;

namespace {
Key68 key_of(u64 x) { return Key68{static_cast<u8>(x >> 60), x * 0x9E37u}; }
}  // namespace

TEST(RuleFilter, InsertThenLookup) {
  RuleFilter f("f", 64, 8, 1);
  hw::CommandLog log;
  f.insert(key_of(1), {RuleId{10}, 3, 42}, log);
  hw::CycleRecorder rec;
  const auto hit = f.lookup(key_of(1), &rec);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule.value, 10u);
  EXPECT_EQ(hit->priority, 3u);
  EXPECT_EQ(hit->action, 42u);
  EXPECT_GE(rec.cycles(), 2u);  // hash + at least one read
  EXPECT_FALSE(f.lookup(key_of(2), &rec).has_value());
}

TEST(RuleFilter, TwoBeatUpload) {
  // §V.A: one rule entry = two bus beats (+ the hash cycle logged by the
  // caller).
  RuleFilter f("f", 64, 8, 1);
  hw::CommandLog log;
  f.insert(key_of(1), {RuleId{1}, 0, 0}, log);
  EXPECT_EQ(log.size(), 2u);
}

TEST(RuleFilter, DuplicateKeyThrows) {
  RuleFilter f("f", 64, 8, 1);
  hw::CommandLog log;
  f.insert(key_of(1), {RuleId{1}, 0, 0}, log);
  EXPECT_THROW(f.insert(key_of(1), {RuleId{2}, 1, 0}, log), InternalError);
}

TEST(RuleFilter, RemoveLeavesTombstoneChainIntact) {
  // Force a collision chain, delete the middle entry, and verify the
  // tail entry is still reachable through the tombstone.
  RuleFilter f("f", 8, 8, 1);
  hw::CommandLog log;
  // Find three keys hashing to the same bucket.
  std::vector<Key68> same;
  Key68Hasher h(8, 1);
  for (u64 x = 0; same.size() < 3; ++x) {
    const Key68 k = key_of(x);
    if (h(k) == 0) same.push_back(k);
  }
  for (usize i = 0; i < 3; ++i) {
    f.insert(same[i], {RuleId{static_cast<u32>(i)}, 0, 0}, log);
  }
  f.remove(same[1], log);
  EXPECT_EQ(f.tombstones(), 1u);
  const auto hit = f.lookup(same[2], nullptr);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule.value, 2u);
  EXPECT_FALSE(f.lookup(same[1], nullptr).has_value());
}

TEST(RuleFilter, TombstoneSlotReused) {
  RuleFilter f("f", 8, 8, 1);
  hw::CommandLog log;
  // Two keys in the same bucket: the second insert probes through the
  // first one's tombstone and recycles it.
  Key68Hasher h(8, 1);
  std::vector<Key68> same;
  for (u64 x = 0; same.size() < 2; ++x) {
    if (const Key68 k = key_of(x); h(k) == 0) same.push_back(k);
  }
  f.insert(same[0], {RuleId{1}, 0, 0}, log);
  f.remove(same[0], log);
  EXPECT_EQ(f.tombstones(), 1u);
  f.insert(same[1], {RuleId{2}, 0, 0}, log);
  EXPECT_EQ(f.tombstones(), 0u);  // slot recycled
  EXPECT_TRUE(f.lookup(same[1], nullptr).has_value());
}

TEST(RuleFilter, RemoveUnknownThrows) {
  RuleFilter f("f", 8, 8, 1);
  hw::CommandLog log;
  EXPECT_THROW(f.remove(key_of(5), log), InternalError);
}

TEST(RuleFilter, ProbeBoundCapacityError) {
  RuleFilter f("f", 8, 2, 1);  // only 2 probes allowed
  hw::CommandLog log;
  // Fill bucket 0's probe window with colliding keys.
  Key68Hasher h(8, 1);
  usize inserted = 0;
  u64 x = 0;
  try {
    for (; inserted < 8; ++x) {
      const Key68 k = key_of(x);
      if (h(k) == 0) {
        f.insert(k, {RuleId{static_cast<u32>(x)}, 0, 0}, log);
        ++inserted;
      }
    }
    FAIL() << "expected CapacityError";
  } catch (const CapacityError&) {
    EXPECT_GE(inserted, 2u);
  }
}

TEST(RuleFilter, TableFullCapacityError) {
  RuleFilter f("f", 2, 2, 1);
  hw::CommandLog log;
  usize inserted = 0;
  try {
    for (u64 x = 0; x < 10; ++x) {
      f.insert(key_of(x), {RuleId{static_cast<u32>(x)}, 0, 0}, log);
      ++inserted;
    }
    FAIL() << "expected CapacityError";
  } catch (const CapacityError&) {
    EXPECT_LE(inserted, 2u);
  }
}

TEST(RuleFilter, FieldWidthGuards) {
  RuleFilter f("f", 8, 4, 1);
  hw::CommandLog log;
  EXPECT_THROW(f.insert(key_of(1), {RuleId{0x10000}, 0, 0}, log),
               ConfigError);
  EXPECT_THROW(f.insert(key_of(1), {RuleId{1}, 0x10000, 0}, log),
               ConfigError);
  EXPECT_THROW(f.insert(key_of(1), {RuleId{1}, 0, 0x10000}, log),
               ConfigError);
}

TEST(RuleFilter, ClearResets) {
  RuleFilter f("f", 16, 8, 1);
  hw::CommandLog log;
  f.insert(key_of(1), {RuleId{1}, 0, 0}, log);
  f.insert(key_of(2), {RuleId{2}, 0, 0}, log);
  f.clear(log);
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(f.tombstones(), 0u);
  EXPECT_FALSE(f.lookup(key_of(1), nullptr).has_value());
}

TEST(RuleFilter, LoadFactorTracksLiveAndTombstones) {
  RuleFilter f("f", 10, 10, 1);
  hw::CommandLog log;
  f.insert(key_of(1), {RuleId{1}, 0, 0}, log);
  f.insert(key_of(2), {RuleId{2}, 0, 0}, log);
  EXPECT_DOUBLE_EQ(f.load_factor(), 0.2);
  f.remove(key_of(1), log);
  EXPECT_DOUBLE_EQ(f.load_factor(), 0.2);  // tombstone still occupies
}

TEST(RuleFilter, KeyBitsRoundTripThroughMemory) {
  RuleFilter f("f", 16, 8, 1);
  hw::CommandLog log;
  const Key68 k{0xF, 0xFFFFFFFFFFFFFFFFull};  // all 68 bits set
  f.insert(k, {RuleId{7}, 9, 11}, log);
  const auto hit = f.lookup(k, nullptr);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule.value, 7u);
  // A key differing only in the top nibble must miss.
  EXPECT_FALSE(f.lookup(Key68{0x7, 0xFFFFFFFFFFFFFFFFull}, nullptr));
}

TEST(RuleFilter, ConstructionValidation) {
  EXPECT_THROW(RuleFilter("f", 8, 0, 1), ConfigError);
  EXPECT_THROW(RuleFilter("f", 8, 9, 1), ConfigError);
}

TEST(ProbeMemo, GeometryValidationAndNormalization) {
  EXPECT_THROW(ProbeMemo(64, 0), ConfigError);
  EXPECT_THROW(ProbeMemo(64, 3), ConfigError);
  EXPECT_THROW(ProbeMemo(64, 4), ConfigError);
  // Slot rounding is the constructor's rule, exposed so geometry checks
  // elsewhere (the scratch rebuild in classify_batch) cannot desync.
  for (const u32 want : {0u, 1u, 15u, 16u, 17u, 500u, 512u, 513u}) {
    EXPECT_EQ(ProbeMemo(want).slots(), ProbeMemo::normalized_slots(want));
  }
  EXPECT_EQ(ProbeMemo::normalized_slots(0), 16u);
  EXPECT_EQ(ProbeMemo::normalized_slots(17), 32u);
  EXPECT_EQ(ProbeMemo(64, 1).ways(), 1u);
  EXPECT_EQ(ProbeMemo(64, 2).ways(), 2u);
}
