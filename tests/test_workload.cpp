// Tests for src/workload: profile validation, synthesis determinism
// (same seed => byte-identical artifacts), binary I/O round-trips,
// generated-set validity invariants (every rule matchable, overlap
// fraction honoring the profile), trace structure (Zipf head, thrash
// distances, storm schedules) and a smoke run of the scenario runner
// with oracle verification.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <variant>

#include "common/error.hpp"
#include "dataplane/engine.hpp"
#include "workload/binio.hpp"
#include "workload/json_writer.hpp"
#include "workload/profile.hpp"
#include "workload/ruleset_synth.hpp"
#include "workload/scenario.hpp"
#include "workload/trace_synth.hpp"

using namespace pclass;
using namespace pclass::workload;

namespace {

ruleset::RuleSet small_acl(usize rules = 300, u64 seed = 7) {
  return synthesize(RulesetProfile::acl(rules, seed));
}

}  // namespace

// ---- profiles -------------------------------------------------------------

TEST(Profile, FamiliesValidate) {
  for (const char* fam : {"acl", "fw", "ipc"}) {
    const RulesetProfile p = RulesetProfile::by_family(fam, 500);
    EXPECT_NO_THROW(p.validate());
    EXPECT_EQ(p.name, fam);
  }
  EXPECT_THROW(RulesetProfile::by_family("bogus", 500), ConfigError);
}

TEST(Profile, ValidationCatchesBadFields) {
  RulesetProfile p = RulesetProfile::acl(100);
  p.overlap_fraction = 1.5;
  EXPECT_THROW(p.validate(), ConfigError);
  p = RulesetProfile::acl(100);
  p.src_ip_pool = 0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = RulesetProfile::acl(100);
  p.src_len.entries.clear();
  EXPECT_THROW(p.validate(), ConfigError);
  TraceProfile t = TraceProfile::standard(100, 1);
  t.locality = -0.1;
  EXPECT_THROW(t.validate(), ConfigError);
}

// ---- synthesis ------------------------------------------------------------

TEST(RulesetSynth, ReachesTargetAndDedups) {
  for (const char* fam : {"acl", "fw", "ipc"}) {
    const ruleset::RuleSet rs =
        synthesize(RulesetProfile::by_family(fam, 400, 11));
    EXPECT_EQ(rs.size(), 400u) << fam;
    // Priorities are the position (densified) and ids are unique.
    for (usize i = 0; i < rs.size(); ++i) {
      EXPECT_EQ(rs[i].priority, static_cast<Priority>(i));
    }
    EXPECT_EQ(rs.deduplicated().size(), rs.size()) << fam;
  }
}

TEST(RulesetSynth, EveryRuleIsMatchable) {
  // Validity invariant: no empty matches — each rule admits at least one
  // concrete header (derived inside its own region).
  const ruleset::RuleSet rs = small_acl(500, 3);
  Rng rng(99);
  for (const auto& r : rs) {
    const net::FiveTuple h = header_inside(r, rng);
    EXPECT_TRUE(r.matches(h));
  }
}

TEST(RulesetSynth, DeterministicBytesForSameSeed) {
  const ruleset::RuleSet a = synthesize(RulesetProfile::fw(350, 42));
  const ruleset::RuleSet b = synthesize(RulesetProfile::fw(350, 42));
  const ruleset::RuleSet c = synthesize(RulesetProfile::fw(350, 43));
  EXPECT_EQ(binio::ruleset_bytes(a), binio::ruleset_bytes(b));
  EXPECT_NE(binio::ruleset_bytes(a), binio::ruleset_bytes(c));
}

TEST(RulesetSynth, OverlapFractionHonorsProfile) {
  RulesetProfile lo = RulesetProfile::acl(400, 5);
  lo.overlap_fraction = 0.0;
  RulesetProfile hi = lo;
  hi.overlap_fraction = 0.6;
  const double f_lo = measured_overlap_fraction(synthesize(lo), 300);
  const double f_hi = measured_overlap_fraction(synthesize(hi), 300);
  // Injected specializations guarantee at least roughly the requested
  // overlap (pool nesting adds a natural floor on top).
  EXPECT_GE(f_hi, 0.5);
  EXPECT_GE(f_hi, f_lo);
}

TEST(RulesetSynth, RulesOverlapSemantics) {
  ruleset::Rule a, b;
  a.src_ip = ruleset::IpPrefix::make(0x0A000000, 8);
  b.src_ip = ruleset::IpPrefix::make(0x0A010000, 16);  // nested in a
  EXPECT_TRUE(rules_overlap(a, b));
  b.src_ip = ruleset::IpPrefix::make(0x0B000000, 8);  // disjoint
  EXPECT_FALSE(rules_overlap(a, b));
  b.src_ip = a.src_ip;
  a.dst_port = ruleset::PortRange::make(10, 20);
  b.dst_port = ruleset::PortRange::make(21, 30);  // disjoint ports
  EXPECT_FALSE(rules_overlap(a, b));
  b.dst_port = ruleset::PortRange::make(20, 25);  // touching
  EXPECT_TRUE(rules_overlap(a, b));
  a.proto = ruleset::ProtoMatch::exact(6);
  b.proto = ruleset::ProtoMatch::exact(17);
  EXPECT_FALSE(rules_overlap(a, b));
}

// ---- traces ---------------------------------------------------------------

TEST(TraceSynth, DeterministicBytesForSameSeed) {
  const ruleset::RuleSet rs = small_acl();
  const TraceProfile tp = TraceProfile::standard(2000, 77);
  const net::Trace a = TraceSynthesizer(rs, tp).generate();
  const net::Trace b = TraceSynthesizer(rs, tp).generate();
  EXPECT_EQ(binio::trace_bytes(a), binio::trace_bytes(b));
  TraceProfile tp2 = tp;
  tp2.seed = 78;
  const net::Trace c = TraceSynthesizer(rs, tp2).generate();
  EXPECT_NE(binio::trace_bytes(a), binio::trace_bytes(c));
}

TEST(TraceSynth, ZipfHeadDominates) {
  const ruleset::RuleSet rs = small_acl();
  TraceProfile tp = TraceProfile::zipf_heavy(8000, 5);
  const net::Trace t = TraceSynthesizer(rs, tp).generate();
  ASSERT_EQ(t.size(), 8000u);
  // Count distinct headers; heavy-head Zipf + bursts means the most
  // popular flow carries far more than a uniform share.
  std::map<net::FiveTuple, usize> freq;
  for (const auto& e : t) ++freq[e.header];
  usize top = 0;
  for (const auto& [h, n] : freq) top = std::max(top, n);
  EXPECT_GT(top, t.size() / tp.flows * 4);
}

TEST(TraceSynth, DerivedEntriesMatchOriginRule) {
  const ruleset::RuleSet rs = small_acl();
  const net::Trace t =
      TraceSynthesizer(rs, TraceProfile::standard(1500, 13)).generate();
  usize derived = 0;
  for (const auto& e : t) {
    if (!e.origin_rule) continue;
    ++derived;
    const auto rule = rs.find(*e.origin_rule);
    ASSERT_TRUE(rule.has_value());
    EXPECT_TRUE(rule->matches(e.header));
  }
  EXPECT_GT(derived, t.size() / 2);  // miss fraction is small
}

TEST(TraceSynth, CacheThrashMaximizesRepeatDistance) {
  const ruleset::RuleSet rs = small_acl();
  const net::Trace t = make_cache_thrash_trace(rs, 1000, 250, 21);
  ASSERT_EQ(t.size(), 1000u);
  // Round-robin: entry i repeats exactly every 250 packets.
  for (usize i = 0; i + 250 < t.size(); i += 97) {
    EXPECT_EQ(t[i].header, t[i + 250].header);
    EXPECT_NE(t[i].header, t[i + 1].header);
  }
}

TEST(TraceSynth, TrieDepthTargetsLongestPrefixes) {
  const ruleset::RuleSet rs = small_acl();
  unsigned max_len = 0;
  for (const auto& r : rs) {
    max_len = std::max<unsigned>(max_len,
                                 r.src_ip.length + r.dst_ip.length);
  }
  const net::Trace t = make_trie_depth_trace(rs, 500, 9);
  // Every derived entry originates from a maximally-long-prefix rule
  // cohort (within the top-1/16 of the set by combined length).
  for (const auto& e : t) {
    if (!e.origin_rule) continue;
    const auto rule = rs.find(*e.origin_rule);
    ASSERT_TRUE(rule.has_value());
    EXPECT_GE(rule->src_ip.length + rule->dst_ip.length, max_len / 2);
  }
}

TEST(TraceSynth, UpdateStormSchedulesBalancedPairs) {
  const ruleset::RuleSet rs = small_acl();
  const UpdateStorm storm = make_update_storm(rs, 400, 60'000, 17);
  EXPECT_EQ(storm.schedule.size(), 400u);
  EXPECT_EQ(storm.add_count, 200u);
  EXPECT_EQ(storm.delete_count, 200u);
  // Adds and deletes alternate so the installed churn set stays <= 1.
  for (usize i = 0; i < storm.schedule.size(); ++i) {
    const auto* fm = std::get_if<sdn::FlowMod>(&storm.schedule[i]);
    ASSERT_NE(fm, nullptr);
    EXPECT_EQ(fm->command, i % 2 == 0 ? sdn::FlowMod::Command::kAdd
                                      : sdn::FlowMod::Command::kDelete);
    EXPECT_GE(fm->cookie.value, 60'000u);
    EXPECT_LT(fm->cookie.value, 65'536u);
  }
  EXPECT_THROW(make_update_storm(rs, 10, 65'400, 1), ConfigError);
}

// ---- binary I/O -----------------------------------------------------------

TEST(BinIo, RulesetRoundTripsExactly) {
  const ruleset::RuleSet rs = synthesize(RulesetProfile::ipc(250, 31));
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  binio::save_ruleset(ss, rs);
  const ruleset::RuleSet back = binio::load_ruleset(ss);
  ASSERT_EQ(back.size(), rs.size());
  EXPECT_EQ(back.name(), rs.name());
  for (usize i = 0; i < rs.size(); ++i) {
    EXPECT_TRUE(rs[i].same_match(back[i]));
    EXPECT_EQ(rs[i].priority, back[i].priority);
    EXPECT_EQ(rs[i].id, back[i].id);
    EXPECT_EQ(rs[i].action, back[i].action);
  }
  // Byte-identity through a second round trip.
  EXPECT_EQ(binio::ruleset_bytes(rs), binio::ruleset_bytes(back));
}

TEST(BinIo, TraceRoundTripsExactly) {
  const ruleset::RuleSet rs = small_acl();
  const net::Trace t =
      TraceSynthesizer(rs, TraceProfile::standard(800, 3)).generate();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  t.write_binary(ss);
  const net::Trace back = net::Trace::read_binary(ss);
  ASSERT_EQ(back.size(), t.size());
  for (usize i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i].header, back[i].header);
    EXPECT_EQ(t[i].origin_rule, back[i].origin_rule);
  }
  EXPECT_EQ(binio::trace_bytes(t), binio::trace_bytes(back));
}

TEST(BinIo, PreservesExplicitFrontPriorityAtAnyPosition) {
  // A priority-0 rule appended at a non-front position (the shape storm
  // churn rules have) must survive the round trip verbatim — the loader
  // may not let RuleSet::add()'s position-based back-fill rewrite it.
  ruleset::RuleSet rs("front-prio");
  ruleset::Rule a;
  a.src_ip = ruleset::IpPrefix::make(0x0A000000, 8);
  a.priority = 5;
  a.id = RuleId{1};
  rs.add_verbatim(a);
  ruleset::Rule front;
  front.src_ip = ruleset::IpPrefix::make(0x0A010000, 16);
  front.priority = 0;  // explicit front priority, non-front position
  front.id = RuleId{2};
  rs.add_verbatim(front);

  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  binio::save_ruleset(ss, rs);
  const ruleset::RuleSet back = binio::load_ruleset(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[1].priority, 0u);
  EXPECT_EQ(back[1].id, RuleId{2});
}

TEST(BinIo, RejectsBadMagicAndTruncation) {
  std::stringstream bad("nonsense bytes here");
  EXPECT_THROW((void)binio::load_ruleset(bad), ParseError);
  std::stringstream bad2("XXXX");
  EXPECT_THROW((void)net::Trace::read_binary(bad2), ParseError);
  // Truncate a valid stream mid-payload.
  const ruleset::RuleSet rs = small_acl(64, 2);
  const std::string bytes = binio::ruleset_bytes(rs);
  std::stringstream cut(bytes.substr(0, bytes.size() / 2),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW((void)binio::load_ruleset(cut), ParseError);
}

// ---- JSON writer ----------------------------------------------------------

TEST(JsonWriter, EscapesAndNests) {
  std::ostringstream os;
  JsonWriter j(os);
  j.begin_object();
  j.key("s").value("a\"b\\c\nd");
  j.key("n").value(u64{42});
  j.key("f").value(0.5);
  j.key("arr").begin_array().value(true).value(false).end_array();
  j.end_object();
  EXPECT_TRUE(j.complete());
  EXPECT_EQ(os.str(),
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"n\":42,\"f\":0.5,"
            "\"arr\":[true,false]}");
}

TEST(JsonWriter, MisuseThrows) {
  std::ostringstream os;
  JsonWriter j(os);
  j.begin_object();
  EXPECT_THROW(j.value("no key"), InternalError);
  EXPECT_THROW(j.end_array(), InternalError);
}

// ---- scenarios ------------------------------------------------------------

TEST(Scenario, CatalogHasRequiredEntries) {
  const auto& cat = ScenarioRunner::catalog();
  EXPECT_GE(cat.size(), 6u);
  for (const char* required :
       {"acl-like", "fw-like", "ipc-like", "zipf-locality", "cache-thrash",
        "update-storm", "update-storm-multi"}) {
    EXPECT_TRUE(std::any_of(cat.begin(), cat.end(),
                            [&](const ScenarioSpec& s) {
                              return s.name == required;
                            }))
        << required;
  }
  ScenarioRunner runner({.workers = 1, .scale = 0.05});
  EXPECT_THROW((void)runner.run("nope"), ConfigError);
}

TEST(Scenario, SmokeRunOracleClean) {
  // Tiny scale keeps this test fast while still exercising the whole
  // engine + oracle path for a representative subset.
  ScenarioRunner runner({.workers = 2, .scale = 0.04, .seed = 5});
  for (const char* name : {"acl-like", "cache-thrash", "update-storm"}) {
    const ScenarioResult r = runner.run(name);
    EXPECT_TRUE(r.ok()) << name << ": " << r.error << " (mismatches "
                        << r.oracle_mismatches << ")";
    EXPECT_GT(r.packets_processed, 0u) << name;
    EXPECT_GT(r.oracle_checked, 0u) << name;
    EXPECT_EQ(r.oracle_mismatches, 0u) << name;
    if (std::string(name) == "update-storm") {
      EXPECT_GT(r.updates_applied, 0u);
    }
  }
}

TEST(Scenario, MultiWriterStormOracleCleanUnderContention) {
  ScenarioRunner runner({.workers = 2, .scale = 0.04, .seed = 11});
  const ScenarioResult r = runner.run("update-storm-multi");
  EXPECT_TRUE(r.ok()) << r.error << " (mismatches " << r.oracle_mismatches
                      << ")";
  EXPECT_GT(r.updates_applied, 0u);
  EXPECT_GT(r.packets_processed, 0u);
  EXPECT_EQ(r.oracle_mismatches, 0u);
  // 4 writers x >= 256 paced messages each actually went through.
  EXPECT_GE(r.updates_applied, 1024u);
  // The swap churn forced the workers' persistent memos to rebind many
  // times mid-trace (each publish rotates the replica under them).
  EXPECT_GT(r.probe_memo_invalidations, 2u);
}

TEST(Scenario, RunManyParallelMatchesSequentialOrder) {
  const std::vector<std::string> names = {"acl-like", "cache-thrash",
                                          "zipf-locality"};
  ScenarioRunner seq({.workers = 1, .scale = 0.04, .seed = 7,
                      .parallel = 1});
  ScenarioRunner par({.workers = 1, .scale = 0.04, .seed = 7,
                      .parallel = 3});
  const auto a = seq.run_many(names);
  const auto b = par.run_many(names);
  ASSERT_EQ(a.size(), names.size());
  ASSERT_EQ(b.size(), names.size());
  for (usize i = 0; i < names.size(); ++i) {
    // Report order follows the request list regardless of completion
    // order, and the deterministic (non-wall-clock) outputs agree.
    EXPECT_EQ(a[i].name, names[i]);
    EXPECT_EQ(b[i].name, names[i]);
    EXPECT_TRUE(a[i].ok()) << a[i].error;
    EXPECT_TRUE(b[i].ok()) << b[i].error;
    EXPECT_EQ(a[i].rules, b[i].rules);
    EXPECT_EQ(a[i].trace_packets, b[i].trace_packets);
    EXPECT_EQ(a[i].oracle_checked, b[i].oracle_checked);
    EXPECT_EQ(a[i].packets_processed, b[i].packets_processed);
    EXPECT_EQ(a[i].matched, b[i].matched);
  }
  EXPECT_THROW((void)par.run_many({"acl-like", "nope"}), ConfigError);
}

TEST(Scenario, WorkerBudgetCapsConcurrentEngineWorkers) {
  // 4 scenarios x 2 workers each on a 4-thread pool would hold 8 engine
  // worker threads at once; a --max-workers 3 budget must keep the
  // high-water mark of concurrently-granted workers at <= 3, while every
  // scenario still runs (engines block in acquire() until slots free).
  const std::vector<std::string> names = {"acl-like", "cache-thrash",
                                          "zipf-locality", "fw-like"};
  ScenarioRunner runner({.workers = 2, .scale = 0.04, .seed = 7,
                         .parallel = 4, .max_workers = 3});
  EXPECT_EQ(runner.budget().capacity(), 3u);
  const auto results = runner.run_many(names);
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok()) << r.name << ": " << r.error;
    EXPECT_GT(r.packets_processed, 0u) << r.name;
  }
  EXPECT_GT(runner.budget().peak_in_use(), 0u);
  EXPECT_LE(runner.budget().peak_in_use(), 3u);
  EXPECT_EQ(runner.budget().in_use(), 0u);  // every grant returned
}

TEST(Scenario, CappedParallelReportsByteIdenticalToSequential) {
  // Under a pinned path (no host-timing-dependent controller choices)
  // and one worker per scenario (deterministic pool partitioning), a
  // budget-capped parallel run must reproduce the sequential run's
  // report byte for byte once the wall-clock-only fields are zeroed.
  const std::vector<std::string> names = {"acl-like", "fw-like",
                                          "zipf-locality", "cache-thrash"};
  const ScenarioOptions base{.workers = 1, .scale = 0.04, .seed = 13,
                             .path_policy = core::PathPolicy::kForcePhase2,
                             .max_workers = 2};
  ScenarioOptions seq_opts = base;
  seq_opts.parallel = 1;
  ScenarioOptions par_opts = base;
  par_opts.parallel = 4;
  ScenarioRunner seq(seq_opts);
  ScenarioRunner par(par_opts);
  auto a = seq.run_many(names);
  auto b = par.run_many(names);
  EXPECT_LE(par.budget().peak_in_use(), 2u);
  auto strip_wall_clock = [](std::vector<ScenarioResult>& rs) {
    for (auto& r : rs) {
      r.wall_seconds = 0;
      r.mpps = 0;
      r.updates_per_sec = 0;
    }
  };
  strip_wall_clock(a);
  strip_wall_clock(b);
  std::ostringstream ja, jb;
  // Same options header for both legs: the comparison is about the
  // measured scenarios, not the parallelism knob that produced them.
  write_json_report(ja, seq_opts, a);
  write_json_report(jb, seq_opts, b);
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(Scenario, RunManyAutoPoolDerivesFromBudget) {
  // The old auto-size was a magic clamp to [1, 4] regardless of
  // --workers; it now derives from the budget, so a cap equal to one
  // scenario's width serializes the catalog (pool = 1) without any
  // second knob. Observable: peak concurrent workers == the cap even
  // with parallel=0 (auto) and multiple scenarios.
  ScenarioRunner runner({.workers = 2, .scale = 0.04, .seed = 9,
                         .parallel = 0, .max_workers = 2});
  const auto results = runner.run_many({"acl-like", "cache-thrash"});
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok()) << r.name << ": " << r.error;
  }
  EXPECT_LE(runner.budget().peak_in_use(), 2u);
}

TEST(Scenario, CacheThrashDefeatsCacheAndZipfFeedsIt) {
  ScenarioRunner runner({.workers = 1, .scale = 0.04, .seed = 8});
  const ScenarioResult thrash = runner.run("cache-thrash");
  const ScenarioResult zipf = runner.run("zipf-locality");
  ASSERT_TRUE(thrash.ok()) << thrash.error;
  ASSERT_TRUE(zipf.ok()) << zipf.error;
  EXPECT_LT(thrash.cache_hit_rate, 0.05);
  EXPECT_GT(zipf.cache_hit_rate, 0.5);
  // Per-worker recorder plumbing delivers the access totals.
  EXPECT_GT(thrash.memory_accesses, 0u);
}

TEST(Scenario, JsonReportIsWellFormedish) {
  ScenarioRunner runner({.workers = 1, .scale = 0.04, .seed = 2});
  std::vector<ScenarioResult> results = {runner.run("acl-like")};
  std::ostringstream os;
  write_json_report(os, runner.options(), results);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"schema\":\"pclass-scenarios-v1\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"acl-like\""), std::string::npos);
  EXPECT_NE(s.find("\"all_ok\":true"), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity).
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
            std::count(s.begin(), s.end(), '}'));
  EXPECT_EQ(std::count(s.begin(), s.end(), '['),
            std::count(s.begin(), s.end(), ']'));
}
