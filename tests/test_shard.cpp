/// Tests for the RSS-style sharded runtime: steering determinism and
/// uniformity, the priority-preserving rule partition, partition-mode
/// verdict identity with the unsharded engine (combiner tie-breaks
/// exactly like LinearSearch), and the replica-mode sum-of-shards ==
/// engine-totals invariant — including geometries where the shard count
/// exceeds the worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "baseline/linear_search.hpp"
#include "common/error.hpp"
#include "dataplane/engine.hpp"
#include "dataplane/flow_steer.hpp"
#include "ruleset/generator.hpp"
#include "ruleset/trace_gen.hpp"
#include "workload/scenario.hpp"

using namespace pclass;
using namespace pclass::dataplane;

namespace {

core::ClassifierConfig exact_config(usize scale) {
  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(scale);
  cfg.combine_mode = core::CombineMode::kCrossProduct;
  return cfg;
}

net::FiveTuple tuple_of(u32 a, u32 b, u16 sp, u16 dp, u8 proto) {
  net::FiveTuple t;
  t.src_ip = a;
  t.dst_ip = b;
  t.src_port = sp;
  t.dst_port = dp;
  t.protocol = proto;
  return t;
}

/// Drain \p pool through an unsharded single-worker engine with verdict
/// capture: the returned stream is in exact input order.
std::vector<CapturedVerdict> run_captured(const RuleProgramPublisher& programs,
                                          TrafficPool& pool) {
  Engine engine({.workers = 1,
                 .batch_size = 32,
                 .telemetry = false,
                 .capture_verdicts = true},
                programs);
  const EngineReport rep = engine.run(pool);
  EXPECT_EQ(rep.captured.size(), 1u);
  return rep.captured.empty() ? std::vector<CapturedVerdict>{}
                              : rep.captured[0];
}

}  // namespace

// ---- steering hash --------------------------------------------------------

TEST(FlowSteer, SameTupleAlwaysSameShard) {
  Rng rng(7);
  for (usize nshards : {1u, 2u, 3u, 4u, 7u, 16u}) {
    for (int i = 0; i < 500; ++i) {
      const net::FiveTuple t =
          tuple_of(static_cast<u32>(rng.next()), static_cast<u32>(rng.next()),
                   static_cast<u16>(rng.next()),
                   static_cast<u16>(rng.next()),
                   rng.next() % 2 == 0 ? net::kProtoTcp : net::kProtoUdp);
      const usize s = shard_of(t, nshards);
      EXPECT_LT(s, nshards);
      EXPECT_EQ(s, shard_of(t, nshards));  // deterministic
    }
  }
}

TEST(FlowSteer, SymmetricHashSteersBothDirectionsTogether) {
  Rng rng(13);
  usize differed_asymmetric = 0;
  for (int i = 0; i < 400; ++i) {
    const net::FiveTuple fwd =
        tuple_of(static_cast<u32>(rng.next()), static_cast<u32>(rng.next()),
                 static_cast<u16>(rng.next()),
                 static_cast<u16>(rng.next()), net::kProtoTcp);
    net::FiveTuple rev = fwd;
    std::swap(rev.src_ip, rev.dst_ip);
    std::swap(rev.src_port, rev.dst_port);
    EXPECT_EQ(shard_of(fwd, 8, /*symmetric=*/true),
              shard_of(rev, 8, /*symmetric=*/true));
    if (shard_of(fwd, 8) != shard_of(rev, 8)) ++differed_asymmetric;
  }
  // The plain hash must NOT be accidentally symmetric (that would hide
  // a broken canonicalization path): most reversed flows land elsewhere.
  EXPECT_GT(differed_asymmetric, 200u);
}

TEST(FlowSteer, ShardHistogramRoughlyUniformOverFlows) {
  // Steering is per-flow, so uniformity is a property of distinct
  // tuples (packet counts follow flow popularity, which may be skewed).
  Rng rng(2026);
  constexpr usize kShards = 4;
  constexpr usize kFlows = 8000;
  std::array<usize, kShards> hist{};
  for (usize i = 0; i < kFlows; ++i) {
    const net::FiveTuple t =
        tuple_of(static_cast<u32>(rng.next()), static_cast<u32>(rng.next()),
                 static_cast<u16>(rng.next()),
                 static_cast<u16>(rng.next()), net::kProtoTcp);
    ++hist[shard_of(t, kShards)];
  }
  // Expected 2000 per shard; a mix64 avalanche keeps every bucket well
  // within +/- 20% at this sample size.
  for (usize s = 0; s < kShards; ++s) {
    EXPECT_GT(hist[s], kFlows / kShards * 8 / 10) << "shard " << s;
    EXPECT_LT(hist[s], kFlows / kShards * 12 / 10) << "shard " << s;
  }
}

TEST(FlowSteer, SteerSplitPreservesEveryEntryOnItsHashedShard) {
  auto rules = ruleset::make_classbench_like(ruleset::FilterType::kAcl, 1000);
  ruleset::TraceGenerator tg(rules, {.headers = 3000, .seed = 9});
  const net::Trace trace = tg.generate();
  TrafficPool pool = TrafficPool::from_trace(trace, /*materialize=*/false);

  const std::vector<TrafficPool> parts = steer_split(pool, 4);
  ASSERT_EQ(parts.size(), 4u);
  usize total = 0;
  for (usize s = 0; s < parts.size(); ++s) {
    total += parts[s].size();
    for (const net::FiveTuple& t : parts[s].tuples()) {
      EXPECT_EQ(shard_of(t, 4), s);
    }
  }
  EXPECT_EQ(total, trace.size());
  EXPECT_THROW((void)steer_split(pool, 0), ConfigError);
}

// ---- rule partition -------------------------------------------------------

TEST(PartitionRules, DisjointVerbatimUnionEqualsInput) {
  auto rules = ruleset::make_classbench_like(ruleset::FilterType::kFw, 1000);
  const std::vector<ruleset::RuleSet> parts = partition_rules(rules, 3);
  ASSERT_EQ(parts.size(), 3u);

  std::map<u32, std::pair<usize, Priority>> seen;  // id -> (count, prio)
  usize total = 0;
  for (const ruleset::RuleSet& part : parts) {
    total += part.size();
    for (const ruleset::Rule& r : part) {
      auto [it, inserted] = seen.emplace(r.id.value,
                                         std::make_pair(usize{1}, r.priority));
      if (!inserted) ++it->second.first;
    }
  }
  EXPECT_EQ(total, rules.size());
  EXPECT_EQ(seen.size(), rules.size());  // disjoint: no id twice
  for (const ruleset::Rule& r : rules) {
    const auto it = seen.find(r.id.value);
    ASSERT_NE(it, seen.end()) << "rule " << r.id.value << " lost";
    EXPECT_EQ(it->second.first, 1u);
    EXPECT_EQ(it->second.second, r.priority);  // priorities untouched
  }
  // Round-robin deal: shard sizes differ by at most one.
  const usize lo = std::min({parts[0].size(), parts[1].size(),
                             parts[2].size()});
  const usize hi = std::max({parts[0].size(), parts[1].size(),
                             parts[2].size()});
  EXPECT_LE(hi - lo, 1u);
  EXPECT_THROW((void)partition_rules(rules, 0), ConfigError);
}

// ---- partition-mode engine ------------------------------------------------

TEST(PartitionEngine, VerdictsIdenticalToUnsharded) {
  auto rules = ruleset::make_classbench_like(ruleset::FilterType::kAcl, 1000);
  ruleset::TraceGenerator tg(rules, {.headers = 2500, .seed = 31});
  const net::Trace trace = tg.generate();

  RuleProgramPublisher whole(exact_config(rules.size()));
  whole.install_ruleset(rules);
  TrafficPool pool = TrafficPool::from_trace(trace, /*materialize=*/false);
  const std::vector<CapturedVerdict> want = run_captured(whole, pool);
  ASSERT_EQ(want.size(), trace.size());

  constexpr usize kShards = 3;
  const std::vector<ruleset::RuleSet> parts = partition_rules(rules, kShards);
  std::vector<std::unique_ptr<RuleProgramPublisher>> pubs;
  std::vector<const RuleProgramPublisher*> ptrs;
  for (const ruleset::RuleSet& part : parts) {
    pubs.push_back(
        std::make_unique<RuleProgramPublisher>(exact_config(rules.size())));
    pubs.back()->install_ruleset(part);
    ptrs.push_back(pubs.back().get());
  }
  TrafficPool pool2 = TrafficPool::from_trace(trace, /*materialize=*/false);
  Engine engine({.workers = kShards,
                 .batch_size = 32,
                 .telemetry = false,
                 .shards = kShards,
                 .shard_mode = ShardMode::kPartition},
                ptrs);
  const EngineReport rep = engine.run(pool2);

  ASSERT_TRUE(rep.first_error().empty()) << rep.first_error();
  ASSERT_EQ(rep.combined.size(), want.size());
  ASSERT_EQ(rep.workers.size(), 1u);  // one combined, double-count-free row
  ASSERT_EQ(rep.shards.size(), kShards);
  for (usize i = 0; i < want.size(); ++i) {
    EXPECT_EQ(rep.combined[i].matched, want[i].matched) << "packet " << i;
    if (want[i].matched) {
      EXPECT_EQ(rep.combined[i].rule, want[i].rule) << "packet " << i;
      EXPECT_EQ(rep.combined[i].priority, want[i].priority) << "packet " << i;
      EXPECT_EQ(rep.combined[i].action_token, want[i].action_token)
          << "packet " << i;
    }
  }
  EXPECT_EQ(rep.workers[0].packets, trace.size());
  // Every shard classified the whole stream.
  for (const WorkerReport& s : rep.shards) {
    EXPECT_EQ(s.packets, trace.size());
  }
}

TEST(PartitionEngine, CombinerTieBreaksLikeLinearSearch) {
  // Two rules with EQUAL priority both matching the same header, dealt
  // onto different shards by the round-robin split. LinearSearch's
  // stable order resolves the tie to the lower rule id; the combiner
  // must do exactly the same across shards.
  ruleset::RuleSet rules("tie");
  for (u32 i = 0; i < 4; ++i) {
    ruleset::Rule r;
    r.src_ip = ruleset::IpPrefix::make(0x0A000000u, i < 2 ? 8 : 16);
    r.priority = 5;  // all tied
    r.id = RuleId{10 + i};
    r.action = ruleset::Action{sdn::ActionSpec::output(1).encode()};
    rules.add_verbatim(r);
  }
  const net::FiveTuple probe =
      tuple_of(0x0A000001u, 0x01020304u, 1, 2, net::kProtoTcp);

  const baseline::LinearSearch oracle(rules);
  const ruleset::Rule* want = oracle.classify(probe, nullptr);
  ASSERT_NE(want, nullptr);
  EXPECT_EQ(want->id.value, 10u);  // stable: first added among the tie

  const std::vector<ruleset::RuleSet> parts = partition_rules(rules, 2);
  std::vector<std::unique_ptr<RuleProgramPublisher>> pubs;
  std::vector<const RuleProgramPublisher*> ptrs;
  for (const ruleset::RuleSet& part : parts) {
    pubs.push_back(std::make_unique<RuleProgramPublisher>(exact_config(64)));
    pubs.back()->install_ruleset(part);
    ptrs.push_back(pubs.back().get());
  }
  TrafficPool pool;
  for (int i = 0; i < 8; ++i) pool.add(probe);
  Engine engine({.workers = 2,
                 .batch_size = 4,
                 .telemetry = false,
                 .shards = 2,
                 .shard_mode = ShardMode::kPartition},
                ptrs);
  const EngineReport rep = engine.run(pool);
  ASSERT_EQ(rep.combined.size(), 8u);
  for (const CapturedVerdict& cv : rep.combined) {
    ASSERT_TRUE(cv.matched);
    EXPECT_EQ(cv.rule, want->id);
    EXPECT_EQ(cv.priority, want->priority);
  }
}

TEST(PartitionEngine, ConstructorGeometryValidation) {
  RuleProgramPublisher one(exact_config(64));
  // Partition through the single-publisher constructor: rejected (the
  // shards would all see the full set — silently wrong verdict math).
  EXPECT_THROW(Engine({.shards = 2, .shard_mode = ShardMode::kPartition},
                      one),
               ConfigError);
  // Multi-publisher constructor demands partition geometry...
  EXPECT_THROW(Engine({.shards = 0},
                      std::vector<const RuleProgramPublisher*>{&one}),
               ConfigError);
  // ...and exactly one publisher per shard.
  EXPECT_THROW(Engine({.shards = 2, .shard_mode = ShardMode::kPartition},
                      std::vector<const RuleProgramPublisher*>{&one}),
               ConfigError);
  // Partition is finite-only: loop mode is rejected at start().
  RuleProgramPublisher other(exact_config(64));
  Engine loopy({.loop = true,
                .shards = 2,
                .shard_mode = ShardMode::kPartition},
               std::vector<const RuleProgramPublisher*>{&one, &other});
  TrafficPool pool;
  pool.add(tuple_of(1, 2, 3, 4, net::kProtoTcp));
  EXPECT_THROW(loopy.start(pool), ConfigError);
}

// ---- replica-mode engine --------------------------------------------------

TEST(ReplicaEngine, SumOfShardsEqualsEngineTotals) {
  auto rules = ruleset::make_classbench_like(ruleset::FilterType::kAcl, 1000);
  ruleset::TraceGenerator tg(rules, {.headers = 4000, .seed = 17});
  const net::Trace trace = tg.generate();
  RuleProgramPublisher programs(exact_config(rules.size()));
  programs.install_ruleset(rules);

  // Unsharded reference for the verdict totals.
  baseline::LinearSearch oracle(rules);
  usize want_matched = 0;
  for (const auto& e : trace) {
    if (oracle.classify(e.header, nullptr) != nullptr) ++want_matched;
  }

  // Deliberately more shards than workers: shard 3 rides on thread 0.
  TrafficPool pool = TrafficPool::from_trace(trace, /*materialize=*/false);
  Engine engine({.workers = 3,
                 .batch_size = 32,
                 .flow_cache_depth = 256,
                 .shards = 4,
                 .shard_mode = ShardMode::kReplica},
                programs);
  const EngineReport rep = engine.run(pool);

  ASSERT_TRUE(rep.first_error().empty()) << rep.first_error();
  ASSERT_EQ(rep.workers.size(), 3u);  // per-thread merged rows
  ASSERT_EQ(rep.shards.size(), 4u);   // raw per-shard rows
  EXPECT_EQ(rep.packets(), trace.size());
  EXPECT_EQ(rep.matched(), want_matched);

  u64 sp = 0, sm = 0, sb = 0, sl = 0, sc = 0, sd = 0;
  u64 wp = 0, wm = 0, wb = 0, wl = 0, wc = 0, wd = 0;
  for (const WorkerReport& s : rep.shards) {
    sp += s.packets;
    sm += s.matched;
    sb += s.batches;
    sl += s.classifier_lookups;
    sc += s.cache_hits;
    sd += s.dropped;
  }
  for (const WorkerReport& w : rep.workers) {
    wp += w.packets;
    wm += w.matched;
    wb += w.batches;
    wl += w.classifier_lookups;
    wc += w.cache_hits;
    wd += w.dropped;
  }
  EXPECT_EQ(sp, wp);
  EXPECT_EQ(sm, wm);
  EXPECT_EQ(sb, wb);
  EXPECT_EQ(sl, wl);
  EXPECT_EQ(sc, wc);
  EXPECT_EQ(sd, wd);
  EXPECT_EQ(sp, trace.size());

  // The steering invariant end-to-end: merged latency count == packets.
  EXPECT_EQ(rep.merged_latency().count(), trace.size());
}

TEST(ReplicaEngine, CaptureStreamsHonorSteering) {
  auto rules = ruleset::make_classbench_like(ruleset::FilterType::kAcl, 1000);
  ruleset::TraceGenerator tg(rules, {.headers = 1500, .seed = 23});
  const net::Trace trace = tg.generate();
  RuleProgramPublisher programs(exact_config(rules.size()));
  programs.install_ruleset(rules);

  TrafficPool pool = TrafficPool::from_trace(trace, /*materialize=*/false);
  Engine engine({.workers = 2,
                 .batch_size = 16,
                 .telemetry = false,
                 .shards = 4,
                 .shard_mode = ShardMode::kReplica,
                 .capture_verdicts = true},
                programs);
  const EngineReport rep = engine.run(pool);
  ASSERT_EQ(rep.captured.size(), 4u);
  usize total = 0;
  for (usize s = 0; s < rep.captured.size(); ++s) {
    total += rep.captured[s].size();
    for (const CapturedVerdict& cv : rep.captured[s]) {
      EXPECT_EQ(shard_of(cv.tuple, 4), s);
    }
  }
  EXPECT_EQ(total, trace.size());
}

// ---- ScenarioRunner geometry ----------------------------------------------

TEST(ScenarioShards, ReplicaScenarioKeepsSumOfShardsInvariant) {
  workload::ScenarioOptions opts;
  opts.workers = 2;
  opts.scale = 0.05;
  opts.shards = 3;  // != workers on purpose
  opts.shard_mode = ShardMode::kReplica;
  workload::ScenarioRunner runner(opts);
  const workload::ScenarioResult r = runner.run("acl-like");
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.shard_reports.size(), 3u);
  u64 sp = 0, sm = 0;
  for (const WorkerReport& s : r.shard_reports) {
    sp += s.packets;
    sm += s.matched;
  }
  EXPECT_EQ(sp, r.packets_processed);  // nothing double-counted
  EXPECT_EQ(sm, r.matched);
  EXPECT_EQ(r.oracle_mismatches, 0u);
}

TEST(ScenarioShards, PartitionScenarioVerdictIdentical) {
  workload::ScenarioOptions base;
  base.workers = 2;
  base.scale = 0.05;
  workload::ScenarioRunner plain(base);
  const workload::ScenarioResult want = plain.run("fw-like");
  ASSERT_TRUE(want.ok()) << want.error;

  workload::ScenarioOptions opts = base;
  opts.shards = 4;
  opts.shard_mode = ShardMode::kPartition;
  workload::ScenarioRunner runner(opts);
  const workload::ScenarioResult r = runner.run("fw-like");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.oracle_mismatches, 0u);
  EXPECT_EQ(r.packets_processed, want.packets_processed);
  EXPECT_EQ(r.matched, want.matched);  // verdict-identical by construction
  ASSERT_EQ(r.shard_reports.size(), 4u);
}
