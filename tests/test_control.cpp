/// Tests for the live introspection plane (PR 7): control-protocol
/// parsing, the line/DATA response framing over a real loopback socket,
/// robustness against partial/oversized/malformed requests and
/// concurrent clients, the scripted socket-driven update sequence with
/// per-commit oracle checks and socket-to-dataplane visibility
/// latency, streaming subscriptions (decimation, terminal records,
/// disconnect mid-stream), the drain/reconcile moment, graceful
/// shutdown with an injected worker fault, the fault plane's
/// control-connection drop (a clean close, recoverable by reconnect),
/// and a drain racing an injected worker stall (must cut the stall
/// short and reconcile, not hang).
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "control/control_plane.hpp"
#include "control/protocol.hpp"
#include "control/server.hpp"
#include "dataplane/engine.hpp"
#include "fault/fault.hpp"

using namespace pclass;
using control::ControlPlane;
using control::ControlServer;
using control::HandlerResult;

namespace {

// ---- protocol units --------------------------------------------------------

TEST(ControlProtocol, TokenizeSplitsOnWhitespaceAndStripsCr) {
  const auto t = control::tokenize("  read   stats \t extra \r");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "read");
  EXPECT_EQ(t[1], "stats");
  EXPECT_EQ(t[2], "extra");
  EXPECT_TRUE(control::tokenize("").empty());
  EXPECT_TRUE(control::tokenize(" \t \r").empty());
}

TEST(ControlProtocol, ParsesFieldGrammars) {
  const auto p = control::parse_ip_prefix("10.1.2.0/24");
  EXPECT_EQ(p.length, 24);
  EXPECT_TRUE(control::parse_ip_prefix("*").matches(0x12345678u));
  EXPECT_THROW(control::parse_ip_prefix("10.1.2.0"), ParseError);
  EXPECT_THROW(control::parse_ip_prefix("10.1.299.0/24"), ParseError);
  EXPECT_THROW(control::parse_ip_prefix("10.1.2.0/33"), ParseError);

  const auto r = control::parse_port_range("80-443");
  EXPECT_EQ(r.lo, 80);
  EXPECT_EQ(r.hi, 443);
  EXPECT_EQ(control::parse_port_range("80").hi, 80);
  EXPECT_EQ(control::parse_port_range("*").lo, 0);
  EXPECT_THROW(control::parse_port_range("443-80"), ParseError);
  EXPECT_THROW(control::parse_port_range("99999"), ParseError);

  EXPECT_THROW(control::parse_proto("256"), ParseError);
  EXPECT_THROW(control::parse_action("teleport:3"), ParseError);
}

TEST(ControlProtocol, ParsesRuleCommands) {
  const std::vector<std::string> add = {"add", "7",   "10", "10.0.0.0/8",
                                        "*",   "*",   "80", "6",
                                        "out:3"};
  const auto msg = control::parse_rule_command(add);
  const auto& fm = std::get<sdn::FlowMod>(msg);
  EXPECT_EQ(fm.command, sdn::FlowMod::Command::kAdd);
  EXPECT_EQ(fm.cookie, RuleId{7});
  EXPECT_EQ(fm.match.priority, 10u);

  const std::vector<std::string> rm = {"remove", "7"};
  EXPECT_EQ(std::get<sdn::FlowMod>(control::parse_rule_command(rm)).command,
            sdn::FlowMod::Command::kDelete);

  const std::vector<std::string> bad_arity = {"add", "7", "10"};
  EXPECT_THROW(control::parse_rule_command(bad_arity), ParseError);
  const std::vector<std::string> bad_id = {"remove", "not-a-number"};
  EXPECT_THROW(control::parse_rule_command(bad_id), ParseError);
  const std::vector<std::string> bad_verb = {"upsert", "7"};
  EXPECT_THROW(control::parse_rule_command(bad_verb), ParseError);
}

TEST(ControlProtocol, ParsesSetCommands) {
  const std::vector<std::string> pp = {"path-policy", "scalar-loop"};
  const auto& cm = std::get<sdn::ConfigMod>(control::parse_set_command(pp));
  ASSERT_TRUE(cm.path_policy.has_value());
  EXPECT_EQ(*cm.path_policy, core::PathPolicy::kForceScalarLoop);

  const std::vector<std::string> mw = {"memo-ways", "2"};
  EXPECT_EQ(*std::get<sdn::ConfigMod>(control::parse_set_command(mw)).memo_ways,
            2u);

  const std::vector<std::string> alg = {"ip-alg", "rvh"};
  EXPECT_EQ(
      *std::get<sdn::ConfigMod>(control::parse_set_command(alg)).ip_algorithm,
      core::IpAlgorithm::kRvh);

  const std::vector<std::string> bad_knob = {"turbo", "on"};
  EXPECT_THROW(control::parse_set_command(bad_knob), ParseError);
  const std::vector<std::string> bad_value = {"batch-mode", "warp"};
  EXPECT_THROW(control::parse_set_command(bad_value), ParseError);
}

// ---- harness ---------------------------------------------------------------

ruleset::Rule probe_rule(u32 i) {
  ruleset::Rule r;
  r.src_ip = ruleset::IpPrefix::make(0x0A000000u | (i & 0xFFFFu), 32);
  r.id = RuleId{i};
  r.priority = i;
  r.action = ruleset::Action{sdn::ActionSpec::output(1).encode()};
  return r;
}

net::FiveTuple probe_tuple(u32 i) {
  net::FiveTuple t;
  t.src_ip = 0x0A000000u | (i & 0xFFFFu);
  t.dst_ip = 0x01020304u;
  t.protocol = net::kProtoTcp;
  return t;
}

sdn::Message add_msg(u32 i) {
  sdn::FlowMod fm;
  fm.command = sdn::FlowMod::Command::kAdd;
  fm.cookie = RuleId{i};
  fm.match = probe_rule(i);
  fm.action = sdn::ActionSpec::output(1);
  return fm;
}

core::ClassifierConfig harness_config() {
  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(1000);
  cfg.ip_algorithm = core::IpAlgorithm::kBst;
  cfg.combine_mode = core::CombineMode::kCrossProduct;  // exact: oracle-safe
  return cfg;
}

/// A full in-process daemon: loop-mode engine over a synthetic pool,
/// control plane, TCP server on an ephemeral loopback port.
struct ServeHarness {
  dataplane::RuleProgramPublisher programs;
  dataplane::TrafficPool pool;
  net::Trace trace;
  std::unique_ptr<dataplane::Engine> engine;
  std::unique_ptr<ControlPlane> cp;
  std::unique_ptr<ControlServer> server;
  std::atomic<bool> shutdown_requested{false};

  explicit ServeHarness(u64 stats_interval_ms = 5,
                        std::function<void(usize)> fault_hook = nullptr,
                        fault::FaultInjector* injector = nullptr,
                        dataplane::SupervisorConfig sup = {})
      : programs(harness_config()) {
    for (u32 i = 1; i <= 64; ++i) programs.apply(add_msg(i));
    for (u32 i = 0; i < 512; ++i) {
      const net::FiveTuple t = probe_tuple(i % 64 + 1);
      pool.add(t);
      trace.add({t, std::nullopt});
    }
    engine = std::make_unique<dataplane::Engine>(
        dataplane::EngineConfig{.workers = 2,
                                .batch_size = 16,
                                .loop = true,
                                .stats_interval_ms = stats_interval_ms,
                                .worker_fault_hook = std::move(fault_hook),
                                .fault_injector = injector,
                                .supervisor = sup},
        programs);
    engine->start(pool);
    ControlPlane::Options opts;
    opts.verify_trace = &trace;
    opts.request_shutdown = [this] { shutdown_requested.store(true); };
    cp = std::make_unique<ControlPlane>(*engine, programs, opts);
    control::ServerConfig scfg;
    if (injector != nullptr) {
      scfg.drop_request_hook = [injector](u64 idx) {
        return injector->should_drop_request(idx);
      };
    }
    server = std::make_unique<ControlServer>(scfg, &cp->registry(),
                                             cp->subscribe_hooks());
    server->start();
  }

  ~ServeHarness() {
    server->stop();
    cp->drain();
  }

  [[nodiscard]] u16 port() const { return server->port(); }
};

/// Minimal blocking line client for the wire protocol.
class TestClient {
 public:
  explicit TestClient(u16 port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    timeval tv{};
    tv.tv_sec = 10;  // no test should block forever on a protocol bug
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0)
        << "connect to 127.0.0.1:" << port;
  }
  ~TestClient() { close(); }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void send_raw(std::string_view text) {
    ASSERT_EQ(::send(fd_, text.data(), text.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(text.size()));
  }

  /// Next '\n'-terminated line (without the terminator); empty string on
  /// EOF/timeout.
  std::string read_line() {
    while (true) {
      const usize nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      char chunk[512];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return {};
      buf_.append(chunk, static_cast<usize>(n));
    }
  }

  std::string read_exact(usize nbytes) {
    while (buf_.size() < nbytes) {
      char chunk[512];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buf_.append(chunk, static_cast<usize>(n));
    }
    const usize take = std::min(nbytes, buf_.size());
    std::string out = buf_.substr(0, take);
    buf_.erase(0, take);
    return out;
  }

  struct Response {
    int code = 0;
    std::string message;
    std::string payload;
  };

  /// Send one request and parse status (+ DATA payload when present).
  Response request(const std::string& line) {
    send_raw(line + "\n");
    return read_response();
  }

  Response read_response() {
    Response r;
    const std::string status = read_line();
    const usize sp = status.find(' ');
    r.code = std::atoi(status.substr(0, sp).c_str());
    if (sp != std::string::npos) r.message = status.substr(sp + 1);
    if (r.code == control::kOk && expects_payload_) {
      const std::string frame = read_line();
      if (frame.starts_with("DATA ")) {
        r.payload = read_exact(
            static_cast<usize>(std::atoll(frame.substr(5).c_str())));
      }
    }
    return r;
  }

  /// `read` responses carry a DATA payload; everything else does not.
  Response read_request(const std::string& line) {
    expects_payload_ = true;
    Response r = request(line);
    expects_payload_ = false;
    return r;
  }

 private:
  int fd_ = -1;
  std::string buf_;
  bool expects_payload_ = false;
};

// ---- server framing & robustness ------------------------------------------

TEST(ControlServer, ReadHandlersServeFramedPayloads) {
  ServeHarness h;
  TestClient c(h.port());

  const auto version = c.read_request("read version");
  EXPECT_EQ(version.code, 200);
  EXPECT_NE(version.payload.find("\"git_sha\""), std::string::npos);

  const auto stats = c.read_request("read stats");
  EXPECT_EQ(stats.code, 200);
  EXPECT_NE(stats.payload.find("pclass-live-stats-v1"), std::string::npos);
  EXPECT_NE(stats.payload.find("\"socket_visibility\""), std::string::npos);

  const auto metrics = c.read_request("read metrics");
  EXPECT_EQ(metrics.code, 200);
  EXPECT_NE(metrics.payload.find("pclass_build_info{"), std::string::npos);
  EXPECT_NE(metrics.payload.find("pclass_live_packets_total"),
            std::string::npos);

  const auto series = c.read_request("read timeseries");
  EXPECT_EQ(series.code, 200);
  EXPECT_NE(series.payload.find("pclass-live-timeseries-v1"),
            std::string::npos);

  const auto handlers = c.read_request("read handlers");
  EXPECT_EQ(handlers.code, 200);
  EXPECT_NE(handlers.payload.find("metrics"), std::string::npos);

  const auto bye = c.request("quit");
  EXPECT_EQ(bye.code, 200);
}

TEST(ControlServer, RejectsMalformedUnknownAndOversizedLines) {
  ServeHarness h;
  {
    TestClient c(h.port());
    EXPECT_EQ(c.request("read no-such-handler").code, 404);
    EXPECT_EQ(c.request("write no-such-handler").code, 404);
    EXPECT_EQ(c.request("frobnicate now").code, 400);
    EXPECT_EQ(c.request("write rule add 1 2").code, 400);  // bad arity
    EXPECT_EQ(c.request("write rule add x 2 * * * * 6 drop").code, 400);
    EXPECT_EQ(c.request("write set memo-ways 9999").code, 400);
    EXPECT_EQ(c.request("subscribe stats 0").code, 400);
    EXPECT_EQ(c.request("read").code, 400);
    // Empty lines are ignored, not answered.
    c.send_raw("\n\n");
    EXPECT_EQ(c.read_request("read version").code, 200);
  }
  {
    // A complete line beyond kMaxLineBytes: 431 and the connection ends.
    TestClient c(h.port());
    c.send_raw(std::string(control::kMaxLineBytes + 100, 'a') + "\n");
    const auto r = c.read_response();
    EXPECT_EQ(r.code, 431);
    EXPECT_TRUE(c.read_line().empty());  // server closed
  }
  {
    // An unterminated flood beyond the cap is cut off the same way.
    TestClient c(h.port());
    c.send_raw(std::string(control::kMaxLineBytes + 100, 'b'));
    const auto r = c.read_response();
    EXPECT_EQ(r.code, 431);
  }
}

TEST(ControlServer, ReassemblesPartialLinesAcrossChunks) {
  ServeHarness h;
  TestClient c(h.port());
  c.send_raw("read ver");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  c.send_raw("sion\nread stat");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  c.send_raw("s\n");
  // Both requests complete despite arbitrary chunk boundaries.
  std::string status = c.read_line();
  EXPECT_TRUE(status.starts_with("200")) << status;
  std::string frame = c.read_line();
  ASSERT_TRUE(frame.starts_with("DATA "));
  (void)c.read_exact(static_cast<usize>(std::atoll(frame.substr(5).c_str())));
  status = c.read_line();
  EXPECT_TRUE(status.starts_with("200")) << status;
  frame = c.read_line();
  ASSERT_TRUE(frame.starts_with("DATA "));
  const std::string stats = c.read_exact(
      static_cast<usize>(std::atoll(frame.substr(5).c_str())));
  EXPECT_NE(stats.find("pclass-live-stats-v1"), std::string::npos);
}

TEST(ControlServer, ServesConcurrentClients) {
  ServeHarness h;
  constexpr usize kClients = 6;
  constexpr usize kRequests = 8;
  std::atomic<u64> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (usize t = 0; t < kClients; ++t) {
    threads.emplace_back([&h, &ok] {
      TestClient c(h.port());
      for (usize i = 0; i < kRequests; ++i) {
        const auto r = c.read_request(i % 2 == 0 ? "read stats"
                                                 : "read metrics");
        if (r.code == 200 && !r.payload.empty()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients * kRequests);
  EXPECT_GE(h.server->connections_accepted(), kClients);
}

// ---- socket-driven updates: oracle + visibility ----------------------------

TEST(ControlPlane, ScriptedUpdatesAreOracleCleanWithVisibilityLatency) {
  ServeHarness h;
  TestClient c(h.port());

  constexpr u32 kUpdates = 12;
  for (u32 i = 0; i < kUpdates; ++i) {
    const u32 id = 61000 + i;
    // Same shape the pool's headers probe, so new rules land in the
    // classified address space.
    std::ostringstream cmd;
    cmd << "write rule add " << id << " " << id << " 10.0."
        << ((id >> 8) & 0xFF) << "." << (id & 0xFF) << "/32 * * * 6 out:2";
    const auto r = c.request(cmd.str());
    ASSERT_EQ(r.code, 200) << r.message;
    EXPECT_NE(r.message.find("version="), std::string::npos);
    // Oracle-check the published snapshot after every single commit.
    const auto verify = c.read_request("read verify");
    ASSERT_EQ(verify.code, 200);
    EXPECT_NE(verify.payload.find("\"mismatches\":0"), std::string::npos)
        << verify.payload;
  }

  // Visibility fully resolves once every worker classified on (at
  // least) the last accepted version.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  control::SocketVisibility sv = h.cp->socket_visibility();
  while ((sv.samples < kUpdates || sv.pending > 0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    sv = h.cp->socket_visibility();
  }
  EXPECT_EQ(sv.samples, kUpdates);
  EXPECT_EQ(sv.pending, 0u);
  EXPECT_EQ(sv.unresolved, 0u);
  EXPECT_EQ(h.cp->updates_accepted(), kUpdates);
  // Finite, nonzero latencies with sane ordering.
  EXPECT_GT(sv.cmd_to_first_mean_ns, 0.0);
  EXPECT_TRUE(std::isfinite(sv.cmd_to_first_mean_ns));
  EXPECT_GT(sv.cmd_to_all_mean_ns, 0.0);
  EXPECT_GE(sv.cmd_to_all_max_ns, sv.cmd_to_first_max_ns);
  EXPECT_GT(sv.publish_to_first_mean_ns, 0.0);
  EXPECT_LT(sv.cmd_to_all_max_ns, u64{60} * 1'000'000'000);

  // Config knobs land through the same southbound path.
  EXPECT_EQ(c.request("write set path-policy phase2").code, 200);
  EXPECT_EQ(c.request("write set batch-mode scalar").code, 200);
  EXPECT_EQ(c.request("write set batch-mode phase2").code, 200);
}

// ---- streaming subscriptions ----------------------------------------------

TEST(ControlPlane, SubscribeStreamsRowsAndEndsWithTerminalRecord) {
  ServeHarness h;
  TestClient c(h.port());
  const auto sub = c.request("subscribe stats 10");
  ASSERT_EQ(sub.code, 200);
  EXPECT_NE(sub.message.find("streaming"), std::string::npos);
  // Rows are NDJSON objects; collect a few.
  usize rows = 0;
  while (rows < 3) {
    const std::string line = c.read_line();
    ASSERT_FALSE(line.empty()) << "stream ended early";
    ASSERT_EQ(line.front(), '{') << line;
    EXPECT_NE(line.find("\"packets\":"), std::string::npos);
    ++rows;
  }
  // The next request ends the stream: terminal record first, then the
  // response to the new request.
  c.send_raw("read version\n");
  std::string line = c.read_line();
  while (!line.empty() && line.front() == '{' &&
         line.find("\"terminal\":true") == std::string::npos) {
    line = c.read_line();  // rows already in flight
  }
  ASSERT_NE(line.find("\"terminal\":true"), std::string::npos) << line;
  EXPECT_NE(line.find("\"rows_pushed\""), std::string::npos);
  line = c.read_line();
  EXPECT_TRUE(line.starts_with("200")) << line;
}

TEST(ControlPlane, DisconnectMidSubscriptionCleansUp) {
  ServeHarness h;
  {
    TestClient c(h.port());
    ASSERT_EQ(c.request("subscribe stats 5").code, 200);
    (void)c.read_line();  // at least one row flowed
    c.close();            // vanish mid-stream
  }
  // The server notices, unsubscribes, and keeps serving new clients.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  TestClient c2(h.port());
  EXPECT_EQ(c2.read_request("read stats").code, 200);
}

TEST(ControlPlane, SubscribeWithoutSamplerGetsTerminalRecord) {
  ServeHarness h(/*stats_interval_ms=*/0);  // no sampler thread
  TestClient c(h.port());
  const auto sub = c.request("subscribe stats 10");
  ASSERT_EQ(sub.code, 200);
  const std::string line = c.read_line();
  EXPECT_NE(line.find("\"terminal\":true"), std::string::npos) << line;
  EXPECT_NE(line.find("unavailable"), std::string::npos) << line;
  // The connection stays usable.
  EXPECT_EQ(c.read_request("read version").code, 200);
}

// ---- drain & reconcile -----------------------------------------------------

TEST(ControlPlane, DrainReconcilesLiveScrapeWithReportTotals) {
  ServeHarness h;
  TestClient c(h.port());
  ASSERT_EQ(c.request("write rule add 62000 62000 10.0.1.1/32 * * * 6 drop")
                .code,
            200);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  const auto drain = c.request("write drain");
  ASSERT_EQ(drain.code, 200);
  EXPECT_NE(drain.message.find("packets="), std::string::npos);

  // The post-drain scrape must agree exactly with the engine report.
  const dataplane::EngineReport rep = h.cp->drain();  // idempotent
  u64 t_batches = 0, t_lookups = 0;
  for (const auto& w : rep.workers) {
    t_batches += w.batches;
    t_lookups += w.classifier_lookups;
  }
  const auto stats = c.read_request("read stats");
  ASSERT_EQ(stats.code, 200);
  EXPECT_NE(stats.payload.find("\"drained\":true"), std::string::npos);
  EXPECT_NE(stats.payload.find("\"totals\":{\"packets\":" +
                               std::to_string(rep.packets())),
            std::string::npos)
      << stats.payload;
  EXPECT_NE(stats.payload.find("\"batches\":" + std::to_string(t_batches)),
            std::string::npos);
  // Sum of interval deltas == totals (the sampler's final flush ran).
  u64 d_packets = 0, d_lookups = 0;
  for (const auto& s : rep.timeseries) {
    d_packets += s.packets;
    d_lookups += s.classifier_lookups;
  }
  EXPECT_EQ(d_packets, rep.packets());
  EXPECT_EQ(d_lookups, t_lookups);

  // Updates are refused after drain; reads keep working.
  EXPECT_EQ(c.request("write rule add 62001 62001 10.0.1.2/32 * * * 6 drop")
                .code,
            409);
  EXPECT_EQ(c.request("write set memo-ways 1").code, 409);
  EXPECT_EQ(c.read_request("read metrics").code, 200);
  EXPECT_EQ(c.read_request("read timeseries").code, 200);
}

// ---- trace capture ---------------------------------------------------------

TEST(ControlPlane, TraceCaptureStartStopDump) {
  ServeHarness h;
  TestClient c(h.port());
  EXPECT_EQ(c.request("write trace stop").code, 409);  // nothing running
  ASSERT_EQ(c.request("write trace start 512").code, 200);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  const std::string path =
      "/tmp/pclass_test_trace_" + std::to_string(::getpid()) + ".json";
  const auto dump = c.request("write trace dump " + path);
  ASSERT_EQ(dump.code, 200) << dump.message;
  EXPECT_NE(dump.message.find("events="), std::string::npos);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream body;
  body << is.rdbuf();
  EXPECT_NE(body.str().find("\"traceEvents\""), std::string::npos);
  std::remove(path.c_str());
  // A second dump re-serves the held capture; stop is 409 again.
  EXPECT_EQ(c.request("write trace stop").code, 409);
}

// ---- graceful shutdown -----------------------------------------------------

TEST(ControlPlane, ShutdownRequestSignalsAndDrainSurvivesWorkerFault) {
  std::atomic<bool> thrown{false};
  ServeHarness h(/*stats_interval_ms=*/5, [&](usize worker) {
    if (worker == 0 && !thrown.exchange(true)) {
      throw std::runtime_error("injected control-test fault");
    }
  });
  TestClient c(h.port());
  // The faulting worker dies mid-run; the daemon surface stays up.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(c.read_request("read stats").code, 200);

  const auto r = c.request("write shutdown");
  EXPECT_EQ(r.code, 200);
  EXPECT_TRUE(h.shutdown_requested.load());

  // The daemon's signal path: drain, then stop the server — the fault
  // is surfaced in the report, and both calls stay idempotent.
  const dataplane::EngineReport rep = h.cp->drain();
  EXPECT_NE(rep.first_error().find("injected"), std::string::npos);
  EXPECT_EQ(rep.packets(), h.cp->drain().packets());
  h.server->stop();
  h.server->stop();
}

// ---- fault plane on the control surface -----------------------------------

TEST(ControlFault, ConnDropClosesCleanlyAndReconnectRecovers) {
  // The server's request counter is global, so: request #0 answered,
  // request #1 dropped (connection closed before a single response
  // byte — what pclass_ctl.py's retry path sees), request #2 on a
  // fresh connection answered again.
  fault::FaultInjector inj(fault::FaultPlan::parse("conndrop:r=1"));
  ServeHarness h(/*stats_interval_ms=*/5, nullptr, &inj);
  {
    TestClient c(h.port());
    EXPECT_EQ(c.read_request("read version").code, 200);
    c.send_raw("read stats\n");
    EXPECT_TRUE(c.read_line().empty()) << "expected a silent close";
  }
  EXPECT_EQ(inj.counters().conn_drops, 1u);
  TestClient c2(h.port());
  const auto r = c2.read_request("read stats");
  EXPECT_EQ(r.code, 200);
  EXPECT_NE(r.payload.find("pclass-live-stats-v1"), std::string::npos);
}

TEST(ControlFault, DrainDuringInjectedStallCompletesWithinDeadline) {
  // Satellite 4: shutdown racing a stalled worker. A 10s stall is
  // active when drain lands; the engine's stop signal is wired to the
  // injector's abort flag, so the stall must cut short and the drain
  // reconcile within the watchdog's horizon — no hang, no double-drain.
  fault::FaultInjector inj(fault::FaultPlan::parse("stall:w=0@2:ms=10000"));
  dataplane::SupervisorConfig sup;
  sup.enabled = true;
  sup.watchdog_interval_ms = 5;
  sup.stall_deadline_ms = 40;
  ServeHarness h(/*stats_interval_ms=*/5, nullptr, &inj, sup);

  // Let worker 0 reach sweep 2 and sink into the stall, and give the
  // watchdog time to flag the episode.
  const auto armed = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(500);
  while ((inj.counters().worker_stalls < 1 ||
          h.engine->supervisor_status().stall_detections < 1) &&
         std::chrono::steady_clock::now() < armed) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(inj.counters().worker_stalls, 1u) << "stall never fired";
  EXPECT_GE(h.engine->supervisor_status().stall_detections, 1u);

  TestClient c(h.port());
  const auto t0 = std::chrono::steady_clock::now();
  const auto drain = c.request("write drain");
  const auto drain_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(drain.code, 200) << drain.message;
  EXPECT_LT(drain_ms, 5'000) << "drain waited out the 10s stall";

  // Reconciled: the report is final, a second drain is the same report,
  // and the stalled worker neither died nor lost anything.
  const dataplane::EngineReport rep = h.cp->drain();
  EXPECT_TRUE(rep.first_error().empty()) << rep.first_error();
  EXPECT_GE(rep.stall_detections, 1u);
  EXPECT_EQ(rep.worker_restarts, 0u);
  EXPECT_EQ(rep.workers_failed, 0u);
  EXPECT_EQ(rep.packets(), h.cp->drain().packets());
  const auto stats = c.read_request("read stats");
  ASSERT_EQ(stats.code, 200);
  EXPECT_NE(stats.payload.find("\"drained\":true"), std::string::npos);
  EXPECT_NE(stats.payload.find("\"stall_detections\":"), std::string::npos);
}

}  // namespace
