#include <gtest/gtest.h>

#include "baseline/linear_search.hpp"
#include "core/classifier.hpp"
#include "ruleset/generator.hpp"
#include "ruleset/stats.hpp"
#include "ruleset/trace_gen.hpp"

using namespace pclass;

class SmokeAll : public ::testing::TestWithParam<
                     std::tuple<ruleset::FilterType, usize, core::IpAlgorithm>> {};

TEST_P(SmokeAll, CrossProductMatchesOracle) {
  const auto [type, size, alg] = GetParam();
  auto rules = ruleset::make_classbench_like(type, size);

  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(rules.size());
  cfg.combine_mode = core::CombineMode::kCrossProduct;
  cfg.ip_algorithm = alg;
  core::ConfigurableClassifier clf(cfg);
  clf.add_rules(rules);

  baseline::LinearSearch oracle(rules);
  ruleset::TraceGenerator tg(rules, {.headers = 500, .seed = 7});
  auto trace = tg.generate();

  usize mismatches = 0;
  for (const auto& e : trace) {
    const auto got = clf.classify(e.header);
    const auto* want = oracle.classify(e.header, nullptr);
    if (want == nullptr ? got.match.has_value()
                        : (!got.match || got.match->rule != want->id)) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u);

  auto stats = ruleset::RuleSetStats::analyze(rules);
  fprintf(stderr,
          "[info] %s rules=%zu uniq(src=%zu dst=%zu sp=%zu dp=%zu pr=%zu)\n",
          rules.name().c_str(), rules.size(), stats.unique_src_ip,
          stats.unique_dst_ip, stats.unique_src_port, stats.unique_dst_port,
          stats.unique_protocol);
}

INSTANTIATE_TEST_SUITE_P(
    All, SmokeAll,
    ::testing::Combine(
        ::testing::Values(ruleset::FilterType::kAcl, ruleset::FilterType::kFw,
                          ruleset::FilterType::kIpc),
        ::testing::Values(1000, 5000, 10000),
        ::testing::Values(core::IpAlgorithm::kMbt, core::IpAlgorithm::kBst)));
