// Unit tests for src/net: wire-format packet synthesis/parsing, the
// internet checksum and trace I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "net/packet.hpp"
#include "net/trace.hpp"

using namespace pclass;
using namespace pclass::net;

namespace {
FiveTuple tcp_tuple() {
  return {ipv4(10, 0, 0, 1), ipv4(192, 168, 1, 2), 12345, 80, kProtoTcp};
}
}  // namespace

TEST(Checksum, Rfc1071Example) {
  // Canonical example from RFC 1071 §3.
  const u8 data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), static_cast<u16>(~0xddf2 & 0xFFFF));
}

TEST(Checksum, OddLength) {
  const u8 data[] = {0xFF};
  EXPECT_EQ(internet_checksum(data), static_cast<u16>(~0xFF00 & 0xFFFF));
}

TEST(Packet, TcpRoundTrip) {
  const FiveTuple t = tcp_tuple();
  const Packet p = make_packet(t, 10);
  EXPECT_EQ(p.size(), kIpv4HeaderBytes + kTcpHeaderBytes + 10);
  const auto parsed = parse_five_tuple(p.bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, t);
}

TEST(Packet, UdpRoundTrip) {
  FiveTuple t = tcp_tuple();
  t.protocol = kProtoUdp;
  const Packet p = make_packet(t, 4);
  EXPECT_EQ(p.size(), kIpv4HeaderBytes + kUdpHeaderBytes + 4);
  const auto parsed = parse_five_tuple(p.bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, t);
}

TEST(Packet, IcmpHasZeroPorts) {
  FiveTuple t = tcp_tuple();
  t.protocol = kProtoIcmp;
  const Packet p = make_packet(t);
  const auto parsed = parse_five_tuple(p.bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, 0u);  // ICMP carries no L4 ports
  EXPECT_EQ(parsed->dst_port, 0u);
  EXPECT_EQ(parsed->protocol, kProtoIcmp);
}

TEST(Packet, HeaderChecksumIsValid) {
  const Packet p = make_packet(tcp_tuple());
  // Checksum over the IPv4 header including the checksum field is 0.
  const u16 sum = internet_checksum(
      std::span<const u8>{p.bytes.data(), kIpv4HeaderBytes});
  EXPECT_EQ(sum, 0u);
}

TEST(Packet, TruncatedReturnsNullopt) {
  const Packet p = make_packet(tcp_tuple());
  for (usize len : {usize{0}, usize{10}, usize{19}}) {
    EXPECT_FALSE(
        parse_five_tuple(std::span<const u8>{p.bytes.data(), len}));
  }
  // IPv4 header complete but L4 ports truncated.
  EXPECT_FALSE(parse_five_tuple(
      std::span<const u8>{p.bytes.data(), kIpv4HeaderBytes + 2}));
}

TEST(Packet, NonIpv4Rejected) {
  Packet p = make_packet(tcp_tuple());
  p.bytes[0] = 0x65;  // version 6
  EXPECT_FALSE(parse_five_tuple(p.bytes));
}

TEST(Packet, IhlRespected) {
  Packet p = make_packet(tcp_tuple());
  p.bytes[0] = 0x4F;  // IHL = 60 bytes but packet is shorter
  EXPECT_FALSE(parse_five_tuple(p.bytes));
}

TEST(FiveTupleTest, DimensionKeys) {
  const FiveTuple t = tcp_tuple();
  EXPECT_EQ(dimension_key(t, Dimension::kSrcIpHi), 0x0A00u);
  EXPECT_EQ(dimension_key(t, Dimension::kSrcIpLo), 0x0001u);
  EXPECT_EQ(dimension_key(t, Dimension::kDstIpHi), 0xC0A8u);
  EXPECT_EQ(dimension_key(t, Dimension::kDstIpLo), 0x0102u);
  EXPECT_EQ(dimension_key(t, Dimension::kSrcPort), 12345u);
  EXPECT_EQ(dimension_key(t, Dimension::kDstPort), 80u);
  EXPECT_EQ(dimension_key(t, Dimension::kProtocol), u32{kProtoTcp});
}

TEST(FiveTupleTest, Strings) {
  EXPECT_EQ(ip_to_string(ipv4(1, 2, 3, 4)), "1.2.3.4");
  const std::string s = to_string(tcp_tuple());
  EXPECT_NE(s.find("10.0.0.1:12345"), std::string::npos);
  EXPECT_NE(s.find("proto 6"), std::string::npos);
}

TEST(TraceIo, RoundTrip) {
  Trace t;
  t.add({tcp_tuple(), RuleId{3}});
  t.add({FiveTuple{1, 2, 3, 4, 5}, std::nullopt});
  std::stringstream ss;
  t.write(ss);
  const Trace back = Trace::read(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].header, tcp_tuple());
  ASSERT_TRUE(back[0].origin_rule.has_value());
  EXPECT_EQ(back[0].origin_rule->value, 3u);
  EXPECT_FALSE(back[1].origin_rule.has_value());
}

TEST(TraceIo, SkipsCommentsAndBlanks) {
  std::stringstream ss("# comment\n\n1 2 3 4 5\n");
  const Trace t = Trace::read(ss);
  EXPECT_EQ(t.size(), 1u);
}

TEST(TraceIo, RejectsMalformed) {
  std::stringstream bad1("1 2 3\n");
  EXPECT_THROW(Trace::read(bad1), ParseError);
  std::stringstream bad2("1 2 3 4 999\n");  // proto > 255
  EXPECT_THROW(Trace::read(bad2), ParseError);
}
