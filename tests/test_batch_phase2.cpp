// Batch-vs-scalar equivalence for the phase-2 lookup engine.
//
// The contract under test (see ClassifyResult's doc comment):
//   * phase-2 results (match/priority/probes) and per-packet
//     memory_accesses are identical to the scalar path — always;
//   * with the probe memo off, per-packet cycles are identical too;
//   * with the probe memo on, cycles are <= the scalar path's;
//   * both agree with the baseline::LinearSearch oracle (CrossProduct);
// across every workload family, both IP engines, both combine modes and
// batch sizes straddling the default capacity.
//
// Plus per-structure checks: each lookup_batch_into variant replays the
// scalar lookup's result and modeled cost for random (duplicate-heavy)
// key sequences.
#include <gtest/gtest.h>

#include <map>
#include <span>
#include <vector>

#include "alg/batch_keys.hpp"
#include "alg/multibit_trie.hpp"
#include "baseline/linear_search.hpp"
#include "common/random.hpp"
#include "core/classifier.hpp"
#include "workload/ruleset_synth.hpp"
#include "workload/trace_synth.hpp"

using namespace pclass;

namespace {

constexpr usize kBatchSizes[] = {1, 31, 32, 33, 256};

struct ScalarRef {
  std::vector<core::ClassifyResult> results;
};

std::vector<net::FiveTuple> headers_of(const net::Trace& trace) {
  std::vector<net::FiveTuple> h;
  h.reserve(trace.size());
  for (const auto& e : trace) h.push_back(e.header);
  return h;
}

ScalarRef scalar_reference(const core::ConfigurableClassifier& clf,
                           std::span<const net::FiveTuple> in) {
  ScalarRef ref;
  ref.results.reserve(in.size());
  for (const auto& t : in) ref.results.push_back(clf.classify(t));
  return ref;
}

void run_batched(const core::ConfigurableClassifier& clf,
                 std::span<const net::FiveTuple> in, usize batch,
                 std::vector<core::ClassifyResult>& out) {
  out.assign(in.size(), {});
  core::BatchScratch scratch;
  for (usize off = 0; off < in.size(); off += batch) {
    const usize len = std::min(batch, in.size() - off);
    clf.classify_batch(in.subspan(off, len),
                       std::span(out).subspan(off, len), scratch);
  }
}

void expect_verdicts_equal(const core::ClassifyResult& got,
                           const core::ClassifyResult& want, usize i) {
  ASSERT_EQ(got.match.has_value(), want.match.has_value()) << "packet " << i;
  if (got.match) {
    EXPECT_EQ(got.match->rule, want.match->rule) << "packet " << i;
    EXPECT_EQ(got.match->priority, want.match->priority) << "packet " << i;
    EXPECT_EQ(got.match->action, want.match->action) << "packet " << i;
  }
  EXPECT_EQ(got.crossproduct_probes, want.crossproduct_probes)
      << "packet " << i;
  EXPECT_EQ(got.memory_accesses, want.memory_accesses) << "packet " << i;
}

/// The full matrix for one device configuration + workload.
void check_equivalence(core::ClassifierConfig cfg,
                       const ruleset::RuleSet& rules,
                       std::span<const net::FiveTuple> in) {
  core::ConfigurableClassifier clf(cfg);
  clf.add_rules(rules);
  const ScalarRef ref = scalar_reference(clf, in);

  const baseline::LinearSearch oracle(rules);
  if (cfg.combine_mode == core::CombineMode::kCrossProduct) {
    for (usize i = 0; i < in.size(); ++i) {
      const ruleset::Rule* want = oracle.classify(in[i], nullptr);
      ASSERT_EQ(ref.results[i].match.has_value(), want != nullptr)
          << "scalar vs oracle, packet " << i;
      if (want != nullptr) {
        EXPECT_EQ(ref.results[i].match->rule, want->id);
      }
    }
  }

  std::vector<core::ClassifyResult> out;
  for (const usize batch : kBatchSizes) {
    // Memo off: bit-exact replay of the scalar cost model.
    clf.set_batch_mode(core::BatchMode::kPhase2);
    clf.set_batch_probe_memo(false);
    run_batched(clf, in, batch, out);
    for (usize i = 0; i < in.size(); ++i) {
      expect_verdicts_equal(out[i], ref.results[i], i);
      EXPECT_EQ(out[i].cycles, ref.results[i].cycles)
          << "memo off, batch " << batch << ", packet " << i;
      EXPECT_EQ(out[i].memo_hits, 0u);
    }

    // Memo on: identical verdicts and accesses, cycles never higher.
    clf.set_batch_probe_memo(true);
    run_batched(clf, in, batch, out);
    for (usize i = 0; i < in.size(); ++i) {
      expect_verdicts_equal(out[i], ref.results[i], i);
      EXPECT_LE(out[i].cycles, ref.results[i].cycles)
          << "memo on, batch " << batch << ", packet " << i;
    }

    // Scalar batch mode: trivially the scalar path.
    clf.set_batch_mode(core::BatchMode::kScalar);
    run_batched(clf, in, batch, out);
    for (usize i = 0; i < in.size(); ++i) {
      expect_verdicts_equal(out[i], ref.results[i], i);
      EXPECT_EQ(out[i].cycles, ref.results[i].cycles);
    }
  }
}

struct FamilyCase {
  const char* family;
  core::IpAlgorithm alg;
  core::CombineMode mode;
};

class BatchPhase2 : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(BatchPhase2, MatchesScalarAndOracle) {
  const FamilyCase& fc = GetParam();
  const ruleset::RuleSet rules = workload::synthesize(
      workload::RulesetProfile::by_family(fc.family, 200, 77));
  workload::TraceSynthesizer ts(
      rules, workload::TraceProfile::standard(1200, 77 ^ 0xABCD));
  const net::Trace trace = ts.generate();
  const auto in = headers_of(trace);

  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(512);
  cfg.ip_algorithm = fc.alg;
  cfg.combine_mode = fc.mode;
  check_equivalence(cfg, rules, in);
}

INSTANTIATE_TEST_SUITE_P(
    Families, BatchPhase2,
    ::testing::Values(
        FamilyCase{"acl", core::IpAlgorithm::kMbt,
                   core::CombineMode::kCrossProduct},
        FamilyCase{"fw", core::IpAlgorithm::kMbt,
                   core::CombineMode::kCrossProduct},
        FamilyCase{"ipc", core::IpAlgorithm::kMbt,
                   core::CombineMode::kCrossProduct},
        FamilyCase{"acl", core::IpAlgorithm::kBst,
                   core::CombineMode::kCrossProduct},
        FamilyCase{"fw", core::IpAlgorithm::kBst,
                   core::CombineMode::kCrossProduct},
        FamilyCase{"acl", core::IpAlgorithm::kMbt,
                   core::CombineMode::kFirstLabel},
        FamilyCase{"fw", core::IpAlgorithm::kMbt,
                   core::CombineMode::kFirstLabel}),
    [](const auto& info) {
      const FamilyCase& fc = info.param;
      return std::string(fc.family) + "_" +
             (fc.alg == core::IpAlgorithm::kMbt ? "mbt" : "bst") + "_" +
             (fc.mode == core::CombineMode::kCrossProduct ? "cross"
                                                          : "first");
    });

// Adversarial trace shapes: depth-heavy and thrash-heavy key patterns
// stress the MBT path cache and the adaptive gates respectively.
TEST(BatchPhase2, AdversarialTraces) {
  const ruleset::RuleSet rules = workload::synthesize(
      workload::RulesetProfile::acl(200, 99));
  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(512);
  cfg.combine_mode = core::CombineMode::kCrossProduct;

  const net::Trace depth = workload::make_trie_depth_trace(rules, 800, 13);
  check_equivalence(cfg, rules, headers_of(depth));

  const net::Trace thrash =
      workload::make_cache_thrash_trace(rules, 800, 512, 13);
  check_equivalence(cfg, rules, headers_of(thrash));
}

// Per-structure contract: MultiBitTrie::lookup_batch_into replays the
// scalar lookup result + cost lane-for-lane on duplicate-heavy sorted
// key sequences (exercising both the shared-prefix reuse and the
// duplicate-run replay).
TEST(BatchPhase2, MultiBitTrieBatchMatchesScalar) {
  std::map<u16, Priority> prio;
  alg::LabelListStore lists("lists", 2048, kIpLabelBits);
  alg::MultiBitTrie trie(
      "t", alg::MbtConfig{}, lists,
      [&prio](Label l) {
        const auto it = prio.find(l.value);
        return it == prio.end() ? kNoPriority : it->second;
      });
  hw::CommandLog log;
  Rng rng(4242);
  for (u16 i = 0; i < 120; ++i) {
    const u8 len = static_cast<u8>(1 + rng.below(16));
    const u16 value =
        static_cast<u16>(rng.below(65536)) & static_cast<u16>(~0u << (16 - len));
    const u16 label = static_cast<u16>(i + 1);
    prio[label] = rng.below(1000);
    try {
      trie.insert(ruleset::SegmentPrefix::make(value, len), Label{label},
                  log);
    } catch (const InternalError&) {
      // duplicate prefix draw — skip
    }
  }

  // Duplicate-heavy key set: a few hot keys plus uniform noise.
  std::vector<alg::BatchKey> lanes;
  for (u32 slot = 0; slot < 512; ++slot) {
    const u32 key = slot % 3 == 0 ? 0xABCD
                                  : static_cast<u32>(rng.below(65536));
    lanes.push_back({key, slot});
  }
  std::vector<alg::BatchKey> sorted = lanes;
  alg::sort_batch_keys(sorted);

  std::vector<alg::ListRef> refs(lanes.size());
  std::vector<hw::CycleRecorder> recs(lanes.size());
  trie.lookup_batch_into(sorted, refs, recs);

  for (const alg::BatchKey& lane : lanes) {
    hw::CycleRecorder want_rec;
    const alg::ListRef want =
        trie.lookup(static_cast<u16>(lane.key), &want_rec);
    EXPECT_EQ(refs[lane.slot].addr, want.addr) << "key " << lane.key;
    EXPECT_EQ(recs[lane.slot].cycles(), want_rec.cycles())
        << "key " << lane.key;
    EXPECT_EQ(recs[lane.slot].memory_accesses(), want_rec.memory_accesses())
        << "key " << lane.key;
  }
}

}  // namespace
