// Batch-vs-scalar equivalence for the phase-2 lookup engine.
//
// The contract under test (see ClassifyResult's doc comment):
//   * phase-2 results (match/priority/probes) and per-packet
//     memory_accesses are identical to the scalar path — always;
//   * with the probe memo off, per-packet cycles are identical too;
//   * with the probe memo on, cycles are <= the scalar path's;
//   * both agree with the baseline::LinearSearch oracle (CrossProduct);
// across every workload family, both IP engines, both combine modes and
// batch sizes straddling the default capacity.
//
// Plus per-structure checks: each lookup_batch_into variant replays the
// scalar lookup's result and modeled cost for random (duplicate-heavy)
// key sequences.
#include <gtest/gtest.h>

#include <map>
#include <span>
#include <vector>

#include "alg/batch_keys.hpp"
#include "alg/multibit_trie.hpp"
#include "baseline/linear_search.hpp"
#include "common/error.hpp"
#include "common/random.hpp"
#include "core/classifier.hpp"
#include "dataplane/rule_program.hpp"
#include "sdn/flow_mod.hpp"
#include "workload/ruleset_synth.hpp"
#include "workload/trace_synth.hpp"

using namespace pclass;

namespace {

constexpr usize kBatchSizes[] = {1, 31, 32, 33, 256};

struct ScalarRef {
  std::vector<core::ClassifyResult> results;
};

std::vector<net::FiveTuple> headers_of(const net::Trace& trace) {
  std::vector<net::FiveTuple> h;
  h.reserve(trace.size());
  for (const auto& e : trace) h.push_back(e.header);
  return h;
}

ScalarRef scalar_reference(const core::ConfigurableClassifier& clf,
                           std::span<const net::FiveTuple> in) {
  ScalarRef ref;
  ref.results.reserve(in.size());
  for (const auto& t : in) ref.results.push_back(clf.classify(t));
  return ref;
}

void run_batched(const core::ConfigurableClassifier& clf,
                 std::span<const net::FiveTuple> in, usize batch,
                 std::vector<core::ClassifyResult>& out) {
  out.assign(in.size(), {});
  core::BatchScratch scratch;
  for (usize off = 0; off < in.size(); off += batch) {
    const usize len = std::min(batch, in.size() - off);
    clf.classify_batch(in.subspan(off, len),
                       std::span(out).subspan(off, len), scratch);
  }
}

void expect_verdicts_equal(const core::ClassifyResult& got,
                           const core::ClassifyResult& want, usize i) {
  ASSERT_EQ(got.match.has_value(), want.match.has_value()) << "packet " << i;
  if (got.match) {
    EXPECT_EQ(got.match->rule, want.match->rule) << "packet " << i;
    EXPECT_EQ(got.match->priority, want.match->priority) << "packet " << i;
    EXPECT_EQ(got.match->action, want.match->action) << "packet " << i;
  }
  EXPECT_EQ(got.crossproduct_probes, want.crossproduct_probes)
      << "packet " << i;
  EXPECT_EQ(got.memory_accesses, want.memory_accesses) << "packet " << i;
}

/// The full matrix for one device configuration + workload.
void check_equivalence(core::ClassifierConfig cfg,
                       const ruleset::RuleSet& rules,
                       std::span<const net::FiveTuple> in) {
  core::ConfigurableClassifier clf(cfg);
  clf.add_rules(rules);
  const ScalarRef ref = scalar_reference(clf, in);

  const baseline::LinearSearch oracle(rules);
  if (cfg.combine_mode == core::CombineMode::kCrossProduct) {
    for (usize i = 0; i < in.size(); ++i) {
      const ruleset::Rule* want = oracle.classify(in[i], nullptr);
      ASSERT_EQ(ref.results[i].match.has_value(), want != nullptr)
          << "scalar vs oracle, packet " << i;
      if (want != nullptr) {
        EXPECT_EQ(ref.results[i].match->rule, want->id);
      }
    }
  }

  std::vector<core::ClassifyResult> out;
  for (const usize batch : kBatchSizes) {
    // Memo off: bit-exact replay of the scalar cost model.
    clf.set_batch_mode(core::BatchMode::kPhase2);
    clf.set_batch_probe_memo(false);
    run_batched(clf, in, batch, out);
    for (usize i = 0; i < in.size(); ++i) {
      expect_verdicts_equal(out[i], ref.results[i], i);
      EXPECT_EQ(out[i].cycles, ref.results[i].cycles)
          << "memo off, batch " << batch << ", packet " << i;
      EXPECT_EQ(out[i].memo_hits, 0u);
    }

    // Memo on: identical verdicts and accesses, cycles never higher.
    clf.set_batch_probe_memo(true);
    run_batched(clf, in, batch, out);
    for (usize i = 0; i < in.size(); ++i) {
      expect_verdicts_equal(out[i], ref.results[i], i);
      EXPECT_LE(out[i].cycles, ref.results[i].cycles)
          << "memo on, batch " << batch << ", packet " << i;
    }

    // Scalar batch mode: trivially the scalar path.
    clf.set_batch_mode(core::BatchMode::kScalar);
    run_batched(clf, in, batch, out);
    for (usize i = 0; i < in.size(); ++i) {
      expect_verdicts_equal(out[i], ref.results[i], i);
      EXPECT_EQ(out[i].cycles, ref.results[i].cycles);
    }
  }
}

struct FamilyCase {
  const char* family;
  core::IpAlgorithm alg;
  core::CombineMode mode;
};

class BatchPhase2 : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(BatchPhase2, MatchesScalarAndOracle) {
  const FamilyCase& fc = GetParam();
  const ruleset::RuleSet rules = workload::synthesize(
      workload::RulesetProfile::by_family(fc.family, 200, 77));
  workload::TraceSynthesizer ts(
      rules, workload::TraceProfile::standard(1200, 77 ^ 0xABCD));
  const net::Trace trace = ts.generate();
  const auto in = headers_of(trace);

  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(512);
  cfg.ip_algorithm = fc.alg;
  cfg.combine_mode = fc.mode;
  check_equivalence(cfg, rules, in);
}

INSTANTIATE_TEST_SUITE_P(
    Families, BatchPhase2,
    ::testing::Values(
        FamilyCase{"acl", core::IpAlgorithm::kMbt,
                   core::CombineMode::kCrossProduct},
        FamilyCase{"fw", core::IpAlgorithm::kMbt,
                   core::CombineMode::kCrossProduct},
        FamilyCase{"ipc", core::IpAlgorithm::kMbt,
                   core::CombineMode::kCrossProduct},
        FamilyCase{"acl", core::IpAlgorithm::kBst,
                   core::CombineMode::kCrossProduct},
        FamilyCase{"fw", core::IpAlgorithm::kBst,
                   core::CombineMode::kCrossProduct},
        FamilyCase{"acl", core::IpAlgorithm::kMbt,
                   core::CombineMode::kFirstLabel},
        FamilyCase{"fw", core::IpAlgorithm::kMbt,
                   core::CombineMode::kFirstLabel}),
    [](const auto& info) {
      const FamilyCase& fc = info.param;
      return std::string(fc.family) + "_" +
             (fc.alg == core::IpAlgorithm::kMbt ? "mbt" : "bst") + "_" +
             (fc.mode == core::CombineMode::kCrossProduct ? "cross"
                                                          : "first");
    });

// Adversarial trace shapes: depth-heavy and thrash-heavy key patterns
// stress the MBT path cache and the adaptive gates respectively.
TEST(BatchMemoConfig, InvalidWaysRejectedAtConfigTime) {
  core::ClassifierConfig cfg;
  cfg.batch_memo_ways = 3;
  EXPECT_THROW(core::ConfigurableClassifier{cfg}, ConfigError);
  core::ConfigurableClassifier clf;
  EXPECT_THROW(clf.set_batch_memo_ways(0), ConfigError);
  EXPECT_NO_THROW(clf.set_batch_memo_ways(1));
  EXPECT_NO_THROW(clf.set_batch_memo_ways(2));
}

TEST(BatchPhase2, AdversarialTraces) {
  const ruleset::RuleSet rules = workload::synthesize(
      workload::RulesetProfile::acl(200, 99));
  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(512);
  cfg.combine_mode = core::CombineMode::kCrossProduct;

  const net::Trace depth = workload::make_trie_depth_trace(rules, 800, 13);
  check_equivalence(cfg, rules, headers_of(depth));

  const net::Trace thrash =
      workload::make_cache_thrash_trace(rules, 800, 512, 13);
  check_equivalence(cfg, rules, headers_of(thrash));
}

// Controller-forced-path matrix: every PathPolicy x memo eligibility x
// memo lifetime combination must reproduce the scalar verdicts and
// per-packet accesses; cycles stay exact whenever the memo cannot
// engage and never exceed scalar when it can.
TEST(BatchPhase2, ControllerForcedPathMatrix) {
  const ruleset::RuleSet rules = workload::synthesize(
      workload::RulesetProfile::fw(150, 31));
  workload::TraceSynthesizer ts(
      rules, workload::TraceProfile::standard(900, 31 ^ 0xABCD));
  const auto in = headers_of(ts.generate());

  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(512);
  cfg.combine_mode = core::CombineMode::kCrossProduct;
  core::ConfigurableClassifier clf(cfg);
  clf.add_rules(rules);
  const ScalarRef ref = scalar_reference(clf, in);

  std::vector<core::ClassifyResult> out;
  for (const core::PathPolicy policy :
       {core::PathPolicy::kAdaptive, core::PathPolicy::kForcePhase2,
        core::PathPolicy::kForceScalarLoop}) {
    for (const bool memo : {false, true}) {
      for (const bool persistent : {false, true}) {
        clf.set_batch_path_policy(policy);
        clf.set_batch_probe_memo(memo);
        clf.set_batch_memo_persistent(persistent);
        run_batched(clf, in, 32, out);
        const bool memo_can_engage =
            memo && policy != core::PathPolicy::kForceScalarLoop;
        for (usize i = 0; i < in.size(); ++i) {
          expect_verdicts_equal(out[i], ref.results[i], i);
          if (memo_can_engage) {
            EXPECT_LE(out[i].cycles, ref.results[i].cycles)
                << "policy " << to_string(policy) << ", packet " << i;
          } else {
            EXPECT_EQ(out[i].cycles, ref.results[i].cycles)
                << "policy " << to_string(policy) << ", packet " << i;
            EXPECT_EQ(out[i].memo_hits, 0u);
          }
        }
      }
    }
  }
}

// The persistent memo must compound across batches of an unchanged
// device: classifying the same flow-heavy trace twice with one scratch,
// the second pass (memo warm from the first) serves strictly more memo
// hits than the first while staying verdict/access-identical to scalar.
TEST(BatchPhase2, PersistentMemoCompoundsAcrossBatches) {
  const ruleset::RuleSet rules = workload::synthesize(
      workload::RulesetProfile::fw(150, 47));
  workload::TraceSynthesizer ts(
      rules, workload::TraceProfile::zipf_heavy(600, 47 ^ 0x21BF));
  const auto in = headers_of(ts.generate());

  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(512);
  cfg.combine_mode = core::CombineMode::kCrossProduct;
  cfg.batch_path_policy = core::PathPolicy::kForcePhase2;
  core::ConfigurableClassifier clf(cfg);
  clf.add_rules(rules);
  const ScalarRef ref = scalar_reference(clf, in);

  core::BatchScratch scratch;
  std::vector<core::ClassifyResult> out(in.size());
  auto pass = [&] {
    u64 hits = 0;
    for (usize off = 0; off < in.size(); off += 32) {
      const usize len = std::min<usize>(32, in.size() - off);
      clf.classify_batch(std::span(in).subspan(off, len),
                         std::span(out).subspan(off, len), scratch);
    }
    for (usize i = 0; i < in.size(); ++i) {
      expect_verdicts_equal(out[i], ref.results[i], i);
      EXPECT_LE(out[i].cycles, ref.results[i].cycles);
      hits += out[i].memo_hits;
    }
    return hits;
  };
  const u64 first = pass();
  const u64 second = pass();
  EXPECT_GT(second, first)
      << "a warm persistent memo must serve more hits than a cold one";
  // One bind at first use; never again while the device is unchanged.
  EXPECT_EQ(scratch.memo_invalidations, 1u);

  // Per-batch mode as the A/B: every batch invalidates.
  clf.set_batch_memo_persistent(false);
  const u64 inval_before = scratch.memo_invalidations;
  (void)pass();
  EXPECT_EQ(scratch.memo_invalidations - inval_before,
            (in.size() + 31) / 32);
}

// Stale entries must never serve across an in-place device update: the
// memo is warmed, the rule a hot flow matches is removed (then a new
// one added), and the same headers are re-classified with the same
// scratch — verdicts must match a fresh scalar reference of the
// *mutated* device, not the cached ones.
TEST(BatchPhase2, PersistentMemoInvalidatesOnInPlaceUpdate) {
  ruleset::RuleSet rules("wc");
  for (u16 i = 0; i < 8; ++i) {
    ruleset::Rule r;
    r.src_ip = ruleset::IpPrefix::make(
        (u32{10} << 24) | (u32{i} << 16), 16);
    r.proto = ruleset::ProtoMatch::exact(net::kProtoTcp);
    rules.add(r);
  }
  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(64);
  cfg.combine_mode = core::CombineMode::kCrossProduct;
  cfg.batch_path_policy = core::PathPolicy::kForcePhase2;
  core::ConfigurableClassifier clf(cfg);
  clf.add_rules(rules);

  std::vector<net::FiveTuple> in;
  for (u16 k = 0; k < 64; ++k) {
    net::FiveTuple t;
    t.src_ip = (u32{10} << 24) | (u32{k % 8} << 16) | k;
    t.dst_ip = 0xC0A80001;
    t.src_port = 1000;
    t.dst_port = 80;
    t.protocol = net::kProtoTcp;
    in.push_back(t);
  }
  core::BatchScratch scratch;
  std::vector<core::ClassifyResult> out(in.size());

  auto classify_and_check = [&] {
    clf.classify_batch(in, out, scratch);
    const ScalarRef ref = scalar_reference(clf, in);
    for (usize i = 0; i < in.size(); ++i) {
      expect_verdicts_equal(out[i], ref.results[i], i);
    }
  };
  classify_and_check();  // warm the memo on rules that will disappear
  const auto victim = clf.installed_rules().front();
  clf.remove_rule(victim.id);
  classify_and_check();  // cached match for the removed rule must not serve
  ruleset::Rule back = victim;
  back.id = RuleId{500};
  back.priority = 99;
  clf.add_rule(back);
  classify_and_check();  // and the re-added rule must be visible
  // Initial bind + one invalidation per mutation (each epoch bump).
  EXPECT_EQ(scratch.memo_invalidations, 3u);
}

// The dataplane analogue: one worker scratch classifying across
// publisher snapshot swaps (A -> B -> A replica rotation). Every swap
// rebinds the memo; results always match a scalar reference taken on
// the snapshot being classified against — including when the worker
// deliberately keeps classifying an *old* acquired snapshot after a
// newer one was published.
TEST(BatchPhase2, PersistentMemoInvalidatesOnSnapshotSwap) {
  const ruleset::RuleSet rules = workload::synthesize(
      workload::RulesetProfile::acl(120, 53));
  workload::TraceSynthesizer ts(
      rules, workload::TraceProfile::zipf_heavy(256, 53 ^ 0x21BF));
  const auto in = headers_of(ts.generate());

  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(512);
  cfg.combine_mode = core::CombineMode::kCrossProduct;
  cfg.batch_path_policy = core::PathPolicy::kForcePhase2;
  dataplane::RuleProgramPublisher programs(cfg);
  programs.install_ruleset(rules);

  const workload::UpdateStorm storm =
      workload::make_update_storm(rules, 6, /*first_id=*/60'000, 77);

  core::BatchScratch scratch;
  std::vector<core::ClassifyResult> out(in.size());
  auto classify_on = [&](const dataplane::RuleProgram& snap) {
    const auto& dev = snap.classifier();
    for (usize off = 0; off < in.size(); off += 32) {
      const usize len = std::min<usize>(32, in.size() - off);
      dev.classify_batch(std::span(in).subspan(off, len),
                         std::span(out).subspan(off, len), scratch);
    }
    const ScalarRef ref = scalar_reference(dev, in);
    for (usize i = 0; i < in.size(); ++i) {
      expect_verdicts_equal(out[i], ref.results[i], i);
      EXPECT_LE(out[i].cycles, ref.results[i].cycles);
    }
  };

  classify_on(*programs.acquire());
  for (const sdn::Message& msg : storm.schedule) {
    // Hold the snapshot being retired across the swap (one-swap window:
    // holding it longer would stall the writer's grace period, which is
    // exactly the publisher's documented reader contract).
    const auto held = programs.acquire();
    programs.apply(msg);  // swap: the other replica becomes current
    classify_on(*programs.acquire());  // new replica -> memo rebinds
    classify_on(*held);  // the stale-held snapshot -> rebinds again,
                         // and must still match *its* scalar reference
  }
  // Every classify_on() call above switched devices, so each one (after
  // the first) invalidated exactly once: 1 initial + 2 per update.
  EXPECT_EQ(scratch.memo_invalidations, 1u + 2 * storm.schedule.size());
}

// Content-hash combine dedup: when every port/proto dimension is pure
// wildcard, distinct dport/sport keys map to identical one-label lists,
// so headers differing only in ports must share one combine-memo group
// (span identity would give each distinct key its own span and
// under-group). Observable directly in the scratch.
TEST(BatchPhase2, ContentHashDedupGroupsIdenticalLists) {
  ruleset::RuleSet rules("wc-ports");
  for (u16 i = 0; i < 4; ++i) {
    ruleset::Rule r;
    r.src_ip = ruleset::IpPrefix::make(
        (u32{10} << 24) | (u32{i} << 16), 16);
    rules.add(r);  // ports and protocol wildcard
  }
  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(64);
  cfg.combine_mode = core::CombineMode::kCrossProduct;
  cfg.batch_path_policy = core::PathPolicy::kForcePhase2;
  core::ConfigurableClassifier clf(cfg);
  clf.add_rules(rules);

  std::vector<net::FiveTuple> in;
  for (u16 k = 0; k < 16; ++k) {
    net::FiveTuple t;
    t.src_ip = (u32{10} << 24) | (u32{2} << 16) | 7;  // one flow's IPs
    t.dst_ip = 0xC0A80001;
    t.src_port = static_cast<u16>(1000 + 3 * k);  // 16 distinct sports
    t.dst_port = static_cast<u16>(2000 + 5 * k);  // 16 distinct dports
    t.protocol = net::kProtoTcp;
    in.push_back(t);
  }
  core::BatchScratch scratch;
  std::vector<core::ClassifyResult> out(in.size());
  clf.classify_batch(in, out, scratch);
  // All 16 packets: identical IP lists (same ips) and identical
  // *contents* of the port/proto lists (only the wildcard label), so
  // one odometer run serves the whole batch.
  EXPECT_EQ(scratch.combine_memo.size(), 1u);
  const ScalarRef ref = scalar_reference(clf, in);
  for (usize i = 0; i < in.size(); ++i) {
    expect_verdicts_equal(out[i], ref.results[i], i);
  }
}

// Per-structure contract: MultiBitTrie::lookup_batch_into replays the
// scalar lookup result + cost lane-for-lane on duplicate-heavy sorted
// key sequences (exercising both the shared-prefix reuse and the
// duplicate-run replay).
TEST(BatchPhase2, MultiBitTrieBatchMatchesScalar) {
  std::map<u16, Priority> prio;
  alg::LabelListStore lists("lists", 2048, kIpLabelBits);
  alg::MultiBitTrie trie(
      "t", alg::MbtConfig{}, lists,
      [&prio](Label l) {
        const auto it = prio.find(l.value);
        return it == prio.end() ? kNoPriority : it->second;
      });
  hw::CommandLog log;
  Rng rng(4242);
  for (u16 i = 0; i < 120; ++i) {
    const u8 len = static_cast<u8>(1 + rng.below(16));
    const u16 value =
        static_cast<u16>(rng.below(65536)) & static_cast<u16>(~0u << (16 - len));
    const u16 label = static_cast<u16>(i + 1);
    prio[label] = rng.below(1000);
    try {
      trie.insert(ruleset::SegmentPrefix::make(value, len), Label{label},
                  log);
    } catch (const InternalError&) {
      // duplicate prefix draw — skip
    }
  }

  // Duplicate-heavy key set: a few hot keys plus uniform noise.
  std::vector<alg::BatchKey> lanes;
  for (u32 slot = 0; slot < 512; ++slot) {
    const u32 key = slot % 3 == 0 ? 0xABCD
                                  : static_cast<u32>(rng.below(65536));
    lanes.push_back({key, slot});
  }
  std::vector<alg::BatchKey> sorted = lanes;
  alg::sort_batch_keys(sorted);

  std::vector<alg::ListRef> refs(lanes.size());
  std::vector<hw::CycleRecorder> recs(lanes.size());
  trie.lookup_batch_into(sorted, refs, recs);

  for (const alg::BatchKey& lane : lanes) {
    hw::CycleRecorder want_rec;
    const alg::ListRef want =
        trie.lookup(static_cast<u16>(lane.key), &want_rec);
    EXPECT_EQ(refs[lane.slot].addr, want.addr) << "key " << lane.key;
    EXPECT_EQ(recs[lane.slot].cycles(), want_rec.cycles())
        << "key " << lane.key;
    EXPECT_EQ(recs[lane.slot].memory_accesses(), want_rec.memory_accesses())
        << "key " << lane.key;
  }
}

}  // namespace
