// Baseline classifiers (Table I comparators): every one must agree with
// the linear-search oracle; structural properties are spot-checked.
#include <gtest/gtest.h>

#include "baseline/dcfl.hpp"
#include "baseline/hypercuts.hpp"
#include "baseline/linear_search.hpp"
#include "baseline/option_trie.hpp"
#include "baseline/rfc.hpp"
#include "baseline/sw_trie.hpp"
#include "common/random.hpp"
#include "ruleset/generator.hpp"
#include "ruleset/trace_gen.hpp"

using namespace pclass;
using namespace pclass::baseline;
using pclass::ruleset::FilterType;
using pclass::ruleset::RuleSet;

namespace {

usize mismatches_vs_oracle(const Baseline& b, const RuleSet& rs,
                           usize headers, u64 seed = 5) {
  LinearSearch oracle(rs);
  ruleset::TraceGenerator tg(
      rs, {.headers = headers, .random_fraction = 0.15, .seed = seed});
  const auto trace = tg.generate();
  usize mism = 0;
  for (const auto& e : trace) {
    const auto* got = b.classify(e.header, nullptr);
    const auto* want = oracle.classify(e.header, nullptr);
    if ((got == nullptr) != (want == nullptr) ||
        (got != nullptr && got->id != want->id)) {
      ++mism;
    }
  }
  return mism;
}

}  // namespace

class BaselineEquivalence
    : public ::testing::TestWithParam<std::tuple<FilterType, const char*>> {
 protected:
  RuleSet rules() const {
    return ruleset::make_classbench_like(std::get<0>(GetParam()), 1000);
  }
  std::unique_ptr<Baseline> make(const RuleSet& rs) const {
    const std::string which = std::get<1>(GetParam());
    if (which == "hypercuts") return std::make_unique<HyperCuts>(rs);
    if (which == "rfc") return std::make_unique<Rfc>(rs);
    if (which == "dcfl") return std::make_unique<Dcfl>(rs);
    if (which == "option1") {
      return std::make_unique<OptionTrie>(rs, OptionConfig::option1());
    }
    return std::make_unique<OptionTrie>(rs, OptionConfig::option2());
  }
};

TEST_P(BaselineEquivalence, MatchesOracle) {
  const RuleSet rs = rules();
  const auto b = make(rs);
  EXPECT_EQ(mismatches_vs_oracle(*b, rs, 800), 0u) << b->name();
  EXPECT_GT(b->memory_bits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    All, BaselineEquivalence,
    ::testing::Combine(::testing::Values(FilterType::kAcl, FilterType::kFw,
                                         FilterType::kIpc),
                       ::testing::Values("hypercuts", "rfc", "dcfl",
                                         "option1", "option2")));

TEST(LinearSearchTest, PriorityOrderRespected) {
  RuleSet rs;
  ruleset::Rule broad;  // matches everything
  ruleset::Rule narrow;
  narrow.dst_port = ruleset::PortRange::exact(80);
  rs.add(narrow);  // priority 0 (higher)
  rs.add(broad);   // priority 1
  LinearSearch ls(rs);
  const auto* hit = ls.classify({1, 2, 3, 80, 6}, nullptr);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->id.value, 0u);
  LookupCost cost;
  (void)ls.classify({1, 2, 3, 81, 6}, &cost);
  EXPECT_EQ(cost.memory_accesses, 2u);  // scanned both
}

TEST(HyperCutsTest, TreeIsBuiltAndBounded) {
  const RuleSet rs = ruleset::make_classbench_like(FilterType::kAcl, 1000);
  HyperCuts hc(rs);
  EXPECT_GT(hc.node_count(), 1u);
  EXPECT_LE(hc.depth(), 32u);
  LookupCost cost;
  (void)hc.classify({1, 2, 3, 4, 6}, &cost);
  EXPECT_GT(cost.memory_accesses, 0u);
}

TEST(RfcTest, FixedAccessCount) {
  const RuleSet rs = ruleset::make_classbench_like(FilterType::kFw, 1000);
  Rfc rfc(rs);
  LookupCost cost;
  (void)rfc.classify({1, 2, 3, 4, 6}, &cost);
  EXPECT_EQ(cost.memory_accesses, Rfc::kAccessesPerLookup);
}

TEST(RfcTest, MemoryDominatesDecomposition) {
  // The RFC memory explosion relative to label decomposition (Table I's
  // central contrast: RFC 31.48 Mb vs DCFL 22.54 Mb vs tries ~6 Mb; the
  // precise ratios are set-dependent, the ordering is structural).
  const RuleSet rs = ruleset::make_classbench_like(FilterType::kAcl, 1000);
  Rfc rfc(rs);
  Dcfl dcfl(rs);
  HyperCuts hc(rs);
  EXPECT_GT(rfc.memory_bits(), dcfl.memory_bits());
  EXPECT_GT(rfc.memory_bits(), hc.memory_bits());
}

TEST(DcflTest, DecompositionAccessOrderings) {
  // Table I orderings that are structural (and thus reproducible with
  // our access metric): within the decomposition family, DCFL's staged
  // aggregation beats the single-stage option combinations, and the
  // 4-level IP trie of Option 2 beats Option 1's 5-level one. (The
  // HyperCuts-vs-DCFL comparison depends on how parallel Bloom probes
  // are counted and is discussed in EXPERIMENTS.md, not asserted here.)
  const RuleSet rs = ruleset::make_classbench_like(FilterType::kAcl, 1000);
  Dcfl dcfl(rs);
  OptionTrie o1(rs, OptionConfig::option1());
  OptionTrie o2(rs, OptionConfig::option2());
  ruleset::TraceGenerator tg(rs, {.headers = 500, .seed = 5});
  const auto trace = tg.generate();
  LookupCost cd, c1, c2;
  for (const auto& e : trace) {
    (void)dcfl.classify(e.header, &cd);
    (void)o1.classify(e.header, &c1);
    (void)o2.classify(e.header, &c2);
  }
  EXPECT_LT(cd.memory_accesses, c1.memory_accesses);
  EXPECT_LT(cd.memory_accesses, c2.memory_accesses);
  EXPECT_LE(c2.memory_accesses, c1.memory_accesses);  // Option 2 wins
}

TEST(SwTrieTest, CollectsCoveringItems) {
  SwTrie t({8, 8}, 16);
  t.insert(0xAB00, 8, 1);
  t.insert(0xABCD, 16, 2);
  t.insert(0x0000, 0, 3);
  std::vector<u16> out;
  u64 acc = 0;
  t.lookup(0xABCD, out, acc);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<u16>{1, 2, 3}));
  EXPECT_GT(acc, 0u);
}

TEST(SwTrieTest, Validation) {
  EXPECT_THROW(SwTrie({8, 8}, 17), ConfigError);
  EXPECT_THROW(SwTrie({8}, 16), ConfigError);
  SwTrie t({8, 8}, 16);
  EXPECT_THROW(t.insert(0, 17, 1), ConfigError);
}

TEST(RangeToPrefixes, ExhaustiveSmallDomain) {
  // Property: expansion covers exactly [lo, hi] for every range in a
  // 6-bit domain.
  for (u32 lo = 0; lo < 64; ++lo) {
    for (u32 hi = lo; hi < 64; ++hi) {
      const auto prefixes = range_to_prefixes(lo, hi, 6);
      std::vector<bool> covered(64, false);
      for (const auto& [value, len] : prefixes) {
        const u32 span = u32{1} << (6 - len);
        for (u32 v = value; v < value + span; ++v) {
          EXPECT_FALSE(covered[v]) << "overlap at " << v;
          covered[v] = true;
        }
      }
      for (u32 v = 0; v < 64; ++v) {
        EXPECT_EQ(covered[v], v >= lo && v <= hi)
            << "lo=" << lo << " hi=" << hi << " v=" << v;
      }
    }
  }
}

TEST(RangeToPrefixes, MinimalityKnownCases) {
  // [1, 14] in 4 bits is the classic worst case: 6 prefixes.
  EXPECT_EQ(range_to_prefixes(1, 14, 4).size(), 6u);
  EXPECT_EQ(range_to_prefixes(0, 15, 4).size(), 1u);  // whole domain
  EXPECT_EQ(range_to_prefixes(8, 8, 4).size(), 1u);   // exact
}

TEST(OptionTries, BothOptionsShareSemanticsDifferInCost) {
  const RuleSet rs = ruleset::make_classbench_like(FilterType::kAcl, 1000);
  OptionTrie o1(rs, OptionConfig::option1());
  OptionTrie o2(rs, OptionConfig::option2());
  ruleset::TraceGenerator tg(rs, {.headers = 300, .seed = 9});
  const auto trace = tg.generate();
  LookupCost c1, c2;
  for (const auto& e : trace) {
    const auto* a = o1.classify(e.header, &c1);
    const auto* b = o2.classify(e.header, &c2);
    EXPECT_EQ(a == nullptr, b == nullptr);
    if (a && b) EXPECT_EQ(a->id, b->id);
  }
  EXPECT_NE(c1.memory_accesses, c2.memory_accesses);
}
