// Cross-cutting property sweeps: engine equivalence under arbitrary
// stride plans, MBT-vs-BST agreement, rule-filter churn, and Key68
// against a 128-bit reference implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "alg/binary_search_tree.hpp"
#include "alg/multibit_trie.hpp"
#include "common/random.hpp"
#include "core/rule_filter.hpp"
#include "ruleset/rule.hpp"

using namespace pclass;
using namespace pclass::alg;
using pclass::ruleset::SegmentPrefix;

namespace {

/// Shared fixture: an MBT with a given stride plan and a BST over the
/// same (prefix, label, priority) population.
struct DualRig {
  std::map<u16, Priority> prio;
  LabelListStore mbt_lists{"ml", 4096, kIpLabelBits};
  LabelListStore bst_lists{"bl", 4096, kIpLabelBits};
  std::unique_ptr<MultiBitTrie> mbt;
  std::unique_ptr<BinarySearchTree> bst;
  hw::CommandLog log;

  explicit DualRig(std::vector<unsigned> strides,
                   std::vector<u32> capacity) {
    MbtConfig mc;
    mc.strides = std::move(strides);
    mc.level_capacity = std::move(capacity);
    auto cb = [this](Label l) {
      const auto it = prio.find(l.value);
      return it == prio.end() ? kNoPriority : it->second;
    };
    mbt = std::make_unique<MultiBitTrie>("m", mc, mbt_lists, cb);
    bst = std::make_unique<BinarySearchTree>("b", BstConfig{}, bst_lists,
                                             cb);
  }

  void insert(SegmentPrefix p, u16 label, Priority pr) {
    prio[label] = pr;
    mbt->insert(p, Label{label}, log);
    bst->insert(p, Label{label}, log);
  }
  void remove(SegmentPrefix p) {
    mbt->remove(p, log);
    bst->remove(p, log);
  }

  std::vector<u16> lookup_mbt(u16 key) {
    std::vector<u16> out;
    for (Label l : mbt_lists.read_list(mbt->lookup(key, nullptr), nullptr))
      out.push_back(l.value);
    return out;
  }
  std::vector<u16> lookup_bst(u16 key) {
    std::vector<u16> out;
    for (Label l : bst_lists.read_list(bst->lookup(key, nullptr), nullptr))
      out.push_back(l.value);
    return out;
  }
};

struct PlanParam {
  std::vector<unsigned> strides;
  std::vector<u32> capacity;
};

}  // namespace

class EnginePlanEquivalence : public ::testing::TestWithParam<int> {
 protected:
  static PlanParam plan(int idx) {
    switch (idx) {
      case 0: return {{5, 5, 6}, {1, 256, 1024}};
      case 1: return {{4, 4, 4, 4}, {1, 64, 512, 1024}};
      case 2: return {{8, 8}, {1, 512}};
      case 3: return {{2, 7, 7}, {1, 16, 1024}};
      default: return {{6, 5, 5}, {1, 128, 1024}};
    }
  }
};

TEST_P(EnginePlanEquivalence, MbtEqualsBstUnderChurn) {
  // Two completely different structures over the same data must answer
  // identically at every key, for every stride plan, across churn.
  const PlanParam p = plan(GetParam());
  DualRig rig(p.strides, p.capacity);
  Rng rng(static_cast<u64>(GetParam()) * 97 + 5);
  std::vector<SegmentPrefix> live;
  u16 next_label = 0;

  for (int step = 0; step < 80; ++step) {
    if (!live.empty() && rng.chance(0.3)) {
      const usize i = rng.below(live.size());
      rig.remove(live[i]);
      live.erase(live.begin() + static_cast<i64>(i));
    } else {
      const auto pre = SegmentPrefix::make(
          static_cast<u16>(rng.next()), static_cast<u8>(rng.below(17)));
      if (std::find(live.begin(), live.end(), pre) != live.end()) continue;
      rig.insert(pre, next_label, static_cast<Priority>(rng.below(40)));
      ++next_label;
      live.push_back(pre);
    }
    if (step % 10 == 9) {
      for (int k = 0; k < 64; ++k) {
        const u16 key = static_cast<u16>(rng.next());
        ASSERT_EQ(rig.lookup_mbt(key), rig.lookup_bst(key))
            << "plan " << GetParam() << " key " << key;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Plans, EnginePlanEquivalence,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(RuleFilterChurn, RandomInsertDeleteLookupProperty) {
  // The filter must behave exactly like a map<Key68, RuleEntry> under a
  // random operation stream, including tombstone interactions.
  core::RuleFilter f("f", 512, 64, 99);
  std::map<std::pair<u8, u64>, core::RuleEntry> shadow;
  Rng rng(123);
  hw::CommandLog log;

  auto random_key = [&] {
    // Small key space so deletes/reinserts collide with history.
    return Key68{static_cast<u8>(rng.below(2)), rng.below(300)};
  };

  for (int step = 0; step < 4000; ++step) {
    const Key68 k = random_key();
    const auto sk = std::make_pair(k.hi4(), k.lo64());
    const double dice = rng.uniform();
    if (dice < 0.45) {
      if (!shadow.contains(sk) && shadow.size() < 256) {
        const core::RuleEntry e{RuleId{static_cast<u32>(rng.below(1000))},
                                static_cast<Priority>(rng.below(1000)),
                                static_cast<u32>(rng.below(1000))};
        f.insert(k, e, log);
        shadow.emplace(sk, e);
      }
    } else if (dice < 0.7) {
      if (shadow.contains(sk)) {
        f.remove(k, log);
        shadow.erase(sk);
      }
    } else {
      const auto got = f.lookup(k, nullptr);
      const auto it = shadow.find(sk);
      ASSERT_EQ(got.has_value(), it != shadow.end()) << "step " << step;
      if (got) {
        EXPECT_EQ(*got, it->second);
      }
    }
  }
  EXPECT_EQ(f.size(), shadow.size());
  // Final full sweep.
  for (const auto& [sk, e] : shadow) {
    const auto got = f.lookup(Key68{sk.first, sk.second}, nullptr);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, e);
  }
}

TEST(Key68Property, MatchesWideReference) {
  // shifted_in over random field sequences must equal 128-bit shifts.
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    Key68 k;
    unsigned __int128 ref = 0;
    unsigned used = 0;
    while (used < 68) {
      const unsigned w = std::min<unsigned>(
          static_cast<unsigned>(rng.between(1, 17)), 68 - used);
      const u64 field = rng.next() & mask_low(w);
      k = k.shifted_in(field, w);
      ref = (ref << w) | field;
      used += w;
    }
    EXPECT_EQ(k.lo64(), static_cast<u64>(ref));
    EXPECT_EQ(k.hi4(), static_cast<u8>((ref >> 64) & 0xF));
  }
}

TEST(SegmentProperty, HiLoSegmentsPartitionEveryPrefix) {
  // For every prefix length, (hi, lo) segment matching of a random
  // address must equal whole-prefix matching.
  Rng rng(31);
  for (int trial = 0; trial < 5000; ++trial) {
    const u8 len = static_cast<u8>(rng.below(33));
    const auto p = ruleset::IpPrefix::make(static_cast<u32>(rng.next()),
                                           len);
    const u32 addr = rng.chance(0.5)
                         ? (p.value | (static_cast<u32>(rng.next()) &
                                       static_cast<u32>(
                                           mask_low(32u - len))))
                         : static_cast<u32>(rng.next());
    const bool whole = p.matches(addr);
    const bool split = p.hi_segment().matches(ip_hi16(addr)) &&
                       p.lo_segment().matches(ip_lo16(addr));
    ASSERT_EQ(whole, split)
        << "prefix " << p.value << "/" << unsigned{len} << " addr "
        << addr;
  }
}

TEST(ListStoreProperty, RefcountNeverLeaksUnderChurn) {
  LabelListStore s("s", 512, kIpLabelBits);
  hw::CommandLog log;
  Rng rng(17);
  std::vector<std::pair<ListRef, std::vector<Label>>> live;
  for (int step = 0; step < 3000; ++step) {
    if (!live.empty() && rng.chance(0.5)) {
      const usize i = rng.below(live.size());
      // Content must still read back before release.
      ASSERT_EQ(s.read_list(live[i].first, nullptr), live[i].second);
      s.release(live[i].first);
      live.erase(live.begin() + static_cast<i64>(i));
    } else {
      std::vector<Label> list;
      const usize len = 1 + rng.below(4);
      for (usize j = 0; j < len; ++j) {
        list.push_back(Label{static_cast<u16>(rng.below(64))});
      }
      try {
        const ListRef r = s.acquire(list, log);
        live.emplace_back(r, std::move(list));
      } catch (const CapacityError&) {
        // fine under churn with a tiny store
      }
    }
  }
  for (auto& [r, list] : live) {
    s.release(r);
  }
  EXPECT_EQ(s.live_words(), 0u);
  EXPECT_EQ(s.distinct_lists(), 0u);
  EXPECT_EQ(s.total_references(), 0u);
}
