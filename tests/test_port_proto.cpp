// Unit tests for the port register file (Table IV semantics) and the
// protocol LUT.
#include <gtest/gtest.h>

#include "alg/port_registers.hpp"
#include "alg/protocol_lut.hpp"
#include "common/error.hpp"

using namespace pclass;
using namespace pclass::alg;
using pclass::ruleset::PortRange;
using pclass::ruleset::ProtoMatch;

namespace {
struct PortRig {
  PortRegisterFile regs{"p", {}};
  hw::CommandLog log;
  void add(u16 lo, u16 hi, u16 label) {
    regs.insert(PortRange::make(lo, hi), Label{label}, log);
  }
  std::vector<u16> find(u16 port) {
    std::vector<u16> out;
    hw::CycleRecorder rec;
    for (Label l : regs.lookup(port, &rec)) out.push_back(l.value);
    return out;
  }
};
}  // namespace

TEST(PortRegisters, TableIvExample) {
  // Table IV: A = [0,65535] (range), B = 7812 exact, C = [7810,7820].
  // "for an input packet with a destination port field equal to 7812,
  //  the labels of Port lookup will be ordered as B, C and A."
  PortRig rig;
  rig.add(0, 65535, 0);      // A
  rig.add(7812, 7812, 1);    // B
  rig.add(7810, 7820, 2);    // C
  EXPECT_EQ(rig.find(7812), (std::vector<u16>{1, 2, 0}));  // B, C, A
  EXPECT_EQ(rig.find(7815), (std::vector<u16>{2, 0}));     // C, A
  EXPECT_EQ(rig.find(80), std::vector<u16>{0});            // A only
}

TEST(PortRegisters, ExactBeforeAnyRange) {
  PortRig rig;
  rig.add(100, 100, 5);
  rig.add(99, 101, 6);  // tighter than anything except the exact
  EXPECT_EQ(rig.find(100), (std::vector<u16>{5, 6}));
}

TEST(PortRegisters, TightnessOrderingAmongRanges) {
  PortRig rig;
  rig.add(0, 1000, 1);
  rig.add(400, 600, 2);
  rig.add(450, 550, 3);
  EXPECT_EQ(rig.find(500), (std::vector<u16>{3, 2, 1}));
}

TEST(PortRegisters, LookupCostIsFixed) {
  PortRig rig;
  for (u16 i = 0; i < 50; ++i) {
    rig.add(static_cast<u16>(i * 100), static_cast<u16>(i * 100 + 50), i);
  }
  hw::CycleRecorder rec;
  (void)rig.regs.lookup(123, &rec);
  EXPECT_EQ(rec.cycles(), 2u);           // §V.B: two clock cycles
  EXPECT_EQ(rec.memory_accesses(), 0u);  // registers, not memory
}

TEST(PortRegisters, RemoveFreesSlot) {
  PortRig rig;
  rig.add(80, 80, 1);
  rig.regs.remove(PortRange::exact(80), rig.log);
  EXPECT_TRUE(rig.find(80).empty());
  // Slot reused.
  rig.add(443, 443, 2);
  EXPECT_EQ(rig.regs.registers().used_count(), 1u);
}

TEST(PortRegisters, DuplicateAndUnknownThrow) {
  PortRig rig;
  rig.add(80, 80, 1);
  EXPECT_THROW(rig.regs.insert(PortRange::exact(80), Label{2}, rig.log),
               InternalError);
  EXPECT_THROW(rig.regs.remove(PortRange::exact(81), rig.log),
               InternalError);
}

TEST(PortRegisters, CapacityError) {
  PortRegistersConfig small;
  small.count = 2;
  PortRegisterFile regs("p", small);
  hw::CommandLog log;
  regs.insert(PortRange::exact(1), Label{0}, log);
  regs.insert(PortRange::exact(2), Label{1}, log);
  EXPECT_THROW(regs.insert(PortRange::exact(3), Label{2}, log),
               CapacityError);
}

TEST(PortRegisters, ClearResets) {
  PortRig rig;
  rig.add(80, 80, 1);
  rig.add(0, 65535, 2);
  rig.regs.clear(rig.log);
  EXPECT_TRUE(rig.find(80).empty());
  EXPECT_EQ(rig.regs.range_count(), 0u);
}

TEST(PortRegisters, WildcardAlwaysLast) {
  PortRig rig;
  rig.add(0, 65535, 9);
  rig.add(1024, 65535, 3);
  rig.add(8080, 8080, 4);
  EXPECT_EQ(rig.find(8080), (std::vector<u16>{4, 3, 9}));
}

// ---- Protocol LUT ----

namespace {
struct ProtoRig {
  ProtocolLut lut{"pr"};
  hw::CommandLog log;
  std::vector<u16> find(u8 proto) {
    std::vector<u16> out;
    hw::CycleRecorder rec;
    for (Label l : lut.lookup(proto, &rec)) out.push_back(l.value);
    return out;
  }
};
}  // namespace

TEST(ProtocolLut, ExactThenWildcardOrder) {
  ProtoRig rig;
  rig.lut.insert(ProtoMatch::exact(6), Label{1}, rig.log);
  rig.lut.insert(ProtoMatch::any(), Label{2}, rig.log);
  // §III.C.1: exact label first.
  EXPECT_EQ(rig.find(6), (std::vector<u16>{1, 2}));
  EXPECT_EQ(rig.find(17), std::vector<u16>{2});  // wildcard only
}

TEST(ProtocolLut, SingleAccessLookup) {
  ProtoRig rig;
  rig.lut.insert(ProtoMatch::exact(6), Label{0}, rig.log);
  hw::CycleRecorder rec;
  (void)rig.lut.lookup(6, &rec);
  EXPECT_EQ(rec.memory_accesses(), 1u);  // §V.B: single clock cycle
  EXPECT_EQ(rec.cycles(), 1u);
}

TEST(ProtocolLut, WildcardCostsOneRegisterWrite) {
  ProtoRig rig;
  rig.lut.insert(ProtoMatch::any(), Label{3}, rig.log);
  EXPECT_EQ(rig.log.size(), 1u);  // not 256 table writes
  EXPECT_EQ(rig.find(200), std::vector<u16>{3});
}

TEST(ProtocolLut, RemoveAndErrors) {
  ProtoRig rig;
  rig.lut.insert(ProtoMatch::exact(17), Label{1}, rig.log);
  EXPECT_THROW(rig.lut.insert(ProtoMatch::exact(17), Label{2}, rig.log),
               InternalError);
  rig.lut.remove(ProtoMatch::exact(17), rig.log);
  EXPECT_TRUE(rig.find(17).empty());
  EXPECT_THROW(rig.lut.remove(ProtoMatch::exact(17), rig.log),
               InternalError);
  EXPECT_THROW(rig.lut.remove(ProtoMatch::any(), rig.log), InternalError);
}

TEST(ProtocolLut, ClearResetsBoth) {
  ProtoRig rig;
  rig.lut.insert(ProtoMatch::exact(6), Label{1}, rig.log);
  rig.lut.insert(ProtoMatch::any(), Label{2}, rig.log);
  rig.lut.clear(rig.log);
  EXPECT_TRUE(rig.find(6).empty());
}

TEST(ProtocolLut, MissWithoutRules) {
  ProtoRig rig;
  EXPECT_TRUE(rig.find(6).empty());
}
