// Unit + property tests for the range-vector hash engine (the
// incremental-update IP backend): signature bucketing, leaf-pushed
// covering lists, in-place add/remove/modify, cluster repair under
// collisions, batch/scalar identity and the classifier-level epoch
// contract (an RVH bucket update must never let the probe memo serve a
// stale verdict).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "alg/range_vector_hash.hpp"
#include "baseline/linear_search.hpp"
#include "common/error.hpp"
#include "common/random.hpp"
#include "core/classifier.hpp"
#include "workload/profile.hpp"
#include "workload/ruleset_synth.hpp"
#include "workload/trace_synth.hpp"

using namespace pclass;
using namespace pclass::alg;
using pclass::ruleset::SegmentPrefix;

namespace {

struct Rig {
  std::map<u16, Priority> prio;
  LabelListStore lists{"lists", 4096, kIpLabelBits};
  std::unique_ptr<RangeVectorHash> rvh;
  hw::CommandLog log;

  explicit Rig(RvhConfig c = {}) {
    rvh = std::make_unique<RangeVectorHash>(
        "t", c, lists, [this](Label l) {
          const auto it = prio.find(l.value);
          return it == prio.end() ? kNoPriority : it->second;
        });
  }

  void insert(u16 value, u8 len, u16 label, Priority p) {
    prio[label] = p;
    rvh->insert(SegmentPrefix::make(value, len), Label{label}, log);
  }
  std::vector<u16> lookup(u16 key) {
    hw::CycleRecorder rec;
    std::vector<u16> out;
    for (Label l : lists.read_list(rvh->lookup(key, &rec), &rec)) {
      out.push_back(l.value);
    }
    return out;
  }
};

struct Oracle {
  struct Entry {
    SegmentPrefix p;
    u16 label;
    Priority prio;
  };
  std::vector<Entry> entries;
  std::vector<u16> lookup(u16 key) const {
    std::vector<Entry> hit;
    for (const Entry& e : entries) {
      if (e.p.matches(key)) hit.push_back(e);
    }
    std::sort(hit.begin(), hit.end(), [](const Entry& a, const Entry& b) {
      return a.prio != b.prio ? a.prio < b.prio : a.label < b.label;
    });
    std::vector<u16> out;
    for (const Entry& e : hit) out.push_back(e.label);
    return out;
  }
};

}  // namespace

TEST(Rvh, EmptyMisses) {
  Rig rig;
  EXPECT_TRUE(rig.lookup(0x1234).empty());
  EXPECT_EQ(rig.rvh->entry_count(), 0u);
  EXPECT_EQ(rig.rvh->live_length_count(), 0u);
}

TEST(Rvh, SinglePrefix) {
  Rig rig;
  rig.insert(0xAB00, 8, 1, 0);
  EXPECT_EQ(rig.lookup(0xAB42), std::vector<u16>{1});
  EXPECT_TRUE(rig.lookup(0xAC00).empty());
  EXPECT_TRUE(rig.lookup(0x0000).empty());
  EXPECT_EQ(rig.rvh->entry_count(), 1u);
}

TEST(Rvh, SignatureBucketingTracksDistinctLengths) {
  Rig rig;
  // Three prefixes over two signatures (lengths 8 and 12): one table
  // entry per prefix, one probe group per distinct live length.
  rig.insert(0xAB00, 8, 1, 1);
  rig.insert(0xCD00, 8, 2, 2);
  rig.insert(0xABC0, 12, 3, 3);
  EXPECT_EQ(rig.rvh->entry_count(), 3u);
  EXPECT_EQ(rig.rvh->prefix_count(), 3u);
  EXPECT_EQ(rig.rvh->live_length_count(), 2u);
  rig.rvh->remove(SegmentPrefix::make(0xABC0, 12), rig.log);
  EXPECT_EQ(rig.rvh->live_length_count(), 1u);
  rig.rvh->remove(SegmentPrefix::make(0xAB00, 8), rig.log);
  EXPECT_EQ(rig.rvh->live_length_count(), 1u);  // 0xCD00/8 keeps length 8
}

TEST(Rvh, AnchorCarriesFullCoveringList) {
  Rig rig;
  rig.insert(0, 0, 10, 5);
  rig.insert(0xAB00, 8, 11, 2);
  rig.insert(0xABC0, 12, 12, 8);
  // First (longest) hit already carries ancestors, priority-ordered.
  EXPECT_EQ(rig.lookup(0xABC5), (std::vector<u16>{11, 10, 12}));
  EXPECT_EQ(rig.lookup(0xAB00), (std::vector<u16>{11, 10}));
  EXPECT_EQ(rig.lookup(0x0001), std::vector<u16>{10});
}

TEST(Rvh, InsertLeafPushesIntoDescendants) {
  Rig rig;
  rig.insert(0xABC0, 12, 12, 8);
  EXPECT_EQ(rig.lookup(0xABC5), std::vector<u16>{12});
  // A later, shorter ancestor must appear in the existing descendant's
  // covering list — the incremental leaf-push path.
  rig.insert(0xAB00, 8, 11, 2);
  EXPECT_EQ(rig.lookup(0xABC5), (std::vector<u16>{11, 12}));
  rig.insert(0, 0, 10, 5);
  EXPECT_EQ(rig.lookup(0xABC5), (std::vector<u16>{11, 10, 12}));
}

TEST(Rvh, RemoveRestores) {
  Rig rig;
  rig.insert(0xAB00, 8, 1, 1);
  rig.insert(0xABCD, 16, 2, 2);
  rig.rvh->remove(SegmentPrefix::make(0xABCD, 16), rig.log);
  EXPECT_EQ(rig.lookup(0xABCD), std::vector<u16>{1});
  rig.rvh->remove(SegmentPrefix::make(0xAB00, 8), rig.log);
  EXPECT_TRUE(rig.lookup(0xABCD).empty());
  EXPECT_EQ(rig.lists.live_words(), 0u);
  EXPECT_EQ(rig.rvh->entry_count(), 0u);
}

TEST(Rvh, RemoveAncestorDropsItFromDescendantLists) {
  Rig rig;
  rig.insert(0xAB00, 8, 11, 2);
  rig.insert(0xABC0, 12, 12, 8);
  rig.rvh->remove(SegmentPrefix::make(0xAB00, 8), rig.log);
  EXPECT_EQ(rig.lookup(0xABC5), std::vector<u16>{12});
  EXPECT_TRUE(rig.lookup(0xAB05).empty());
}

TEST(Rvh, ClusterRepairUnderHeavyCollision) {
  // depth 8 with 6 same-length prefixes: dense probe clusters, so
  // removals exercise the backward-shift repair; every survivor must
  // stay reachable (no tombstones, no broken probe chains).
  RvhConfig tiny;
  tiny.table_depth = 8;
  Rig rig(tiny);
  const std::array<u16, 6> vals = {0x1100, 0x2200, 0x3300,
                                   0x4400, 0x5500, 0x6600};
  for (usize i = 0; i < vals.size(); ++i) {
    rig.insert(vals[i], 8, static_cast<u16>(i), static_cast<Priority>(i));
  }
  for (usize removed = 0; removed < vals.size(); ++removed) {
    rig.rvh->remove(SegmentPrefix::make(vals[removed], 8), rig.log);
    for (usize i = 0; i < vals.size(); ++i) {
      const auto got = rig.lookup(static_cast<u16>(vals[i] | 0x42));
      if (i <= removed) {
        EXPECT_TRUE(got.empty()) << "removed " << removed << " probe " << i;
      } else {
        EXPECT_EQ(got, std::vector<u16>{static_cast<u16>(i)})
            << "removed " << removed << " probe " << i;
      }
    }
  }
  EXPECT_EQ(rig.rvh->entry_count(), 0u);
}

TEST(Rvh, RefreshReorders) {
  Rig rig;
  rig.insert(0xAB00, 8, 1, 5);
  rig.insert(0, 0, 2, 9);
  EXPECT_EQ(rig.lookup(0xAB42), (std::vector<u16>{1, 2}));
  rig.prio[2] = 1;
  rig.rvh->refresh(SegmentPrefix::make(0, 0), rig.log);
  EXPECT_EQ(rig.lookup(0xAB42), (std::vector<u16>{2, 1}));
}

TEST(Rvh, DuplicateAndUnknownThrow) {
  Rig rig;
  rig.insert(0x1200, 8, 1, 0);
  EXPECT_THROW(
      rig.rvh->insert(SegmentPrefix::make(0x1200, 8), Label{2}, rig.log),
      InternalError);
  EXPECT_THROW(rig.rvh->remove(SegmentPrefix::make(0x3400, 8), rig.log),
               InternalError);
}

TEST(Rvh, CapacityError) {
  RvhConfig tiny;
  tiny.table_depth = 2;
  Rig rig(tiny);
  rig.insert(0x1000, 4, 0, 0);
  rig.insert(0x8000, 4, 1, 1);
  EXPECT_THROW(rig.insert(0x4000, 4, 2, 2), CapacityError);
}

TEST(Rvh, LookupCostScalesWithLiveLengths) {
  Rig rig;
  rig.insert(0xAB00, 8, 1, 1);
  rig.insert(0xABC0, 12, 2, 2);
  // A miss probes every live length group: >= one read per group.
  hw::CycleRecorder rec;
  (void)rig.rvh->lookup(0x0100, &rec);
  EXPECT_GE(rec.memory_accesses(), rig.rvh->live_length_count());
  // A hit at the longest length stops at the first group.
  hw::CycleRecorder hit;
  (void)rig.rvh->lookup(0xABC5, &hit);
  EXPECT_GE(hit.memory_accesses(), 1u);
  EXPECT_LE(hit.memory_accesses(), rec.memory_accesses());
}

TEST(Rvh, BatchMatchesScalarVerdictAndCost) {
  Rig rig;
  Rng rng(77);
  std::vector<SegmentPrefix> inserted;
  for (u16 i = 0; i < 30; ++i) {
    const u8 len = static_cast<u8>(rng.below(17));
    const auto p = SegmentPrefix::make(static_cast<u16>(rng.next()), len);
    bool dup = false;
    for (const SegmentPrefix& q : inserted) dup |= q == p;
    if (dup) continue;
    rig.insert(p.value, p.length, i, static_cast<Priority>(rng.below(40)));
    inserted.push_back(p);
  }
  // Batch with duplicate keys: replayed lanes must charge exactly the
  // scalar cost and return the same list.
  std::vector<BatchKey> keys;
  for (u32 slot = 0; slot < 64; ++slot) {
    keys.push_back({static_cast<u32>(rng.next() & 0xFFFF) & ~u32{3}, slot});
  }
  sort_batch_keys(keys);
  std::vector<ListRef> refs(keys.size());
  std::vector<hw::CycleRecorder> recs(keys.size());
  rig.rvh->lookup_batch_into(keys, refs, recs);
  for (const BatchKey& lane : keys) {
    hw::CycleRecorder ref_rec;
    const ListRef want =
        rig.rvh->lookup(static_cast<u16>(lane.key), &ref_rec);
    EXPECT_EQ(refs[lane.slot].addr, want.addr) << "key=" << lane.key;
    EXPECT_EQ(recs[lane.slot].memory_accesses(), ref_rec.memory_accesses())
        << "key=" << lane.key;
    EXPECT_EQ(recs[lane.slot].cycles(), ref_rec.cycles())
        << "key=" << lane.key;
  }
}

class RvhProperty : public ::testing::TestWithParam<u64> {};

TEST_P(RvhProperty, MatchesCoveringOracleWithChurn) {
  Rng rng(GetParam());
  RvhConfig c;
  c.table_depth = 128;  // keep load factor high enough to collide
  Rig rig(c);
  Oracle oracle;
  u16 next_label = 0;
  for (int step = 0; step < 60; ++step) {
    if (!oracle.entries.empty() && rng.chance(0.25)) {
      const usize idx = rng.below(oracle.entries.size());
      rig.rvh->remove(oracle.entries[idx].p, rig.log);
      oracle.entries.erase(oracle.entries.begin() + static_cast<i64>(idx));
      continue;
    }
    const u8 len = static_cast<u8>(rng.below(17));
    const auto p = SegmentPrefix::make(static_cast<u16>(rng.next()), len);
    bool dup = false;
    for (const auto& e : oracle.entries) dup |= e.p == p;
    if (dup) continue;
    const u16 label = next_label++;
    const Priority prio = static_cast<Priority>(rng.below(50));
    rig.insert(p.value, p.length, label, prio);
    oracle.entries.push_back({p, label, prio});
  }
  std::vector<u16> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(static_cast<u16>(rng.next()));
  for (const auto& e : oracle.entries) {
    keys.push_back(e.p.value);
    keys.push_back(static_cast<u16>(e.p.value | mask_low(16u - e.p.length)));
  }
  for (u16 k : keys) {
    EXPECT_EQ(rig.lookup(k), oracle.lookup(k)) << "key=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RvhProperty,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

// ---- classifier-level epoch contract (the satellite-3 audit's test) ------

// Every RVH mutation is an in-place bucket update, not a rebuild — if
// any of them skipped the device-epoch bump, a persistent probe memo
// would keep serving the pre-update combination. Classify with a
// persistent memo, mutate, classify the same headers again: verdicts
// must track a freshly built LinearSearch oracle and the epoch must
// move on every mutation.
TEST(RvhEpoch, InPlaceBucketUpdateNeverServesStaleMemoEntry) {
  workload::RulesetProfile rp = workload::RulesetProfile::by_family(
      "fw", 64, /*seed=*/0xE50C);
  ruleset::RuleSet rules = workload::synthesize(rp);
  net::Trace trace;
  {
    workload::TraceSynthesizer ts(
        rules, workload::TraceProfile::zipf_heavy(256, 0xE50C ^ 1));
    trace = ts.generate();
  }

  core::ClassifierConfig cfg =
      core::ClassifierConfig::for_scale(rules.size() + 64);
  cfg.combine_mode = core::CombineMode::kCrossProduct;
  cfg.ip_algorithm = core::IpAlgorithm::kRvh;
  cfg.batch_probe_memo = true;
  cfg.batch_memo_persistent = true;
  cfg.batch_memo_slots = 16;  // maximal collision pressure
  cfg.batch_path_policy = core::PathPolicy::kForcePhase2;
  core::ConfigurableClassifier clf(cfg);
  clf.add_rules(rules);

  core::BatchScratch scratch;
  std::vector<net::FiveTuple> in;
  std::vector<core::ClassifyResult> out;
  for (const net::TraceEntry& e : trace) in.push_back(e.header);
  out.assign(in.size(), {});

  const auto check_against_oracle = [&]() {
    ruleset::RuleSet rs("oracle");
    for (const ruleset::Rule& r : clf.installed_rules()) rs.add_verbatim(r);
    const baseline::LinearSearch oracle(rs);
    clf.classify_batch(in, out, scratch);
    for (usize k = 0; k < in.size(); ++k) {
      const ruleset::Rule* want = oracle.classify(in[k], nullptr);
      ASSERT_EQ(out[k].match.has_value(), want != nullptr) << "pkt " << k;
      if (want != nullptr) {
        ASSERT_EQ(out[k].match->rule, want->id) << "pkt " << k;
      }
    }
  };

  check_against_oracle();  // warm the memo
  Rng rng(0xE50C ^ 2);
  u64 epoch = clf.device_epoch();
  for (int round = 0; round < 8; ++round) {
    const auto installed = clf.installed_rules();
    ASSERT_GT(installed.size(), 8u);
    const ruleset::Rule victim = installed[rng.below(installed.size())];
    if (round % 2 == 0) {
      clf.remove_rule(victim.id);
    } else {
      clf.modify_rule(victim.id,
                      ruleset::Action{static_cast<u32>(rng.below(0xFFFF))});
    }
    // The audit's pin: an RVH in-place update bumps the epoch exactly
    // like the trie paths do.
    ASSERT_GT(clf.device_epoch(), epoch) << "round " << round;
    epoch = clf.device_epoch();
    check_against_oracle();
  }
}
