// Unit tests for src/hwsim: words, memories, register files, pipeline
// timing, shared blocks (Fig. 5) and the update bus (§V.A).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hwsim/memory.hpp"
#include "hwsim/pipeline.hpp"
#include "hwsim/register_file.hpp"
#include "hwsim/shared_memory.hpp"
#include "hwsim/synthesis.hpp"
#include "hwsim/update_bus.hpp"
#include "hwsim/word.hpp"

using namespace pclass;
using namespace pclass::hw;

TEST(Word, GetSetWithinLow64) {
  Word w;
  w.set(4, 8, 0xAB);
  EXPECT_EQ(w.get(4, 8), 0xABu);
  EXPECT_EQ(w.lo, u64{0xAB} << 4);
  EXPECT_EQ(w.hi, 0u);
}

TEST(Word, GetSetStraddlesBoundary) {
  Word w;
  w.set(60, 8, 0xFF);  // bits 60..67
  EXPECT_EQ(w.get(60, 8), 0xFFu);
  EXPECT_EQ(w.lo >> 60, 0xFu);
  EXPECT_EQ(w.hi & 0xFu, 0xFu);
}

TEST(Word, GetSetHighHalf) {
  Word w;
  w.set(100, 16, 0x1234);
  EXPECT_EQ(w.get(100, 16), 0x1234u);
  EXPECT_EQ(w.lo, 0u);
}

TEST(Word, PackerUnpackerRoundTrip) {
  WordPacker p;
  p.push(0x5, 3).push(0x1FFF, 13).push(0x1, 1).push(0xDEAD, 16);
  EXPECT_EQ(p.bits_used(), 33u);
  WordUnpacker u(p.word());
  EXPECT_EQ(u.pull(3), 0x5u);
  EXPECT_EQ(u.pull(13), 0x1FFFu);
  EXPECT_EQ(u.pull(1), 0x1u);
  EXPECT_EQ(u.pull(16), 0xDEADu);
}

TEST(Memory, ConstructionValidation) {
  EXPECT_THROW(Memory("m", 0, 8), ConfigError);
  EXPECT_THROW(Memory("m", 8, 0), ConfigError);
  EXPECT_THROW(Memory("m", 8, 129), ConfigError);
  EXPECT_NO_THROW(Memory("m", 8, 128));
}

TEST(Memory, ReadWriteAndCounters) {
  Memory m("m", 16, 32, 2);
  CycleRecorder rec;
  m.write(3, Word{0xAA, 0});
  EXPECT_EQ(m.read(3, &rec).lo, 0xAAu);
  // Reads are metered per-recorder only (no shared counters on the
  // lookup path — dataplane workers must not contend on a cache line).
  EXPECT_EQ(rec.cycles(), 2u);
  EXPECT_EQ(rec.memory_accesses(), 1u);
  EXPECT_EQ(m.stats().writes, 1u);
}

TEST(Memory, NullRecorderReadsAreFree) {
  Memory m("m", 16, 32);
  m.write(0, Word{1, 0});
  CycleRecorder rec;
  (void)m.read(0, nullptr);  // controller shadow read: not metered
  (void)m.read(0, &rec);
  EXPECT_EQ(rec.memory_accesses(), 1u);  // only the recorded read counts
}

TEST(Memory, OutOfRangeThrows) {
  Memory m("m", 4, 8);
  CycleRecorder rec;
  EXPECT_THROW((void)m.read(4, &rec), ConfigError);
  EXPECT_THROW(m.write(4, Word{}), ConfigError);
}

TEST(Memory, UsedWordsHighWaterMark) {
  Memory m("m", 100, 10);
  EXPECT_EQ(m.used_bits(), 0u);
  m.write(10, Word{1, 0});
  EXPECT_EQ(m.used_words(), 11u);
  EXPECT_EQ(m.used_bits(), 110u);
  m.write(5, Word{1, 0});
  EXPECT_EQ(m.used_words(), 11u);  // high-water, not count
  m.clear();
  EXPECT_EQ(m.used_words(), 0u);
  EXPECT_EQ(m.read(10, nullptr).lo, 0u);
}

TEST(Memory, CapacityBits) {
  Memory m("m", 1024, 33);
  EXPECT_EQ(m.capacity_bits(), 1024u * 33u);
}

TEST(RegisterFile, WriteReadAndBits) {
  RegisterFile rf("rf", 8, 40, 2);
  rf.write(2, Word{0x123, 0});
  EXPECT_EQ(rf.reg(2).lo, 0x123u);
  EXPECT_EQ(rf.total_bits(), 8u * 40u);
  EXPECT_EQ(rf.used_count(), 3u);
  CycleRecorder rec;
  rf.charge_lookup(rec);
  EXPECT_EQ(rec.cycles(), 2u);
  EXPECT_EQ(rec.memory_accesses(), 0u);  // registers are not memory
}

TEST(RegisterFile, Validation) {
  EXPECT_THROW(RegisterFile("rf", 0, 8), ConfigError);
  RegisterFile rf("rf", 4, 8);
  EXPECT_THROW(rf.write(4, Word{}), ConfigError);
  EXPECT_THROW((void)rf.reg(4), ConfigError);
}

TEST(Pipeline, LatencyAndII) {
  Pipeline p({{"a", 1, 1}, {"b", 7, 1}, {"c", 2, 1}, {"d", 1, 1}});
  EXPECT_EQ(p.latency(), 11u);
  EXPECT_EQ(p.initiation_interval(), 1u);
}

TEST(Pipeline, AnalyticMatchesSimulationFullyPipelined) {
  Pipeline p({{"split", 1, 1}, {"lookup", 7, 1}, {"combine", 2, 1},
              {"rule", 1, 1}});
  for (u64 n : {u64{1}, u64{2}, u64{10}, u64{1000}}) {
    const auto a = p.run(n);
    const auto s = p.simulate(n);
    EXPECT_EQ(a.total_cycles, s.total_cycles) << "n=" << n;
  }
}

TEST(Pipeline, AnalyticMatchesSimulationBlockingStage) {
  // BST-style: the field-lookup stage is not pipelined (II = latency-ish).
  Pipeline p({{"split", 1, 1}, {"lookup", 17, 16}, {"combine", 2, 1},
              {"rule", 1, 1}});
  for (u64 n : {u64{1}, u64{3}, u64{100}}) {
    EXPECT_EQ(p.run(n).total_cycles, p.simulate(n).total_cycles)
        << "n=" << n;
  }
  EXPECT_EQ(p.initiation_interval(), 16u);
}

TEST(Pipeline, SteadyStateThroughputApproachesII) {
  Pipeline p({{"a", 1, 1}, {"b", 7, 1}, {"c", 2, 1}});
  const auto t = p.simulate(10000);
  EXPECT_NEAR(t.cycles_per_packet, 1.0, 0.01);
}

TEST(Pipeline, Validation) {
  EXPECT_THROW(Pipeline({}), ConfigError);
  EXPECT_THROW(Pipeline({{"a", 0, 1}}), ConfigError);
  EXPECT_THROW(Pipeline({{"a", 1, 0}}), ConfigError);
  EXPECT_THROW(Pipeline({{"a", 2, 3}}), ConfigError);  // II > latency
}

TEST(Pipeline, ZeroPackets) {
  Pipeline p({{"a", 3, 1}});
  EXPECT_EQ(p.run(0).total_cycles, 0u);
  EXPECT_EQ(p.simulate(0).total_cycles, 0u);
}

TEST(SharedMemory, BindFlushesOnRoleChange) {
  SharedMemory sm("sh", 64, 33);
  sm.bind(SharedRole::kMbtLevel2);
  sm.as(SharedRole::kMbtLevel2).write(1, Word{42, 0});
  EXPECT_EQ(sm.as(SharedRole::kMbtLevel2).read(1, nullptr).lo, 42u);
  sm.bind(SharedRole::kBstNodes);
  EXPECT_EQ(sm.as(SharedRole::kBstNodes).read(1, nullptr).lo, 0u);  // flushed
}

TEST(SharedMemory, RebindSameRoleKeepsContents) {
  SharedMemory sm("sh", 64, 33);
  sm.bind(SharedRole::kBstNodes);
  sm.as(SharedRole::kBstNodes).write(0, Word{7, 0});
  sm.bind(SharedRole::kBstNodes);
  EXPECT_EQ(sm.as(SharedRole::kBstNodes).read(0, nullptr).lo, 7u);
}

TEST(SharedMemory, WrongRoleAccessThrows) {
  SharedMemory sm("sh", 64, 33);
  sm.bind(SharedRole::kMbtLevel2);
  EXPECT_THROW((void)sm.as(SharedRole::kBstNodes), ConfigError);
  EXPECT_THROW(sm.bind(SharedRole::kUnbound), ConfigError);
}

TEST(UpdateBus, CommandLogAppliesAndMeters) {
  Memory m("m", 8, 16);
  RegisterFile rf("rf", 2, 16);
  CommandLog log;
  log.memory_write(m, 3, Word{9, 0});
  log.register_write(rf, 1, Word{5, 0});
  log.hash_compute("h");
  log.config_toggle("IPalg_s", 1);
  EXPECT_EQ(m.read(3, nullptr).lo, 9u);
  EXPECT_EQ(rf.reg(1).lo, 5u);
  EXPECT_EQ(log.size(), 4u);

  UpdateBus bus;
  for (const auto& cmd : log.take()) {
    bus.charge(cmd);
  }
  EXPECT_EQ(bus.stats().cycles, 4u);
  EXPECT_EQ(bus.stats().memory_writes, 1u);
  EXPECT_EQ(bus.stats().register_writes, 1u);
  EXPECT_EQ(bus.stats().hash_computes, 1u);
  EXPECT_EQ(bus.stats().config_toggles, 1u);
}

TEST(UpdateBus, StatsAccumulate) {
  UpdateStats a{1, 1, 1, 0, 0, 0}, b{2, 2, 0, 1, 1, 0};
  a += b;
  EXPECT_EQ(a.commands, 3u);
  EXPECT_EQ(a.cycles, 3u);
  EXPECT_EQ(a.memory_writes, 1u);
  EXPECT_EQ(a.register_writes, 1u);
}

TEST(Synthesis, MemoryBitsAreMeasured) {
  SynthesisModel sm;
  Memory m1("a", 1024, 32), m2("b", 256, 64);
  sm.add_memory(m1);
  sm.add_memory(m2);
  const auto r = sm.report();
  EXPECT_EQ(r.block_memory_bits, 1024u * 32 + 256u * 64);
  EXPECT_GT(r.logic_alms, 0u);
  EXPECT_LT(r.memory_utilization(), 1.0);
}

TEST(Synthesis, RegistersIncludePipelineStagesAndLogicFFs) {
  LogicCoefficients coeff;
  SynthesisModel sm(coeff);
  RegisterFile rf("rf", 128, 40);
  sm.add_register_file(rf);
  sm.add_pipeline_stages(4, 160);
  const auto r = sm.report();
  // Structural bits plus the calibrated flip-flops-per-ALM share.
  const u64 structural = 128u * 40 + 4u * 160;
  const u64 logic_ffs = static_cast<u64>(
      coeff.regs_per_alm * static_cast<double>(r.logic_alms));
  EXPECT_EQ(r.registers, structural + logic_ffs);
  EXPECT_GT(r.registers, structural);
}

TEST(CycleAggregate, MeanAndMax) {
  CycleAggregate agg;
  CycleRecorder a, b;
  a.charge(10, 2);
  b.charge(20, 4);
  agg.add(a);
  agg.add(b);
  EXPECT_EQ(agg.count(), 2u);
  EXPECT_DOUBLE_EQ(agg.mean_cycles(), 15.0);
  EXPECT_DOUBLE_EQ(agg.mean_accesses(), 3.0);
  EXPECT_EQ(agg.max_cycles(), 20u);
  EXPECT_EQ(agg.max_accesses(), 4u);
}
