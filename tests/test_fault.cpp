/// Tests for the robustness plane (PR 9): FaultPlan spec parsing and
/// round-tripping, FaultInjector fire-exactly-once semantics (worker
/// throw/stall, publisher apply failure, control-connection drop), the
/// publisher's all-or-nothing restore under an injected apply failure,
/// the ticketed FIFO WorkerBudget (grants in strict arrival order, no
/// small-request queue-jumping), and the engine supervisor: dead-worker
/// restart with a healed (error-free) report, permanent failure with
/// replica-mode shard takeover, stall-episode detection, and the
/// conservation ledger (delivered + shed + lost == offered, exactly)
/// on clean and faulted runs alike — capped by a scaled-down run of
/// the chaos scenario itself.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "dataplane/engine.hpp"
#include "dataplane/rule_program.hpp"
#include "fault/fault.hpp"
#include "ruleset/generator.hpp"
#include "ruleset/trace_gen.hpp"
#include "workload/scenario.hpp"
#include "workload/trace_synth.hpp"

using namespace pclass;
using namespace pclass::dataplane;
using pclass::fault::FaultInjector;
using pclass::fault::FaultKind;
using pclass::fault::FaultPlan;
using pclass::fault::InjectedFault;

namespace {

core::ClassifierConfig exact_config(usize scale) {
  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(scale);
  cfg.combine_mode = core::CombineMode::kCrossProduct;
  return cfg;
}

/// A finite fw-like workload pool + installed publisher for the
/// supervisor tests.
struct Fixture {
  ruleset::RuleSet rules;
  net::Trace trace;
  RuleProgramPublisher programs;

  explicit Fixture(usize nrules = 1000, usize packets = 6000, u64 seed = 41)
      : rules(ruleset::make_classbench_like(ruleset::FilterType::kFw, nrules)),
        programs(exact_config(nrules)) {
    ruleset::TraceGenerator tg(rules, {.headers = packets, .seed = seed});
    trace = tg.generate();
    programs.install_ruleset(rules);
  }

  [[nodiscard]] TrafficPool pool() const {
    return TrafficPool::from_trace(trace, /*materialize=*/false);
  }
};

}  // namespace

// ---- FaultPlan spec -------------------------------------------------------

TEST(FaultPlan, ParseRoundTripsEveryEventKind) {
  const std::string spec =
      "throw:w=1@3,stall:w=2@1:ms=250,pubfail:u=2,conndrop:r=7";
  const FaultPlan plan = FaultPlan::parse(spec);
  ASSERT_EQ(plan.events.size(), 4u);

  EXPECT_EQ(plan.events[0].kind, FaultKind::kWorkerThrow);
  EXPECT_EQ(plan.events[0].worker, 1u);
  EXPECT_EQ(plan.events[0].at, 3u);

  EXPECT_EQ(plan.events[1].kind, FaultKind::kWorkerStall);
  EXPECT_EQ(plan.events[1].worker, 2u);
  EXPECT_EQ(plan.events[1].at, 1u);
  EXPECT_EQ(plan.events[1].stall_ms, 250u);

  EXPECT_EQ(plan.events[2].kind, FaultKind::kPublishFail);
  EXPECT_EQ(plan.events[2].at, 2u);

  EXPECT_EQ(plan.events[3].kind, FaultKind::kConnDrop);
  EXPECT_EQ(plan.events[3].at, 7u);

  // Round-trippable: to_string() re-parses to the same schedule.
  EXPECT_EQ(plan.to_string(), spec);
  const FaultPlan again = FaultPlan::parse(plan.to_string());
  ASSERT_EQ(again.events.size(), plan.events.size());
  EXPECT_EQ(again.to_string(), spec);
}

TEST(FaultPlan, EmptySpecIsEmptyPlan) {
  const FaultPlan plan = FaultPlan::parse("");
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.to_string(), "");
}

TEST(FaultPlan, MalformedSpecsThrowParseError) {
  EXPECT_THROW((void)FaultPlan::parse("explode:w=1@1"), ParseError);
  EXPECT_THROW((void)FaultPlan::parse("throw:w=1"), ParseError);
  EXPECT_THROW((void)FaultPlan::parse("throw:1@2"), ParseError);
  EXPECT_THROW((void)FaultPlan::parse("stall:w=0@0"), ParseError);
  EXPECT_THROW((void)FaultPlan::parse("pubfail:r=1"), ParseError);
  EXPECT_THROW((void)FaultPlan::parse("conndrop:u=x"), ParseError);
  EXPECT_THROW((void)FaultPlan::parse("throw:w=@2"), ParseError);
}

// ---- FaultInjector fire-once semantics ------------------------------------

TEST(FaultInjector, WorkerThrowFiresExactlyOnce) {
  FaultInjector inj(FaultPlan::parse("throw:w=0@2"));
  // Not due yet, and the wrong worker never fires.
  EXPECT_NO_THROW(inj.on_worker_batch(0, 0));
  EXPECT_NO_THROW(inj.on_worker_batch(0, 1));
  EXPECT_NO_THROW(inj.on_worker_batch(1, 2));
  EXPECT_THROW(inj.on_worker_batch(0, 2), InjectedFault);
  // Fired: the same (worker, sweep) and every later sweep are clean.
  EXPECT_NO_THROW(inj.on_worker_batch(0, 2));
  EXPECT_NO_THROW(inj.on_worker_batch(0, 3));
  EXPECT_EQ(inj.counters().worker_throws, 1u);
}

TEST(FaultInjector, WorkerThrowMatchesSweepGreaterOrEqual) {
  // A worker restarted past its scheduled sweep must still hit the
  // event (the persistent sweep counter can jump).
  FaultInjector inj(FaultPlan::parse("throw:w=0@2"));
  EXPECT_THROW(inj.on_worker_batch(0, 5), InjectedFault);
  EXPECT_EQ(inj.counters().worker_throws, 1u);
}

TEST(FaultInjector, StallIsAbortAware) {
  std::atomic<bool> abort{true};  // already stopping: stall must cut short
  FaultInjector inj(FaultPlan::parse("stall:w=0@0:ms=2000"));
  inj.set_abort_flag(&abort);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_NO_THROW(inj.on_worker_batch(0, 0));
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_LT(ms, 500) << "2s stall ignored the abort flag";
  EXPECT_EQ(inj.counters().worker_stalls, 1u);
  EXPECT_NO_THROW(inj.on_worker_batch(0, 1));  // fired once
}

TEST(FaultInjector, PublishFailHitsExactApplyIndex) {
  FaultInjector inj(FaultPlan::parse("pubfail:u=1"));
  EXPECT_NO_THROW(inj.on_publisher_apply());              // apply #0
  EXPECT_THROW(inj.on_publisher_apply(), InjectedFault);  // apply #1
  EXPECT_NO_THROW(inj.on_publisher_apply());              // apply #2
  EXPECT_EQ(inj.counters().publish_failures, 1u);
}

TEST(FaultInjector, ConnDropHitsExactRequestIndex) {
  FaultInjector inj(FaultPlan::parse("conndrop:r=2"));
  EXPECT_FALSE(inj.should_drop_request(0));
  EXPECT_FALSE(inj.should_drop_request(1));
  EXPECT_TRUE(inj.should_drop_request(2));
  EXPECT_FALSE(inj.should_drop_request(2));  // fired once
  EXPECT_FALSE(inj.should_drop_request(3));
  EXPECT_EQ(inj.counters().conn_drops, 1u);
}

// ---- publisher restore under an injected apply failure --------------------

TEST(PublisherFault, FailedApplyRestoresStateAndRetrySucceeds) {
  Fixture fx(1000, /*packets=*/64);
  FaultInjector inj(FaultPlan::parse("pubfail:u=0"));
  fx.programs.set_fault_hook([&inj] { inj.on_publisher_apply(); });

  const workload::UpdateStorm storm =
      workload::make_update_storm(fx.rules, /*updates=*/4,
                                  /*first_id=*/60'000, /*seed=*/7);
  const u64 v0 = fx.programs.version();
  const auto first = std::span<const sdn::Message>(storm.schedule.data(), 1);

  // The injected failure surfaces as InjectedFault and must leave the
  // publisher exactly where it was (all-or-nothing contract).
  EXPECT_THROW((void)fx.programs.apply_batch(first), InjectedFault);
  EXPECT_EQ(fx.programs.version(), v0);

  // The event fired; the identical retry goes through and publishes.
  EXPECT_NO_THROW((void)fx.programs.apply_batch(first));
  EXPECT_EQ(fx.programs.version(), v0 + 1);
  EXPECT_EQ(inj.counters().publish_failures, 1u);
}

// ---- ticketed FIFO WorkerBudget -------------------------------------------

TEST(WorkerBudgetFifo, GrantsFollowArrivalOrderStrictly) {
  // Hold 3 of 4 slots, then queue three full-capacity requests one at a
  // time (arrival pinned via waiting()). FIFO means the head request —
  // too big for the single free slot — blocks everyone behind it, and
  // once capacity frees the grants land in exact arrival order. The
  // pre-ticket CV free-for-all would happily serve a later small
  // request first.
  WorkerBudget budget(4);
  ASSERT_EQ(budget.acquire(3), 3u);

  std::mutex mu;
  std::vector<int> order;
  std::vector<std::thread> threads;
  for (int id = 0; id < 3; ++id) {
    threads.emplace_back([&, id] {
      const usize got = budget.acquire(4);  // full capacity: serialized
      {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(id);
      }
      budget.release(got);
    });
    // Pin arrival order: don't launch the next acquirer until this one
    // is ticketed and waiting.
    while (budget.waiting() < static_cast<usize>(id) + 1) {
      std::this_thread::yield();
    }
  }

  // Head-of-line: one slot is free, but nobody may take it — the head
  // wants four.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(order.empty()) << "a queued request jumped the head";
  }
  EXPECT_EQ(budget.waiting(), 3u);

  budget.release(3);
  for (auto& t : threads) t.join();

  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(budget.in_use(), 0u);
  EXPECT_EQ(budget.waiting(), 0u);
  EXPECT_EQ(budget.peak_in_use(), 4u);
}

// ---- supervisor -----------------------------------------------------------

namespace {

SupervisorConfig fast_supervisor() {
  SupervisorConfig sup;
  sup.enabled = true;
  sup.watchdog_interval_ms = 2;
  sup.stall_deadline_ms = 500;
  sup.max_restarts = 2;
  sup.restart_backoff_ms = 1;
  return sup;
}

}  // namespace

TEST(Supervisor, RestartsDeadWorkerAndHealsTheRun) {
  Fixture fx;
  FaultInjector inj(FaultPlan::parse("throw:w=0@0"));
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.batch_size = 32;
  cfg.fault_injector = &inj;
  cfg.supervisor = fast_supervisor();

  TrafficPool pool = fx.pool();
  Engine engine(cfg, fx.programs);
  const EngineReport rep = engine.run(pool);

  // Healed: the death is in the log, not in the compat error field.
  EXPECT_TRUE(rep.first_error().empty()) << rep.first_error();
  EXPECT_GE(rep.worker_restarts, 1u);
  EXPECT_EQ(rep.workers_failed, 0u);
  ASSERT_GE(rep.error_log.size(), 1u);
  EXPECT_EQ(rep.error_log[0].worker, 0u);
  EXPECT_FALSE(rep.error_log[0].permanent);
  EXPECT_NE(rep.error_log[0].message.find("injected"), std::string::npos);

  // Conservation: the injected throw fires before a batch is claimed,
  // so nothing is lost and every offered packet is delivered.
  ASSERT_TRUE(rep.conservation_checked);
  EXPECT_TRUE(rep.conserved());
  EXPECT_EQ(rep.offered_packets, fx.trace.size());
  EXPECT_EQ(rep.delivered_packets, fx.trace.size());
  EXPECT_EQ(rep.shed_packets, 0u);
  EXPECT_EQ(rep.lost_packets, 0u);
  EXPECT_EQ(rep.packets(), fx.trace.size());
}

TEST(Supervisor, PermanentFailureHandsShardsToSurvivors) {
  Fixture fx;
  // Three deaths against a 2-restart budget: worker 1 fails for good
  // and the watchdog must reassign its undrained shards.
  FaultInjector inj(
      FaultPlan::parse("throw:w=1@0,throw:w=1@1,throw:w=1@2"));
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.batch_size = 32;
  cfg.shards = 4;
  cfg.shard_mode = ShardMode::kReplica;
  cfg.fault_injector = &inj;
  cfg.supervisor = fast_supervisor();

  TrafficPool pool = fx.pool();
  Engine engine(cfg, fx.programs);
  const EngineReport rep = engine.run(pool);

  EXPECT_EQ(rep.worker_restarts, 2u);
  EXPECT_EQ(rep.workers_failed, 1u);
  EXPECT_GE(rep.shards_reassigned, 1u);
  EXPECT_EQ(inj.counters().worker_throws, 3u);

  // Taken-over shards mean nothing was shed or lost: the run still
  // delivers every packet, so the permanent failure is informational.
  EXPECT_TRUE(rep.first_error().empty()) << rep.first_error();
  ASSERT_TRUE(rep.conservation_checked);
  EXPECT_TRUE(rep.conserved());
  EXPECT_EQ(rep.delivered_packets, fx.trace.size());
  EXPECT_EQ(rep.shed_packets, 0u);
  EXPECT_EQ(rep.lost_packets, 0u);

  // All three deaths surfaced, in incarnation order, only the last
  // permanent.
  ASSERT_EQ(rep.error_log.size(), 3u);
  for (usize k = 0; k < 3; ++k) {
    EXPECT_EQ(rep.error_log[k].worker, 1u);
    EXPECT_EQ(rep.error_log[k].restarts, k);
    EXPECT_EQ(rep.error_log[k].permanent, k == 2);
  }
}

TEST(Supervisor, DetectsStallEpisodeAndRunStillConcludes) {
  Fixture fx;
  FaultInjector inj(FaultPlan::parse("stall:w=0@1:ms=150"));
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.batch_size = 32;
  cfg.fault_injector = &inj;
  cfg.supervisor = fast_supervisor();
  cfg.supervisor.stall_deadline_ms = 25;  // well inside the 150ms stall

  TrafficPool pool = fx.pool();
  Engine engine(cfg, fx.programs);
  const EngineReport rep = engine.run(pool);

  EXPECT_TRUE(rep.first_error().empty()) << rep.first_error();
  EXPECT_GE(rep.stall_detections, 1u);
  EXPECT_EQ(rep.worker_restarts, 0u);  // stalled, not dead
  EXPECT_EQ(rep.workers_failed, 0u);
  EXPECT_EQ(inj.counters().worker_stalls, 1u);
  ASSERT_TRUE(rep.conservation_checked);
  EXPECT_TRUE(rep.conserved());
  EXPECT_EQ(rep.delivered_packets, fx.trace.size());
}

TEST(Supervisor, CleanRunLedgerIsExactAndQuiet) {
  Fixture fx;
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.batch_size = 32;
  cfg.supervisor = fast_supervisor();

  TrafficPool pool = fx.pool();
  Engine engine(cfg, fx.programs);
  const EngineReport rep = engine.run(pool);

  EXPECT_TRUE(rep.first_error().empty()) << rep.first_error();
  EXPECT_EQ(rep.worker_restarts, 0u);
  EXPECT_EQ(rep.stall_detections, 0u);
  EXPECT_EQ(rep.shards_reassigned, 0u);
  EXPECT_EQ(rep.workers_failed, 0u);
  EXPECT_TRUE(rep.error_log.empty());
  ASSERT_TRUE(rep.conservation_checked);
  EXPECT_TRUE(rep.conserved());
  EXPECT_EQ(rep.offered_packets, fx.trace.size());
  EXPECT_EQ(rep.delivered_packets, fx.trace.size());
  EXPECT_EQ(rep.shed_packets, 0u);
  EXPECT_EQ(rep.lost_packets, 0u);
}

// ---- the chaos scenario, scaled down --------------------------------------

TEST(ChaosScenario, OracleCleanConservedAndSelfHealing) {
  workload::ScenarioOptions opts;
  opts.workers = 3;
  opts.scale = 0.05;  // trace floor: the default plan targets it
  opts.seed = 2026;
  workload::ScenarioRunner runner(opts);
  const workload::ScenarioResult r = runner.run("chaos");

  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.oracle_mismatches, 0u);
  EXPECT_GT(r.oracle_checked, 0u);
  EXPECT_GE(r.worker_restarts, 1u);
  EXPECT_GE(r.shards_reassigned, 1u);
  EXPECT_GE(r.injected_worker_throws, 1u);
  EXPECT_GE(r.injected_publish_failures, 1u);
  ASSERT_TRUE(r.conservation_checked);
  EXPECT_TRUE(r.conserved);
  EXPECT_EQ(r.delivered_packets + r.shed_packets + r.lost_packets,
            r.offered_packets);
  EXPECT_FALSE(r.fault_plan.empty());
}
