/// Tests for the observability subsystem: TraceRing SPSC semantics
/// (order, overwrite-oldest accounting, torn-read rejection under a
/// concurrent writer), histogram bucket round-trips and interpolated
/// percentiles, StatsSampler delta correctness (sum of interval deltas
/// == end-of-run totals), update-visibility latency on a deterministic
/// update storm, worker-error surfacing, and the two file exporters.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>

#include "dataplane/engine.hpp"
#include "telemetry/export.hpp"
#include "telemetry/publish_clock.hpp"
#include "telemetry/trace_ring.hpp"
#include "workload/scenario.hpp"

using namespace pclass;
using namespace pclass::telemetry;

namespace {

TraceEvent make_event(u64 i) {
  TraceEvent e;
  e.t_start_ns = 1000 + i;
  e.duration_ns = 10 * i;
  e.worker = static_cast<u32>(i % 7);
  e.packets = static_cast<u32>(i % 33);
  e.lookups = static_cast<u32>(i % 17);
  e.distinct_keys = static_cast<u32>(i % 13);
  e.path = static_cast<core::BatchPath>(i % core::kNumBatchPaths);
  e.memo_hits = static_cast<u32>(i % 101);
  e.memo_conflicts = static_cast<u32>(i % 59);
  e.snapshot_version = i;
  return e;
}

/// Every field of \p e matches what make_event(i) produced — a torn
/// copy would mix fields of two different i.
void expect_consistent(const TraceEvent& e) {
  const u64 i = e.snapshot_version;
  EXPECT_EQ(e.t_start_ns, 1000 + i);
  EXPECT_EQ(e.duration_ns, 10 * i);
  EXPECT_EQ(e.worker, i % 7);
  EXPECT_EQ(e.packets, i % 33);
  EXPECT_EQ(e.lookups, i % 17);
  EXPECT_EQ(e.distinct_keys, i % 13);
  EXPECT_EQ(static_cast<u64>(e.path), i % core::kNumBatchPaths);
  EXPECT_EQ(e.memo_hits, i % 101);
  EXPECT_EQ(e.memo_conflicts, i % 59);
}

TEST(TraceEvent, PackUnpackRoundTrips) {
  for (u64 i : {u64{0}, u64{1}, u64{12345}, u64{0xFFFF}}) {
    const TraceEvent e = make_event(i);
    const TraceEvent r = TraceEvent::unpack(e.pack());
    EXPECT_EQ(r.t_start_ns, e.t_start_ns);
    EXPECT_EQ(r.duration_ns, e.duration_ns);
    EXPECT_EQ(r.worker, e.worker);
    EXPECT_EQ(r.packets, e.packets);
    EXPECT_EQ(r.lookups, e.lookups);
    EXPECT_EQ(r.distinct_keys, e.distinct_keys);
    EXPECT_EQ(r.path, e.path);
    EXPECT_EQ(r.memo_hits, e.memo_hits);
    EXPECT_EQ(r.memo_conflicts, e.memo_conflicts);
    EXPECT_EQ(r.snapshot_version, e.snapshot_version);
  }
}

TEST(TraceRing, DrainsInOrderWithoutLoss) {
  TraceRing ring(16);
  for (u64 i = 0; i < 10; ++i) ring.push(make_event(i));
  std::vector<TraceEvent> out;
  EXPECT_EQ(ring.drain(&out), 10u);
  ASSERT_EQ(out.size(), 10u);
  for (u64 i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i].snapshot_version, i);
    expect_consistent(out[i]);
  }
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.pushed(), 10u);
  // A second drain sees nothing new.
  EXPECT_EQ(ring.drain(&out), 0u);
}

TEST(TraceRing, OverwritesOldestAndCountsDrops) {
  TraceRing ring(8);  // power of two already
  const u64 kPushed = 100;
  for (u64 i = 0; i < kPushed; ++i) ring.push(make_event(i));
  std::vector<TraceEvent> out;
  const usize drained = ring.drain(&out);
  // Only the newest <= capacity events survive; the rest are accounted.
  EXPECT_LE(drained, ring.capacity());
  EXPECT_EQ(drained + ring.dropped(), kPushed);
  // What survived is the tail, in order.
  for (usize k = 1; k < out.size(); ++k) {
    EXPECT_EQ(out[k].snapshot_version, out[k - 1].snapshot_version + 1);
  }
  EXPECT_EQ(out.back().snapshot_version, kPushed - 1);
}

TEST(TraceRing, ConcurrentWriterReaderNeverTearsAndAccountsEverything) {
  TraceRing ring(64);
  const u64 kEvents = 200'000;
  std::vector<TraceEvent> out;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (u64 i = 0; i < kEvents; ++i) ring.push(make_event(i));
    done.store(true, std::memory_order_release);
  });
  usize drained = 0;
  while (!done.load(std::memory_order_acquire)) {
    drained += ring.drain(&out);
  }
  writer.join();
  drained += ring.drain(&out);  // final drain after the writer stopped
  EXPECT_EQ(drained + ring.dropped(), kEvents);
  EXPECT_EQ(ring.pushed(), kEvents);
  EXPECT_GT(drained, 0u);
  u64 prev = 0;
  bool first = true;
  for (const TraceEvent& e : out) {
    expect_consistent(e);  // no torn slot ever surfaced
    if (!first) EXPECT_GT(e.snapshot_version, prev);  // strictly newer
    prev = e.snapshot_version;
    first = false;
  }
}

TEST(PublishClock, ResolvesNotedVersionsAndMissesRecycled) {
  PublishClock clock;
  clock.note(1, 111);
  clock.note(2, 222);
  ASSERT_TRUE(clock.lookup(1).has_value());
  EXPECT_EQ(*clock.lookup(1), 111u);
  ASSERT_TRUE(clock.lookup(2).has_value());
  EXPECT_EQ(*clock.lookup(2), 222u);
  EXPECT_FALSE(clock.lookup(3).has_value());
  EXPECT_FALSE(clock.lookup(0).has_value());
  // A version that shares a slot with a newer one is gone (recycled).
  clock.note(1 + PublishClock::kSlots, 333);
  EXPECT_FALSE(clock.lookup(1).has_value());
  EXPECT_EQ(*clock.lookup(1 + PublishClock::kSlots), 333u);
}

// ---- LatencyHistogram ------------------------------------------------------

TEST(LatencyHistogram, BucketRoundTripProperty) {
  using H = dataplane::LatencyHistogram;
  // bucket_floor(b) must be the smallest value mapping to bucket b, and
  // every value must land in a bucket whose floor is <= it. Only
  // reachable buckets round-trip: bucket_of caps at what a u64 can
  // express (~bucket 251), and floors above that would overflow.
  const usize top = H::bucket_of(~u64{0});
  ASSERT_LT(top, H::kBuckets);
  for (usize b = 0; b < top; ++b) {
    const u64 lo = H::bucket_floor(b);
    const u64 next = H::bucket_floor(b + 1);
    EXPECT_EQ(H::bucket_of(lo), b) << "floor of bucket " << b;
    ASSERT_GT(next, lo);
    EXPECT_EQ(H::bucket_of(next - 1), b) << "last value of bucket " << b;
  }
  u64 checked = 0;
  for (u64 v = 0; v < 100'000; v = v < 256 ? v + 1 : v + v / 7) {
    const usize b = H::bucket_of(v);
    EXPECT_LE(H::bucket_floor(b), v);
    if (b + 1 < H::kBuckets) EXPECT_GT(H::bucket_floor(b + 1), v);
    ++checked;
  }
  EXPECT_GT(checked, 300u);
}

TEST(LatencyHistogram, EmptyAndSingleSamplePercentiles) {
  dataplane::LatencyHistogram h;
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.percentile(99), 0u);
  h.record(37);
  // A single sample is every percentile, exactly (clamped to [min,max]).
  EXPECT_EQ(h.percentile(0), 37u);
  EXPECT_EQ(h.percentile(50), 37u);
  EXPECT_EQ(h.percentile(99), 37u);
  EXPECT_EQ(h.percentile(100), 37u);
}

TEST(LatencyHistogram, PercentileInterpolatesWithinBucket) {
  using H = dataplane::LatencyHistogram;
  // Fill one wide bucket uniformly; interpolated percentiles must move
  // through the bucket instead of snapping to its floor.
  dataplane::LatencyHistogram h;
  const u64 lo = 1 << 10;  // bucket floors: 1024, 1280, 1536, ... (4/octave)
  const usize b = H::bucket_of(lo);
  const u64 hi = H::bucket_floor(b + 1);
  ASSERT_GT(hi, lo + 8);  // genuinely wide
  for (u64 v = lo; v < hi; ++v) h.record(v);
  const u64 p25 = h.percentile(25);
  const u64 p50 = h.percentile(50);
  const u64 p75 = h.percentile(75);
  EXPECT_LT(p25, p50);
  EXPECT_LT(p50, p75);  // the pre-fix behavior returned the same floor 3x
  EXPECT_GE(p25, lo);
  EXPECT_LE(p75, hi);
  // The median of a uniform fill sits near the bucket midpoint.
  const u64 mid = lo + (hi - lo) / 2;
  EXPECT_NEAR(static_cast<double>(p50), static_cast<double>(mid),
              static_cast<double>(hi - lo) / 8.0);
}

TEST(LatencyHistogram, OverflowBucketReturnsItsFloor) {
  using H = dataplane::LatencyHistogram;
  dataplane::LatencyHistogram h;
  const u64 huge = ~u64{0} - 3;
  h.record(huge);
  h.record(huge - 1);
  const u64 p99 = h.percentile(99);
  // The overflow bucket has no upper edge to interpolate toward; the
  // percentile reports its floor, clamped into the observed range.
  EXPECT_GE(p99, H::bucket_floor(H::kBuckets - 1));
  EXPECT_LE(p99, huge);
}

// ---- Engine-level telemetry -----------------------------------------------

ruleset::Rule probe_rule(u32 i) {
  ruleset::Rule r;
  r.src_ip = ruleset::IpPrefix::make(0x0A000000u | (i & 0xFFFFu), 32);
  r.id = RuleId{i};
  r.priority = i;
  r.action = ruleset::Action{sdn::ActionSpec::output(1).encode()};
  return r;
}

net::FiveTuple probe_tuple(u32 i) {
  net::FiveTuple t;
  t.src_ip = 0x0A000000u | (i & 0xFFFFu);
  t.dst_ip = 0x01020304u;
  t.protocol = net::kProtoTcp;
  return t;
}

sdn::Message add_msg(u32 i) {
  sdn::FlowMod fm;
  fm.command = sdn::FlowMod::Command::kAdd;
  fm.cookie = RuleId{i};
  fm.match = probe_rule(i);
  fm.action = sdn::ActionSpec::output(1);
  return fm;
}

core::ClassifierConfig small_config() {
  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(1000);
  cfg.ip_algorithm = core::IpAlgorithm::kBst;
  return cfg;
}

TEST(StatsSampler, IntervalDeltasSumToEndOfRunTotals) {
  dataplane::RuleProgramPublisher programs(small_config());
  for (u32 i = 0; i < 64; ++i) programs.apply(add_msg(i));
  dataplane::TrafficPool pool;
  const u64 kPackets = 20'000;
  for (u32 i = 0; i < kPackets; ++i) pool.add(probe_tuple(i % 64));

  dataplane::Engine engine({.workers = 2,
                            .batch_size = 32,
                            .flow_cache_depth = 256,
                            .stats_interval_ms = 1,
                            .collect_trace = true},
                           programs);
  const dataplane::EngineReport rep = engine.run(pool);

  EXPECT_EQ(rep.packets(), kPackets);
  ASSERT_FALSE(rep.timeseries.empty());
  u64 d_packets = 0, d_batches = 0, d_hits = 0, d_lookups = 0, d_mem = 0;
  for (const StatsSample& s : rep.timeseries) {
    d_packets += s.packets;
    d_batches += s.batches;
    d_hits += s.cache_hits;
    d_lookups += s.classifier_lookups;
    d_mem += s.memory_accesses;
  }
  u64 t_batches = 0, t_hits = 0, t_lookups = 0, t_mem = 0;
  for (const auto& w : rep.workers) {
    t_batches += w.batches;
    t_hits += w.cache_hits;
    t_lookups += w.classifier_lookups;
    t_mem += w.memory_accesses;
  }
  EXPECT_EQ(d_packets, rep.packets());
  EXPECT_EQ(d_batches, t_batches);
  EXPECT_EQ(d_hits, t_hits);
  EXPECT_EQ(d_lookups, t_lookups);
  EXPECT_EQ(d_mem, t_mem);

  // The collected spans are plausible and attributed to real workers.
  EXPECT_GT(rep.trace_events.size(), 0u);
  for (const TraceEvent& e : rep.trace_events) {
    EXPECT_LT(e.worker, 2u);
    EXPECT_GT(e.packets, 0u);
  }
}

TEST(UpdateVisibility, MeasuredOnDeterministicUpdateStorm) {
  dataplane::RuleProgramPublisher programs(small_config());
  programs.apply(add_msg(1));
  dataplane::TrafficPool pool;
  for (u32 i = 0; i < 256; ++i) pool.add(probe_tuple(i % 8 + 1));

  dataplane::Engine engine(
      {.workers = 2, .batch_size = 16, .loop = true, .stats_interval_ms = 2},
      programs);
  engine.start(pool);
  for (u32 i = 2; i <= 60; ++i) {
    programs.apply(add_msg(i));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const dataplane::EngineReport rep = engine.stop();

  const dataplane::UpdateVisibility vis = rep.update_visibility();
  EXPECT_GT(vis.samples, 0u);
  EXPECT_GT(vis.mean_ns, 0.0);
  EXPECT_TRUE(std::isfinite(vis.mean_ns));
  EXPECT_GE(static_cast<double>(vis.max_ns), vis.mean_ns);
  // Workers polled every batch over a ~60ms run; seeing a publish take
  // longer than the whole run to become visible would mean the clock or
  // the sampling is broken.
  EXPECT_LT(vis.max_ns, u64{10} * 1000 * 1000 * 1000);
  // The sampler saw the version advance mid-run.
  ASSERT_FALSE(rep.timeseries.empty());
  EXPECT_GT(rep.timeseries.back().max_version,
            rep.timeseries.front().min_version);
}

TEST(WorkerErrors, FaultHookSurfacesInReportAndScenarioJson) {
  dataplane::RuleProgramPublisher programs(small_config());
  programs.apply(add_msg(1));
  dataplane::TrafficPool pool;
  for (u32 i = 0; i < 64; ++i) pool.add(probe_tuple(1));

  std::atomic<bool> thrown{false};
  dataplane::Engine engine(
      {.workers = 2,
       .batch_size = 16,
       .worker_fault_hook =
           [&](usize worker) {
             if (worker == 0 && !thrown.exchange(true)) {
               throw std::runtime_error("injected telemetry-test fault");
             }
           }},
      programs);
  const dataplane::EngineReport rep = engine.run(pool);
  ASSERT_EQ(rep.workers.size(), 2u);
  EXPECT_NE(rep.workers[0].error.find("injected"), std::string::npos);
  EXPECT_TRUE(rep.workers[1].error.empty());

  // The scenario report surfaces per-worker errors as a non-empty
  // `errors` array (exercised here through the JSON writer).
  workload::ScenarioResult r;
  r.name = "fault-injection";
  r.worker_errors.push_back("worker 0: injected telemetry-test fault");
  r.error = r.worker_errors.front();
  std::ostringstream os;
  workload::write_json_report(os, {}, {r});
  const std::string json = os.str();
  EXPECT_NE(json.find("\"errors\""), std::string::npos);
  EXPECT_NE(json.find("injected telemetry-test fault"), std::string::npos);
}

// ---- Exporters -------------------------------------------------------------

TEST(ChromeTrace, WritesParseableTracksPerWorker) {
  std::vector<TraceProcess> procs(2);
  procs[0].name = "scenario-a";
  for (u64 i = 0; i < 4; ++i) {
    TraceEvent e = make_event(i);
    e.worker = static_cast<u32>(i % 2);  // two tracks
    e.t_start_ns = 5000 + i * 1000;
    e.duration_ns = 500;
    procs[0].events.push_back(e);
  }
  procs[1].name = "scenario-b";
  procs[1].events.push_back(make_event(9));

  std::ostringstream os;
  write_chrome_trace(os, procs);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("scenario-a"), std::string::npos);
  EXPECT_NE(json.find("scenario-b"), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // One "X" complete event per span.
  usize x_events = 0;
  for (usize pos = 0; (pos = json.find("\"ph\":\"X\"", pos)) !=
                      std::string::npos;
       ++pos) {
    ++x_events;
  }
  EXPECT_EQ(x_events, 5u);
  // Balanced braces/brackets (same well-formedness check the workload
  // report tests use).
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(MetricsWriter, DeclaresEachMetricOnceAndEscapesLabels) {
  std::ostringstream os;
  MetricsWriter m(os);
  using Label = MetricsWriter::Label;
  const std::array<Label, 1> a = {Label{"scenario", "acl-like"}};
  const std::array<Label, 1> b = {Label{"scenario", "weird\"name\\x\n"}};
  m.counter("pclass_packets_total", "Packets processed", a, 100);
  m.counter("pclass_packets_total", "Packets processed", b, 50);
  const std::string text = os.str();
  // HELP/TYPE once, two samples.
  EXPECT_EQ(text.find("# HELP pclass_packets_total"),
            text.rfind("# HELP pclass_packets_total"));
  EXPECT_EQ(text.find("# TYPE pclass_packets_total"),
            text.rfind("# TYPE pclass_packets_total"));
  EXPECT_NE(text.find("{scenario=\"acl-like\"} 100"), std::string::npos);
  EXPECT_NE(text.find("weird\\\"name\\\\x\\n"), std::string::npos);
}

TEST(StatsSampler, StopIsIdempotentAndSafeBeforeStart) {
  {
    // Never started: stop() (twice) must be a no-op, not a join on a
    // non-existent thread or a bogus flush tick.
    StatsSampler sampler({}, 1, 0);
    sampler.stop();
    sampler.stop();
    EXPECT_TRUE(sampler.take_samples().empty());
  }
  {
    WorkerTelemetry tel(0);
    StatsSampler sampler({&tel}, 1, 0);
    sampler.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    // Two racing stop() callers (the daemon's signal path vs the
    // engine's own teardown): exactly one takes the final flush.
    std::thread racer([&] { sampler.stop(); });
    sampler.stop();
    racer.join();
    sampler.stop();  // and a late third call is still fine
    const auto samples = sampler.take_samples();
    for (const StatsSample& s : samples) {
      EXPECT_GT(s.interval_ns, 0u);  // zero-elapsed ticks are guarded
      EXPECT_TRUE(std::isfinite(s.mpps));
    }
  }
}

TEST(StatsSampler, SubscribersSeeEveryActiveRowIncludingFinalFlush) {
  dataplane::RuleProgramPublisher programs(small_config());
  for (u32 i = 0; i < 64; ++i) programs.apply(add_msg(i));
  dataplane::TrafficPool pool;
  for (u32 i = 0; i < 4096; ++i) pool.add(probe_tuple(i % 64));

  dataplane::Engine engine(
      {.workers = 2, .batch_size = 32, .loop = true, .stats_interval_ms = 2},
      programs);
  engine.start(pool);
  ASSERT_NE(engine.sampler(), nullptr);

  std::mutex mu;
  std::vector<StatsSample> rows;
  const u64 token = engine.sampler()->subscribe([&](const StatsSample& s) {
    std::lock_guard<std::mutex> lk(mu);
    rows.push_back(s);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // Unsubscribing mid-run blocks out in-flight callbacks, after which
  // the captures may be torn down safely.
  engine.sampler()->unsubscribe(token);
  const usize rows_at_unsub = [&] {
    std::lock_guard<std::mutex> lk(mu);
    return rows.size();
  }();
  EXPECT_GT(rows_at_unsub, 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  // Re-subscribe through to stop(): the final flush row must reach the
  // subscriber too (that is what lets `subscribe stats` clients see the
  // closing delta of a drained engine).
  const u64 token2 = engine.sampler()->subscribe([&](const StatsSample& s) {
    std::lock_guard<std::mutex> lk(mu);
    rows.push_back(s);
  });
  const usize before_stop = [&] {
    std::lock_guard<std::mutex> lk(mu);
    return rows.size();
  }();
  const dataplane::EngineReport rep = engine.stop();
  {
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_GT(rows.size(), before_stop) << "final flush row not delivered";
    // Every delivered row is one of the report's timeseries rows, in
    // order (the subscriber feed is the series, not a parallel sum).
    usize cursor = 0;
    for (const StatsSample& r : rows) {
      while (cursor < rep.timeseries.size() &&
             rep.timeseries[cursor].t_ns != r.t_ns) {
        ++cursor;
      }
      ASSERT_LT(cursor, rep.timeseries.size()) << "row not found in series";
      EXPECT_EQ(rep.timeseries[cursor].packets, r.packets);
      ++cursor;
    }
  }
  (void)token2;  // sampler is gone after stop(); nothing to unsubscribe
}

TEST(StatsSampler, TraceCaptureTeesWithoutDisturbingRetention) {
  dataplane::RuleProgramPublisher programs(small_config());
  for (u32 i = 0; i < 64; ++i) programs.apply(add_msg(i));
  dataplane::TrafficPool pool;
  for (u32 i = 0; i < 4096; ++i) pool.add(probe_tuple(i % 64));

  dataplane::Engine engine({.workers = 2,
                            .batch_size = 32,
                            .loop = true,
                            .stats_interval_ms = 2,
                            .collect_trace = true},
                           programs);
  engine.start(pool);
  StatsSampler* sampler = engine.sampler();
  ASSERT_NE(sampler, nullptr);

  EXPECT_FALSE(sampler->trace_capturing());
  sampler->trace_capture_start(/*limit=*/8);
  EXPECT_TRUE(sampler->trace_capturing());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  u64 truncated = 0;
  const std::vector<TraceEvent> captured =
      sampler->trace_capture_stop(&truncated);
  EXPECT_FALSE(sampler->trace_capturing());
  ASSERT_EQ(captured.size(), 8u);  // limit honored...
  EXPECT_GT(truncated, 0u);        // ...and the overflow is accounted
  for (const TraceEvent& e : captured) {
    EXPECT_LT(e.worker, 2u);
    EXPECT_GT(e.packets, 0u);
  }

  const dataplane::EngineReport rep = engine.stop();
  // The tee did not steal from the end-of-run retention path.
  EXPECT_GT(rep.trace_events.size(), captured.size());
}

}  // namespace
