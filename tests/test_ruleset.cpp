// Unit tests for src/ruleset: field-match semantics, the rule container,
// ClassBench I/O, the calibrated generator (Tables II & III) and the
// trace generator.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/error.hpp"
#include "ruleset/classbench.hpp"
#include "ruleset/generator.hpp"
#include "ruleset/rule_set.hpp"
#include "ruleset/stats.hpp"
#include "ruleset/trace_gen.hpp"

using namespace pclass;
using namespace pclass::ruleset;

TEST(IpPrefixTest, NormalizesHostBits) {
  const auto p = IpPrefix::make(ipv4(10, 1, 2, 3), 8);
  EXPECT_EQ(p.value, ipv4(10, 0, 0, 0));
  EXPECT_TRUE(p.matches(ipv4(10, 255, 0, 1)));
  EXPECT_FALSE(p.matches(ipv4(11, 0, 0, 0)));
}

TEST(IpPrefixTest, WildcardMatchesEverything) {
  const IpPrefix p{};
  EXPECT_TRUE(p.is_wildcard());
  EXPECT_TRUE(p.matches(0));
  EXPECT_TRUE(p.matches(~u32{0}));
}

TEST(IpPrefixTest, FullLengthIsExact) {
  const auto p = IpPrefix::make(ipv4(1, 2, 3, 4), 32);
  EXPECT_TRUE(p.matches(ipv4(1, 2, 3, 4)));
  EXPECT_FALSE(p.matches(ipv4(1, 2, 3, 5)));
}

TEST(IpPrefixTest, LengthValidation) {
  EXPECT_THROW((void)IpPrefix::make(0, 33), ConfigError);
}

TEST(IpPrefixTest, SegmentsShortPrefix) {
  // /8 constrains only the high segment (by 8 bits).
  const auto p = IpPrefix::make(ipv4(10, 0, 0, 0), 8);
  EXPECT_EQ(p.hi_segment().length, 8u);
  EXPECT_EQ(p.hi_segment().value, 0x0A00u);
  EXPECT_TRUE(p.lo_segment().is_wildcard());
}

TEST(IpPrefixTest, SegmentsLongPrefix) {
  // /24: high segment exact, low segment /8.
  const auto p = IpPrefix::make(ipv4(192, 168, 7, 0), 24);
  EXPECT_EQ(p.hi_segment().length, 16u);
  EXPECT_EQ(p.hi_segment().value, 0xC0A8u);
  EXPECT_EQ(p.lo_segment().length, 8u);
  EXPECT_EQ(p.lo_segment().value, 0x0700u);
}

TEST(SegmentPrefixTest, MatchSemantics) {
  const auto s = SegmentPrefix::make(0xAB00, 8);
  EXPECT_TRUE(s.matches(0xABFF));
  EXPECT_FALSE(s.matches(0xAC00));
  EXPECT_TRUE(SegmentPrefix{}.matches(0x1234));
  EXPECT_THROW((void)SegmentPrefix::make(0, 17), ConfigError);
}

TEST(PortRangeTest, Semantics) {
  const auto r = PortRange::make(100, 200);
  EXPECT_TRUE(r.contains(100));
  EXPECT_TRUE(r.contains(200));
  EXPECT_FALSE(r.contains(99));
  EXPECT_FALSE(r.contains(201));
  EXPECT_EQ(r.width(), 101u);
  EXPECT_FALSE(r.is_exact());
  EXPECT_TRUE(PortRange::exact(80).is_exact());
  EXPECT_TRUE(PortRange::wildcard().is_wildcard());
  EXPECT_EQ(PortRange::wildcard().width(), 65536u);
  EXPECT_THROW((void)PortRange::make(5, 4), ConfigError);
}

TEST(ProtoMatchTest, Semantics) {
  EXPECT_TRUE(ProtoMatch::any().matches(200));
  EXPECT_TRUE(ProtoMatch::exact(6).matches(6));
  EXPECT_FALSE(ProtoMatch::exact(6).matches(17));
}

TEST(RuleTest, FullMatch) {
  Rule r;
  r.src_ip = IpPrefix::make(ipv4(10, 0, 0, 0), 8);
  r.dst_ip = IpPrefix::make(ipv4(192, 168, 0, 0), 16);
  r.dst_port = PortRange::exact(80);
  r.proto = ProtoMatch::exact(6);
  const net::FiveTuple hit{ipv4(10, 1, 1, 1), ipv4(192, 168, 9, 9), 5555,
                           80, 6};
  EXPECT_TRUE(r.matches(hit));
  net::FiveTuple miss = hit;
  miss.dst_port = 81;
  EXPECT_FALSE(r.matches(miss));
  miss = hit;
  miss.protocol = 17;
  EXPECT_FALSE(r.matches(miss));
  miss = hit;
  miss.src_ip = ipv4(11, 0, 0, 0);
  EXPECT_FALSE(r.matches(miss));
}

TEST(RuleTest, FingerprintMatchesEquality) {
  Rule a, b;
  a.src_ip = b.src_ip = IpPrefix::make(ipv4(1, 0, 0, 0), 8);
  a.priority = 1;
  b.priority = 99;  // fingerprint ignores priority
  EXPECT_TRUE(a.same_match(b));
  EXPECT_EQ(match_fingerprint(a), match_fingerprint(b));
  b.dst_port = PortRange::exact(80);
  EXPECT_FALSE(a.same_match(b));
  EXPECT_NE(match_fingerprint(a), match_fingerprint(b));
}

TEST(RuleSetTest, AddAssignsIdsAndPriorities) {
  RuleSet rs("t");
  // add() returns a reference into the backing vector; copy it out
  // before the next add() can reallocate and invalidate it.
  const Rule r0 = rs.add(Rule{});
  const Rule r1 = rs.add(Rule{});
  EXPECT_EQ(r0.id.value, 0u);
  EXPECT_EQ(r1.id.value, 1u);
  EXPECT_EQ(r1.priority, 1u);
  EXPECT_TRUE(rs.find(RuleId{1}).has_value());
  EXPECT_FALSE(rs.find(RuleId{7}).has_value());
}

TEST(RuleSetTest, DeduplicatedKeepsFirst) {
  RuleSet rs;
  Rule a;
  a.dst_port = PortRange::exact(80);
  a.action = Action{1};
  Rule b = a;
  b.action = Action{2};  // same match, different action
  Rule c;
  c.dst_port = PortRange::exact(443);
  rs.add(a);
  rs.add(b);
  rs.add(c);
  const RuleSet d = rs.deduplicated();
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].action.token, 1u);  // first occurrence kept
  EXPECT_EQ(d[1].dst_port.lo, 443u);
  EXPECT_EQ(d[1].priority, 1u);  // priorities re-densified
}

TEST(ClassBench, RoundTrip) {
  RuleSet rs("x");
  Rule r;
  r.src_ip = IpPrefix::make(ipv4(192, 168, 0, 0), 16);
  r.dst_ip = IpPrefix::make(ipv4(10, 1, 2, 3), 32);
  r.src_port = PortRange::wildcard();
  r.dst_port = PortRange::exact(80);
  r.proto = ProtoMatch::exact(6);
  rs.add(r);
  Rule w;  // all-wildcard rule
  rs.add(w);

  std::stringstream ss;
  classbench::write(rs, ss);
  const RuleSet back = classbench::read(ss, "x");
  ASSERT_EQ(back.size(), 2u);
  EXPECT_TRUE(back[0].same_match(r));
  EXPECT_TRUE(back[1].same_match(w));
}

TEST(ClassBench, ParsesCanonicalLine) {
  std::stringstream ss(
      "@192.168.0.0/16\t10.0.0.0/8\t0 : 65535\t80 : 80\t0x06/0xFF\t"
      "0x0000/0x0200\n");
  const RuleSet rs = classbench::read(ss);
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].src_ip.length, 16u);
  EXPECT_EQ(rs[0].dst_ip.value, ipv4(10, 0, 0, 0));
  EXPECT_TRUE(rs[0].src_port.is_wildcard());
  EXPECT_EQ(rs[0].dst_port.lo, 80u);
  EXPECT_FALSE(rs[0].proto.wildcard);
  EXPECT_EQ(rs[0].proto.value, 6u);
}

TEST(ClassBench, WildcardProtocol) {
  std::stringstream ss("@0.0.0.0/0 0.0.0.0/0 0 : 65535 0 : 65535 0x00/0x00\n");
  const RuleSet rs = classbench::read(ss);
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_TRUE(rs[0].proto.wildcard);
}

TEST(ClassBench, ErrorsCarryLineNumbers) {
  std::stringstream bad("@1.2.3.4/32 5.6.7.8/32 0 : 65535 80 : 80 0x06/0xFF\n"
                        "not-a-rule\n");
  try {
    (void)classbench::read(bad);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ClassBench, RejectsBadFields) {
  std::stringstream s1("@300.0.0.0/8 0.0.0.0/0 0 : 65535 0 : 65535 0x06/0xFF\n");
  EXPECT_THROW((void)classbench::read(s1), ParseError);
  std::stringstream s2("@1.0.0.0/8 0.0.0.0/0 9 : 5 0 : 65535 0x06/0xFF\n");
  EXPECT_THROW((void)classbench::read(s2), ParseError);
  std::stringstream s3("@1.0.0.0/8 0.0.0.0/0 0 : 65535 0 : 65535 0x06/0x0F\n");
  EXPECT_THROW((void)classbench::read(s3), ParseError);
}

// ---- Generator calibration: the paper's Tables II & III ----

TEST(Generator, TableIIIRuleCounts) {
  // Table III: actual rule counts of the nominal 1K/5K/10K filter sets.
  const usize expect[3][3] = {{916, 4415, 9603},    // ACL
                              {791, 4653, 9311},    // FW
                              {938, 4460, 9037}};   // IPC
  const FilterType types[3] = {FilterType::kAcl, FilterType::kFw,
                               FilterType::kIpc};
  const usize sizes[3] = {1000, 5000, 10000};
  for (int t = 0; t < 3; ++t) {
    for (int s = 0; s < 3; ++s) {
      const RuleSet rs = make_classbench_like(types[t], sizes[s]);
      EXPECT_EQ(rs.size(), expect[t][s])
          << to_string(types[t]) << " " << sizes[s];
    }
  }
}

TEST(Generator, TableIIUniqueFieldCountsAcl) {
  // Table II: unique rule fields of acl1 — reproduced exactly by pool
  // calibration + round-robin coverage.
  struct Row {
    usize nominal, src, dst, sport, dport, proto;
  };
  const Row rows[] = {{1000, 103, 297, 1, 99, 3},
                      {5000, 805, 640, 1, 108, 3},
                      {10000, 4784, 733, 1, 108, 3}};
  for (const Row& row : rows) {
    const RuleSet rs = make_classbench_like(FilterType::kAcl, row.nominal);
    const auto st = RuleSetStats::analyze(rs);
    EXPECT_EQ(st.unique_src_ip, row.src) << row.nominal;
    EXPECT_EQ(st.unique_dst_ip, row.dst) << row.nominal;
    EXPECT_EQ(st.unique_src_port, row.sport) << row.nominal;
    EXPECT_EQ(st.unique_dst_port, row.dport) << row.nominal;
    EXPECT_EQ(st.unique_protocol, row.proto) << row.nominal;
  }
}

TEST(Generator, DeterministicPerSeed) {
  const RuleSet a = make_classbench_like(FilterType::kFw, 1000, 5);
  const RuleSet b = make_classbench_like(FilterType::kFw, 1000, 5);
  const RuleSet c = make_classbench_like(FilterType::kFw, 1000, 6);
  ASSERT_EQ(a.size(), b.size());
  bool all_same = true;
  for (usize i = 0; i < a.size(); ++i) {
    all_same &= a[i].same_match(b[i]);
  }
  EXPECT_TRUE(all_same);
  bool any_diff = a.size() != c.size();
  for (usize i = 0; i < std::min(a.size(), c.size()) && !any_diff; ++i) {
    any_diff = !a[i].same_match(c[i]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, NoDuplicateMatches) {
  const RuleSet rs = make_classbench_like(FilterType::kIpc, 1000);
  std::set<u64> fps;
  for (const Rule& r : rs) {
    EXPECT_TRUE(fps.insert(match_fingerprint(r)).second);
  }
}

TEST(Generator, RejectsUnknownNominalSize) {
  EXPECT_THROW((void)GeneratorProfile::classbench(FilterType::kAcl, 2000),
               ConfigError);
}

TEST(Generator, LabelSavingClaim) {
  // §III.C: "the storage requirement can be reduced by more than 50%"
  // (unique-field storage vs replicated storage, Table II discussion).
  for (usize nominal : {usize{1000}, usize{5000}, usize{10000}}) {
    const RuleSet rs = make_classbench_like(FilterType::kAcl, nominal);
    const auto st = RuleSetStats::analyze(rs);
    EXPECT_GT(st.unique_only_saving(), 0.5) << nominal;
  }
}

TEST(Generator, SegmentLabelDemandFitsLabelWidths) {
  // The 13/7/2-bit labels must cover every unique per-dimension value of
  // the largest calibrated workloads (§III.C.1).
  for (FilterType t : {FilterType::kAcl, FilterType::kFw, FilterType::kIpc}) {
    const RuleSet rs = make_classbench_like(t, 10000);
    const auto st = RuleSetStats::analyze(rs);
    for (Dimension d : kAllDimensions) {
      EXPECT_LE(st.unique_per_dimension[index_of(d)],
                usize{1} << label_bits(d))
          << to_string(t) << "/" << to_string(d);
    }
  }
}

TEST(TraceGen, DerivedHeadersMatchOriginRule) {
  const RuleSet rs = make_classbench_like(FilterType::kAcl, 1000);
  TraceGenerator tg(rs, {.headers = 1000, .random_fraction = 0.0,
                         .seed = 11});
  const net::Trace trace = tg.generate();
  ASSERT_EQ(trace.size(), 1000u);
  for (const auto& e : trace) {
    ASSERT_TRUE(e.origin_rule.has_value());
    const auto rule = rs.find(*e.origin_rule);
    ASSERT_TRUE(rule.has_value());
    EXPECT_TRUE(rule->matches(e.header));
  }
}

TEST(TraceGen, Deterministic) {
  const RuleSet rs = make_classbench_like(FilterType::kFw, 1000);
  TraceGenerator a(rs, {.headers = 100, .seed = 3});
  TraceGenerator b(rs, {.headers = 100, .seed = 3});
  const auto ta = a.generate(), tb = b.generate();
  for (usize i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].header, tb[i].header);
  }
}

TEST(TraceGen, RandomFractionProducesUnderivedHeaders) {
  const RuleSet rs = make_classbench_like(FilterType::kAcl, 1000);
  TraceGenerator tg(rs, {.headers = 1000, .random_fraction = 0.5,
                         .seed = 13});
  const auto t = tg.generate();
  usize underived = 0;
  for (const auto& e : t) {
    if (!e.origin_rule) ++underived;
  }
  EXPECT_GT(underived, 350u);
  EXPECT_LT(underived, 650u);
}

TEST(TraceGen, EmptyRuleSetRejected) {
  RuleSet empty;
  EXPECT_THROW(TraceGenerator(empty, {}), ConfigError);
}

TEST(Stats, PerDimensionCountsConsistent) {
  const RuleSet rs = make_classbench_like(FilterType::kAcl, 1000);
  const auto st = RuleSetStats::analyze(rs);
  // Port/proto dimension counts equal the full-field counts.
  EXPECT_EQ(st.unique_per_dimension[index_of(Dimension::kSrcPort)],
            st.unique_src_port);
  EXPECT_EQ(st.unique_per_dimension[index_of(Dimension::kDstPort)],
            st.unique_dst_port);
  EXPECT_EQ(st.unique_per_dimension[index_of(Dimension::kProtocol)],
            st.unique_protocol);
  // Segment uniqueness cannot exceed full-field uniqueness... per side.
  EXPECT_LE(st.unique_per_dimension[index_of(Dimension::kSrcIpHi)],
            st.unique_src_ip + 1);
  EXPECT_GT(st.field_bits_replicated, st.field_bits_unique_only);
}
