// Unit + property tests for the multi-bit trie engine: lookups are
// checked against a naive covering-prefix oracle over random prefix
// sets, incremental updates against from-scratch rebuilds.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "alg/multibit_trie.hpp"
#include "common/error.hpp"
#include "common/random.hpp"

using namespace pclass;
using namespace pclass::alg;
using pclass::ruleset::SegmentPrefix;

namespace {

/// Test fixture: a trie + list store + a priority map driving the
/// prio_of callback (labels sorted by priority, then value).
struct Rig {
  std::map<u16, Priority> prio;  // label value -> priority
  LabelListStore lists{"lists", 2048, kIpLabelBits};
  MbtConfig cfg;
  std::unique_ptr<MultiBitTrie> trie;
  hw::CommandLog log;

  explicit Rig(MbtConfig c = {}) : cfg(std::move(c)) {
    trie = std::make_unique<MultiBitTrie>(
        "t", cfg, lists,
        [this](Label l) {
          const auto it = prio.find(l.value);
          return it == prio.end() ? kNoPriority : it->second;
        });
  }

  void insert(u16 value, u8 len, u16 label, Priority p) {
    prio[label] = p;
    trie->insert(SegmentPrefix::make(value, len), Label{label}, log);
  }
  void remove(u16 value, u8 len) {
    trie->remove(SegmentPrefix::make(value, len), log);
  }

  std::vector<u16> lookup(u16 key) {
    hw::CycleRecorder rec;
    const ListRef r = trie->lookup(key, &rec);
    std::vector<u16> out;
    for (Label l : lists.read_list(r, &rec)) {
      out.push_back(l.value);
    }
    return out;
  }
};

/// Naive oracle: all (prefix, label) pairs covering key, sorted by
/// (priority, label).
struct Oracle {
  struct Entry {
    SegmentPrefix p;
    u16 label;
    Priority prio;
  };
  std::vector<Entry> entries;

  std::vector<u16> lookup(u16 key) const {
    std::vector<Entry> hit;
    for (const Entry& e : entries) {
      if (e.p.matches(key)) hit.push_back(e);
    }
    std::sort(hit.begin(), hit.end(), [](const Entry& a, const Entry& b) {
      return a.prio != b.prio ? a.prio < b.prio : a.label < b.label;
    });
    std::vector<u16> out;
    for (const Entry& e : hit) out.push_back(e.label);
    return out;
  }
};

}  // namespace

TEST(Mbt, EmptyTrieMissesEverything) {
  Rig rig;
  EXPECT_TRUE(rig.lookup(0).empty());
  EXPECT_TRUE(rig.lookup(0xFFFF).empty());
}

TEST(Mbt, SinglePrefixCoversItsSpan) {
  Rig rig;
  rig.insert(0xAB00, 8, 1, 0);
  EXPECT_EQ(rig.lookup(0xAB12), std::vector<u16>{1});
  EXPECT_EQ(rig.lookup(0xABFF), std::vector<u16>{1});
  EXPECT_TRUE(rig.lookup(0xAC00).empty());
}

TEST(Mbt, WildcardReachesAllKeys) {
  Rig rig;
  rig.insert(0, 0, 7, 3);
  EXPECT_EQ(rig.lookup(0x1234), std::vector<u16>{7});
  EXPECT_EQ(rig.lookup(0), std::vector<u16>{7});
}

TEST(Mbt, NestedPrefixesInPriorityOrder) {
  Rig rig;
  rig.insert(0, 0, 10, 5);          // wildcard, prio 5
  rig.insert(0xAB00, 8, 11, 2);     // /8, prio 2
  rig.insert(0xABC0, 12, 12, 8);    // /12, prio 8
  // Key covered by all three; order by priority: 11(2), 10(5), 12(8).
  EXPECT_EQ(rig.lookup(0xABC5), (std::vector<u16>{11, 10, 12}));
  // Key covered by wildcard + /8 only.
  EXPECT_EQ(rig.lookup(0xAB00), (std::vector<u16>{11, 10}));
}

TEST(Mbt, LeafPushedListAtDeepestEntry) {
  Rig rig;
  rig.insert(0xAB00, 8, 1, 1);   // anchored at level 1 (5 < 8 <= 10)
  rig.insert(0xABCD, 16, 2, 2);  // anchored at level 2
  hw::CycleRecorder rec;
  const ListRef r = rig.trie->lookup(0xABCD, &rec);
  // Deepest entry's list carries the ancestor label too.
  const auto labels = rig.lists.read_list(r, nullptr);
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0].value, 1u);
  EXPECT_EQ(labels[1].value, 2u);
  // Lookup visited 3 levels at 2 cycles each.
  EXPECT_EQ(rec.memory_accesses(), 3u);
  EXPECT_EQ(rec.cycles(), 6u);
}

TEST(Mbt, LookupStopsEarlyWithoutChildren) {
  Rig rig;
  rig.insert(0x8000, 1, 3, 0);  // level-0 anchored only
  hw::CycleRecorder rec;
  (void)rig.trie->lookup(0x8000, &rec);
  EXPECT_EQ(rec.memory_accesses(), 1u);  // root only, no children
}

TEST(Mbt, RemoveRestoresPreviousAnswers) {
  Rig rig;
  rig.insert(0xAB00, 8, 1, 1);
  rig.insert(0xABCD, 16, 2, 2);
  rig.remove(0xABCD, 16);
  EXPECT_EQ(rig.lookup(0xABCD), std::vector<u16>{1});
  rig.remove(0xAB00, 8);
  EXPECT_TRUE(rig.lookup(0xABCD).empty());
}

TEST(Mbt, PruneReclaimsNodesAndLists) {
  Rig rig;
  const usize base_nodes1 = rig.trie->node_count(1);
  rig.insert(0xABCD, 16, 1, 0);
  EXPECT_GT(rig.trie->node_count(1), base_nodes1);
  EXPECT_GT(rig.lists.live_words(), 0u);
  rig.remove(0xABCD, 16);
  EXPECT_EQ(rig.trie->node_count(1), base_nodes1);
  EXPECT_EQ(rig.trie->node_count(2), 0u);
  EXPECT_EQ(rig.lists.live_words(), 0u);  // every list released
}

TEST(Mbt, RefreshReordersAfterPriorityChange) {
  Rig rig;
  rig.insert(0xAB00, 8, 1, 5);
  rig.insert(0, 0, 2, 9);
  EXPECT_EQ(rig.lookup(0xAB42), (std::vector<u16>{1, 2}));
  // The wildcard's label becomes highest priority.
  rig.prio[2] = 1;
  rig.trie->refresh(SegmentPrefix::make(0, 0), rig.log);
  EXPECT_EQ(rig.lookup(0xAB42), (std::vector<u16>{2, 1}));
}

TEST(Mbt, DuplicateInsertAndUnknownRemoveThrow) {
  Rig rig;
  rig.insert(0x1200, 8, 1, 0);
  EXPECT_THROW(
      rig.trie->insert(SegmentPrefix::make(0x1200, 8), Label{9}, rig.log),
      InternalError);
  EXPECT_THROW(rig.trie->remove(SegmentPrefix::make(0x3400, 8), rig.log),
               InternalError);
}

TEST(Mbt, ClearEmptiesEverything) {
  Rig rig;
  rig.insert(0xABCD, 16, 1, 0);
  rig.insert(0, 0, 2, 1);
  rig.trie->clear(rig.log);
  EXPECT_TRUE(rig.lookup(0xABCD).empty());
  EXPECT_EQ(rig.lists.live_words(), 0u);
  EXPECT_EQ(rig.trie->prefix_count(), 0u);
  // Reusable after clear.
  rig.insert(0xABCD, 16, 3, 0);
  EXPECT_EQ(rig.lookup(0xABCD), std::vector<u16>{3});
}

TEST(Mbt, ConfigValidation) {
  LabelListStore lists("l", 64, kIpLabelBits);
  auto cb = [](Label) { return Priority{0}; };
  MbtConfig bad1;
  bad1.strides = {5, 5, 5};  // sums to 15
  EXPECT_THROW(MultiBitTrie("t", bad1, lists, cb), ConfigError);
  MbtConfig bad2;
  bad2.level_capacity = {1, 2};  // size mismatch
  EXPECT_THROW(MultiBitTrie("t", bad2, lists, cb), ConfigError);
  MbtConfig ok;
  EXPECT_THROW(MultiBitTrie("t", ok, lists, nullptr), ConfigError);
}

TEST(Mbt, CapacityErrorWhenPoolExhausted) {
  MbtConfig tiny;
  tiny.level_capacity = {1, 1, 1};
  Rig rig(tiny);
  rig.insert(0x0100, 16, 1, 0);  // uses the single L1+L2 node chain
  // A 16-bit prefix under a different root entry needs a second L1 node.
  EXPECT_THROW(rig.insert(0xFF00, 16, 2, 0), CapacityError);
}

TEST(Mbt, MemoryAccounting) {
  Rig rig;
  EXPECT_GT(rig.trie->capacity_bits(), 0u);
  const u64 empty_bits = rig.trie->live_node_bits();
  rig.insert(0xABCD, 16, 1, 0);
  EXPECT_GT(rig.trie->live_node_bits(), empty_bits);
  EXPECT_LE(rig.trie->live_node_bits(), rig.trie->capacity_bits());
}

TEST(Mbt, UpdateCommandsAreLocal) {
  // A host (/16) insert under an existing subtree must touch only the
  // covered entries, not the whole trie.
  Rig rig;
  rig.insert(0xAB00, 8, 1, 1);
  const usize before = rig.log.size();
  rig.insert(0xABCD, 16, 2, 2);  // creates one L3 node + 1 entry update
  const usize delta = rig.log.size() - before;
  // L3 node init (64 entries) + parent pointer + covered entry + lists.
  EXPECT_LE(delta, 64u + 8u + 4u);
}

// ---- Property sweep: random prefix sets vs the oracle ----

class MbtProperty : public ::testing::TestWithParam<u64> {};

TEST_P(MbtProperty, MatchesCoveringOracleWithChurn) {
  Rng rng(GetParam());
  Rig rig;
  Oracle oracle;
  u16 next_label = 0;

  // Random inserts with occasional removals.
  for (int step = 0; step < 120; ++step) {
    if (!oracle.entries.empty() && rng.chance(0.25)) {
      const usize idx = rng.below(oracle.entries.size());
      rig.trie->remove(oracle.entries[idx].p, rig.log);
      oracle.entries.erase(oracle.entries.begin() +
                           static_cast<i64>(idx));
      continue;
    }
    const u8 len = static_cast<u8>(rng.below(17));
    const auto p =
        SegmentPrefix::make(static_cast<u16>(rng.next()), len);
    bool dup = false;
    for (const auto& e : oracle.entries) {
      dup |= e.p == p;
    }
    if (dup) continue;
    const u16 label = next_label++;
    const Priority prio = static_cast<Priority>(rng.below(50));
    rig.insert(p.value, p.length, label, prio);
    oracle.entries.push_back({p, label, prio});
  }

  // Probe random keys plus every prefix boundary.
  std::vector<u16> keys;
  for (int i = 0; i < 200; ++i) {
    keys.push_back(static_cast<u16>(rng.next()));
  }
  for (const auto& e : oracle.entries) {
    keys.push_back(e.p.value);
    keys.push_back(static_cast<u16>(
        e.p.value | mask_low(16u - e.p.length)));
  }
  for (u16 k : keys) {
    EXPECT_EQ(rig.lookup(k), oracle.lookup(k)) << "key=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MbtProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));
