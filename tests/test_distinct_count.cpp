// Regression pin for the adaptive path controller's distinct-header
// count. The count used to re-hash every header into a scratch vector
// and sort it per batch (O(n log n) on the hot path); it is now a
// streaming open-addressed presence tally over the same
// std::hash<FiveTuple> fingerprints. The controller consumes the value
// verbatim, so the replacement must be *value-identical* to the old
// sort+unique — these tests pin scratch.last_batch_distinct against a
// sort-unique reference recomputed the old way.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.hpp"
#include "core/classifier.hpp"
#include "workload/profile.hpp"
#include "workload/ruleset_synth.hpp"
#include "workload/trace_synth.hpp"

using namespace pclass;

namespace {

/// The former implementation, verbatim: fingerprint every header, sort,
/// count unique values.
usize sort_unique_distinct(const std::vector<net::FiveTuple>& in) {
  std::vector<u64> fp;
  fp.reserve(in.size());
  for (const net::FiveTuple& t : in) {
    fp.push_back(std::hash<net::FiveTuple>{}(t));
  }
  std::sort(fp.begin(), fp.end());
  return static_cast<usize>(
      std::unique(fp.begin(), fp.end()) - fp.begin());
}

struct Harness {
  core::ConfigurableClassifier clf;
  core::BatchScratch scratch;
  std::vector<core::ClassifyResult> out;

  explicit Harness(const ruleset::RuleSet& rules)
      : clf([&] {
          core::ClassifierConfig cfg =
              core::ClassifierConfig::for_scale(rules.size() + 64);
          cfg.combine_mode = core::CombineMode::kCrossProduct;
          // Adaptive policy: the only path that pays the distinct count.
          cfg.batch_path_policy = core::PathPolicy::kAdaptive;
          return cfg;
        }()) {
    clf.add_rules(rules);
  }

  usize count_for(const std::vector<net::FiveTuple>& in) {
    out.assign(in.size(), {});
    clf.classify_batch(in, out, scratch);
    return scratch.last_batch_distinct;
  }
};

ruleset::RuleSet small_rules(u64 seed) {
  return workload::synthesize(
      workload::RulesetProfile::by_family("acl", 48, seed));
}

}  // namespace

TEST(DistinctCount, AllDistinctAndAllDuplicate) {
  const ruleset::RuleSet rules = small_rules(0xD157);
  Harness h(rules);

  std::vector<net::FiveTuple> in;
  for (u16 i = 0; i < 64; ++i) {
    in.push_back({ipv4(10, 0, static_cast<u8>(i), 1), ipv4(10, 1, 2, 3),
                  static_cast<u16>(1000 + i), 80, net::kProtoTcp});
  }
  EXPECT_EQ(h.count_for(in), sort_unique_distinct(in));
  EXPECT_EQ(h.count_for(in), 64u);

  in.assign(64, in.front());
  EXPECT_EQ(h.count_for(in), sort_unique_distinct(in));
  EXPECT_EQ(h.count_for(in), 1u);
}

TEST(DistinctCount, StreamingTallyMatchesSortUniqueUnderChurn) {
  const ruleset::RuleSet rules = small_rules(0xD158);
  workload::TraceSynthesizer ts(
      rules, workload::TraceProfile::zipf_heavy(2048, 0xD158 ^ 1));
  const net::Trace trace = ts.generate();
  Harness h(rules);

  Rng rng(0xD158 ^ 2);
  usize off = 0;
  int batches_counted = 0;
  while (off < trace.size()) {
    // Varying batch lengths: the presence table resizes, refills and is
    // reused across batches — exactly the hot-path lifetime.
    const usize len =
        std::min<usize>(1 + rng.below(192), trace.size() - off);
    std::vector<net::FiveTuple> in;
    for (usize k = 0; k < len; ++k) in.push_back(trace[off + k].header);
    off += len;

    const usize got = h.count_for(in);
    // 0 means the count was skipped (single-packet batches take the
    // scalar early-exit); only counted batches pin the value.
    if (got == 0) continue;
    ++batches_counted;
    EXPECT_EQ(got, sort_unique_distinct(in)) << "batch at offset " << off;
  }
  EXPECT_GT(batches_counted, 0);
}
