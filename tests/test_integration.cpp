// End-to-end integration: controller + switch + generated filter sets +
// wire-format traffic, reconfiguration under load, update-cost shape and
// failure injection.
#include <gtest/gtest.h>

#include "baseline/linear_search.hpp"
#include "core/cycle_model.hpp"
#include "ruleset/generator.hpp"
#include "ruleset/trace_gen.hpp"
#include "sdn/controller.hpp"
#include "sdn/switch_device.hpp"

using namespace pclass;
using pclass::ruleset::FilterType;
using pclass::ruleset::Rule;
using pclass::ruleset::RuleSet;

namespace {

RuleSet fw_set() {
  RuleSet rs = ruleset::make_classbench_like(FilterType::kFw, 1000);
  return rs;
}

}  // namespace

TEST(Integration, FullStackForwardingMatchesOracle) {
  const RuleSet rs = fw_set();
  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(rs.size());
  cfg.combine_mode = core::CombineMode::kCrossProduct;
  sdn::SwitchDevice sw("edge0", cfg);
  sdn::Controller ctl("c0");
  ctl.attach(sw);
  ctl.install_ruleset(rs);
  ASSERT_EQ(sw.flow_count(), rs.size());

  baseline::LinearSearch oracle(rs);
  ruleset::TraceGenerator tg(rs, {.headers = 1500, .random_fraction = 0.1,
                                  .seed = 21});
  const auto trace = tg.generate();
  for (const auto& e : trace) {
    const auto res = sw.process_header(e.header, 64);
    const auto* want = oracle.classify(e.header, nullptr);
    if (want == nullptr) {
      EXPECT_FALSE(res.rule.has_value());
    } else {
      ASSERT_TRUE(res.rule.has_value());
      EXPECT_EQ(res.rule->value, want->id.value);
      EXPECT_EQ(res.action.encode(), want->action.token);
    }
  }
  EXPECT_EQ(sw.stats().packets_in, trace.size());
}

TEST(Integration, WireFormatPathAgreesWithTuplePathForTcpUdp) {
  const RuleSet rs = fw_set();
  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(rs.size());
  cfg.combine_mode = core::CombineMode::kCrossProduct;
  sdn::SwitchDevice sw("edge0", cfg);
  sdn::Controller ctl("c0");
  ctl.attach(sw);
  ctl.install_ruleset(rs);

  ruleset::TraceGenerator tg(rs, {.headers = 300, .random_fraction = 0.0,
                                  .seed = 33});
  const auto trace = tg.generate();
  usize checked = 0;
  for (const auto& e : trace) {
    // ICMP tuples with synthetic port fields cannot round-trip through
    // real headers (ICMP has no ports) — skip them.
    if (e.header.protocol != net::kProtoTcp &&
        e.header.protocol != net::kProtoUdp) {
      continue;
    }
    const auto via_tuple = sw.classifier().classify(e.header);
    const auto pkt = net::make_packet(e.header, 8);
    const auto via_wire = sw.classifier().classify_packet(pkt.bytes);
    EXPECT_EQ(via_tuple.match.has_value(), via_wire.match.has_value());
    if (via_tuple.match && via_wire.match) {
      EXPECT_EQ(via_tuple.match->rule, via_wire.match->rule);
    }
    ++checked;
  }
  EXPECT_GT(checked, 100u);
}

TEST(Integration, ReconfigurationUnderChurn) {
  // Install, mutate, switch algorithms repeatedly — semantics must hold
  // at every step (this exercises the Fig. 5 shared-memory flush).
  const RuleSet rs = ruleset::make_classbench_like(FilterType::kIpc, 1000);
  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(rs.size());
  cfg.combine_mode = core::CombineMode::kCrossProduct;
  core::ConfigurableClassifier clf(cfg);

  RuleSet live("live");
  usize next = 0;
  // Install first half.
  for (; next < rs.size() / 2; ++next) {
    Rule r = rs[next];
    clf.add_rule(r);
    live.add(r);
  }
  ruleset::TraceGenerator tg(rs, {.headers = 300, .seed = 44});
  const auto trace = tg.generate();

  auto verify = [&] {
    baseline::LinearSearch oracle(live);
    for (const auto& e : trace) {
      const auto got = clf.classify(e.header);
      const auto* want = oracle.classify(e.header, nullptr);
      ASSERT_EQ(got.match.has_value(), want != nullptr);
      if (want != nullptr) {
        ASSERT_EQ(got.match->rule, want->id);
      }
    }
  };

  verify();
  clf.set_ip_algorithm(core::IpAlgorithm::kBst);
  verify();
  // Add 100 more rules while on BST.
  for (usize i = 0; i < 100 && next < rs.size(); ++i, ++next) {
    Rule r = rs[next];
    clf.add_rule(r);
    live.add(r);
  }
  verify();
  clf.set_ip_algorithm(core::IpAlgorithm::kMbt);
  verify();
}

TEST(Integration, UpdateCostShape) {
  // §V.A shape: label-hit inserts cost exactly 3 bus cycles; label-miss
  // inserts additionally pay for structure writes; BST inserts pay the
  // software-rebuild upload (its documented weakness).
  const RuleSet rs = ruleset::make_classbench_like(FilterType::kAcl, 1000);
  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(rs.size());
  core::ConfigurableClassifier clf(cfg);

  u64 min_cost = ~u64{0}, max_cost = 0;
  for (const Rule& r : rs) {
    Rule copy = r;
    const auto cost = clf.add_rule(copy);
    min_cost = std::min(min_cost, cost.cycles);
    max_cost = std::max(max_cost, cost.cycles);
  }
  // Some rule late in the set reuses all 7 field values -> 3 cycles.
  EXPECT_EQ(min_cost, 3u);
  EXPECT_GT(max_cost, 3u);
}

TEST(Integration, ThroughputModelReproducesHeadlineRates) {
  // §VI: 133.51 MHz, II=1 -> 133.51 Mlps; 42.7 Gbps @40 B; >100 Gbps
  // @100 B. Table VII BST row: II=16 -> 2.67 Gbps @40 B.
  const core::ThroughputModel m;
  EXPECT_NEAR(m.mega_lookups_per_sec(1.0), 133.51, 1e-9);
  EXPECT_NEAR(m.gbps(1.0, 40), 42.72, 0.05);
  EXPECT_GT(m.gbps(1.0, 100), 100.0);
  EXPECT_NEAR(m.gbps(16.0, 40), 2.67, 0.01);
}

TEST(Integration, SharedMemoryDisabledStillWorks) {
  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(1000);
  cfg.share_ip_memory = false;
  cfg.combine_mode = core::CombineMode::kCrossProduct;
  core::ConfigurableClassifier clf(cfg);
  const RuleSet rs = ruleset::make_classbench_like(FilterType::kAcl, 1000);
  clf.add_rules(rs);
  clf.set_ip_algorithm(core::IpAlgorithm::kBst);
  baseline::LinearSearch oracle(rs);
  ruleset::TraceGenerator tg(rs, {.headers = 300, .seed = 3});
  for (const auto& e : tg.generate()) {
    const auto got = clf.classify(e.header);
    const auto* want = oracle.classify(e.header, nullptr);
    ASSERT_EQ(got.match.has_value(), want != nullptr);
    if (want != nullptr) EXPECT_EQ(got.match->rule, want->id);
  }
  // Without sharing, BST blocks appear as their own memories.
  bool has_bst_block = false;
  for (const auto& b : clf.memory_report().blocks) {
    has_bst_block |= b.name.find(".bst") != std::string::npos;
  }
  EXPECT_TRUE(has_bst_block);
}

TEST(Integration, CapacityFailureSurfacesCleanly) {
  core::ClassifierConfig tiny;
  tiny.mbt.level_capacity = {1, 2, 2};
  tiny.bst.max_nodes = 64;
  tiny.label_store_depth = 64;
  tiny.rule_filter_depth = 64;
  core::ConfigurableClassifier clf(tiny);
  const RuleSet rs = ruleset::make_classbench_like(FilterType::kAcl, 1000);
  bool failed = false;
  for (const Rule& r : rs) {
    try {
      Rule copy = r;
      clf.add_rule(copy);
    } catch (const CapacityError& e) {
      failed = true;
      EXPECT_NE(std::string(e.what()).find("exhausted"), std::string::npos);
      break;
    }
  }
  EXPECT_TRUE(failed);
}

TEST(Integration, PipelineTimingMatchesTableVi) {
  // Table VI: MBT sustains 1 lookup/cycle steady-state; BST needs its
  // walk depth per packet. Measured through the Fig. 3 pipeline model.
  const RuleSet rs = ruleset::make_classbench_like(FilterType::kAcl, 1000);
  core::ClassifierConfig cfg = core::ClassifierConfig::for_scale(rs.size());
  core::ConfigurableClassifier clf(cfg);
  clf.add_rules(rs);

  const auto mbt = clf.lookup_pipeline().simulate(100000);
  EXPECT_NEAR(mbt.cycles_per_packet, 1.0, 0.001);

  clf.set_ip_algorithm(core::IpAlgorithm::kBst);
  const auto bst = clf.lookup_pipeline().simulate(100000);
  EXPECT_GT(bst.cycles_per_packet, 4.0);
  EXPECT_LE(bst.cycles_per_packet, 17.0);
}
