/// \file registry.hpp
/// Named read/write handler registry — the etalon ControlSocket shape:
/// an element exports `read`-style introspection handlers and
/// `write`-style mutation handlers under flat names, and the socket
/// server dispatches request lines to them by name.
///
/// The registry is built once (by the ControlPlane) before the server
/// starts and is read-only afterwards, so lookups need no locking.
/// Handlers themselves must be thread-safe: connection threads invoke
/// them concurrently.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "control/protocol.hpp"

namespace pclass::control {

/// A handler takes the request's argument tokens (everything after the
/// handler name) and returns status + optional payload. Exceptions are
/// mapped by the dispatcher: ParseError/ConfigError -> 400, anything
/// else -> 500.
using Handler = std::function<HandlerResult(std::span<const std::string>)>;

class HandlerRegistry {
 public:
  void add_read(std::string name, Handler h) {
    read_[std::move(name)] = std::move(h);
  }
  void add_write(std::string name, Handler h) {
    write_[std::move(name)] = std::move(h);
  }

  [[nodiscard]] const Handler* find_read(const std::string& name) const {
    const auto it = read_.find(name);
    return it == read_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const Handler* find_write(const std::string& name) const {
    const auto it = write_.find(name);
    return it == write_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::vector<std::string> read_names() const {
    std::vector<std::string> out;
    out.reserve(read_.size());
    for (const auto& [name, h] : read_) out.push_back(name);
    return out;
  }
  [[nodiscard]] std::vector<std::string> write_names() const {
    std::vector<std::string> out;
    out.reserve(write_.size());
    for (const auto& [name, h] : write_) out.push_back(name);
    return out;
  }

 private:
  std::map<std::string, Handler> read_;
  std::map<std::string, Handler> write_;
};

}  // namespace pclass::control
