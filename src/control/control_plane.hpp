/// \file control_plane.hpp
/// The ControlPlane binds a *running* Engine + RuleProgramPublisher to
/// the control socket's handler registry — the glue layer of the live
/// introspection plane:
///
///   * read handlers snapshot the per-worker WorkerTelemetry atomics
///     without stopping anything (`read stats` JSON, `read metrics`
///     Prometheus text, `read timeseries`, `read version`,
///     `read handlers`, `read verify`);
///   * write handlers drive the southbound path (`rule add/remove/
///     modify`, `set <knob>`, `trace start/stop/dump`, `drain`,
///     `shutdown`);
///   * a visibility watcher measures true socket-to-dataplane update
///     latency per accepted command: the command's parse timestamp and
///     the PublishClock's publish stamp are paired with the moment the
///     workers' live snapshot_version counters catch up (first worker
///     and all workers), surfaced in `read stats` and the final report;
///   * the StatsSampler subscriber hook is re-exposed per client with
///     interval decimation: rows are merged sum-exactly until the
///     client's requested window elapses, so a 500ms subscriber of a
///     100ms sampler still sees deltas that sum to the totals.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "control/registry.hpp"
#include "control/server.hpp"
#include "dataplane/engine.hpp"
#include "dataplane/rule_program.hpp"
#include "net/trace.hpp"
#include "telemetry/sample.hpp"

namespace pclass::workload {
class JsonWriter;
}

namespace pclass::control {

/// Socket-to-dataplane visibility rollup for socket-driven updates.
/// "first" = the earliest worker classifying on the new version;
/// "all" = every worker on (at least) it. Latencies are measured by a
/// ~0.2ms poller, so they are upper bounds tight to that granularity.
struct SocketVisibility {
  u64 samples = 0;  ///< fully-resolved updates
  double cmd_to_first_mean_ns = 0;
  u64 cmd_to_first_max_ns = 0;
  double cmd_to_all_mean_ns = 0;
  u64 cmd_to_all_max_ns = 0;
  double publish_to_first_mean_ns = 0;
  u64 publish_to_first_max_ns = 0;
  u64 pending = 0;     ///< in flight (not yet seen by every worker)
  u64 unresolved = 0;  ///< abandoned (engine drained before visibility)
};

/// One stats row as a JSON object (the shared field layout of
/// `subscribe stats` rows, `read timeseries` and the daemon report).
void write_stats_sample(workload::JsonWriter& w,
                        const telemetry::StatsSample& s);

/// One NDJSON-serialized stats row (shared by `subscribe stats`, `read
/// timeseries` and the daemon report's timeseries rendering).
[[nodiscard]] std::string format_stats_row(const telemetry::StatsSample& s);

class ControlPlane {
 public:
  struct Options {
    /// Trace for `read verify` (oracle re-classification of every
    /// header against the published snapshot). nullptr disables the
    /// handler with 409.
    const net::Trace* verify_trace = nullptr;
    /// Invoked by `write shutdown` *after* the handler returned (from
    /// the connection thread). Must only signal — e.g. flip a flag and
    /// notify the daemon's main loop; tearing the server down from here
    /// would self-deadlock.
    std::function<void()> request_shutdown;
    /// Cap on `trace start` capture buffers (events).
    usize trace_capture_limit = usize{1} << 15;
  };

  /// Attach to a STARTED engine (the visibility watcher snapshots the
  /// worker telemetry blocks at construction). \p engine, \p publisher
  /// and anything referenced by \p opts must outlive the ControlPlane.
  ControlPlane(dataplane::Engine& engine,
               dataplane::RuleProgramPublisher& publisher, Options opts);
  ControlPlane(dataplane::Engine& engine,
               dataplane::RuleProgramPublisher& publisher);
  ~ControlPlane();

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  [[nodiscard]] const HandlerRegistry& registry() const { return registry_; }

  /// Subscription hooks for the ControlServer (bound to this).
  [[nodiscard]] SubscribeHooks subscribe_hooks();

  /// Stop the engine (final telemetry flush included), remember its
  /// report, flush partial subscriber windows and settle the visibility
  /// ledger. Idempotent and callable from any thread — the daemon's
  /// signal path and a `write drain` may race. The server keeps
  /// answering reads afterwards (that is the CI reconcile moment).
  dataplane::EngineReport drain();

  [[nodiscard]] bool drained() const {
    std::lock_guard<std::mutex> lk(engine_mu_);
    return drained_;
  }

  [[nodiscard]] SocketVisibility socket_visibility() const;

  /// Socket-driven updates accepted (rule + set commands).
  [[nodiscard]] u64 updates_accepted() const {
    return updates_accepted_.load(std::memory_order_relaxed);
  }

  // Payload builders, public so the daemon's final report and the tests
  // can reuse exactly what the wire serves.
  [[nodiscard]] std::string stats_json();
  [[nodiscard]] std::string metrics_text();
  [[nodiscard]] std::string timeseries_json();

 private:
  struct SubState;
  struct PendingUpdate {
    u64 version = 0;
    u64 t_cmd_ns = 0;      ///< request parse time
    u64 t_publish_ns = 0;  ///< PublishClock stamp (fallback: t_cmd)
    u64 t_first_ns = 0;    ///< first worker sighting (0 = not yet)
  };

  void build_registry();
  /// The write-rule / write-set tail: stamp + enqueue for the watcher.
  void note_socket_update(u64 version, u64 t_cmd_ns);
  void visibility_loop();
  /// One resolution pass over pending_ (called by the watcher and once
  /// at drain); caller must NOT hold vis_mu_.
  void visibility_pass();
  /// Min/max snapshot_version over the live worker blocks (0 = a
  /// worker that never classified yet).
  [[nodiscard]] std::pair<u64, u64> worker_versions() const;

  u64 subscribe_stats(u64 interval_ms,
                      std::function<void(const std::string&)> push_row);
  void unsubscribe_stats(u64 token);

  dataplane::Engine& engine_;
  dataplane::RuleProgramPublisher& publisher_;
  Options opts_;
  HandlerRegistry registry_;
  std::vector<const telemetry::WorkerTelemetry*> tel_blocks_;
  u64 t_attach_ns_ = 0;

  /// Serializes engine lifecycle (drain) against every handler that
  /// touches the engine or its sampler.
  mutable std::mutex engine_mu_;
  bool drained_ = false;
  dataplane::EngineReport final_report_;

  std::atomic<u64> updates_accepted_{0};

  // Visibility watcher state.
  mutable std::mutex vis_mu_;
  std::condition_variable vis_cv_;
  bool vis_stop_ = false;
  std::deque<PendingUpdate> pending_;
  u64 vis_samples_ = 0;
  u64 cmd_first_total_ns_ = 0;
  u64 cmd_first_max_ns_ = 0;
  u64 cmd_all_total_ns_ = 0;
  u64 cmd_all_max_ns_ = 0;
  u64 pub_first_total_ns_ = 0;
  u64 pub_first_max_ns_ = 0;
  u64 vis_unresolved_ = 0;
  std::thread vis_thread_;

  // Streaming subscribers (token -> decimating window state).
  std::mutex subs_mu_;
  std::map<u64, std::shared_ptr<SubState>> subs_;

  // On-demand trace capture (`trace start/stop/dump`).
  std::mutex trace_mu_;
  std::vector<telemetry::TraceEvent> last_capture_;
  u64 last_capture_truncated_ = 0;
  bool has_capture_ = false;
};

}  // namespace pclass::control
