/// \file protocol.hpp
/// The control socket's line-oriented wire protocol (the etalon
/// ControlSocket read/write-handler idiom): requests are single
/// whitespace-tokenized lines, responses are a status line optionally
/// followed by a length-framed payload. docs/CONTROL.md is the
/// normative reference; this header is its code twin.
///
/// Request grammar:
///   read <handler> [args...]
///   write <handler> [args...]
///   subscribe stats <interval_ms>
///   quit
///
/// Response framing:
///   <code> <message>\n                      (always)
///   DATA <nbytes>\n<nbytes payload bytes>   (read handlers with a body)
///
/// Codes follow the familiar HTTP-ish buckets so scripted clients can
/// branch on the first digit: 2xx success, 4xx client error, 5xx
/// server-side refusal.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "sdn/flow_mod.hpp"

namespace pclass::control {

/// Hard per-request line cap (bytes, excluding the terminator). A
/// client that exceeds it gets kLineTooLong and the connection closed —
/// the parser never buffers unbounded input.
inline constexpr usize kMaxLineBytes = 4096;

// Response codes (see file header).
inline constexpr int kOk = 200;
inline constexpr int kBadRequest = 400;      ///< malformed args / parse error
inline constexpr int kUnknownHandler = 404;  ///< no handler of that name
inline constexpr int kConflict = 409;        ///< valid but refused (state)
inline constexpr int kLineTooLong = 431;     ///< request exceeded kMaxLineBytes
inline constexpr int kInternalError = 500;   ///< handler threw unexpectedly
inline constexpr int kTooManyConnections = 503;

/// What a handler returns: a status line and (read handlers) a payload.
struct HandlerResult {
  int code = kOk;
  std::string message = "OK";  ///< single line, no '\n'
  std::optional<std::string> payload;  ///< DATA-framed body when present

  [[nodiscard]] static HandlerResult ok(std::string msg = "OK") {
    return {kOk, std::move(msg), std::nullopt};
  }
  [[nodiscard]] static HandlerResult with_payload(std::string body) {
    return {kOk, "OK", std::move(body)};
  }
  [[nodiscard]] static HandlerResult error(int code, std::string msg) {
    return {code, std::move(msg), std::nullopt};
  }
};

/// Split \p line on ASCII whitespace (empty tokens elided). A trailing
/// '\r' (CRLF clients) is stripped first.
[[nodiscard]] std::vector<std::string> tokenize(std::string_view line);

/// Render the status line (without payload framing).
[[nodiscard]] std::string format_status(int code, std::string_view message);

// ---- argument sub-grammars (shared by handlers and tests) ----
// All parsers throw ParseError with a one-line reason on bad input; the
// dispatcher maps that to kBadRequest.

/// `<a.b.c.d>/<len>` or `*` -> IpPrefix.
[[nodiscard]] ruleset::IpPrefix parse_ip_prefix(const std::string& text);

/// `<lo>-<hi>`, `<port>` or `*` -> PortRange.
[[nodiscard]] ruleset::PortRange parse_port_range(const std::string& text);

/// `<proto>` (0..255) or `*` -> ProtoMatch.
[[nodiscard]] ruleset::ProtoMatch parse_proto(const std::string& text);

/// `drop`, `out:<port>` or `group:<id>` -> ActionSpec.
[[nodiscard]] sdn::ActionSpec parse_action(const std::string& text);

/// Args after the `rule` handler name:
///   add <id> <priority> <src> <dst> <sports> <dports> <proto> <action>
///   remove <id>
///   modify <id> <action>
/// -> the southbound FlowMod. \throws ParseError.
[[nodiscard]] sdn::Message parse_rule_command(
    std::span<const std::string> args);

/// Args after the `set` handler name:
///   path-policy adaptive|phase2|scalar-loop
///   memo-ways <n>
///   batch-mode scalar|phase2
///   ip-alg mbt|bst
/// -> a single-knob ConfigMod. \throws ParseError.
[[nodiscard]] sdn::Message parse_set_command(std::span<const std::string> args);

}  // namespace pclass::control
