#include "control/control_plane.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>

#include "baseline/linear_search.hpp"
#include "common/build_info.hpp"
#include "common/error.hpp"
#include "common/parse.hpp"
#include "telemetry/export.hpp"
#include "workload/json_writer.hpp"

namespace pclass::control {

using common::build_info;

namespace {

/// How often the visibility watcher re-reads the workers'
/// snapshot_version counters while updates are in flight. Latency
/// samples are upper bounds tight to this granularity.
constexpr auto kVisibilityPoll = std::chrono::microseconds(200);

u64 elapsed_clamped(u64 later_ns, u64 earlier_ns) {
  // Same steady clock on both stamps, but clamp anyway (and never
  // report a zero: the events are causally ordered, so a sub-tick
  // measurement still took *some* time).
  return later_ns > earlier_ns ? later_ns - earlier_ns : 1;
}

}  // namespace

void write_stats_sample(workload::JsonWriter& w,
                        const telemetry::StatsSample& s) {
  w.begin_object();
  w.key("t_ns").value(s.t_ns);
  w.key("interval_ns").value(s.interval_ns);
  w.key("packets").value(s.packets);
  w.key("batches").value(s.batches);
  w.key("cache_hits").value(s.cache_hits);
  w.key("classifier_lookups").value(s.classifier_lookups);
  w.key("probe_memo_hits").value(s.probe_memo_hits);
  w.key("memory_accesses").value(s.memory_accesses);
  w.key("mpps").value(s.mpps);
  w.key("p50_cycles").value(s.p50_cycles);
  w.key("p99_cycles").value(s.p99_cycles);
  w.key("min_version").value(s.min_version);
  w.key("max_version").value(s.max_version);
  w.key("update_visibility_samples").value(s.update_visibility_samples);
  w.key("update_visibility_mean_ns").value(s.update_visibility_mean_ns);
  w.end_object();
}

std::string format_stats_row(const telemetry::StatsSample& s) {
  std::ostringstream os;
  workload::JsonWriter w(os);
  write_stats_sample(w, s);
  os << '\n';
  return os.str();
}

/// Per-subscriber decimation window: sampler rows are merged sum-exactly
/// and emitted once the client's requested interval has elapsed, so a
/// coarse subscriber of a fine sampler still sees deltas that sum to
/// the totals. Shared-ptr owned by both the sampler callback and the
/// ControlPlane's map (whichever drops last frees it).
struct ControlPlane::SubState {
  u64 requested_ns = 0;
  std::function<void(const std::string&)> push;

  std::mutex mu;
  telemetry::StatsSample acc{};
  double vis_weight_ns = 0;  ///< samples-weighted visibility mean
  bool any = false;

  void merge_locked(const telemetry::StatsSample& s) {
    acc.t_ns = s.t_ns;
    acc.interval_ns += s.interval_ns;
    acc.packets += s.packets;
    acc.batches += s.batches;
    acc.cache_hits += s.cache_hits;
    acc.classifier_lookups += s.classifier_lookups;
    acc.probe_memo_hits += s.probe_memo_hits;
    acc.memory_accesses += s.memory_accesses;
    // Percentiles and versions are point-in-time: latest row wins.
    acc.p50_cycles = s.p50_cycles;
    acc.p99_cycles = s.p99_cycles;
    acc.min_version = s.min_version;
    acc.max_version = s.max_version;
    vis_weight_ns += static_cast<double>(s.update_visibility_samples) *
                     s.update_visibility_mean_ns;
    acc.update_visibility_samples += s.update_visibility_samples;
    any = true;
  }

  [[nodiscard]] telemetry::StatsSample take_locked() {
    telemetry::StatsSample out = acc;
    out.mpps = out.interval_ns == 0
                   ? 0.0
                   : static_cast<double>(out.packets) * 1e3 /
                         static_cast<double>(out.interval_ns);
    out.update_visibility_mean_ns =
        out.update_visibility_samples == 0
            ? 0.0
            : vis_weight_ns /
                  static_cast<double>(out.update_visibility_samples);
    acc = {};
    vis_weight_ns = 0;
    any = false;
    return out;
  }

  /// Sampler callback: accumulate; emit when the window filled. The 10%
  /// slack absorbs timer jitter (a 100ms tick often measures ~99.x ms).
  void add_row(const telemetry::StatsSample& s) {
    std::optional<telemetry::StatsSample> out;
    {
      std::lock_guard<std::mutex> lk(mu);
      merge_locked(s);
      if (acc.interval_ns + requested_ns / 10 >= requested_ns) {
        out = take_locked();
      }
    }
    if (out) push(format_stats_row(*out));
  }

  /// Emit whatever partial window remains (drain path).
  void flush() {
    std::optional<telemetry::StatsSample> out;
    {
      std::lock_guard<std::mutex> lk(mu);
      if (any) out = take_locked();
    }
    if (out) push(format_stats_row(*out));
  }
};

ControlPlane::ControlPlane(dataplane::Engine& engine,
                           dataplane::RuleProgramPublisher& publisher,
                           Options opts)
    : engine_(engine), publisher_(publisher), opts_(std::move(opts)) {
  tel_blocks_ = engine_.telemetry_blocks();
  t_attach_ns_ = telemetry::steady_now_ns();
  build_registry();
  vis_thread_ = std::thread([this] { visibility_loop(); });
}

ControlPlane::ControlPlane(dataplane::Engine& engine,
                           dataplane::RuleProgramPublisher& publisher)
    : ControlPlane(engine, publisher, Options{}) {}

ControlPlane::~ControlPlane() {
  {
    std::lock_guard<std::mutex> lk(vis_mu_);
    vis_stop_ = true;
  }
  vis_cv_.notify_all();
  if (vis_thread_.joinable()) vis_thread_.join();
}

SubscribeHooks ControlPlane::subscribe_hooks() {
  SubscribeHooks hooks;
  hooks.subscribe = [this](u64 interval_ms,
                           std::function<void(const std::string&)> push) {
    return subscribe_stats(interval_ms, std::move(push));
  };
  hooks.unsubscribe = [this](u64 token) { unsubscribe_stats(token); };
  return hooks;
}

// ---- registry -------------------------------------------------------------

void ControlPlane::build_registry() {
  registry_.add_read("version", [](std::span<const std::string>) {
    const auto& b = build_info();
    std::ostringstream os;
    workload::JsonWriter w(os);
    w.begin_object();
    w.key("version").value(b.version);
    w.key("git_sha").value(b.git_sha);
    w.key("compiler").value(b.compiler);
    w.key("build_type").value(b.build_type);
    w.end_object();
    os << '\n';
    return HandlerResult::with_payload(os.str());
  });

  registry_.add_read("handlers", [this](std::span<const std::string>) {
    std::string out = "read:";
    for (const auto& n : registry_.read_names()) out += " " + n;
    out += "\nwrite:";
    for (const auto& n : registry_.write_names()) out += " " + n;
    out += "\nother: subscribe stats <ms> | quit\n";
    return HandlerResult::with_payload(std::move(out));
  });

  registry_.add_read("stats", [this](std::span<const std::string>) {
    return HandlerResult::with_payload(stats_json());
  });

  registry_.add_read("metrics", [this](std::span<const std::string>) {
    return HandlerResult::with_payload(metrics_text());
  });

  registry_.add_read("timeseries", [this](std::span<const std::string>) {
    return HandlerResult::with_payload(timeseries_json());
  });

  registry_.add_read("verify", [this](std::span<const std::string>) {
    if (opts_.verify_trace == nullptr) {
      return HandlerResult::error(kConflict,
                                  "no verify trace attached to this daemon");
    }
    // Oracle re-classification against the *published* snapshot: pure
    // read side, no engine lock — a slow verify must not block stats
    // scrapes or updates.
    const auto snap = publisher_.acquire();
    const auto installed = snap->classifier().installed_rules();
    ruleset::RuleSet oracle_rules("oracle");
    for (const ruleset::Rule& rule : installed) {
      oracle_rules.add_verbatim(rule);
    }
    const baseline::LinearSearch oracle(oracle_rules);
    u64 checked = 0;
    u64 mismatches = 0;
    for (const auto& e : *opts_.verify_trace) {
      const auto res = snap->classifier().classify(e.header);
      const ruleset::Rule* want = oracle.classify(e.header, nullptr);
      const bool agree = want == nullptr
                             ? !res.match.has_value()
                             : res.match && res.match->rule == want->id;
      ++checked;
      if (!agree) ++mismatches;
    }
    std::ostringstream os;
    workload::JsonWriter w(os);
    w.begin_object();
    w.key("schema").value("pclass-verify-v1");
    w.key("snapshot_version").value(snap->version());
    w.key("rules").value(static_cast<u64>(snap->rule_count()));
    w.key("checked").value(checked);
    w.key("mismatches").value(mismatches);
    w.end_object();
    os << '\n';
    return HandlerResult::with_payload(os.str());
  });

  const auto apply_update = [this](const sdn::Message& msg, u64 t_cmd_ns) {
    std::lock_guard<std::mutex> lk(engine_mu_);
    if (drained_) {
      return HandlerResult::error(kConflict,
                                  "engine drained; updates no longer land");
    }
    publisher_.apply(msg);  // throws -> mapped by the dispatcher
    const u64 version = publisher_.version();
    note_socket_update(version, t_cmd_ns);
    updates_accepted_.fetch_add(1, std::memory_order_relaxed);
    return HandlerResult::ok(
        "version=" + std::to_string(version) +
        " rules=" + std::to_string(publisher_.acquire()->rule_count()));
  };

  registry_.add_write("rule", [apply_update](std::span<const std::string> args) {
    const u64 t_cmd = telemetry::steady_now_ns();
    return apply_update(parse_rule_command(args), t_cmd);
  });

  registry_.add_write("set", [apply_update](std::span<const std::string> args) {
    const u64 t_cmd = telemetry::steady_now_ns();
    return apply_update(parse_set_command(args), t_cmd);
  });

  registry_.add_write("trace", [this](std::span<const std::string> args) {
    if (args.empty()) {
      throw ParseError("trace: expected start|stop|dump <file>");
    }
    std::lock_guard<std::mutex> lk(engine_mu_);
    telemetry::StatsSampler* sampler = drained_ ? nullptr : engine_.sampler();
    const std::string& verb = args[0];
    if (verb == "start") {
      if (sampler == nullptr) {
        return HandlerResult::error(
            kConflict, "no sampler (drained, or --stats-interval-ms 0)");
      }
      usize limit = opts_.trace_capture_limit;
      if (args.size() == 2) {
        u64 v = 0;
        if (!pclass::parse_count(args[1], v)) {
          throw ParseError("trace start: bad event limit '" + args[1] + "'");
        }
        limit = static_cast<usize>(v);
      } else if (args.size() > 2) {
        throw ParseError("trace start: expected at most [limit]");
      }
      sampler->trace_capture_start(limit);
      return HandlerResult::ok("capturing limit=" + std::to_string(limit));
    }
    if (verb == "stop") {
      if (sampler == nullptr || !sampler->trace_capturing()) {
        return HandlerResult::error(kConflict, "not capturing");
      }
      u64 truncated = 0;
      auto events = sampler->trace_capture_stop(&truncated);
      std::lock_guard<std::mutex> tlk(trace_mu_);
      last_capture_ = std::move(events);
      last_capture_truncated_ = truncated;
      has_capture_ = true;
      return HandlerResult::ok(
          "events=" + std::to_string(last_capture_.size()) +
          " truncated=" + std::to_string(truncated));
    }
    if (verb == "dump") {
      if (args.size() != 2) {
        throw ParseError("trace dump: expected <file>");
      }
      // Dump implies stop: a running capture is taken first so the file
      // always reflects everything captured up to this request.
      if (sampler != nullptr && sampler->trace_capturing()) {
        u64 truncated = 0;
        auto events = sampler->trace_capture_stop(&truncated);
        std::lock_guard<std::mutex> tlk(trace_mu_);
        last_capture_ = std::move(events);
        last_capture_truncated_ = truncated;
        has_capture_ = true;
      }
      std::lock_guard<std::mutex> tlk(trace_mu_);
      if (!has_capture_) {
        return HandlerResult::error(kConflict,
                                    "no capture (run `write trace start` "
                                    "first)");
      }
      std::ofstream os(args[1], std::ios::binary | std::ios::trunc);
      if (!os) {
        return HandlerResult::error(kInternalError,
                                    "cannot open " + args[1]);
      }
      telemetry::TraceProcess proc;
      proc.name = "pclass_serve";
      proc.events = last_capture_;
      telemetry::write_chrome_trace(os, std::span(&proc, 1));
      os.flush();
      if (!os) {
        return HandlerResult::error(kInternalError,
                                    "short write to " + args[1]);
      }
      return HandlerResult::ok(
          "events=" + std::to_string(last_capture_.size()) +
          " truncated=" + std::to_string(last_capture_truncated_) +
          " file=" + args[1]);
    }
    throw ParseError("trace: unknown verb '" + verb + "'");
  });

  registry_.add_write("drain", [this](std::span<const std::string>) {
    const dataplane::EngineReport rep = drain();
    return HandlerResult::ok(
        "packets=" + std::to_string(rep.packets()) +
        " matched=" + std::to_string(rep.matched()) +
        " workers=" + std::to_string(rep.workers.size()));
  });

  registry_.add_write("shutdown", [this](std::span<const std::string>) {
    if (!opts_.request_shutdown) {
      return HandlerResult::error(kConflict,
                                  "no shutdown hook (test harness?)");
    }
    // Only signal — the daemon's main loop drains and tears the server
    // down; doing it here would self-deadlock on this very connection.
    opts_.request_shutdown();
    return HandlerResult::ok("shutting down");
  });
}

// ---- socket-to-dataplane visibility ---------------------------------------

void ControlPlane::note_socket_update(u64 version, u64 t_cmd_ns) {
  PendingUpdate p;
  p.version = version;
  p.t_cmd_ns = t_cmd_ns;
  // The PublishClock stamp was note()d just before the snapshot swap;
  // a recycled slot (update storm) falls back to the command time, so
  // publish_to_first degenerates to cmd_to_first rather than vanishing.
  p.t_publish_ns =
      publisher_.publish_clock().lookup(version).value_or(t_cmd_ns);
  {
    std::lock_guard<std::mutex> lk(vis_mu_);
    pending_.push_back(p);
  }
  vis_cv_.notify_all();
}

std::pair<u64, u64> ControlPlane::worker_versions() const {
  if (tel_blocks_.empty()) return {0, 0};
  u64 min_v = 0;
  u64 max_v = 0;
  bool first = true;
  for (const auto* t : tel_blocks_) {
    const u64 v = telemetry::counter_load(t->live.snapshot_version);
    max_v = std::max(max_v, v);
    min_v = first ? v : std::min(min_v, v);
    first = false;
  }
  return {min_v, max_v};
}

void ControlPlane::visibility_pass() {
  const auto [min_v, max_v] = worker_versions();
  const u64 now = telemetry::steady_now_ns();
  std::lock_guard<std::mutex> lk(vis_mu_);
  for (auto& p : pending_) {
    if (p.t_first_ns == 0 && max_v >= p.version) p.t_first_ns = now;
  }
  // A worker still at version 0 never classified a batch: min_v == 0
  // blocks full resolution (conservative — "all workers" means all).
  while (!pending_.empty() && min_v >= pending_.front().version &&
         min_v != 0) {
    PendingUpdate p = pending_.front();
    pending_.pop_front();
    if (p.t_first_ns == 0) p.t_first_ns = now;
    const u64 cmd_first = elapsed_clamped(p.t_first_ns, p.t_cmd_ns);
    const u64 cmd_all = elapsed_clamped(now, p.t_cmd_ns);
    const u64 pub_first = elapsed_clamped(p.t_first_ns, p.t_publish_ns);
    ++vis_samples_;
    cmd_first_total_ns_ += cmd_first;
    cmd_first_max_ns_ = std::max(cmd_first_max_ns_, cmd_first);
    cmd_all_total_ns_ += cmd_all;
    cmd_all_max_ns_ = std::max(cmd_all_max_ns_, cmd_all);
    pub_first_total_ns_ += pub_first;
    pub_first_max_ns_ = std::max(pub_first_max_ns_, pub_first);
  }
}

void ControlPlane::visibility_loop() {
  std::unique_lock<std::mutex> lk(vis_mu_);
  while (!vis_stop_) {
    if (pending_.empty()) {
      vis_cv_.wait(lk, [this] { return vis_stop_ || !pending_.empty(); });
      continue;
    }
    lk.unlock();
    visibility_pass();
    std::this_thread::sleep_for(kVisibilityPoll);
    lk.lock();
  }
}

SocketVisibility ControlPlane::socket_visibility() const {
  std::lock_guard<std::mutex> lk(vis_mu_);
  SocketVisibility v;
  v.samples = vis_samples_;
  if (vis_samples_ > 0) {
    const auto n = static_cast<double>(vis_samples_);
    v.cmd_to_first_mean_ns = static_cast<double>(cmd_first_total_ns_) / n;
    v.cmd_to_all_mean_ns = static_cast<double>(cmd_all_total_ns_) / n;
    v.publish_to_first_mean_ns = static_cast<double>(pub_first_total_ns_) / n;
  }
  v.cmd_to_first_max_ns = cmd_first_max_ns_;
  v.cmd_to_all_max_ns = cmd_all_max_ns_;
  v.publish_to_first_max_ns = pub_first_max_ns_;
  v.pending = pending_.size();
  v.unresolved = vis_unresolved_;
  return v;
}

// ---- streaming subscriptions ----------------------------------------------

u64 ControlPlane::subscribe_stats(
    u64 interval_ms, std::function<void(const std::string&)> push_row) {
  std::lock_guard<std::mutex> lk(engine_mu_);
  telemetry::StatsSampler* sampler = drained_ ? nullptr : engine_.sampler();
  if (sampler == nullptr) return 0;
  auto st = std::make_shared<SubState>();
  st->requested_ns = interval_ms * 1'000'000;
  st->push = std::move(push_row);
  const u64 token = sampler->subscribe(
      [st](const telemetry::StatsSample& s) { st->add_row(s); });
  std::lock_guard<std::mutex> slk(subs_mu_);
  subs_[token] = std::move(st);
  return token;
}

void ControlPlane::unsubscribe_stats(u64 token) {
  if (token == 0) return;
  {
    std::lock_guard<std::mutex> lk(engine_mu_);
    if (!drained_) {
      if (auto* sampler = engine_.sampler()) sampler->unsubscribe(token);
    }
  }
  std::lock_guard<std::mutex> slk(subs_mu_);
  subs_.erase(token);
}

// ---- drain ----------------------------------------------------------------

dataplane::EngineReport ControlPlane::drain() {
  std::lock_guard<std::mutex> lk(engine_mu_);
  if (!drained_) {
    // stop() joins the workers and takes the sampler's final flush tick
    // (subscribers see their last full rows through that path).
    final_report_ = engine_.stop();
    drained_ = true;
    // One last resolution pass against the workers' final (frozen)
    // versions, then the remainder is abandoned: nothing will ever
    // classify on those versions now.
    visibility_pass();
    {
      std::lock_guard<std::mutex> vlk(vis_mu_);
      vis_unresolved_ += pending_.size();
      pending_.clear();
    }
    // Flush partial decimation windows so coarse subscribers' rows
    // still sum to the totals.
    std::vector<std::shared_ptr<SubState>> subs;
    {
      std::lock_guard<std::mutex> slk(subs_mu_);
      subs.reserve(subs_.size());
      for (const auto& [token, st] : subs_) subs.push_back(st);
    }
    for (const auto& st : subs) st->flush();
  }
  return final_report_;
}

// ---- payload builders -----------------------------------------------------

std::string ControlPlane::stats_json() {
  std::lock_guard<std::mutex> lk(engine_mu_);
  const u64 now = telemetry::steady_now_ns();
  const auto& b = build_info();
  const auto& pstats = publisher_.stats();
  const SocketVisibility sv = socket_visibility();

  std::ostringstream os;
  workload::JsonWriter w(os);
  w.begin_object();
  w.key("schema").value("pclass-live-stats-v1");
  w.key("uptime_ns").value(now - t_attach_ns_);
  w.key("engine_running").value(engine_.running());
  w.key("drained").value(drained_);
  w.key("build").begin_object();
  w.key("version").value(b.version);
  w.key("git_sha").value(b.git_sha);
  w.key("compiler").value(b.compiler);
  w.key("build_type").value(b.build_type);
  w.end_object();

  w.key("publisher").begin_object();
  w.key("version").value(publisher_.version());
  w.key("rules").value(static_cast<u64>(publisher_.acquire()->rule_count()));
  w.key("updates_applied").value(pstats.updates_applied);
  w.key("publishes").value(pstats.publishes);
  w.key("grace_spins").value(pstats.grace_spins);
  w.end_object();

  // Engine geometry: with shards > 0 the rows below are per *shard*
  // (telemetry blocks are per shard — a worker thread may drive
  // several), with `worker` carrying the shard index.
  const dataplane::EngineConfig& ecfg = engine_.config();
  w.key("engine").begin_object();
  w.key("workers").value(ecfg.workers);
  w.key("shards").value(ecfg.shards);
  w.key("shard_mode").value(std::string(to_string(ecfg.shard_mode)));
  w.key("steer_symmetric").value(ecfg.steer_symmetric);
  w.end_object();

  // Supervisor rollup (all-zero when the supervisor is off): live reads
  // of the watchdog's counters, scrapeable mid-run.
  const dataplane::SupervisorStatus ss = engine_.supervisor_status();
  w.key("supervisor").begin_object();
  w.key("enabled").value(ss.enabled);
  w.key("worker_restarts").value(ss.worker_restarts);
  w.key("stall_detections").value(ss.stall_detections);
  w.key("shards_reassigned").value(ss.shards_reassigned);
  w.key("workers_failed").value(ss.workers_failed);
  w.end_object();

  // Per-worker running totals straight off the live atomics, plus the
  // engine-wide sums the CI reconcile compares against report totals.
  u64 tot_packets = 0;
  u64 tot_batches = 0;
  u64 tot_matched = 0;
  u64 tot_dropped = 0;
  u64 tot_cache_hits = 0;
  u64 tot_lookups = 0;
  u64 tot_mem = 0;
  u64 tot_memo_hits = 0;
  u64 vis_samples = 0;
  u64 vis_total_ns = 0;
  u64 vis_max_ns = 0;
  w.key("workers").begin_array();
  for (const auto* t : tel_blocks_) {
    const auto& lv = t->live;
    using telemetry::counter_load;
    const u64 packets = counter_load(lv.packets);
    const u64 batches = counter_load(lv.batches);
    const u64 matched = counter_load(lv.matched);
    const u64 dropped = counter_load(lv.dropped);
    const u64 cache_hits = counter_load(lv.cache_hits);
    const u64 lookups = counter_load(lv.classifier_lookups);
    const u64 mem = counter_load(lv.memory_accesses);
    const u64 memo_hits = counter_load(lv.probe_memo_hits);
    tot_packets += packets;
    tot_batches += batches;
    tot_matched += matched;
    tot_dropped += dropped;
    tot_cache_hits += cache_hits;
    tot_lookups += lookups;
    tot_mem += mem;
    tot_memo_hits += memo_hits;
    vis_samples += counter_load(lv.update_visibility_samples);
    vis_total_ns += counter_load(lv.update_visibility_total_ns);
    vis_max_ns = std::max(vis_max_ns, counter_load(lv.update_visibility_max_ns));
    w.begin_object();
    w.key("worker").value(static_cast<u64>(t->worker));
    w.key("packets").value(packets);
    w.key("batches").value(batches);
    w.key("matched").value(matched);
    w.key("dropped").value(dropped);
    w.key("parse_errors").value(counter_load(lv.parse_errors));
    w.key("cache_hits").value(cache_hits);
    w.key("cache_misses").value(counter_load(lv.cache_misses));
    w.key("classifier_lookups").value(lookups);
    w.key("memory_accesses").value(mem);
    w.key("probe_memo_hits").value(memo_hits);
    w.key("probe_memo_invalidations")
        .value(counter_load(lv.probe_memo_invalidations));
    w.key("probe_memo_conflict_evictions")
        .value(counter_load(lv.probe_memo_conflict_evictions));
    w.key("path_scalar_loop_batches")
        .value(counter_load(lv.path_scalar_loop_batches));
    w.key("path_phase2_batches").value(counter_load(lv.path_phase2_batches));
    w.key("path_phase2_memo_batches")
        .value(counter_load(lv.path_phase2_memo_batches));
    w.key("snapshot_version").value(counter_load(lv.snapshot_version));
    w.end_object();
  }
  w.end_array();

  w.key("totals").begin_object();
  w.key("packets").value(tot_packets);
  w.key("batches").value(tot_batches);
  w.key("matched").value(tot_matched);
  w.key("dropped").value(tot_dropped);
  w.key("cache_hits").value(tot_cache_hits);
  w.key("classifier_lookups").value(tot_lookups);
  w.key("memory_accesses").value(tot_mem);
  w.key("probe_memo_hits").value(tot_memo_hits);
  w.end_object();

  w.key("update_visibility").begin_object();
  w.key("samples").value(vis_samples);
  w.key("mean_ns").value(vis_samples == 0
                             ? 0.0
                             : static_cast<double>(vis_total_ns) /
                                   static_cast<double>(vis_samples));
  w.key("max_ns").value(vis_max_ns);
  w.end_object();

  w.key("socket_visibility").begin_object();
  w.key("samples").value(sv.samples);
  w.key("cmd_to_first_mean_ns").value(sv.cmd_to_first_mean_ns);
  w.key("cmd_to_first_max_ns").value(sv.cmd_to_first_max_ns);
  w.key("cmd_to_all_mean_ns").value(sv.cmd_to_all_mean_ns);
  w.key("cmd_to_all_max_ns").value(sv.cmd_to_all_max_ns);
  w.key("publish_to_first_mean_ns").value(sv.publish_to_first_mean_ns);
  w.key("publish_to_first_max_ns").value(sv.publish_to_first_max_ns);
  w.key("pending").value(sv.pending);
  w.key("unresolved").value(sv.unresolved);
  w.end_object();

  w.key("updates_accepted")
      .value(updates_accepted_.load(std::memory_order_relaxed));
  w.end_object();
  os << '\n';
  return os.str();
}

std::string ControlPlane::metrics_text() {
  std::lock_guard<std::mutex> lk(engine_mu_);
  const u64 now = telemetry::steady_now_ns();
  const auto& b = build_info();
  const auto& pstats = publisher_.stats();
  const SocketVisibility sv = socket_visibility();

  std::ostringstream os;
  telemetry::MetricsWriter mw(os);
  using Label = telemetry::MetricsWriter::Label;

  {
    const Label labels[] = {{"version", b.version},
                            {"git_sha", b.git_sha},
                            {"build_type", b.build_type}};
    mw.gauge("pclass_build_info",
             "Build metadata as labels; value is always 1.", labels, 1.0);
  }
  mw.gauge("pclass_serve_uptime_seconds",
           "Seconds since the control plane attached.", {},
           static_cast<double>(now - t_attach_ns_) / 1e9);
  mw.gauge("pclass_serve_engine_running",
           "1 while the engine loop is running, 0 after drain.", {},
           engine_.running() ? 1.0 : 0.0);

  for (const auto* t : tel_blocks_) {
    const auto& lv = t->live;
    using telemetry::counter_load;
    const std::string worker = std::to_string(t->worker);
    const Label labels[] = {{"worker", worker}};
    const auto c = [&](std::string_view name, std::string_view help,
                       u64 value) {
      mw.counter(name, help, labels, static_cast<double>(value));
    };
    c("pclass_live_packets_total", "Packets sunk (running total).",
      counter_load(lv.packets));
    c("pclass_live_batches_total", "Batches processed.",
      counter_load(lv.batches));
    c("pclass_live_matched_total", "Packets matched by a rule.",
      counter_load(lv.matched));
    c("pclass_live_dropped_total", "Packets dropped (miss or drop action).",
      counter_load(lv.dropped));
    c("pclass_live_cache_hits_total", "Flow-cache hits.",
      counter_load(lv.cache_hits));
    c("pclass_live_classifier_lookups_total", "Full classifier lookups.",
      counter_load(lv.classifier_lookups));
    c("pclass_live_memory_accesses_total", "Modelled block-memory reads.",
      counter_load(lv.memory_accesses));
    c("pclass_live_probe_memo_hits_total", "Combiner probes served by memo.",
      counter_load(lv.probe_memo_hits));
    mw.gauge("pclass_live_snapshot_version",
             "Rule-program version this worker last classified against.",
             labels, static_cast<double>(counter_load(lv.snapshot_version)));
  }

  mw.gauge("pclass_publisher_version", "Published rule-program version.", {},
           static_cast<double>(publisher_.version()));
  mw.gauge("pclass_publisher_rules", "Rules in the published snapshot.", {},
           static_cast<double>(publisher_.acquire()->rule_count()));
  mw.counter("pclass_publisher_updates_applied_total",
             "Southbound updates accepted into the log.", {},
             static_cast<double>(pstats.updates_applied));
  mw.counter("pclass_publisher_publishes_total", "Snapshot swaps.", {},
             static_cast<double>(pstats.publishes));
  mw.counter("pclass_publisher_grace_spins_total",
             "Yields spent waiting for readers to drain.", {},
             static_cast<double>(pstats.grace_spins));

  {
    const dataplane::SupervisorStatus ss = engine_.supervisor_status();
    mw.gauge("pclass_supervisor_enabled",
             "1 when the engine watchdog supervises workers.", {},
             ss.enabled ? 1.0 : 0.0);
    mw.counter("pclass_supervisor_worker_restarts_total",
               "Dead workers respawned by the watchdog.", {},
               static_cast<double>(ss.worker_restarts));
    mw.counter("pclass_supervisor_stall_detections_total",
               "Heartbeat-stall episodes the watchdog observed.", {},
               static_cast<double>(ss.stall_detections));
    mw.counter("pclass_supervisor_shards_reassigned_total",
               "Shards taken over from permanently failed workers.", {},
               static_cast<double>(ss.shards_reassigned));
    mw.gauge("pclass_supervisor_workers_failed",
             "Workers permanently failed (restart budget spent).", {},
             static_cast<double>(ss.workers_failed));
  }

  mw.counter("pclass_socket_updates_accepted_total",
             "Rule/set updates accepted over the control socket.", {},
             static_cast<double>(
                 updates_accepted_.load(std::memory_order_relaxed)));
  mw.counter("pclass_socket_visibility_samples_total",
             "Socket updates whose dataplane visibility fully resolved.", {},
             static_cast<double>(sv.samples));
  mw.gauge("pclass_socket_visibility_cmd_to_first_mean_ns",
           "Mean ns from command parse to first worker on the new version.",
           {}, sv.cmd_to_first_mean_ns);
  mw.gauge("pclass_socket_visibility_cmd_to_all_mean_ns",
           "Mean ns from command parse to every worker on the new version.",
           {}, sv.cmd_to_all_mean_ns);
  mw.gauge("pclass_socket_visibility_cmd_to_all_max_ns",
           "Worst-case ns from command parse to every worker.", {},
           static_cast<double>(sv.cmd_to_all_max_ns));
  mw.gauge("pclass_socket_visibility_pending",
           "Socket updates not yet seen by every worker.", {},
           static_cast<double>(sv.pending));

  return os.str();
}

std::string ControlPlane::timeseries_json() {
  std::lock_guard<std::mutex> lk(engine_mu_);
  std::vector<telemetry::StatsSample> rows;
  if (drained_) {
    rows = final_report_.timeseries;
  } else if (auto* sampler = engine_.sampler()) {
    rows = sampler->samples_snapshot();
  }
  std::ostringstream os;
  workload::JsonWriter w(os);
  w.begin_object();
  w.key("schema").value("pclass-live-timeseries-v1");
  w.key("drained").value(drained_);
  w.key("rows").begin_array();
  for (const auto& s : rows) write_stats_sample(w, s);
  w.end_array();
  w.end_object();
  os << '\n';
  return os.str();
}

}  // namespace pclass::control
