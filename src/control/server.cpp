#include "control/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "common/parse.hpp"

namespace pclass::control {

namespace {

std::string errno_text(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

/// One client connection. The connection thread owns fd lifecycle
/// (close); writers from other threads (subscription pushes, stop()'s
/// terminal record) coordinate through wr_mu + open.
struct ControlServer::Connection {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> finished{false};  ///< thread body returned; reapable

  std::mutex wr_mu;     ///< serializes all sends; guards open/subscribed
  bool open = true;     ///< false once the fd is closed or known broken
  bool subscribed = false;
  u64 sub_token = 0;
  std::atomic<u64> rows_pushed{0};
  std::atomic<u64> rows_dropped{0};

  /// Blocking send of the whole buffer (status lines, payloads,
  /// terminal records). Returns false when the peer is gone.
  bool send_all(const std::string& data) {
    std::lock_guard<std::mutex> lk(wr_mu);
    return send_all_locked(data);
  }

  bool send_all_locked(const std::string& data) {
    if (!open || fd < 0) return false;
    usize off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        open = false;  // peer closed; the reader side will notice too
        return false;
      }
      off += static_cast<usize>(n);
    }
    return true;
  }

  /// Non-blocking push of one NDJSON row from the sampler thread.
  /// Never blocks on a slow consumer: a contended write lock or a
  /// would-block socket drops the row whole; only a row that started
  /// going out is completed (partial lines would corrupt the stream).
  void push_row(const std::string& row) {
    std::unique_lock<std::mutex> lk(wr_mu, std::try_to_lock);
    if (!lk.owns_lock()) {
      rows_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (!open || !subscribed || fd < 0) return;
    const ssize_t n =
        ::send(fd, row.data(), row.size(), MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n == static_cast<ssize_t>(row.size())) {
      rows_pushed.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (n < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        open = false;
      }
      rows_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Partially sent: finish the line (bounded by one row) to keep the
    // NDJSON framing intact.
    usize off = static_cast<usize>(n);
    while (off < row.size()) {
      const ssize_t m =
          ::send(fd, row.data() + off, row.size() - off, MSG_NOSIGNAL);
      if (m <= 0) {
        if (m < 0 && errno == EINTR) continue;
        open = false;
        rows_dropped.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      off += static_cast<usize>(m);
    }
    rows_pushed.fetch_add(1, std::memory_order_relaxed);
  }
};

ControlServer::ControlServer(ServerConfig cfg, const HandlerRegistry* registry,
                             SubscribeHooks hooks)
    : cfg_(std::move(cfg)), registry_(registry), hooks_(std::move(hooks)) {}

ControlServer::~ControlServer() { stop(); }

std::string ControlServer::endpoint() const {
  if (!cfg_.unix_path.empty()) return "unix:" + cfg_.unix_path;
  return "tcp:" + cfg_.tcp_host + ":" + std::to_string(port_);
}

void ControlServer::start() {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (started_) {
    throw ConfigError("ControlServer: already started");
  }
  if (!cfg_.unix_path.empty()) {
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (cfg_.unix_path.size() >= sizeof(sa.sun_path)) {
      throw ConfigError("ControlServer: unix socket path too long: " +
                        cfg_.unix_path);
    }
    std::memcpy(sa.sun_path, cfg_.unix_path.c_str(),
                cfg_.unix_path.size() + 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw ConfigError(errno_text("socket(AF_UNIX)"));
    ::unlink(cfg_.unix_path.c_str());  // stale socket from a crashed run
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
      const std::string err = errno_text("bind(" + cfg_.unix_path + ")");
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw ConfigError(err);
    }
  } else {
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(cfg_.tcp_port);
    if (::inet_pton(AF_INET, cfg_.tcp_host.c_str(), &sa.sin_addr) != 1) {
      throw ConfigError("ControlServer: bad listen address: " + cfg_.tcp_host);
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw ConfigError(errno_text("socket(AF_INET)"));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
      const std::string err = errno_text(
          "bind(" + cfg_.tcp_host + ":" + std::to_string(cfg_.tcp_port) + ")");
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw ConfigError(err);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      port_ = ntohs(bound.sin_port);
    }
  }
  if (::listen(listen_fd_, 16) < 0) {
    const std::string err = errno_text("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ConfigError(err);
  }
  if (::pipe(wake_pipe_) < 0) {
    const std::string err = errno_text("pipe");
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ConfigError(err);
  }
  stopping_.store(false, std::memory_order_relaxed);
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ControlServer::stop() {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (!started_ || stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_relaxed);
  if (wake_pipe_[1] >= 0) {
    const char b = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (const int fd : {wake_pipe_[0], wake_pipe_[1]}) {
    if (fd >= 0) ::close(fd);
  }
  wake_pipe_[0] = wake_pipe_[1] = -1;
  if (!cfg_.unix_path.empty()) ::unlink(cfg_.unix_path.c_str());

  // End every connection: subscribed ones get their terminal record
  // while their socket is still writable, then a shutdown() unblocks
  // the connection thread's recv.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> clk(conns_mu_);
    conns = conns_;
  }
  for (const auto& c : conns) {
    end_subscription(*c, "server-shutdown");
    std::lock_guard<std::mutex> wlk(c->wr_mu);
    if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
  }
  for (const auto& c : conns) {
    if (c->thread.joinable()) c->thread.join();
  }
  std::lock_guard<std::mutex> clk(conns_mu_);
  conns_.clear();
}

void ControlServer::reap_finished() {
  std::lock_guard<std::mutex> lk(conns_mu_);
  std::erase_if(conns_, [](const std::shared_ptr<Connection>& c) {
    if (!c->finished.load(std::memory_order_acquire)) return false;
    if (c->thread.joinable()) c->thread.join();
    return true;
  });
}

void ControlServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int r = ::poll(fds, 2, 500);
    if (stopping_.load(std::memory_order_relaxed)) break;
    reap_finished();
    if (r <= 0 || (fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    {
      std::lock_guard<std::mutex> lk(conns_mu_);
      if (conns_.size() >= cfg_.max_connections) {
        connections_rejected_.fetch_add(1, std::memory_order_relaxed);
        const std::string msg =
            format_status(kTooManyConnections, "too many connections");
        [[maybe_unused]] const ssize_t n =
            ::send(fd, msg.data(), msg.size(), MSG_NOSIGNAL);
        ::close(fd);
        continue;
      }
      connections_accepted_.fetch_add(1, std::memory_order_relaxed);
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      conns_.push_back(conn);
      conn->thread = std::thread([this, conn] { serve_connection(conn); });
    }
  }
}

void ControlServer::serve_connection(const std::shared_ptr<Connection>& conn) {
  std::string buf;
  char tmp[1024];
  bool keep = true;
  while (keep && !stopping_.load(std::memory_order_relaxed)) {
    const ssize_t n = ::recv(conn->fd, tmp, sizeof(tmp), 0);
    if (n == 0) break;  // orderly disconnect
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    buf.append(tmp, static_cast<usize>(n));
    usize start = 0;
    for (;;) {
      const usize nl = buf.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string line = buf.substr(start, nl - start);
      start = nl + 1;
      if (line.size() > kMaxLineBytes) {
        conn->send_all(format_status(kLineTooLong, "line too long"));
        keep = false;
        break;
      }
      if (!handle_line(conn, line)) {
        keep = false;
        break;
      }
    }
    buf.erase(0, start);
    // A line still unterminated past the cap can never become valid;
    // refuse it now instead of buffering an unbounded request.
    if (keep && buf.size() > kMaxLineBytes) {
      conn->send_all(format_status(kLineTooLong, "line too long"));
      keep = false;
    }
  }
  end_subscription(*conn, "client-disconnect");
  {
    std::lock_guard<std::mutex> lk(conn->wr_mu);
    conn->open = false;
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  conn->finished.store(true, std::memory_order_release);
}

void ControlServer::end_subscription(Connection& conn, const char* reason) {
  u64 token = 0;
  u64 pushed = 0;
  u64 dropped = 0;
  {
    std::lock_guard<std::mutex> lk(conn.wr_mu);
    if (!conn.subscribed) return;
    conn.subscribed = false;
    token = conn.sub_token;
  }
  // Unsubscribe blocks until any in-flight push returned, so after this
  // line the terminal record is guaranteed to be the last row.
  if (hooks_.unsubscribe) hooks_.unsubscribe(token);
  pushed = conn.rows_pushed.load(std::memory_order_relaxed);
  dropped = conn.rows_dropped.load(std::memory_order_relaxed);
  std::string terminal = "{\"terminal\":true,\"reason\":\"";
  terminal += reason;
  terminal += "\",\"rows_pushed\":" + std::to_string(pushed);
  terminal += ",\"rows_dropped\":" + std::to_string(dropped) + "}\n";
  conn.send_all(terminal);  // best effort — the peer may already be gone
}

bool ControlServer::handle_line(const std::shared_ptr<Connection>& conn,
                                const std::string& line) {
  const std::vector<std::string> tokens = tokenize(line);
  if (tokens.empty()) return true;  // blank lines are ignored
  // Any request from a streaming client ends its stream first (the
  // terminal record precedes this request's response).
  end_subscription(*conn, "superseded");
  const u64 request_index =
      requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (cfg_.drop_request_hook && cfg_.drop_request_hook(request_index)) {
    // Injected mid-request connection drop: hang up before any response
    // byte, exactly like a server crash between accept and reply.
    return false;
  }
  const std::string& verb = tokens[0];

  if (verb == "quit") {
    conn->send_all(format_status(kOk, "bye"));
    return false;
  }

  if (verb == "subscribe") {
    if (tokens.size() != 3 || tokens[1] != "stats") {
      return conn->send_all(
          format_status(kBadRequest, "usage: subscribe stats <interval_ms>"));
    }
    u64 interval_ms = 0;
    if (!parse_count(tokens[2], interval_ms) || interval_ms == 0 ||
        interval_ms > 60'000) {
      return conn->send_all(
          format_status(kBadRequest, "subscribe stats: interval_ms 1..60000"));
    }
    if (!hooks_.subscribe || !hooks_.unsubscribe) {
      return conn->send_all(
          format_status(kConflict, "no live stats feed attached"));
    }
    // Status first, then attach — rows must never precede the 200.
    if (!conn->send_all(format_status(
            kOk, "streaming interval_ms=" + std::to_string(interval_ms)))) {
      return false;
    }
    std::weak_ptr<Connection> weak = conn;
    const u64 token = hooks_.subscribe(
        interval_ms, [weak](const std::string& row) {
          if (const auto c = weak.lock()) c->push_row(row);
        });
    if (token == 0) {
      // Feed went away between the 200 and the attach (e.g. a racing
      // drain): the stream ends before it begins, via the same terminal
      // record a live stream would get.
      conn->send_all(
          "{\"terminal\":true,\"reason\":\"unavailable\","
          "\"rows_pushed\":0,\"rows_dropped\":0}\n");
      return true;
    }
    std::lock_guard<std::mutex> lk(conn->wr_mu);
    conn->subscribed = true;
    conn->sub_token = token;
    conn->rows_pushed.store(0, std::memory_order_relaxed);
    conn->rows_dropped.store(0, std::memory_order_relaxed);
    return true;
  }

  if (verb == "read" || verb == "write") {
    if (tokens.size() < 2) {
      return conn->send_all(
          format_status(kBadRequest, "usage: " + verb + " <handler> [args]"));
    }
    const Handler* handler = verb == "read" ? registry_->find_read(tokens[1])
                                            : registry_->find_write(tokens[1]);
    HandlerResult res;
    if (handler == nullptr) {
      res = HandlerResult::error(
          kUnknownHandler, "unknown " + verb + " handler '" + tokens[1] + "'");
    } else {
      const std::span<const std::string> args(tokens.data() + 2,
                                              tokens.size() - 2);
      try {
        res = (*handler)(args);
      } catch (const ParseError& e) {
        res = HandlerResult::error(kBadRequest, e.what());
      } catch (const ConfigError& e) {
        res = HandlerResult::error(kBadRequest, e.what());
      } catch (const std::exception& e) {
        res = HandlerResult::error(kInternalError, e.what());
      }
    }
    std::string out = format_status(res.code, res.message);
    if (res.payload.has_value()) {
      out += "DATA " + std::to_string(res.payload->size()) + "\n";
      out += *res.payload;
    }
    return conn->send_all(out);
  }

  return conn->send_all(format_status(
      kBadRequest, "unknown request '" + verb +
                       "' (expected read|write|subscribe|quit)"));
}

}  // namespace pclass::control
