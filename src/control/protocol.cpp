#include "control/protocol.hpp"

#include <cctype>

#include "common/error.hpp"
#include "common/parse.hpp"

namespace pclass::control {

namespace {

/// Strict bounded decimal: parse_count plus a range check.
u64 parse_uint(const std::string& text, u64 max, const char* what) {
  u64 v = 0;
  if (!pclass::parse_count(text, v) || v > max) {
    throw ParseError(std::string(what) + ": expected integer 0.." +
                     std::to_string(max) + ", got '" + text + "'");
  }
  return v;
}

}  // namespace

std::vector<std::string> tokenize(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::vector<std::string> out;
  usize i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])) != 0) {
      ++i;
    }
    const usize start = i;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])) == 0) {
      ++i;
    }
    if (i > start) out.emplace_back(line.substr(start, i - start));
  }
  return out;
}

std::string format_status(int code, std::string_view message) {
  std::string s = std::to_string(code);
  s += ' ';
  // The status line is single-line by contract; defang any embedded
  // newline from an exception message so the framing survives.
  for (const char c : message) s += (c == '\n' || c == '\r') ? ' ' : c;
  s += '\n';
  return s;
}

ruleset::IpPrefix parse_ip_prefix(const std::string& text) {
  if (text == "*") return ruleset::IpPrefix{};
  const usize slash = text.find('/');
  if (slash == std::string::npos) {
    throw ParseError("ip prefix: expected a.b.c.d/len or *, got '" + text +
                     "'");
  }
  const std::string addr = text.substr(0, slash);
  const u64 len = parse_uint(text.substr(slash + 1), 32, "prefix length");
  u32 value = 0;
  usize pos = 0;
  for (int octet = 0; octet < 4; ++octet) {
    const usize dot = octet < 3 ? addr.find('.', pos) : addr.size();
    if (dot == std::string::npos) {
      throw ParseError("ip prefix: malformed address '" + addr + "'");
    }
    const u64 b = parse_uint(addr.substr(pos, dot - pos), 255, "ip octet");
    value = (value << 8) | static_cast<u32>(b);
    pos = dot + 1;
  }
  return ruleset::IpPrefix::make(value, static_cast<u8>(len));
}

ruleset::PortRange parse_port_range(const std::string& text) {
  if (text == "*") return ruleset::PortRange::wildcard();
  const usize dash = text.find('-');
  if (dash == std::string::npos) {
    const u64 p = parse_uint(text, 0xFFFF, "port");
    return ruleset::PortRange::exact(static_cast<u16>(p));
  }
  const u64 lo = parse_uint(text.substr(0, dash), 0xFFFF, "port range lo");
  const u64 hi = parse_uint(text.substr(dash + 1), 0xFFFF, "port range hi");
  if (lo > hi) {
    throw ParseError("port range: lo > hi in '" + text + "'");
  }
  return ruleset::PortRange::make(static_cast<u16>(lo), static_cast<u16>(hi));
}

ruleset::ProtoMatch parse_proto(const std::string& text) {
  if (text == "*") return ruleset::ProtoMatch::any();
  return ruleset::ProtoMatch::exact(
      static_cast<u8>(parse_uint(text, 255, "protocol")));
}

sdn::ActionSpec parse_action(const std::string& text) {
  if (text == "drop") return sdn::ActionSpec::drop();
  if (text.starts_with("out:")) {
    return sdn::ActionSpec::output(
        static_cast<u16>(parse_uint(text.substr(4), 0x3FFF, "output port")));
  }
  if (text.starts_with("group:")) {
    return sdn::ActionSpec::group(
        static_cast<u16>(parse_uint(text.substr(6), 0x3FFF, "group id")));
  }
  throw ParseError("action: expected drop|out:<port>|group:<id>, got '" +
                   text + "'");
}

sdn::Message parse_rule_command(std::span<const std::string> args) {
  if (args.empty()) {
    throw ParseError("rule: expected add|remove|modify");
  }
  const std::string& verb = args[0];
  sdn::FlowMod fm;
  if (verb == "add") {
    if (args.size() != 9) {
      throw ParseError(
          "rule add: expected <id> <priority> <src> <dst> <sports> "
          "<dports> <proto> <drop|out:N|group:N> (8 args, got " +
          std::to_string(args.size() - 1) + ")");
    }
    fm.command = sdn::FlowMod::Command::kAdd;
    fm.cookie = RuleId{static_cast<u32>(
        parse_uint(args[1], 0xFFFFFFFEu, "rule id"))};
    fm.match.priority =
        static_cast<Priority>(parse_uint(args[2], 0xFFFFFFFEu, "priority"));
    fm.match.src_ip = parse_ip_prefix(args[3]);
    fm.match.dst_ip = parse_ip_prefix(args[4]);
    fm.match.src_port = parse_port_range(args[5]);
    fm.match.dst_port = parse_port_range(args[6]);
    fm.match.proto = parse_proto(args[7]);
    fm.action = parse_action(args[8]);
    return fm;
  }
  if (verb == "remove") {
    if (args.size() != 2) {
      throw ParseError("rule remove: expected <id>");
    }
    fm.command = sdn::FlowMod::Command::kDelete;
    fm.cookie = RuleId{static_cast<u32>(
        parse_uint(args[1], 0xFFFFFFFEu, "rule id"))};
    return fm;
  }
  if (verb == "modify") {
    if (args.size() != 3) {
      throw ParseError("rule modify: expected <id> <drop|out:N|group:N>");
    }
    fm.command = sdn::FlowMod::Command::kModify;
    fm.cookie = RuleId{static_cast<u32>(
        parse_uint(args[1], 0xFFFFFFFEu, "rule id"))};
    fm.action = parse_action(args[2]);
    return fm;
  }
  throw ParseError("rule: unknown verb '" + verb + "'");
}

sdn::Message parse_set_command(std::span<const std::string> args) {
  if (args.size() != 2) {
    throw ParseError(
        "set: expected <path-policy|memo-ways|batch-mode|ip-alg> <value>");
  }
  const std::string& knob = args[0];
  const std::string& value = args[1];
  sdn::ConfigMod cm;
  if (knob == "path-policy") {
    if (value == "adaptive") {
      cm.path_policy = core::PathPolicy::kAdaptive;
    } else if (value == "phase2") {
      cm.path_policy = core::PathPolicy::kForcePhase2;
    } else if (value == "scalar-loop") {
      cm.path_policy = core::PathPolicy::kForceScalarLoop;
    } else {
      throw ParseError("set path-policy: expected adaptive|phase2|scalar-loop");
    }
    return cm;
  }
  if (knob == "memo-ways") {
    cm.memo_ways = static_cast<u32>(parse_uint(value, 64, "memo-ways"));
    return cm;
  }
  if (knob == "batch-mode") {
    if (value == "scalar") {
      cm.batch_mode = core::BatchMode::kScalar;
    } else if (value == "phase2") {
      cm.batch_mode = core::BatchMode::kPhase2;
    } else {
      throw ParseError("set batch-mode: expected scalar|phase2");
    }
    return cm;
  }
  if (knob == "ip-alg") {
    if (value == "mbt") {
      cm.ip_algorithm = core::IpAlgorithm::kMbt;
    } else if (value == "bst") {
      cm.ip_algorithm = core::IpAlgorithm::kBst;
    } else if (value == "rvh") {
      cm.ip_algorithm = core::IpAlgorithm::kRvh;
    } else {
      throw ParseError("set ip-alg: expected mbt|bst|rvh");
    }
    return cm;
  }
  throw ParseError("set: unknown knob '" + knob + "'");
}

}  // namespace pclass::control
