/// \file server.hpp
/// The control socket server: a line-oriented TCP (loopback) or Unix
/// domain socket front-end over a HandlerRegistry — the long-running
/// half of the etalon ControlSocket idiom. One accept thread, one
/// thread per connection (the control plane is low-rate by design;
/// per-connection threads keep slow clients from blocking each other).
///
/// Streaming: `subscribe stats <ms>` switches a connection into push
/// mode — the server registers a row sink with the control plane
/// (SubscribeHooks) and forwards each pushed NDJSON row with a
/// non-blocking send. Rows that would block are dropped whole (the
/// sampler must never stall on a slow consumer); the terminal record
/// reports both pushed and dropped counts. Any further request line
/// from a subscribed client ends its stream first, then executes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "control/registry.hpp"

namespace pclass::control {

/// Where to listen. TCP binds loopback only (the control surface is a
/// local-operations interface, not a network service); a non-empty
/// unix_path selects a Unix domain socket instead.
struct ServerConfig {
  std::string tcp_host = "127.0.0.1";
  u16 tcp_port = 0;        ///< 0 = ephemeral (tests); port() reports it
  std::string unix_path;   ///< non-empty: Unix socket, tcp_* ignored
  usize max_connections = 64;  ///< excess accepts get 503 + close
  /// Fault-injection hook: called with each request's index (the
  /// requests_served counter value); returning true makes the server
  /// close the connection without sending a byte of response — the
  /// mid-request drop pclass_ctl.py's retry path is tested against.
  /// Point at fault::FaultInjector::should_drop_request. nullptr in
  /// production.
  std::function<bool(u64)> drop_request_hook;
};

/// How the server attaches a streaming subscriber to the stats feed.
/// subscribe returns an opaque token for unsubscribe; push_row receives
/// one serialized NDJSON row (newline included) per sampler row.
struct SubscribeHooks {
  std::function<u64(u64 interval_ms,
                    std::function<void(const std::string&)> push_row)>
      subscribe;
  std::function<void(u64 token)> unsubscribe;
};

class ControlServer {
 public:
  /// \p registry is borrowed and must outlive the server; it is
  /// read-only once start()ed. \p hooks may be empty (subscribe
  /// requests then get 409).
  ControlServer(ServerConfig cfg, const HandlerRegistry* registry,
                SubscribeHooks hooks);
  ~ControlServer();

  ControlServer(const ControlServer&) = delete;
  ControlServer& operator=(const ControlServer&) = delete;

  /// Bind + listen + launch the accept thread.
  /// \throws ConfigError on bind/listen failure.
  void start();

  /// Close the listener, end every connection (subscribed ones get
  /// their terminal record first), join all threads. Idempotent.
  void stop();

  /// Resolved TCP port (after start(); meaningful for tcp_port == 0).
  [[nodiscard]] u16 port() const { return port_; }
  /// Printable endpoint ("tcp:127.0.0.1:PORT" or "unix:PATH").
  [[nodiscard]] std::string endpoint() const;

  [[nodiscard]] u64 connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 connections_rejected() const {
    return connections_rejected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;

  void accept_loop();
  void serve_connection(const std::shared_ptr<Connection>& conn);
  /// Process one complete request line; returns false when the
  /// connection should close (quit / oversized line).
  bool handle_line(const std::shared_ptr<Connection>& conn,
                   const std::string& line);
  void end_subscription(Connection& conn, const char* reason);
  /// Join and drop connections whose threads have finished.
  void reap_finished();

  ServerConfig cfg_;
  const HandlerRegistry* registry_;
  SubscribeHooks hooks_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe: unblocks the accept poll
  u16 port_ = 0;
  std::atomic<bool> stopping_{false};
  std::mutex lifecycle_mu_;  ///< serializes start()/stop()
  bool started_ = false;
  bool stopped_ = false;
  std::thread accept_thread_;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;

  std::atomic<u64> connections_accepted_{0};
  std::atomic<u64> connections_rejected_{0};
  std::atomic<u64> requests_served_{0};
};

}  // namespace pclass::control
