#include "dataplane/elements.hpp"

#include "sdn/flow_mod.hpp"

namespace pclass::dataplane {

// ---- TrafficPool ----------------------------------------------------------

TrafficPool TrafficPool::from_trace(const net::Trace& trace,
                                    bool materialize_packets) {
  TrafficPool pool;
  for (const auto& e : trace) {
    if (materialize_packets) {
      pool.add(net::make_packet(e.header));
    } else {
      pool.add(e.header);
    }
  }
  return pool;
}

usize TrafficPool::fill(net::PacketBatch& batch, bool loop) {
  const usize total = size();
  if (total == 0 || batch.full()) return 0;
  const usize want = batch.capacity() - batch.size();
  const u64 start = cursor_.fetch_add(want, std::memory_order_relaxed);
  usize added = 0;
  for (usize k = 0; k < want; ++k) {
    u64 idx = start + k;
    if (!loop && idx >= total) break;
    idx %= total;
    if (packets_.empty()) {
      batch.push(tuples_[idx]);
    } else {
      batch.push(&packets_[idx]);
    }
    ++added;
  }
  return added;
}

// ---- PacketSource ---------------------------------------------------------

void PacketSource::push_batch(net::PacketBatch& batch) {
  batch.clear();
  const usize n = pool_->fill(batch, loop_);
  if (n == 0) {
    // Finite pool drained (or empty pool in loop mode): end of input.
    exhausted_ = true;
    return;
  }
  ++batches_;
  forward(batch);
}

// ---- Parser ---------------------------------------------------------------

void Parser::push_batch(net::PacketBatch& batch) {
  for (usize i = 0; i < batch.size(); ++i) {
    net::PacketMeta& m = batch.meta(i);
    if (m.tuple) continue;  // pre-parsed entry
    const net::Packet* p = batch.packet(i);
    const std::optional<net::FiveTuple> t =
        p == nullptr ? std::nullopt
                     : net::parse_five_tuple(p->bytes);
    if (t) {
      m.tuple = t;
      ++parsed_;
    } else {
      // Pre-classifier drop path: one cycle in the parser stage,
      // mirroring classify_packet()'s non-IPv4 handling.
      m.parse_error = true;
      m.resolved = true;
      m.lookup_cycles += 1;
      ++errors_;
    }
  }
  if (tel_ != nullptr) {
    telemetry::counter_store(tel_->live.parse_errors, errors_);
  }
  forward(batch);
}

// ---- FlowCacheElement -----------------------------------------------------

void FlowCacheElement::push_batch(net::PacketBatch& batch) {
  const u64 v = programs_->version();
  if (v != seen_version_) {
    cache_.invalidate_all();
    seen_version_ = v;
  }
  for (usize i = 0; i < batch.size(); ++i) {
    net::PacketMeta& m = batch.meta(i);
    if (m.resolved || !m.tuple) continue;
    hw::CycleRecorder rec;
    const auto cached = cache_.lookup(*m.tuple, &rec);
    m.lookup_cycles += rec.cycles();
    if (!cached) continue;  // miss: the classifier resolves it
    m.resolved = true;
    m.from_cache = true;
    if (*cached) {
      const core::RuleEntry& e = **cached;
      m.matched = true;
      m.rule = e.rule;
      m.priority = e.priority;
      m.action_token = e.action;
    }
  }
  if (tel_ != nullptr) {
    telemetry::counter_store(tel_->live.cache_hits, cache_.stats().hits);
    telemetry::counter_store(tel_->live.cache_misses, cache_.stats().misses);
  }
  forward(batch);
}

// ---- ClassifierElement ----------------------------------------------------

void ClassifierElement::push_batch(net::PacketBatch& batch) {
  // Clock reads only when telemetry is attached: the off configuration
  // (the overhead-gate baseline) pays nothing but this branch.
  const u64 t_start = tel_ != nullptr ? telemetry::steady_now_ns() : 0;
  const std::shared_ptr<const RuleProgram> snap = programs_->acquire();
  const u64 v = snap->version();
  batch.rule_version = v;
  const bool version_advanced = seen_any_ && v > max_version_;
  if (seen_any_ && v < max_version_) {
    monotonic_ = false;
  }
  seen_any_ = true;
  min_version_ = std::min(min_version_, v);
  max_version_ = std::max(max_version_, v);

  keys_.clear();
  slots_.clear();
  for (usize i = 0; i < batch.size(); ++i) {
    const net::PacketMeta& m = batch.meta(i);
    if (!m.resolved && m.tuple) {
      slots_.push_back(i);
      keys_.push_back(*m.tuple);
    }
  }
  res_.assign(keys_.size(), core::ClassifyResult{});
  snap->classifier().classify_batch(keys_, res_, scratch_);
  lookups_ += keys_.size();

  for (usize k = 0; k < slots_.size(); ++k) {
    net::PacketMeta& m = batch.meta(slots_[k]);
    const core::ClassifyResult& r = res_[k];
    memo_hits_ += r.memo_hits;
    m.resolved = true;
    m.lookup_cycles += r.cycles;
    m.memory_accesses += r.memory_accesses;
    if (r.match) {
      m.matched = true;
      m.rule = r.match->rule;
      m.priority = r.match->priority;
      m.action_token = r.match->action;
    }
    if (cache_ != nullptr) {
      cache_->fill_verdict(keys_[k], r.match, v);
    }
  }
  if (tel_ != nullptr) {
    publish_telemetry(batch, v, t_start, version_advanced);
  }
  forward(batch);
}

void ClassifierElement::publish_telemetry(const net::PacketBatch& batch,
                                          u64 version, u64 t_start_ns,
                                          bool version_advanced) {
  telemetry::WorkerLive& live = tel_->live;
  const u64 t_end = telemetry::steady_now_ns();

  // Update visibility: the first batch after the published version
  // moved past everything this worker had seen. The publisher stamped
  // the version just before its swap; observe - publish is the
  // end-to-end latency of the update becoming effective here. t_start
  // was read before acquire(), so clamp the (rare) case of the clock
  // read racing the publish.
  if (version_advanced) {
    if (const std::optional<u64> t_pub =
            programs_->publish_clock().lookup(version)) {
      const u64 lat = t_start_ns > *t_pub ? t_start_ns - *t_pub : 0;
      telemetry::counter_add(live.update_visibility_samples, 1);
      telemetry::counter_add(live.update_visibility_total_ns, lat);
      if (lat > telemetry::counter_load(live.update_visibility_max_ns)) {
        telemetry::counter_store(live.update_visibility_max_ns, lat);
      }
    }
  }

  // Mirror the running totals (totals, not deltas: the sampler's
  // interval differences then sum exactly to the end-of-run report).
  telemetry::counter_store(live.classifier_lookups, lookups_);
  telemetry::counter_store(live.probe_memo_hits, memo_hits_);
  telemetry::counter_store(live.probe_memo_invalidations,
                           scratch_.memo_invalidations);
  const u64 conflicts = scratch_.memo.conflict_evictions();
  telemetry::counter_store(live.probe_memo_conflict_evictions, conflicts);
  telemetry::counter_store(
      live.path_scalar_loop_batches,
      scratch_.controller.batches(core::BatchPath::kScalarLoop));
  telemetry::counter_store(
      live.path_phase2_batches,
      scratch_.controller.batches(core::BatchPath::kPhase2));
  telemetry::counter_store(
      live.path_phase2_memo_batches,
      scratch_.controller.batches(core::BatchPath::kPhase2Memo));
  telemetry::counter_store(live.snapshot_version, version);

  // One span event per batch into the SPSC ring.
  telemetry::TraceEvent ev;
  ev.t_start_ns = t_start_ns;
  ev.duration_ns = t_end > t_start_ns ? t_end - t_start_ns : 0;
  ev.worker = tel_->worker;
  ev.packets = static_cast<u32>(batch.size());
  ev.lookups = static_cast<u32>(keys_.size());
  ev.distinct_keys = static_cast<u32>(scratch_.last_batch_distinct);
  ev.path = scratch_.last_batch_path;
  ev.memo_hits = static_cast<u32>(memo_hits_ - last_memo_hits_);
  ev.memo_conflicts = static_cast<u32>(conflicts - last_memo_conflicts_);
  ev.snapshot_version = version;
  tel_->ring.push(ev);
  last_memo_hits_ = memo_hits_;
  last_memo_conflicts_ = conflicts;
}

// ---- ActionSink -----------------------------------------------------------

void ActionSink::push_batch(net::PacketBatch& batch) {
  ++batches_;
  for (usize i = 0; i < batch.size(); ++i) {
    const net::PacketMeta& m = batch.meta(i);
    ++packets_;
    latency_.record(m.lookup_cycles);
    if (tel_ != nullptr) tel_->live.latency.record(m.lookup_cycles);
    memory_accesses_ += m.memory_accesses;
    if (capture_ != nullptr) {
      CapturedVerdict cv;
      if (m.tuple) cv.tuple = *m.tuple;
      cv.parse_error = m.parse_error;
      cv.matched = m.matched;
      cv.rule = m.rule;
      cv.priority = m.priority;
      cv.action_token = m.action_token;
      cv.version = batch.rule_version;
      cv.cycles = m.lookup_cycles;
      cv.memory_accesses = m.memory_accesses;
      capture_->push_back(cv);
    }
    if (m.from_cache) ++cache_hits_;
    if (!m.matched) {
      ++dropped_;  // parse error or table miss: default drop
      continue;
    }
    ++matched_;
    const sdn::ActionSpec a = sdn::ActionSpec::decode(m.action_token);
    if (a.kind == sdn::ActionSpec::Kind::kDrop) {
      ++dropped_;
    } else {
      ++forwarded_;
    }
  }
  if (tel_ != nullptr) {
    telemetry::WorkerLive& live = tel_->live;
    telemetry::counter_store(live.packets, packets_);
    telemetry::counter_store(live.batches, batches_);
    telemetry::counter_store(live.matched, matched_);
    telemetry::counter_store(live.dropped, dropped_);
    telemetry::counter_store(live.memory_accesses, memory_accesses_);
  }
  forward(batch);
}

}  // namespace pclass::dataplane
