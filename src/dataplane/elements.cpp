#include "dataplane/elements.hpp"

#include "sdn/flow_mod.hpp"

namespace pclass::dataplane {

// ---- TrafficPool ----------------------------------------------------------

TrafficPool TrafficPool::from_trace(const net::Trace& trace,
                                    bool materialize_packets) {
  TrafficPool pool;
  for (const auto& e : trace) {
    if (materialize_packets) {
      pool.add(net::make_packet(e.header));
    } else {
      pool.add(e.header);
    }
  }
  return pool;
}

usize TrafficPool::fill(net::PacketBatch& batch, bool loop) {
  const usize total = size();
  if (total == 0 || batch.full()) return 0;
  const usize want = batch.capacity() - batch.size();
  const u64 start = cursor_.fetch_add(want, std::memory_order_relaxed);
  usize added = 0;
  for (usize k = 0; k < want; ++k) {
    u64 idx = start + k;
    if (!loop && idx >= total) break;
    idx %= total;
    if (packets_.empty()) {
      batch.push(tuples_[idx]);
    } else {
      batch.push(&packets_[idx]);
    }
    ++added;
  }
  return added;
}

// ---- PacketSource ---------------------------------------------------------

void PacketSource::push_batch(net::PacketBatch& batch) {
  batch.clear();
  const usize n = pool_->fill(batch, loop_);
  if (n == 0) {
    // Finite pool drained (or empty pool in loop mode): end of input.
    exhausted_ = true;
    return;
  }
  ++batches_;
  forward(batch);
}

// ---- Parser ---------------------------------------------------------------

void Parser::push_batch(net::PacketBatch& batch) {
  for (usize i = 0; i < batch.size(); ++i) {
    net::PacketMeta& m = batch.meta(i);
    if (m.tuple) continue;  // pre-parsed entry
    const net::Packet* p = batch.packet(i);
    const std::optional<net::FiveTuple> t =
        p == nullptr ? std::nullopt
                     : net::parse_five_tuple(p->bytes);
    if (t) {
      m.tuple = t;
      ++parsed_;
    } else {
      // Pre-classifier drop path: one cycle in the parser stage,
      // mirroring classify_packet()'s non-IPv4 handling.
      m.parse_error = true;
      m.resolved = true;
      m.lookup_cycles += 1;
      ++errors_;
    }
  }
  forward(batch);
}

// ---- FlowCacheElement -----------------------------------------------------

void FlowCacheElement::push_batch(net::PacketBatch& batch) {
  const u64 v = programs_->version();
  if (v != seen_version_) {
    cache_.invalidate_all();
    seen_version_ = v;
  }
  for (usize i = 0; i < batch.size(); ++i) {
    net::PacketMeta& m = batch.meta(i);
    if (m.resolved || !m.tuple) continue;
    hw::CycleRecorder rec;
    const auto cached = cache_.lookup(*m.tuple, &rec);
    m.lookup_cycles += rec.cycles();
    if (!cached) continue;  // miss: the classifier resolves it
    m.resolved = true;
    m.from_cache = true;
    if (*cached) {
      const core::RuleEntry& e = **cached;
      m.matched = true;
      m.rule = e.rule;
      m.priority = e.priority;
      m.action_token = e.action;
    }
  }
  forward(batch);
}

// ---- ClassifierElement ----------------------------------------------------

void ClassifierElement::push_batch(net::PacketBatch& batch) {
  const std::shared_ptr<const RuleProgram> snap = programs_->acquire();
  const u64 v = snap->version();
  batch.rule_version = v;
  if (seen_any_ && v < max_version_) {
    monotonic_ = false;
  }
  seen_any_ = true;
  min_version_ = std::min(min_version_, v);
  max_version_ = std::max(max_version_, v);

  keys_.clear();
  slots_.clear();
  for (usize i = 0; i < batch.size(); ++i) {
    const net::PacketMeta& m = batch.meta(i);
    if (!m.resolved && m.tuple) {
      slots_.push_back(i);
      keys_.push_back(*m.tuple);
    }
  }
  res_.assign(keys_.size(), core::ClassifyResult{});
  snap->classifier().classify_batch(keys_, res_, scratch_);
  lookups_ += keys_.size();

  for (usize k = 0; k < slots_.size(); ++k) {
    net::PacketMeta& m = batch.meta(slots_[k]);
    const core::ClassifyResult& r = res_[k];
    memo_hits_ += r.memo_hits;
    m.resolved = true;
    m.lookup_cycles += r.cycles;
    m.memory_accesses += r.memory_accesses;
    if (r.match) {
      m.matched = true;
      m.rule = r.match->rule;
      m.priority = r.match->priority;
      m.action_token = r.match->action;
    }
    if (cache_ != nullptr) {
      cache_->fill_verdict(keys_[k], r.match, v);
    }
  }
  forward(batch);
}

// ---- ActionSink -----------------------------------------------------------

void ActionSink::push_batch(net::PacketBatch& batch) {
  ++batches_;
  for (usize i = 0; i < batch.size(); ++i) {
    const net::PacketMeta& m = batch.meta(i);
    ++packets_;
    latency_.record(m.lookup_cycles);
    memory_accesses_ += m.memory_accesses;
    if (m.from_cache) ++cache_hits_;
    if (!m.matched) {
      ++dropped_;  // parse error or table miss: default drop
      continue;
    }
    ++matched_;
    const sdn::ActionSpec a = sdn::ActionSpec::decode(m.action_token);
    if (a.kind == sdn::ActionSpec::Kind::kDrop) {
      ++dropped_;
    } else {
      ++forwarded_;
    }
  }
  forward(batch);
}

}  // namespace pclass::dataplane
