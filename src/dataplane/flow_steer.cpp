#include "dataplane/flow_steer.hpp"

#include "net/packet.hpp"

namespace pclass::dataplane {

std::optional<ShardMode> parse_shard_mode(std::string_view s) {
  if (s == "replica") return ShardMode::kReplica;
  if (s == "partition") return ShardMode::kPartition;
  return std::nullopt;
}

std::vector<TrafficPool> steer_split(const TrafficPool& pool, usize nshards,
                                     bool symmetric) {
  if (nshards == 0) {
    throw ConfigError("steer_split: shard count must be >= 1");
  }
  std::vector<TrafficPool> out(nshards);
  if (!pool.tuples().empty()) {
    for (const net::FiveTuple& t : pool.tuples()) {
      out[shard_of(t, nshards, symmetric)].add(t);
    }
    return out;
  }
  usize rr = 0;
  for (const net::Packet& p : pool.packets()) {
    const std::optional<net::FiveTuple> t = net::parse_five_tuple(p.bytes);
    const usize s =
        t ? shard_of(*t, nshards, symmetric) : (rr++ % nshards);
    out[s].add(p);
  }
  return out;
}

std::vector<ruleset::RuleSet> partition_rules(const ruleset::RuleSet& rules,
                                              usize nshards) {
  if (nshards == 0) {
    throw ConfigError("partition_rules: shard count must be >= 1");
  }
  std::vector<ruleset::RuleSet> parts;
  parts.reserve(nshards);
  for (usize s = 0; s < nshards; ++s) {
    parts.emplace_back(rules.name() + ".shard" + std::to_string(s));
  }
  usize i = 0;
  for (const ruleset::Rule& r : rules) {
    parts[i++ % nshards].add_verbatim(r);
  }
  return parts;
}

}  // namespace pclass::dataplane
