/// \file rule_program.hpp
/// Lock-free rule snapshots for the dataplane runtime.
///
/// The paper's device applies controller updates in place; a software
/// runtime with N lookup workers cannot, because the classifier's update
/// path mutates the very memories the lookup path reads. This module
/// separates the two RCU-style:
///
///   * RuleProgram — an immutable, version-stamped classifier snapshot.
///     Workers acquire the current program once per batch (one atomic
///     shared-pointer load) and classify against it with zero locks.
///   * RuleProgramPublisher — the single-writer update side. It keeps
///     two replicas of the device and an ordered update log; an update
///     is applied to the standby replica (after waiting for old readers
///     to drain off it), the replica is stamped with the log position as
///     its version, and published with one atomic pointer swap.
///
/// Guarantees readers rely on (and tests assert):
///   * no torn state — a published program is never mutated again until
///     every reader reference to it is gone;
///   * monotonic versions — acquire() observes non-decreasing versions,
///     and version v contains exactly the first v updates of the log.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/classifier.hpp"
#include "sdn/southbound.hpp"
#include "telemetry/publish_clock.hpp"

namespace pclass::dataplane {

/// An immutable classification program: one frozen device replica plus
/// the update-log position it corresponds to.
class RuleProgram {
 public:
  explicit RuleProgram(const core::ClassifierConfig& cfg) : clf_(cfg) {}

  /// Number of log updates folded into this snapshot (monotonic).
  [[nodiscard]] u64 version() const { return version_; }
  [[nodiscard]] usize rule_count() const { return clf_.rule_count(); }

  /// The frozen device. Const lookups on it are thread-safe; the
  /// publisher only mutates a replica while it is unpublished and
  /// reader-free.
  [[nodiscard]] const core::ConfigurableClassifier& classifier() const {
    return clf_;
  }

 private:
  friend class RuleProgramPublisher;

  core::ConfigurableClassifier clf_;
  u64 version_ = 0;
};

/// Counters of the publisher's write side.
struct PublisherStats {
  u64 updates_applied = 0;   ///< log entries accepted (once per update)
  u64 publishes = 0;         ///< snapshot swaps
  u64 grace_spins = 0;       ///< yields spent waiting for readers to drain
  /// Cumulative modelled device cost, charged once per accepted update
  /// (the standby's catch-up re-application is bookkeeping, not cost).
  hw::UpdateStats device;
};

/// Single-writer, many-reader snapshot publisher (RCU by shared_ptr:
/// the reference count of the retired snapshot *is* the grace period).
/// As an sdn::UpdateSink it attaches to a Controller like a switch.
class RuleProgramPublisher : public sdn::UpdateSink {
 public:
  explicit RuleProgramPublisher(core::ClassifierConfig cfg = {});

  // ---- read side (lock-free, any thread) ----

  /// The current program. Hold it for one batch, then drop it — a
  /// long-lived reference stalls the writer's grace period.
  [[nodiscard]] std::shared_ptr<const RuleProgram> acquire() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Version of the currently published program.
  [[nodiscard]] u64 version() const {
    return published_version_.load(std::memory_order_acquire);
  }

  // ---- write side (serialized; callable from any one thread at a time) ----

  /// Apply one southbound message and publish a new snapshot.
  /// \throws whatever the classifier's update path throws; the log and
  ///         both replicas are restored to the pre-call state.
  hw::UpdateStats apply(const sdn::Message& msg);

  /// sdn::UpdateSink: a Controller broadcast lands here.
  hw::UpdateStats handle(const sdn::Message& msg) override {
    return apply(msg);
  }

  /// Apply a batch of messages and publish *once* (update coalescing —
  /// the off-hot-path build the paper's controller side suggests).
  hw::UpdateStats apply_batch(std::span<const sdn::Message> msgs);

  /// Fault-injection hook, invoked under the writer lock inside every
  /// apply_batch's try block (after the log insert, before the replay)
  /// so a throw exercises the real all-or-nothing restore path. The
  /// chaos plane points this at FaultInjector::on_publisher_apply.
  /// Not thread-safe against concurrent applies — set before writers
  /// start. nullptr (default) = no hook.
  void set_fault_hook(std::function<void()> hook) {
    fault_hook_ = std::move(hook);
  }

  /// Convenience: install a whole rule set as one coalesced publish.
  hw::UpdateStats install_ruleset(const ruleset::RuleSet& rules);

  [[nodiscard]] const PublisherStats& stats() const { return stats_; }
  [[nodiscard]] const core::ClassifierConfig& config() const { return cfg_; }

  /// Version -> publish-timestamp table (telemetry): note()d just
  /// before every snapshot swap, so workers can measure how long a
  /// published version took to become visible to their lookups.
  [[nodiscard]] const telemetry::PublishClock& publish_clock() const {
    return publish_clock_;
  }

 private:
  /// The unpublished replica, after waiting for readers to drain off it.
  [[nodiscard]] std::shared_ptr<RuleProgram>& standby();

  /// Bring \p p to the log head; only entries >= \p charge_from count
  /// toward the returned cost (catch-up re-applications are free).
  hw::UpdateStats replay(RuleProgram& p, u64 charge_from);

  /// Publish \p next (stamped at the current log head) with one swap.
  void publish(const std::shared_ptr<RuleProgram>& next);

  /// Rebuild \p p from the other replica after a failed replay left it
  /// in an unknown state (exceptional path).
  void rebuild_standby(std::shared_ptr<RuleProgram>& p);

  core::ClassifierConfig cfg_;
  mutable std::mutex writer_mu_;
  /// Tail of the update log: entry k is update number log_base_ + k.
  /// The prefix both replicas have absorbed is truncated after each
  /// publish, so the log holds at most one in-flight batch.
  std::vector<sdn::Message> log_;
  u64 log_base_ = 0;
  std::array<std::shared_ptr<RuleProgram>, 2> replicas_;
  usize published_slot_ = 0;
  std::atomic<std::shared_ptr<const RuleProgram>> current_;
  std::atomic<u64> published_version_{0};
  PublisherStats stats_;
  telemetry::PublishClock publish_clock_;
  std::function<void()> fault_hook_;  ///< see set_fault_hook
};

}  // namespace pclass::dataplane
