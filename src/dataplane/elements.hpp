/// \file elements.hpp
/// The standard element set of the dataplane pipeline:
///
///   PacketSource -> Parser -> FlowCache -> Classifier -> ActionSink
///
/// PacketSource pulls bursts from a shared TrafficPool (lock-free atomic
/// cursor, so N workers partition one input stream without contention).
/// Parser turns raw bytes into 5-tuples (phase 1 of Fig. 3 plus the
/// pre-classifier drop path). FlowCache serves repeat flows from a
/// per-worker exact-match table (the paper's first-packet-of-a-flow
/// premise). Classifier acquires the current RuleProgram snapshot once
/// per batch and runs the full 4-phase lookup for cache misses.
/// ActionSink applies verdict accounting and latency measurement.
#pragma once

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <vector>

#include "core/flow_cache.hpp"
#include "dataplane/element.hpp"
#include "dataplane/rule_program.hpp"
#include "dataplane/stats.hpp"
#include "net/packet.hpp"
#include "net/trace.hpp"
#include "telemetry/live_stats.hpp"

namespace pclass::dataplane {

/// A shared, immutable-after-setup pool of input traffic with a
/// lock-free claim cursor. Workers grab disjoint spans of it; in loop
/// mode the cursor wraps, modelling an endless line-rate feed.
class TrafficPool {
 public:
  TrafficPool() = default;
  // Movable for factory returns (the atomic cursor restarts at the
  // moved-from position; pools are only moved during setup).
  TrafficPool(TrafficPool&& o) noexcept
      : packets_(std::move(o.packets_)),
        tuples_(std::move(o.tuples_)),
        cursor_(o.cursor_.load(std::memory_order_relaxed)) {}
  TrafficPool& operator=(TrafficPool&& o) noexcept {
    packets_ = std::move(o.packets_);
    tuples_ = std::move(o.tuples_);
    cursor_.store(o.cursor_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    return *this;
  }

  /// Pre-parsed header entry (trace-driven workloads).
  /// \throws ConfigError if the pool already holds raw packets — a pool
  ///         serves one entry kind; mixing would silently drop traffic.
  void add(const net::FiveTuple& t) {
    if (!packets_.empty()) {
      throw ConfigError("TrafficPool: cannot mix tuples into a packet pool");
    }
    tuples_.push_back(t);
  }
  /// Raw packet entry (wire-format workloads).
  /// \throws ConfigError if the pool already holds pre-parsed tuples.
  void add(net::Packet p) {
    if (!tuples_.empty()) {
      throw ConfigError("TrafficPool: cannot mix packets into a tuple pool");
    }
    packets_.push_back(std::move(p));
  }

  /// Build a pool from a trace; \p materialize_packets synthesizes real
  /// IPv4 bytes for each header so the Parser element has work to do.
  [[nodiscard]] static TrafficPool from_trace(const net::Trace& trace,
                                              bool materialize_packets);

  [[nodiscard]] usize size() const {
    return packets_.empty() ? tuples_.size() : packets_.size();
  }

  /// Claim up to the batch's remaining capacity. Returns the number of
  /// entries added; 0 means the pool is exhausted (finite mode only —
  /// with \p loop the cursor wraps and this never returns 0).
  usize fill(net::PacketBatch& batch, bool loop);

  /// Rewind the claim cursor (e.g. between bench phases).
  void reset() { cursor_.store(0, std::memory_order_relaxed); }

  /// Entries claimed off a finite pool so far. The raw cursor
  /// overshoots the pool size (fill() claims a whole batch's worth and
  /// discovers exhaustion after), so clamp — the conservation ledger's
  /// "claimed" side (shed = size() - claimed()). Meaningless with loop.
  [[nodiscard]] u64 claimed() const {
    return std::min<u64>(cursor_.load(std::memory_order_relaxed), size());
  }

  /// Entry views for the flow-steering split (one of the two is always
  /// empty — a pool serves a single entry kind).
  [[nodiscard]] const std::vector<net::FiveTuple>& tuples() const {
    return tuples_;
  }
  [[nodiscard]] const std::vector<net::Packet>& packets() const {
    return packets_;
  }

  /// Deep copy with a rewound cursor — partition mode gives every shard
  /// its own full copy of the stream so per-shard drains stay in input
  /// order (index-aligned verdict capture across shards).
  [[nodiscard]] TrafficPool clone() const {
    TrafficPool p;
    p.packets_ = packets_;
    p.tuples_ = tuples_;
    return p;
  }

 private:
  std::vector<net::Packet> packets_;
  std::vector<net::FiveTuple> tuples_;
  std::atomic<u64> cursor_{0};
};

/// Head element: refills the batch from the pool and forwards it.
class PacketSource : public Element {
 public:
  PacketSource(TrafficPool* pool, bool loop)
      : Element("source"), pool_(pool), loop_(loop) {}

  void push_batch(net::PacketBatch& batch) override;

  /// True once a finite pool ran dry (the worker's termination signal).
  [[nodiscard]] bool exhausted() const { return exhausted_; }
  [[nodiscard]] u64 batches() const { return batches_; }

 private:
  TrafficPool* pool_;
  bool loop_;
  bool exhausted_ = false;
  u64 batches_ = 0;
};

/// Phase 1: split raw bytes into the 5-tuple; non-IPv4 input takes the
/// drop path (resolved, unmatched, parse_error).
class Parser : public Element {
 public:
  explicit Parser(telemetry::WorkerTelemetry* tel = nullptr)
      : Element("parser"), tel_(tel) {}

  void push_batch(net::PacketBatch& batch) override;

  [[nodiscard]] u64 parsed() const { return parsed_; }
  [[nodiscard]] u64 errors() const { return errors_; }

 private:
  telemetry::WorkerTelemetry* tel_;
  u64 parsed_ = 0;
  u64 errors_ = 0;
};

/// Per-worker exact-match fast path. The cache is flushed whenever the
/// published rule-program version moves (the conservative invalidation
/// the seed's SwitchDevice uses); the one-batch window during which a
/// worker may still serve a verdict cached from the previous version is
/// the usual update-propagation delay of a distributed dataplane.
class FlowCacheElement : public Element {
 public:
  FlowCacheElement(const RuleProgramPublisher* programs, u32 depth,
                   const std::string& name = "flow_cache",
                   telemetry::WorkerTelemetry* tel = nullptr)
      : Element(name),
        programs_(programs),
        cache_(name, depth == 0 ? 1 : depth),
        seen_version_(programs->version()),
        tel_(tel) {}

  void push_batch(net::PacketBatch& batch) override;

  /// Classifier back-fill: install the verdict of a full lookup made
  /// against snapshot \p version. If the classifier raced ahead of the
  /// version this element saw at batch start, the older entries are
  /// flushed once here — so fresh verdicts are never discarded by the
  /// next batch's version check.
  void fill_verdict(const net::FiveTuple& t,
                    const std::optional<core::RuleEntry>& verdict,
                    u64 version) {
    if (version != seen_version_) {
      cache_.invalidate_all();
      seen_version_ = version;
    }
    cache_.fill(t, verdict);
  }

  [[nodiscard]] const core::FlowCacheStats& stats() const {
    return cache_.stats();
  }

 private:
  const RuleProgramPublisher* programs_;
  core::FlowCache cache_;
  u64 seen_version_ = 0;
  telemetry::WorkerTelemetry* tel_;
};

/// Phases 2-4: acquire the current RuleProgram (one atomic load per
/// batch), feed every unresolved packet through the classifier's batch
/// entry point in one call (under BatchMode::kPhase2 that is the
/// sorted-key batch engine; the element owns the reusable BatchScratch,
/// so steady-state batches allocate nothing *and* the scratch's
/// snapshot-keyed probe memo and EWMA path controller persist across
/// this worker's batches — hits compound while the published program
/// stays put, and every publisher swap rotates the worker onto a
/// different replica, which the memo's device binding detects and
/// invalidates on), and stamp the batch with the snapshot version.
class ClassifierElement : public Element {
 public:
  explicit ClassifierElement(const RuleProgramPublisher* programs,
                             FlowCacheElement* cache = nullptr,
                             telemetry::WorkerTelemetry* tel = nullptr)
      : Element("classifier"), programs_(programs), cache_(cache),
        tel_(tel) {}

  void push_batch(net::PacketBatch& batch) override;

  [[nodiscard]] u64 lookups() const { return lookups_; }
  /// Rule Filter probes served by the combination memo.
  [[nodiscard]] u64 probe_memo_hits() const { return memo_hits_; }
  /// Times the persistent memo dropped its entries (initial bind +
  /// one per snapshot swap this worker classified across).
  [[nodiscard]] u64 probe_memo_invalidations() const {
    return scratch_.memo_invalidations;
  }
  /// Memo replacements that evicted a live entry of another key (the
  /// associativity A/B observable).
  [[nodiscard]] u64 probe_memo_conflict_evictions() const {
    return scratch_.memo.conflict_evictions();
  }
  /// Batches this worker served via each execution path (the
  /// controller's choices, or the forced policy's).
  [[nodiscard]] u64 path_batches(core::BatchPath p) const {
    return scratch_.controller.batches(p);
  }
  /// The controller's fitted cost model for \p p (zeros under forced
  /// policies: no timed observations).
  [[nodiscard]] core::PathCostModel controller_model(core::BatchPath p) const {
    return scratch_.controller.cost_model(p);
  }
  [[nodiscard]] u64 controller_observations(core::BatchPath p) const {
    return scratch_.controller.observations(p);
  }
  /// Lowest/highest snapshot version observed; both 0 when the worker
  /// never processed a batch (the sentinel must not leak into reports).
  [[nodiscard]] u64 min_version() const {
    return seen_any_ ? min_version_ : 0;
  }
  [[nodiscard]] u64 max_version() const { return max_version_; }
  [[nodiscard]] bool version_monotonic() const { return monotonic_; }

 private:
  /// Mirror the running totals into the live counter block, record the
  /// update-visibility sample when the observed version advanced, and
  /// push this batch's span event into the trace ring. Only called when
  /// telemetry is attached.
  void publish_telemetry(const net::PacketBatch& batch, u64 version,
                         u64 t_start_ns, bool version_advanced);

  const RuleProgramPublisher* programs_;
  FlowCacheElement* cache_;
  telemetry::WorkerTelemetry* tel_;
  std::vector<net::FiveTuple> keys_;       // scratch, reused per batch
  std::vector<core::ClassifyResult> res_;  // scratch, reused per batch
  std::vector<usize> slots_;               // scratch, reused per batch
  core::BatchScratch scratch_;             // phase-2 engine scratch
  u64 lookups_ = 0;
  u64 memo_hits_ = 0;
  u64 last_memo_hits_ = 0;       // per-batch delta base for the ring event
  u64 last_memo_conflicts_ = 0;  // per-batch delta base for the ring event
  u64 min_version_ = std::numeric_limits<u64>::max();
  u64 max_version_ = 0;
  bool monotonic_ = true;
  bool seen_any_ = false;
};

/// Tail element: verdict accounting and latency measurement. With a
/// \p capture vector attached it also records every packet's verdict in
/// arrival order (the partition combiner's and the sharded differential
/// fuzzer's input) — finite runs only; the engine rejects capture in
/// loop mode.
class ActionSink : public Element {
 public:
  explicit ActionSink(telemetry::WorkerTelemetry* tel = nullptr,
                      std::vector<CapturedVerdict>* capture = nullptr)
      : Element("sink"), tel_(tel), capture_(capture) {}

  void push_batch(net::PacketBatch& batch) override;

  [[nodiscard]] u64 packets() const { return packets_; }
  [[nodiscard]] u64 matched() const { return matched_; }
  [[nodiscard]] u64 dropped() const { return dropped_; }
  [[nodiscard]] u64 forwarded() const { return forwarded_; }
  [[nodiscard]] u64 cache_hits() const { return cache_hits_; }
  [[nodiscard]] u64 batches() const { return batches_; }
  /// Modelled block-memory reads this worker's lookups performed,
  /// accumulated from per-packet CycleRecorder charges (the per-worker
  /// replacement for the old shared hw::Memory read counters).
  [[nodiscard]] u64 memory_accesses() const { return memory_accesses_; }
  [[nodiscard]] const LatencyHistogram& latency() const { return latency_; }

 private:
  telemetry::WorkerTelemetry* tel_;
  std::vector<CapturedVerdict>* capture_;
  u64 packets_ = 0;
  u64 matched_ = 0;
  u64 dropped_ = 0;
  u64 forwarded_ = 0;
  u64 cache_hits_ = 0;
  u64 batches_ = 0;
  u64 memory_accesses_ = 0;
  LatencyHistogram latency_;
};

}  // namespace pclass::dataplane
