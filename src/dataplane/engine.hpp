/// \file engine.hpp
/// The dataplane Engine: N worker threads, each driving its own
/// element pipeline (PacketSource -> Parser -> [FlowCache] ->
/// Classifier -> ActionSink) over per-worker PacketBatches. Workers
/// share exactly two things, both wait-free on the fast path: the
/// TrafficPool claim cursor and the published RuleProgram pointer.
/// Everything else — batches, flow caches, statistics — is worker-local,
/// which is what lets the aggregate throughput scale with cores while a
/// concurrent writer streams rule updates through the publisher.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dataplane/elements.hpp"
#include "dataplane/flow_steer.hpp"
#include "dataplane/rule_program.hpp"
#include "dataplane/stats.hpp"
#include "fault/fault.hpp"
#include "telemetry/live_stats.hpp"
#include "telemetry/sampler.hpp"

namespace pclass::dataplane {

/// Shared, semaphore-style budget of engine worker threads. Concurrent
/// engines (e.g. scenarios run by ScenarioRunner::run_many --parallel)
/// draw their workers from one budget, so total concurrent engine
/// worker threads never exceed the capacity — the scenarios x workers
/// oversubscription a parallel catalog run would otherwise inflict on a
/// small CI runner.
///
/// Grants are all-or-nothing: acquire() blocks until the full request
/// is free and takes it in one step, so an engine always runs with the
/// same worker count whether the budget is contended or not — which is
/// what keeps a capped parallel run's reports identical to the
/// sequential run's. A request larger than the capacity is clamped to
/// it (the engine runs at the cap instead of deadlocking).
///
/// Grants are FIFO by arrival: each acquire() takes a ticket and is
/// served strictly in ticket order (head-of-line blocking is the
/// point — a large request at the head is never starved by a stream of
/// small ones slipping past it), so many-scenario runs are
/// starvation-free by construction.
///
/// Thread-safe. An engine holds its grant from start() until the last
/// worker joined, so peak_in_use() is a high-water mark of concurrent
/// engine worker threads.
class WorkerBudget {
 public:
  /// \throws ConfigError when \p capacity == 0.
  explicit WorkerBudget(usize capacity);

  /// Block until min(want, capacity) slots are free, take them all, and
  /// return the granted count (>= 1).
  [[nodiscard]] usize acquire(usize want);

  /// Return \p granted slots (the exact count acquire() returned).
  void release(usize granted);

  [[nodiscard]] usize capacity() const { return capacity_; }
  [[nodiscard]] usize in_use() const;
  /// High-water mark of concurrently-granted slots since construction.
  [[nodiscard]] usize peak_in_use() const;
  /// Acquirers whose ticket has not been served yet (the queue depth,
  /// including the head waiting for capacity).
  [[nodiscard]] usize waiting() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  usize capacity_;
  usize in_use_ = 0;
  usize peak_ = 0;
  u64 next_ticket_ = 0;  ///< next ticket to hand out
  u64 serving_ = 0;      ///< lowest ticket not yet granted
};

/// Engine self-healing policy (the watchdog; see docs/ROBUSTNESS.md).
/// Off by default: the legacy contract — a worker that throws is
/// reported dead in WorkerReport::error and its traffic is lost —
/// stays intact, and worker_main keeps its untouched fast path.
struct SupervisorConfig {
  bool enabled = false;
  /// Watchdog scan period.
  u64 watchdog_interval_ms = 20;
  /// A worker whose heartbeat has not advanced for this long counts as
  /// one stall episode (counted once; it re-arms when the heartbeat
  /// moves again). Stalled workers are not killed — a C++ thread can't
  /// be — they are expected to resume or exit.
  u64 stall_deadline_ms = 500;
  /// Times a dead worker is respawned before it is declared
  /// permanently failed (and, in replica mode, its shards handed to a
  /// survivor).
  usize max_restarts = 2;
  /// First restart back-off; doubles per restart. Abort-aware (a
  /// stop()/drain cancels the wait).
  u64 restart_backoff_ms = 10;
};

/// Engine geometry and policy.
struct EngineConfig {
  usize workers = 1;
  usize batch_size = net::kDefaultBatchCapacity;
  /// Per-worker exact-match flow-cache lines; 0 disables the cache.
  u32 flow_cache_depth = 0;
  /// false: drain the pool once and return (run()).
  /// true: wrap the pool endlessly until stop() (start()/stop()).
  bool loop = false;
  /// When set, start() acquires `workers` slots from this budget
  /// (blocking; clamped to its capacity) and runs with the granted
  /// count; the grant is released once every worker joined. nullptr =
  /// unbudgeted.
  WorkerBudget* budget = nullptr;
  /// Master telemetry switch: per-worker live counters + trace rings +
  /// update-visibility sampling. Always on by default (the contract is
  /// near-zero cost — the overhead gate in bench_batch_ablation holds
  /// it under 3% Mpps); false is the gate's baseline leg.
  bool telemetry = true;
  /// Run a background StatsSampler snapshotting all workers every this
  /// many ms onto EngineReport::timeseries. 0 = no sampler thread
  /// (end-of-run totals only). Requires `telemetry`.
  u64 stats_interval_ms = 0;
  /// Keep drained TraceRing events in EngineReport::trace_events (the
  /// chrome://tracing export). Off: rings are still written and drop
  /// accounting still works, but drains discard the payload.
  bool collect_trace = false;
  /// Per-worker TraceRing capacity in events (rounded up to a power of
  /// two). Sized so one sampler interval's batches fit comfortably.
  usize trace_ring_capacity = telemetry::TraceRing::kDefaultCapacity;
  /// With collect_trace, retain at most this many drained spans for the
  /// export — a loop-mode run can produce millions, and chrome://tracing
  /// chokes far earlier. Spans past the limit still drain (drop
  /// accounting stays exact) and are counted in
  /// EngineReport::trace_events_truncated. 0 = unlimited.
  usize trace_keep_limit = usize{1} << 15;
  /// RSS-style sharding (0 = unsharded: the legacy geometry where every
  /// worker thread drains the shared pool). With shards = S > 0 the
  /// engine builds S shards — each owning its classifier subscription,
  /// flow cache, probe memo, path controller, batch scratch and
  /// telemetry block — pinned shard s -> worker thread s % workers
  /// (workers is clamped to S).
  usize shards = 0;
  /// Replica: per-shard steered slices of the pool, full ruleset each.
  /// Partition: per-shard full copy of the pool, disjoint rule subsets
  /// (one publisher per shard via the multi-publisher constructor) and
  /// a per-packet priority combiner — finite runs only.
  ShardMode shard_mode = ShardMode::kReplica;
  /// Symmetric steering hash: both directions of a flow land on the
  /// same shard (replica mode's steering stage).
  bool steer_symmetric = false;
  /// Record every packet's verdict (arrival order, per shard) into
  /// EngineReport::captured — the sharded differential fuzzer's hook.
  /// Finite runs only; partition mode captures regardless (the
  /// combiner needs the streams).
  bool capture_verdicts = false;
  /// Test hook: invoked as (worker_index) once per batch iteration in
  /// worker_main before the pipeline runs. A throw propagates through
  /// the worker's normal exception capture into WorkerReport::error —
  /// how the error-surfacing tests inject a worker fault. nullptr in
  /// production.
  std::function<void(usize)> worker_fault_hook;
  /// Seeded fault-injection plane: consulted once per worker sweep
  /// (throw/stall events). Borrowed — must outlive the run. start()
  /// wires the injector's abort flag to the engine stop signal so
  /// injected stalls cancel on drain/shutdown. nullptr in production.
  fault::FaultInjector* fault_injector = nullptr;
  /// Self-healing supervisor (heartbeats + watchdog + bounded restarts
  /// + replica-mode shard takeover). See SupervisorConfig.
  SupervisorConfig supervisor;
};

/// Live view of the supervisor's counters (readable while running).
struct SupervisorStatus {
  bool enabled = false;
  u64 worker_restarts = 0;
  u64 stall_detections = 0;
  u64 shards_reassigned = 0;
  u64 workers_failed = 0;  ///< permanently failed (post-retry)
};

/// Multi-worker batched dataplane runtime.
class Engine {
 public:
  Engine(EngineConfig cfg, const RuleProgramPublisher& programs);
  /// Partition-mode constructor: one publisher per shard (disjoint rule
  /// subsets from partition_rules()). \p shard_programs.size() must
  /// equal cfg.shards.
  /// \throws ConfigError on a size mismatch or cfg.shards == 0.
  Engine(EngineConfig cfg,
         std::vector<const RuleProgramPublisher*> shard_programs);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Drain a finite pool across all workers and report.
  /// \throws ConfigError in loop mode (use start()/stop()).
  EngineReport run(TrafficPool& pool);

  /// Launch the workers without blocking (loop mode's entry point).
  void start(TrafficPool& pool);

  /// Signal, join and report. Idempotent once stopped.
  EngineReport stop();

  /// Join a start()ed finite run WITHOUT raising the stop flag: blocks
  /// until the run concludes — every packet delivered or explicitly
  /// shed, all supervisor restarts/takeovers resolved — then reports.
  /// The chaos path: start(), stream updates (some injected to fail),
  /// wait(). \throws ConfigError in loop mode (nothing concludes).
  EngineReport wait();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] const EngineConfig& config() const { return cfg_; }

  /// Supervisor counters, live (relaxed atomics; safe while running).
  [[nodiscard]] SupervisorStatus supervisor_status() const;

  // ---- control-surface attach points (PR 7) ----
  // The live-introspection plane reads the running engine without
  // stopping it. Callers serialize against stop() themselves (the
  // ControlPlane holds one mutex across handler dispatch and drain).

  /// The background StatsSampler, or nullptr when stats_interval_ms is
  /// 0 / telemetry is off / the engine's telemetry epilogue already ran.
  /// Borrowed; invalidated by stop().
  [[nodiscard]] telemetry::StatsSampler* sampler() { return sampler_.get(); }

  /// Per-worker live telemetry blocks (empty when telemetry is off).
  /// Stable from start() until the *next* start(); the counters stay
  /// readable after stop() (they are totals, frozen once workers join).
  [[nodiscard]] std::vector<const telemetry::WorkerTelemetry*>
  telemetry_blocks() const {
    std::vector<const telemetry::WorkerTelemetry*> out;
    out.reserve(tel_.size());
    for (const auto& t : tel_) out.push_back(t.get());
    return out;
  }

 private:
  /// One pipeline's worth of state. The shard is the unit of ownership:
  /// classifier subscription, flow cache, scratch (probe memo + path
  /// controller), telemetry block and (when capturing) the verdict log
  /// all live here, on the shard's own allocations. Unsharded engines
  /// are the degenerate geometry of one shard per worker over a shared
  /// pool.
  struct Shard {
    usize index = 0;   ///< shard id (== worker id when unsharded)
    usize owner = 0;   ///< owning worker thread (index % thread count)
    /// Owned per-shard pool (replica: steered slice; partition: full
    /// copy). Unsharded shards drain the caller's pool instead.
    TrafficPool pool;
    TrafficPool* active_pool = nullptr;  ///< what the source drains
    Pipeline pipeline;
    PacketSource* source = nullptr;
    Parser* parser = nullptr;
    FlowCacheElement* cache = nullptr;
    ClassifierElement* classifier = nullptr;
    ActionSink* sink = nullptr;
    /// In-arrival-order verdict log (capture_verdicts / partition).
    std::vector<CapturedVerdict> captured;
    /// Set by the owning worker once the shard's source ran dry. Owner-
    /// written, watchdog-read: it is what survives a worker restart or
    /// a takeover (the local done[] bookkeeping dies with the thread).
    std::atomic<bool> drained{false};
  };

  /// An OS thread driving one or more shards round-robin.
  struct WorkerThread {
    usize index = 0;
    /// Owned shards. Stable unless the supervisor is enabled, in which
    /// case mu guards it (the watchdog reassigns shards on takeover and
    /// the worker copies the list per sweep).
    std::vector<Shard*> shards;
    std::thread thread;
    double wall_seconds = 0;
    std::string error;  ///< exception text if the (last) incarnation died
    // ---- supervisor state (PR 9) ----
    mutable std::mutex mu;          ///< guards `shards` when supervised
    std::atomic<u64> heartbeat{0};  ///< one tick per sweep (stall detect)
    std::atomic<u64> sweeps{0};     ///< persistent sweep counter (injector)
    std::atomic<bool> exited{false};  ///< thread function returned
    std::atomic<u64> restarts{0};   ///< respawns performed by the watchdog
    std::atomic<u64> stalls{0};     ///< stall episodes detected
    std::atomic<bool> failed_permanently{false};
    u64 shards_lost = 0;  ///< undrained shards with no survivor to take them
    /// Every incarnation's death message, in order (watchdog-written
    /// after joining the dead thread; read after the watchdog joins).
    std::vector<std::string> all_errors;
  };

  void worker_main(WorkerThread& w);
  /// (Re)launch w's OS thread running worker_main (exited is cleared
  /// first; wall_seconds stays measured from engine start).
  void spawn_worker(WorkerThread& w);
  /// The watchdog: scans heartbeats every watchdog_interval_ms, joins
  /// and respawns dead workers (bounded, backed-off), counts stall
  /// episodes, and hands a permanently-failed worker's undrained
  /// shards to a survivor (replica mode). Exits once the run concluded
  /// or the engine is stopping.
  void watchdog_main();
  /// Move w's undrained shards to the first non-failed survivor
  /// (replica mode); otherwise record them as lost on w.
  void take_over_shards(WorkerThread& w);
  /// Does w still own a shard whose pool is not fully delivered?
  [[nodiscard]] static bool has_undrained(const WorkerThread& w);
  EngineReport finish(bool signal_stop);
  [[nodiscard]] EngineReport collect() const;
  /// WorkerReport for one shard's elements (worker = shard index).
  [[nodiscard]] WorkerReport shard_report(const Shard& s) const;
  /// Sum shard rows owned by one thread into a per-thread row
  /// (replica mode's workers[] view).
  [[nodiscard]] static WorkerReport merge_shard_reports(
      usize worker, const std::vector<const WorkerReport*>& rows);
  /// Partition mode: fold the S index-aligned capture streams into the
  /// single combined workers[] row by min (priority, rule id) per
  /// packet, emitting the combined verdict stream into \p combined.
  [[nodiscard]] WorkerReport combine_partition(
      const std::vector<WorkerReport>& rows,
      std::vector<CapturedVerdict>& combined) const;
  /// Effective trace retention cap: 0 = not collecting, SIZE_MAX =
  /// collecting without a limit.
  [[nodiscard]] usize trace_keep() const;
  /// Publisher feeding shard \p s (shared in unsharded/replica,
  /// per-shard in partition).
  [[nodiscard]] const RuleProgramPublisher& program_for(usize s) const {
    return *programs_[programs_.size() == 1 ? 0 : s];
  }
  [[nodiscard]] bool capture_enabled() const {
    return cfg_.capture_verdicts || (cfg_.shards > 0 &&
                                     cfg_.shard_mode == ShardMode::kPartition);
  }

  EngineConfig cfg_;
  /// Size 1 (unsharded / replica: every shard subscribes to the same
  /// publisher) or cfg_.shards (partition: one per shard).
  std::vector<const RuleProgramPublisher*> programs_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<WorkerThread>> threads_;
  /// Per-shard telemetry blocks (index-aligned with shards_; empty
  /// when cfg_.telemetry is false). unique_ptr keeps each block at its
  /// own cache-line-aligned allocation. Safe despite multi-shard
  /// threads: exactly one thread owns each shard, so each block keeps a
  /// single writer.
  std::vector<std::unique_ptr<telemetry::WorkerTelemetry>> tel_;
  std::unique_ptr<telemetry::StatsSampler> sampler_;
  std::vector<telemetry::StatsSample> timeseries_;
  std::vector<telemetry::TraceEvent> trace_events_;
  u64 trace_truncated_ = 0;  ///< drained past trace_keep_limit
  bool final_drained_ = false;  ///< rings flushed after the last join
  std::atomic<bool> stop_{false};
  bool running_ = false;
  double wall_seconds_ = 0;
  usize budget_granted_ = 0;  ///< slots held from cfg_.budget, 0 = none
  // ---- supervisor + conservation state (PR 9) ----
  std::chrono::steady_clock::time_point start_time_;
  std::thread watchdog_;
  std::atomic<bool> watchdog_stop_{false};
  /// Every worker concluded: exited clean, or permanently failed with
  /// its shards reassigned/accounted. What wait() blocks on.
  std::atomic<bool> run_concluded_{false};
  std::atomic<u64> worker_restarts_{0};
  std::atomic<u64> stall_detections_{0};
  std::atomic<u64> shards_reassigned_{0};
  /// The caller's pool (unsharded geometry drains it directly);
  /// borrowed during the run for the conservation ledger, which is
  /// computed once at first finish() and cached below.
  TrafficPool* caller_pool_ = nullptr;
  u64 offered_ = 0;
  u64 delivered_ = 0;
  u64 shed_ = 0;
  u64 lost_ = 0;
  bool conservation_checked_ = false;
};

}  // namespace pclass::dataplane
