/// \file engine.hpp
/// The dataplane Engine: N worker threads, each driving its own
/// element pipeline (PacketSource -> Parser -> [FlowCache] ->
/// Classifier -> ActionSink) over per-worker PacketBatches. Workers
/// share exactly two things, both wait-free on the fast path: the
/// TrafficPool claim cursor and the published RuleProgram pointer.
/// Everything else — batches, flow caches, statistics — is worker-local,
/// which is what lets the aggregate throughput scale with cores while a
/// concurrent writer streams rule updates through the publisher.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "dataplane/elements.hpp"
#include "dataplane/rule_program.hpp"
#include "dataplane/stats.hpp"

namespace pclass::dataplane {

/// Engine geometry and policy.
struct EngineConfig {
  usize workers = 1;
  usize batch_size = net::kDefaultBatchCapacity;
  /// Per-worker exact-match flow-cache lines; 0 disables the cache.
  u32 flow_cache_depth = 0;
  /// false: drain the pool once and return (run()).
  /// true: wrap the pool endlessly until stop() (start()/stop()).
  bool loop = false;
};

/// Multi-worker batched dataplane runtime.
class Engine {
 public:
  Engine(EngineConfig cfg, const RuleProgramPublisher& programs);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Drain a finite pool across all workers and report.
  /// \throws ConfigError in loop mode (use start()/stop()).
  EngineReport run(TrafficPool& pool);

  /// Launch the workers without blocking (loop mode's entry point).
  void start(TrafficPool& pool);

  /// Signal, join and report. Idempotent once stopped.
  EngineReport stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] const EngineConfig& config() const { return cfg_; }

 private:
  struct Worker {
    Pipeline pipeline;
    PacketSource* source = nullptr;
    Parser* parser = nullptr;
    FlowCacheElement* cache = nullptr;
    ClassifierElement* classifier = nullptr;
    ActionSink* sink = nullptr;
    std::thread thread;
    double wall_seconds = 0;
    std::string error;  ///< exception text if the worker died
  };

  void worker_main(Worker& w);
  EngineReport finish(bool signal_stop);
  [[nodiscard]] EngineReport collect() const;

  EngineConfig cfg_;
  const RuleProgramPublisher* programs_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
  double wall_seconds_ = 0;
};

}  // namespace pclass::dataplane
