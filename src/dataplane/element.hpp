/// \file element.hpp
/// Click-inspired element graph: the dataplane is a chain of small
/// composable stages, each consuming and annotating a PacketBatch and
/// pushing it downstream. Elements are cheap objects owned per worker
/// (no sharing, no locks inside an element); anything shared between
/// workers — the rule program, the traffic pool — is reached through
/// explicitly thread-safe handles.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "net/packet_batch.hpp"

namespace pclass::dataplane {

/// One pipeline stage. Subclasses implement push_batch(), annotate the
/// batch in place, and call forward() to hand it downstream.
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}
  virtual ~Element() = default;

  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Wire this element's output to \p next (single output port).
  void connect(Element* next) { next_ = next; }
  [[nodiscard]] Element* next() const { return next_; }

  /// Process one batch (possibly empty) and forward it.
  virtual void push_batch(net::PacketBatch& batch) = 0;

 protected:
  void forward(net::PacketBatch& batch) {
    if (next_ != nullptr) {
      next_->push_batch(batch);
    }
  }

 private:
  std::string name_;
  Element* next_ = nullptr;
};

/// An owning chain of elements, wired head-to-tail in insertion order.
class Pipeline {
 public:
  /// Append an element, connecting the previous tail to it. Returns the
  /// concrete element pointer for later inspection.
  template <typename E, typename... Args>
  E* emplace(Args&&... args) {
    auto owned = std::make_unique<E>(std::forward<Args>(args)...);
    E* raw = owned.get();
    if (!elements_.empty()) {
      elements_.back()->connect(raw);
    }
    elements_.push_back(std::move(owned));
    return raw;
  }

  [[nodiscard]] usize size() const { return elements_.size(); }
  [[nodiscard]] Element* head() const {
    return elements_.empty() ? nullptr : elements_.front().get();
  }
  [[nodiscard]] Element* at(usize i) const { return elements_.at(i).get(); }

  /// Push a batch into the head of the chain.
  void push_batch(net::PacketBatch& batch) {
    if (elements_.empty()) {
      throw ConfigError("Pipeline: push into an empty pipeline");
    }
    elements_.front()->push_batch(batch);
  }

 private:
  std::vector<std::unique_ptr<Element>> elements_;
};

}  // namespace pclass::dataplane
