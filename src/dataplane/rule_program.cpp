#include "dataplane/rule_program.hpp"

#include <thread>

#include "telemetry/trace_ring.hpp"

namespace pclass::dataplane {

RuleProgramPublisher::RuleProgramPublisher(core::ClassifierConfig cfg)
    : cfg_(cfg) {
  replicas_[0] = std::make_shared<RuleProgram>(cfg_);
  replicas_[1] = std::make_shared<RuleProgram>(cfg_);
  current_.store(replicas_[0], std::memory_order_release);
}

std::shared_ptr<RuleProgram>& RuleProgramPublisher::standby() {
  std::shared_ptr<RuleProgram>& sb = replicas_[1 - published_slot_];
  // Grace period: readers acquired this replica before it was retired
  // and may still be classifying a batch against it. Our array entry is
  // the only long-lived reference, so use_count()==1 means all readers
  // have drained. Batches are short; this converges in microseconds.
  while (sb.use_count() > 1) {
    ++stats_.grace_spins;
    std::this_thread::yield();
  }
  // use_count() is a relaxed load; fence so the drained readers' final
  // accesses happen-before our mutation of the replica (the classic
  // RCU-by-shared_ptr caveat on weakly-ordered CPUs).
  std::atomic_thread_fence(std::memory_order_acquire);
  return sb;
}

hw::UpdateStats RuleProgramPublisher::replay(RuleProgram& p,
                                             u64 charge_from) {
  // The standby first catches up on entries the other replica already
  // absorbed in earlier calls; those must not be charged again, or a
  // publisher-attached controller would account ~2x the cost of the
  // same messages sent to a SwitchDevice. Only entries >= charge_from
  // (this call's batch) contribute to the returned cost.
  hw::UpdateStats cost;
  while (p.version_ < log_base_ + log_.size()) {
    const hw::UpdateStats c =
        sdn::apply_message(p.clf_, log_[p.version_ - log_base_]);
    if (p.version_ >= charge_from) {
      cost += c;
    }
    ++p.version_;
  }
  return cost;
}

void RuleProgramPublisher::publish(const std::shared_ptr<RuleProgram>& next) {
  published_slot_ = (next == replicas_[0]) ? 0 : 1;
  // Timestamp *before* the swap: a worker can only observe the version
  // after the store below, so observe - publish is never negative by
  // construction (modulo clock reads racing the release, clamped by the
  // consumer).
  publish_clock_.note(next->version_, telemetry::steady_now_ns());
  current_.store(next, std::memory_order_release);
  published_version_.store(next->version_, std::memory_order_release);
  ++stats_.publishes;
}

void RuleProgramPublisher::rebuild_standby(std::shared_ptr<RuleProgram>& p) {
  const std::shared_ptr<RuleProgram>& good = replicas_[published_slot_];
  // Mirror the published replica's *entire* live configuration — a
  // ConfigMod in the log may have changed the IP algorithm or any of
  // the batch-path knobs (batch mode, path policy, memo geometry) since
  // construction, and a rebuild from the constructor config would
  // silently undo them on the standby.
  auto fresh = std::make_shared<RuleProgram>(good->clf_.config());
  for (const ruleset::Rule& r : good->clf_.installed_rules()) {
    fresh->clf_.add_rule(r);
  }
  fresh->version_ = good->version_;
  p = std::move(fresh);
}

hw::UpdateStats RuleProgramPublisher::apply(const sdn::Message& msg) {
  return apply_batch({&msg, 1});
}

hw::UpdateStats RuleProgramPublisher::apply_batch(
    std::span<const sdn::Message> msgs) {
  std::lock_guard<std::mutex> lk(writer_mu_);
  const usize log_mark = log_.size();
  const u64 new_from = log_base_ + log_mark;
  log_.insert(log_.end(), msgs.begin(), msgs.end());
  std::shared_ptr<RuleProgram>& sb = standby();
  hw::UpdateStats cost;
  try {
    if (fault_hook_) fault_hook_();
    cost = replay(*sb, new_from);
  } catch (...) {
    // All-or-nothing: drop the whole batch and restore the standby from
    // the (untouched) published replica, since a throwing update may
    // have left it half-mutated.
    log_.resize(log_mark);
    rebuild_standby(sb);
    throw;
  }
  publish(sb);
  stats_.updates_applied += msgs.size();
  stats_.device += cost;
  // Entries below the older replica's version can never be replayed
  // again (a failed replay rebuilds from installed_rules(), not the
  // log); truncating them keeps the log O(one batch) instead of growing
  // forever under continuous churn.
  const u64 min_version =
      std::min(replicas_[0]->version_, replicas_[1]->version_);
  if (min_version > log_base_) {
    log_.erase(log_.begin(),
               log_.begin() + static_cast<std::ptrdiff_t>(min_version -
                                                          log_base_));
    log_base_ = min_version;
  }
  return cost;
}

hw::UpdateStats RuleProgramPublisher::install_ruleset(
    const ruleset::RuleSet& rules) {
  std::vector<sdn::Message> msgs;
  msgs.reserve(rules.size());
  for (const ruleset::Rule& r : rules) {
    sdn::FlowMod fm;
    fm.command = sdn::FlowMod::Command::kAdd;
    fm.cookie = r.id;
    fm.match = r;
    fm.action = sdn::ActionSpec::decode(r.action.token);
    msgs.emplace_back(fm);
  }
  return apply_batch(msgs);
}

}  // namespace pclass::dataplane
