/// \file stats.hpp
/// Per-worker measurement for the dataplane runtime: a cheap log-scale
/// latency histogram (lookup cycles per packet) with percentile
/// extraction, and the per-worker / engine-wide report structs the
/// benches and the CLI print.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/path_controller.hpp"
#include "net/five_tuple.hpp"
#include "telemetry/sample.hpp"
#include "telemetry/trace_ring.hpp"

namespace pclass::dataplane {

/// One packet's verdict as the ActionSink saw it, in arrival order
/// (EngineConfig::capture_verdicts; partition mode records these
/// unconditionally — the combiner consumes them). `version` is the
/// rule-program snapshot the batch was classified against, which is
/// what lets the sharded differential fuzzer check every verdict
/// against a LinearSearch oracle built at exactly that version.
struct CapturedVerdict {
  net::FiveTuple tuple{};
  bool parse_error = false;
  bool matched = false;
  RuleId rule{};
  Priority priority = 0;
  u32 action_token = 0;
  u64 version = 0;        ///< batch's snapshot version
  u64 cycles = 0;         ///< modelled lookup cycles for this packet
  u64 memory_accesses = 0;
};

/// Log-linear histogram of per-packet lookup latency (in modelled
/// device cycles): four sub-buckets per power of two (HDR-histogram
/// style, 2 mantissa bits), so percentiles resolve to within ~12.5%
/// instead of the 2x a pure log2 bucketing gives — fine enough that a
/// 25% p99 shift (e.g. the batch engine's probe memo on fw-like sets)
/// is visible in the scenario reports. Constant memory, O(1) record.
class LatencyHistogram {
 public:
  static constexpr usize kBuckets = 256;

  void record(u64 cycles) {
    ++buckets_[bucket_of(cycles)];
    ++count_;
    sum_ += cycles;
    min_ = count_ == 1 ? cycles : std::min(min_, cycles);
    max_ = std::max(max_, cycles);
  }

  void merge(const LatencyHistogram& o) {
    for (usize i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
    if (o.count_ > 0) {
      min_ = count_ == 0 ? o.min_ : std::min(min_, o.min_);
      max_ = std::max(max_, o.max_);
    }
    count_ += o.count_;
    sum_ += o.sum_;
  }

  [[nodiscard]] u64 count() const { return count_; }
  [[nodiscard]] u64 min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] u64 max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  /// Value at percentile \p p (0..100), linearly interpolated within
  /// the winning bucket (the target rank's midpoint share of the bucket
  /// width), clamped to the observed min/max so a single sample reports
  /// itself exactly and no percentile escapes the data range.
  [[nodiscard]] u64 percentile(double p) const {
    if (count_ == 0) return 0;
    const double v = percentile_from(buckets_, count_, p);
    return std::clamp(static_cast<u64>(std::llround(v)), min_, max_);
  }

  // Log-linear indexing: values < 4 get their own bucket; above that,
  // the exponent selects a group of 4 sub-buckets addressed by the two
  // bits after the leading one. Public so telemetry's AtomicHistogram
  // shares the exact bucketing (interval snapshots stay mergeable with
  // end-of-run histograms).
  [[nodiscard]] static usize bucket_of(u64 v) {
    if (v < 4) return static_cast<usize>(v);
    const unsigned e = static_cast<unsigned>(std::bit_width(v)) - 1;  // >= 2
    const u64 sub = (v >> (e - 2)) & 3;
    return std::min<usize>(4 * static_cast<usize>(e - 2) +
                               static_cast<usize>(sub) + 4,
                           kBuckets - 1);
  }

  /// Smallest value mapping to bucket \p i (inverse of bucket_of:
  /// bucket_of(bucket_floor(i)) == i for every reachable bucket).
  [[nodiscard]] static u64 bucket_floor(usize i) {
    if (i < 4) return static_cast<u64>(i);
    const unsigned e = static_cast<unsigned>((i - 4) / 4) + 2;
    const u64 sub = (i - 4) % 4;
    return (u64{4} + sub) << (e - 2);
  }

  /// Interpolated percentile over raw bucket counts (\p count samples):
  /// the target rank is placed at its midpoint share of the winning
  /// bucket's [floor, next-floor) width. Shared by instance percentiles
  /// and the StatsSampler's interval-delta percentiles; unclamped (the
  /// caller may not know min/max), monotonic in \p p.
  [[nodiscard]] static double percentile_from(
      std::span<const u64> buckets, u64 count, double p) {
    if (count == 0) return 0.0;
    const double target =
        std::clamp(p / 100.0 * static_cast<double>(count), 1.0,
                   static_cast<double>(count));
    u64 seen = 0;
    for (usize i = 0; i < buckets.size(); ++i) {
      const u64 c = buckets[i];
      if (c == 0) continue;
      if (static_cast<double>(seen + c) >= target) {
        const u64 lo = bucket_floor(i);
        const u64 hi =
            i + 1 < kBuckets ? bucket_floor(i + 1) : lo;  // overflow: floor
        // Midpoint convention: the k-th of c samples in the bucket sits
        // at (k - 0.5)/c of the width.
        const double frac = std::clamp(
            (target - static_cast<double>(seen) - 0.5) / static_cast<double>(c),
            0.0, 1.0);
        return static_cast<double>(lo) +
               frac * static_cast<double>(hi - lo);
      }
      seen += c;
    }
    return static_cast<double>(bucket_floor(kBuckets - 1));
  }

 private:
  std::array<u64, kBuckets> buckets_{};
  u64 count_ = 0;
  u64 sum_ = 0;
  u64 min_ = 0;
  u64 max_ = 0;
};

/// One worker's end-of-run measurement.
struct WorkerReport {
  usize worker = 0;
  u64 batches = 0;
  u64 packets = 0;
  u64 matched = 0;
  u64 dropped = 0;       ///< table miss or explicit drop action
  u64 parse_errors = 0;
  u64 cache_hits = 0;
  u64 cache_misses = 0;
  u64 classifier_lookups = 0;  ///< full 4-phase lookups (cache misses)
  u64 memory_accesses = 0;     ///< modelled block-memory reads (per-worker)
  u64 probe_memo_hits = 0;     ///< combiner probes served by the memo
  /// Times the persistent probe memo dropped its entries (initial bind
  /// plus one per snapshot swap this worker classified across).
  u64 probe_memo_invalidations = 0;
  /// Memo replacements that overwrote a live entry of another key — the
  /// conflict misses the 2-way geometry exists to reduce (the
  /// --memo-ways 1-vs-2 A/B observable).
  u64 probe_memo_conflict_evictions = 0;
  /// Batches served via each phase-2 execution path (the per-worker
  /// controller's choices; forced policies count here too).
  u64 path_scalar_loop_batches = 0;
  u64 path_phase2_batches = 0;
  u64 path_phase2_memo_batches = 0;
  /// The controller's fitted per-path cost model
  /// (ns = a*packets + b*distinct_keys), indexed by core::BatchPath,
  /// plus the timed observation count behind each fit (0 under forced
  /// policies, which skip the clock — the models stay zero there).
  std::array<core::PathCostModel, core::kNumBatchPaths> controller_models{};
  std::array<u64, core::kNumBatchPaths> controller_observations{};
  u64 min_version = 0;   ///< lowest rule-program version observed
  u64 max_version = 0;   ///< highest rule-program version observed
  bool version_monotonic = true;  ///< versions never went backwards
  /// TraceRing events lost to overwrite before a drain reached them
  /// (0 when telemetry is off or the ring kept up).
  u64 trace_events_dropped = 0;
  /// Update-visibility latency (publish -> this worker observing the
  /// new version): observation count, summed ns and worst case. Zero
  /// when the program never changed mid-run (finite scenarios).
  u64 update_visibility_samples = 0;
  u64 update_visibility_total_ns = 0;
  u64 update_visibility_max_ns = 0;
  LatencyHistogram latency;       ///< per-packet lookup cycles
  double wall_seconds = 0;
  /// Non-empty if the worker died on an exception (exceptions must not
  /// escape a worker thread — that would std::terminate the process).
  /// Under the supervisor, healed workers (died but restarted, run
  /// concluded) report empty here — their death messages live in
  /// EngineReport::error_log; only a permanent failure that actually
  /// lost traffic (shards_lost > 0) is fatal enough to surface here.
  std::string error;
  // ---- supervisor accounting (zero when the supervisor is off) ----
  u64 restarts = 0;  ///< watchdog respawns of this worker
  u64 stalls = 0;    ///< heartbeat-stagnation episodes detected
  bool failed_permanently = false;  ///< dead post-retry (max_restarts spent)
  /// Undrained shards this worker took to the grave (no survivor to
  /// reassign them to — their remaining packets are shed).
  u64 shards_lost = 0;

  [[nodiscard]] double cache_hit_rate() const {
    const u64 total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
  [[nodiscard]] double mpps() const {
    return wall_seconds <= 0.0 ? 0.0
                               : static_cast<double>(packets) / 1e6 /
                                     wall_seconds;
  }
};

/// Engine-wide update-visibility rollup (see WorkerReport's
/// update_visibility_* fields).
struct UpdateVisibility {
  u64 samples = 0;
  double mean_ns = 0;
  u64 max_ns = 0;
};

/// One worker death, with enough context to tell a healed incarnation
/// from a permanent failure (EngineReport::error_log — the "surface ALL
/// worker errors" view; first_error() stays the compat single-error
/// view).
struct WorkerErrorDetail {
  usize worker = 0;
  /// Restarts completed before this death (0 = first incarnation).
  u64 restarts = 0;
  /// True when this death ended the worker for good (no retry left, or
  /// the supervisor was off).
  bool permanent = false;
  std::string message;
};

/// Whole-engine rollup.
///
/// `workers` is always the authoritative, double-count-free view: its
/// per-counter sums are the engine totals whatever the shard geometry.
/// Unsharded engines put one row per worker thread there (as always).
/// Sharded replica engines put one *merged* row per worker thread
/// (summing the disjoint shards that thread owns) and expose the raw
/// per-shard rows in `shards`. Sharded partition engines — where every
/// shard classifies the whole stream, so summing shard rows would count
/// each packet S times — put a single combined row in `workers` (the
/// combiner's true totals) and the raw per-shard rows in `shards`.
struct EngineReport {
  std::vector<WorkerReport> workers;
  /// Per-shard raw rows (WorkerReport::worker = shard index); empty for
  /// unsharded engines. Replica invariant: sum(shards) == sum(workers).
  std::vector<WorkerReport> shards;
  /// Per-shard (or per-worker when unsharded) verdict streams, arrival
  /// order; filled when EngineConfig::capture_verdicts is set or the
  /// engine ran in partition mode.
  std::vector<std::vector<CapturedVerdict>> captured;
  /// Partition mode only: the combiner's per-packet output stream in
  /// input order (index i is input packet i). `cycles` is the max over
  /// the shards (parallel probe, wait-for-all) and `memory_accesses`
  /// the sum (total modelled work); the verdict fields carry the
  /// winning shard's min-(priority, rule) match. Empty outside
  /// partition mode.
  std::vector<CapturedVerdict> combined;
  double wall_seconds = 0;
  /// The StatsSampler's interval series (empty when
  /// EngineConfig::stats_interval_ms == 0). Invariant: per-counter
  /// interval deltas sum to the end-of-run totals.
  std::vector<telemetry::StatsSample> timeseries;
  /// Drained TraceRing events (EngineConfig::collect_trace).
  std::vector<telemetry::TraceEvent> trace_events;
  /// Spans drained past EngineConfig::trace_keep_limit — measured but
  /// not retained for the export (distinct from trace_events_dropped(),
  /// which is ring-overwrite loss).
  u64 trace_events_truncated = 0;
  // ---- conservation ledger (finite runs; see docs/ROBUSTNESS.md) ----
  /// True when the engine computed the ledger (finite pool; loop-mode
  /// runs have no "offered" total to conserve against).
  bool conservation_checked = false;
  u64 offered_packets = 0;    ///< packets the run was asked to deliver
  u64 delivered_packets = 0;  ///< packets that reached an ActionSink
  /// Offered but never claimed by any source (their owner died
  /// unrecoverably with no survivor to take the shard).
  u64 shed_packets = 0;
  /// Claimed off a pool but never delivered — in flight inside a worker
  /// that died (at most one batch per death).
  u64 lost_packets = 0;
  // ---- supervisor rollup ----
  u64 worker_restarts = 0;
  u64 stall_detections = 0;
  u64 shards_reassigned = 0;
  u64 workers_failed = 0;  ///< permanently failed workers (post-retry)
  /// Every worker death in order of (worker, incarnation) — healed and
  /// permanent alike. Empty when nothing died.
  std::vector<WorkerErrorDetail> error_log;

  /// The conservation invariant: every offered packet is delivered,
  /// shed, or accounted lost in flight — exactly. Vacuously true when
  /// the ledger was not computed (loop mode).
  [[nodiscard]] bool conserved() const {
    return !conservation_checked ||
           delivered_packets + shed_packets + lost_packets == offered_packets;
  }

  [[nodiscard]] u64 packets() const {
    u64 n = 0;
    for (const auto& w : workers) n += w.packets;
    return n;
  }
  [[nodiscard]] u64 matched() const {
    u64 n = 0;
    for (const auto& w : workers) n += w.matched;
    return n;
  }
  [[nodiscard]] double aggregate_mpps() const {
    return wall_seconds <= 0.0 ? 0.0
                               : static_cast<double>(packets()) / 1e6 /
                                     wall_seconds;
  }
  /// First worker error, or empty when every worker ran to completion.
  [[nodiscard]] std::string first_error() const {
    for (const auto& w : workers) {
      if (!w.error.empty()) return w.error;
    }
    return {};
  }
  [[nodiscard]] bool versions_monotonic() const {
    for (const auto& w : workers) {
      if (!w.version_monotonic) return false;
    }
    return true;
  }
  [[nodiscard]] LatencyHistogram merged_latency() const {
    LatencyHistogram h;
    for (const auto& w : workers) h.merge(w.latency);
    return h;
  }
  [[nodiscard]] u64 trace_events_dropped() const {
    u64 n = 0;
    for (const auto& w : workers) n += w.trace_events_dropped;
    return n;
  }
  [[nodiscard]] UpdateVisibility update_visibility() const {
    UpdateVisibility v;
    u64 total_ns = 0;
    for (const auto& w : workers) {
      v.samples += w.update_visibility_samples;
      total_ns += w.update_visibility_total_ns;
      v.max_ns = std::max(v.max_ns, w.update_visibility_max_ns);
    }
    v.mean_ns = v.samples == 0 ? 0.0
                               : static_cast<double>(total_ns) /
                                     static_cast<double>(v.samples);
    return v;
  }
};

}  // namespace pclass::dataplane
