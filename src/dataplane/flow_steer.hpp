/// \file flow_steer.hpp
/// RSS-style flow steering for the sharded dataplane runtime.
///
/// A NIC with receive-side scaling hashes the 5-tuple of every ingress
/// packet and uses the hash to pick a receive queue; the software
/// analogue here steers each entry of a TrafficPool to a per-shard pool
/// before the workers start, so every shard sees a disjoint, per-flow
/// consistent slice of the traffic (all packets of one flow land on the
/// same shard — the invariant the per-shard flow caches and probe memos
/// rely on for locality).
///
/// Two sharding modes:
///   * kReplica   — every shard holds the full ruleset; steering only
///                  buys cache locality. Verdicts are trivially
///                  identical to the unsharded engine.
///   * kPartition — shards hold disjoint rule subsets (priority-
///                  preserving round-robin split) and each shard
///                  classifies the *whole* stream; a combiner picks,
///                  per packet, the matching shard verdict with the
///                  smallest (priority, rule id) — exactly
///                  LinearSearch's stable tie-break, so the combined
///                  verdict equals the unsharded one by construction.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bits.hpp"
#include "common/hash.hpp"
#include "dataplane/elements.hpp"
#include "net/five_tuple.hpp"
#include "ruleset/rule_set.hpp"

namespace pclass::dataplane {

/// How shards relate to the ruleset (EngineConfig::shard_mode).
enum class ShardMode : u8 {
  kReplica,    ///< full ruleset per shard; steering gives locality
  kPartition,  ///< disjoint rule subsets + priority combiner
};

[[nodiscard]] constexpr const char* to_string(ShardMode m) {
  return m == ShardMode::kReplica ? "replica" : "partition";
}

/// CLI spelling -> mode ("replica" / "partition"); nullopt on anything
/// else so the tools can print usage instead of guessing.
[[nodiscard]] std::optional<ShardMode> parse_shard_mode(std::string_view s);

/// The steering hash: mix64 avalanche over the 5-tuple. With
/// \p symmetric the (ip, port) endpoint pairs are canonically ordered
/// first, so both directions of a bidirectional flow produce the same
/// hash (the RSS "symmetric Toeplitz" option) — at the cost of mixing
/// forward and reverse flows onto one shard.
[[nodiscard]] inline u64 steer_hash(const net::FiveTuple& t,
                                    bool symmetric = false) {
  u32 a_ip = t.src_ip;
  u32 b_ip = t.dst_ip;
  u16 a_port = t.src_port;
  u16 b_port = t.dst_port;
  if (symmetric &&
      (a_ip > b_ip || (a_ip == b_ip && a_port > b_port))) {
    std::swap(a_ip, b_ip);
    std::swap(a_port, b_port);
  }
  const u64 h = mix64((u64{a_ip} << 32) | b_ip);
  return mix64(h ^ ((u64{a_port} << 32) | (u64{b_port} << 8) |
                    t.protocol));
}

/// Shard index for one header: multiply-high range reduction of the
/// steering hash (uniform for any shard count, no modulo bias).
[[nodiscard]] inline usize shard_of(const net::FiveTuple& t, usize nshards,
                                    bool symmetric = false) {
  if (nshards <= 1) return 0;
  return static_cast<usize>(mul_high_u64(steer_hash(t, symmetric), nshards));
}

/// Split \p pool into \p nshards per-shard pools by steering hash
/// (replica mode's ingress stage). Raw-packet pools are steered by their
/// parsed header; unparsable packets — which every shard would drop
/// identically anyway — are spread round-robin.
/// \throws ConfigError when nshards == 0.
[[nodiscard]] std::vector<TrafficPool> steer_split(const TrafficPool& pool,
                                                   usize nshards,
                                                   bool symmetric = false);

/// Priority-preserving disjoint split for partition mode: rules are
/// dealt round-robin in ruleset order (ascending priority), verbatim —
/// ids and priorities untouched — so the union of the parts is exactly
/// the input and every shard holds a balanced cross-section of the
/// priority range.
/// \throws ConfigError when nshards == 0.
[[nodiscard]] std::vector<ruleset::RuleSet> partition_rules(
    const ruleset::RuleSet& rules, usize nshards);

}  // namespace pclass::dataplane
