#include "dataplane/engine.hpp"

#include <chrono>

namespace pclass::dataplane {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

// ---- WorkerBudget ---------------------------------------------------------

WorkerBudget::WorkerBudget(usize capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw ConfigError("WorkerBudget: capacity must be >= 1");
  }
}

usize WorkerBudget::acquire(usize want) {
  const usize grant = std::max<usize>(1, std::min(want, capacity_));
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return capacity_ - in_use_ >= grant; });
  in_use_ += grant;
  peak_ = std::max(peak_, in_use_);
  return grant;
}

void WorkerBudget::release(usize granted) {
  if (granted == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (granted > in_use_) {
      throw InternalError("WorkerBudget: release of more slots than held");
    }
    in_use_ -= granted;
  }
  cv_.notify_all();
}

usize WorkerBudget::in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_use_;
}

usize WorkerBudget::peak_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

// ---- Engine ---------------------------------------------------------------

Engine::Engine(EngineConfig cfg, const RuleProgramPublisher& programs)
    : cfg_(cfg), programs_(&programs) {
  if (cfg_.workers == 0) cfg_.workers = 1;
  if (cfg_.batch_size == 0) cfg_.batch_size = net::kDefaultBatchCapacity;
}

Engine::~Engine() {
  if (running_) {
    stop();
  }
}

void Engine::start(TrafficPool& pool) {
  if (running_) {
    throw ConfigError("Engine: start() while already running");
  }
  stop_.store(false, std::memory_order_relaxed);
  workers_.clear();
  // Draw this engine's worker threads from the shared budget (blocking
  // until the whole grant is free), so concurrent engines never exceed
  // the budget's capacity in total.
  usize worker_count = cfg_.workers;
  if (cfg_.budget != nullptr) {
    budget_granted_ = cfg_.budget->acquire(cfg_.workers);
    worker_count = budget_granted_;
  }
  for (usize i = 0; i < worker_count; ++i) {
    auto w = std::make_unique<Worker>();
    w->source = w->pipeline.emplace<PacketSource>(&pool, cfg_.loop);
    w->parser = w->pipeline.emplace<Parser>();
    if (cfg_.flow_cache_depth > 0) {
      w->cache = w->pipeline.emplace<FlowCacheElement>(
          programs_, cfg_.flow_cache_depth,
          "worker" + std::to_string(i) + ".flow_cache");
    }
    w->classifier =
        w->pipeline.emplace<ClassifierElement>(programs_, w->cache);
    w->sink = w->pipeline.emplace<ActionSink>();
    workers_.push_back(std::move(w));
  }
  const Clock::time_point t0 = Clock::now();
  try {
    for (auto& w : workers_) {
      w->thread = std::thread([this, &w = *w, t0] {
        try {
          worker_main(w);
        } catch (const std::exception& e) {
          // An escaping exception would std::terminate the process;
          // capture it for the report instead.
          w.error = e.what();
        }
        w.wall_seconds = seconds_since(t0);
      });
    }
  } catch (...) {
    // Thread construction failed part-way (e.g. an absurd worker
    // count): join what launched, or their destructors terminate us.
    stop_.store(true, std::memory_order_relaxed);
    for (auto& w : workers_) {
      if (w->thread.joinable()) w->thread.join();
    }
    workers_.clear();
    if (budget_granted_ > 0) {
      cfg_.budget->release(budget_granted_);
      budget_granted_ = 0;
    }
    throw;
  }
  running_ = true;
  wall_seconds_ = 0;
}

void Engine::worker_main(Worker& w) {
  net::PacketBatch batch(cfg_.batch_size);
  while (!stop_.load(std::memory_order_relaxed)) {
    w.source->push_batch(batch);
    if (w.source->exhausted()) break;
  }
}

EngineReport Engine::stop() { return finish(/*signal_stop=*/true); }

EngineReport Engine::finish(bool signal_stop) {
  if (signal_stop) {
    stop_.store(true, std::memory_order_relaxed);
  }
  double wall = 0;
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
    wall = std::max(wall, w->wall_seconds);
  }
  if (running_) {
    wall_seconds_ = wall;
    running_ = false;
  }
  // Every worker has joined: give the grant back (idempotent — stop()
  // may be called again).
  if (budget_granted_ > 0) {
    cfg_.budget->release(budget_granted_);
    budget_granted_ = 0;
  }
  return collect();
}

EngineReport Engine::run(TrafficPool& pool) {
  if (cfg_.loop) {
    throw ConfigError("Engine: run() requires a finite pool; "
                      "loop mode uses start()/stop()");
  }
  start(pool);
  // Workers exit on pool exhaustion; join without raising the stop flag
  // (raising it would cut them off after their first batch).
  return finish(/*signal_stop=*/false);
}

EngineReport Engine::collect() const {
  EngineReport rep;
  rep.wall_seconds = wall_seconds_;
  for (usize i = 0; i < workers_.size(); ++i) {
    const Worker& w = *workers_[i];
    WorkerReport r;
    r.worker = i;
    r.batches = w.sink->batches();
    r.packets = w.sink->packets();
    r.matched = w.sink->matched();
    r.dropped = w.sink->dropped();
    r.parse_errors = w.parser->errors();
    r.cache_hits = w.sink->cache_hits();
    r.classifier_lookups = w.classifier->lookups();
    r.memory_accesses = w.sink->memory_accesses();
    r.probe_memo_hits = w.classifier->probe_memo_hits();
    r.probe_memo_invalidations = w.classifier->probe_memo_invalidations();
    r.probe_memo_conflict_evictions =
        w.classifier->probe_memo_conflict_evictions();
    r.path_scalar_loop_batches =
        w.classifier->path_batches(core::BatchPath::kScalarLoop);
    r.path_phase2_batches =
        w.classifier->path_batches(core::BatchPath::kPhase2);
    r.path_phase2_memo_batches =
        w.classifier->path_batches(core::BatchPath::kPhase2Memo);
    for (usize p = 0; p < core::kNumBatchPaths; ++p) {
      const auto path = static_cast<core::BatchPath>(p);
      r.controller_models[p] = w.classifier->controller_model(path);
      r.controller_observations[p] = w.classifier->controller_observations(path);
    }
    r.cache_misses = w.cache == nullptr ? 0 : w.cache->stats().misses;
    r.min_version = w.classifier->min_version();
    r.max_version = w.classifier->max_version();
    r.version_monotonic = w.classifier->version_monotonic();
    r.latency = w.sink->latency();
    r.wall_seconds = w.wall_seconds;
    r.error = w.error;
    rep.workers.push_back(std::move(r));
  }
  return rep;
}

}  // namespace pclass::dataplane
