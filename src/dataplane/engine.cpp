#include "dataplane/engine.hpp"

#include <chrono>

namespace pclass::dataplane {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

Engine::Engine(EngineConfig cfg, const RuleProgramPublisher& programs)
    : cfg_(cfg), programs_(&programs) {
  if (cfg_.workers == 0) cfg_.workers = 1;
  if (cfg_.batch_size == 0) cfg_.batch_size = net::kDefaultBatchCapacity;
}

Engine::~Engine() {
  if (running_) {
    stop();
  }
}

void Engine::start(TrafficPool& pool) {
  if (running_) {
    throw ConfigError("Engine: start() while already running");
  }
  stop_.store(false, std::memory_order_relaxed);
  workers_.clear();
  for (usize i = 0; i < cfg_.workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->source = w->pipeline.emplace<PacketSource>(&pool, cfg_.loop);
    w->parser = w->pipeline.emplace<Parser>();
    if (cfg_.flow_cache_depth > 0) {
      w->cache = w->pipeline.emplace<FlowCacheElement>(
          programs_, cfg_.flow_cache_depth,
          "worker" + std::to_string(i) + ".flow_cache");
    }
    w->classifier =
        w->pipeline.emplace<ClassifierElement>(programs_, w->cache);
    w->sink = w->pipeline.emplace<ActionSink>();
    workers_.push_back(std::move(w));
  }
  const Clock::time_point t0 = Clock::now();
  try {
    for (auto& w : workers_) {
      w->thread = std::thread([this, &w = *w, t0] {
        try {
          worker_main(w);
        } catch (const std::exception& e) {
          // An escaping exception would std::terminate the process;
          // capture it for the report instead.
          w.error = e.what();
        }
        w.wall_seconds = seconds_since(t0);
      });
    }
  } catch (...) {
    // Thread construction failed part-way (e.g. an absurd worker
    // count): join what launched, or their destructors terminate us.
    stop_.store(true, std::memory_order_relaxed);
    for (auto& w : workers_) {
      if (w->thread.joinable()) w->thread.join();
    }
    workers_.clear();
    throw;
  }
  running_ = true;
  wall_seconds_ = 0;
}

void Engine::worker_main(Worker& w) {
  net::PacketBatch batch(cfg_.batch_size);
  while (!stop_.load(std::memory_order_relaxed)) {
    w.source->push_batch(batch);
    if (w.source->exhausted()) break;
  }
}

EngineReport Engine::stop() { return finish(/*signal_stop=*/true); }

EngineReport Engine::finish(bool signal_stop) {
  if (signal_stop) {
    stop_.store(true, std::memory_order_relaxed);
  }
  double wall = 0;
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
    wall = std::max(wall, w->wall_seconds);
  }
  if (running_) {
    wall_seconds_ = wall;
    running_ = false;
  }
  return collect();
}

EngineReport Engine::run(TrafficPool& pool) {
  if (cfg_.loop) {
    throw ConfigError("Engine: run() requires a finite pool; "
                      "loop mode uses start()/stop()");
  }
  start(pool);
  // Workers exit on pool exhaustion; join without raising the stop flag
  // (raising it would cut them off after their first batch).
  return finish(/*signal_stop=*/false);
}

EngineReport Engine::collect() const {
  EngineReport rep;
  rep.wall_seconds = wall_seconds_;
  for (usize i = 0; i < workers_.size(); ++i) {
    const Worker& w = *workers_[i];
    WorkerReport r;
    r.worker = i;
    r.batches = w.sink->batches();
    r.packets = w.sink->packets();
    r.matched = w.sink->matched();
    r.dropped = w.sink->dropped();
    r.parse_errors = w.parser->errors();
    r.cache_hits = w.sink->cache_hits();
    r.classifier_lookups = w.classifier->lookups();
    r.memory_accesses = w.sink->memory_accesses();
    r.probe_memo_hits = w.classifier->probe_memo_hits();
    r.probe_memo_invalidations = w.classifier->probe_memo_invalidations();
    r.path_scalar_loop_batches =
        w.classifier->path_batches(core::BatchPath::kScalarLoop);
    r.path_phase2_batches =
        w.classifier->path_batches(core::BatchPath::kPhase2);
    r.path_phase2_memo_batches =
        w.classifier->path_batches(core::BatchPath::kPhase2Memo);
    r.cache_misses = w.cache == nullptr ? 0 : w.cache->stats().misses;
    r.min_version = w.classifier->min_version();
    r.max_version = w.classifier->max_version();
    r.version_monotonic = w.classifier->version_monotonic();
    r.latency = w.sink->latency();
    r.wall_seconds = w.wall_seconds;
    r.error = w.error;
    rep.workers.push_back(std::move(r));
  }
  return rep;
}

}  // namespace pclass::dataplane
