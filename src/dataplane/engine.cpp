#include "dataplane/engine.hpp"

#include <chrono>
#include <limits>

namespace pclass::dataplane {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

// ---- WorkerBudget ---------------------------------------------------------

WorkerBudget::WorkerBudget(usize capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw ConfigError("WorkerBudget: capacity must be >= 1");
  }
}

usize WorkerBudget::acquire(usize want) {
  const usize grant = std::max<usize>(1, std::min(want, capacity_));
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return capacity_ - in_use_ >= grant; });
  in_use_ += grant;
  peak_ = std::max(peak_, in_use_);
  return grant;
}

void WorkerBudget::release(usize granted) {
  if (granted == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (granted > in_use_) {
      throw InternalError("WorkerBudget: release of more slots than held");
    }
    in_use_ -= granted;
  }
  cv_.notify_all();
}

usize WorkerBudget::in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_use_;
}

usize WorkerBudget::peak_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

// ---- Engine ---------------------------------------------------------------

Engine::Engine(EngineConfig cfg, const RuleProgramPublisher& programs)
    : cfg_(cfg), programs_(&programs) {
  if (cfg_.workers == 0) cfg_.workers = 1;
  if (cfg_.batch_size == 0) cfg_.batch_size = net::kDefaultBatchCapacity;
}

Engine::~Engine() {
  if (running_) {
    stop();
  }
}

void Engine::start(TrafficPool& pool) {
  if (running_) {
    throw ConfigError("Engine: start() while already running");
  }
  stop_.store(false, std::memory_order_relaxed);
  workers_.clear();
  tel_.clear();
  sampler_.reset();
  timeseries_.clear();
  trace_events_.clear();
  trace_truncated_ = 0;
  final_drained_ = false;
  // Draw this engine's worker threads from the shared budget (blocking
  // until the whole grant is free), so concurrent engines never exceed
  // the budget's capacity in total.
  usize worker_count = cfg_.workers;
  if (cfg_.budget != nullptr) {
    budget_granted_ = cfg_.budget->acquire(cfg_.workers);
    worker_count = budget_granted_;
  }
  for (usize i = 0; i < worker_count; ++i) {
    telemetry::WorkerTelemetry* tel = nullptr;
    if (cfg_.telemetry) {
      tel_.push_back(std::make_unique<telemetry::WorkerTelemetry>(
          static_cast<u32>(i), cfg_.trace_ring_capacity));
      tel = tel_.back().get();
    }
    auto w = std::make_unique<Worker>();
    w->index = i;
    w->source = w->pipeline.emplace<PacketSource>(&pool, cfg_.loop);
    w->parser = w->pipeline.emplace<Parser>(tel);
    if (cfg_.flow_cache_depth > 0) {
      w->cache = w->pipeline.emplace<FlowCacheElement>(
          programs_, cfg_.flow_cache_depth,
          "worker" + std::to_string(i) + ".flow_cache", tel);
    }
    w->classifier =
        w->pipeline.emplace<ClassifierElement>(programs_, w->cache, tel);
    w->sink = w->pipeline.emplace<ActionSink>(tel);
    workers_.push_back(std::move(w));
  }
  if (cfg_.telemetry && cfg_.stats_interval_ms > 0) {
    std::vector<telemetry::WorkerTelemetry*> blocks;
    blocks.reserve(tel_.size());
    for (const auto& t : tel_) blocks.push_back(t.get());
    sampler_ = std::make_unique<telemetry::StatsSampler>(
        std::move(blocks), cfg_.stats_interval_ms, trace_keep());
    sampler_->start();
  }
  const Clock::time_point t0 = Clock::now();
  try {
    for (auto& w : workers_) {
      w->thread = std::thread([this, &w = *w, t0] {
        try {
          worker_main(w);
        } catch (const std::exception& e) {
          // An escaping exception would std::terminate the process;
          // capture it for the report instead.
          w.error = e.what();
        }
        w.wall_seconds = seconds_since(t0);
      });
    }
  } catch (...) {
    // Thread construction failed part-way (e.g. an absurd worker
    // count): join what launched, or their destructors terminate us.
    stop_.store(true, std::memory_order_relaxed);
    for (auto& w : workers_) {
      if (w->thread.joinable()) w->thread.join();
    }
    workers_.clear();
    if (budget_granted_ > 0) {
      cfg_.budget->release(budget_granted_);
      budget_granted_ = 0;
    }
    throw;
  }
  running_ = true;
  wall_seconds_ = 0;
}

void Engine::worker_main(Worker& w) {
  net::PacketBatch batch(cfg_.batch_size);
  while (!stop_.load(std::memory_order_relaxed)) {
    if (cfg_.worker_fault_hook) {
      cfg_.worker_fault_hook(w.index);
    }
    w.source->push_batch(batch);
    if (w.source->exhausted()) break;
  }
}

EngineReport Engine::stop() { return finish(/*signal_stop=*/true); }

EngineReport Engine::finish(bool signal_stop) {
  if (signal_stop) {
    stop_.store(true, std::memory_order_relaxed);
  }
  double wall = 0;
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
    wall = std::max(wall, w->wall_seconds);
  }
  if (running_) {
    wall_seconds_ = wall;
    running_ = false;
  }
  // Telemetry epilogue, after every worker joined (so totals are
  // final): the sampler takes its mandatory flush tick (sum of interval
  // deltas == end-of-run totals), and the rings get one final drain so
  // drop accounting is complete even without a sampler. Idempotent —
  // stop() may be called again.
  if (sampler_ != nullptr) {
    sampler_->stop();
    timeseries_ = sampler_->take_samples();
    trace_events_ = sampler_->take_events();
    trace_truncated_ = sampler_->truncated();
    sampler_.reset();
    final_drained_ = true;
  } else if (!final_drained_) {
    const usize keep = trace_keep();
    for (const auto& t : tel_) {
      if (keep == 0) {
        t->ring.drain(nullptr);
      } else if (trace_events_.size() < keep) {
        t->ring.drain(&trace_events_);
      } else {
        trace_truncated_ += t->ring.drain(nullptr);
      }
    }
    if (keep > 0 && trace_events_.size() > keep) {
      trace_truncated_ += trace_events_.size() - keep;
      trace_events_.resize(keep);
    }
    final_drained_ = true;
  }
  if (budget_granted_ > 0) {
    cfg_.budget->release(budget_granted_);
    budget_granted_ = 0;
  }
  return collect();
}

usize Engine::trace_keep() const {
  if (!cfg_.collect_trace) return 0;
  return cfg_.trace_keep_limit == 0 ? std::numeric_limits<usize>::max()
                                    : cfg_.trace_keep_limit;
}

EngineReport Engine::run(TrafficPool& pool) {
  if (cfg_.loop) {
    throw ConfigError("Engine: run() requires a finite pool; "
                      "loop mode uses start()/stop()");
  }
  start(pool);
  // Workers exit on pool exhaustion; join without raising the stop flag
  // (raising it would cut them off after their first batch).
  return finish(/*signal_stop=*/false);
}

EngineReport Engine::collect() const {
  EngineReport rep;
  rep.wall_seconds = wall_seconds_;
  for (usize i = 0; i < workers_.size(); ++i) {
    const Worker& w = *workers_[i];
    WorkerReport r;
    r.worker = i;
    r.batches = w.sink->batches();
    r.packets = w.sink->packets();
    r.matched = w.sink->matched();
    r.dropped = w.sink->dropped();
    r.parse_errors = w.parser->errors();
    r.cache_hits = w.sink->cache_hits();
    r.classifier_lookups = w.classifier->lookups();
    r.memory_accesses = w.sink->memory_accesses();
    r.probe_memo_hits = w.classifier->probe_memo_hits();
    r.probe_memo_invalidations = w.classifier->probe_memo_invalidations();
    r.probe_memo_conflict_evictions =
        w.classifier->probe_memo_conflict_evictions();
    r.path_scalar_loop_batches =
        w.classifier->path_batches(core::BatchPath::kScalarLoop);
    r.path_phase2_batches =
        w.classifier->path_batches(core::BatchPath::kPhase2);
    r.path_phase2_memo_batches =
        w.classifier->path_batches(core::BatchPath::kPhase2Memo);
    for (usize p = 0; p < core::kNumBatchPaths; ++p) {
      const auto path = static_cast<core::BatchPath>(p);
      r.controller_models[p] = w.classifier->controller_model(path);
      r.controller_observations[p] = w.classifier->controller_observations(path);
    }
    r.cache_misses = w.cache == nullptr ? 0 : w.cache->stats().misses;
    r.min_version = w.classifier->min_version();
    r.max_version = w.classifier->max_version();
    r.version_monotonic = w.classifier->version_monotonic();
    if (i < tel_.size() && tel_[i] != nullptr) {
      const telemetry::WorkerTelemetry& t = *tel_[i];
      r.trace_events_dropped = t.ring.dropped();
      r.update_visibility_samples =
          telemetry::counter_load(t.live.update_visibility_samples);
      r.update_visibility_total_ns =
          telemetry::counter_load(t.live.update_visibility_total_ns);
      r.update_visibility_max_ns =
          telemetry::counter_load(t.live.update_visibility_max_ns);
    }
    r.latency = w.sink->latency();
    r.wall_seconds = w.wall_seconds;
    r.error = w.error;
    rep.workers.push_back(std::move(r));
  }
  rep.timeseries = timeseries_;
  rep.trace_events = trace_events_;
  rep.trace_events_truncated = trace_truncated_;
  return rep;
}

}  // namespace pclass::dataplane
