#include "dataplane/engine.hpp"

#include <chrono>
#include <limits>

namespace pclass::dataplane {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

// ---- WorkerBudget ---------------------------------------------------------

WorkerBudget::WorkerBudget(usize capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw ConfigError("WorkerBudget: capacity must be >= 1");
  }
}

usize WorkerBudget::acquire(usize want) {
  const usize grant = std::max<usize>(1, std::min(want, capacity_));
  std::unique_lock<std::mutex> lock(mu_);
  // Ticketed FIFO: grants go strictly in arrival order. Only the head
  // ticket may take capacity, so a burst of releases can never let a
  // late small request leapfrog an early large one (the
  // condition-variable free-for-all this replaces was wakeup-order
  // unfair under contention).
  const u64 ticket = next_ticket_++;
  cv_.wait(lock, [&] {
    return ticket == serving_ && capacity_ - in_use_ >= grant;
  });
  ++serving_;
  in_use_ += grant;
  peak_ = std::max(peak_, in_use_);
  // The new head may already be satisfiable (e.g. it wants fewer slots
  // than remain) — hand the baton on.
  cv_.notify_all();
  return grant;
}

void WorkerBudget::release(usize granted) {
  if (granted == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (granted > in_use_) {
      throw InternalError("WorkerBudget: release of more slots than held");
    }
    in_use_ -= granted;
  }
  cv_.notify_all();
}

usize WorkerBudget::in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_use_;
}

usize WorkerBudget::peak_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

usize WorkerBudget::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<usize>(next_ticket_ - serving_);
}

// ---- Engine ---------------------------------------------------------------

Engine::Engine(EngineConfig cfg, const RuleProgramPublisher& programs)
    : cfg_(cfg), programs_({&programs}) {
  if (cfg_.workers == 0) cfg_.workers = 1;
  if (cfg_.batch_size == 0) cfg_.batch_size = net::kDefaultBatchCapacity;
  if (cfg_.shards > 0 && cfg_.shard_mode == ShardMode::kPartition) {
    throw ConfigError(
        "Engine: partition mode needs one publisher per shard (use the "
        "multi-publisher constructor with partition_rules())");
  }
}

Engine::Engine(EngineConfig cfg,
               std::vector<const RuleProgramPublisher*> shard_programs)
    : cfg_(cfg), programs_(std::move(shard_programs)) {
  if (cfg_.workers == 0) cfg_.workers = 1;
  if (cfg_.batch_size == 0) cfg_.batch_size = net::kDefaultBatchCapacity;
  if (cfg_.shards == 0 || cfg_.shard_mode != ShardMode::kPartition) {
    throw ConfigError(
        "Engine: the multi-publisher constructor is partition mode's "
        "(cfg.shards > 0, cfg.shard_mode = kPartition)");
  }
  if (programs_.size() != cfg_.shards) {
    throw ConfigError("Engine: " + std::to_string(programs_.size()) +
                      " shard publishers for " + std::to_string(cfg_.shards) +
                      " shards");
  }
  for (const auto* p : programs_) {
    if (p == nullptr) {
      throw ConfigError("Engine: null shard publisher");
    }
  }
}

Engine::~Engine() {
  if (running_) {
    stop();
  }
}

void Engine::start(TrafficPool& pool) {
  if (running_) {
    throw ConfigError("Engine: start() while already running");
  }
  if (capture_enabled() && cfg_.loop) {
    throw ConfigError(cfg_.shard_mode == ShardMode::kPartition &&
                              cfg_.shards > 0
                          ? "Engine: partition mode requires a finite pool "
                            "(the combiner consumes bounded capture streams)"
                          : "Engine: capture_verdicts requires a finite pool");
  }
  stop_.store(false, std::memory_order_relaxed);
  shards_.clear();
  threads_.clear();
  tel_.clear();
  sampler_.reset();
  timeseries_.clear();
  trace_events_.clear();
  trace_truncated_ = 0;
  final_drained_ = false;
  watchdog_stop_.store(false, std::memory_order_relaxed);
  run_concluded_.store(false, std::memory_order_relaxed);
  worker_restarts_.store(0, std::memory_order_relaxed);
  stall_detections_.store(0, std::memory_order_relaxed);
  shards_reassigned_.store(0, std::memory_order_relaxed);
  caller_pool_ = &pool;
  offered_ = delivered_ = shed_ = lost_ = 0;
  conservation_checked_ = false;
  if (cfg_.fault_injector != nullptr) {
    // Injected stalls must not outlive a drain: abort them on stop_.
    cfg_.fault_injector->set_abort_flag(&stop_);
  }
  const bool sharded = cfg_.shards > 0;
  // Draw this engine's worker threads from the shared budget (blocking
  // until the whole grant is free), so concurrent engines never exceed
  // the budget's capacity in total. A sharded engine never asks for
  // more threads than shards — extra threads would idle.
  usize thread_count =
      sharded ? std::min(cfg_.workers, cfg_.shards) : cfg_.workers;
  if (cfg_.budget != nullptr) {
    budget_granted_ = cfg_.budget->acquire(thread_count);
    thread_count = budget_granted_;
  }
  const usize nshards = sharded ? cfg_.shards : thread_count;
  thread_count = std::min(thread_count, nshards);

  // Replica mode's RSS stage: split the caller's pool into per-flow
  // consistent slices before any worker starts (the software analogue
  // of the NIC hashing into receive queues).
  std::vector<TrafficPool> steered;
  if (sharded && cfg_.shard_mode == ShardMode::kReplica) {
    steered = steer_split(pool, nshards, cfg_.steer_symmetric);
  }

  for (usize s = 0; s < nshards; ++s) {
    telemetry::WorkerTelemetry* tel = nullptr;
    if (cfg_.telemetry) {
      tel_.push_back(std::make_unique<telemetry::WorkerTelemetry>(
          static_cast<u32>(s), cfg_.trace_ring_capacity));
      tel = tel_.back().get();
    }
    auto sh = std::make_unique<Shard>();
    sh->index = s;
    sh->owner = s % thread_count;
    if (sharded) {
      sh->pool = cfg_.shard_mode == ShardMode::kReplica ? std::move(steered[s])
                                                        : pool.clone();
      sh->active_pool = &sh->pool;
    } else {
      sh->active_pool = &pool;  // legacy geometry: shared claim cursor
    }
    const RuleProgramPublisher* prog = &program_for(s);
    const std::string stem =
        (sharded ? "shard" : "worker") + std::to_string(s);
    sh->source =
        sh->pipeline.emplace<PacketSource>(sh->active_pool, cfg_.loop);
    sh->parser = sh->pipeline.emplace<Parser>(tel);
    if (cfg_.flow_cache_depth > 0) {
      sh->cache = sh->pipeline.emplace<FlowCacheElement>(
          prog, cfg_.flow_cache_depth, stem + ".flow_cache", tel);
    }
    sh->classifier =
        sh->pipeline.emplace<ClassifierElement>(prog, sh->cache, tel);
    sh->sink = sh->pipeline.emplace<ActionSink>(
        tel, capture_enabled() ? &sh->captured : nullptr);
    shards_.push_back(std::move(sh));
  }
  for (usize t = 0; t < thread_count; ++t) {
    auto w = std::make_unique<WorkerThread>();
    w->index = t;
    threads_.push_back(std::move(w));
  }
  for (const auto& sh : shards_) {
    threads_[sh->owner]->shards.push_back(sh.get());
  }
  if (cfg_.telemetry && cfg_.stats_interval_ms > 0) {
    std::vector<telemetry::WorkerTelemetry*> blocks;
    blocks.reserve(tel_.size());
    for (const auto& t : tel_) blocks.push_back(t.get());
    sampler_ = std::make_unique<telemetry::StatsSampler>(
        std::move(blocks), cfg_.stats_interval_ms, trace_keep());
    sampler_->start();
  }
  start_time_ = Clock::now();
  try {
    for (auto& w : threads_) {
      spawn_worker(*w);
    }
    if (cfg_.supervisor.enabled) {
      watchdog_ = std::thread([this] { watchdog_main(); });
    }
  } catch (...) {
    // Thread construction failed part-way (e.g. an absurd worker
    // count): join what launched, or their destructors terminate us.
    stop_.store(true, std::memory_order_relaxed);
    watchdog_stop_.store(true, std::memory_order_relaxed);
    if (watchdog_.joinable()) watchdog_.join();
    for (auto& w : threads_) {
      if (w->thread.joinable()) w->thread.join();
    }
    threads_.clear();
    shards_.clear();
    if (budget_granted_ > 0) {
      cfg_.budget->release(budget_granted_);
      budget_granted_ = 0;
    }
    throw;
  }
  running_ = true;
  wall_seconds_ = 0;
}

void Engine::spawn_worker(WorkerThread& w) {
  w.exited.store(false, std::memory_order_release);
  w.thread = std::thread([this, &w] {
    try {
      worker_main(w);
    } catch (const std::exception& e) {
      // An escaping exception would std::terminate the process;
      // capture it for the report instead.
      w.error = e.what();
    }
    // Wall clock runs from engine start to this incarnation's exit.
    w.wall_seconds = seconds_since(start_time_);
    w.exited.store(true, std::memory_order_release);
  });
}

void Engine::worker_main(WorkerThread& w) {
  net::PacketBatch batch(cfg_.batch_size);
  if (!cfg_.supervisor.enabled) {
    // Round-robin over the thread's shards: one batch per live shard
    // per sweep, so co-located shards progress at the same batch
    // cadence. A shard whose (finite or empty) pool ran dry drops out
    // of the sweep. Unsupervised: the shard list is stable, so the
    // legacy local bookkeeping is the whole fast path.
    std::vector<bool> done(w.shards.size(), false);
    usize live = w.shards.size();
    while (live > 0 && !stop_.load(std::memory_order_relaxed)) {
      if (cfg_.worker_fault_hook) {
        cfg_.worker_fault_hook(w.index);
      }
      if (cfg_.fault_injector != nullptr) {
        cfg_.fault_injector->on_worker_batch(
            w.index, w.sweeps.fetch_add(1, std::memory_order_relaxed));
      }
      for (usize k = 0; k < w.shards.size(); ++k) {
        if (done[k]) continue;
        Shard& s = *w.shards[k];
        s.source->push_batch(batch);
        if (s.source->exhausted()) {
          s.drained.store(true, std::memory_order_release);
          done[k] = true;
          --live;
        }
      }
    }
    return;
  }
  // Supervised: the shard list can change under us (the watchdog hands
  // a failed worker's shards over), so copy it per sweep under the
  // lock; progress ticks the heartbeat the watchdog's stall detector
  // reads, and the persistent sweep counter drives the injector even
  // across restarts. Shard::drained replaces the local done[] — it is
  // the piece of "which packets are already delivered" that must
  // survive this thread dying.
  std::vector<Shard*> mine;
  while (!stop_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard<std::mutex> lk(w.mu);
      mine.assign(w.shards.begin(), w.shards.end());
    }
    w.heartbeat.fetch_add(1, std::memory_order_relaxed);
    const u64 sweep = w.sweeps.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.worker_fault_hook) {
      cfg_.worker_fault_hook(w.index);
    }
    if (cfg_.fault_injector != nullptr) {
      cfg_.fault_injector->on_worker_batch(w.index, sweep);
    }
    usize live = 0;
    for (Shard* sp : mine) {
      if (sp->drained.load(std::memory_order_acquire)) continue;
      sp->source->push_batch(batch);
      if (sp->source->exhausted()) {
        sp->drained.store(true, std::memory_order_release);
      } else {
        ++live;
      }
    }
    if (live == 0) break;
  }
}

bool Engine::has_undrained(const WorkerThread& w) {
  std::lock_guard<std::mutex> lk(w.mu);
  for (const Shard* sh : w.shards) {
    if (!sh->drained.load(std::memory_order_acquire)) return true;
  }
  return false;
}

void Engine::take_over_shards(WorkerThread& w) {
  // Called by the watchdog with w's thread already joined — the old
  // owner is gone, so moving its shards preserves the one-writer-per-
  // shard telemetry invariant.
  std::vector<Shard*> undrained;
  {
    std::lock_guard<std::mutex> lk(w.mu);
    auto& v = w.shards;
    for (auto it = v.begin(); it != v.end();) {
      if (!(*it)->drained.load(std::memory_order_acquire)) {
        undrained.push_back(*it);
        it = v.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (undrained.empty()) return;
  // Takeover is a replica-mode capability: replica shards are
  // independent steered slices, so any survivor can finish them. In
  // partition mode a moved shard would desynchronize the combiner's
  // index-aligned capture streams, and in the unsharded geometry the
  // pool is shared — survivors' own sources claim the remaining
  // packets without any handover.
  WorkerThread* survivor = nullptr;
  if (cfg_.shards > 0 && cfg_.shard_mode == ShardMode::kReplica) {
    for (auto& other : threads_) {
      if (other.get() == &w) continue;
      if (other->failed_permanently.load(std::memory_order_relaxed)) continue;
      survivor = other.get();
      break;
    }
  }
  if (survivor == nullptr) {
    const bool shared_pool = cfg_.shards == 0;
    {
      std::lock_guard<std::mutex> lk(w.mu);
      w.shards.insert(w.shards.end(), undrained.begin(), undrained.end());
    }
    // Shared-pool shards are not "lost" — the remaining packets stay
    // claimable by every other worker; conservation attributes only the
    // in-flight batch to this death.
    if (!shared_pool) w.shards_lost = undrained.size();
    return;
  }
  {
    std::scoped_lock lk(w.mu, survivor->mu);
    for (Shard* sh : undrained) {
      sh->owner = survivor->index;
      survivor->shards.push_back(sh);
    }
  }
  shards_reassigned_.fetch_add(undrained.size(), std::memory_order_relaxed);
  // A survivor that already finished its own shards has exited cleanly
  // and will never see the handover — bounce it. (If it exits in the
  // instant between the handover and this check, the watchdog's
  // exited-clean-but-undrained scan respawns it next tick.)
  if (survivor->exited.load(std::memory_order_acquire) &&
      !stop_.load(std::memory_order_relaxed)) {
    if (survivor->thread.joinable()) survivor->thread.join();
    spawn_worker(*survivor);
  }
}

void Engine::watchdog_main() {
  const auto interval = std::chrono::milliseconds(
      std::max<u64>(1, cfg_.supervisor.watchdog_interval_ms));
  const auto stall_deadline =
      std::chrono::milliseconds(cfg_.supervisor.stall_deadline_ms);
  // Abort-aware sleep: a drain/stop mid-backoff must not hold up
  // shutdown for the full backoff.
  const auto nap = [this](std::chrono::milliseconds total) {
    const auto until = Clock::now() + total;
    while (Clock::now() < until) {
      if (stop_.load(std::memory_order_relaxed) ||
          watchdog_stop_.load(std::memory_order_relaxed)) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  struct Track {
    u64 last_heartbeat = 0;
    Clock::time_point last_change;
    bool in_stall = false;
  };
  std::vector<Track> track(threads_.size());
  for (auto& t : track) t.last_change = Clock::now();
  while (!watchdog_stop_.load(std::memory_order_relaxed)) {
    nap(interval);
    if (watchdog_stop_.load(std::memory_order_relaxed)) break;
    bool concluded = true;
    const Clock::time_point now = Clock::now();
    for (usize i = 0; i < threads_.size(); ++i) {
      WorkerThread& w = *threads_[i];
      if (w.failed_permanently.load(std::memory_order_relaxed)) continue;
      if (!w.exited.load(std::memory_order_acquire)) {
        concluded = false;
        // Stall detection: a heartbeat that has not moved for the
        // deadline is one episode; it re-arms when the worker moves
        // again. Stalled workers are not killed — a stuck C++ thread
        // cannot be preempted — they are expected to resume (bounded
        // stalls) or die (which the exit path handles).
        Track& t = track[i];
        const u64 hb = w.heartbeat.load(std::memory_order_relaxed);
        if (hb != t.last_heartbeat) {
          t.last_heartbeat = hb;
          t.last_change = now;
          t.in_stall = false;
        } else if (!t.in_stall && now - t.last_change >= stall_deadline) {
          t.in_stall = true;
          w.stalls.fetch_add(1, std::memory_order_relaxed);
          stall_detections_.fetch_add(1, std::memory_order_relaxed);
        }
        continue;
      }
      if (w.thread.joinable()) w.thread.join();
      if (w.error.empty()) {
        // Clean exit. If a takeover handed it shards in the instant it
        // was exiting, bounce it back up — Shard::drained makes the
        // respawn resume exactly where delivery stopped.
        if (!stop_.load(std::memory_order_relaxed) && has_undrained(w)) {
          concluded = false;
          track[i] = {w.heartbeat.load(std::memory_order_relaxed),
                      Clock::now(), false};
          spawn_worker(w);
        }
        continue;
      }
      // The worker died. Move the death message to the log, then
      // either respawn (bounded, backed off) or declare it permanently
      // failed and hand its shards over.
      concluded = false;
      const u64 prior = w.restarts.load(std::memory_order_relaxed);
      w.all_errors.push_back(std::move(w.error));
      w.error.clear();
      if (stop_.load(std::memory_order_relaxed)) {
        // Shutting down: no point restarting into the stop flag.
        w.failed_permanently.store(true, std::memory_order_release);
        continue;
      }
      if (prior < cfg_.supervisor.max_restarts) {
        nap(std::chrono::milliseconds(cfg_.supervisor.restart_backoff_ms
                                      << prior));
        if (stop_.load(std::memory_order_relaxed) ||
            watchdog_stop_.load(std::memory_order_relaxed)) {
          w.failed_permanently.store(true, std::memory_order_release);
          continue;
        }
        w.restarts.fetch_add(1, std::memory_order_relaxed);
        worker_restarts_.fetch_add(1, std::memory_order_relaxed);
        track[i] = {w.heartbeat.load(std::memory_order_relaxed),
                    Clock::now(), false};
        spawn_worker(w);
      } else {
        // Order matters for wait(): reassign first, flag last, so a
        // permanently-failed worker is never observed mid-takeover.
        take_over_shards(w);
        w.failed_permanently.store(true, std::memory_order_release);
      }
    }
    if (concluded) {
      run_concluded_.store(true, std::memory_order_release);
      break;
    }
  }
}

EngineReport Engine::stop() { return finish(/*signal_stop=*/true); }

EngineReport Engine::wait() {
  if (cfg_.loop) {
    throw ConfigError("Engine: wait() needs a finite pool; "
                      "loop mode uses stop()");
  }
  return finish(/*signal_stop=*/false);
}

SupervisorStatus Engine::supervisor_status() const {
  SupervisorStatus st;
  st.enabled = cfg_.supervisor.enabled;
  st.worker_restarts = worker_restarts_.load(std::memory_order_relaxed);
  st.stall_detections = stall_detections_.load(std::memory_order_relaxed);
  st.shards_reassigned = shards_reassigned_.load(std::memory_order_relaxed);
  for (const auto& w : threads_) {
    if (w->failed_permanently.load(std::memory_order_relaxed)) {
      ++st.workers_failed;
    }
  }
  return st;
}

EngineReport Engine::finish(bool signal_stop) {
  if (signal_stop) {
    stop_.store(true, std::memory_order_relaxed);
  }
  if (watchdog_.joinable()) {
    if (!signal_stop) {
      // Natural conclusion: restarts and takeovers must play out before
      // the joins below, or a dead worker's respawn would race them.
      while (!run_concluded_.load(std::memory_order_acquire) &&
             !stop_.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    watchdog_stop_.store(true, std::memory_order_relaxed);
    watchdog_.join();
  }
  double wall = 0;
  for (auto& w : threads_) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
    wall = std::max(wall, w->wall_seconds);
  }
  if (running_) {
    wall_seconds_ = wall;
    running_ = false;
    // Conservation ledger (finite runs), taken exactly once, while the
    // caller's pool is certainly still alive: every offered packet must
    // be delivered, still-unclaimed (shed), or claimed-but-undelivered
    // (lost in a dead worker's in-flight batch).
    if (!cfg_.loop && !shards_.empty()) {
      conservation_checked_ = true;
      u64 offered = 0;
      u64 claimed = 0;
      u64 delivered = 0;
      if (cfg_.shards == 0) {
        offered = caller_pool_->size();
        claimed = caller_pool_->claimed();
        for (const auto& sh : shards_) delivered += sh->sink->packets();
      } else if (cfg_.shard_mode == ShardMode::kReplica) {
        for (const auto& sh : shards_) {
          offered += sh->pool.size();
          claimed += sh->pool.claimed();
          delivered += sh->sink->packets();
        }
      } else {
        // Partition: every shard drains its own full copy of the
        // stream; shard 0's copy is the canonical ledger (summing
        // would count each packet S times).
        offered = shards_[0]->pool.size();
        claimed = shards_[0]->pool.claimed();
        delivered = shards_[0]->sink->packets();
      }
      offered_ = offered;
      delivered_ = delivered;
      shed_ = offered - claimed;
      lost_ = claimed - delivered;
    }
  }
  // Telemetry epilogue, after every worker joined (so totals are
  // final): the sampler takes its mandatory flush tick (sum of interval
  // deltas == end-of-run totals), and the rings get one final drain so
  // drop accounting is complete even without a sampler. Idempotent —
  // stop() may be called again.
  if (sampler_ != nullptr) {
    sampler_->stop();
    timeseries_ = sampler_->take_samples();
    trace_events_ = sampler_->take_events();
    trace_truncated_ = sampler_->truncated();
    sampler_.reset();
    final_drained_ = true;
  } else if (!final_drained_) {
    const usize keep = trace_keep();
    for (const auto& t : tel_) {
      if (keep == 0) {
        t->ring.drain(nullptr);
      } else if (trace_events_.size() < keep) {
        t->ring.drain(&trace_events_);
      } else {
        trace_truncated_ += t->ring.drain(nullptr);
      }
    }
    if (keep > 0 && trace_events_.size() > keep) {
      trace_truncated_ += trace_events_.size() - keep;
      trace_events_.resize(keep);
    }
    final_drained_ = true;
  }
  if (budget_granted_ > 0) {
    cfg_.budget->release(budget_granted_);
    budget_granted_ = 0;
  }
  return collect();
}

usize Engine::trace_keep() const {
  if (!cfg_.collect_trace) return 0;
  return cfg_.trace_keep_limit == 0 ? std::numeric_limits<usize>::max()
                                    : cfg_.trace_keep_limit;
}

EngineReport Engine::run(TrafficPool& pool) {
  if (cfg_.loop) {
    throw ConfigError("Engine: run() requires a finite pool; "
                      "loop mode uses start()/stop()");
  }
  start(pool);
  // Workers exit on pool exhaustion; join without raising the stop flag
  // (raising it would cut them off after their first batch).
  return finish(/*signal_stop=*/false);
}

WorkerReport Engine::shard_report(const Shard& s) const {
  WorkerReport r;
  r.worker = s.index;
  r.batches = s.sink->batches();
  r.packets = s.sink->packets();
  r.matched = s.sink->matched();
  r.dropped = s.sink->dropped();
  r.parse_errors = s.parser->errors();
  r.cache_hits = s.sink->cache_hits();
  r.classifier_lookups = s.classifier->lookups();
  r.memory_accesses = s.sink->memory_accesses();
  r.probe_memo_hits = s.classifier->probe_memo_hits();
  r.probe_memo_invalidations = s.classifier->probe_memo_invalidations();
  r.probe_memo_conflict_evictions =
      s.classifier->probe_memo_conflict_evictions();
  r.path_scalar_loop_batches =
      s.classifier->path_batches(core::BatchPath::kScalarLoop);
  r.path_phase2_batches =
      s.classifier->path_batches(core::BatchPath::kPhase2);
  r.path_phase2_memo_batches =
      s.classifier->path_batches(core::BatchPath::kPhase2Memo);
  for (usize p = 0; p < core::kNumBatchPaths; ++p) {
    const auto path = static_cast<core::BatchPath>(p);
    r.controller_models[p] = s.classifier->controller_model(path);
    r.controller_observations[p] = s.classifier->controller_observations(path);
  }
  r.cache_misses = s.cache == nullptr ? 0 : s.cache->stats().misses;
  r.min_version = s.classifier->min_version();
  r.max_version = s.classifier->max_version();
  r.version_monotonic = s.classifier->version_monotonic();
  if (s.index < tel_.size() && tel_[s.index] != nullptr) {
    const telemetry::WorkerTelemetry& t = *tel_[s.index];
    r.trace_events_dropped = t.ring.dropped();
    r.update_visibility_samples =
        telemetry::counter_load(t.live.update_visibility_samples);
    r.update_visibility_total_ns =
        telemetry::counter_load(t.live.update_visibility_total_ns);
    r.update_visibility_max_ns =
        telemetry::counter_load(t.live.update_visibility_max_ns);
  }
  r.latency = s.sink->latency();
  r.wall_seconds = threads_[s.owner]->wall_seconds;
  r.error = threads_[s.owner]->error;
  return r;
}

WorkerReport Engine::merge_shard_reports(
    usize worker, const std::vector<const WorkerReport*>& rows) {
  WorkerReport m;
  m.worker = worker;
  std::array<usize, core::kNumBatchPaths> fitted{};
  bool first_version = true;
  for (const WorkerReport* row : rows) {
    const WorkerReport& r = *row;
    m.batches += r.batches;
    m.packets += r.packets;
    m.matched += r.matched;
    m.dropped += r.dropped;
    m.parse_errors += r.parse_errors;
    m.cache_hits += r.cache_hits;
    m.cache_misses += r.cache_misses;
    m.classifier_lookups += r.classifier_lookups;
    m.memory_accesses += r.memory_accesses;
    m.probe_memo_hits += r.probe_memo_hits;
    m.probe_memo_invalidations += r.probe_memo_invalidations;
    m.probe_memo_conflict_evictions += r.probe_memo_conflict_evictions;
    m.path_scalar_loop_batches += r.path_scalar_loop_batches;
    m.path_phase2_batches += r.path_phase2_batches;
    m.path_phase2_memo_batches += r.path_phase2_memo_batches;
    for (usize p = 0; p < core::kNumBatchPaths; ++p) {
      m.controller_observations[p] += r.controller_observations[p];
      if (r.controller_observations[p] == 0) continue;
      m.controller_models[p].ns_per_packet +=
          r.controller_models[p].ns_per_packet;
      m.controller_models[p].ns_per_distinct_key +=
          r.controller_models[p].ns_per_distinct_key;
      ++fitted[p];
    }
    if (r.packets > 0 || r.max_version > 0 || r.min_version > 0) {
      m.min_version = first_version ? r.min_version
                                    : std::min(m.min_version, r.min_version);
      m.max_version = std::max(m.max_version, r.max_version);
      first_version = false;
    }
    m.version_monotonic = m.version_monotonic && r.version_monotonic;
    m.trace_events_dropped += r.trace_events_dropped;
    m.update_visibility_samples += r.update_visibility_samples;
    m.update_visibility_total_ns += r.update_visibility_total_ns;
    m.update_visibility_max_ns =
        std::max(m.update_visibility_max_ns, r.update_visibility_max_ns);
    m.latency.merge(r.latency);
    m.wall_seconds = std::max(m.wall_seconds, r.wall_seconds);
    if (m.error.empty()) m.error = r.error;
  }
  // Cost-model coefficients are per-shard fits, not additive: average
  // over the shards that produced timed observations.
  for (usize p = 0; p < core::kNumBatchPaths; ++p) {
    if (fitted[p] == 0) continue;
    m.controller_models[p].ns_per_packet /= static_cast<double>(fitted[p]);
    m.controller_models[p].ns_per_distinct_key /=
        static_cast<double>(fitted[p]);
  }
  return m;
}

WorkerReport Engine::combine_partition(
    const std::vector<WorkerReport>& rows,
    std::vector<CapturedVerdict>& combined) const {
  // Work counters sum across shards (every shard genuinely spent that
  // work probing its rule subset); the per-packet accounting below
  // comes from the combined verdicts so no packet counts twice.
  WorkerReport m = merge_shard_reports(0, [&] {
    std::vector<const WorkerReport*> ptrs;
    ptrs.reserve(rows.size());
    for (const WorkerReport& r : rows) ptrs.push_back(&r);
    return ptrs;
  }());
  m.batches = 0;
  for (const WorkerReport& r : rows) m.batches += r.batches;
  m.packets = 0;
  m.matched = 0;
  m.dropped = 0;
  m.parse_errors = 0;
  m.latency = LatencyHistogram{};

  const usize n = shards_.empty() ? 0 : shards_[0]->captured.size();
  for (const auto& sh : shards_) {
    if (sh->captured.size() != n) {
      // Index alignment is the combiner's contract (every shard drains
      // its own full copy of the stream, in order); a mismatch means a
      // shard died mid-stream — surface it rather than mis-combining.
      if (m.error.empty()) {
        m.error = "partition combine: shard " + std::to_string(sh->index) +
                  " captured " + std::to_string(sh->captured.size()) +
                  " verdicts, shard 0 captured " + std::to_string(n);
      }
      return m;
    }
  }
  combined.clear();
  combined.reserve(n);
  for (usize i = 0; i < n; ++i) {
    CapturedVerdict out = shards_[0]->captured[i];
    bool any = false;
    u64 max_cycles = 0;
    u64 mem = 0;
    u64 max_version = 0;
    for (const auto& sh : shards_) {
      const CapturedVerdict& cv = sh->captured[i];
      max_cycles = std::max(max_cycles, cv.cycles);
      max_version = std::max(max_version, cv.version);
      mem += cv.memory_accesses;
      if (!cv.matched) continue;
      // LinearSearch's stable order: min (priority, rule id) wins.
      if (!any || cv.priority < out.priority ||
          (cv.priority == out.priority && cv.rule < out.rule)) {
        out.matched = true;
        out.rule = cv.rule;
        out.priority = cv.priority;
        out.action_token = cv.action_token;
        any = true;
      }
    }
    if (!any) {
      out.matched = false;
      out.rule = RuleId{};
      out.priority = kNoPriority;
      out.action_token = 0;
    }
    out.cycles = max_cycles;
    out.memory_accesses = mem;
    out.version = max_version;
    combined.push_back(out);
    ++m.packets;
    if (out.matched) {
      ++m.matched;
    } else {
      ++m.dropped;  // parse error or combined table miss: default drop
    }
    if (out.parse_error) ++m.parse_errors;
    m.latency.record(max_cycles);
  }
  return m;
}

EngineReport Engine::collect() const {
  EngineReport rep;
  rep.wall_seconds = wall_seconds_;
  // Per-worker supervisor accounting + the healed-vs-fatal error rule:
  // under the supervisor, a death the watchdog healed (restart, or a
  // takeover that saved every shard) keeps the row's error empty — the
  // run delivered its packets; the messages live in rep.error_log. A
  // permanent failure that lost shards IS fatal and surfaces.
  const auto apply_status = [&](WorkerReport& r, const WorkerThread& th) {
    r.restarts = th.restarts.load(std::memory_order_relaxed);
    r.stalls = th.stalls.load(std::memory_order_relaxed);
    r.failed_permanently =
        th.failed_permanently.load(std::memory_order_relaxed);
    r.shards_lost = th.shards_lost;
    if (r.failed_permanently && th.shards_lost > 0 && r.error.empty()) {
      r.error = th.all_errors.empty()
                    ? std::string("worker failed permanently")
                    : th.all_errors.back();
    }
  };
  std::vector<WorkerReport> shard_rows;
  shard_rows.reserve(shards_.size());
  for (const auto& sh : shards_) {
    shard_rows.push_back(shard_report(*sh));
  }
  if (cfg_.shards == 0) {
    // Legacy geometry: one shard per worker thread; the shard rows ARE
    // the worker rows and `shards` stays empty.
    rep.workers = std::move(shard_rows);
    for (auto& r : rep.workers) {
      apply_status(r, *threads_[r.worker % threads_.size()]);
    }
  } else if (cfg_.shard_mode == ShardMode::kReplica) {
    for (const auto& th : threads_) {
      std::vector<const WorkerReport*> rows;
      rows.reserve(th->shards.size());
      for (const Shard* sh : th->shards) {
        rows.push_back(&shard_rows[sh->index]);
      }
      WorkerReport m = merge_shard_reports(th->index, rows);
      if (m.error.empty()) m.error = th->error;
      m.wall_seconds = th->wall_seconds;
      apply_status(m, *th);
      rep.workers.push_back(std::move(m));
    }
    rep.shards = std::move(shard_rows);
  } else {
    WorkerReport m = combine_partition(shard_rows, rep.combined);
    double wall = 0;
    for (const auto& th : threads_) {
      wall = std::max(wall, th->wall_seconds);
      if (m.error.empty()) m.error = th->error;
      // Single combined row: fold every thread's supervisor state in.
      m.restarts += th->restarts.load(std::memory_order_relaxed);
      m.stalls += th->stalls.load(std::memory_order_relaxed);
      m.failed_permanently =
          m.failed_permanently ||
          th->failed_permanently.load(std::memory_order_relaxed);
      m.shards_lost += th->shards_lost;
    }
    m.wall_seconds = wall;
    rep.workers.push_back(std::move(m));
    rep.shards = std::move(shard_rows);
  }
  if (capture_enabled()) {
    rep.captured.reserve(shards_.size());
    for (const auto& sh : shards_) {
      rep.captured.push_back(sh->captured);
    }
  }
  rep.timeseries = timeseries_;
  rep.trace_events = trace_events_;
  rep.trace_events_truncated = trace_truncated_;
  // Supervisor rollup + conservation ledger + the full error log.
  rep.worker_restarts = worker_restarts_.load(std::memory_order_relaxed);
  rep.stall_detections = stall_detections_.load(std::memory_order_relaxed);
  rep.shards_reassigned = shards_reassigned_.load(std::memory_order_relaxed);
  rep.conservation_checked = conservation_checked_;
  rep.offered_packets = offered_;
  rep.delivered_packets = delivered_;
  rep.shed_packets = shed_;
  rep.lost_packets = lost_;
  for (const auto& th : threads_) {
    const bool failed = th->failed_permanently.load(std::memory_order_relaxed);
    if (failed) ++rep.workers_failed;
    for (usize k = 0; k < th->all_errors.size(); ++k) {
      rep.error_log.push_back(
          {th->index, static_cast<u64>(k),
           failed && k + 1 == th->all_errors.size() && th->error.empty(),
           th->all_errors[k]});
    }
    if (!th->error.empty()) {
      // Died after the watchdog wound down (or without one): final.
      rep.error_log.push_back({th->index,
                               th->restarts.load(std::memory_order_relaxed),
                               true, th->error});
    }
  }
  return rep;
}

}  // namespace pclass::dataplane
