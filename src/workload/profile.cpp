#include "workload/profile.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "net/packet.hpp"

namespace pclass::workload {

u8 PrefixLengthMix::draw(Rng& rng) const {
  if (entries.empty()) {
    throw ConfigError("PrefixLengthMix: empty mix");
  }
  double total = 0;
  for (const auto& [len, w] : entries) total += w;
  double u = rng.uniform() * total;
  for (const auto& [len, w] : entries) {
    if (u < w) return len;
    u -= w;
  }
  return entries.back().first;
}

namespace {

void check_fraction(double v, const char* what) {
  if (v < 0.0 || v > 1.0) {
    throw ConfigError(std::string(what) + " must be in [0, 1]");
  }
}

}  // namespace

std::vector<ProtoWeight> RulesetProfile::default_protos(double wc_weight) {
  std::vector<ProtoWeight> p = {{net::kProtoTcp, false, 0.62},
                                {net::kProtoUdp, false, 0.24},
                                {net::kProtoIcmp, false, 0.06}};
  if (wc_weight > 0) {
    p.push_back({0, true, wc_weight});
  }
  return p;
}

void RulesetProfile::validate() const {
  if (rules == 0) throw ConfigError("RulesetProfile: rules must be > 0");
  if (src_ip_pool == 0 || dst_ip_pool == 0 || src_port_pool == 0 ||
      dst_port_pool == 0) {
    throw ConfigError("RulesetProfile: pool sizes must be > 0");
  }
  if (src_len.entries.empty() || dst_len.entries.empty()) {
    throw ConfigError("RulesetProfile: prefix-length mixes must be set");
  }
  for (const auto& mix : {src_len, dst_len}) {
    for (const auto& [len, w] : mix.entries) {
      if (len > 32 || w < 0) {
        throw ConfigError("RulesetProfile: bad prefix-length mix entry");
      }
    }
  }
  if (subnets_per_site == 0) {
    throw ConfigError("RulesetProfile: subnets_per_site must be > 0");
  }
  check_fraction(pair_correlation, "RulesetProfile: pair_correlation");
  check_fraction(overlap_fraction, "RulesetProfile: overlap_fraction");
  if (ip_skew < 0 || port_skew < 0) {
    throw ConfigError("RulesetProfile: skews must be >= 0");
  }
}

RulesetProfile RulesetProfile::acl(usize rules, u64 seed) {
  RulesetProfile p;
  p.name = "acl";
  p.rules = rules;
  p.seed = seed;
  // ACL shape: host-heavy sources, subnet destinations, wildcard source
  // port, mostly-exact destination ports, almost no protocol wildcard.
  p.src_len.entries = {{32, 0.52}, {28, 0.12}, {24, 0.22}, {16, 0.10},
                       {8, 0.04}};
  p.dst_len.entries = {{32, 0.34}, {28, 0.08}, {24, 0.26}, {16, 0.22},
                       {8, 0.10}};
  p.src_ip_pool = std::max<usize>(32, rules / 8);
  p.dst_ip_pool = std::max<usize>(48, rules / 6);
  p.src_port_pool = 1;  // wildcard-only, the acl1 signature
  p.dst_port_pool = std::clamp<usize>(rules / 12, 32, 100);
  p.sport = {1.0, 0.0, 0.0};
  p.dport = {0.08, 0.72, 0.20};
  p.protos = default_protos(0.0);
  p.pair_correlation = 0.55;
  p.pair_pool = std::max<usize>(16, rules / 24);
  p.overlap_fraction = 0.20;
  return p;
}

RulesetProfile RulesetProfile::fw(usize rules, u64 seed) {
  RulesetProfile p;
  p.name = "fw";
  p.rules = rules;
  p.seed = seed;
  // FW shape: shorter prefixes, wildcards on both sides, bidirectional
  // port ranges, protocol wildcards common.
  p.src_len.entries = {{32, 0.22}, {24, 0.30}, {16, 0.26}, {8, 0.12},
                       {0, 0.10}};
  p.dst_len.entries = {{32, 0.28}, {24, 0.28}, {16, 0.24}, {8, 0.12},
                       {0, 0.08}};
  p.src_ip_pool = std::max<usize>(24, rules / 9);
  p.dst_ip_pool = std::max<usize>(24, rules / 12);
  p.src_port_pool = std::clamp<usize>(rules / 36, 12, 64);
  p.dst_port_pool = std::clamp<usize>(rules / 24, 24, 100);
  p.sport = {0.42, 0.28, 0.30};
  p.dport = {0.22, 0.38, 0.40};
  p.protos = default_protos(0.14);
  p.pair_correlation = 0.35;
  p.pair_pool = std::max<usize>(12, rules / 40);
  p.overlap_fraction = 0.40;  // firewalls nest aggressively
  return p;
}

RulesetProfile RulesetProfile::ipc(usize rules, u64 seed) {
  RulesetProfile p;
  p.name = "ipc";
  p.rules = rules;
  p.seed = seed;
  // IPC shape: between ACL and FW; correlated endpoint pairs dominate.
  p.src_len.entries = {{32, 0.34}, {24, 0.28}, {16, 0.22}, {8, 0.10},
                       {0, 0.06}};
  p.dst_len.entries = {{32, 0.30}, {24, 0.30}, {16, 0.24}, {8, 0.10},
                       {0, 0.06}};
  p.src_ip_pool = std::max<usize>(28, rules / 7);
  p.dst_ip_pool = std::max<usize>(32, rules / 6);
  p.src_port_pool = std::clamp<usize>(rules / 50, 10, 64);
  p.dst_port_pool = std::clamp<usize>(rules / 16, 28, 100);
  p.sport = {0.50, 0.34, 0.16};
  p.dport = {0.14, 0.60, 0.26};
  p.protos = default_protos(0.10);
  p.pair_correlation = 0.65;
  p.pair_pool = std::max<usize>(20, rules / 20);
  p.overlap_fraction = 0.28;
  return p;
}

RulesetProfile RulesetProfile::by_family(const std::string& family,
                                         usize rules, u64 seed) {
  if (family == "acl") return acl(rules, seed);
  if (family == "fw") return fw(rules, seed);
  if (family == "ipc") return ipc(rules, seed);
  throw ConfigError("RulesetProfile: unknown family '" + family +
                    "' (expected acl/fw/ipc)");
}

void TraceProfile::validate() const {
  if (packets == 0) throw ConfigError("TraceProfile: packets must be > 0");
  if (flows == 0) throw ConfigError("TraceProfile: flows must be > 0");
  if (zipf_s < 0) throw ConfigError("TraceProfile: zipf_s must be >= 0");
  check_fraction(locality, "TraceProfile: locality");
  check_fraction(miss_fraction, "TraceProfile: miss_fraction");
  if (working_set == 0) {
    throw ConfigError("TraceProfile: working_set must be > 0");
  }
}

TraceProfile TraceProfile::standard(usize packets, u64 seed) {
  TraceProfile t;
  t.name = "standard";
  t.packets = packets;
  t.flows = std::max<usize>(64, packets / 12);
  t.zipf_s = 1.05;
  t.locality = 0.6;
  t.working_set = 16;
  t.miss_fraction = 0.05;
  t.seed = seed;
  return t;
}

TraceProfile TraceProfile::zipf_heavy(usize packets, u64 seed) {
  TraceProfile t;
  t.name = "zipf-heavy";
  t.packets = packets;
  t.flows = std::max<usize>(64, packets / 25);
  t.zipf_s = 1.35;
  t.locality = 0.85;
  t.working_set = 8;
  t.miss_fraction = 0.01;
  t.seed = seed;
  return t;
}

}  // namespace pclass::workload
