/// \file profile.hpp
/// Workload profiles: the knobs that shape synthetic rulesets and traces.
///
/// A RulesetProfile describes the *structure* of a filter set the way
/// ClassBench seed files do — prefix-length and branching distributions,
/// unique-value pool sizes, port match classes (WC/EQ/RANGE), protocol
/// mix, correlated src/dst prefix pairs and a rule-overlap target — so
/// the same synthesizer can produce ACL-, FW- and IPC-shaped sets as
/// well as fully custom ones. A TraceProfile describes the *traffic*
/// offered to the classifier: flow count, Zipf flow popularity, flow
/// locality (bursts) and a miss fraction.
///
/// Everything here is plain data; synthesis lives in ruleset_synth.hpp
/// and trace_synth.hpp. All generation is deterministic in
/// (profile, seed).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/random.hpp"
#include "common/types.hpp"
#include "ruleset/rule_set.hpp"

namespace pclass::workload {

/// Weighted prefix-length distribution (weights need not sum to 1; they
/// are normalized by draw()).
struct PrefixLengthMix {
  std::vector<std::pair<u8, double>> entries;  ///< (length, weight)

  /// Draw one length. \throws ConfigError if the mix is empty.
  [[nodiscard]] u8 draw(Rng& rng) const;
};

/// Port match classes, ClassBench's WC/EQ/RANGE taxonomy. Weights are
/// normalized by the synthesizer.
struct PortClassMix {
  double wc = 0.2;     ///< full wildcard [0, 65535]
  double eq = 0.6;     ///< exact port (EM)
  double range = 0.2;  ///< proper range (classic service / ephemeral spans)
};

/// One entry of the protocol mix.
struct ProtoWeight {
  u8 value = 0;        ///< IP protocol number (ignored when wildcard)
  bool wildcard = false;
  double weight = 1.0;
};

/// Structural description of a synthetic filter set.
struct RulesetProfile {
  std::string name = "custom";
  usize rules = 1000;  ///< target size after dedup

  // ---- unique-value pools (Table II-style calibration) ----
  usize src_ip_pool = 160;
  usize dst_ip_pool = 220;
  /// 1 means the dimension is wildcard-only (acl1's source port).
  usize src_port_pool = 24;
  usize dst_port_pool = 64;

  // ---- address-space branching ----
  PrefixLengthMix src_len;
  PrefixLengthMix dst_len;
  /// /24 subnets carved out of each /16 site block; with the pool size
  /// this controls trie branching (few sites = deep shared paths).
  usize subnets_per_site = 4;

  // ---- field-class mixes ----
  PortClassMix sport;
  PortClassMix dport;
  std::vector<ProtoWeight> protos;  ///< empty = default TCP/UDP/ICMP mix

  // ---- correlation and overlap structure ----
  /// Draw skew over the pools (higher = popular values dominate).
  double ip_skew = 1.5;
  double port_skew = 3.0;
  /// Fraction of rules whose (src, dst) prefixes come from a correlated
  /// pair pool — real sets repeat service endpoint pairs, which is what
  /// makes cross-field structure (and many-field lookups) non-uniform.
  double pair_correlation = 0.5;
  usize pair_pool = 48;  ///< distinct correlated (src, dst) pairs
  /// Target fraction of rules synthesized as *specializations* of an
  /// earlier rule (nested prefixes / narrowed ports), guaranteeing at
  /// least this much pairwise rule overlap.
  double overlap_fraction = 0.25;

  u64 seed = 2026;

  /// Validate ranges (pool sizes > 0, fractions in [0,1], mixes usable).
  /// \throws ConfigError with the offending field.
  void validate() const;

  // ---- seed profiles (ClassBench ACL/FW/IPC shapes) ----
  [[nodiscard]] static RulesetProfile acl(usize rules, u64 seed = 2026);
  [[nodiscard]] static RulesetProfile fw(usize rules, u64 seed = 2026);
  [[nodiscard]] static RulesetProfile ipc(usize rules, u64 seed = 2026);

  /// Seed profile by family name ("acl" / "fw" / "ipc").
  /// \throws ConfigError for unknown names.
  [[nodiscard]] static RulesetProfile by_family(const std::string& family,
                                               usize rules,
                                               u64 seed = 2026);

  /// The default TCP/UDP/ICMP mix, with \p wc_weight of protocol
  /// wildcards (0 = none). The single source of the default weights —
  /// the seed profiles and the synthesizer's empty-mix fallback share it.
  [[nodiscard]] static std::vector<ProtoWeight> default_protos(
      double wc_weight);
};

/// Structural description of an offered-traffic trace.
struct TraceProfile {
  std::string name = "standard";
  usize packets = 50'000;
  /// Distinct flows; each flow is one concrete header derived from a
  /// rule (so match structure is realistic, not uniform noise).
  usize flows = 4096;
  /// Zipf popularity exponent across flows (0 = uniform, ~1 = web-like).
  double zipf_s = 1.05;
  /// Probability the next packet repeats a flow from the recent working
  /// set instead of an independent Zipf draw — temporal locality/bursts.
  double locality = 0.6;
  usize working_set = 16;  ///< burst working-set size (flows)
  /// Fraction of headers drawn uniformly at random (miss traffic).
  double miss_fraction = 0.02;
  u64 seed = 99;

  /// \throws ConfigError on out-of-range fields.
  void validate() const;

  /// The bench default: moderate skew and locality, small miss share.
  [[nodiscard]] static TraceProfile standard(usize packets, u64 seed);
  /// Heavy-head Zipf with strong bursts (flow-cache friendly).
  [[nodiscard]] static TraceProfile zipf_heavy(usize packets, u64 seed);
};

}  // namespace pclass::workload
