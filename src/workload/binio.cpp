#include "workload/binio.hpp"

#include <fstream>
#include <sstream>

#include "common/binary_io.hpp"
#include "common/error.hpp"

namespace pclass::workload::binio {

using namespace pclass::binary;

namespace {

constexpr u32 kRulesetMagic = 0x31524350u;  // "PCR1" little-endian
constexpr u16 kRulesetVersion = 1;
constexpr const char* kWhat = "binary ruleset";

}  // namespace

void save_ruleset(std::ostream& os, const ruleset::RuleSet& rules) {
  put_u32(os, kRulesetMagic);
  put_u16(os, kRulesetVersion);
  const std::string& name = rules.name();
  put_u16(os, static_cast<u16>(std::min<usize>(name.size(), 0xFFFF)));
  os.write(name.data(),
           static_cast<std::streamsize>(std::min<usize>(name.size(),
                                                        0xFFFF)));
  put_u64(os, rules.size());
  for (const ruleset::Rule& r : rules) {
    put_u32(os, r.src_ip.value);
    put_u8(os, r.src_ip.length);
    put_u32(os, r.dst_ip.value);
    put_u8(os, r.dst_ip.length);
    put_u16(os, r.src_port.lo);
    put_u16(os, r.src_port.hi);
    put_u16(os, r.dst_port.lo);
    put_u16(os, r.dst_port.hi);
    put_u8(os, r.proto.value);
    put_u8(os, r.proto.wildcard ? 1 : 0);
    put_u32(os, r.priority);
    put_u32(os, r.id.value);
    put_u32(os, r.action.token);
  }
}

ruleset::RuleSet load_ruleset(std::istream& is) {
  if (get_u32(is, kWhat) != kRulesetMagic) {
    throw ParseError("binary ruleset: bad magic (not a PCR1 file)");
  }
  const u16 version = get_u16(is, kWhat);
  if (version != kRulesetVersion) {
    throw ParseError("binary ruleset: unsupported version " +
                     std::to_string(version));
  }
  const u16 name_len = get_u16(is, kWhat);
  std::string name(name_len, '\0');
  is.read(name.data(), name_len);
  if (is.gcount() != name_len) {
    throw ParseError("binary ruleset: truncated name");
  }
  const u64 count = get_u64(is, kWhat);
  ruleset::RuleSet out(std::move(name));
  for (u64 i = 0; i < count; ++i) {
    ruleset::Rule r;
    const u32 src_v = get_u32(is, kWhat);
    const u8 src_l = get_u8(is, kWhat);
    const u32 dst_v = get_u32(is, kWhat);
    const u8 dst_l = get_u8(is, kWhat);
    r.src_ip = ruleset::IpPrefix::make(src_v, src_l);  // validates length
    r.dst_ip = ruleset::IpPrefix::make(dst_v, dst_l);
    const u16 slo = get_u16(is, kWhat);
    const u16 shi = get_u16(is, kWhat);
    const u16 dlo = get_u16(is, kWhat);
    const u16 dhi = get_u16(is, kWhat);
    r.src_port = ruleset::PortRange::make(slo, shi);  // validates lo<=hi
    r.dst_port = ruleset::PortRange::make(dlo, dhi);
    const u8 proto_v = get_u8(is, kWhat);
    const u8 proto_wc = get_u8(is, kWhat);
    r.proto = proto_wc != 0 ? ruleset::ProtoMatch::any()
                            : ruleset::ProtoMatch::exact(proto_v);
    r.priority = get_u32(is, kWhat);
    r.id = RuleId{get_u32(is, kWhat)};
    r.action = ruleset::Action{get_u32(is, kWhat)};
    // Stored priority/id/action are authoritative: restore verbatim so
    // RuleSet::add()'s position-based priority back-fill cannot rewrite
    // an explicit front-priority (0) rule at a non-front position.
    out.add_verbatim(r);
  }
  return out;
}

namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw Error("binio: cannot open for writing: " + path);
  return os;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw Error("binio: cannot open for reading: " + path);
  return is;
}

}  // namespace

void save_ruleset_file(const std::string& path,
                       const ruleset::RuleSet& rules) {
  auto os = open_out(path);
  save_ruleset(os, rules);
  if (!os) throw Error("binio: write failed: " + path);
}

ruleset::RuleSet load_ruleset_file(const std::string& path) {
  auto is = open_in(path);
  return load_ruleset(is);
}

void save_trace_file(const std::string& path, const net::Trace& trace) {
  auto os = open_out(path);
  trace.write_binary(os);
  if (!os) throw Error("binio: write failed: " + path);
}

net::Trace load_trace_file(const std::string& path) {
  auto is = open_in(path);
  return net::Trace::read_binary(is);
}

std::string ruleset_bytes(const ruleset::RuleSet& rules) {
  std::ostringstream ss(std::ios::binary);
  save_ruleset(ss, rules);
  return std::move(ss).str();
}

std::string trace_bytes(const net::Trace& trace) {
  std::ostringstream ss(std::ios::binary);
  trace.write_binary(ss);
  return std::move(ss).str();
}

}  // namespace pclass::workload::binio
