#include "workload/trace_synth.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "net/packet.hpp"
#include "workload/ruleset_synth.hpp"

namespace pclass::workload {

ZipfSampler::ZipfSampler(usize n, double s) {
  if (n == 0) throw ConfigError("ZipfSampler: n must be > 0");
  if (s < 0) throw ConfigError("ZipfSampler: s must be >= 0");
  cdf_.resize(n);
  double acc = 0;
  for (usize i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
}

usize ZipfSampler::draw(Rng& rng) const {
  const double u = rng.uniform() * cdf_.back();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return std::min<usize>(static_cast<usize>(it - cdf_.begin()),
                         cdf_.size() - 1);
}

TraceSynthesizer::TraceSynthesizer(const ruleset::RuleSet& rules,
                                   TraceProfile profile)
    : rules_(rules), profile_(std::move(profile)), rng_(profile_.seed) {
  if (rules.empty()) {
    throw ConfigError("TraceSynthesizer: rule set is empty");
  }
  profile_.validate();
}

net::Trace TraceSynthesizer::generate() {
  // Materialize the flow population. Flows concentrate on high-priority
  // rules (the usual deployment shape) via a squared-uniform draw.
  struct Flow {
    net::FiveTuple header;
    RuleId origin;
  };
  std::vector<Flow> flows;
  flows.reserve(profile_.flows);
  for (usize f = 0; f < profile_.flows; ++f) {
    const double u = rng_.uniform();
    const usize idx = std::min(
        static_cast<usize>(u * u * static_cast<double>(rules_.size())),
        rules_.size() - 1);
    const ruleset::Rule& r = rules_[idx];
    flows.push_back({header_inside(r, rng_), r.id});
  }

  const ZipfSampler zipf(flows.size(), profile_.zipf_s);
  std::vector<usize> working_set;  // ring of recently active flows
  working_set.reserve(profile_.working_set);
  usize ws_next = 0;
  auto touch = [&](usize flow) {
    if (working_set.size() < profile_.working_set) {
      working_set.push_back(flow);
    } else {
      working_set[ws_next] = flow;
      ws_next = (ws_next + 1) % profile_.working_set;
    }
  };

  net::Trace trace;
  for (usize i = 0; i < profile_.packets; ++i) {
    net::TraceEntry e;
    if (rng_.chance(profile_.miss_fraction)) {
      e.header.src_ip = static_cast<u32>(rng_.next());
      e.header.dst_ip = static_cast<u32>(rng_.next());
      e.header.src_port = static_cast<u16>(rng_.next());
      e.header.dst_port = static_cast<u16>(rng_.next());
      static constexpr u8 kMissProtos[] = {net::kProtoTcp, net::kProtoUdp,
                                           net::kProtoIcmp, 47, 50};
      e.header.protocol = kMissProtos[rng_.below(std::size(kMissProtos))];
    } else {
      usize flow;
      if (!working_set.empty() && rng_.chance(profile_.locality)) {
        flow = working_set[rng_.below(working_set.size())];  // burst
      } else {
        flow = zipf.draw(rng_);
        touch(flow);
      }
      e.header = flows[flow].header;
      e.origin_rule = flows[flow].origin;
    }
    trace.add(e);
  }
  return trace;
}

net::Trace make_cache_thrash_trace(const ruleset::RuleSet& rules,
                                   usize packets, usize distinct_flows,
                                   u64 seed) {
  if (rules.empty()) {
    throw ConfigError("make_cache_thrash_trace: rule set is empty");
  }
  if (distinct_flows == 0) {
    throw ConfigError("make_cache_thrash_trace: distinct_flows must be > 0");
  }
  Rng rng(seed);
  struct Flow {
    net::FiveTuple header;
    RuleId origin;
  };
  std::vector<Flow> flows;
  flows.reserve(distinct_flows);
  for (usize f = 0; f < distinct_flows; ++f) {
    const ruleset::Rule& r = rules[f % rules.size()];
    flows.push_back({header_inside(r, rng), r.id});
  }
  // Strict round-robin: every flow's repeat distance equals the flow
  // count, so any cache with fewer lines than flows misses every time.
  net::Trace trace;
  for (usize i = 0; i < packets; ++i) {
    const Flow& f = flows[i % flows.size()];
    net::TraceEntry e;
    e.header = f.header;
    e.origin_rule = f.origin;
    trace.add(e);
  }
  return trace;
}

net::Trace make_trie_depth_trace(const ruleset::RuleSet& rules,
                                 usize packets, u64 seed) {
  if (rules.empty()) {
    throw ConfigError("make_trie_depth_trace: rule set is empty");
  }
  Rng rng(seed);
  // The deepest lookups walk the longest installed prefixes; rank rules
  // by combined prefix length and keep the worst offenders.
  std::vector<usize> order(rules.size());
  std::iota(order.begin(), order.end(), usize{0});
  std::stable_sort(order.begin(), order.end(), [&](usize a, usize b) {
    const unsigned la = rules[a].src_ip.length + rules[a].dst_ip.length;
    const unsigned lb = rules[b].src_ip.length + rules[b].dst_ip.length;
    return la > lb;
  });
  const usize deep = std::min<usize>(order.size(),
                                     std::max<usize>(16, order.size() / 16));
  order.resize(deep);

  net::Trace trace;
  for (usize i = 0; i < packets; ++i) {
    const ruleset::Rule& r = rules[order[i % order.size()]];
    net::TraceEntry e;
    e.header = header_inside(r, rng);
    // Defeat the flow cache (fresh ports each packet where the rule
    // allows) so every packet pays the full deep walk.
    if (r.src_port.lo != r.src_port.hi) {
      e.header.src_port =
          static_cast<u16>(rng.between(r.src_port.lo, r.src_port.hi));
    }
    if (r.dst_port.lo != r.dst_port.hi) {
      e.header.dst_port =
          static_cast<u16>(rng.between(r.dst_port.lo, r.dst_port.hi));
    }
    if (rng.chance(0.25)) {
      // Near-miss probe: same deep path, last prefix bit flipped — walks
      // the full depth and then (usually) falls through to a miss.
      if (r.src_ip.length > 0) {
        e.header.src_ip ^= u32{1} << (32 - r.src_ip.length);
        e.origin_rule.reset();
      }
    } else {
      e.origin_rule = r.id;
    }
    trace.add(e);
  }
  return trace;
}

UpdateStorm make_update_storm(const ruleset::RuleSet& base_rules,
                              usize updates, u32 first_id, u64 seed,
                              u32 site) {
  Rng rng(seed);
  if (site > 0xFF) {
    throw ConfigError("make_update_storm: site must fit one octet");
  }
  // The Rule Filter stores ids in a 16-bit field; the whole churn id
  // window must fit.
  if (u64{first_id} + 256 > 0x10000) {
    throw ConfigError(
        "make_update_storm: first_id + 256 must stay within 16-bit rule "
        "ids");
  }
  for (const ruleset::Rule& r : base_rules) {
    if (r.id.valid() && r.id.value >= first_id) {
      throw ConfigError(
          "make_update_storm: base rule ids collide with the churn id "
          "range starting at " +
          std::to_string(first_id));
    }
  }
  UpdateStorm storm;
  storm.schedule.reserve(updates);
  // Churn rules cycle through a bounded id window so the storm exercises
  // re-insertion of previously-deleted ids (the hard publisher path).
  constexpr u32 kChurnWindow = 256;
  for (usize k = 0; storm.schedule.size() < updates; ++k) {
    const u32 slot = static_cast<u32>(k) % kChurnWindow;
    ruleset::Rule r;
    r.src_ip = ruleset::IpPrefix::make(
        0x0A000000u | (site << 16) | (slot << 8) |
            (static_cast<u32>(rng.next()) & 0xFFu),
        32);
    r.dst_ip = ruleset::IpPrefix::make(0x0B000000u, 8);
    r.src_port = ruleset::PortRange::wildcard();
    r.dst_port = ruleset::PortRange::exact(
        static_cast<u16>(rng.between(1024, 65535)));
    r.proto = ruleset::ProtoMatch::exact(net::kProtoTcp);
    r.id = RuleId{first_id + slot};
    r.priority = 0;  // in front of the whole installed set
    r.action = ruleset::Action{sdn::ActionSpec::output(7).encode()};

    sdn::FlowMod add;
    add.command = sdn::FlowMod::Command::kAdd;
    add.cookie = r.id;
    add.match = r;
    add.action = sdn::ActionSpec::decode(r.action.token);
    storm.schedule.emplace_back(add);
    ++storm.add_count;
    if (storm.schedule.size() >= updates) break;

    sdn::FlowMod del;
    del.command = sdn::FlowMod::Command::kDelete;
    del.cookie = r.id;
    storm.schedule.emplace_back(del);
    ++storm.delete_count;
  }
  return storm;
}

}  // namespace pclass::workload
