/// \file ruleset_synth.hpp
/// Structural filter-set synthesis from a RulesetProfile.
///
/// The synthesizer extends the calibrated pool-draw scheme of
/// ruleset::SyntheticGenerator with the structure the profiles describe:
///
///   * two-level address locality (/16 sites holding /24 subnets holding
///     hosts) with pool sizes as unique-value calibration;
///   * a correlated (src, dst) *pair pool*, so endpoint pairs repeat the
///     way real service rules do;
///   * port classes drawn per the WC/EQ/RANGE mix;
///   * explicit overlap control: a profile-set fraction of rules are
///     generated as strict specializations of an earlier rule (nested
///     prefixes from the containment chains of the pool, narrowed
///     ports/protocol), guaranteeing a pairwise-overlap floor.
///
/// Output is deterministic in (profile, profile.seed): the same profile
/// always yields a byte-identical set (see workload::binio).
#pragma once

#include "common/random.hpp"
#include "ruleset/rule_set.hpp"
#include "workload/profile.hpp"

namespace pclass::workload {

/// Generate a filter set from \p profile.
/// \throws ConfigError for invalid profiles; InternalError when the pool
///         space cannot reach the target rule count.
[[nodiscard]] ruleset::RuleSet synthesize(const RulesetProfile& profile);

/// Fraction of rules whose match region intersects at least one earlier
/// (higher-priority) rule. O(n^2) in the worst case; \p sample_limit
/// bounds the rules examined (0 = all).
[[nodiscard]] double measured_overlap_fraction(const ruleset::RuleSet& rules,
                                               usize sample_limit = 0);

/// True iff the two rules' match regions intersect in all five fields.
[[nodiscard]] bool rules_overlap(const ruleset::Rule& a,
                                 const ruleset::Rule& b);

/// Synthesize one concrete header inside \p rule's match region —
/// deterministic in \p rng. Every rule a profile generates satisfies
/// rule.matches(header_inside(rule, rng)) (the "no empty match" validity
/// invariant the tests assert).
[[nodiscard]] net::FiveTuple header_inside(const ruleset::Rule& rule,
                                           Rng& rng);

}  // namespace pclass::workload
