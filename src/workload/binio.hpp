/// \file binio.hpp
/// Versioned binary save/load for workload artifacts.
///
/// Two formats, each with a 4-byte magic, a u16 version and fixed-width
/// little-endian payloads (byte-stable across hosts):
///
///   * "PCR1" — rule sets: full match part, priority, id and action per
///     rule (the text ClassBench format drops ids and actions; the
///     binary format round-trips everything).
///   * "PCT1" — traces: owned by net::Trace::{write,read}_binary; the
///     helpers here add the file-path layer.
///
/// Same seed => byte-identical files: the determinism tests compare
/// these serializations directly.
#pragma once

#include <iosfwd>
#include <string>

#include "net/trace.hpp"
#include "ruleset/rule_set.hpp"

namespace pclass::workload::binio {

/// Serialize a rule set ("PCR1").
void save_ruleset(std::ostream& os, const ruleset::RuleSet& rules);

/// Parse a binary rule set. \throws ParseError on bad magic/version or
/// truncated/invalid input.
[[nodiscard]] ruleset::RuleSet load_ruleset(std::istream& is);

// ---- file-path conveniences (open in binary mode, throw on IO error) ----

void save_ruleset_file(const std::string& path,
                       const ruleset::RuleSet& rules);
[[nodiscard]] ruleset::RuleSet load_ruleset_file(const std::string& path);

void save_trace_file(const std::string& path, const net::Trace& trace);
[[nodiscard]] net::Trace load_trace_file(const std::string& path);

/// In-memory serialization (determinism checks compare these strings).
[[nodiscard]] std::string ruleset_bytes(const ruleset::RuleSet& rules);
[[nodiscard]] std::string trace_bytes(const net::Trace& trace);

}  // namespace pclass::workload::binio
