#include "workload/scenario.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <iostream>
#include <map>
#include <ostream>
#include <thread>

#include "baseline/linear_search.hpp"
#include "common/build_info.hpp"
#include "common/error.hpp"
#include "dataplane/engine.hpp"
#include "fault/fault.hpp"
#include "workload/binio.hpp"
#include "workload/json_writer.hpp"
#include "workload/ruleset_synth.hpp"
#include "workload/trace_synth.hpp"

namespace pclass::workload {

namespace {

using dataplane::Engine;
using dataplane::EngineConfig;
using dataplane::EngineReport;
using dataplane::RuleProgramPublisher;
using dataplane::TrafficPool;

usize scaled(usize base, double scale, usize floor_value) {
  return std::max<usize>(
      floor_value, static_cast<usize>(static_cast<double>(base) * scale));
}

/// A scenario's input artifacts (the storm schedule is re-derived from
/// the rules, so these two files pin the whole workload).
struct ScenarioWorkload {
  ruleset::RuleSet rules;
  net::Trace trace;
};

/// Resolve a scenario's workload: load the versioned PCR1/PCT1 files
/// when --load-workloads is set, synthesize otherwise, and save when
/// --save-workloads is set (loading + saving round-trips the bytes).
ScenarioWorkload obtain_workload(
    const ScenarioOptions& opts, const std::string& name,
    const std::function<ScenarioWorkload()>& synth) {
  ScenarioWorkload w =
      opts.load_workloads_dir.empty()
          ? synth()
          : ScenarioWorkload{
                binio::load_ruleset_file(opts.load_workloads_dir + "/" +
                                         name + ".rules.pcr1"),
                binio::load_trace_file(opts.load_workloads_dir + "/" + name +
                                       ".trace.pct1")};
  if (!opts.save_workloads_dir.empty()) {
    std::filesystem::create_directories(opts.save_workloads_dir);
    binio::save_ruleset_file(
        opts.save_workloads_dir + "/" + name + ".rules.pcr1", w.rules);
    binio::save_trace_file(
        opts.save_workloads_dir + "/" + name + ".trace.pct1", w.trace);
  }
  return w;
}

using dataplane::WorkerBudget;

/// Copy the engine-side measurement into the result (by value: the
/// telemetry series and trace events are moved out of the report).
void fill_engine_stats(ScenarioResult& r, EngineReport rep) {
  r.packets_processed = rep.packets();
  r.matched = rep.matched();
  r.wall_seconds = rep.wall_seconds;
  r.mpps = rep.aggregate_mpps();
  const auto lat = rep.merged_latency();
  r.mean_cycles = lat.mean();
  r.p50_cycles = lat.percentile(50);
  r.p99_cycles = lat.percentile(99);
  r.max_cycles = lat.max();
  u64 hits = 0, misses = 0, min_v = 0, max_v = 0;
  bool first = true;
  std::array<usize, core::kNumBatchPaths> fitted_workers{};
  for (const auto& w : rep.workers) {
    hits += w.cache_hits;
    misses += w.cache_misses;
    r.memory_accesses += w.memory_accesses;
    r.probe_memo_hits += w.probe_memo_hits;
    r.probe_memo_invalidations += w.probe_memo_invalidations;
    r.probe_memo_conflict_evictions += w.probe_memo_conflict_evictions;
    r.path_scalar_loop_batches += w.path_scalar_loop_batches;
    r.path_phase2_batches += w.path_phase2_batches;
    r.path_phase2_memo_batches += w.path_phase2_memo_batches;
    for (usize p = 0; p < core::kNumBatchPaths; ++p) {
      if (w.controller_observations[p] == 0) continue;
      r.controller_models[p].ns_per_packet +=
          w.controller_models[p].ns_per_packet;
      r.controller_models[p].ns_per_distinct_key +=
          w.controller_models[p].ns_per_distinct_key;
      ++fitted_workers[p];
    }
    if (w.max_version == 0 && w.min_version == 0 && w.packets == 0) {
      continue;  // idle worker: no versions observed
    }
    min_v = first ? w.min_version : std::min(min_v, w.min_version);
    max_v = std::max(max_v, w.max_version);
    first = false;
  }
  // Coefficients are per-worker fits, not additive: average over the
  // workers that actually produced one.
  for (usize p = 0; p < core::kNumBatchPaths; ++p) {
    if (fitted_workers[p] == 0) continue;
    r.controller_models[p].ns_per_packet /=
        static_cast<double>(fitted_workers[p]);
    r.controller_models[p].ns_per_distinct_key /=
        static_cast<double>(fitted_workers[p]);
  }
  r.cache_hit_rate =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
  r.snapshot_min_version = min_v;
  r.snapshot_max_version = max_v;
  r.snapshot_lag = max_v >= min_v ? max_v - min_v : 0;
  r.versions_monotonic = rep.versions_monotonic();
  r.trace_events_dropped = rep.trace_events_dropped();
  r.trace_events_truncated = rep.trace_events_truncated;
  r.update_visibility = rep.update_visibility();
  // Surface ALL worker deaths (healed incarnations included), each with
  // its worker index + restart count; then any remaining fatal error the
  // log does not already carry (e.g. a partition combiner misalignment).
  std::vector<std::string> logged;
  for (const auto& d : rep.error_log) {
    r.worker_errors.push_back(
        "worker " + std::to_string(d.worker) + " [restarts=" +
        std::to_string(d.restarts) + (d.permanent ? ", permanent" : ", healed") +
        "]: " + d.message);
    logged.push_back(d.message);
  }
  for (const auto& w : rep.workers) {
    if (w.error.empty()) continue;
    if (std::find(logged.begin(), logged.end(), w.error) != logged.end()) {
      continue;
    }
    r.worker_errors.push_back("worker " + std::to_string(w.worker) + ": " +
                              w.error);
  }
  // Supervisor rollup + the conservation ledger (finite runs only; the
  // engine skips the ledger in loop mode).
  r.worker_restarts = rep.worker_restarts;
  r.stall_detections = rep.stall_detections;
  r.shards_reassigned = rep.shards_reassigned;
  r.workers_failed = rep.workers_failed;
  r.conservation_checked = rep.conservation_checked;
  r.offered_packets = rep.offered_packets;
  r.delivered_packets = rep.delivered_packets;
  r.shed_packets = rep.shed_packets;
  r.lost_packets = rep.lost_packets;
  r.conserved = rep.conserved();
  r.timeseries = std::move(rep.timeseries);
  r.trace_events = std::move(rep.trace_events);
  if (r.error.empty()) {
    r.error = rep.first_error();
  }
  if (r.error.empty() && !r.conserved) {
    r.error = "conservation violated: delivered " +
              std::to_string(r.delivered_packets) + " + shed " +
              std::to_string(r.shed_packets) + " + lost " +
              std::to_string(r.lost_packets) + " != offered " +
              std::to_string(r.offered_packets);
  }
}

/// Re-classify every trace header against the published snapshot and
/// compare with the linear-search ground truth over the same rules.
void verify_oracle(ScenarioResult& r, const RuleProgramPublisher& programs,
                   const net::Trace& trace) {
  const auto snap = programs.acquire();
  const auto installed = snap->classifier().installed_rules();
  // Reconstruct verbatim: the installed priorities are authoritative
  // (LinearSearch orders by them itself), so no back-fill may run.
  ruleset::RuleSet oracle_rules("oracle");
  for (const ruleset::Rule& rule : installed) {
    oracle_rules.add_verbatim(rule);
  }
  const baseline::LinearSearch oracle(oracle_rules);
  for (const auto& e : trace) {
    const auto res = snap->classifier().classify(e.header);
    const ruleset::Rule* want = oracle.classify(e.header, nullptr);
    const bool agree = want == nullptr
                           ? !res.match.has_value()
                           : res.match && res.match->rule == want->id;
    ++r.oracle_checked;
    if (!agree) ++r.oracle_mismatches;
  }
}

/// Partition-mode oracle: the combined verdict stream is index-aligned
/// with the trace (every shard drains its own full copy in input
/// order), so packet i's combined verdict must equal LinearSearch over
/// the union of the shard rulesets — which is the original ruleset, so
/// partition mode is verdict-identical to unsharded by construction.
void verify_partition(
    ScenarioResult& r,
    const std::vector<std::unique_ptr<RuleProgramPublisher>>& pubs,
    const net::Trace& trace,
    const std::vector<dataplane::CapturedVerdict>& combined) {
  ruleset::RuleSet oracle_rules("oracle");
  for (const auto& pub : pubs) {
    const auto snap = pub->acquire();
    for (const ruleset::Rule& rule : snap->classifier().installed_rules()) {
      oracle_rules.add_verbatim(rule);
    }
  }
  const baseline::LinearSearch oracle(oracle_rules);
  if (combined.size() != trace.size()) {
    if (r.error.empty()) {
      r.error = "partition: combined stream length " +
                std::to_string(combined.size()) + " != trace length " +
                std::to_string(trace.size());
    }
    return;
  }
  for (usize i = 0; i < trace.size(); ++i) {
    const ruleset::Rule* want = oracle.classify(trace[i].header, nullptr);
    const dataplane::CapturedVerdict& cv = combined[i];
    const bool agree = want == nullptr
                           ? !cv.matched
                           : cv.matched && cv.rule == want->id &&
                                 cv.priority == want->priority;
    ++r.oracle_checked;
    if (!agree) ++r.oracle_mismatches;
  }
}

/// Device configuration sized for the scenario (exact lookup mode).
core::ClassifierConfig scenario_config(const ruleset::RuleSet& rules,
                                       usize extra_headroom,
                                       const ScenarioOptions& opts) {
  core::ClassifierConfig cfg =
      core::ClassifierConfig::for_scale(rules.size() + extra_headroom);
  cfg.combine_mode = core::CombineMode::kCrossProduct;  // exact lookups
  cfg.ip_algorithm = opts.ip_algorithm;
  cfg.batch_mode = opts.batch_mode;
  cfg.batch_memo_persistent = opts.memo_persistent;
  cfg.batch_memo_ways = opts.memo_ways;
  cfg.batch_path_policy = opts.path_policy;
  return cfg;
}

/// Shard geometry a scenario actually ran with (the report field the
/// CI shard gate asserts against — never the requested mode).
std::string effective_shard_mode(usize shards, dataplane::ShardMode mode) {
  if (shards == 0) return "unsharded";
  return mode == dataplane::ShardMode::kPartition ? "partition" : "replica";
}

/// Engine geometry for a scenario (loop/shards vary per call site).
EngineConfig engine_config(const ScenarioOptions& opts, WorkerBudget* budget,
                           bool loop, usize shards) {
  return {.workers = opts.workers,
          .batch_size = opts.batch_size,
          .flow_cache_depth = opts.flow_cache_depth,
          .loop = loop,
          .budget = budget,
          .stats_interval_ms = opts.stats_interval_ms,
          .collect_trace = opts.collect_trace,
          .shards = shards,
          .shard_mode = opts.shard_mode,
          .steer_symmetric = opts.steer_symmetric};
}

/// Drain the trace once through the engine and collect stats + oracle.
void run_finite(ScenarioResult& r, const ScenarioOptions& opts,
                WorkerBudget* budget, const ruleset::RuleSet& rules,
                const net::Trace& trace) {
  r.rules = rules.size();
  r.trace_packets = trace.size();
  TrafficPool pool =
      TrafficPool::from_trace(trace, /*materialize_packets=*/false);
  const EngineConfig ecfg =
      engine_config(opts, budget, /*loop=*/false, opts.shards);
  r.shard_mode_effective = effective_shard_mode(opts.shards, opts.shard_mode);
  if (opts.shards > 0 &&
      opts.shard_mode == dataplane::ShardMode::kPartition) {
    // Disjoint rule subsets, one publisher per shard; each config is
    // sized for the full set so churny callers keep headroom.
    const std::vector<ruleset::RuleSet> parts =
        dataplane::partition_rules(rules, opts.shards);
    std::vector<std::unique_ptr<RuleProgramPublisher>> pubs;
    std::vector<const RuleProgramPublisher*> ptrs;
    pubs.reserve(parts.size());
    for (const ruleset::RuleSet& part : parts) {
      pubs.push_back(std::make_unique<RuleProgramPublisher>(
          scenario_config(rules, 0, opts)));
      pubs.back()->install_ruleset(part);
      ptrs.push_back(pubs.back().get());
    }
    Engine engine(ecfg, std::move(ptrs));
    EngineReport rep = engine.run(pool);
    r.shard_reports = rep.shards;
    const std::vector<dataplane::CapturedVerdict> combined =
        std::move(rep.combined);
    fill_engine_stats(r, std::move(rep));
    verify_partition(r, pubs, trace, combined);
    return;
  }
  RuleProgramPublisher programs(scenario_config(rules, 0, opts));
  programs.install_ruleset(rules);
  Engine engine(ecfg, programs);
  EngineReport rep = engine.run(pool);
  r.shard_reports = rep.shards;
  fill_engine_stats(r, std::move(rep));
  verify_oracle(r, programs, trace);
}

// ---- scenario bodies ------------------------------------------------------

ScenarioResult run_family(const ScenarioOptions& opts, WorkerBudget* budget,
                          const std::string& name,
                          const std::string& family) {
  ScenarioResult r;
  const ScenarioWorkload w = obtain_workload(opts, name, [&] {
    const usize rules_n =
        scaled(family == "fw" ? 1500 : 2000, opts.scale, 96);
    const usize packets = scaled(60'000, opts.scale, 2048);
    RulesetProfile rp = RulesetProfile::by_family(family, rules_n, opts.seed);
    ruleset::RuleSet rules = synthesize(rp);
    TraceSynthesizer ts(rules,
                        TraceProfile::standard(packets, opts.seed ^ 0xABCD));
    net::Trace trace = ts.generate();
    return ScenarioWorkload{std::move(rules), std::move(trace)};
  });
  run_finite(r, opts, budget, w.rules, w.trace);
  return r;
}

ScenarioResult run_zipf_locality(const ScenarioOptions& opts,
                                 WorkerBudget* budget,
                                 const std::string& name) {
  ScenarioResult r;
  const ScenarioWorkload w = obtain_workload(opts, name, [&] {
    ruleset::RuleSet rules = synthesize(
        RulesetProfile::acl(scaled(1200, opts.scale, 96), opts.seed));
    TraceSynthesizer ts(rules,
                        TraceProfile::zipf_heavy(
                            scaled(80'000, opts.scale, 2048),
                            opts.seed ^ 0x21BF));
    net::Trace trace = ts.generate();
    return ScenarioWorkload{std::move(rules), std::move(trace)};
  });
  run_finite(r, opts, budget, w.rules, w.trace);
  return r;
}

ScenarioResult run_cache_thrash(const ScenarioOptions& opts,
                                WorkerBudget* budget,
                                const std::string& name) {
  ScenarioResult r;
  const ScenarioWorkload w = obtain_workload(opts, name, [&] {
    ruleset::RuleSet rules = synthesize(
        RulesetProfile::acl(scaled(1200, opts.scale, 96), opts.seed));
    // 8x more concurrently-active flows than cache lines: worker-local
    // repeat distance exceeds the cache even when N workers partition
    // the stream, so hits stay near zero.
    const usize flows =
        std::max<usize>(usize{opts.flow_cache_depth} * 8, 64);
    net::Trace trace = make_cache_thrash_trace(
        rules, scaled(60'000, opts.scale, 2048), flows, opts.seed ^ 0x7447);
    return ScenarioWorkload{std::move(rules), std::move(trace)};
  });
  run_finite(r, opts, budget, w.rules, w.trace);
  return r;
}

ScenarioResult run_trie_depth(const ScenarioOptions& opts,
                              WorkerBudget* budget,
                              const std::string& name) {
  ScenarioResult r;
  const ScenarioWorkload w = obtain_workload(opts, name, [&] {
    ruleset::RuleSet rules = synthesize(
        RulesetProfile::acl(scaled(1600, opts.scale, 96), opts.seed));
    net::Trace trace = make_trie_depth_trace(
        rules, scaled(60'000, opts.scale, 2048), opts.seed ^ 0xDEEF);
    return ScenarioWorkload{std::move(rules), std::move(trace)};
  });
  run_finite(r, opts, budget, w.rules, w.trace);
  return r;
}

ScenarioResult run_update_storm(const ScenarioOptions& opts,
                                WorkerBudget* budget,
                                const std::string& name) {
  ScenarioResult r;
  const ScenarioWorkload w = obtain_workload(opts, name, [&] {
    ruleset::RuleSet rules = synthesize(
        RulesetProfile::acl(scaled(1000, opts.scale, 96), opts.seed));
    TraceSynthesizer ts(rules,
                        TraceProfile::standard(
                            scaled(40'000, opts.scale, 2048),
                            opts.seed ^ 0xABCD));
    net::Trace trace = ts.generate();
    return ScenarioWorkload{std::move(rules), std::move(trace)};
  });
  const ruleset::RuleSet& rules = w.rules;
  const net::Trace& trace = w.trace;
  r.rules = rules.size();
  r.trace_packets = trace.size();

  // Even count: the storm ends on a delete, leaving exactly the base set
  // installed (which keeps the post-storm oracle comparison exact).
  usize updates = scaled(4000, opts.scale, 512);
  updates &= ~usize{1};
  // Churn ids live above every generated rule id but inside the Rule
  // Filter's 16-bit id field.
  const UpdateStorm storm =
      make_update_storm(rules, updates, /*first_id=*/60'000,
                        opts.seed ^ 0x5707);

  RuleProgramPublisher programs(scenario_config(rules, 512, opts));
  programs.install_ruleset(rules);
  const u64 version_before = programs.version();
  TrafficPool pool =
      TrafficPool::from_trace(trace, /*materialize_packets=*/false);
  // Partition mode is finite-only (the combiner consumes bounded
  // capture streams); the loop-mode storm falls back to unsharded —
  // loudly, and the report records what actually ran.
  const bool partition_fallback =
      opts.shards > 0 &&
      opts.shard_mode == dataplane::ShardMode::kPartition;
  const usize shards = partition_fallback ? 0 : opts.shards;
  if (partition_fallback) {
    std::cerr << "warning: " << name
              << ": partition sharding is finite-only; running unsharded "
                 "(see shard_mode_effective in the report)\n";
  }
  r.shard_mode_effective = effective_shard_mode(shards, opts.shard_mode);
  Engine engine(engine_config(opts, budget, /*loop=*/true, shards),
                programs);
  engine.start(pool);
  const auto t0 = std::chrono::steady_clock::now();
  for (const sdn::Message& msg : storm.schedule) {
    programs.apply(msg);
  }
  const double storm_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  {
    EngineReport rep = engine.stop();
    r.shard_reports = rep.shards;
    fill_engine_stats(r, std::move(rep));
  }

  r.updates_applied = storm.schedule.size();
  r.updates_per_sec =
      storm_secs <= 0
          ? 0.0
          : static_cast<double>(storm.schedule.size()) / storm_secs;
  r.grace_spins = programs.stats().grace_spins;
  if (programs.version() != version_before + storm.schedule.size()) {
    r.error = "update-storm: published version did not advance by the "
              "schedule length";
  }
  verify_oracle(r, programs, trace);
  return r;
}

/// Multi-writer storm: N controller threads push paced add/delete churn
/// through the publisher's writer mutex while workers classify — the
/// writer-side contention the single-writer storm cannot produce, and
/// the natural stress test for the persistent probe memo's
/// invalidate-on-swap path (every publish rotates the workers onto the
/// other replica, so each worker's memo must drop and rebind hundreds
/// of times mid-trace without ever serving a stale verdict; the oracle
/// check below would catch one).
ScenarioResult run_update_storm_multi(const ScenarioOptions& opts,
                                      WorkerBudget* budget,
                                      const std::string& name) {
  ScenarioResult r;
  const ScenarioWorkload w = obtain_workload(opts, name, [&] {
    ruleset::RuleSet rules = synthesize(
        RulesetProfile::acl(scaled(1000, opts.scale, 96), opts.seed));
    TraceSynthesizer ts(rules,
                        TraceProfile::standard(
                            scaled(40'000, opts.scale, 2048),
                            opts.seed ^ 0xABCD));
    net::Trace trace = ts.generate();
    return ScenarioWorkload{std::move(rules), std::move(trace)};
  });
  r.rules = w.rules.size();
  r.trace_packets = w.trace.size();

  constexpr usize kWriters = 4;
  // Even count per writer: each schedule ends on a delete, so the storm
  // leaves exactly the base set installed for the oracle comparison.
  usize per_writer = scaled(2000, opts.scale, 256);
  per_writer &= ~usize{1};
  // Disjoint churn id windows (1024 apart; each storm cycles 256 ids)
  // and disjoint 10.site.x.x source octets make the writers fully
  // independent — any interleaving through the writer mutex is legal.
  std::array<UpdateStorm, kWriters> storms;
  usize total_updates = 0;
  for (usize wr = 0; wr < kWriters; ++wr) {
    storms[wr] = make_update_storm(
        w.rules, per_writer, /*first_id=*/static_cast<u32>(58'000 + wr * 1024),
        opts.seed ^ (0x17E0 + wr * 0x9E37), /*site=*/static_cast<u32>(wr + 1));
    total_updates += storms[wr].schedule.size();
  }

  // Headroom: up to kWriters * 256 churn rules live at once.
  RuleProgramPublisher programs(scenario_config(w.rules, 1280, opts));
  programs.install_ruleset(w.rules);
  const u64 version_before = programs.version();
  TrafficPool pool =
      TrafficPool::from_trace(w.trace, /*materialize_packets=*/false);
  // Partition is finite-only; the loop-mode storm falls back to
  // unsharded (replica shards loop over their steered slices fine) —
  // loudly, and the report records what actually ran.
  const bool partition_fallback =
      opts.shards > 0 &&
      opts.shard_mode == dataplane::ShardMode::kPartition;
  const usize shards = partition_fallback ? 0 : opts.shards;
  if (partition_fallback) {
    std::cerr << "warning: " << name
              << ": partition sharding is finite-only; running unsharded "
                 "(see shard_mode_effective in the report)\n";
  }
  r.shard_mode_effective = effective_shard_mode(shards, opts.shard_mode);
  Engine engine(engine_config(opts, budget, /*loop=*/true, shards),
                programs);
  engine.start(pool);

  std::array<std::string, kWriters> writer_errors;
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (usize wr = 0; wr < kWriters; ++wr) {
      writers.emplace_back([&, wr] {
        try {
          usize k = 0;
          for (const sdn::Message& msg : storms[wr].schedule) {
            programs.apply(msg);
            // Pacing: yield between messages, sleep every 32nd — the
            // storm overlaps the whole classification run instead of
            // racing ahead of it, so the mutex sees sustained
            // multi-thread contention.
            if (++k % 32 == 0) {
              std::this_thread::sleep_for(std::chrono::microseconds(50));
            } else {
              std::this_thread::yield();
            }
          }
        } catch (const std::exception& e) {
          writer_errors[wr] = e.what();
        }
      });
    }
    for (auto& t : writers) t.join();
  }
  const double storm_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  {
    EngineReport rep = engine.stop();
    r.shard_reports = rep.shards;
    fill_engine_stats(r, std::move(rep));
  }

  r.updates_applied = total_updates;
  r.updates_per_sec =
      storm_secs <= 0 ? 0.0
                      : static_cast<double>(total_updates) / storm_secs;
  r.grace_spins = programs.stats().grace_spins;
  for (const std::string& err : writer_errors) {
    if (!err.empty() && r.error.empty()) {
      r.error = "update-storm-multi writer: " + err;
    }
  }
  if (r.error.empty() &&
      programs.version() != version_before + total_updates) {
    r.error = "update-storm-multi: published version did not advance by "
              "the combined schedule length";
  }
  verify_oracle(r, programs, w.trace);
  return r;
}

/// Version -> LinearSearch oracle over exactly the rules installed at
/// that published version (the differential fuzzer's idiom). The single
/// scenario thread records after the install and every successful
/// apply; oracles build lazily since most versions see few verdicts.
class ChaosOracles {
 public:
  void record(const RuleProgramPublisher& pub) {
    const std::shared_ptr<const dataplane::RuleProgram> prog = pub.acquire();
    ruleset::RuleSet rs("v" + std::to_string(prog->version()));
    for (const ruleset::Rule& rule : prog->classifier().installed_rules()) {
      rs.add_verbatim(rule);
    }
    rules_.insert_or_assign(prog->version(), std::move(rs));
  }

  [[nodiscard]] const baseline::LinearSearch* at(u64 version) {
    const auto built = oracles_.find(version);
    if (built != oracles_.end()) return built->second.get();
    const auto it = rules_.find(version);
    if (it == rules_.end()) return nullptr;
    auto oracle = std::make_unique<baseline::LinearSearch>(it->second);
    return oracles_.emplace(version, std::move(oracle)).first->second.get();
  }

 private:
  std::map<u64, ruleset::RuleSet> rules_;
  std::map<u64, std::unique_ptr<baseline::LinearSearch>> oracles_;
};

/// The default seeded plan: worker 1 thrown past its retry budget on
/// three consecutive sweeps (-> 2 restarts, then permanent failure and
/// shard takeover), worker 2 stalled well past the watchdog deadline,
/// and one publisher apply failed mid-storm (retried by the scenario).
/// Sweep indices 1..3 so the plan fires even at the minimum trace floor
/// (two batches per shard).
constexpr const char* kDefaultChaosPlan =
    "throw:w=1@1,throw:w=1@2,throw:w=1@3,stall:w=2@1:ms=250,pubfail:u=2";

/// Chaos scenario: the fw-like workload in sharded replica mode under a
/// seeded FaultPlan with the supervisor on. Every delivered verdict is
/// checked against the LinearSearch oracle at its snapshot version, and
/// the run must conserve packets exactly: delivered + shed + lost ==
/// offered.
ScenarioResult run_chaos(const ScenarioOptions& opts, WorkerBudget* budget,
                         const std::string& name) {
  ScenarioResult r;
  const ScenarioWorkload w = obtain_workload(opts, name, [&] {
    const usize rules_n = scaled(1500, opts.scale, 96);
    const usize packets = scaled(60'000, opts.scale, 2048);
    RulesetProfile rp = RulesetProfile::by_family("fw", rules_n, opts.seed);
    ruleset::RuleSet rules = synthesize(rp);
    TraceSynthesizer ts(rules,
                        TraceProfile::standard(packets, opts.seed ^ 0xC4A0));
    net::Trace trace = ts.generate();
    return ScenarioWorkload{std::move(rules), std::move(trace)};
  });
  r.rules = w.rules.size();
  r.trace_packets = w.trace.size();

  fault::FaultPlan plan = fault::FaultPlan::parse(
      opts.fault_plan.empty() ? kDefaultChaosPlan : opts.fault_plan);
  r.fault_plan = plan.to_string();
  fault::FaultInjector injector(std::move(plan));

  // Takeover needs shards to reassign: force replica mode, >= 3 workers
  // (the default plan targets workers 1 and 2; worker 0 survives).
  // Flow cache off — the per-version oracle demands exact verdicts.
  ScenarioOptions copts = opts;
  copts.workers = std::max<usize>(opts.workers, 3);
  copts.flow_cache_depth = 0;
  const usize shards =
      std::max<usize>(opts.shards == 0 ? 4 : opts.shards, copts.workers);
  EngineConfig ecfg = engine_config(copts, budget, /*loop=*/false, shards);
  ecfg.shard_mode = dataplane::ShardMode::kReplica;
  r.shard_mode_effective = effective_shard_mode(shards, ecfg.shard_mode);
  ecfg.capture_verdicts = true;
  ecfg.fault_injector = &injector;
  ecfg.supervisor.enabled = true;
  ecfg.supervisor.watchdog_interval_ms = 5;
  ecfg.supervisor.stall_deadline_ms = 60;
  ecfg.supervisor.max_restarts = 2;
  ecfg.supervisor.restart_backoff_ms = 5;

  usize updates = scaled(400, opts.scale, 64);
  updates &= ~usize{1};
  const UpdateStorm storm = make_update_storm(
      w.rules, updates, /*first_id=*/60'000, opts.seed ^ 0x0BAD);

  RuleProgramPublisher programs(scenario_config(w.rules, 512, opts));
  programs.install_ruleset(w.rules);
  programs.set_fault_hook([&injector] { injector.on_publisher_apply(); });
  const u64 version_before = programs.version();
  ChaosOracles oracles;
  oracles.record(programs);

  TrafficPool pool =
      TrafficPool::from_trace(w.trace, /*materialize_packets=*/false);
  Engine engine(ecfg, programs);
  engine.start(pool);

  // Southbound churn while faults fire. An injected publish failure
  // leaves the publisher exactly as before the apply (all-or-nothing
  // restore), so the retry of the same message must succeed.
  u64 publish_failures_survived = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const sdn::Message& msg : storm.schedule) {
    try {
      programs.apply(msg);
    } catch (const fault::InjectedFault&) {
      ++publish_failures_survived;
      programs.apply(msg);
    }
    oracles.record(programs);
    std::this_thread::yield();
  }
  const double storm_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  EngineReport rep = engine.wait();
  r.shard_reports = rep.shards;

  // Per-version oracle over every delivered verdict: a verdict stamped
  // with an unpublished version is itself a mismatch (torn snapshot).
  for (const auto& stream : rep.captured) {
    for (const dataplane::CapturedVerdict& cv : stream) {
      ++r.oracle_checked;
      const baseline::LinearSearch* oracle = oracles.at(cv.version);
      if (oracle == nullptr) {
        ++r.oracle_mismatches;
        continue;
      }
      const ruleset::Rule* want = oracle->classify(cv.tuple, nullptr);
      const bool agree = want == nullptr
                             ? !cv.matched
                             : cv.matched && cv.rule == want->id &&
                                   cv.priority == want->priority;
      if (!agree) ++r.oracle_mismatches;
    }
  }
  fill_engine_stats(r, std::move(rep));

  r.updates_applied = storm.schedule.size();
  r.updates_per_sec =
      storm_secs <= 0
          ? 0.0
          : static_cast<double>(storm.schedule.size()) / storm_secs;
  r.grace_spins = programs.stats().grace_spins;
  const fault::FaultCounters& fc = injector.counters();
  r.injected_worker_throws = fc.worker_throws;
  r.injected_worker_stalls = fc.worker_stalls;
  r.injected_publish_failures = fc.publish_failures;
  r.injected_conn_drops = fc.conn_drops;

  if (r.error.empty() &&
      programs.version() != version_before + storm.schedule.size()) {
    r.error = "chaos: published version did not advance by the schedule "
              "length (failed applies must restore, retries must land)";
  }
  if (opts.fault_plan.empty()) {
    // The built-in plan's effects are deterministic; their absence means
    // the fault plane or the supervisor silently did nothing.
    if (r.error.empty() && r.worker_restarts < 1) {
      r.error = "chaos: expected >= 1 worker restart under the default plan";
    }
    if (r.error.empty() && r.shards_reassigned < 1) {
      r.error = "chaos: expected >= 1 shard reassignment under the default "
                "plan";
    }
    if (r.error.empty() && publish_failures_survived < 1) {
      r.error = "chaos: expected >= 1 injected publish failure to be "
                "survived under the default plan";
    }
  }
  return r;
}

}  // namespace

ScenarioRunner::ScenarioRunner(ScenarioOptions opts) : opts_(opts) {
  if (opts_.workers == 0) opts_.workers = 1;
  if (opts_.scale <= 0) {
    throw ConfigError("ScenarioRunner: scale must be > 0");
  }
  // The shared engine-worker budget: every scenario this runner starts
  // draws its worker threads from it, so concurrent scenarios can never
  // hold more than max_workers threads in total. Auto (0) = the
  // hardware thread count — parallelism without oversubscription.
  usize capacity = opts_.max_workers;
  if (capacity == 0) {
    // Auto must never cut a single scenario below its requested width
    // (that would make per-worker-partitioned metrics depend on the
    // host's core count even in sequential runs); it only caps how many
    // scenarios run at full width concurrently.
    const usize hw = std::thread::hardware_concurrency();
    capacity = std::max<usize>(hw, opts_.workers);
  }
  budget_ = std::make_unique<WorkerBudget>(std::max<usize>(capacity, 1));
}

ScenarioRunner::~ScenarioRunner() = default;

const std::vector<ScenarioSpec>& ScenarioRunner::catalog() {
  static const std::vector<ScenarioSpec> kCatalog = {
      {"acl-like",
       "ACL-shaped ruleset (host-heavy, exact dports), standard trace"},
      {"fw-like",
       "FW-shaped ruleset (wildcards, port ranges, nesting), standard "
       "trace"},
      {"ipc-like",
       "IPC-shaped ruleset (correlated endpoint pairs), standard trace"},
      {"zipf-locality",
       "heavy-head Zipf flows with bursts — the flow cache's best case"},
      {"cache-thrash",
       "8x more active flows than cache lines, maximal repeat distance"},
      {"trie-depth",
       "headers walking the longest installed prefixes (worst-case "
       "lookup depth)"},
      {"update-storm",
       "southbound add/delete churn through the RCU publisher under "
       "concurrent lookups"},
      {"update-storm-multi",
       "paced 4-writer churn contending on the publisher's writer mutex "
       "— snapshot swaps stress memo invalidation mid-trace"},
      {"chaos",
       "fw-like workload in sharded replica mode under a seeded "
       "FaultPlan: worker kills, a stall and a failed publisher apply — "
       "supervised, oracle-clean and packet-conserving"},
  };
  return kCatalog;
}

ScenarioResult ScenarioRunner::run(const std::string& name) {
  const auto& specs = catalog();
  const auto it =
      std::find_if(specs.begin(), specs.end(),
                   [&](const ScenarioSpec& s) { return s.name == name; });
  if (it == specs.end()) {
    std::string known;
    for (const auto& s : specs) {
      known += (known.empty() ? "" : ", ") + s.name;
    }
    throw ConfigError("unknown scenario '" + name + "' (catalog: " + known +
                      ")");
  }

  ScenarioResult r;
  try {
    WorkerBudget* const b = budget_.get();
    if (name == "acl-like") r = run_family(opts_, b, name, "acl");
    else if (name == "fw-like") r = run_family(opts_, b, name, "fw");
    else if (name == "ipc-like") r = run_family(opts_, b, name, "ipc");
    else if (name == "zipf-locality") r = run_zipf_locality(opts_, b, name);
    else if (name == "cache-thrash") r = run_cache_thrash(opts_, b, name);
    else if (name == "trie-depth") r = run_trie_depth(opts_, b, name);
    else if (name == "update-storm") r = run_update_storm(opts_, b, name);
    else if (name == "update-storm-multi") {
      r = run_update_storm_multi(opts_, b, name);
    }
    else if (name == "chaos") r = run_chaos(opts_, b, name);
  } catch (const std::exception& e) {
    r.error = e.what();
  }
  r.name = it->name;
  r.description = it->description;
  return r;
}

std::vector<ScenarioResult> ScenarioRunner::run_many(
    const std::vector<std::string>& names) {
  // Validate every name up front so an unknown one throws before any
  // scenario (or thread) starts.
  const auto& specs = catalog();
  for (const std::string& name : names) {
    if (std::none_of(specs.begin(), specs.end(),
                     [&](const ScenarioSpec& s) { return s.name == name; })) {
      std::string known;
      for (const auto& s : specs) {
        known += (known.empty() ? "" : ", ") + s.name;
      }
      throw ConfigError("unknown scenario '" + name + "' (catalog: " +
                        known + ")");
    }
  }
  usize pool = opts_.parallel;
  if (pool == 0) {
    // Auto-size from the worker budget: as many scenarios as can run at
    // their full worker width simultaneously. The budget is the actual
    // gate (engines block in acquire() when the pool over-claims), so
    // this is purely the no-queueing sweet spot — not a second cap.
    const usize per =
        std::max<usize>(1, std::min(opts_.workers, budget_->capacity()));
    pool = std::max<usize>(1, budget_->capacity() / per);
  }
  pool = std::min(pool, names.size());
  // A repeated name would race two writers on the same --save-workloads
  // files (and measure itself against itself); run such lists
  // sequentially — last write wins, as it always did.
  std::vector<std::string> sorted_names = names;
  std::sort(sorted_names.begin(), sorted_names.end());
  if (std::adjacent_find(sorted_names.begin(), sorted_names.end()) !=
      sorted_names.end()) {
    pool = 1;
  }

  std::vector<ScenarioResult> out(names.size());
  if (pool <= 1) {
    for (usize i = 0; i < names.size(); ++i) {
      out[i] = run(names[i]);
    }
    return out;
  }
  // Scenarios are independent (each builds its own publisher, engine
  // and workload; run() is thread-safe), so a claim cursor over the
  // name list is all the scheduling needed. Results land at their list
  // index, keeping the report deterministic regardless of completion
  // order.
  std::atomic<usize> next{0};
  std::vector<std::thread> threads;
  threads.reserve(pool);
  for (usize t = 0; t < pool; ++t) {
    threads.emplace_back([&] {
      while (true) {
        const usize i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= names.size()) break;
        out[i] = run(names[i]);
      }
    });
  }
  for (auto& t : threads) t.join();
  return out;
}

std::vector<ScenarioResult> ScenarioRunner::run_all() {
  std::vector<std::string> names;
  names.reserve(catalog().size());
  for (const ScenarioSpec& s : catalog()) {
    names.push_back(s.name);
  }
  return run_many(names);
}

bool all_ok(const std::vector<ScenarioResult>& results) {
  return std::all_of(results.begin(), results.end(),
                     [](const ScenarioResult& r) { return r.ok(); });
}

void write_json_report(std::ostream& os, const ScenarioOptions& opts,
                       const std::vector<ScenarioResult>& results) {
  JsonWriter j(os);
  j.begin_object();
  j.key("schema").value("pclass-scenarios-v1");
  const auto& build = common::build_info();
  j.key("meta").begin_object();
  j.key("build").begin_object();
  j.key("version").value(build.version);
  j.key("git_sha").value(build.git_sha);
  j.key("compiler").value(build.compiler);
  j.key("build_type").value(build.build_type);
  j.end_object();
  j.end_object();
  j.key("options").begin_object();
  j.key("workers").value(opts.workers);
  j.key("batch_size").value(opts.batch_size);
  j.key("flow_cache_depth").value(opts.flow_cache_depth);
  j.key("scale").value(opts.scale);
  j.key("seed").value(u64{opts.seed});
  j.key("ip_algorithm").value(std::string(to_string(opts.ip_algorithm)));
  j.key("batch_mode").value(std::string(to_string(opts.batch_mode)));
  j.key("memo_persistent").value(opts.memo_persistent);
  j.key("memo_ways").value(opts.memo_ways);
  j.key("path_policy").value(std::string(to_string(opts.path_policy)));
  j.key("parallel").value(opts.parallel);
  j.key("max_workers").value(opts.max_workers);
  j.key("stats_interval_ms").value(u64{opts.stats_interval_ms});
  j.key("shards").value(opts.shards);
  j.key("shard_mode").value(std::string(to_string(opts.shard_mode)));
  j.key("steer_symmetric").value(opts.steer_symmetric);
  j.key("steer_hash").value("mix64-5tuple");
  j.key("fault_plan").value(opts.fault_plan);
  j.end_object();
  j.key("scenarios").begin_array();
  for (const ScenarioResult& r : results) {
    j.begin_object();
    j.key("name").value(r.name);
    j.key("description").value(r.description);
    j.key("ok").value(r.ok());
    j.key("rules").value(r.rules);
    j.key("trace_packets").value(r.trace_packets);
    j.key("packets_processed").value(r.packets_processed);
    j.key("matched").value(r.matched);
    j.key("wall_seconds").value(r.wall_seconds);
    j.key("throughput_mpps").value(r.mpps);
    j.key("lookup_cycles").begin_object();
    j.key("mean").value(r.mean_cycles);
    j.key("p50").value(r.p50_cycles);
    j.key("p99").value(r.p99_cycles);
    j.key("max").value(r.max_cycles);
    j.end_object();
    j.key("cache_hit_rate").value(r.cache_hit_rate);
    j.key("memory_accesses").value(r.memory_accesses);
    j.key("probe_memo_hits").value(r.probe_memo_hits);
    j.key("probe_memo_invalidations").value(r.probe_memo_invalidations);
    j.key("probe_memo_conflict_evictions")
        .value(r.probe_memo_conflict_evictions);
    j.key("controller").begin_object();
    j.key("scalar_loop_batches").value(r.path_scalar_loop_batches);
    j.key("phase2_batches").value(r.path_phase2_batches);
    j.key("phase2_memo_batches").value(r.path_phase2_memo_batches);
    j.key("cost_model").begin_object();
    for (usize p = 0; p < core::kNumBatchPaths; ++p) {
      const auto path = static_cast<core::BatchPath>(p);
      std::string key = to_string(path);  // e.g. "scalar-loop"
      for (char& c : key) {
        if (c == '-' || c == '+') c = '_';
      }
      j.key(key).begin_object();
      j.key("ns_per_packet").value(r.controller_models[p].ns_per_packet);
      j.key("ns_per_distinct_key")
          .value(r.controller_models[p].ns_per_distinct_key);
      j.end_object();
    }
    j.end_object();
    j.end_object();
    j.key("snapshot").begin_object();
    j.key("min_version").value(r.snapshot_min_version);
    j.key("max_version").value(r.snapshot_max_version);
    j.key("lag").value(r.snapshot_lag);
    j.key("monotonic").value(r.versions_monotonic);
    j.end_object();
    j.key("updates").begin_object();
    j.key("applied").value(r.updates_applied);
    j.key("per_second").value(r.updates_per_sec);
    j.key("grace_spins").value(r.grace_spins);
    j.end_object();
    j.key("oracle").begin_object();
    j.key("checked").value(r.oracle_checked);
    j.key("mismatches").value(r.oracle_mismatches);
    j.end_object();
    j.key("fault").begin_object();
    j.key("plan").value(r.fault_plan);
    j.key("worker_restarts").value(r.worker_restarts);
    j.key("stall_detections").value(r.stall_detections);
    j.key("shards_reassigned").value(r.shards_reassigned);
    j.key("workers_failed").value(r.workers_failed);
    j.key("injected").begin_object();
    j.key("worker_throws").value(r.injected_worker_throws);
    j.key("worker_stalls").value(r.injected_worker_stalls);
    j.key("publish_failures").value(r.injected_publish_failures);
    j.key("conn_drops").value(r.injected_conn_drops);
    j.end_object();
    j.end_object();
    j.key("conservation").begin_object();
    j.key("checked").value(r.conservation_checked);
    j.key("offered").value(r.offered_packets);
    j.key("delivered").value(r.delivered_packets);
    j.key("shed").value(r.shed_packets);
    j.key("lost_in_flight").value(r.lost_packets);
    j.key("conserved").value(r.conserved);
    j.end_object();
    j.key("telemetry").begin_object();
    j.key("trace_events_dropped").value(r.trace_events_dropped);
    j.key("trace_events_truncated").value(r.trace_events_truncated);
    j.key("update_visibility").begin_object();
    j.key("samples").value(r.update_visibility.samples);
    j.key("mean_ns").value(r.update_visibility.mean_ns);
    j.key("max_ns").value(r.update_visibility.max_ns);
    j.end_object();
    j.key("timeseries").begin_array();
    for (const telemetry::StatsSample& s : r.timeseries) {
      j.begin_object();
      j.key("t_ns").value(s.t_ns);
      j.key("interval_ns").value(s.interval_ns);
      j.key("packets").value(s.packets);
      j.key("batches").value(s.batches);
      j.key("mpps").value(s.mpps);
      j.key("cache_hits").value(s.cache_hits);
      j.key("classifier_lookups").value(s.classifier_lookups);
      j.key("probe_memo_hits").value(s.probe_memo_hits);
      j.key("memory_accesses").value(s.memory_accesses);
      j.key("p50_cycles").value(s.p50_cycles);
      j.key("p99_cycles").value(s.p99_cycles);
      j.key("min_version").value(s.min_version);
      j.key("max_version").value(s.max_version);
      j.key("update_visibility_samples").value(s.update_visibility_samples);
      j.key("update_visibility_mean_ns").value(s.update_visibility_mean_ns);
      j.end_object();
    }
    j.end_array();
    j.end_object();
    j.key("shard_mode_effective").value(r.shard_mode_effective);
    j.key("shards").begin_array();
    for (const dataplane::WorkerReport& s : r.shard_reports) {
      j.begin_object();
      j.key("shard").value(s.worker);
      j.key("batches").value(s.batches);
      j.key("packets").value(s.packets);
      j.key("matched").value(s.matched);
      j.key("dropped").value(s.dropped);
      j.key("parse_errors").value(s.parse_errors);
      j.key("cache_hits").value(s.cache_hits);
      j.key("cache_misses").value(s.cache_misses);
      j.key("classifier_lookups").value(s.classifier_lookups);
      j.key("memory_accesses").value(s.memory_accesses);
      j.key("probe_memo_hits").value(s.probe_memo_hits);
      j.key("min_version").value(s.min_version);
      j.key("max_version").value(s.max_version);
      j.key("p99_cycles").value(s.latency.percentile(99));
      j.end_object();
    }
    j.end_array();
    j.key("errors").begin_array();
    for (const std::string& e : r.worker_errors) {
      j.value(e);
    }
    j.end_array();
    j.key("error").value(r.error);
    j.end_object();
  }
  j.end_array();
  j.key("all_ok").value(all_ok(results));
  j.end_object();
  os << "\n";
}

}  // namespace pclass::workload
