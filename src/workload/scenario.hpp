/// \file scenario.hpp
/// The scenario catalog and runner: named (ruleset, traffic, churn)
/// combinations driven through the dataplane Engine with a
/// machine-readable result per scenario.
///
/// Every scenario is oracle-verified: each distinct header the engine
/// classified is re-classified against the published RuleProgram
/// snapshot and compared with baseline::LinearSearch ground truth
/// (CrossProduct combine mode, so agreement must be exact). A scenario
/// with any mismatch, worker error or non-monotonic snapshot version
/// reports !ok(), which the pclass_scenario tool turns into a nonzero
/// exit for CI.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/path_controller.hpp"
#include "dataplane/flow_steer.hpp"
#include "dataplane/stats.hpp"
#include "net/packet_batch.hpp"
#include "telemetry/sample.hpp"
#include "telemetry/trace_ring.hpp"

namespace pclass::dataplane {
class WorkerBudget;
}

namespace pclass::workload {

/// Engine geometry and scaling knobs shared by all scenarios.
struct ScenarioOptions {
  usize workers = 4;
  usize batch_size = net::kDefaultBatchCapacity;
  u32 flow_cache_depth = 4096;
  /// Multiplier on ruleset/trace sizes (CI smoke runs ~0.15).
  double scale = 1.0;
  u64 seed = 2026;
  /// IP lookup backend for every scenario's device (--ip-alg): the
  /// per-family win/loss axis of the catalog (MBT/BST trie family vs
  /// the incremental-update RVH).
  core::IpAlgorithm ip_algorithm = core::IpAlgorithm::kMbt;
  /// classify_batch() strategy for every scenario's device (the
  /// phase-2 vs scalar A/B knob; modeled results are identical, host
  /// throughput is not).
  core::BatchMode batch_mode = core::BatchMode::kPhase2;
  /// Probe-memo lifetime A/B: true (default) = snapshot-keyed memo
  /// persisting across batches; false = the PR-3 per-batch reset.
  /// Byte-identical workloads + this knob = the cross-batch hit-rate
  /// comparison CI uploads.
  bool memo_persistent = true;
  /// Probe-memo associativity A/B: 2 (default) = two tagged ways per
  /// set with LRU, 1 = the direct-mapped reference (--memo-ways).
  u32 memo_ways = 2;
  /// Phase-2 execution-path policy. kAdaptive (default) lets each
  /// worker's cost-model controller pick per batch; kForcePhase2 pins
  /// the batch engine (+memo), making memo hit counts deterministic —
  /// what the CI persistent-vs-per-batch A/B pins so the hit-rate gain
  /// reflects the memo lifetime, not controller choices.
  core::PathPolicy path_policy = core::PathPolicy::kAdaptive;
  /// Scenarios run concurrently by run_all()/run_many() (results are
  /// independent; report order stays catalog order). 0 = auto: as many
  /// as the worker budget can serve at full width (max_workers /
  /// workers-per-scenario); 1 = sequential.
  usize parallel = 0;
  /// Capacity of the runner's shared dataplane::WorkerBudget: total
  /// engine worker threads across *all* concurrently-running scenarios
  /// (--max-workers). 0 = auto (the hardware thread count), so a
  /// parallel catalog run can never oversubscribe the host with
  /// scenarios x workers threads.
  usize max_workers = 0;
  /// When non-empty, write each scenario's synthesized workload to
  /// DIR/<scenario>.rules.pcr1 + DIR/<scenario>.trace.pct1 (versioned
  /// binio formats, byte-stable across hosts).
  std::string save_workloads_dir;
  /// When non-empty, load workloads from that directory instead of
  /// re-synthesizing — cross-PR perf comparisons become byte-identical
  /// instead of merely seed-identical.
  std::string load_workloads_dir;
  /// Run each scenario's engine with a background StatsSampler at this
  /// interval (--stats-interval-ms); its delta series lands in the
  /// report's `timeseries` array. 0 = off.
  u64 stats_interval_ms = 0;
  /// Keep per-batch TraceRing events in ScenarioResult::trace_events
  /// (--trace-out sets this; the events feed the chrome://tracing
  /// export, they are not embedded in the JSON report).
  bool collect_trace = false;
  /// RSS-style shard count (--shards). 0 = unsharded (the legacy
  /// geometry: every worker thread drains the shared pool).
  usize shards = 0;
  /// Replica: steered per-flow slices, full ruleset per shard.
  /// Partition: full stream per shard, disjoint rule subsets + priority
  /// combiner — finite scenarios only; the loop-mode update-storm
  /// scenarios fall back to unsharded under partition (--shard-mode).
  dataplane::ShardMode shard_mode = dataplane::ShardMode::kReplica;
  /// Symmetric steering hash: both flow directions land on one shard.
  bool steer_symmetric = false;
  /// Fault-injection plan for the chaos scenario (--fault-plan), in
  /// fault::FaultPlan spec grammar. Empty = the chaos scenario's
  /// built-in seeded plan (one worker killed past its retry budget,
  /// one stall, one failed publisher apply); other scenarios ignore it.
  std::string fault_plan;
};

/// One scenario's measurement + verification outcome.
struct ScenarioResult {
  std::string name;
  std::string description;

  // Workload shape.
  usize rules = 0;
  usize trace_packets = 0;

  // Engine measurement.
  u64 packets_processed = 0;
  u64 matched = 0;
  double wall_seconds = 0;
  double mpps = 0;
  double mean_cycles = 0;
  u64 p50_cycles = 0;
  u64 p99_cycles = 0;
  u64 max_cycles = 0;
  double cache_hit_rate = 0;
  u64 memory_accesses = 0;  ///< per-worker recorder totals, summed
  u64 probe_memo_hits = 0;  ///< combiner probes served by the memo
  /// Persistent-memo entry drops, summed across workers (initial binds
  /// plus one per snapshot swap a worker classified across).
  u64 probe_memo_invalidations = 0;
  /// Memo replacements that evicted a live entry of another key, summed
  /// across workers (the --memo-ways 1-vs-2 A/B observable).
  u64 probe_memo_conflict_evictions = 0;
  /// Path-controller choices, summed across workers: batches served by
  /// the scalar loop / batch engine / batch engine + memo.
  u64 path_scalar_loop_batches = 0;
  u64 path_phase2_batches = 0;
  u64 path_phase2_memo_batches = 0;
  /// The controller's fitted per-path cost model coefficients
  /// (ns = ns_per_packet * packets + ns_per_distinct_key * distinct),
  /// averaged over the workers that produced timed observations for the
  /// path (all-zero under forced policies).
  std::array<core::PathCostModel, core::kNumBatchPaths> controller_models{};

  // Snapshot consistency.
  u64 snapshot_min_version = 0;
  u64 snapshot_max_version = 0;
  u64 snapshot_lag = 0;  ///< max - min version observed across workers
  bool versions_monotonic = true;

  // Update churn (update-storm scenario; zero elsewhere).
  u64 updates_applied = 0;
  double updates_per_sec = 0;
  u64 grace_spins = 0;

  // Oracle verification vs baseline::LinearSearch.
  usize oracle_checked = 0;
  usize oracle_mismatches = 0;

  // Telemetry (PR 6): the sampler's interval series, ring-drop
  // accounting, update-visibility latency and the raw span events the
  // chrome trace export consumes.
  std::vector<telemetry::StatsSample> timeseries;
  std::vector<telemetry::TraceEvent> trace_events;
  u64 trace_events_dropped = 0;
  /// Spans measured but not retained (per-engine trace_keep_limit).
  u64 trace_events_truncated = 0;
  dataplane::UpdateVisibility update_visibility;
  /// Every worker error, surfaced as the report's `errors` array with
  /// worker index + restart count ("worker N [restarts=R, healed|
  /// permanent]: what"); r.error carries the first *fatal* one for
  /// ok() — healed deaths (supervisor restarted the worker and the run
  /// concluded) are informational.
  std::vector<std::string> worker_errors;

  // Robustness (PR 9): supervisor + fault accounting (zero outside the
  // chaos scenario unless a worker actually died) and the conservation
  // ledger the engine computes for every finite run.
  std::string fault_plan;  ///< round-tripped plan actually injected
  u64 worker_restarts = 0;
  u64 stall_detections = 0;
  u64 shards_reassigned = 0;
  u64 workers_failed = 0;
  u64 injected_worker_throws = 0;
  u64 injected_worker_stalls = 0;
  u64 injected_publish_failures = 0;
  u64 injected_conn_drops = 0;
  bool conservation_checked = false;
  u64 offered_packets = 0;
  u64 delivered_packets = 0;
  u64 shed_packets = 0;    ///< offered but never claimed (owner died)
  u64 lost_packets = 0;    ///< claimed but in flight inside a dead worker
  bool conserved = true;   ///< delivered + shed + lost == offered
  /// Raw per-shard rows (EngineReport::shards; empty when the scenario
  /// ran unsharded) — the report's `shards` array. Replica invariant:
  /// per-counter sums equal the engine totals above.
  std::vector<dataplane::WorkerReport> shard_reports;
  /// Shard geometry the scenario *actually* ran with ("unsharded",
  /// "replica" or "partition") — distinct from the requested options
  /// when a loop-mode scenario cannot honor partition sharding and
  /// falls back to unsharded; the report surfaces the fallback instead
  /// of echoing the request.
  std::string shard_mode_effective = "unsharded";

  std::string error;  ///< non-empty when the scenario failed to run

  [[nodiscard]] bool ok() const {
    return error.empty() && oracle_mismatches == 0 && versions_monotonic;
  }
};

/// Catalog entry: a name the CLI accepts plus a one-line description.
struct ScenarioSpec {
  std::string name;
  std::string description;
};

/// Runs scenarios from the built-in catalog.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioOptions opts = {});
  ~ScenarioRunner();

  /// The built-in catalog (stable order; >= 6 scenarios).
  [[nodiscard]] static const std::vector<ScenarioSpec>& catalog();

  /// Run one scenario by name. Never throws for scenario-internal
  /// failures — those land in result.error; unknown names throw
  /// ConfigError. Thread-safe: scenarios share nothing but the
  /// (read-only) options, which is what run_many() exploits.
  [[nodiscard]] ScenarioResult run(const std::string& name);

  /// Run a list of scenarios on a small thread pool
  /// (ScenarioOptions::parallel), preserving the list's order in the
  /// results. Unknown names throw ConfigError before anything runs.
  [[nodiscard]] std::vector<ScenarioResult> run_many(
      const std::vector<std::string>& names);

  /// Run the whole catalog; results in catalog order.
  [[nodiscard]] std::vector<ScenarioResult> run_all();

  [[nodiscard]] const ScenarioOptions& options() const { return opts_; }

  /// The shared worker budget every scenario's engine draws from
  /// (capacity = resolved max_workers). Its peak_in_use() is the
  /// high-water mark of concurrent engine worker threads across the
  /// runner's lifetime — what the cap tests assert on.
  [[nodiscard]] dataplane::WorkerBudget& budget() { return *budget_; }

 private:
  ScenarioOptions opts_;
  std::unique_ptr<dataplane::WorkerBudget> budget_;
};

/// Emit the single JSON report CI archives (schema
/// "pclass-scenarios-v1"): options, per-scenario results and the
/// aggregate all_ok verdict.
void write_json_report(std::ostream& os, const ScenarioOptions& opts,
                       const std::vector<ScenarioResult>& results);

[[nodiscard]] bool all_ok(const std::vector<ScenarioResult>& results);

}  // namespace pclass::workload
