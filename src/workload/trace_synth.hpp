/// \file trace_synth.hpp
/// Flow-structured and adversarial trace synthesis.
///
/// TraceSynthesizer materializes a population of *flows* (concrete
/// headers derived from rules, so match structure is realistic), then
/// emits packets with Zipf flow popularity and temporal locality
/// (bursts) — the traffic shape flow caches and batching live on.
///
/// The adversarial generators produce the opposite: traffic engineered
/// to defeat specific mechanisms of the dataplane —
///   * cache-thrash: more concurrently-active flows than the flow cache
///     holds, with maximal repeat distance (every lookup misses);
///   * trie-depth: headers that walk the longest prefixes in the set,
///     maximizing per-lookup trie/BST work (worst-case p99 cycles);
///   * update-storm: a schedule of southbound add/delete pairs to stream
///     through the RuleProgramPublisher while workers classify.
#pragma once

#include <vector>

#include "common/random.hpp"
#include "net/trace.hpp"
#include "ruleset/rule_set.hpp"
#include "sdn/flow_mod.hpp"
#include "workload/profile.hpp"

namespace pclass::workload {

/// Zipf(s) sampler over ranks 0..n-1 (rank 0 most popular). Exact
/// inverse-CDF sampling over a precomputed table — deterministic and
/// fast enough for the populations used here (<= a few hundred K).
class ZipfSampler {
 public:
  /// \throws ConfigError when n == 0 or s < 0.
  ZipfSampler(usize n, double s);

  [[nodiscard]] usize draw(Rng& rng) const;
  [[nodiscard]] usize size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Flow-structured trace generation per a TraceProfile.
class TraceSynthesizer {
 public:
  /// \throws ConfigError when \p rules is empty or the profile invalid.
  TraceSynthesizer(const ruleset::RuleSet& rules, TraceProfile profile);

  /// Generate the trace. Rule-derived entries record their origin rule.
  [[nodiscard]] net::Trace generate();

 private:
  const ruleset::RuleSet& rules_;
  TraceProfile profile_;
  Rng rng_;
};

/// Flow-cache adversary: cycle \p distinct_flows unique flows (derived
/// from rules) in maximal-repeat-distance order, so any cache smaller
/// than the flow count misses on (almost) every packet.
[[nodiscard]] net::Trace make_cache_thrash_trace(
    const ruleset::RuleSet& rules, usize packets, usize distinct_flows,
    u64 seed);

/// Lookup-depth adversary: headers targeting the longest source and
/// destination prefixes in the set (deepest trie/BST walks), with ports
/// varied so the flow cache cannot absorb the cost.
[[nodiscard]] net::Trace make_trie_depth_trace(const ruleset::RuleSet& rules,
                                               usize packets, u64 seed);

/// An update-storm schedule for the RCU publisher: \p updates southbound
/// messages in add/delete pairs over a churn set of synthetic rules
/// disjoint from \p base_rules (ids start at \p first_id).
///
/// \p site selects the second octet of the churn rules' 10.site.x.x
/// source space. Concurrent storms (the multi-writer scenario) use
/// distinct sites *and* distinct id windows so their schedules are
/// fully independent: no writer ever adds a match part another writer's
/// live rule occupies, which would reject the add mid-storm.
struct UpdateStorm {
  std::vector<sdn::Message> schedule;
  usize add_count = 0;
  usize delete_count = 0;
};

[[nodiscard]] UpdateStorm make_update_storm(const ruleset::RuleSet& base_rules,
                                            usize updates, u32 first_id,
                                            u64 seed, u32 site = 0);

}  // namespace pclass::workload
