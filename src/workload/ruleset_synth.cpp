#include "workload/ruleset_synth.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "net/packet.hpp"

namespace pclass::workload {

using ruleset::IpPrefix;
using ruleset::PortRange;
using ruleset::ProtoMatch;
using ruleset::Rule;
using ruleset::RuleSet;

namespace {

/// Skewed pool index: u^ceil(skew) concentrates mass near index 0
/// (pow-free for determinism across libm implementations).
usize skewed_index(Rng& rng, usize pool_size, double skew) {
  const double u = rng.uniform();
  double x = u;
  for (double s = 1.0; s < skew; s += 1.0) x *= u;
  const auto idx = static_cast<usize>(x * static_cast<double>(pool_size));
  return std::min(idx, pool_size - 1);
}

/// IP prefix pool with two-level site/subnet locality plus a containment
/// index (which pool members nest inside which) for overlap injection.
struct IpPool {
  std::vector<IpPrefix> prefixes;
  std::map<std::pair<u32, u8>, u32> index_of;
  std::vector<std::vector<u32>> inside;  ///< strictly-contained members

  [[nodiscard]] const IpPrefix& at(usize i) const { return prefixes[i]; }
  [[nodiscard]] usize size() const { return prefixes.size(); }
};

bool prefix_contains(const IpPrefix& outer, const IpPrefix& inner) {
  if (outer.length > inner.length) return false;
  if (outer.length == 0) return true;
  return ((outer.value ^ inner.value) >> (32 - outer.length)) == 0;
}

IpPool make_ip_pool(usize count, const PrefixLengthMix& mix,
                    usize subnets_per_site, Rng& rng) {
  IpPool pool;
  pool.prefixes.reserve(count);
  auto add = [&](IpPrefix p) {
    if (pool.index_of
            .emplace(std::pair<u32, u8>{p.value, p.length},
                     static_cast<u32>(pool.prefixes.size()))
            .second) {
      pool.prefixes.push_back(p);
    }
  };

  add(IpPrefix{});  // the wildcard is always a (popular) member

  // Site blocks (/16) each carved into a few /24 subnets: the two-level
  // locality that gives tries shared deep paths and rules natural
  // containment chains.
  const usize n_sites = std::max<usize>(4, count / 400);
  std::vector<u32> subnets;
  subnets.reserve(n_sites * subnets_per_site);
  for (usize i = 0; i < n_sites; ++i) {
    const u32 site = static_cast<u32>(rng.next()) & 0xFFFF0000u;
    for (usize s = 0; s < subnets_per_site; ++s) {
      subnets.push_back(site | ((static_cast<u32>(rng.next()) & 0xFFu) << 8));
    }
  }

  usize guard = 0;
  while (pool.prefixes.size() < count) {
    if (++guard > count * 200 + 10'000) {
      throw InternalError(
          "workload::make_ip_pool: cannot fill pool (length mix too "
          "narrow for requested size)");
    }
    const u8 len = mix.draw(rng);
    if (len == 0) continue;  // wildcard already present
    const u32 subnet = subnets[rng.below(subnets.size())];
    u32 value;
    if (len > 24) {
      value = subnet | (static_cast<u32>(rng.next()) & 0xFFu);
    } else if (len > 16) {
      value = subnet;
    } else {
      value = subnet & 0xFFFF0000u;
    }
    IpPrefix cand = IpPrefix::make(value, len);
    if (len <= 16 &&
        pool.index_of.contains({cand.value, cand.length})) {
      // Short-prefix slots saturate fast (few sites); spill the rest over
      // fresh blocks so the pool reaches its calibrated size.
      cand = IpPrefix::make(static_cast<u32>(rng.next()), len);
    }
    add(cand);
  }

  // Containment index (pool sizes are a few thousand at most; the n^2
  // scan runs once per synthesis).
  pool.inside.resize(pool.prefixes.size());
  for (u32 i = 0; i < pool.prefixes.size(); ++i) {
    for (u32 j = 0; j < pool.prefixes.size(); ++j) {
      if (i != j && prefix_contains(pool.prefixes[i], pool.prefixes[j])) {
        pool.inside[i].push_back(j);
      }
    }
  }
  return pool;
}

/// Port pool split by match class so draws can follow the WC/EQ/RANGE mix.
struct PortPool {
  std::vector<PortRange> all;      ///< every member (unique)
  std::vector<u32> exact_members;  ///< indices into all
  std::vector<u32> range_members;  ///< indices into all (proper ranges)
  bool has_wildcard = false;

  [[nodiscard]] usize size() const { return all.size(); }
};

PortPool make_port_pool(usize count, const PortClassMix& mix, Rng& rng) {
  static constexpr u16 kWellKnown[] = {
      80,   443,  53,   25,   110,  143,  21,   22,   23,    161,
      389,  636,  993,  995,  8080, 8443, 3128, 3306, 5432,  1433,
      123,  137,  139,  445,  514,  587,  631,  873,  990,   1080,
      1521, 2049, 2181, 3389, 5060, 5900, 6379, 8000, 8888,  9090,
      9200, 1723, 500,  4500, 179,  520,  69,   7,    11211, 27017};
  static constexpr std::pair<u16, u16> kClassicRanges[] = {
      {1024, 65535}, {0, 1023},      {6000, 6063},   {2300, 2400},
      {49152, 65535}, {32768, 61000}, {5000, 5100},  {8001, 8100},
      {20, 21},      {67, 68},       {135, 140},     {6660, 6669},
      {1812, 1813},  {2000, 2100},   {10000, 10100}, {161, 162}};

  PortPool pool;
  std::set<std::pair<u16, u16>> seen;
  auto add = [&](PortRange r) {
    if (!seen.insert({r.lo, r.hi}).second) return;
    const auto idx = static_cast<u32>(pool.all.size());
    pool.all.push_back(r);
    if (r.is_wildcard()) {
      pool.has_wildcard = true;
    } else if (r.is_exact()) {
      pool.exact_members.push_back(idx);
    } else {
      pool.range_members.push_back(idx);
    }
  };

  add(PortRange::wildcard());
  if (count <= 1) return pool;  // wildcard-only dimension (acl1 sport)

  // Split the remaining slots between exacts and ranges per the mix.
  const double eq_w = std::max(mix.eq, 0.0);
  const double range_w = std::max(mix.range, 0.0);
  const double total = eq_w + range_w;
  const usize want_ranges =
      total <= 0 ? (count - 1) / 4
                 : static_cast<usize>(static_cast<double>(count - 1) *
                                      (range_w / total));
  usize exact_i = 0, range_i = 0, ranges_added = 0;
  usize guard = 0;
  while (pool.all.size() < count) {
    if (++guard > count * 64 + 10'000) {
      throw InternalError("workload::make_port_pool: cannot fill pool");
    }
    const bool want_range = ranges_added < want_ranges;
    if (want_range) {
      const usize before = pool.all.size();
      if (range_i < std::size(kClassicRanges)) {
        const auto [lo, hi] = kClassicRanges[range_i++];
        add(PortRange::make(lo, hi));
      } else {
        const u16 lo = static_cast<u16>(rng.between(1, 60000));
        const u16 hi = static_cast<u16>(
            std::min<u64>(65535, lo + rng.between(1, 2000)));
        add(PortRange::make(lo, hi));
      }
      if (pool.all.size() > before) ++ranges_added;
    } else if (exact_i < std::size(kWellKnown)) {
      add(PortRange::exact(kWellKnown[exact_i++]));
    } else {
      add(PortRange::exact(static_cast<u16>(rng.between(1, 65535))));
    }
  }
  return pool;
}

/// Draw one port match following the class mix; falls back across
/// classes when a sub-pool is empty.
PortRange draw_port(const PortPool& pool, const PortClassMix& mix,
                    double skew, Rng& rng) {
  if (pool.size() == 1) return pool.all.front();
  const double wc_w = std::max(mix.wc, 0.0);
  const double eq_w = std::max(mix.eq, 0.0);
  const double range_w = std::max(mix.range, 0.0);
  const double total = wc_w + eq_w + range_w;
  double u = total <= 0 ? 0.0 : rng.uniform() * total;
  if (pool.has_wildcard && u < wc_w) {
    return PortRange::wildcard();
  }
  u -= wc_w;
  if (u < eq_w && !pool.exact_members.empty()) {
    const usize k = skewed_index(rng, pool.exact_members.size(), skew);
    return pool.all[pool.exact_members[k]];
  }
  if (!pool.range_members.empty()) {
    const usize k = skewed_index(rng, pool.range_members.size(), skew);
    return pool.all[pool.range_members[k]];
  }
  if (!pool.exact_members.empty()) {
    const usize k = skewed_index(rng, pool.exact_members.size(), skew);
    return pool.all[pool.exact_members[k]];
  }
  return PortRange::wildcard();
}

ProtoMatch draw_proto(const std::vector<ProtoWeight>& protos, Rng& rng) {
  double total = 0;
  for (const ProtoWeight& p : protos) total += std::max(p.weight, 0.0);
  if (total <= 0) return ProtoMatch::any();
  double u = rng.uniform() * total;
  for (const ProtoWeight& p : protos) {
    const double w = std::max(p.weight, 0.0);
    if (u < w) {
      return p.wildcard ? ProtoMatch::any() : ProtoMatch::exact(p.value);
    }
    u -= w;
  }
  return ProtoMatch::any();
}

}  // namespace

bool rules_overlap(const Rule& a, const Rule& b) {
  auto prefixes_intersect = [](const IpPrefix& x, const IpPrefix& y) {
    const u8 len = std::min(x.length, y.length);
    if (len == 0) return true;
    return ((x.value ^ y.value) >> (32 - len)) == 0;
  };
  auto ranges_intersect = [](const PortRange& x, const PortRange& y) {
    return x.lo <= y.hi && y.lo <= x.hi;
  };
  auto protos_intersect = [](const ProtoMatch& x, const ProtoMatch& y) {
    return x.wildcard || y.wildcard || x.value == y.value;
  };
  return prefixes_intersect(a.src_ip, b.src_ip) &&
         prefixes_intersect(a.dst_ip, b.dst_ip) &&
         ranges_intersect(a.src_port, b.src_port) &&
         ranges_intersect(a.dst_port, b.dst_port) &&
         protos_intersect(a.proto, b.proto);
}

double measured_overlap_fraction(const RuleSet& rules, usize sample_limit) {
  if (rules.empty()) return 0.0;
  const usize n = sample_limit == 0
                      ? rules.size()
                      : std::min(rules.size(), sample_limit);
  usize overlapping = 0;
  for (usize i = 1; i < n; ++i) {
    for (usize j = 0; j < i; ++j) {
      if (rules_overlap(rules[i], rules[j])) {
        ++overlapping;
        break;
      }
    }
  }
  return static_cast<double>(overlapping) / static_cast<double>(n);
}

net::FiveTuple header_inside(const Rule& rule, Rng& rng) {
  net::FiveTuple h;
  auto draw_ip = [&](const IpPrefix& p) {
    if (p.length >= 32) return p.value;
    const u32 host_bits = 32 - p.length;
    const u32 mask =
        host_bits == 32 ? 0xFFFFFFFFu : ((u32{1} << host_bits) - 1);
    return p.value | (static_cast<u32>(rng.next()) & mask);
  };
  h.src_ip = draw_ip(rule.src_ip);
  h.dst_ip = draw_ip(rule.dst_ip);
  h.src_port = static_cast<u16>(rng.between(rule.src_port.lo,
                                            rule.src_port.hi));
  h.dst_port = static_cast<u16>(rng.between(rule.dst_port.lo,
                                            rule.dst_port.hi));
  if (rule.proto.wildcard) {
    static constexpr u8 kCommon[] = {net::kProtoTcp, net::kProtoUdp,
                                     net::kProtoIcmp};
    h.protocol = kCommon[rng.below(std::size(kCommon))];
  } else {
    h.protocol = rule.proto.value;
  }
  return h;
}

RuleSet synthesize(const RulesetProfile& profile) {
  profile.validate();
  RulesetProfile p = profile;
  if (p.protos.empty()) {
    p.protos = RulesetProfile::default_protos(0.08);
  }
  Rng rng(p.seed ^ mix64((u64{p.rules} << 20) ^ p.src_ip_pool ^
                         (u64{p.dst_ip_pool} << 40)));

  const IpPool src_pool =
      make_ip_pool(p.src_ip_pool, p.src_len, p.subnets_per_site, rng);
  const IpPool dst_pool =
      make_ip_pool(p.dst_ip_pool, p.dst_len, p.subnets_per_site, rng);
  const PortPool sport_pool = make_port_pool(p.src_port_pool, p.sport, rng);
  const PortPool dport_pool = make_port_pool(p.dst_port_pool, p.dport, rng);

  // Correlated endpoint pairs: a small pool of (src, dst) index pairs
  // rules keep coming back to.
  std::vector<std::pair<u32, u32>> pairs;
  pairs.reserve(p.pair_pool);
  for (usize i = 0; i < p.pair_pool; ++i) {
    pairs.emplace_back(
        static_cast<u32>(skewed_index(rng, src_pool.size(), p.ip_skew)),
        static_cast<u32>(skewed_index(rng, dst_pool.size(), p.ip_skew)));
  }

  RuleSet out(p.name + "_" + std::to_string(p.rules) + "_synth");
  std::unordered_set<u64> seen;
  seen.reserve(p.rules * 2);
  auto try_add = [&](const Rule& r) {
    if (!seen.insert(ruleset::match_fingerprint(r)).second) return false;
    Rule copy = r;
    copy.id = RuleId{};  // fresh id (specializations copy the base rule)
    copy.priority = static_cast<Priority>(out.size());
    // Action tokens numerically equal to sdn::ActionSpec::output(n); the
    // workload layer stays independent of sdn but generated sets forward.
    copy.action =
        ruleset::Action{(u32{1} << 14) | static_cast<u32>(out.size() % 16)};
    out.add(copy);
    return true;
  };

  // Phase 1 — coverage warm-up: round-robin every pool so each
  // calibrated unique value appears in at least one rule.
  const usize coverage =
      std::max({src_pool.size(), dst_pool.size(), sport_pool.size(),
                dport_pool.size(), p.protos.size()});
  for (usize i = 0; i < coverage && out.size() < p.rules; ++i) {
    Rule r;
    r.src_ip = src_pool.at(i % src_pool.size());
    r.dst_ip = dst_pool.at(i % dst_pool.size());
    r.src_port = sport_pool.all[i % sport_pool.size()];
    r.dst_port = dport_pool.all[i % dport_pool.size()];
    const ProtoWeight& pw = p.protos[i % p.protos.size()];
    r.proto = pw.wildcard ? ProtoMatch::any() : ProtoMatch::exact(pw.value);
    try_add(r);
  }

  // Phase 2 — structured draws: overlap specializations, correlated
  // pairs, class-mixed ports, protocol correlations.
  usize guard = 0;
  const usize guard_limit = p.rules * 64 + 100'000;
  while (out.size() < p.rules) {
    if (++guard > guard_limit) break;  // systematic fill below
    Rule r;

    const bool specialize = !out.empty() && rng.chance(p.overlap_fraction);
    if (specialize) {
      // Specialize an earlier rule: nest the prefixes down the pool's
      // containment chains and/or narrow ports and protocol. The result
      // matches a sub-region of the base rule, so the pair overlaps.
      const Rule& base = out[rng.below(out.size())];
      r = base;
      bool narrowed = false;
      auto nest_ip = [&](const IpPool& pool, IpPrefix& field) {
        const auto it = pool.index_of.find({field.value, field.length});
        if (it == pool.index_of.end()) return;
        const auto& nested = pool.inside[it->second];
        if (nested.empty()) return;
        field = pool.at(nested[rng.below(nested.size())]);
        narrowed = true;
      };
      if (rng.chance(0.7)) nest_ip(src_pool, r.src_ip);
      if (rng.chance(0.7)) nest_ip(dst_pool, r.dst_ip);
      if (r.src_port.is_wildcard() && !sport_pool.exact_members.empty() &&
          rng.chance(0.5)) {
        const auto& em = sport_pool.exact_members;
        r.src_port = sport_pool.all[em[rng.below(em.size())]];
        narrowed = true;
      }
      if (r.dst_port.is_wildcard() && !dport_pool.exact_members.empty() &&
          (rng.chance(0.6) || !narrowed)) {
        const auto& em = dport_pool.exact_members;
        r.dst_port = dport_pool.all[em[rng.below(em.size())]];
        narrowed = true;
      }
      if (r.proto.wildcard && (rng.chance(0.5) || !narrowed)) {
        r.proto = ProtoMatch::exact(net::kProtoTcp);
        narrowed = true;
      }
      if (!narrowed) {
        // Base was already fully specific; fall through to a fresh draw.
        r = Rule{};
      } else {
        try_add(r);
        continue;
      }
    }

    if (rng.chance(p.pair_correlation) && !pairs.empty()) {
      const auto& [si, di] = pairs[rng.below(pairs.size())];
      r.src_ip = src_pool.at(si);
      r.dst_ip = dst_pool.at(di);
    } else {
      r.src_ip = src_pool.at(skewed_index(rng, src_pool.size(), p.ip_skew));
      r.dst_ip = dst_pool.at(skewed_index(rng, dst_pool.size(), p.ip_skew));
    }
    r.src_port = draw_port(sport_pool, p.sport, p.port_skew, rng);
    r.dst_port = draw_port(dport_pool, p.dport, p.port_skew, rng);
    r.proto = draw_proto(p.protos, rng);
    // Field correlations seen in real sets: ICMP rules carry wildcard
    // ports; exact well-known destination ports imply TCP-ish rules.
    if (r.proto.matches(net::kProtoIcmp) && !r.proto.wildcard) {
      r.src_port = PortRange::wildcard();
      r.dst_port = PortRange::wildcard();
    } else if (r.dst_port.is_exact() && !r.dst_port.is_wildcard() &&
               !r.proto.wildcard && rng.chance(0.8)) {
      r.proto = ProtoMatch::exact(net::kProtoTcp);
    }
    try_add(r);
  }

  // Phase 3 — systematic fill (pathological profiles only): enumerate
  // distinct (src, dst) combinations deterministically.
  for (usize k = 0; out.size() < p.rules; ++k) {
    if (k >= src_pool.size() * dst_pool.size()) {
      throw InternalError(
          "workload::synthesize: pool space exhausted before reaching "
          "target rule count");
    }
    Rule r;
    r.src_ip = src_pool.at(k % src_pool.size());
    r.dst_ip = dst_pool.at((k / src_pool.size()) % dst_pool.size());
    r.src_port = sport_pool.all[k % sport_pool.size()];
    r.dst_port = dport_pool.all[k % dport_pool.size()];
    const ProtoWeight& pw = p.protos[k % p.protos.size()];
    r.proto = pw.wildcard ? ProtoMatch::any() : ProtoMatch::exact(pw.value);
    try_add(r);
  }

  return out;
}

}  // namespace pclass::workload
