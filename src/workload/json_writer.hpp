/// \file json_writer.hpp
/// Minimal streaming JSON emitter for machine-readable reports
/// (BENCH_scenarios.json). No DOM, no dependencies; handles string
/// escaping, comma placement and locale-independent number formatting.
#pragma once

#include <cmath>
#include <cstdio>
#include <ostream>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace pclass::workload {

/// Streaming writer: begin_object()/key()/value()/end_object() etc.
/// Misuse (value without key inside an object, unbalanced end) throws
/// InternalError — report code is trusted, but fail loudly.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object() {
    prefix();
    os_ << '{';
    stack_.push_back({true, false});
    return *this;
  }
  JsonWriter& end_object() {
    pop(true);
    os_ << '}';
    return *this;
  }
  JsonWriter& begin_array() {
    prefix();
    os_ << '[';
    stack_.push_back({false, false});
    return *this;
  }
  JsonWriter& end_array() {
    pop(false);
    os_ << ']';
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    if (stack_.empty() || !stack_.back().object) {
      throw InternalError("JsonWriter: key() outside an object");
    }
    comma();
    write_string(k);
    os_ << ':';
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    prefix();
    write_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    prefix();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(u64 v) {
    prefix();
    os_ << v;
    return *this;
  }
  JsonWriter& value(i64 v) {
    prefix();
    os_ << v;
    return *this;
  }
  JsonWriter& value(u32 v) { return value(static_cast<u64>(v)); }
  JsonWriter& value(double v) {
    prefix();
    if (!std::isfinite(v)) {
      os_ << "null";  // JSON has no NaN/Inf
      return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    os_ << buf;
    return *this;
  }

  /// True once every container has been closed.
  [[nodiscard]] bool complete() const { return stack_.empty(); }

 private:
  struct Frame {
    bool object;
    bool has_items;
  };

  void comma() {
    if (!stack_.empty() && stack_.back().has_items) {
      os_ << ',';
    }
    if (!stack_.empty()) {
      stack_.back().has_items = true;
    }
  }

  /// Emitted before any value/container: a comma in arrays, nothing
  /// after a key (the key already placed the comma).
  void prefix() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!stack_.empty() && stack_.back().object) {
      throw InternalError("JsonWriter: value in object without key()");
    }
    comma();
  }

  void pop(bool object) {
    if (pending_key_ || stack_.empty() ||
        stack_.back().object != object) {
      throw InternalError("JsonWriter: unbalanced end");
    }
    stack_.pop_back();
  }

  void write_string(std::string_view s) {
    os_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\r': os_ << "\\r"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

}  // namespace pclass::workload
