/// \file stats.hpp
/// Rule-set structure analysis: the unique-field counts of Table II, the
/// per-segment label demand of the hardware, and the storage-saving
/// estimate behind the §III.C claim that avoiding rule-field repetition
/// cuts storage by more than 50 %.
#pragma once

#include <array>

#include "ruleset/rule_set.hpp"

namespace pclass::ruleset {

/// Unique-value counts per 5-tuple field (Table II rows) and per
/// architecture dimension (7 segment lookups), plus storage accounting.
struct RuleSetStats {
  usize rules = 0;

  // Table II: unique full-field values.
  usize unique_src_ip = 0;
  usize unique_dst_ip = 0;
  usize unique_src_port = 0;
  usize unique_dst_port = 0;
  usize unique_protocol = 0;

  // Unique per-dimension segment values (what the 13/7/2-bit labels must
  // actually cover).
  std::array<usize, kNumDimensions> unique_per_dimension{};

  // Storage model (§III.C, Table II discussion), three accountings:
  //  * replicated  — every rule stores its 5 field values verbatim;
  //  * unique_only — each unique field value stored exactly once (the
  //    paper's ">50 % reduction" reading of Table II);
  //  * labelled    — unique values once PLUS the per-rule 68-bit label
  //    record the architecture actually keeps in the Rule Filter.
  u64 field_bits_replicated = 0;
  u64 field_bits_unique_only = 0;
  u64 field_bits_labelled = 0;

  /// Fraction saved by the label method including per-rule label records.
  [[nodiscard]] double label_saving() const {
    if (field_bits_replicated == 0) return 0.0;
    return 1.0 - static_cast<double>(field_bits_labelled) /
                     static_cast<double>(field_bits_replicated);
  }

  /// Fraction saved counting only field storage (paper's Table II claim).
  [[nodiscard]] double unique_only_saving() const {
    if (field_bits_replicated == 0) return 0.0;
    return 1.0 - static_cast<double>(field_bits_unique_only) /
                     static_cast<double>(field_bits_replicated);
  }

  [[nodiscard]] static RuleSetStats analyze(const RuleSet& rules);
};

}  // namespace pclass::ruleset
