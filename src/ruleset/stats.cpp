#include "ruleset/stats.hpp"

#include <set>

namespace pclass::ruleset {

namespace {

// Bits to store one field value verbatim in a rule record.
constexpr u64 kIpFieldBits = 32 + 6;   // value + prefix length
constexpr u64 kPortFieldBits = 32;     // lo + hi
constexpr u64 kProtoFieldBits = 9;     // value + wildcard flag
constexpr u64 kSegmentFieldBits = 16 + 5;  // segment value + length

}  // namespace

RuleSetStats RuleSetStats::analyze(const RuleSet& rules) {
  RuleSetStats s;
  s.rules = rules.size();

  std::set<std::pair<u32, u8>> src_ip, dst_ip;
  std::set<std::pair<u16, u16>> src_port, dst_port;
  std::set<std::pair<u8, bool>> proto;
  std::array<std::set<std::pair<u16, u8>>, 4> segments;  // 4 IP dims
  std::array<std::set<std::pair<u16, u16>>, 2> port_dims;

  for (const Rule& r : rules) {
    src_ip.insert({r.src_ip.value, r.src_ip.length});
    dst_ip.insert({r.dst_ip.value, r.dst_ip.length});
    src_port.insert({r.src_port.lo, r.src_port.hi});
    dst_port.insert({r.dst_port.lo, r.dst_port.hi});
    proto.insert({r.proto.value, r.proto.wildcard});

    const SegmentPrefix seg[4] = {
        r.src_ip.hi_segment(), r.src_ip.lo_segment(), r.dst_ip.hi_segment(),
        r.dst_ip.lo_segment()};
    for (usize d = 0; d < 4; ++d) {
      segments[d].insert({seg[d].value, seg[d].length});
    }
    port_dims[0].insert({r.src_port.lo, r.src_port.hi});
    port_dims[1].insert({r.dst_port.lo, r.dst_port.hi});
  }

  s.unique_src_ip = src_ip.size();
  s.unique_dst_ip = dst_ip.size();
  s.unique_src_port = src_port.size();
  s.unique_dst_port = dst_port.size();
  s.unique_protocol = proto.size();

  for (usize d = 0; d < 4; ++d) {
    s.unique_per_dimension[d] = segments[d].size();
  }
  s.unique_per_dimension[index_of(Dimension::kSrcPort)] = port_dims[0].size();
  s.unique_per_dimension[index_of(Dimension::kDstPort)] = port_dims[1].size();
  s.unique_per_dimension[index_of(Dimension::kProtocol)] = proto.size();

  const u64 per_rule_bits =
      2 * kIpFieldBits + 2 * kPortFieldBits + kProtoFieldBits;
  s.field_bits_replicated = s.rules * per_rule_bits;

  s.field_bits_unique_only =
      (s.unique_src_ip + s.unique_dst_ip) * kIpFieldBits +
      (s.unique_src_port + s.unique_dst_port) * kPortFieldBits +
      s.unique_protocol * kProtoFieldBits;

  // Architecture accounting: unique *segment* values once (that is what
  // the per-dimension structures store) + per-rule 68-bit label record.
  u64 unique_store = 0;
  for (usize d = 0; d < 4; ++d) {
    unique_store += segments[d].size() * kSegmentFieldBits;
  }
  unique_store += (port_dims[0].size() + port_dims[1].size()) * kPortFieldBits;
  unique_store += proto.size() * kProtoFieldBits;
  s.field_bits_labelled = unique_store + s.rules * kMergedKeyBits;

  return s;
}

}  // namespace pclass::ruleset
