/// \file generator.hpp
/// ClassBench-shaped synthetic filter generator.
///
/// The paper evaluates on the classic ClassBench filter sets (ACL / FW /
/// IPC at nominal 1K/5K/10K, ref [12]); those files are no longer
/// retrievable, so this generator reproduces their *structure*:
///
///   * rule counts after duplicate removal are calibration inputs taken
///     from Table III (e.g. nominal acl-1K -> 916 rules);
///   * per-field unique-value counts *emerge* from calibrated value pools
///     (sized from Table II where the paper reports them: acl1 has 1
///     unique source port — always wildcard — 3 protocols, ~100 unique
///     destination ports, and source-prefix counts that grow sharply with
///     set size while destination prefixes saturate);
///   * draws are skewed (power-law) so popular prefixes/ports dominate,
///     as in real filter sets, with a round-robin warm-up that guarantees
///     every pool value is used at least once.
///
/// Everything is deterministic given (profile, seed).
#pragma once

#include "common/random.hpp"
#include "ruleset/rule_set.hpp"

namespace pclass::ruleset {

/// Calibration profile for one (type, nominal size) pair.
struct GeneratorProfile {
  FilterType type = FilterType::kAcl;
  usize nominal_size = 1000;  ///< the "1K/5K/10K" knob (informational)
  usize target_rules = 916;   ///< rules after dedup (Table III)

  // Pool sizes (Table II where the paper reports them; plausible
  // ClassBench-like values otherwise).
  usize src_ip_pool = 103;
  usize dst_ip_pool = 297;
  usize src_port_pool = 1;  ///< 1 == wildcard-only (acl1 behaviour)
  usize dst_port_pool = 99;
  bool proto_wildcard = false;  ///< include a wildcard protocol entry

  // Draw skew (higher = more concentrated on popular values).
  double ip_skew = 1.5;
  double port_skew = 3.0;

  /// The nine calibrated paper workloads (Table III rows x columns).
  /// \throws ConfigError for nominal sizes other than 1000/5000/10000.
  [[nodiscard]] static GeneratorProfile classbench(FilterType type,
                                                   usize nominal_size);
};

/// Deterministic filter-set generator.
class SyntheticGenerator {
 public:
  explicit SyntheticGenerator(GeneratorProfile profile, u64 seed = 2014);

  /// Produce the rule set (dedup'd, priorities = position).
  [[nodiscard]] RuleSet generate();

  [[nodiscard]] const GeneratorProfile& profile() const { return profile_; }

 private:
  GeneratorProfile profile_;
  Rng rng_;
};

/// Convenience: generate one of the nine calibrated paper workloads.
[[nodiscard]] RuleSet make_classbench_like(FilterType type,
                                           usize nominal_size,
                                           u64 seed = 2014);

}  // namespace pclass::ruleset
