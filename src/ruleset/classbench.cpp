#include "ruleset/classbench.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "net/packet.hpp"

namespace pclass::ruleset::classbench {

namespace {

[[noreturn]] void fail(usize line_no, const std::string& what) {
  throw ParseError("classbench line " + std::to_string(line_no) + ": " +
                   what);
}

/// Parse "a.b.c.d/len".
IpPrefix parse_prefix(const std::string& tok, usize line_no) {
  unsigned a = 0, b = 0, c = 0, d = 0, len = 0;
  char s1 = 0, s2 = 0, s3 = 0, s4 = 0;
  std::istringstream ss(tok);
  if (!(ss >> a >> s1 >> b >> s2 >> c >> s3 >> d >> s4 >> len) ||
      s1 != '.' || s2 != '.' || s3 != '.' || s4 != '/') {
    fail(line_no, "bad prefix '" + tok + "'");
  }
  if (a > 255 || b > 255 || c > 255 || d > 255 || len > 32) {
    fail(line_no, "prefix field out of range in '" + tok + "'");
  }
  return IpPrefix::make(ipv4(static_cast<u8>(a), static_cast<u8>(b),
                             static_cast<u8>(c), static_cast<u8>(d)),
                        static_cast<u8>(len));
}

/// Parse "<lo> : <hi>" given the three tokens.
PortRange parse_range(const std::string& lo_tok, const std::string& colon,
                      const std::string& hi_tok, usize line_no) {
  if (colon != ":") {
    fail(line_no, "expected ':' between port bounds, got '" + colon + "'");
  }
  unsigned long lo = 0, hi = 0;
  try {
    lo = std::stoul(lo_tok);
    hi = std::stoul(hi_tok);
  } catch (const std::exception&) {
    fail(line_no, "bad port bound");
  }
  if (lo > 0xFFFF || hi > 0xFFFF || lo > hi) {
    fail(line_no, "port bounds out of range");
  }
  return PortRange::make(static_cast<u16>(lo), static_cast<u16>(hi));
}

/// Parse "0xVV/0xMM".
ProtoMatch parse_proto(const std::string& tok, usize line_no) {
  const auto slash = tok.find('/');
  if (slash == std::string::npos) {
    fail(line_no, "bad protocol '" + tok + "'");
  }
  unsigned long value = 0, mask = 0;
  try {
    value = std::stoul(tok.substr(0, slash), nullptr, 0);
    mask = std::stoul(tok.substr(slash + 1), nullptr, 0);
  } catch (const std::exception&) {
    fail(line_no, "bad protocol '" + tok + "'");
  }
  if (value > 0xFF || (mask != 0 && mask != 0xFF)) {
    fail(line_no, "protocol value/mask out of range in '" + tok + "'");
  }
  return mask == 0 ? ProtoMatch::any()
                   : ProtoMatch::exact(static_cast<u8>(value));
}

}  // namespace

RuleSet read(std::istream& is, std::string name) {
  RuleSet out(std::move(name));
  std::string line;
  usize line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments and blank lines.
    if (const auto hash_pos = line.find('#'); hash_pos != std::string::npos) {
      line.erase(hash_pos);
    }
    std::istringstream ss(line);
    std::string first;
    if (!(ss >> first)) {
      continue;  // blank
    }
    if (first.empty() || first[0] != '@') {
      fail(line_no, "rule must start with '@'");
    }

    Rule r;
    r.src_ip = parse_prefix(first.substr(1), line_no);
    std::string tok;
    if (!(ss >> tok)) fail(line_no, "missing destination prefix");
    r.dst_ip = parse_prefix(tok, line_no);

    std::string lo, colon, hi;
    if (!(ss >> lo >> colon >> hi)) fail(line_no, "missing source ports");
    r.src_port = parse_range(lo, colon, hi, line_no);
    if (!(ss >> lo >> colon >> hi)) {
      fail(line_no, "missing destination ports");
    }
    r.dst_port = parse_range(lo, colon, hi, line_no);

    if (!(ss >> tok)) fail(line_no, "missing protocol");
    r.proto = parse_proto(tok, line_no);

    r.priority = static_cast<Priority>(out.size());
    out.add(r);
  }
  return out;
}

void write(const RuleSet& rules, std::ostream& os) {
  for (const Rule& r : rules) {
    os << '@' << net::ip_to_string(r.src_ip.value) << '/'
       << unsigned{r.src_ip.length} << '\t'
       << net::ip_to_string(r.dst_ip.value) << '/'
       << unsigned{r.dst_ip.length} << '\t' << r.src_port.lo << " : "
       << r.src_port.hi << '\t' << r.dst_port.lo << " : " << r.dst_port.hi
       << '\t';
    char buf[16];
    if (r.proto.wildcard) {
      os << "0x00/0x00";
    } else {
      std::snprintf(buf, sizeof buf, "0x%02X/0xFF", r.proto.value);
      os << buf;
    }
    os << '\n';
  }
}

}  // namespace pclass::ruleset::classbench
