#include "ruleset/rule_set.hpp"

#include <sstream>
#include <unordered_set>

#include "common/hash.hpp"
#include "net/packet.hpp"

namespace pclass::ruleset {

std::string to_string(const Rule& r) {
  std::ostringstream ss;
  ss << '@' << net::ip_to_string(r.src_ip.value) << '/'
     << unsigned{r.src_ip.length} << ' ' << net::ip_to_string(r.dst_ip.value)
     << '/' << unsigned{r.dst_ip.length} << ' ' << r.src_port.lo << " : "
     << r.src_port.hi << ' ' << r.dst_port.lo << " : " << r.dst_port.hi
     << ' ';
  if (r.proto.wildcard) {
    ss << "0x00/0x00";
  } else {
    ss << "0x" << std::hex << unsigned{r.proto.value} << "/0xFF" << std::dec;
  }
  ss << "  # id=" << r.id.value << " prio=" << r.priority;
  return ss.str();
}

u64 match_fingerprint(const Rule& r) {
  u64 h = mix64((u64{r.src_ip.value} << 8) | r.src_ip.length);
  h = mix64(h ^ ((u64{r.dst_ip.value} << 8) | r.dst_ip.length));
  h = mix64(h ^ ((u64{r.src_port.lo} << 16) | r.src_port.hi));
  h = mix64(h ^ ((u64{r.dst_port.lo} << 16) | r.dst_port.hi));
  h = mix64(h ^ ((u64{r.proto.value} << 1) | (r.proto.wildcard ? 1u : 0u)));
  return h;
}

RuleSet RuleSet::deduplicated() const {
  RuleSet out(name_);
  std::unordered_set<u64> seen;
  seen.reserve(rules_.size() * 2);
  for (const Rule& r : rules_) {
    // Fingerprint collisions across *different* match parts are possible
    // in principle (64-bit), but would only drop a rule; the tests compare
    // against a field-wise dedup to rule this out at our set sizes.
    if (!seen.insert(match_fingerprint(r)).second) {
      continue;
    }
    Rule copy = r;
    copy.priority = static_cast<Priority>(out.size());
    out.add(copy);
  }
  return out;
}

}  // namespace pclass::ruleset
