#include "ruleset/generator.hpp"

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "net/packet.hpp"

namespace pclass::ruleset {

GeneratorProfile GeneratorProfile::classbench(FilterType type,
                                              usize nominal_size) {
  GeneratorProfile p;
  p.type = type;
  p.nominal_size = nominal_size;

  auto row = [&](usize target, usize src_ip, usize dst_ip, usize src_port,
                 usize dst_port, bool proto_wc) {
    p.target_rules = target;
    p.src_ip_pool = src_ip;
    p.dst_ip_pool = dst_ip;
    p.src_port_pool = src_port;
    p.dst_port_pool = dst_port;
    p.proto_wildcard = proto_wc;
  };

  switch (type) {
    case FilterType::kAcl:
      // Table II + Table III calibration (acl1).
      if (nominal_size == 1000) row(916, 103, 297, 1, 99, false);
      else if (nominal_size == 5000) row(4415, 805, 640, 1, 108, false);
      else if (nominal_size == 10000) row(9603, 4784, 733, 1, 108, false);
      else throw ConfigError("classbench profile: nominal size must be 1000/5000/10000");
      break;
    case FilterType::kFw:
      // Table III rule counts; pool sizes are ClassBench-fw-shaped
      // (bidirectional port ranges, shorter prefixes, more wildcards).
      if (nominal_size == 1000) row(791, 120, 85, 28, 42, true);
      else if (nominal_size == 5000) row(4653, 520, 310, 34, 51, true);
      else if (nominal_size == 10000) row(9311, 980, 560, 38, 57, true);
      else throw ConfigError("classbench profile: nominal size must be 1000/5000/10000");
      break;
    case FilterType::kIpc:
      if (nominal_size == 1000) row(938, 152, 183, 18, 64, true);
      else if (nominal_size == 5000) row(4460, 710, 520, 24, 75, true);
      else if (nominal_size == 10000) row(9037, 1420, 840, 28, 83, true);
      else throw ConfigError("classbench profile: nominal size must be 1000/5000/10000");
      break;
  }
  return p;
}

SyntheticGenerator::SyntheticGenerator(GeneratorProfile profile, u64 seed)
    : profile_(profile),
      rng_(seed ^ mix64((u64{static_cast<u8>(profile.type)} << 32) |
                        profile.nominal_size)) {
  if (profile_.target_rules == 0) {
    throw ConfigError("SyntheticGenerator: target_rules must be > 0");
  }
  if (profile_.src_ip_pool == 0 || profile_.dst_ip_pool == 0 ||
      profile_.src_port_pool == 0 || profile_.dst_port_pool == 0) {
    throw ConfigError("SyntheticGenerator: pool sizes must be > 0");
  }
}

namespace {

/// Weighted prefix-length mix.
struct LengthMix {
  std::vector<std::pair<u8, double>> entries;  // (length, weight)

  u8 draw(Rng& rng) const {
    double u = rng.uniform();
    for (const auto& [len, w] : entries) {
      if (u < w) return len;
      u -= w;
    }
    return entries.back().first;
  }
};

LengthMix src_mix(FilterType t) {
  switch (t) {
    case FilterType::kAcl:
      // acl1: many host (/32) and subnet (/24-/28) sources.
      return {{{32, 0.52}, {28, 0.12}, {24, 0.22}, {16, 0.10}, {8, 0.04}}};
    case FilterType::kFw:
      return {{{32, 0.22}, {24, 0.30}, {16, 0.26}, {8, 0.12}, {0, 0.10}}};
    case FilterType::kIpc:
      return {{{32, 0.34}, {24, 0.28}, {16, 0.22}, {8, 0.10}, {0, 0.06}}};
  }
  return {{{32, 1.0}}};
}

LengthMix dst_mix(FilterType t) {
  switch (t) {
    case FilterType::kAcl:
      return {{{32, 0.34}, {28, 0.08}, {24, 0.26}, {16, 0.22}, {8, 0.10}}};
    case FilterType::kFw:
      return {{{32, 0.28}, {24, 0.28}, {16, 0.24}, {8, 0.12}, {0, 0.08}}};
    case FilterType::kIpc:
      return {{{32, 0.30}, {24, 0.30}, {16, 0.24}, {8, 0.10}, {0, 0.06}}};
  }
  return {{{32, 1.0}}};
}

/// Build a pool of distinct prefixes with two-level locality: a few /16
/// "sites" each holding a handful of /24 "subnets", hosts inside the
/// subnets. Real filter sets concentrate in the owner's address blocks —
/// this clustering is also what keeps multi-bit-trie node counts at the
/// scale the paper's memory numbers imply (ClassBench acl1 is dominated
/// by /32 hosts packed into few subnets).
std::vector<IpPrefix> make_ip_pool(usize count, const LengthMix& mix,
                                   Rng& rng) {
  std::vector<IpPrefix> pool;
  pool.reserve(count);
  std::set<std::pair<u32, u8>> seen;

  auto add = [&](IpPrefix p) {
    if (seen.insert({p.value, p.length}).second) {
      pool.push_back(p);
    }
  };

  add(IpPrefix{});  // wildcard is always a (popular) pool member

  const usize n_sites = std::max<usize>(4, count / 400);
  const usize subnets_per_site = 4;
  std::vector<u32> subnets;  // /24 bases
  subnets.reserve(n_sites * subnets_per_site);
  for (usize i = 0; i < n_sites; ++i) {
    const u32 site = static_cast<u32>(rng.next()) & 0xFFFF0000u;  // /16
    for (usize s = 0; s < subnets_per_site; ++s) {
      subnets.push_back(site | ((static_cast<u32>(rng.next()) & 0xFFu) << 8));
    }
  }

  usize guard = 0;
  while (pool.size() < count) {
    if (++guard > count * 200) {
      throw InternalError(
          "make_ip_pool: cannot fill pool (length mix too narrow)");
    }
    const u8 len = mix.draw(rng);
    if (len == 0) {
      continue;  // wildcard already present
    }
    const u32 subnet = subnets[rng.below(subnets.size())];
    u32 value;
    if (len > 24) {
      value = subnet | (static_cast<u32>(rng.next()) & 0xFFu);  // host
    } else if (len > 16) {
      value = subnet;  // the subnet itself (masked to len by make())
    } else {
      value = subnet & 0xFFFF0000u;  // site block or shorter
    }
    IpPrefix cand = IpPrefix::make(value, len);
    if (len <= 16 && seen.contains({cand.value, cand.length})) {
      // Short-prefix slots saturate quickly (few sites); spread the rest
      // over fresh blocks so the pool can reach its calibrated size.
      cand = IpPrefix::make(static_cast<u32>(rng.next()), len);
    }
    add(cand);
  }
  return pool;
}

/// Build a pool of distinct port matches: wildcard, well-known exacts,
/// classic ranges, then random values until the requested size.
std::vector<PortRange> make_port_pool(usize count, Rng& rng) {
  static constexpr u16 kWellKnown[] = {
      80,   443,  53,   25,   110,  143,  21,   22,   23,    161,
      389,  636,  993,  995,  8080, 8443, 3128, 3306, 5432,  1433,
      123,  137,  139,  445,  514,  587,  631,  873,  990,   1080,
      1521, 2049, 2181, 3389, 5060, 5900, 6379, 8000, 8888,  9090,
      9200, 1723, 500,  4500, 179,  520,  69,   7,    11211, 27017};
  static constexpr std::pair<u16, u16> kClassicRanges[] = {
      {1024, 65535}, {0, 1023},     {6000, 6063},   {2300, 2400},
      {49152, 65535}, {32768, 61000}, {5000, 5100},  {8001, 8100},
      {20, 21},      {67, 68},      {135, 140},     {6660, 6669},
      {1812, 1813},  {2000, 2100},  {10000, 10100}, {161, 162}};

  std::vector<PortRange> pool;
  pool.reserve(count);
  std::set<std::pair<u16, u16>> seen;
  auto add = [&](PortRange r) {
    if (seen.insert({r.lo, r.hi}).second) {
      pool.push_back(r);
    }
  };

  add(PortRange::wildcard());
  usize exact_i = 0, range_i = 0;
  while (pool.size() < count) {
    // Interleave 3 exacts : 1 range, mirroring acl1's mostly-exact mix.
    const bool want_range = (pool.size() % 4) == 3;
    if (want_range) {
      if (range_i < std::size(kClassicRanges)) {
        const auto [lo, hi] = kClassicRanges[range_i++];
        add(PortRange::make(lo, hi));
      } else {
        const u16 lo = static_cast<u16>(rng.between(1, 60000));
        const u16 hi = static_cast<u16>(
            std::min<u64>(65535, lo + rng.between(1, 2000)));
        add(PortRange::make(lo, hi));
      }
    } else {
      if (exact_i < std::size(kWellKnown)) {
        add(PortRange::exact(kWellKnown[exact_i++]));
      } else {
        add(PortRange::exact(static_cast<u16>(rng.between(1, 65535))));
      }
    }
  }
  return pool;
}

std::vector<ProtoMatch> make_proto_pool(bool with_wildcard) {
  std::vector<ProtoMatch> pool = {ProtoMatch::exact(net::kProtoTcp),
                                  ProtoMatch::exact(net::kProtoUdp),
                                  ProtoMatch::exact(net::kProtoIcmp)};
  if (with_wildcard) {
    pool.push_back(ProtoMatch::any());
  }
  return pool;
}

/// Skewed pool index: u^skew concentrates mass near index 0.
usize skewed_index(Rng& rng, usize pool_size, double skew) {
  const double u = rng.uniform();
  double x = u;
  for (double s = 1.0; s < skew; s += 1.0) {
    x *= u;  // u^ceil(skew) without calling pow (determinism across libms)
  }
  const auto idx = static_cast<usize>(x * static_cast<double>(pool_size));
  return std::min(idx, pool_size - 1);
}

}  // namespace

RuleSet SyntheticGenerator::generate() {
  const auto& p = profile_;
  const auto src_pool = make_ip_pool(p.src_ip_pool, src_mix(p.type), rng_);
  const auto dst_pool = make_ip_pool(p.dst_ip_pool, dst_mix(p.type), rng_);
  const auto sport_pool =
      p.src_port_pool == 1 ? std::vector<PortRange>{PortRange::wildcard()}
                           : make_port_pool(p.src_port_pool, rng_);
  const auto dport_pool = make_port_pool(p.dst_port_pool, rng_);
  const auto proto_pool = make_proto_pool(p.proto_wildcard);

  std::string name = std::string(to_string(p.type)) + "1_" +
                     std::to_string(p.nominal_size / 1000) + "k_synth";
  RuleSet out(name);
  std::unordered_set<u64> seen;
  seen.reserve(p.target_rules * 2);

  auto try_add = [&](const Rule& r) {
    if (seen.insert(match_fingerprint(r)).second) {
      Rule copy = r;
      copy.priority = static_cast<Priority>(out.size());
      // Action tokens numerically equal to sdn::ActionSpec::output(n)
      // (kind kOutput in bits [15:14]); ruleset stays independent of the
      // sdn layer but generated sets forward rather than drop.
      copy.action = Action{(u32{1} << 14) |
                           static_cast<u32>(out.size() % 16)};
      out.add(copy);
      return true;
    }
    return false;
  };

  // Phase 1 — coverage warm-up: round-robin every pool so each calibrated
  // unique value appears in at least one rule.
  const usize coverage = std::max({src_pool.size(), dst_pool.size(),
                                   sport_pool.size(), dport_pool.size(),
                                   proto_pool.size()});
  for (usize i = 0; i < coverage && out.size() < p.target_rules; ++i) {
    Rule r;
    r.src_ip = src_pool[i % src_pool.size()];
    r.dst_ip = dst_pool[i % dst_pool.size()];
    r.src_port = sport_pool[i % sport_pool.size()];
    r.dst_port = dport_pool[i % dport_pool.size()];
    r.proto = proto_pool[i % proto_pool.size()];
    try_add(r);
  }

  // Phase 2 — skewed draws with realistic correlations.
  usize guard = 0;
  const usize guard_limit = p.target_rules * 64 + 100'000;
  while (out.size() < p.target_rules) {
    if (++guard > guard_limit) break;  // fall through to systematic fill
    Rule r;
    r.src_ip = src_pool[skewed_index(rng_, src_pool.size(), p.ip_skew)];
    r.dst_ip = dst_pool[skewed_index(rng_, dst_pool.size(), p.ip_skew)];
    r.src_port =
        sport_pool[skewed_index(rng_, sport_pool.size(), p.port_skew)];
    r.dst_port =
        dport_pool[skewed_index(rng_, dport_pool.size(), p.port_skew)];
    r.proto = proto_pool[rng_.below(proto_pool.size())];
    // Correlation: exact well-known destination port -> TCP-ish rule;
    // ICMP rules carry wildcard ports.
    if (r.proto.matches(net::kProtoIcmp) && !r.proto.wildcard) {
      r.src_port = PortRange::wildcard();
      r.dst_port = PortRange::wildcard();
    } else if (r.dst_port.is_exact() && !r.proto.wildcard &&
               rng_.chance(0.8)) {
      r.proto = ProtoMatch::exact(net::kProtoTcp);
    }
    try_add(r);
  }

  // Phase 3 — systematic fill (only reachable for pathological profiles):
  // enumerate distinct (src, dst) combinations deterministically.
  for (usize k = 0; out.size() < p.target_rules; ++k) {
    if (k >= src_pool.size() * dst_pool.size()) {
      throw InternalError("SyntheticGenerator: pool space exhausted before "
                          "reaching target rule count");
    }
    Rule r;
    r.src_ip = src_pool[k % src_pool.size()];
    r.dst_ip = dst_pool[(k / src_pool.size()) % dst_pool.size()];
    r.src_port = sport_pool[k % sport_pool.size()];
    r.dst_port = dport_pool[k % dport_pool.size()];
    r.proto = proto_pool[k % proto_pool.size()];
    try_add(r);
  }

  return out;
}

RuleSet make_classbench_like(FilterType type, usize nominal_size, u64 seed) {
  SyntheticGenerator gen(GeneratorProfile::classbench(type, nominal_size),
                         seed);
  return gen.generate();
}

}  // namespace pclass::ruleset
