/// \file trace_gen.hpp
/// ClassBench `trace_generator`-style header-trace synthesis: headers are
/// derived from rules (guaranteeing realistic match structure), with a
/// skewed rule-popularity distribution (heavy flows) and an optional
/// fraction of random non-derived headers (default-route traffic).
#pragma once

#include "common/random.hpp"
#include "net/trace.hpp"
#include "ruleset/rule_set.hpp"

namespace pclass::ruleset {

/// Trace synthesis parameters.
struct TraceOptions {
  usize headers = 10'000;
  /// Popularity skew across rules (0 = uniform; higher = heavier head).
  double rule_skew = 1.0;
  /// Fraction of headers drawn uniformly at random instead of from a rule
  /// (these may or may not match anything — miss traffic).
  double random_fraction = 0.05;
  u64 seed = 42;
};

/// Deterministic trace generator for a rule set.
class TraceGenerator {
 public:
  TraceGenerator(const RuleSet& rules, TraceOptions opts = {});

  /// Generate the trace. Each rule-derived entry records its origin rule.
  [[nodiscard]] net::Trace generate();

  /// Synthesize one header matching \p rule (host bits, in-range ports and
  /// a concrete protocol are drawn at random). Exposed for tests.
  [[nodiscard]] static net::FiveTuple header_for_rule(const Rule& rule,
                                                      Rng& rng);

 private:
  const RuleSet& rules_;
  TraceOptions opts_;
  Rng rng_;
};

}  // namespace pclass::ruleset
