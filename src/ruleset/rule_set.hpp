/// \file rule_set.hpp
/// Ordered rule container. Position defines priority (ACL semantics: the
/// first matching rule in the file is the HPMR), ids are stable.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ruleset/rule.hpp"

namespace pclass::ruleset {

/// The kind of filter set (ClassBench families, Table III).
enum class FilterType : u8 { kAcl, kFw, kIpc };

[[nodiscard]] constexpr const char* to_string(FilterType t) {
  switch (t) {
    case FilterType::kAcl: return "acl";
    case FilterType::kFw: return "fw";
    case FilterType::kIpc: return "ipc";
  }
  return "?";
}

/// An ordered set of rules. Appending assigns priority = position and a
/// fresh RuleId unless the rule already carries one.
class RuleSet {
 public:
  RuleSet() = default;
  explicit RuleSet(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  [[nodiscard]] usize size() const { return rules_.size(); }
  [[nodiscard]] bool empty() const { return rules_.empty(); }
  [[nodiscard]] const Rule& operator[](usize i) const { return rules_[i]; }
  [[nodiscard]] auto begin() const { return rules_.begin(); }
  [[nodiscard]] auto end() const { return rules_.end(); }

  /// Append a rule; priority and id are assigned from the position if the
  /// rule does not carry valid ones. Returns the stored rule.
  const Rule& add(Rule r) {
    if (!r.id.valid()) {
      r.id = RuleId{next_id_++};
    } else {
      next_id_ = std::max(next_id_, r.id.value + 1);
    }
    if (r.priority == 0 && !rules_.empty()) {
      r.priority = static_cast<Priority>(rules_.size());
    }
    rules_.push_back(r);
    return rules_.back();
  }

  /// Append a rule exactly as given — no priority back-fill, no id
  /// assignment. For deserialization and snapshot reconstruction, where
  /// the stored priority/id/action are authoritative.
  /// \throws ConfigError when the rule carries no valid id.
  const Rule& add_verbatim(const Rule& r) {
    if (!r.id.valid()) {
      throw ConfigError("RuleSet::add_verbatim: rule must carry a valid id");
    }
    next_id_ = std::max(next_id_, r.id.value + 1);
    rules_.push_back(r);
    return rules_.back();
  }

  /// Find by id (linear; controller-side convenience).
  [[nodiscard]] std::optional<Rule> find(RuleId id) const {
    for (const Rule& r : rules_) {
      if (r.id == id) return r;
    }
    return std::nullopt;
  }

  /// Copy with duplicate *match parts* removed, keeping the first
  /// (highest-priority) occurrence; priorities are re-densified. This is
  /// the ClassBench post-processing that turns a nominal "1K" seed into
  /// the 916-rule acl1 set of Table III.
  [[nodiscard]] RuleSet deduplicated() const;

 private:
  std::string name_;
  std::vector<Rule> rules_;
  u32 next_id_ = 0;
};

}  // namespace pclass::ruleset
