#include "ruleset/trace_gen.hpp"

#include "common/error.hpp"
#include "net/packet.hpp"

namespace pclass::ruleset {

TraceGenerator::TraceGenerator(const RuleSet& rules, TraceOptions opts)
    : rules_(rules), opts_(opts), rng_(opts.seed) {
  if (rules.empty()) {
    throw ConfigError("TraceGenerator: rule set is empty");
  }
}

net::FiveTuple TraceGenerator::header_for_rule(const Rule& rule, Rng& rng) {
  net::FiveTuple h;

  auto draw_ip = [&](const IpPrefix& p) {
    if (p.length >= 32) return p.value;
    const u32 host_bits = 32 - p.length;
    const u32 host = static_cast<u32>(
        rng.next() & ((host_bits == 32) ? 0xFFFFFFFFu
                                        : ((u32{1} << host_bits) - 1)));
    return p.value | host;
  };
  auto draw_port = [&](const PortRange& r) {
    return static_cast<u16>(rng.between(r.lo, r.hi));
  };

  h.src_ip = draw_ip(rule.src_ip);
  h.dst_ip = draw_ip(rule.dst_ip);
  h.src_port = draw_port(rule.src_port);
  h.dst_port = draw_port(rule.dst_port);
  if (rule.proto.wildcard) {
    static constexpr u8 kCommon[] = {net::kProtoTcp, net::kProtoUdp,
                                     net::kProtoIcmp};
    h.protocol = kCommon[rng.below(std::size(kCommon))];
  } else {
    h.protocol = rule.proto.value;
  }
  return h;
}

net::Trace TraceGenerator::generate() {
  net::Trace trace;
  for (usize i = 0; i < opts_.headers; ++i) {
    net::TraceEntry e;
    if (rng_.chance(opts_.random_fraction)) {
      e.header.src_ip = static_cast<u32>(rng_.next());
      e.header.dst_ip = static_cast<u32>(rng_.next());
      e.header.src_port = static_cast<u16>(rng_.next());
      e.header.dst_port = static_cast<u16>(rng_.next());
      static constexpr u8 kCommon[] = {net::kProtoTcp, net::kProtoUdp,
                                       net::kProtoIcmp, 47, 50};
      e.header.protocol = kCommon[rng_.below(std::size(kCommon))];
    } else {
      // Skewed rule popularity: u^(1+skew) concentrates on low indices
      // (high-priority rules attract most traffic in real deployments).
      double u = rng_.uniform();
      double x = u;
      for (double s = 0.0; s < opts_.rule_skew; s += 1.0) x *= u;
      const usize idx = std::min(
          static_cast<usize>(x * static_cast<double>(rules_.size())),
          rules_.size() - 1);
      const Rule& rule = rules_[idx];
      e.header = header_for_rule(rule, rng_);
      e.origin_rule = rule.id;
    }
    trace.add(e);
  }
  return trace;
}

}  // namespace pclass::ruleset
