/// \file classbench.hpp
/// Reader/writer for the standard ClassBench filter format used by the
/// paper's filter sets [12] (and by essentially every packet
/// classification paper since). One rule per line:
///
///   @<sip>/<len> <dip>/<len> <lo> : <hi> <lo> : <hi> <proto>/<mask> [extra]
///
/// e.g. `@192.168.0.0/16  10.1.2.3/32  0 : 65535  80 : 80  0x06/0xFF`
///
/// Protocol mask is 0xFF (exact) or 0x00 (wildcard). Any trailing fields
/// (ClassBench flag columns) are preserved-ignored on read.
#pragma once

#include <iosfwd>

#include "ruleset/rule_set.hpp"

namespace pclass::ruleset::classbench {

/// Parse a filter file. Priorities are assigned by line order.
/// \throws ParseError with a line number on malformed input.
[[nodiscard]] RuleSet read(std::istream& is, std::string name = "filter");

/// Serialize in ClassBench format (round-trips through read()).
void write(const RuleSet& rules, std::ostream& os);

}  // namespace pclass::ruleset::classbench
