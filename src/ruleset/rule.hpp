/// \file rule.hpp
/// The classification rule model: per-field match syntaxes (§II: "Each of
/// these fields is defined in diverse syntaxes, such as ranges or
/// prefixes") and the 5-tuple rule. Field types are value types with full
/// equality — uniqueness of field values is what the label method counts.
#pragma once

#include <compare>
#include <string>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/types.hpp"
#include "net/five_tuple.hpp"

namespace pclass::ruleset {

/// A prefix on one 16-bit IP segment (the unit the architecture actually
/// searches: each 32-bit address is two 16-bit segment lookups).
struct SegmentPrefix {
  u16 value = 0;  ///< host bits are zero (normalized)
  u8 length = 0;  ///< 0..16

  [[nodiscard]] static SegmentPrefix make(u16 value, u8 length) {
    if (length > 16) {
      throw ConfigError("SegmentPrefix: length > 16");
    }
    const u16 masked =
        length == 0 ? u16{0}
                    : static_cast<u16>(value & (0xFFFFu << (16 - length)));
    return SegmentPrefix{masked, length};
  }

  [[nodiscard]] constexpr bool matches(u16 key) const {
    if (length == 0) return true;
    return static_cast<u16>((key ^ value) >> (16 - length)) == 0;
  }

  [[nodiscard]] constexpr bool is_wildcard() const { return length == 0; }

  friend constexpr auto operator<=>(const SegmentPrefix&,
                                    const SegmentPrefix&) = default;
};

/// An IPv4 prefix (Longest-Prefix-Match syntax).
struct IpPrefix {
  u32 value = 0;  ///< host bits are zero (normalized)
  u8 length = 0;  ///< 0..32

  /// Normalizing factory — host bits of \p value are cleared.
  /// \throws ConfigError if length > 32.
  [[nodiscard]] static IpPrefix make(u32 value, u8 length) {
    if (length > 32) {
      throw ConfigError("IpPrefix: length > 32");
    }
    const u32 masked =
        length == 0 ? 0u : (value & (0xFFFFFFFFu << (32 - length)));
    return IpPrefix{masked, length};
  }

  [[nodiscard]] constexpr bool matches(u32 addr) const {
    if (length == 0) return true;
    return ((addr ^ value) >> (32 - length)) == 0;
  }

  [[nodiscard]] constexpr bool is_wildcard() const { return length == 0; }

  /// High 16-bit segment view (§III.C): a prefix of length L constrains
  /// the high segment by min(L, 16) bits.
  [[nodiscard]] SegmentPrefix hi_segment() const {
    return SegmentPrefix::make(ip_hi16(value),
                               static_cast<u8>(std::min<u8>(length, 16)));
  }

  /// Low 16-bit segment view: unconstrained (wildcard) unless L > 16.
  [[nodiscard]] SegmentPrefix lo_segment() const {
    return length <= 16
               ? SegmentPrefix{}
               : SegmentPrefix::make(ip_lo16(value),
                                     static_cast<u8>(length - 16));
  }

  friend constexpr auto operator<=>(const IpPrefix&,
                                    const IpPrefix&) = default;
};

/// An inclusive port range [lo, hi] (Range-Match syntax). Exact matches
/// are the degenerate lo == hi case — exactly the paper's Table IV model.
struct PortRange {
  u16 lo = 0;
  u16 hi = 0xFFFF;

  [[nodiscard]] static PortRange make(u16 lo, u16 hi) {
    if (lo > hi) {
      throw ConfigError("PortRange: lo > hi");
    }
    return PortRange{lo, hi};
  }

  [[nodiscard]] static constexpr PortRange exact(u16 p) {
    return PortRange{p, p};
  }
  [[nodiscard]] static constexpr PortRange wildcard() {
    return PortRange{0, 0xFFFF};
  }

  [[nodiscard]] constexpr bool contains(u16 p) const {
    return lo <= p && p <= hi;
  }
  [[nodiscard]] constexpr bool is_exact() const { return lo == hi; }
  [[nodiscard]] constexpr bool is_wildcard() const {
    return lo == 0 && hi == 0xFFFF;
  }
  /// Number of port values covered; the paper's tightest-range-first
  /// priority (§III.C.1) orders ascending by this.
  [[nodiscard]] constexpr u32 width() const { return u32{hi} - lo + 1; }

  friend constexpr auto operator<=>(const PortRange&,
                                    const PortRange&) = default;
};

/// Protocol match (Exact-Match syntax with optional wildcard, ClassBench
/// encodes it as value/mask with mask in {0x00, 0xFF}).
struct ProtoMatch {
  u8 value = 0;
  bool wildcard = true;

  [[nodiscard]] static constexpr ProtoMatch exact(u8 p) {
    return ProtoMatch{p, false};
  }
  [[nodiscard]] static constexpr ProtoMatch any() {
    return ProtoMatch{0, true};
  }

  [[nodiscard]] constexpr bool matches(u8 p) const {
    return wildcard || p == value;
  }

  friend constexpr auto operator<=>(const ProtoMatch&,
                                    const ProtoMatch&) = default;
};

/// Opaque forwarding action token. The SDN layer gives it meaning
/// (output port / drop / group redirect); the classifier just stores it.
struct Action {
  u32 token = 0;

  friend constexpr auto operator<=>(const Action&, const Action&) = default;
};

/// One 5-tuple classification rule.
struct Rule {
  IpPrefix src_ip{};
  IpPrefix dst_ip{};
  PortRange src_port = PortRange::wildcard();
  PortRange dst_port = PortRange::wildcard();
  ProtoMatch proto = ProtoMatch::any();

  Priority priority = 0;  ///< smaller value = higher priority
  RuleId id{};
  Action action{};

  /// Full 5-tuple match check (the linear-search oracle uses this).
  [[nodiscard]] bool matches(const net::FiveTuple& h) const {
    return src_ip.matches(h.src_ip) && dst_ip.matches(h.dst_ip) &&
           src_port.contains(h.src_port) && dst_port.contains(h.dst_port) &&
           proto.matches(h.protocol);
  }

  /// Equality of the *match part* only (dedup ignores priority/id/action).
  [[nodiscard]] bool same_match(const Rule& o) const {
    return src_ip == o.src_ip && dst_ip == o.dst_ip &&
           src_port == o.src_port && dst_port == o.dst_port &&
           proto == o.proto;
  }
};

/// Human-readable rendering, ClassBench-flavoured.
[[nodiscard]] std::string to_string(const Rule& r);

/// 64-bit fingerprint of the match part (not priority/id/action), used
/// for duplicate detection in dedup, generation and installation paths.
[[nodiscard]] u64 match_fingerprint(const Rule& r);

}  // namespace pclass::ruleset
