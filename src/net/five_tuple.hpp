/// \file five_tuple.hpp
/// The classification 5-tuple (§I: "five tuples from packet headers are
/// used for classification: protocol, destination and source ports and
/// source and destination addresses") and its decomposition into the
/// architecture's 7 per-dimension search keys.
#pragma once

#include <compare>
#include <string>

#include "common/bits.hpp"
#include "common/types.hpp"

namespace pclass::net {

/// Layer 3/4 header fields used for classification.
struct FiveTuple {
  u32 src_ip = 0;
  u32 dst_ip = 0;
  u16 src_port = 0;
  u16 dst_port = 0;
  u8 protocol = 0;

  friend constexpr auto operator<=>(const FiveTuple&,
                                    const FiveTuple&) = default;
};

/// Phase-1 of the lookup process (Fig. 3): "the packet header is split
/// into segments, which are sent to the corresponding algorithm".
/// Returns the search key for one dimension (IP segments are 16-bit,
/// ports 16-bit, protocol 8-bit, all zero-extended to u32).
[[nodiscard]] constexpr u32 dimension_key(const FiveTuple& h, Dimension d) {
  switch (d) {
    case Dimension::kSrcIpHi: return ip_hi16(h.src_ip);
    case Dimension::kSrcIpLo: return ip_lo16(h.src_ip);
    case Dimension::kDstIpHi: return ip_hi16(h.dst_ip);
    case Dimension::kDstIpLo: return ip_lo16(h.dst_ip);
    case Dimension::kSrcPort: return h.src_port;
    case Dimension::kDstPort: return h.dst_port;
    case Dimension::kProtocol: return h.protocol;
  }
  return 0;
}

/// Dotted-quad rendering of an IPv4 address.
[[nodiscard]] std::string ip_to_string(u32 ip);

/// "sip:sport -> dip:dport proto" rendering for logs and examples.
[[nodiscard]] std::string to_string(const FiveTuple& t);

}  // namespace pclass::net

template <>
struct std::hash<pclass::net::FiveTuple> {
  std::size_t operator()(const pclass::net::FiveTuple& t) const noexcept {
    pclass::u64 a = (pclass::u64{t.src_ip} << 32) | t.dst_ip;
    pclass::u64 b = (pclass::u64{t.src_port} << 32) |
                    (pclass::u64{t.dst_port} << 16) | t.protocol;
    pclass::u64 x = a * 0x9E3779B97F4A7C15ULL ^ b;
    x ^= x >> 29;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 32;
    return static_cast<std::size_t>(x);
  }
};
