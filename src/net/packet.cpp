#include "net/packet.hpp"

#include <sstream>

namespace pclass::net {

std::string ip_to_string(u32 ip) {
  std::ostringstream ss;
  ss << ((ip >> 24) & 0xFF) << '.' << ((ip >> 16) & 0xFF) << '.'
     << ((ip >> 8) & 0xFF) << '.' << (ip & 0xFF);
  return ss.str();
}

std::string to_string(const FiveTuple& t) {
  std::ostringstream ss;
  ss << ip_to_string(t.src_ip) << ':' << t.src_port << " -> "
     << ip_to_string(t.dst_ip) << ':' << t.dst_port << " proto "
     << unsigned{t.protocol};
  return ss.str();
}

u16 internet_checksum(std::span<const u8> bytes) {
  u32 sum = 0;
  usize i = 0;
  for (; i + 1 < bytes.size(); i += 2) {
    sum += (u32{bytes[i]} << 8) | bytes[i + 1];
  }
  if (i < bytes.size()) {
    sum += u32{bytes[i]} << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xFFFFu) + (sum >> 16);
  }
  return static_cast<u16>(~sum & 0xFFFFu);
}

namespace {

void put16(std::vector<u8>& v, usize off, u16 x) {
  v[off] = static_cast<u8>(x >> 8);
  v[off + 1] = static_cast<u8>(x & 0xFF);
}

void put32(std::vector<u8>& v, usize off, u32 x) {
  v[off] = static_cast<u8>(x >> 24);
  v[off + 1] = static_cast<u8>((x >> 16) & 0xFF);
  v[off + 2] = static_cast<u8>((x >> 8) & 0xFF);
  v[off + 3] = static_cast<u8>(x & 0xFF);
}

u16 get16(std::span<const u8> v, usize off) {
  return static_cast<u16>((u16{v[off]} << 8) | v[off + 1]);
}

u32 get32(std::span<const u8> v, usize off) {
  return (u32{v[off]} << 24) | (u32{v[off + 1]} << 16) |
         (u32{v[off + 2]} << 8) | u32{v[off + 3]};
}

}  // namespace

Packet make_packet(const FiveTuple& t, usize payload_len) {
  const bool has_ports = t.protocol == kProtoTcp || t.protocol == kProtoUdp;
  const usize l4_hdr = t.protocol == kProtoTcp   ? kTcpHeaderBytes
                       : t.protocol == kProtoUdp ? kUdpHeaderBytes
                                                 : 0;
  const usize total = kIpv4HeaderBytes + l4_hdr + payload_len;

  Packet pkt;
  pkt.bytes.assign(total, 0);
  auto& b = pkt.bytes;

  // IPv4 header.
  b[0] = 0x45;  // version 4, IHL 5
  put16(b, 2, static_cast<u16>(total));
  b[8] = 64;  // TTL
  b[9] = t.protocol;
  put32(b, 12, t.src_ip);
  put32(b, 16, t.dst_ip);
  const u16 csum =
      internet_checksum(std::span<const u8>{b.data(), kIpv4HeaderBytes});
  put16(b, 10, csum);

  if (has_ports) {
    put16(b, kIpv4HeaderBytes + 0, t.src_port);
    put16(b, kIpv4HeaderBytes + 2, t.dst_port);
    if (t.protocol == kProtoTcp) {
      b[kIpv4HeaderBytes + 12] = 0x50;  // data offset = 5 words
    } else {
      put16(b, kIpv4HeaderBytes + 4,
            static_cast<u16>(kUdpHeaderBytes + payload_len));
    }
  }
  return pkt;
}

std::optional<FiveTuple> parse_five_tuple(std::span<const u8> bytes) {
  if (bytes.size() < kIpv4HeaderBytes) {
    return std::nullopt;
  }
  if ((bytes[0] >> 4) != 4) {
    return std::nullopt;  // not IPv4
  }
  const usize ihl = usize{bytes[0] & 0x0Fu} * 4;
  if (ihl < kIpv4HeaderBytes || bytes.size() < ihl) {
    return std::nullopt;
  }
  FiveTuple t;
  t.protocol = bytes[9];
  t.src_ip = get32(bytes, 12);
  t.dst_ip = get32(bytes, 16);
  if (t.protocol == kProtoTcp || t.protocol == kProtoUdp) {
    if (bytes.size() < ihl + 4) {
      return std::nullopt;  // truncated L4 header
    }
    t.src_port = get16(bytes, ihl + 0);
    t.dst_port = get16(bytes, ihl + 2);
  }
  return t;
}

}  // namespace pclass::net
