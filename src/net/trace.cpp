#include "net/trace.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/binary_io.hpp"
#include "common/error.hpp"

namespace pclass::net {

void Trace::write(std::ostream& os) const {
  for (const TraceEntry& e : entries_) {
    os << e.header.src_ip << '\t' << e.header.dst_ip << '\t'
       << e.header.src_port << '\t' << e.header.dst_port << '\t'
       << unsigned{e.header.protocol};
    if (e.origin_rule.has_value()) {
      os << '\t' << e.origin_rule->value;
    }
    os << '\n';
  }
}

namespace {

constexpr u32 kTraceMagic = 0x31544350u;  // "PCT1" little-endian
constexpr u16 kTraceVersion = 1;
constexpr const char* kWhat = "binary trace";

}  // namespace

void Trace::write_binary(std::ostream& os) const {
  using namespace binary;
  put_u32(os, kTraceMagic);
  put_u16(os, kTraceVersion);
  put_u16(os, 0);  // reserved
  put_u64(os, entries_.size());
  for (const TraceEntry& e : entries_) {
    put_u32(os, e.header.src_ip);
    put_u32(os, e.header.dst_ip);
    put_u16(os, e.header.src_port);
    put_u16(os, e.header.dst_port);
    put_u8(os, e.header.protocol);
    put_u8(os, e.origin_rule.has_value() ? 1 : 0);
    put_u32(os, e.origin_rule.has_value() ? e.origin_rule->value : 0);
  }
}

Trace Trace::read_binary(std::istream& is) {
  using namespace binary;
  if (get_u32(is, kWhat) != kTraceMagic) {
    throw ParseError("binary trace: bad magic (not a PCT1 file)");
  }
  const u16 version = get_u16(is, kWhat);
  if (version != kTraceVersion) {
    throw ParseError("binary trace: unsupported version " +
                     std::to_string(version));
  }
  (void)get_u16(is, kWhat);  // reserved
  const u64 count = get_u64(is, kWhat);
  std::vector<TraceEntry> entries;
  // The count comes from untrusted bytes: cap the pre-reserve so a
  // corrupt header cannot force a huge allocation — a lying count then
  // fails with the truncation ParseError below, as intended.
  entries.reserve(std::min<u64>(count, 1u << 20));
  for (u64 i = 0; i < count; ++i) {
    TraceEntry e;
    e.header.src_ip = get_u32(is, kWhat);
    e.header.dst_ip = get_u32(is, kWhat);
    e.header.src_port = get_u16(is, kWhat);
    e.header.dst_port = get_u16(is, kWhat);
    e.header.protocol = get_u8(is, kWhat);
    const u8 has_origin = get_u8(is, kWhat);
    const u32 rid = get_u32(is, kWhat);
    if (has_origin != 0) {
      e.origin_rule = RuleId{rid};
    }
    entries.push_back(e);
  }
  return Trace{std::move(entries)};
}

Trace Trace::read(std::istream& is) {
  std::vector<TraceEntry> entries;
  std::string line;
  usize line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ss(line);
    u64 sip = 0, dip = 0, sport = 0, dport = 0, proto = 0;
    if (!(ss >> sip >> dip >> sport >> dport >> proto)) {
      throw ParseError("trace line " + std::to_string(line_no) +
                       ": expected 5 integer fields");
    }
    if (sip > 0xFFFFFFFFull || dip > 0xFFFFFFFFull || sport > 0xFFFF ||
        dport > 0xFFFF || proto > 0xFF) {
      throw ParseError("trace line " + std::to_string(line_no) +
                       ": field out of range");
    }
    TraceEntry e;
    e.header = FiveTuple{static_cast<u32>(sip), static_cast<u32>(dip),
                         static_cast<u16>(sport), static_cast<u16>(dport),
                         static_cast<u8>(proto)};
    if (u64 rid = 0; ss >> rid) {
      e.origin_rule = RuleId{static_cast<u32>(rid)};
    }
    entries.push_back(e);
  }
  return Trace{std::move(entries)};
}

}  // namespace pclass::net
