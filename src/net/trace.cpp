#include "net/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/error.hpp"

namespace pclass::net {

void Trace::write(std::ostream& os) const {
  for (const TraceEntry& e : entries_) {
    os << e.header.src_ip << '\t' << e.header.dst_ip << '\t'
       << e.header.src_port << '\t' << e.header.dst_port << '\t'
       << unsigned{e.header.protocol};
    if (e.origin_rule.has_value()) {
      os << '\t' << e.origin_rule->value;
    }
    os << '\n';
  }
}

Trace Trace::read(std::istream& is) {
  std::vector<TraceEntry> entries;
  std::string line;
  usize line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ss(line);
    u64 sip = 0, dip = 0, sport = 0, dport = 0, proto = 0;
    if (!(ss >> sip >> dip >> sport >> dport >> proto)) {
      throw ParseError("trace line " + std::to_string(line_no) +
                       ": expected 5 integer fields");
    }
    if (sip > 0xFFFFFFFFull || dip > 0xFFFFFFFFull || sport > 0xFFFF ||
        dport > 0xFFFF || proto > 0xFF) {
      throw ParseError("trace line " + std::to_string(line_no) +
                       ": field out of range");
    }
    TraceEntry e;
    e.header = FiveTuple{static_cast<u32>(sip), static_cast<u32>(dip),
                         static_cast<u16>(sport), static_cast<u16>(dport),
                         static_cast<u8>(proto)};
    if (u64 rid = 0; ss >> rid) {
      e.origin_rule = RuleId{static_cast<u32>(rid)};
    }
    entries.push_back(e);
  }
  return Trace{std::move(entries)};
}

}  // namespace pclass::net
