/// \file packet_batch.hpp
/// The unit of work of the dataplane runtime: a bounded batch of packets
/// streaming through the element pipeline (Click-style). Batching
/// amortises per-packet overhead (snapshot acquisition, virtual
/// dispatch, cache misses) across kDefaultBatchCapacity headers — the
/// software analogue of the paper's pipelined initiation interval.
///
/// A batch entry is either a pointer to raw packet bytes (parsed by the
/// Parser element) or a pre-parsed 5-tuple (trace-driven workloads skip
/// the wire format). Per-packet annotations accumulate in PacketMeta as
/// the batch moves down the pipeline; net/ stays layer-clean by storing
/// the action as the opaque 16-bit token the classifier carries
/// (sdn::ActionSpec::decode gives it meaning).
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"
#include "net/five_tuple.hpp"
#include "net/packet.hpp"

namespace pclass::net {

/// Default packets per batch (one cache-friendly burst, the classic
/// software-dataplane sweet spot).
inline constexpr usize kDefaultBatchCapacity = 32;

/// Per-packet pipeline annotations.
struct PacketMeta {
  std::optional<FiveTuple> tuple;  ///< set on entry or by the Parser
  bool parse_error = false;        ///< raw bytes were not classifiable
  bool resolved = false;           ///< a verdict (hit *or* miss) is set
  bool matched = false;            ///< verdict: some rule matched
  bool from_cache = false;         ///< verdict served by the flow cache
  RuleId rule{};                   ///< matched rule (valid when matched)
  Priority priority = kNoPriority;
  u32 action_token = 0;            ///< classifier action word
  u64 lookup_cycles = 0;           ///< modelled device cycles spent
  u64 memory_accesses = 0;         ///< modelled block-memory reads spent
};

/// A bounded, reusable batch of packets.
class PacketBatch {
 public:
  explicit PacketBatch(usize capacity = kDefaultBatchCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    packets_.reserve(capacity_);
    meta_.reserve(capacity_);
  }

  [[nodiscard]] usize size() const { return meta_.size(); }
  [[nodiscard]] usize capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return meta_.empty(); }
  [[nodiscard]] bool full() const { return meta_.size() >= capacity_; }

  /// Append a raw packet. Returns false (batch unchanged) when full.
  bool push(const Packet* p) {
    if (full()) return false;
    packets_.push_back(p);
    meta_.emplace_back();
    return true;
  }

  /// Append a pre-parsed header (no raw bytes behind it).
  bool push(const FiveTuple& t) {
    if (full()) return false;
    packets_.push_back(nullptr);
    PacketMeta m;
    m.tuple = t;
    meta_.push_back(m);
    return true;
  }

  /// Raw bytes of entry \p i; nullptr for pre-parsed entries.
  [[nodiscard]] const Packet* packet(usize i) const { return packets_[i]; }
  [[nodiscard]] PacketMeta& meta(usize i) { return meta_[i]; }
  [[nodiscard]] const PacketMeta& meta(usize i) const { return meta_[i]; }

  /// Reset to an empty batch (capacity and storage retained).
  void clear() {
    packets_.clear();
    meta_.clear();
    rule_version = 0;
  }

  /// Version of the rule-program snapshot that classified this batch
  /// (stamped by the Classifier element; 0 = not yet classified).
  u64 rule_version = 0;

 private:
  usize capacity_;
  std::vector<const Packet*> packets_;
  std::vector<PacketMeta> meta_;
};

}  // namespace pclass::net
