/// \file trace.hpp
/// Header-trace container with ClassBench trace-file compatible text I/O.
/// A trace line is five integers (optionally a sixth: the id of the rule
/// the header was derived from, used by correctness checks):
///   <src_ip> <dst_ip> <src_port> <dst_port> <protocol> [<rule_id>]
#pragma once

#include <iosfwd>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "net/five_tuple.hpp"

namespace pclass::net {

/// One trace record.
struct TraceEntry {
  FiveTuple header;
  /// Rule the generator derived this header from (not necessarily the
  /// HPMR — an earlier rule may shadow it).
  std::optional<RuleId> origin_rule;
};

/// A sequence of headers to classify.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<TraceEntry> entries)
      : entries_(std::move(entries)) {}

  [[nodiscard]] usize size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] const TraceEntry& operator[](usize i) const {
    return entries_[i];
  }
  [[nodiscard]] auto begin() const { return entries_.begin(); }
  [[nodiscard]] auto end() const { return entries_.end(); }

  void add(TraceEntry e) { entries_.push_back(e); }

  /// Drop every entry beyond the first \p n (no-op when n >= size());
  /// lets replay consumers cap a loaded trace without re-serializing.
  void truncate(usize n) {
    if (n < entries_.size()) entries_.resize(n);
  }

  /// Serialize in ClassBench trace format.
  void write(std::ostream& os) const;

  /// Parse a ClassBench-format trace. \throws ParseError on bad input.
  [[nodiscard]] static Trace read(std::istream& is);

  /// Serialize the versioned binary trace format ("PCT1"): fixed-width
  /// little-endian records, byte-identical for identical traces — the
  /// representation workload determinism tests and trace archives use.
  void write_binary(std::ostream& os) const;

  /// Parse the binary trace format. \throws ParseError on bad magic,
  /// unsupported version or truncated input.
  [[nodiscard]] static Trace read_binary(std::istream& is);

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace pclass::net
