/// \file packet.hpp
/// Minimal wire-format substrate: synthesize and parse real IPv4 +
/// TCP/UDP/ICMP headers so the classifier's phase-1 "header split" runs
/// against genuine packet bytes, not pre-parsed tuples. This is what a
/// deployment in front of a MAC/PHY would see.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "net/five_tuple.hpp"

namespace pclass::net {

inline constexpr u8 kProtoIcmp = 1;
inline constexpr u8 kProtoTcp = 6;
inline constexpr u8 kProtoUdp = 17;

inline constexpr usize kIpv4HeaderBytes = 20;
inline constexpr usize kTcpHeaderBytes = 20;
inline constexpr usize kUdpHeaderBytes = 8;

/// A raw packet plus its arrival metadata.
struct Packet {
  std::vector<u8> bytes;
  u64 arrival_ns = 0;

  [[nodiscard]] usize size() const { return bytes.size(); }
};

/// Build a well-formed IPv4 packet (correct version/IHL/length/checksum)
/// whose 5-tuple equals \p t. For TCP/UDP the L4 ports are filled; for
/// other protocols the port fields of \p t are ignored (they classify as
/// zero, mirroring hardware that reads fixed offsets).
/// \param payload_len  L4 payload bytes (zero-filled).
[[nodiscard]] Packet make_packet(const FiveTuple& t, usize payload_len = 0);

/// Parse the 5-tuple from raw bytes. Returns std::nullopt for truncated
/// or non-IPv4 input (the device's pre-classifier drop path).
[[nodiscard]] std::optional<FiveTuple> parse_five_tuple(
    std::span<const u8> bytes);

/// RFC 1071 16-bit one's-complement checksum over \p bytes.
[[nodiscard]] u16 internet_checksum(std::span<const u8> bytes);

}  // namespace pclass::net
