/// \file small_vec.hpp
/// Fixed-inline-capacity vector for hot-path scratch data.
///
/// The classifier's lookup path produces short per-dimension label lists
/// (almost always 1-3 entries); materializing them as std::vector cost
/// several heap allocations per packet. SmallVec keeps up to N elements
/// inline on the stack and only touches the heap in the (rare) overflow
/// case, so steady-state classification allocates nothing.
///
/// Deliberately minimal: trivially-copyable element types only, no
/// erase/insert — exactly what scratch label lists need.
#pragma once

#include <algorithm>
#include <memory>
#include <type_traits>

#include "common/types.hpp"

namespace pclass {

template <typename T, usize N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is for trivially-copyable scratch data");
  static_assert(N > 0);

 public:
  SmallVec() = default;
  SmallVec(const SmallVec&) = delete;
  SmallVec& operator=(const SmallVec&) = delete;

  void push_back(const T& v) {
    if (size_ == capacity_) grow();
    data_[size_++] = v;
  }

  void clear() { size_ = 0; }

  [[nodiscard]] usize size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// True when the contents spilled past the inline capacity.
  [[nodiscard]] bool on_heap() const { return data_ != inline_; }

  [[nodiscard]] T& operator[](usize i) { return data_[i]; }
  [[nodiscard]] const T& operator[](usize i) const { return data_[i]; }
  [[nodiscard]] T& front() { return data_[0]; }
  [[nodiscard]] const T& front() const { return data_[0]; }

  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }

 private:
  void grow() {
    const usize new_cap = capacity_ * 2;
    auto bigger = std::make_unique<T[]>(new_cap);
    std::copy(data_, data_ + size_, bigger.get());
    heap_ = std::move(bigger);
    data_ = heap_.get();
    capacity_ = new_cap;
  }

  T inline_[N];
  T* data_ = inline_;
  usize size_ = 0;
  usize capacity_ = N;
  std::unique_ptr<T[]> heap_;
};

/// The lookup path's scratch label list. 8 inline slots cover the label
/// lists real filter sets produce (leaf-pushed trie lists rarely exceed
/// a handful of labels); longer lists spill to the heap, correctly.
using LabelVec = SmallVec<Label, 8>;

}  // namespace pclass
