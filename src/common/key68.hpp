/// \file key68.hpp
/// The 68-bit merged label key of the architecture's phase 3 (§III.C.1):
/// the highest-priority label of each of the 7 dimensions is concatenated
/// into one 68-bit segment, which a hardware hash maps to the HPMR address
/// in the Rule Filter memory.
///
/// Layout (MSB -> LSB), fixed by the architecture:
///   [67:55] src_ip_hi label   (13 bits)
///   [54:42] src_ip_lo label   (13 bits)
///   [41:29] dst_ip_hi label   (13 bits)
///   [28:16] dst_ip_lo label   (13 bits)
///   [15: 9] src_port label    ( 7 bits)
///   [ 8: 2] dst_port label    ( 7 bits)
///   [ 1: 0] protocol label    ( 2 bits)
#pragma once

#include <array>
#include <cassert>
#include <functional>

#include "common/bits.hpp"
#include "common/types.hpp"

namespace pclass {

/// A 68-bit value stored as {high 4 bits, low 64 bits}. Regular type:
/// equality-comparable, hashable, totally ordered.
class Key68 {
 public:
  constexpr Key68() = default;
  constexpr Key68(u8 hi4, u64 lo64) : hi_(hi4 & 0xFu), lo_(lo64) {}

  /// Build the merged key from one label per dimension, in the canonical
  /// order of kAllDimensions. Each label must fit the dimension width.
  [[nodiscard]] static Key68 merge(
      const std::array<Label, kNumDimensions>& labels) {
    Key68 k;
    for (Dimension d : kAllDimensions) {
      const Label l = labels[index_of(d)];
      assert(l.valid());
      assert(u64{l.value} <= mask_low(label_bits(d)));
      k = k.shifted_in(l.value, label_bits(d));
    }
    return k;
  }

  /// Shift this key left by \p width bits and OR in \p field.
  [[nodiscard]] constexpr Key68 shifted_in(u64 field, unsigned width) const {
    assert(width <= 64 && field <= mask_low(width));
    const u8 new_hi = static_cast<u8>(
        ((u64{hi_} << width) | (width == 64 ? lo_ : lo_ >> (64 - width))) &
        0xFu);
    const u64 new_lo = (width == 64 ? 0 : lo_ << width) | field;
    return Key68{new_hi, new_lo};
  }

  [[nodiscard]] constexpr u8 hi4() const { return hi_; }
  [[nodiscard]] constexpr u64 lo64() const { return lo_; }

  friend constexpr auto operator<=>(const Key68&, const Key68&) = default;

 private:
  u8 hi_ = 0;   // bits [67:64]
  u64 lo_ = 0;  // bits [63:0]
};

}  // namespace pclass

template <>
struct std::hash<pclass::Key68> {
  std::size_t operator()(const pclass::Key68& k) const noexcept {
    // splitmix-style avalanche over the 68 bits.
    pclass::u64 x = k.lo64() ^ (pclass::u64{k.hi4()} << 60);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};
