/// \file random.hpp
/// Deterministic, seedable RNG used by the synthetic ruleset/trace
/// generators and the property tests. We do not use std::mt19937 directly
/// in public interfaces so generated artifacts are stable across standard
/// library implementations.
#pragma once

#include <cassert>

#include "common/bits.hpp"
#include "common/types.hpp"

namespace pclass {

/// xoshiro256** with splitmix64 seeding — fast, reproducible, decent
/// statistical quality for workload generation (not cryptographic).
class Rng {
 public:
  explicit Rng(u64 seed = 0xC0FFEE123456789ULL) { reseed(seed); }

  void reseed(u64 seed) {
    u64 x = seed;
    for (auto& s : state_) {
      // splitmix64 stream expands the single seed word.
      x += 0x9E3779B97F4A7C15ULL;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  u64 next() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  u64 below(u64 bound) {
    assert(bound > 0);
    // Multiply-high rejection-free reduction; bias is negligible for the
    // bounds used here (<< 2^64) and determinism matters more.
    return mul_high_u64(next(), bound);
  }

  /// Uniform integer in [lo, hi] inclusive.
  u64 between(u64 lo, u64 hi) {
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability \p p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  u64 state_[4] = {};
};

}  // namespace pclass
