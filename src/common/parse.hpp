/// \file parse.hpp
/// Strict CLI number parsing shared by the tools and benches.
#pragma once

#include <iostream>
#include <string>

#include "common/types.hpp"

namespace pclass {

/// Parse a strict non-negative decimal into \p out. Unlike bare
/// std::stoul this rejects "-1" (which would wrap to a huge unsigned)
/// and trailing garbage like "8x"; failures print to stderr and return
/// false so callers can fall through to their usage message.
inline bool parse_count(const std::string& text, u64& out) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    std::cerr << "error: not a number: " << text << "\n";
    return false;
  }
  try {
    out = std::stoull(text);
    return true;
  } catch (const std::exception&) {
    std::cerr << "error: number out of range: " << text << "\n";
    return false;
  }
}

}  // namespace pclass
