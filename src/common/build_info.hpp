/// \file build_info.hpp
/// Build/version metadata surfaced end-to-end: `--version` on every
/// CLI, the `meta.build` block of the pclass-scenarios-v1 report, the
/// `pclass_build_info` Prometheus gauge and the daemon's `read version`
/// handler. One source of truth so a scraped metric, a report artifact
/// and a CLI banner can always be traced to the same binary.
#pragma once

#include <string>

namespace pclass::common {

struct BuildInfo {
  /// Semantic-ish repo version; bumped per PR series, not per commit
  /// (the git sha is the per-commit identity).
  std::string version;
  /// Short git sha of the checkout the binary was configured from
  /// ("unknown" outside a git tree, e.g. a source tarball build).
  std::string git_sha;
  /// Compiler identification (from __VERSION__).
  std::string compiler;
  /// CMake build type (Release, RelWithDebInfo, Debug, ...).
  std::string build_type;
};

/// The metadata baked into this binary.
[[nodiscard]] const BuildInfo& build_info();

/// One-line banner: "<tool> <version> (<sha>, <build_type>, <compiler>)".
/// What every CLI prints for `--version`.
[[nodiscard]] std::string version_line(const std::string& tool);

}  // namespace pclass::common
