/// \file binary_io.hpp
/// Fixed-width little-endian stream primitives shared by every versioned
/// binary format in the repository (PCT1 traces, PCR1 rulesets). One
/// codec, one place: the byte layout is what the workload determinism
/// tests assert on, so it must not be able to drift between formats.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "common/error.hpp"
#include "common/types.hpp"

namespace pclass::binary {

inline void put_u8(std::ostream& os, u8 v) {
  os.put(static_cast<char>(v));
}
inline void put_u16(std::ostream& os, u16 v) {
  put_u8(os, static_cast<u8>(v & 0xFF));
  put_u8(os, static_cast<u8>(v >> 8));
}
inline void put_u32(std::ostream& os, u32 v) {
  put_u16(os, static_cast<u16>(v & 0xFFFF));
  put_u16(os, static_cast<u16>(v >> 16));
}
inline void put_u64(std::ostream& os, u64 v) {
  put_u32(os, static_cast<u32>(v & 0xFFFFFFFFu));
  put_u32(os, static_cast<u32>(v >> 32));
}

/// \throws ParseError mentioning \p what on EOF.
inline u8 get_u8(std::istream& is, const char* what) {
  const int c = is.get();
  if (c == std::char_traits<char>::eof()) {
    throw ParseError(std::string(what) + ": truncated input");
  }
  return static_cast<u8>(c);
}
inline u16 get_u16(std::istream& is, const char* what) {
  const u16 lo = get_u8(is, what);
  return static_cast<u16>(lo | (u16{get_u8(is, what)} << 8));
}
inline u32 get_u32(std::istream& is, const char* what) {
  const u32 lo = get_u16(is, what);
  return lo | (u32{get_u16(is, what)} << 16);
}
inline u64 get_u64(std::istream& is, const char* what) {
  const u64 lo = get_u32(is, what);
  return lo | (u64{get_u32(is, what)} << 32);
}

}  // namespace pclass::binary
