/// \file hash.hpp
/// Hash functions modelling the hardware hash unit that maps the 68-bit
/// merged label key to a Rule Filter address (§IV.A: "The final address to
/// store each rule in the Rule Filter block is performed using a hash
/// function implemented in hardware").
///
/// Two families are provided:
///   * Crc32Hash        — table-driven CRC-32 (IEEE 802.3 polynomial), the
///                        classic FPGA-friendly choice (XOR tree).
///   * MultiplyShiftHash— 2-universal multiply-shift, cheap in DSP blocks.
/// Both reduce a Key68 to a table index in a single model cycle.
#pragma once

#include <array>

#include "common/key68.hpp"
#include "common/types.hpp"

namespace pclass {

/// CRC-32 (reflected, polynomial 0xEDB88320) over a byte stream.
class Crc32 {
 public:
  /// CRC of \p len bytes at \p data, seeded with \p seed.
  [[nodiscard]] static u32 compute(const u8* data, usize len,
                                   u32 seed = 0xFFFFFFFFu) {
    u32 crc = seed;
    for (usize i = 0; i < len; ++i) {
      crc = (crc >> 8) ^ table()[(crc ^ data[i]) & 0xFFu];
    }
    return ~crc;
  }

  [[nodiscard]] static u32 compute_u64(u64 v, u32 seed = 0xFFFFFFFFu) {
    std::array<u8, 8> bytes{};
    for (unsigned i = 0; i < 8; ++i) {
      bytes[i] = static_cast<u8>(v >> (8 * i));
    }
    return compute(bytes.data(), bytes.size(), seed);
  }

 private:
  static const std::array<u32, 256>& table();
};

/// Hardware hash unit model: Key68 -> bucket index in [0, capacity).
/// Capacity does not need to be a power of two (the model uses a
/// multiply-high range reduction, which synthesizes to one DSP multiply).
class Key68Hasher {
 public:
  /// \param capacity  number of addressable buckets (> 0).
  /// \param seed      per-instance salt; the controller may re-seed to
  ///                  resolve pathological collision clusters.
  explicit Key68Hasher(u32 capacity, u64 seed = 0x9E3779B97F4A7C15ULL);

  [[nodiscard]] u32 capacity() const { return capacity_; }
  [[nodiscard]] u64 seed() const { return seed_; }

  /// Map a 68-bit key to a bucket index.
  [[nodiscard]] u32 operator()(const Key68& key) const;

 private:
  u32 capacity_;
  u64 seed_;
};

/// 64-bit finalizer (splitmix64 avalanche) — used for software-side maps.
[[nodiscard]] constexpr u64 mix64(u64 x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace pclass
