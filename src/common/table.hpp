/// \file table.hpp
/// Minimal fixed-column text-table formatter used by the benchmark harness
/// to print paper-style tables (Tables I-VII) with aligned columns.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace pclass {

/// Accumulates rows of strings and renders them with per-column widths.
/// Number formatting is the caller's job (use TextTable::num helpers).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Render with a rule line under the header.
  void print(std::ostream& os) const {
    std::vector<usize> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (usize i = 0; i < row.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], row[i].size());
      }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto emit = [&](const std::vector<std::string>& row) {
      for (usize i = 0; i < width.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : std::string{};
        os << "  " << std::left << std::setw(static_cast<int>(width[i]))
           << cell;
      }
      os << '\n';
    };
    emit(header_);
    usize total = 0;
    for (usize w : width) total += w + 2;
    os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
    for (const auto& r : rows_) emit(r);
  }

  /// Format a double with \p prec digits after the point.
  [[nodiscard]] static std::string num(double v, int prec = 2) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(prec) << v;
    return ss.str();
  }

  [[nodiscard]] static std::string num(u64 v) { return std::to_string(v); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pclass
