/// \file types.hpp
/// Fixed-width integer aliases and strong identifier types shared by every
/// pclass subsystem.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace pclass {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using usize = std::size_t;

/// Rule priority. Smaller value = higher priority (ACL order: the first
/// matching rule in the filter file wins). This matches the paper's
/// Highest Priority Matching Rule (HPMR) semantics.
using Priority = u32;

/// Sentinel priority used for "no match".
inline constexpr Priority kNoPriority = std::numeric_limits<Priority>::max();

/// Strongly-typed rule identifier. A RuleId is stable across incremental
/// updates (it is not an index into a vector that might be compacted).
struct RuleId {
  u32 value = kInvalid;

  static constexpr u32 kInvalid = std::numeric_limits<u32>::max();

  constexpr RuleId() = default;
  constexpr explicit RuleId(u32 v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }

  friend constexpr auto operator<=>(RuleId, RuleId) = default;
};

/// The seven lookup dimensions of the architecture (Fig. 2). Each 32-bit IP
/// address is split into two independently-searched 16-bit segments
/// (§III.C "This architecture partitions the IP address field into two
/// 16-bit segments"), so the 5-tuple becomes 7 single-field lookups.
enum class Dimension : u8 {
  kSrcIpHi = 0,  ///< high 16 bits of the source IP address
  kSrcIpLo = 1,  ///< low 16 bits of the source IP address
  kDstIpHi = 2,  ///< high 16 bits of the destination IP address
  kDstIpLo = 3,  ///< low 16 bits of the destination IP address
  kSrcPort = 4,  ///< 16-bit source port
  kDstPort = 5,  ///< 16-bit destination port
  kProtocol = 6, ///< 8-bit IP protocol
};

inline constexpr usize kNumDimensions = 7;

/// All dimensions in canonical order, for range-for iteration.
inline constexpr Dimension kAllDimensions[kNumDimensions] = {
    Dimension::kSrcIpHi, Dimension::kSrcIpLo,  Dimension::kDstIpHi,
    Dimension::kDstIpLo, Dimension::kSrcPort,  Dimension::kDstPort,
    Dimension::kProtocol};

[[nodiscard]] constexpr usize index_of(Dimension d) {
  return static_cast<usize>(d);
}

[[nodiscard]] constexpr const char* to_string(Dimension d) {
  switch (d) {
    case Dimension::kSrcIpHi: return "src_ip_hi";
    case Dimension::kSrcIpLo: return "src_ip_lo";
    case Dimension::kDstIpHi: return "dst_ip_hi";
    case Dimension::kDstIpLo: return "dst_ip_lo";
    case Dimension::kSrcPort: return "src_port";
    case Dimension::kDstPort: return "dst_port";
    case Dimension::kProtocol: return "protocol";
  }
  return "?";
}

/// Label bit-widths per dimension family (§III.C.1: "The label sizes are
/// 13 bits, 7 bits and 2 bits for IP address, Port and Protocol fields").
inline constexpr unsigned kIpLabelBits = 13;
inline constexpr unsigned kPortLabelBits = 7;
inline constexpr unsigned kProtoLabelBits = 2;

/// Width of the merged phase-3 key: 4 IP-segment labels + 2 port labels +
/// 1 protocol label = 4*13 + 2*7 + 2 = 68 bits (§III.C.1 "merged in one
/// large data segment (68 bits)").
inline constexpr unsigned kMergedKeyBits =
    4 * kIpLabelBits + 2 * kPortLabelBits + kProtoLabelBits;
static_assert(kMergedKeyBits == 68);

[[nodiscard]] constexpr unsigned label_bits(Dimension d) {
  switch (d) {
    case Dimension::kSrcIpHi:
    case Dimension::kSrcIpLo:
    case Dimension::kDstIpHi:
    case Dimension::kDstIpLo: return kIpLabelBits;
    case Dimension::kSrcPort:
    case Dimension::kDstPort: return kPortLabelBits;
    case Dimension::kProtocol: return kProtoLabelBits;
  }
  return 0;
}

/// A per-dimension label: the small tag assigned to each *unique* rule
/// field value (the DCFL label method, §III.C). Labels are dense and
/// allocated by alg::LabelAllocator; width is checked against
/// label_bits(dimension) at allocation time.
struct Label {
  u16 value = kInvalid;

  static constexpr u16 kInvalid = std::numeric_limits<u16>::max();

  constexpr Label() = default;
  constexpr explicit Label(u16 v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }

  friend constexpr auto operator<=>(Label, Label) = default;
};

}  // namespace pclass

template <>
struct std::hash<pclass::RuleId> {
  std::size_t operator()(pclass::RuleId id) const noexcept {
    return std::hash<pclass::u32>{}(id.value);
  }
};

template <>
struct std::hash<pclass::Label> {
  std::size_t operator()(pclass::Label l) const noexcept {
    return std::hash<pclass::u16>{}(l.value);
  }
};
