/// \file error.hpp
/// Exception hierarchy for pclass. Exceptions signal *failures to satisfy
/// an interface contract* (bad configuration, exhausted hardware capacity,
/// malformed input files). Expected conditions — e.g. "no rule matched
/// this packet" — are represented with std::optional, never exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace pclass {

/// Base class for all pclass errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A hardware resource (memory block, register file, label space, rule
/// filter) ran out of capacity. The controller is expected to catch this
/// and either re-shard, re-seed the hash, or reject the FlowMod.
class CapacityError : public Error {
 public:
  using Error::Error;
};

/// Invalid configuration (e.g. stride sum != segment width, zero-sized
/// memory, label width too small for the requested table).
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// Malformed input (ClassBench filter file, trace file, FlowMod message).
class ParseError : public Error {
 public:
  using Error::Error;
};

/// Internal invariant violation — indicates a bug in pclass itself, not
/// in the caller. Tests assert these are never thrown.
class InternalError : public Error {
 public:
  using Error::Error;
};

}  // namespace pclass
