/// \file bits.hpp
/// Bit-manipulation helpers used when encoding/decoding hardware memory
/// words and when slicing packet headers into per-dimension search keys.
#pragma once

#include <bit>
#include <cassert>

#include "common/types.hpp"

namespace pclass {

/// Mask with the low \p n bits set. n == 64 is allowed.
[[nodiscard]] constexpr u64 mask_low(unsigned n) {
  assert(n <= 64);
  return n >= 64 ? ~u64{0} : ((u64{1} << n) - 1);
}

/// Extract \p width bits of \p value starting at bit \p lsb (LSB = bit 0).
[[nodiscard]] constexpr u64 extract_bits(u64 value, unsigned lsb,
                                         unsigned width) {
  assert(lsb < 64 && width <= 64);
  return (value >> lsb) & mask_low(width);
}

/// Deposit \p field (of \p width bits) into \p word at bit \p lsb,
/// replacing whatever was there.
[[nodiscard]] constexpr u64 deposit_bits(u64 word, u64 field, unsigned lsb,
                                         unsigned width) {
  assert(field <= mask_low(width));
  const u64 m = mask_low(width) << lsb;
  return (word & ~m) | ((field << lsb) & m);
}

/// ceil(log2(n)); returns 0 for n <= 1. Number of address bits needed to
/// index n entries.
[[nodiscard]] constexpr unsigned ceil_log2(u64 n) {
  if (n <= 1) return 0;
  return static_cast<unsigned>(64 - std::countl_zero(n - 1));
}

[[nodiscard]] constexpr u64 ceil_div(u64 a, u64 b) {
  assert(b != 0);
  return (a + b - 1) / b;
}

/// Round \p v up to the next power of two (returns 1 for v == 0).
[[nodiscard]] constexpr u64 next_pow2(u64 v) {
  return v <= 1 ? 1 : u64{1} << ceil_log2(v);
}

/// High 64 bits of the 128-bit product a*b (used for unbiased range
/// reduction of hashes and random numbers).
[[nodiscard]] inline u64 mul_high_u64(u64 a, u64 b) {
#if defined(__SIZEOF_INT128__)
  __extension__ using u128 = unsigned __int128;
  return static_cast<u64>((static_cast<u128>(a) * b) >> 64);
#else
  const u64 a_lo = a & 0xFFFFFFFFu, a_hi = a >> 32;
  const u64 b_lo = b & 0xFFFFFFFFu, b_hi = b >> 32;
  const u64 mid = a_hi * b_lo + ((a_lo * b_lo) >> 32);
  const u64 mid2 = a_lo * b_hi + (mid & 0xFFFFFFFFu);
  return a_hi * b_hi + (mid >> 32) + (mid2 >> 32);
#endif
}

/// High 16-bit segment of a 32-bit IP address.
[[nodiscard]] constexpr u16 ip_hi16(u32 ip) {
  return static_cast<u16>(ip >> 16);
}

/// Low 16-bit segment of a 32-bit IP address.
[[nodiscard]] constexpr u16 ip_lo16(u32 ip) {
  return static_cast<u16>(ip & 0xFFFFu);
}

/// Compose an IPv4 address from dotted-quad octets (a.b.c.d).
[[nodiscard]] constexpr u32 ipv4(u8 a, u8 b, u8 c, u8 d) {
  return (u32{a} << 24) | (u32{b} << 16) | (u32{c} << 8) | u32{d};
}

}  // namespace pclass
