#include "common/hash.hpp"

#include <stdexcept>

namespace pclass {

const std::array<u32, 256>& Crc32::table() {
  static const std::array<u32, 256> t = [] {
    std::array<u32, 256> out{};
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      out[i] = c;
    }
    return out;
  }();
  return t;
}

Key68Hasher::Key68Hasher(u32 capacity, u64 seed)
    : capacity_(capacity), seed_(seed) {
  if (capacity == 0) {
    throw std::invalid_argument("Key68Hasher: capacity must be > 0");
  }
}

u32 Key68Hasher::operator()(const Key68& key) const {
  // Fold the 68 bits with the salt, avalanche, then multiply-high range
  // reduction (Lemire) so non-power-of-two capacities stay uniform.
  const u64 folded = mix64(key.lo64() ^ seed_) ^
                     mix64((u64{key.hi4()} << 32) ^ (seed_ >> 7));
  const u64 h = mix64(folded);
  return static_cast<u32>(mul_high_u64(h, capacity_));
}

}  // namespace pclass
