#include "common/build_info.hpp"

// The CMake build stamps these two onto this translation unit only (see
// the set_property(SOURCE ...) block); fall back to "unknown" so the
// file also compiles standalone.
#ifndef PCLASS_GIT_SHA
#define PCLASS_GIT_SHA "unknown"
#endif
#ifndef PCLASS_BUILD_TYPE
#define PCLASS_BUILD_TYPE "unknown"
#endif

namespace pclass::common {

namespace {
constexpr const char* kVersion = "0.7.0";

const char* compiler_id() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}
}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info{kVersion, PCLASS_GIT_SHA, compiler_id(),
                              PCLASS_BUILD_TYPE};
  return info;
}

std::string version_line(const std::string& tool) {
  const BuildInfo& b = build_info();
  return tool + " " + b.version + " (" + b.git_sha + ", " + b.build_type +
         ", " + b.compiler + ")";
}

}  // namespace pclass::common
