/// \file pipeline.hpp
/// Pipeline timing model for the 4-phase lookup process (Fig. 3):
///   phase 1  header split + algorithm dispatch
///   phase 2  parallel per-field lookup
///   phase 3  label combination (merge + hash)
///   phase 4  rule filter memory access
///
/// A stage is described by its latency (cycles a single item spends in
/// it) and its initiation interval (cycles between successive items it
/// can accept). A fully pipelined stage has II = 1 (the MBT path); a
/// blocking stage has II = latency (the BST walk, which iterates on one
/// shared memory port).
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace pclass::hw {

/// One pipeline stage.
struct Stage {
  std::string name;
  u64 latency = 1;              ///< cycles one item occupies the stage
  u64 initiation_interval = 1;  ///< min cycles between item starts
};

/// Timing report for a stream of packets through the pipeline.
struct PipelineTiming {
  u64 packets = 0;
  u64 total_cycles = 0;       ///< first input to last output
  u64 latency_cycles = 0;     ///< per-packet latency (sum of stage latencies)
  double cycles_per_packet = 0.0;  ///< steady-state initiation interval
};

/// Static pipeline model: composes stage latencies / IIs analytically and
/// also supports a cycle-stepped simulation for verification (the two
/// must agree; tests assert it).
class Pipeline {
 public:
  explicit Pipeline(std::vector<Stage> stages);

  [[nodiscard]] const std::vector<Stage>& stages() const { return stages_; }

  /// Per-packet latency: sum of stage latencies.
  [[nodiscard]] u64 latency() const;

  /// Steady-state initiation interval: max stage II.
  [[nodiscard]] u64 initiation_interval() const;

  /// Analytic timing for \p packets back-to-back packets.
  [[nodiscard]] PipelineTiming run(u64 packets) const;

  /// Cycle-stepped simulation of \p packets back-to-back packets.
  /// Used by tests to validate the analytic model.
  [[nodiscard]] PipelineTiming simulate(u64 packets) const;

 private:
  std::vector<Stage> stages_;
};

}  // namespace pclass::hw
