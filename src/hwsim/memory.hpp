/// \file memory.hpp
/// Block-RAM model. Every persistent datum in the architecture (trie
/// nodes, BST nodes, label lists, protocol LUT, rule filter) lives in a
/// named hw::Memory so that the paper's "memory space" and "memory
/// accesses" columns are *measured* quantities.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "hwsim/cycle.hpp"
#include "hwsim/word.hpp"

namespace pclass::hw {

/// Lifetime access statistics of one memory block.
struct MemoryStats {
  u64 reads = 0;
  u64 writes = 0;
};

/// A single-port block memory: \p depth words of \p word_bits bits.
///
/// Reads charge one memory access and \p read_cycles clock cycles into the
/// supplied CycleRecorder (a nullptr recorder is allowed for debug /
/// controller-side peeking, which models the software shadow copy and is
/// *not* counted).
class Memory {
 public:
  /// \throws ConfigError for zero geometry or word_bits > 128.
  Memory(std::string name, u32 depth, unsigned word_bits,
         unsigned read_cycles = 1);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] u32 depth() const { return depth_; }
  [[nodiscard]] unsigned word_bits() const { return word_bits_; }
  [[nodiscard]] unsigned read_cycles() const { return read_cycles_; }

  /// Physical capacity in bits (depth * word_bits) — what synthesis
  /// would allocate in block RAM.
  [[nodiscard]] u64 capacity_bits() const {
    return u64{depth_} * word_bits_;
  }

  /// Bits actually holding live data (high-water mark of written words).
  [[nodiscard]] u64 used_bits() const { return used_words_ * word_bits_; }
  [[nodiscard]] u64 used_words() const { return used_words_; }

  /// Hardware-path read: charges cost into \p rec when non-null.
  /// \throws ConfigError on out-of-range address.
  [[nodiscard]] Word read(u32 addr, CycleRecorder* rec) const;

  /// Hardware-path write (one cycle on the update bus is charged by the
  /// caller; the memory itself just stores and counts).
  void write(u32 addr, Word value);

  /// Clear contents and high-water mark (reconfiguration flush).
  void clear();

  [[nodiscard]] MemoryStats stats() const {
    return MemoryStats{reads_.load(std::memory_order_relaxed),
                       writes_.load(std::memory_order_relaxed)};
  }
  void reset_stats() {
    reads_.store(0, std::memory_order_relaxed);
    writes_.store(0, std::memory_order_relaxed);
  }

 private:
  void check_addr(u32 addr) const;

  std::string name_;
  u32 depth_;
  unsigned word_bits_;
  unsigned read_cycles_;
  std::vector<Word> data_;
  u64 used_words_ = 0;
  // Relaxed atomics: the lookup path is const but metered, and dataplane
  // workers read one frozen snapshot concurrently — counters must not be
  // a data race. Ordering carries no meaning, only the totals do.
  mutable std::atomic<u64> reads_{0};
  std::atomic<u64> writes_{0};
};

}  // namespace pclass::hw
