/// \file memory.hpp
/// Block-RAM model. Every persistent datum in the architecture (trie
/// nodes, BST nodes, label lists, protocol LUT, rule filter) lives in a
/// named hw::Memory so that the paper's "memory space" and "memory
/// accesses" columns are *measured* quantities.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "hwsim/cycle.hpp"
#include "hwsim/word.hpp"

namespace pclass::hw {

/// Lifetime statistics of one memory block's *update path*. Lookup-path
/// reads are deliberately not tracked here: they are charged into the
/// caller's CycleRecorder, which travels the lookup path per worker, so
/// N dataplane workers reading one frozen snapshot never contend on a
/// shared counter cache line (they used to, via relaxed fetch_adds).
struct MemoryStats {
  u64 writes = 0;
};

/// A single-port block memory: \p depth words of \p word_bits bits.
///
/// Reads charge one memory access and \p read_cycles clock cycles into the
/// supplied CycleRecorder (a nullptr recorder is allowed for debug /
/// controller-side peeking, which models the software shadow copy and is
/// *not* counted).
class Memory {
 public:
  /// \throws ConfigError for zero geometry or word_bits > 128.
  Memory(std::string name, u32 depth, unsigned word_bits,
         unsigned read_cycles = 1);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] u32 depth() const { return depth_; }
  [[nodiscard]] unsigned word_bits() const { return word_bits_; }
  [[nodiscard]] unsigned read_cycles() const { return read_cycles_; }

  /// Physical capacity in bits (depth * word_bits) — what synthesis
  /// would allocate in block RAM.
  [[nodiscard]] u64 capacity_bits() const {
    return u64{depth_} * word_bits_;
  }

  /// Bits actually holding live data (high-water mark of written words).
  [[nodiscard]] u64 used_bits() const { return used_words_ * word_bits_; }
  [[nodiscard]] u64 used_words() const { return used_words_; }

  /// Hardware-path read: charges cost into \p rec when non-null.
  /// \throws ConfigError on out-of-range address.
  [[nodiscard]] Word read(u32 addr, CycleRecorder* rec) const;

  /// Hardware-path write (one cycle on the update bus is charged by the
  /// caller; the memory itself just stores and counts).
  void write(u32 addr, Word value);

  /// Clear contents and high-water mark (reconfiguration flush).
  void clear();

  [[nodiscard]] MemoryStats stats() const {
    return MemoryStats{writes_};
  }
  void reset_stats() { writes_ = 0; }

 private:
  void check_addr(u32 addr) const;

  std::string name_;
  u32 depth_;
  unsigned word_bits_;
  unsigned read_cycles_;
  std::vector<Word> data_;
  u64 used_words_ = 0;
  // Plain counter: writes happen only on the serialized update path
  // (the publisher holds the writer lock; a replica is never written
  // while readers hold it). The read path keeps no shared state at all.
  u64 writes_ = 0;
};

}  // namespace pclass::hw
