#include "hwsim/memory.hpp"

namespace pclass::hw {

Memory::Memory(std::string name, u32 depth, unsigned word_bits,
               unsigned read_cycles)
    : name_(std::move(name)),
      depth_(depth),
      word_bits_(word_bits),
      read_cycles_(read_cycles),
      data_(depth) {
  if (depth == 0) {
    throw ConfigError("Memory '" + name_ + "': depth must be > 0");
  }
  if (word_bits == 0 || word_bits > 128) {
    throw ConfigError("Memory '" + name_ +
                      "': word_bits must be in [1, 128]");
  }
}

void Memory::check_addr(u32 addr) const {
  if (addr >= depth_) {
    throw ConfigError("Memory '" + name_ + "': address " +
                      std::to_string(addr) + " out of range (depth " +
                      std::to_string(depth_) + ")");
  }
}

Word Memory::read(u32 addr, CycleRecorder* rec) const {
  check_addr(addr);
  if (rec != nullptr) {
    rec->charge(read_cycles_, 1);
  }
  return data_[addr];
}

void Memory::write(u32 addr, Word value) {
  check_addr(addr);
  ++writes_;
  data_[addr] = value;
  used_words_ = std::max<u64>(used_words_, u64{addr} + 1);
}

void Memory::clear() {
  data_.assign(depth_, Word{});
  used_words_ = 0;
}

}  // namespace pclass::hw
