/// \file synthesis.hpp
/// Analytical FPGA-resource model standing in for Quartus synthesis
/// (Table V). We cannot run the vendor toolchain in this environment, so:
///
///   * block-memory bits are MEASURED: the sum of capacity_bits() over
///     every hw::Memory registered by the device;
///   * register bits are MEASURED from register files + pipeline stage
///     registers;
///   * logic (ALM) usage is ESTIMATED from per-structure coefficients
///     calibrated against the paper's Stratix V result (79,835 ALMs for
///     the full dual-algorithm classifier); the calibration is documented
///     in EXPERIMENTS.md and the coefficients are exposed so ablations can
///     vary them;
///   * fmax is a model parameter defaulting to the paper's 133.51 MHz.
///
/// The target device constants are those of the paper's Altera Stratix V
/// 5SGXMB6R3F43C4.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "hwsim/memory.hpp"
#include "hwsim/register_file.hpp"

namespace pclass::hw {

/// Capacity of the paper's target device (Table V denominators).
struct DeviceLimits {
  u64 alms = 225'400;
  u64 block_memory_bits = 54'476'800;
  u32 pins = 908;
};

/// Table V-shaped report.
struct SynthesisReport {
  u64 logic_alms = 0;
  u64 block_memory_bits = 0;
  u64 registers = 0;
  double fmax_mhz = 0.0;
  u32 pins_used = 0;
  DeviceLimits device{};

  [[nodiscard]] double memory_utilization() const {
    return static_cast<double>(block_memory_bits) /
           static_cast<double>(device.block_memory_bits);
  }
  [[nodiscard]] double logic_utilization() const {
    return static_cast<double>(logic_alms) /
           static_cast<double>(device.alms);
  }
};

/// Logic-estimate coefficients (ALMs per structural unit). Defaults are
/// calibrated so that the paper's full dual-algorithm configuration
/// reproduces Table V's 79,835 ALMs / 129,273 registers; see
/// EXPERIMENTS.md §Table V for the calibration arithmetic.
struct LogicCoefficients {
  double alm_per_memory_port = 1'200.0;  ///< decode, word mux, ecc glue
  double alm_per_register_bit = 2.8;     ///< parallel compare tree share
  double alm_per_pipeline_stage = 3'500.0;
  double alm_hash_unit = 4'000.0;
  double alm_control = 12'000.0;  ///< FSMs, update bus, config plane
  /// Flip-flops per ALM beyond the explicitly modelled register files
  /// (Stratix V designs typically sit near 1.5 registers/ALM).
  double regs_per_alm = 1.49;
};

/// Accumulates the structures of a device model and emits the report.
class SynthesisModel {
 public:
  explicit SynthesisModel(LogicCoefficients coeff = {},
                          DeviceLimits limits = {})
      : coeff_(coeff), limits_(limits) {}

  void add_memory(const Memory& m) {
    memory_bits_ += m.capacity_bits();
    ++memory_ports_;
  }
  void add_register_file(const RegisterFile& rf) {
    register_bits_ += rf.total_bits();
  }
  void add_pipeline_stages(u64 n, u64 stage_width_bits) {
    pipeline_stages_ += n;
    pipeline_register_bits_ += n * stage_width_bits;
  }
  void add_hash_units(u64 n) { hash_units_ += n; }
  void set_fmax_mhz(double f) { fmax_mhz_ = f; }
  void set_pins_used(u32 p) { pins_used_ = p; }

  [[nodiscard]] SynthesisReport report() const {
    SynthesisReport r;
    r.block_memory_bits = memory_bits_;
    r.logic_alms = static_cast<u64>(
        coeff_.alm_control +
        coeff_.alm_per_memory_port * static_cast<double>(memory_ports_) +
        coeff_.alm_per_register_bit * static_cast<double>(register_bits_) +
        coeff_.alm_per_pipeline_stage *
            static_cast<double>(pipeline_stages_) +
        coeff_.alm_hash_unit * static_cast<double>(hash_units_));
    r.registers =
        register_bits_ + pipeline_register_bits_ +
        static_cast<u64>(coeff_.regs_per_alm *
                         static_cast<double>(r.logic_alms));
    r.fmax_mhz = fmax_mhz_;
    r.pins_used = pins_used_;
    r.device = limits_;
    return r;
  }

 private:
  LogicCoefficients coeff_;
  DeviceLimits limits_;
  u64 memory_bits_ = 0;
  u64 memory_ports_ = 0;
  u64 register_bits_ = 0;
  u64 pipeline_stages_ = 0;
  u64 pipeline_register_bits_ = 0;
  u64 hash_units_ = 0;
  double fmax_mhz_ = 133.51;  // paper's measured maximum frequency
  u32 pins_used_ = 500;       // paper's Table V pin usage
};

}  // namespace pclass::hw
