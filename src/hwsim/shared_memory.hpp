/// \file shared_memory.hpp
/// Memory-sharing model (Fig. 5). The architecture instantiates *both* IP
/// lookup algorithms in hardware; since synthesis must allocate all the
/// blocks anyway, the paper shares one physical block between the MBT
/// level-2 node store and the BST node store ("the MBT level-2 memory
/// requires the same characteristics of dimension and output and input
/// size as the simple BST memory"). The IPalg_s signal selects which data
/// set the block serves; the remainder of the MBT-dedicated memory can
/// then hold extra rules when the BST configuration is active.
#pragma once

#include <string>

#include "common/error.hpp"
#include "hwsim/memory.hpp"

namespace pclass::hw {

/// Roles a shared block can serve (Data 1 / Data 2 of Fig. 5).
enum class SharedRole : u8 {
  kUnbound = 0,
  kMbtLevel2,  ///< Data 1: MBT level-2 node words
  kBstNodes,   ///< Data 2: BST node words
};

[[nodiscard]] constexpr const char* to_string(SharedRole r) {
  switch (r) {
    case SharedRole::kUnbound: return "unbound";
    case SharedRole::kMbtLevel2: return "mbt_level2";
    case SharedRole::kBstNodes: return "bst_nodes";
  }
  return "?";
}

/// One physical memory block that serves one of two roles at a time,
/// selected by the controller (IPalg_s). Rebinding flushes the contents —
/// the data sets are different encodings and must not leak between roles.
class SharedMemory {
 public:
  /// Geometry is shared by construction: both roles see identical
  /// depth/word size, which is the condition Fig. 5 relies on.
  SharedMemory(std::string name, u32 depth, unsigned word_bits)
      : mem_(std::move(name), depth, word_bits) {}

  [[nodiscard]] SharedRole role() const { return role_; }

  /// Select which data set the block serves. Flushes on role change.
  void bind(SharedRole role) {
    if (role == SharedRole::kUnbound) {
      throw ConfigError("SharedMemory: cannot bind to kUnbound");
    }
    if (role != role_) {
      mem_.clear();
      role_ = role;
    }
  }

  /// Access the underlying block *for the currently bound role*.
  /// \throws ConfigError when the caller's role does not match the
  /// binding — this is the model of a mis-driven IPalg_s select line.
  [[nodiscard]] Memory& as(SharedRole role) {
    check(role);
    return mem_;
  }
  [[nodiscard]] const Memory& as(SharedRole role) const {
    check(role);
    return mem_;
  }

  /// Raw block, role-agnostic (synthesis accounting only).
  [[nodiscard]] const Memory& physical() const { return mem_; }

  /// Raw mutable block for engine wiring. Engines are constructed with
  /// this pointer before the first bind; the classifier guarantees only
  /// the engine matching the current binding is driven (the IPalg_s
  /// discipline), and tests use as() to assert the role checks.
  [[nodiscard]] Memory& block() { return mem_; }

 private:
  void check(SharedRole role) const {
    if (role != role_) {
      throw ConfigError(std::string("SharedMemory '") + mem_.name() +
                        "': accessed as " + to_string(role) +
                        " while bound to " + to_string(role_));
    }
  }

  Memory mem_;
  SharedRole role_ = SharedRole::kUnbound;
};

}  // namespace pclass::hw
