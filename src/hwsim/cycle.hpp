/// \file cycle.hpp
/// Cycle/access accounting for one hardware operation (a lookup or an
/// update). Every model component charges its cost into a CycleRecorder;
/// the benches aggregate recorders into the paper's "memory accesses per
/// packet" and "clock cycles" measures.
#pragma once

#include "common/types.hpp"

namespace pclass::hw {

/// Accumulates the cost of a single operation.
class CycleRecorder {
 public:
  /// Charge \p cycles clock cycles and \p accesses memory accesses.
  void charge(u64 cycles, u64 accesses = 0) {
    cycles_ += cycles;
    accesses_ += accesses;
  }

  [[nodiscard]] u64 cycles() const { return cycles_; }
  [[nodiscard]] u64 memory_accesses() const { return accesses_; }

  void reset() { *this = CycleRecorder{}; }

 private:
  u64 cycles_ = 0;
  u64 accesses_ = 0;
};

/// Running aggregate over many operations (mean/max), used for the
/// "average number of lookup memory accesses" columns.
class CycleAggregate {
 public:
  void add(const CycleRecorder& r) {
    ++count_;
    total_cycles_ += r.cycles();
    total_accesses_ += r.memory_accesses();
    max_cycles_ = std::max(max_cycles_, r.cycles());
    max_accesses_ = std::max(max_accesses_, r.memory_accesses());
  }

  [[nodiscard]] u64 count() const { return count_; }
  [[nodiscard]] u64 total_cycles() const { return total_cycles_; }
  [[nodiscard]] u64 total_accesses() const { return total_accesses_; }
  [[nodiscard]] u64 max_cycles() const { return max_cycles_; }
  [[nodiscard]] u64 max_accesses() const { return max_accesses_; }

  [[nodiscard]] double mean_cycles() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(total_cycles_) /
                             static_cast<double>(count_);
  }
  [[nodiscard]] double mean_accesses() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(total_accesses_) /
                             static_cast<double>(count_);
  }

 private:
  u64 count_ = 0;
  u64 total_cycles_ = 0;
  u64 total_accesses_ = 0;
  u64 max_cycles_ = 0;
  u64 max_accesses_ = 0;
};

}  // namespace pclass::hw
