/// \file register_file.hpp
/// Register-bank model for the Port field lookup (§III.C: "Registers
/// utilized for Port field lookup contain information about the port
/// values defined in range, high value and low value of port field rule,
/// and the corresponding label").
///
/// Unlike block memory, all registers are compared *in parallel* in
/// hardware, so a lookup costs a fixed number of cycles regardless of the
/// register count, and is not counted as a memory access. Register bits
/// do count toward the synthesis register total (Table V).
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "hwsim/cycle.hpp"
#include "hwsim/word.hpp"

namespace pclass::hw {

/// Bank of \p count registers of \p reg_bits bits each.
class RegisterFile {
 public:
  RegisterFile(std::string name, u32 count, unsigned reg_bits,
               unsigned compare_cycles = 2);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] u32 count() const { return count_; }
  [[nodiscard]] unsigned reg_bits() const { return reg_bits_; }
  [[nodiscard]] u64 total_bits() const { return u64{count_} * reg_bits_; }
  [[nodiscard]] unsigned compare_cycles() const { return compare_cycles_; }

  /// Peek a register (controller-side; free).
  [[nodiscard]] const Word& reg(u32 idx) const;

  /// Write a register (update path).
  void write(u32 idx, Word value);

  void clear();

  /// Charge the fixed parallel-compare cost of one lookup over the whole
  /// bank. Register reads are not memory accesses.
  void charge_lookup(CycleRecorder& rec) const {
    rec.charge(compare_cycles_, 0);
  }

  /// Number of registers currently holding valid data (high-water mark).
  [[nodiscard]] u32 used_count() const { return used_; }

 private:
  void check_idx(u32 idx) const;

  std::string name_;
  u32 count_;
  unsigned reg_bits_;
  unsigned compare_cycles_;
  std::vector<Word> regs_;
  u32 used_ = 0;
};

}  // namespace pclass::hw
