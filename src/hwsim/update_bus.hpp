/// \file update_bus.hpp
/// Model of the controller-to-device update path (§V.A): memory uploads
/// are pin-limited, so a rule upload takes "two clock cycles per rule; one
/// cycle to store source information and one clock cycle to store
/// destination information", plus "an additional clock cycle ... to obtain
/// the rule address using hash function".
///
/// The UpdateCompiler (core/) emits UpdateCommand streams; this bus
/// applies them to the device memories and charges cycles, giving a
/// *measured* update cost that the Fig.4/§V.A bench reports.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "hwsim/memory.hpp"
#include "hwsim/register_file.hpp"

namespace pclass::hw {

/// What a command drives on the device.
enum class UpdateTarget : u8 {
  kMemoryWord,    ///< write one word of a block memory
  kRegister,      ///< write one register of a register file
  kHashCompute,   ///< run the hardware hash unit (1 cycle, no storage)
  kConfigSignal,  ///< toggle a select line (IPalg_s); 1 cycle
};

/// One atomic device write, produced by the controller ("binary files"
/// methodology of §IV.A).
struct UpdateCommand {
  UpdateTarget target = UpdateTarget::kMemoryWord;
  /// Symbolic destination (memory/register-file name, or signal name).
  std::string destination;
  u32 address = 0;
  Word data{};
};

/// Cost/statistics of applying a command batch.
struct UpdateStats {
  u64 commands = 0;
  u64 cycles = 0;
  u64 memory_writes = 0;
  u64 register_writes = 0;
  u64 hash_computes = 0;
  u64 config_toggles = 0;

  UpdateStats& operator+=(const UpdateStats& o) {
    commands += o.commands;
    cycles += o.cycles;
    memory_writes += o.memory_writes;
    register_writes += o.register_writes;
    hash_computes += o.hash_computes;
    config_toggles += o.config_toggles;
    return *this;
  }
};

/// Collects the command stream of one controller update batch while
/// applying it to the device structures. The controller-side builders
/// mutate hardware state exclusively through a CommandLog, so the cycle
/// cost of an update is always the *measured* number of emitted commands
/// (the paper's "binary files" of §IV.A, replayed over the pin-limited
/// bus of §V.A).
class CommandLog {
 public:
  /// Write one memory word and log the command.
  void memory_write(Memory& mem, u32 addr, Word w) {
    mem.write(addr, w);
    cmds_.push_back(
        {UpdateTarget::kMemoryWord, mem.name(), addr, w});
  }

  /// Write one register and log the command.
  void register_write(RegisterFile& rf, u32 idx, Word w) {
    rf.write(idx, w);
    cmds_.push_back({UpdateTarget::kRegister, rf.name(), idx, w});
  }

  /// Log a hardware hash computation (address generation; 1 cycle).
  void hash_compute(std::string unit) {
    cmds_.push_back({UpdateTarget::kHashCompute, std::move(unit), 0, {}});
  }

  /// Log a configuration-signal toggle (IPalg_s).
  void config_toggle(std::string signal, u64 value) {
    cmds_.push_back({UpdateTarget::kConfigSignal, std::move(signal), 0,
                     Word{value, 0}});
  }

  [[nodiscard]] const std::vector<UpdateCommand>& commands() const {
    return cmds_;
  }
  [[nodiscard]] usize size() const { return cmds_.size(); }

  /// Move the batch out (the device then meters it on the UpdateBus).
  [[nodiscard]] std::vector<UpdateCommand> take() {
    return std::move(cmds_);
  }

 private:
  std::vector<UpdateCommand> cmds_;
};

/// The bus itself only meters cost; actual routing of commands to memories
/// is done by the device (core::ConfigurableClassifier), which owns the
/// name->block mapping. Each command costs one bus cycle — the paper's
/// two-cycles-per-rule follows from rules compiling to two memory words
/// (source half + destination half).
class UpdateBus {
 public:
  /// Charge one command.
  void charge(const UpdateCommand& cmd) {
    ++stats_.commands;
    ++stats_.cycles;
    switch (cmd.target) {
      case UpdateTarget::kMemoryWord: ++stats_.memory_writes; break;
      case UpdateTarget::kRegister: ++stats_.register_writes; break;
      case UpdateTarget::kHashCompute: ++stats_.hash_computes; break;
      case UpdateTarget::kConfigSignal: ++stats_.config_toggles; break;
    }
  }

  [[nodiscard]] const UpdateStats& stats() const { return stats_; }
  void reset_stats() { stats_ = UpdateStats{}; }

 private:
  UpdateStats stats_;
};

}  // namespace pclass::hw
