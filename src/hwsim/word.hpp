/// \file word.hpp
/// A hardware memory word of up to 128 bits. Memory blocks in the
/// architecture store bit-packed node/label/rule records; Word is the
/// raw container they are encoded into.
#pragma once

#include <compare>

#include "common/bits.hpp"
#include "common/types.hpp"

namespace pclass::hw {

/// Raw memory word: bits [63:0] in lo, bits [127:64] in hi.
struct Word {
  u64 lo = 0;
  u64 hi = 0;

  friend constexpr auto operator<=>(const Word&, const Word&) = default;

  /// Extract \p width bits starting at absolute bit position \p lsb
  /// (which may straddle the lo/hi boundary).
  [[nodiscard]] constexpr u64 get(unsigned lsb, unsigned width) const {
    assert(width <= 64 && lsb + width <= 128);
    if (lsb >= 64) {
      return extract_bits(hi, lsb - 64, width);
    }
    if (lsb + width <= 64) {
      return extract_bits(lo, lsb, width);
    }
    const unsigned lo_bits = 64 - lsb;
    const u64 low_part = extract_bits(lo, lsb, lo_bits);
    const u64 high_part = extract_bits(hi, 0, width - lo_bits);
    return low_part | (high_part << lo_bits);
  }

  /// Deposit \p field of \p width bits at absolute bit position \p lsb.
  constexpr void set(unsigned lsb, unsigned width, u64 field) {
    assert(width <= 64 && lsb + width <= 128);
    assert(field <= mask_low(width));
    if (lsb >= 64) {
      hi = deposit_bits(hi, field, lsb - 64, width);
      return;
    }
    if (lsb + width <= 64) {
      lo = deposit_bits(lo, field, lsb, width);
      return;
    }
    const unsigned lo_bits = 64 - lsb;
    lo = deposit_bits(lo, extract_bits(field, 0, lo_bits), lsb, lo_bits);
    hi = deposit_bits(hi, field >> lo_bits, 0, width - lo_bits);
  }

  [[nodiscard]] constexpr bool is_zero() const { return lo == 0 && hi == 0; }
};

/// Incremental bit-field writer: packs fields LSB-first into a Word.
/// Used by the encoders so field layout is written exactly once.
class WordPacker {
 public:
  WordPacker& push(u64 field, unsigned width) {
    word_.set(pos_, width, field);
    pos_ += width;
    return *this;
  }
  [[nodiscard]] unsigned bits_used() const { return pos_; }
  [[nodiscard]] Word word() const { return word_; }

 private:
  Word word_{};
  unsigned pos_ = 0;
};

/// Matching reader: unpacks fields LSB-first.
class WordUnpacker {
 public:
  explicit constexpr WordUnpacker(Word w) : word_(w) {}
  u64 pull(unsigned width) {
    const u64 v = word_.get(pos_, width);
    pos_ += width;
    return v;
  }

 private:
  Word word_;
  unsigned pos_ = 0;
};

}  // namespace pclass::hw
