#include "hwsim/register_file.hpp"

namespace pclass::hw {

RegisterFile::RegisterFile(std::string name, u32 count, unsigned reg_bits,
                           unsigned compare_cycles)
    : name_(std::move(name)),
      count_(count),
      reg_bits_(reg_bits),
      compare_cycles_(compare_cycles),
      regs_(count) {
  if (count == 0) {
    throw ConfigError("RegisterFile '" + name_ + "': count must be > 0");
  }
  if (reg_bits == 0 || reg_bits > 128) {
    throw ConfigError("RegisterFile '" + name_ +
                      "': reg_bits must be in [1, 128]");
  }
}

void RegisterFile::check_idx(u32 idx) const {
  if (idx >= count_) {
    throw ConfigError("RegisterFile '" + name_ + "': index " +
                      std::to_string(idx) + " out of range (count " +
                      std::to_string(count_) + ")");
  }
}

const Word& RegisterFile::reg(u32 idx) const {
  check_idx(idx);
  return regs_[idx];
}

void RegisterFile::write(u32 idx, Word value) {
  check_idx(idx);
  regs_[idx] = value;
  used_ = std::max(used_, idx + 1);
}

void RegisterFile::clear() {
  regs_.assign(count_, Word{});
  used_ = 0;
}

}  // namespace pclass::hw
