#include "hwsim/pipeline.hpp"

namespace pclass::hw {

Pipeline::Pipeline(std::vector<Stage> stages) : stages_(std::move(stages)) {
  if (stages_.empty()) {
    throw ConfigError("Pipeline: need at least one stage");
  }
  for (const Stage& s : stages_) {
    if (s.latency == 0 || s.initiation_interval == 0) {
      throw ConfigError("Pipeline stage '" + s.name +
                        "': latency and II must be > 0");
    }
    if (s.initiation_interval > s.latency) {
      throw ConfigError("Pipeline stage '" + s.name +
                        "': II cannot exceed latency");
    }
  }
}

u64 Pipeline::latency() const {
  u64 sum = 0;
  for (const Stage& s : stages_) sum += s.latency;
  return sum;
}

u64 Pipeline::initiation_interval() const {
  u64 ii = 1;
  for (const Stage& s : stages_) ii = std::max(ii, s.initiation_interval);
  return ii;
}

PipelineTiming Pipeline::run(u64 packets) const {
  PipelineTiming t;
  t.packets = packets;
  t.latency_cycles = latency();
  const u64 ii = initiation_interval();
  t.cycles_per_packet = static_cast<double>(ii);
  t.total_cycles = packets == 0 ? 0 : t.latency_cycles + (packets - 1) * ii;
  return t;
}

PipelineTiming Pipeline::simulate(u64 packets) const {
  PipelineTiming t;
  t.packets = packets;
  t.latency_cycles = latency();
  if (packets == 0) {
    return t;
  }
  // Event-accurate recurrence with unbounded inter-stage buffering:
  // an item starts stage k when it has left stage k-1 AND stage k's
  // initiation interval since the previous item has elapsed.
  std::vector<u64> prev_start(stages_.size(), 0);
  u64 last_finish = 0;
  for (u64 n = 0; n < packets; ++n) {
    u64 ready = 0;  // all packets are available back-to-back at cycle 0
    for (usize k = 0; k < stages_.size(); ++k) {
      u64 start = ready;
      if (n > 0) {
        start = std::max(start,
                         prev_start[k] + stages_[k].initiation_interval);
      }
      prev_start[k] = start;
      ready = start + stages_[k].latency;
    }
    last_finish = ready;
  }
  t.total_cycles = last_finish;
  t.cycles_per_packet =
      static_cast<double>(last_finish) / static_cast<double>(packets);
  return t;
}

}  // namespace pclass::hw
