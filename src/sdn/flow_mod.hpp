/// \file flow_mod.hpp
/// OpenFlow-like southbound messages (§III.A: "The rules generated at the
/// controller are pushed to the network devices by means of an open
/// protocol such as OpenFlow"). The subset modelled here is what the
/// paper's architecture consumes: flow add/delete with a 5-tuple match,
/// priority and action, plus the configuration message that drives the
/// IPalg_s algorithm-select line.
#pragma once

#include <optional>
#include <string>
#include <variant>

#include "common/types.hpp"
#include "core/config.hpp"
#include "ruleset/rule.hpp"

namespace pclass::sdn {

/// Forwarding actions of the data plane (§I: "packet forwarding,
/// modification, and redirection to a group table").
struct ActionSpec {
  enum class Kind : u8 { kDrop, kOutput, kGroup };
  Kind kind = Kind::kDrop;
  u16 arg = 0;  ///< port number or group id

  /// Pack into the classifier's 16-bit action token.
  [[nodiscard]] u32 encode() const {
    return (u32{static_cast<u8>(kind)} << 14) | (arg & 0x3FFFu);
  }
  [[nodiscard]] static ActionSpec decode(u32 token) {
    ActionSpec a;
    a.kind = static_cast<Kind>((token >> 14) & 0x3u);
    a.arg = static_cast<u16>(token & 0x3FFFu);
    return a;
  }

  [[nodiscard]] static ActionSpec drop() { return {Kind::kDrop, 0}; }
  [[nodiscard]] static ActionSpec output(u16 port) {
    return {Kind::kOutput, port};
  }
  [[nodiscard]] static ActionSpec group(u16 id) { return {Kind::kGroup, id}; }

  friend constexpr auto operator<=>(const ActionSpec&,
                                    const ActionSpec&) = default;
};

/// Flow add/modify/delete.
struct FlowMod {
  enum class Command : u8 { kAdd, kModify, kDelete };
  Command command = Command::kAdd;
  RuleId cookie{};         ///< rule identity (OpenFlow cookie)
  ruleset::Rule match{};   ///< match part + priority (kAdd only)
  ActionSpec action{};     ///< kAdd / kModify
};

/// Algorithm (re)configuration — the programmability knob of Fig. 2,
/// widened (PR 7) to carry any subset of the runtime-tunable knobs so
/// the control plane's `set` handler rides the same southbound path
/// (and replica replay) as rule updates. Absent fields leave the
/// device's current setting untouched; `ConfigMod{core::IpAlgorithm::
/// kBst}` means "drive IPalg_s to BST" (the former use_bst bool grew a
/// third value with the RVH backend).
struct ConfigMod {
  std::optional<core::IpAlgorithm> ip_algorithm;  ///< IPalg_s value
  /// classify_batch() strategy (phase-2 vs scalar).
  std::optional<core::BatchMode> batch_mode;
  /// Phase-2 execution-path policy (adaptive / forced).
  std::optional<core::PathPolicy> path_policy;
  /// Probe-memo associativity; the classifier validates the value.
  std::optional<u32> memo_ways;
};

/// Device -> controller notification.
struct FlowRemoved {
  RuleId cookie{};
  std::string reason;
};

/// Southbound message.
using Message = std::variant<FlowMod, ConfigMod>;

}  // namespace pclass::sdn
