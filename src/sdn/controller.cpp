#include "sdn/controller.hpp"

namespace pclass::sdn {

void Controller::broadcast(const Message& msg) {
  for (UpdateSink* sink : sinks_) {
    const hw::UpdateStats cost = sink->handle(msg);
    stats_.update_cycles_total += cost.cycles;
  }
  if (std::holds_alternative<FlowMod>(msg)) {
    ++stats_.flow_mods_sent;
  } else {
    ++stats_.config_mods_sent;
  }
}

void Controller::configure(const AppRequirement& app, usize mbt_capacity) {
  const core::IpAlgorithm alg = select_algorithm(app, mbt_capacity);
  broadcast(ConfigMod{alg});
}

void Controller::install(const ruleset::Rule& rule, ActionSpec action) {
  FlowMod fm;
  fm.command = FlowMod::Command::kAdd;
  fm.cookie = rule.id;
  fm.match = rule;
  fm.action = action;
  broadcast(fm);
}

void Controller::install_ruleset(const ruleset::RuleSet& rules) {
  for (const ruleset::Rule& r : rules) {
    install(r, ActionSpec::decode(r.action.token));
  }
}

void Controller::remove(RuleId id) {
  FlowMod fm;
  fm.command = FlowMod::Command::kDelete;
  fm.cookie = id;
  broadcast(fm);
}

}  // namespace pclass::sdn
