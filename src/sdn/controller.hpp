/// \file controller.hpp
/// The control-plane side of Fig. 1/Fig. 2: a controller that programs
/// switches through FlowMod messages and picks the lookup algorithm per
/// the network application's requirement (§III.A: "The software
/// controller chooses the optimal algorithm combination ... For example,
/// speed is the critical parameter for a Multi-end videoconferencing
/// application").
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sdn/flow_mod.hpp"
#include "sdn/southbound.hpp"

namespace pclass::sdn {

/// What a network application asks of the classification service.
struct AppRequirement {
  /// Real-time flows (videoconferencing, VoIP): latency/throughput wins.
  bool realtime = false;
  /// Expected flow-table size; beyond the MBT capacity the controller
  /// must fall back to the compact algorithm.
  usize expected_rules = 1000;
};

/// Southbound statistics of one controller.
struct ControllerStats {
  u64 flow_mods_sent = 0;
  u64 config_mods_sent = 0;
  u64 update_cycles_total = 0;
};

/// A (single-domain) SDN controller driving one or more switches.
class Controller {
 public:
  explicit Controller(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Attach any southbound consumer: a live SwitchDevice, or the
  /// dataplane's RuleProgramPublisher (snapshot build-and-swap off the
  /// hot path instead of mutating a device under the lookup path).
  void attach(UpdateSink& sink) { sinks_.push_back(&sink); }

  /// Algorithm-selection policy (§III.A): fast MBT for real-time
  /// applications that fit, compact BST for large tables.
  /// \param mbt_capacity  rules the MBT configuration can hold.
  [[nodiscard]] static core::IpAlgorithm select_algorithm(
      const AppRequirement& app, usize mbt_capacity) {
    if (app.expected_rules > mbt_capacity) {
      return core::IpAlgorithm::kBst;
    }
    return app.realtime ? core::IpAlgorithm::kMbt : core::IpAlgorithm::kMbt;
  }

  /// Push a configuration for \p app to every attached switch.
  void configure(const AppRequirement& app, usize mbt_capacity);

  /// Install one rule on every attached switch.
  void install(const ruleset::Rule& rule, ActionSpec action);

  /// Install a whole filter set (actions taken from each rule's token).
  void install_ruleset(const ruleset::RuleSet& rules);

  /// Remove a rule everywhere.
  void remove(RuleId id);

  [[nodiscard]] const ControllerStats& stats() const { return stats_; }

 private:
  void broadcast(const Message& msg);

  std::string name_;
  std::vector<UpdateSink*> sinks_;
  ControllerStats stats_;
};

}  // namespace pclass::sdn
