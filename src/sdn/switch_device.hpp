/// \file switch_device.hpp
/// The infrastructure-plane network device: owns the configurable
/// classifier, applies southbound messages, and runs packets through
/// parse -> classify -> action with per-flow statistics (the flow table
/// counters every OpenFlow switch keeps).
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "core/flow_cache.hpp"
#include "sdn/flow_mod.hpp"
#include "sdn/southbound.hpp"

namespace pclass::sdn {

/// Per-flow statistics (flow table counters).
struct FlowStats {
  u64 packets = 0;
  u64 bytes = 0;
};

/// What happened to one forwarded packet.
struct ForwardResult {
  ActionSpec action = ActionSpec::drop();  ///< drop when no rule matched
  std::optional<RuleId> rule;
  u64 lookup_cycles = 0;
};

/// Aggregate data-plane counters.
struct SwitchStats {
  u64 packets_in = 0;
  u64 packets_matched = 0;
  u64 packets_dropped = 0;   ///< table miss or explicit drop action
  u64 parse_errors = 0;
  u64 flow_mods_applied = 0;
  u64 update_cycles = 0;     ///< cumulative controller-update bus cycles
};

/// An SDN switch with one classification-backed flow table and an
/// optional exact-match flow cache on the fast path (the paper's "only
/// the first packet header of a flow" premise).
class SwitchDevice : public UpdateSink {
 public:
  /// \param flow_cache_depth  cache lines for the exact-match fast path;
  ///                          0 disables the cache.
  explicit SwitchDevice(std::string name, core::ClassifierConfig cfg = {},
                        u32 flow_cache_depth = 0);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Apply one southbound message. Returns the measured update cost.
  hw::UpdateStats handle(const Message& msg) override;

  /// Data plane: raw packet in, action out.
  ForwardResult process_packet(std::span<const u8> bytes);

  /// Data plane fast path for pre-parsed headers (testing/benching).
  ForwardResult process_header(const net::FiveTuple& header, usize bytes);

  [[nodiscard]] const SwitchStats& stats() const { return stats_; }
  [[nodiscard]] const core::ConfigurableClassifier& classifier() const {
    return classifier_;
  }
  [[nodiscard]] core::ConfigurableClassifier& classifier() {
    return classifier_;
  }
  [[nodiscard]] std::optional<FlowStats> flow_stats(RuleId id) const;
  [[nodiscard]] usize flow_count() const { return flows_.size(); }

  /// Flow-cache statistics (zero-valued when the cache is disabled).
  [[nodiscard]] core::FlowCacheStats flow_cache_stats() const {
    return cache_ ? cache_->stats() : core::FlowCacheStats{};
  }

 private:
  std::string name_;
  core::ConfigurableClassifier classifier_;
  std::unique_ptr<core::FlowCache> cache_;
  std::map<RuleId, FlowStats> flows_;
  SwitchStats stats_;
};

}  // namespace pclass::sdn
