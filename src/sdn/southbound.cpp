#include "sdn/southbound.hpp"

namespace pclass::sdn {

hw::UpdateStats apply_message(core::ConfigurableClassifier& clf,
                              const Message& msg) {
  if (const auto* fm = std::get_if<FlowMod>(&msg)) {
    switch (fm->command) {
      case FlowMod::Command::kAdd: {
        ruleset::Rule r = fm->match;
        r.id = fm->cookie;
        r.action = ruleset::Action{fm->action.encode()};
        return clf.add_rule(r);
      }
      case FlowMod::Command::kModify:
        return clf.modify_rule(fm->cookie,
                               ruleset::Action{fm->action.encode()});
      case FlowMod::Command::kDelete:
        return clf.remove_rule(fm->cookie);
    }
    return {};
  }
  const auto& cm = std::get<ConfigMod>(msg);
  return clf.set_ip_algorithm(cm.use_bst ? core::IpAlgorithm::kBst
                                         : core::IpAlgorithm::kMbt);
}

}  // namespace pclass::sdn
