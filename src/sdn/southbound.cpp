#include "sdn/southbound.hpp"

namespace pclass::sdn {

hw::UpdateStats apply_message(core::ConfigurableClassifier& clf,
                              const Message& msg) {
  if (const auto* fm = std::get_if<FlowMod>(&msg)) {
    switch (fm->command) {
      case FlowMod::Command::kAdd: {
        ruleset::Rule r = fm->match;
        r.id = fm->cookie;
        r.action = ruleset::Action{fm->action.encode()};
        return clf.add_rule(r);
      }
      case FlowMod::Command::kModify:
        return clf.modify_rule(fm->cookie,
                               ruleset::Action{fm->action.encode()});
      case FlowMod::Command::kDelete:
        return clf.remove_rule(fm->cookie);
    }
    return {};
  }
  // ConfigMod: apply every knob present. Only the IP-algorithm switch
  // touches device memories (a rebuild, costed); the batch-path knobs
  // steer host-side execution strategy and are free by the cost model.
  const auto& cm = std::get<ConfigMod>(msg);
  hw::UpdateStats cost;
  // Validating setters may throw (e.g. an unsupported memo_ways); apply
  // them first so a rejected ConfigMod does not half-reconfigure the
  // device (set_ip_algorithm is the only non-trivially-revertible one).
  if (cm.memo_ways) clf.set_batch_memo_ways(*cm.memo_ways);
  if (cm.batch_mode) clf.set_batch_mode(*cm.batch_mode);
  if (cm.path_policy) clf.set_batch_path_policy(*cm.path_policy);
  if (cm.ip_algorithm) {
    cost += clf.set_ip_algorithm(*cm.ip_algorithm);
  }
  return cost;
}

}  // namespace pclass::sdn
