/// \file southbound.hpp
/// The controller's southbound edge: anything that consumes Messages
/// (a live switch, the dataplane's snapshot publisher) implements
/// UpdateSink, and the canonical message -> classifier mapping lives in
/// apply_message so every consumer programs a device identically.
#pragma once

#include "core/classifier.hpp"
#include "sdn/flow_mod.hpp"

namespace pclass::sdn {

/// A consumer of southbound messages.
class UpdateSink {
 public:
  virtual ~UpdateSink() = default;

  /// Apply one message; returns the measured device update cost.
  virtual hw::UpdateStats handle(const Message& msg) = 0;
};

/// Apply \p msg to \p clf: FlowMod add/modify/delete (cookie becomes the
/// rule id, the ActionSpec is packed into the rule's action token) or
/// ConfigMod (IPalg_s select). The single source of truth for the
/// message semantics — shared by SwitchDevice and RuleProgramPublisher.
hw::UpdateStats apply_message(core::ConfigurableClassifier& clf,
                              const Message& msg);

}  // namespace pclass::sdn
