#include "sdn/switch_device.hpp"

namespace pclass::sdn {

SwitchDevice::SwitchDevice(std::string name, core::ClassifierConfig cfg,
                           u32 flow_cache_depth)
    : name_(std::move(name)), classifier_(cfg) {
  if (flow_cache_depth > 0) {
    cache_ = std::make_unique<core::FlowCache>(name_ + ".flow_cache",
                                               flow_cache_depth);
  }
}

hw::UpdateStats SwitchDevice::handle(const Message& msg) {
  const hw::UpdateStats cost = apply_message(classifier_, msg);
  if (const auto* fm = std::get_if<FlowMod>(&msg)) {
    if (fm->command == FlowMod::Command::kAdd) {
      flows_.emplace(fm->cookie, FlowStats{});
    } else if (fm->command == FlowMod::Command::kDelete) {
      flows_.erase(fm->cookie);
    }
  }
  ++stats_.flow_mods_applied;
  stats_.update_cycles += cost.cycles;
  if (cache_) {
    // Any table change can invalidate any cached verdict (conservative
    // single-cycle flush; per-flow invalidation would need reverse maps).
    cache_->invalidate_all();
  }
  return cost;
}

ForwardResult SwitchDevice::process_packet(std::span<const u8> bytes) {
  const std::optional<net::FiveTuple> t = net::parse_five_tuple(bytes);
  if (!t) {
    ++stats_.packets_in;
    ++stats_.parse_errors;
    ++stats_.packets_dropped;
    return ForwardResult{};
  }
  return process_header(*t, bytes.size());
}

ForwardResult SwitchDevice::process_header(const net::FiveTuple& header,
                                           usize bytes) {
  ++stats_.packets_in;
  std::optional<core::RuleEntry> verdict;
  u64 cycles = 0;
  bool resolved = false;
  if (cache_) {
    hw::CycleRecorder rec;
    if (const auto cached = cache_->lookup(header, &rec)) {
      verdict = *cached;
      cycles = rec.cycles();
      resolved = true;
    }
  }
  if (!resolved) {
    const core::ClassifyResult res = classifier_.classify(header);
    verdict = res.match;
    cycles = res.cycles;
    if (cache_) {
      cache_->fill(header, verdict);
    }
  }
  core::ClassifyResult res;
  res.match = verdict;
  res.cycles = cycles;
  ForwardResult out;
  out.lookup_cycles = res.cycles;
  if (!res.match) {
    ++stats_.packets_dropped;  // table miss: default drop
    return out;
  }
  ++stats_.packets_matched;
  out.rule = res.match->rule;
  out.action = ActionSpec::decode(res.match->action);
  if (out.action.kind == ActionSpec::Kind::kDrop) {
    ++stats_.packets_dropped;
  }
  auto it = flows_.find(res.match->rule);
  if (it != flows_.end()) {
    ++it->second.packets;
    it->second.bytes += bytes;
  }
  return out;
}

std::optional<FlowStats> SwitchDevice::flow_stats(RuleId id) const {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return std::nullopt;
  return it->second;
}

}  // namespace pclass::sdn
