#include "fault/fault.hpp"

#include <cctype>
#include <chrono>
#include <sstream>
#include <thread>

namespace pclass::fault {

namespace {

constexpr usize kNone = static_cast<usize>(-1);

/// Parse a base-10 u64 out of `text`; the whole string must be digits.
u64 parse_u64(const std::string& text, const std::string& ctx) {
  if (text.empty()) throw ParseError("fault plan: missing number in '" + ctx + "'");
  u64 value = 0;
  for (char c : text) {
    if (c < '0' || c > '9')
      throw ParseError("fault plan: bad number '" + text + "' in '" + ctx + "'");
    value = value * 10 + static_cast<u64>(c - '0');
  }
  return value;
}

/// Strip `prefix` (e.g. "w=") off `text` or throw.
std::string expect_prefix(const std::string& text, std::string_view prefix,
                          const std::string& ctx) {
  if (text.size() < prefix.size() || text.compare(0, prefix.size(), prefix) != 0)
    throw ParseError("fault plan: expected '" + std::string(prefix) + "...' in '" +
                     ctx + "'");
  return text.substr(prefix.size());
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

FaultEvent parse_event(const std::string& token) {
  const std::vector<std::string> parts = split(token, ':');
  FaultEvent ev;
  if (parts[0] == "throw" || parts[0] == "stall") {
    ev.kind = parts[0] == "throw" ? FaultKind::kWorkerThrow : FaultKind::kWorkerStall;
    const usize want = ev.kind == FaultKind::kWorkerStall ? 3u : 2u;
    if (parts.size() != want)
      throw ParseError("fault plan: '" + token + "' needs " +
                       std::string(ev.kind == FaultKind::kWorkerStall
                                       ? "stall:w=<worker>@<sweep>:ms=<duration>"
                                       : "throw:w=<worker>@<sweep>"));
    const std::vector<std::string> at = split(expect_prefix(parts[1], "w=", token), '@');
    if (at.size() != 2)
      throw ParseError("fault plan: expected 'w=<worker>@<sweep>' in '" + token + "'");
    ev.worker = static_cast<usize>(parse_u64(at[0], token));
    ev.at = parse_u64(at[1], token);
    if (ev.kind == FaultKind::kWorkerStall)
      ev.stall_ms = parse_u64(expect_prefix(parts[2], "ms=", token), token);
  } else if (parts[0] == "pubfail") {
    if (parts.size() != 2)
      throw ParseError("fault plan: '" + token + "' needs pubfail:u=<apply-index>");
    ev.kind = FaultKind::kPublishFail;
    ev.at = parse_u64(expect_prefix(parts[1], "u=", token), token);
  } else if (parts[0] == "conndrop") {
    if (parts.size() != 2)
      throw ParseError("fault plan: '" + token + "' needs conndrop:r=<request-index>");
    ev.kind = FaultKind::kConnDrop;
    ev.at = parse_u64(expect_prefix(parts[1], "r=", token), token);
  } else {
    throw ParseError("fault plan: unknown event '" + parts[0] + "' in '" + token +
                     "' (want throw|stall|pubfail|conndrop)");
  }
  return ev;
}

}  // namespace

std::string_view to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kWorkerThrow: return "throw";
    case FaultKind::kWorkerStall: return "stall";
    case FaultKind::kPublishFail: return "pubfail";
    case FaultKind::kConnDrop: return "conndrop";
  }
  return "?";
}

std::string FaultEvent::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case FaultKind::kWorkerThrow:
      os << "throw:w=" << worker << '@' << at;
      break;
    case FaultKind::kWorkerStall:
      os << "stall:w=" << worker << '@' << at << ":ms=" << stall_ms;
      break;
    case FaultKind::kPublishFail:
      os << "pubfail:u=" << at;
      break;
    case FaultKind::kConnDrop:
      os << "conndrop:r=" << at;
      break;
  }
  return os.str();
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& token : split(spec, ',')) {
    if (token.empty()) continue;  // tolerate stray/trailing commas
    plan.events.push_back(parse_event(token));
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const FaultEvent& ev : events) {
    if (!out.empty()) out += ',';
    out += ev.to_string();
  }
  return out;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      pending_(plan_.events.size()),
      fired_(plan_.events.size(), false) {}

template <typename Pred>
usize FaultInjector::claim(Pred&& pred) {
  // Caller holds mu_.
  for (usize i = 0; i < plan_.events.size(); ++i) {
    if (fired_[i]) continue;
    if (!pred(plan_.events[i])) continue;
    fired_[i] = true;
    pending_.fetch_sub(1, std::memory_order_relaxed);
    return i;
  }
  return kNone;
}

void FaultInjector::on_worker_batch(usize worker, u64 sweep) {
  if (pending_.load(std::memory_order_relaxed) == 0) return;
  u64 stall_ms = 0;
  bool do_throw = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const usize stall = claim([&](const FaultEvent& ev) {
      return ev.kind == FaultKind::kWorkerStall && ev.worker == worker &&
             sweep >= ev.at;
    });
    if (stall != kNone) {
      stall_ms = plan_.events[stall].stall_ms;
      ++counters_.worker_stalls;
    }
    const usize thr = claim([&](const FaultEvent& ev) {
      return ev.kind == FaultKind::kWorkerThrow && ev.worker == worker &&
             sweep >= ev.at;
    });
    if (thr != kNone) {
      do_throw = true;
      ++counters_.worker_throws;
    }
  }
  if (stall_ms > 0) {
    // Abort-aware stall: 1 ms slices so an engine stop (drain/shutdown)
    // issued mid-stall is honoured within the watchdog deadline.
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(stall_ms);
    while (std::chrono::steady_clock::now() < until) {
      if (abort_ != nullptr && abort_->load(std::memory_order_relaxed)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  if (do_throw)
    throw InjectedFault("injected fault: worker " + std::to_string(worker) +
                        " throw at sweep " + std::to_string(sweep));
}

void FaultInjector::on_publisher_apply() {
  const u64 index = applies_.fetch_add(1, std::memory_order_relaxed);
  if (pending_.load(std::memory_order_relaxed) == 0) return;
  bool do_throw = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const usize hit = claim([&](const FaultEvent& ev) {
      return ev.kind == FaultKind::kPublishFail && ev.at == index;
    });
    if (hit != kNone) {
      do_throw = true;
      ++counters_.publish_failures;
    }
  }
  if (do_throw)
    throw InjectedFault("injected fault: publisher apply " +
                        std::to_string(index) + " failed");
}

bool FaultInjector::should_drop_request(u64 request_index) {
  if (pending_.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lk(mu_);
  const usize hit = claim([&](const FaultEvent& ev) {
    return ev.kind == FaultKind::kConnDrop && ev.at == request_index;
  });
  if (hit == kNone) return false;
  ++counters_.conn_drops;
  return true;
}

FaultCounters FaultInjector::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

}  // namespace pclass::fault
