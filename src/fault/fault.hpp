/// \file fault.hpp
/// Deterministic, seeded fault-injection plane.
///
/// A FaultPlan is a parsed schedule of injectable failures — worker
/// throws, worker stalls, publisher apply failures, control-connection
/// drops — expressed in a compact spec string (`--fault-plan`) so a
/// chaos run is reproducible from its command line alone. A
/// FaultInjector executes one plan: the Engine calls it once per worker
/// sweep, the RuleProgramPublisher at the top of every apply, and the
/// ControlServer per accepted request line. Each event fires exactly
/// once; after the last event has fired every hook is a single relaxed
/// atomic load (the empty-plan / drained-plan fast path the supervisor
/// overhead gate measures).
///
/// Stalls are abort-aware: they sleep in ~1 ms slices and re-check the
/// abort flag (wired to the engine's stop signal), so a drain or
/// shutdown issued mid-stall completes within the watchdog deadline
/// instead of waiting the stall out.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace pclass::fault {

/// What a scheduled fault does when it fires.
enum class FaultKind {
  kWorkerThrow,   ///< worker W throws InjectedFault at sweep N
  kWorkerStall,   ///< worker W sleeps stall_ms at sweep N (abort-aware)
  kPublishFail,   ///< publisher apply #K throws (state restored by the
                  ///< publisher's all-or-nothing contract)
  kConnDrop,      ///< control server closes the connection serving
                  ///< request #K before any response bytes
};

[[nodiscard]] std::string_view to_string(FaultKind k);

/// One scheduled fault. `at` is the hook-local sequence number the
/// event fires on: the worker's persistent sweep counter (throw/stall
/// — it survives restarts, so a plan can hit successive incarnations),
/// the publisher's post-attach apply index (pubfail), or the server's
/// request index (conndrop). All 0-based.
struct FaultEvent {
  FaultKind kind = FaultKind::kWorkerThrow;
  usize worker = 0;  ///< target worker (throw/stall only)
  u64 at = 0;
  u64 stall_ms = 0;  ///< stall duration (stall only)

  [[nodiscard]] std::string to_string() const;
};

/// The exception injected worker-side and publisher-side. Distinct from
/// the production error types so tests (and the chaos scenario's
/// expected-failure accounting) can tell an injected fault from a real
/// one.
class InjectedFault : public Error {
 public:
  using Error::Error;
};

/// A parsed, ordered fault schedule.
struct FaultPlan {
  std::vector<FaultEvent> events;

  /// Parse a comma-separated spec:
  ///   throw:w=<worker>@<sweep>
  ///   stall:w=<worker>@<sweep>:ms=<duration>
  ///   pubfail:u=<apply-index>
  ///   conndrop:r=<request-index>
  /// An empty spec is the empty plan.
  /// \throws ParseError on a malformed spec.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  /// Round-trippable spec string (parse(to_string()) == *this).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool empty() const { return events.empty(); }
};

/// Fired-event accounting, readable while the run is live.
struct FaultCounters {
  u64 worker_throws = 0;
  u64 worker_stalls = 0;
  u64 publish_failures = 0;
  u64 conn_drops = 0;
};

/// Executes one FaultPlan. Thread-safe: worker threads, the publisher's
/// writer and the control server's connection threads all call in
/// concurrently. Each event fires exactly once; the hooks are O(events
/// still pending) under a mutex while any remain and one relaxed load
/// afterwards.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Worker sweep hook. \p sweep is the worker's persistent sweep
  /// counter (survives supervisor restarts). A due kWorkerStall sleeps
  /// here (abort-aware); a due kWorkerThrow throws InjectedFault —
  /// after the stall, so one sweep can both stall and die.
  /// \throws InjectedFault for a due kWorkerThrow.
  void on_worker_batch(usize worker, u64 sweep);

  /// Publisher hook: called at the top of every apply_batch once
  /// attached; counts calls and throws on the scheduled ones.
  /// \throws InjectedFault for a due kPublishFail.
  void on_publisher_apply();

  /// Control-server hook: true when request \p request_index should be
  /// dropped (connection closed without a response).
  [[nodiscard]] bool should_drop_request(u64 request_index);

  /// Abort flag consulted mid-stall (engine stop signal). May be
  /// nullptr (stalls then run their full duration).
  void set_abort_flag(const std::atomic<bool>* abort) { abort_ = abort; }

  [[nodiscard]] FaultCounters counters() const;
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  /// Claim the first unfired event matching \p pred; returns its index
  /// or SIZE_MAX.
  template <typename Pred>
  usize claim(Pred&& pred);

  FaultPlan plan_;
  const std::atomic<bool>* abort_ = nullptr;
  std::atomic<u64> pending_;  ///< unfired events (fast-path gate)
  std::atomic<u64> applies_{0};  ///< publisher apply calls seen
  mutable std::mutex mu_;
  std::vector<bool> fired_;
  FaultCounters counters_;
};

}  // namespace pclass::fault
