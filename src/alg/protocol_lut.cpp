#include "alg/protocol_lut.hpp"

#include "common/error.hpp"

namespace pclass::alg {

namespace {
// LUT word: valid(1) label(2). Wildcard register: valid(1) label(2).
constexpr unsigned kWordBits = 1 + kProtoLabelBits;

hw::Word encode(bool valid, Label l) {
  hw::WordPacker p;
  p.push(valid ? 1 : 0, 1);
  p.push(valid ? l.value : 0, kProtoLabelBits);
  return p.word();
}
}  // namespace

ProtocolLut::ProtocolLut(const std::string& name)
    : lut_(name + ".lut", 256, kWordBits, /*read_cycles=*/1),
      wc_reg_(name + ".wc", 1, kWordBits, /*compare_cycles=*/0) {}

void ProtocolLut::insert(ruleset::ProtoMatch match, Label label,
                         hw::CommandLog& log) {
  if (match.wildcard) {
    hw::WordUnpacker u(wc_reg_.reg(0));
    if (u.pull(1) != 0) {
      throw InternalError("ProtocolLut: wildcard label already programmed");
    }
    log.register_write(wc_reg_, 0, encode(true, label));
    return;
  }
  hw::WordUnpacker u(lut_.read(match.value, nullptr));
  if (u.pull(1) != 0) {
    throw InternalError("ProtocolLut: duplicate protocol insert");
  }
  log.memory_write(lut_, match.value, encode(true, label));
}

void ProtocolLut::remove(ruleset::ProtoMatch match, hw::CommandLog& log) {
  if (match.wildcard) {
    hw::WordUnpacker u(wc_reg_.reg(0));
    if (u.pull(1) == 0) {
      throw InternalError("ProtocolLut: wildcard label not programmed");
    }
    log.register_write(wc_reg_, 0, encode(false, {}));
    return;
  }
  hw::WordUnpacker u(lut_.read(match.value, nullptr));
  if (u.pull(1) == 0) {
    throw InternalError("ProtocolLut: remove of unknown protocol");
  }
  log.memory_write(lut_, match.value, encode(false, {}));
}

void ProtocolLut::clear(hw::CommandLog& log) {
  for (u32 v = 0; v < lut_.depth(); ++v) {
    if (hw::WordUnpacker u(lut_.read(v, nullptr)); u.pull(1) != 0) {
      log.memory_write(lut_, v, encode(false, {}));
    }
  }
  if (hw::WordUnpacker u(wc_reg_.reg(0)); u.pull(1) != 0) {
    log.register_write(wc_reg_, 0, encode(false, {}));
  }
}

std::vector<Label> ProtocolLut::lookup(u8 proto,
                                       hw::CycleRecorder* rec) const {
  LabelVec scratch;
  lookup_into(proto, rec, scratch);
  return std::vector<Label>(scratch.begin(), scratch.end());
}

void ProtocolLut::lookup_into(u8 proto, hw::CycleRecorder* rec,
                              LabelVec& out) const {
  hw::WordUnpacker u(lut_.read(proto, rec));
  if (u.pull(1) != 0) {
    out.push_back(Label{static_cast<u16>(u.pull(kProtoLabelBits))});
  }
  // The wildcard register is read in the same cycle (no extra cost).
  hw::WordUnpacker w(wc_reg_.reg(0));
  if (w.pull(1) != 0) {
    out.push_back(Label{static_cast<u16>(w.pull(kProtoLabelBits))});
  }
}

void ProtocolLut::lookup_batch_into(std::span<const BatchKey> sorted,
                                    std::span<hw::CycleRecorder> recs,
                                    std::vector<Label>& pool,
                                    std::span<LabelSpan> spans) const {
  bool have_prev = false;
  u32 prev_key = 0;
  LabelSpan prev_span{};
  LabelVec scratch;
  for (const BatchKey& lane : sorted) {
    if (!have_prev || lane.key != prev_key) {
      scratch.clear();
      lookup_into(static_cast<u8>(lane.key), nullptr, scratch);
      prev_span.off = static_cast<u32>(pool.size());
      prev_span.len = static_cast<u32>(scratch.size());
      pool.insert(pool.end(), scratch.begin(), scratch.end());
      prev_key = lane.key;
      have_prev = true;
    }
    // Scalar cost: one LUT read (the wildcard register is free).
    recs[lane.slot].charge(lut_.read_cycles(), 1);
    spans[lane.slot] = prev_span;
  }
}

void ProtocolLut::lookup_first_batch_into(std::span<const BatchKey> sorted,
                                          std::span<hw::CycleRecorder> recs,
                                          std::vector<Label>& pool,
                                          std::span<LabelSpan> spans) const {
  bool have_prev = false;
  u32 prev_key = 0;
  LabelSpan prev_span{};
  for (const BatchKey& lane : sorted) {
    if (!have_prev || lane.key != prev_key) {
      const Label first = lookup_first(static_cast<u8>(lane.key), nullptr);
      prev_span.off = static_cast<u32>(pool.size());
      prev_span.len = first.valid() ? 1 : 0;
      if (first.valid()) pool.push_back(first);
      prev_key = lane.key;
      have_prev = true;
    }
    recs[lane.slot].charge(lut_.read_cycles(), 1);
    spans[lane.slot] = prev_span;
  }
}

Label ProtocolLut::lookup_first(u8 proto, hw::CycleRecorder* rec) const {
  hw::WordUnpacker u(lut_.read(proto, rec));
  if (u.pull(1) != 0) {
    return Label{static_cast<u16>(u.pull(kProtoLabelBits))};
  }
  hw::WordUnpacker w(wc_reg_.reg(0));
  if (w.pull(1) != 0) {
    return Label{static_cast<u16>(w.pull(kProtoLabelBits))};
  }
  return Label{};
}

}  // namespace pclass::alg
