/// \file batch_keys.hpp
/// Shared vocabulary of the phase-2 *batch* lookup path: a batch of
/// packets is decomposed per dimension into (key, slot) lanes, sorted by
/// key, and handed to each engine's lookup_batch_into() in one call.
/// Sorting groups duplicate keys into runs (one real walk per distinct
/// key, modeled cost replayed per packet) and places near-equal keys
/// next to each other, which is what lets the multi-bit trie reuse the
/// shared prefix levels of consecutive walks (RVH-style sorted
/// traversal: shared nodes are touched once per batch, not once per
/// packet).
///
/// Cycle-charging contract (all lookup_batch_into variants): every
/// packet's CycleRecorder receives *exactly* the cycles and memory
/// accesses the scalar lookup of its key would have charged — the batch
/// path amortizes host work, never modeled cost. Equivalence is
/// asserted per packet by tests/test_batch_phase2.cpp.
#pragma once

#include <algorithm>
#include <span>

#include "common/types.hpp"

namespace pclass::alg {

/// One lane of a batch lookup: dimension key of the packet at \p slot.
struct BatchKey {
  u32 key = 0;   ///< the dimension search key (16-bit dims zero-extended)
  u32 slot = 0;  ///< index of the packet inside the batch
};

/// Slice of a batch-shared label pool: the label list of one packet's
/// dimension, without per-packet list copies (duplicate keys share one
/// pool range).
struct LabelSpan {
  u32 off = 0;
  u32 len = 0;

  [[nodiscard]] constexpr bool empty() const { return len == 0; }
};

/// Sort lanes by key (slot as tiebreak, so runs are deterministic).
inline void sort_batch_keys(std::span<BatchKey> keys) {
  std::sort(keys.begin(), keys.end(),
            [](const BatchKey& a, const BatchKey& b) {
              return a.key != b.key ? a.key < b.key : a.slot < b.slot;
            });
}

}  // namespace pclass::alg
