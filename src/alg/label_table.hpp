/// \file label_table.hpp
/// The controller-side label tables of the update methodology (§IV.A,
/// Fig. 4): each dimension keeps a table of its *unique* field values,
/// each tagged with a small label and a reference counter.
///
///   "when one or more new rules must be inserted in the system, the
///    Controller searches the unique labels for each field in lookup
///    tables (Label Tables). The label tables also contain a counter for
///    each label to support fast incremental update. When a label is not
///    found in the table ... a new label is created, the counter is
///    [set to] 1 and the new rule information is inserted. However, if
///    the label is found ... only the incremental value of the counter is
///    required. ... only when the counter is zero, the label is deleted."
///
/// The table also tracks the best (minimum) rule priority per label,
/// because IP/protocol label lists are kept in priority order (§III.C.1).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace pclass::alg {

/// Outcome of an acquire (rule-field insert).
struct AcquireResult {
  Label label;
  bool created = false;  ///< true -> the hardware structure must learn it
};

/// Outcome of a release (rule-field delete).
struct ReleaseResult {
  Label label;
  bool freed = false;  ///< true -> the hardware structure must forget it
};

/// Ref-counted label table for one dimension, keyed by the dimension's
/// field-value type (SegmentPrefix, PortRange or ProtoMatch — any
/// totally-ordered regular type).
template <typename ValueT>
class LabelTable {
 public:
  /// \param dim  the dimension, which fixes the label width and thus the
  ///             maximum number of distinct live labels (2^width).
  explicit LabelTable(Dimension dim)
      : dim_(dim), capacity_(usize{1} << label_bits(dim)) {}

  [[nodiscard]] Dimension dimension() const { return dim_; }
  [[nodiscard]] usize capacity() const { return capacity_; }
  [[nodiscard]] usize size() const { return entries_.size(); }

  /// Fig. 4 insert path: find-or-create the label for \p value and count
  /// one more rule using it (with rule priority \p prio, tracked so lists
  /// can stay priority-ordered).
  /// \throws CapacityError when a new label would exceed the label width.
  AcquireResult acquire(const ValueT& value, Priority prio) {
    auto it = entries_.find(value);
    if (it != entries_.end()) {
      Entry& e = it->second;
      ++e.refcount;
      e.priorities.insert(prio);
      return {e.label, false};
    }
    if (entries_.size() >= capacity_) {
      throw CapacityError(std::string("LabelTable[") + to_string(dim_) +
                          "]: out of labels (capacity " +
                          std::to_string(capacity_) + ")");
    }
    Entry e;
    e.label = allocate();
    e.refcount = 1;
    e.priorities.insert(prio);
    const Label out = e.label;
    entries_.emplace(value, std::move(e));
    return {out, true};
  }

  /// Fig. 4 delete path: count one less rule using \p value; the label is
  /// freed when its counter reaches zero.
  /// \throws InternalError if the value (or priority) is not present —
  /// that would mean the controller's shadow state diverged.
  ReleaseResult release(const ValueT& value, Priority prio) {
    auto it = entries_.find(value);
    if (it == entries_.end()) {
      throw InternalError(std::string("LabelTable[") + to_string(dim_) +
                          "]: releasing unknown value");
    }
    Entry& e = it->second;
    auto pit = e.priorities.find(prio);
    if (pit == e.priorities.end() || e.refcount == 0) {
      throw InternalError(std::string("LabelTable[") + to_string(dim_) +
                          "]: refcount/priority underflow");
    }
    e.priorities.erase(pit);
    --e.refcount;
    const Label label = e.label;
    if (e.refcount == 0) {
      free_list_.push_back(label);
      entries_.erase(it);
      return {label, true};
    }
    return {label, false};
  }

  [[nodiscard]] std::optional<Label> find(const ValueT& value) const {
    auto it = entries_.find(value);
    if (it == entries_.end()) return std::nullopt;
    return it->second.label;
  }

  [[nodiscard]] u32 refcount(const ValueT& value) const {
    auto it = entries_.find(value);
    return it == entries_.end() ? 0 : it->second.refcount;
  }

  /// Best (minimum) priority of any live rule using \p value.
  [[nodiscard]] Priority best_priority(const ValueT& value) const {
    auto it = entries_.find(value);
    if (it == entries_.end() || it->second.priorities.empty()) {
      return kNoPriority;
    }
    return *it->second.priorities.begin();
  }

  /// Deterministic iteration over (value, label, best priority).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [value, e] : entries_) {
      fn(value, e.label,
         e.priorities.empty() ? kNoPriority : *e.priorities.begin());
    }
  }

 private:
  struct Entry {
    Label label;
    u32 refcount = 0;
    /// Live rule priorities using this value (multiset: rules may share a
    /// priority only transiently, but deletion needs exact bookkeeping).
    std::multiset<Priority> priorities;
  };

  Label allocate() {
    if (!free_list_.empty()) {
      const Label l = free_list_.back();
      free_list_.pop_back();
      return l;
    }
    return Label{next_++};
  }

  Dimension dim_;
  usize capacity_;
  std::map<ValueT, Entry> entries_;
  std::vector<Label> free_list_;
  u16 next_ = 0;
};

}  // namespace pclass::alg
