/// \file label_list_store.hpp
/// The "Labels memory block" (§III.D): priority-ordered lists of labels,
/// stored one label per word with an end-of-list flag. Every per-field
/// algorithm resolves a search key to a *pointer* into this store
/// (§III.B phase 2: "The result from each algorithm is a pointer to a
/// list of matching labels").
///
/// Storage is content-addressed with reference counting: identical lists
/// (extremely common, because multi-bit-trie leaf pushing replicates
/// ancestor lists across sibling entries) are stored once. This is the
/// label method's memory saving made concrete.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/small_vec.hpp"
#include "common/types.hpp"
#include "hwsim/memory.hpp"
#include "hwsim/update_bus.hpp"

namespace pclass::alg {

/// Pointer to a list in a LabelListStore. Address 0 is reserved as the
/// null (empty) list, so node encodings can use plain zero.
struct ListRef {
  static constexpr u32 kNull = 0;
  u32 addr = kNull;

  [[nodiscard]] constexpr bool empty() const { return addr == kNull; }
  friend constexpr auto operator<=>(ListRef, ListRef) = default;
};

/// Content-addressed, ref-counted label-list memory.
class LabelListStore {
 public:
  /// \param label_bits  width of one label; the word is label_bits + 1
  ///                    (end-of-list flag).
  /// \param depth       words of backing memory.
  LabelListStore(std::string name, u32 depth, unsigned label_bits);

  /// Find-or-store \p list (must be non-empty, already in final order)
  /// and take one reference. New lists are uploaded through \p log.
  /// \throws CapacityError when the memory cannot hold the list.
  [[nodiscard]] ListRef acquire(const std::vector<Label>& list,
                                hw::CommandLog& log);

  /// Drop one reference to the list at \p ref; frees the block when the
  /// count reaches zero (no device writes needed — stale words are
  /// unreachable once no node points at them).
  void release(ListRef ref);

  /// Hardware path: read only the first (highest-priority) label —
  /// one memory access, the §V.B "one more cycle" of the lookup.
  [[nodiscard]] Label read_first(ListRef ref, hw::CycleRecorder* rec) const;

  /// Hardware path: walk the list until the end flag (CrossProduct
  /// combining and the DCFL baseline need the full list).
  [[nodiscard]] std::vector<Label> read_list(ListRef ref,
                                             hw::CycleRecorder* rec) const;

  /// Allocation-free read_list: appends into caller-owned scratch (the
  /// classifier's per-lookup hot path — see common/small_vec.hpp).
  void read_list_into(ListRef ref, hw::CycleRecorder* rec,
                      LabelVec& out) const;

  [[nodiscard]] const hw::Memory& memory() const { return mem_; }
  [[nodiscard]] unsigned label_bits() const { return label_bits_; }

  /// Words currently holding live (referenced) lists.
  [[nodiscard]] u64 live_words() const { return live_words_; }
  [[nodiscard]] u64 live_bits() const {
    return live_words_ * mem_.word_bits();
  }
  [[nodiscard]] usize distinct_lists() const { return by_content_.size(); }

  /// Sum of references across all live lists.
  [[nodiscard]] u64 total_references() const {
    u64 refs = 0;
    for (const auto& [addr, info] : by_addr_) {
      refs += info.refcount;
    }
    return refs;
  }

  /// Words a non-content-addressed store would hold (every reference its
  /// own copy) — the denominator of the dedup factor.
  [[nodiscard]] u64 replicated_words() const {
    u64 words = 0;
    for (const auto& [addr, info] : by_addr_) {
      words += u64{info.refcount} * info.content.size();
    }
    return words;
  }

 private:
  struct BlockInfo {
    std::vector<Label> content;
    u32 refcount = 0;
  };

  u32 allocate(u32 len);
  void free_block(u32 addr, u32 len);

  hw::Memory mem_;
  unsigned label_bits_;
  std::map<std::vector<Label>, u32> by_content_;  // content -> addr
  std::map<u32, BlockInfo> by_addr_;              // addr -> info
  std::map<u32, u32> free_blocks_;                // addr -> len (coalesced)
  u32 bump_ = 1;  // address 0 reserved for the null list
  u64 live_words_ = 0;
};

}  // namespace pclass::alg
