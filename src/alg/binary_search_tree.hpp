/// \file binary_search_tree.hpp
/// Balanced binary search tree over one 16-bit IP segment — the
/// architecture's memory-efficient IP lookup option (§III.C: "BST is
/// implemented in order to achieve more efficient memory usage.
/// Therefore, a simple memory block is designated for each 16-bit
/// segmented IP field").
///
/// The prefix set is converted to elementary intervals; each interval
/// carries the priority-ordered label list of its covering prefixes.
/// A balanced BST over the interval start points (one node per interval)
/// resolves a key in ceil(log2 n) memory reads — the paper budgets 16
/// per packet, the worst case for a full 16-bit segment.
///
/// Faithful to §III.C, the tree is rebuilt *in software* on every update
/// ("a balanced tree algorithm can be easily implemented in software and
/// the information with the new structure can be applied in the
/// architecture for each rule insertion") and only changed words are
/// re-uploaded; the measured upload cost is the BST's documented update
/// weakness.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "alg/batch_keys.hpp"
#include "alg/label_list_store.hpp"
#include "common/types.hpp"
#include "hwsim/memory.hpp"
#include "ruleset/rule.hpp"

namespace pclass::alg {

/// Geometry of one BST engine.
struct BstConfig {
  /// Maximum node count (= elementary intervals; ~2x the unique
  /// prefixes of the dimension).
  u32 max_nodes = 4096;
  /// Cycles per node read (1: the paper charges 16 cycles for a 16-deep
  /// walk).
  unsigned read_cycles = 1;
  /// Optional word width override to match the MBT level-2 geometry for
  /// Fig. 5 sharing. 0 = minimal width.
  unsigned word_bits_override = 0;
};

/// Balanced-BST engine for one dimension.
class BinarySearchTree {
 public:
  BinarySearchTree(const std::string& name, BstConfig cfg,
                   LabelListStore& lists,
                   std::function<Priority(Label)> prio_of,
                   hw::Memory* shared_memory = nullptr);

  BinarySearchTree(const BinarySearchTree&) = delete;
  BinarySearchTree& operator=(const BinarySearchTree&) = delete;

  // ---- controller-side update path ----

  /// Add prefix \p p carrying \p label, rebuild, upload changed words.
  void insert(ruleset::SegmentPrefix p, Label label, hw::CommandLog& log);

  /// Bulk load: add many prefixes with a single rebuild/upload (the
  /// controller uses this when programming a whole filter set; per-rule
  /// incremental cost is measured with insert()).
  void insert_bulk(
      const std::vector<std::pair<ruleset::SegmentPrefix, Label>>& batch,
      hw::CommandLog& log);

  /// Remove prefix \p p, rebuild, upload changed words.
  void remove(ruleset::SegmentPrefix p, hw::CommandLog& log);

  /// Re-sort lists after a priority change of \p p's label.
  void refresh(ruleset::SegmentPrefix p, hw::CommandLog& log);

  void clear(hw::CommandLog& log);

  // ---- hardware-side lookup path ----

  /// Predecessor search for \p key; returns the matched interval's label
  /// list (empty ref = no covering prefix).
  [[nodiscard]] ListRef lookup(u16 key, hw::CycleRecorder* rec) const;

  /// Phase-2 batch search over \p sorted lanes (ascending by key). One
  /// host binary search per *distinct* key; duplicate keys replay the
  /// representative's result and modeled cost, so recs[lane.slot] is
  /// charged exactly what the scalar lookup of that key charges
  /// (ceil(log2 n) node reads). Requires refs/recs to cover every slot.
  void lookup_batch_into(std::span<const BatchKey> sorted,
                         std::span<ListRef> refs,
                         std::span<hw::CycleRecorder> recs) const;

  // ---- introspection ----

  [[nodiscard]] const hw::Memory& memory() const { return *mem_; }
  [[nodiscard]] usize node_count() const { return live_nodes_; }
  [[nodiscard]] u64 live_node_bits() const {
    return u64{live_nodes_} * mem_->word_bits();
  }
  [[nodiscard]] u64 capacity_bits() const { return mem_->capacity_bits(); }
  /// Depth of the current balanced tree (worst-case reads per lookup).
  [[nodiscard]] unsigned depth() const;
  [[nodiscard]] usize prefix_count() const { return prefixes_.size(); }

 private:
  struct SwNode {
    u16 start = 0;
    std::vector<Label> list;
    ListRef ref{};
    bool valid = false;
  };

  /// Rebuild the balanced tree from `prefixes_` and upload the diff.
  void rebuild(hw::CommandLog& log);
  void write_node(u32 idx, hw::CommandLog& log);

  BstConfig cfg_;
  LabelListStore& lists_;
  std::function<Priority(Label)> prio_of_;

  std::unique_ptr<hw::Memory> owned_mem_;
  hw::Memory* mem_;

  std::map<ruleset::SegmentPrefix, Label> prefixes_;
  std::vector<SwNode> nodes_;  ///< heap-order shadow (index 0 = root)
  u32 live_nodes_ = 0;
};

}  // namespace pclass::alg
