#include "alg/range_vector_hash.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/hash.hpp"

namespace pclass::alg {

namespace {

constexpr unsigned kLenBits = 5;    // prefix length tag 0..16
constexpr unsigned kValueBits = 16;
constexpr unsigned kAddrBits = 16;
constexpr unsigned kWordBits = 1 + kLenBits + kValueBits + kAddrBits;

constexpr u64 kHashSalt = 0x5256482D76312D73ull;

// Entry word layout (LSB first): valid(1) length(5) value(16) list_addr(16).
hw::Word encode_entry(bool valid, u8 length, u16 value, u32 list_addr) {
  hw::WordPacker p;
  p.push(valid ? 1 : 0, 1);
  p.push(length, kLenBits);
  p.push(value, kValueBits);
  p.push(list_addr, kAddrBits);
  return p.word();
}

/// Value of the length-\p al ancestor of \p p (the masked key probed at
/// that range-vector signature).
u16 ancestor_value(ruleset::SegmentPrefix p, u8 al) {
  if (al == 0) return 0;
  return static_cast<u16>(p.value &
                          ~static_cast<u16>(mask_low(16u - al) & 0xFFFFu));
}

}  // namespace

RangeVectorHash::RangeVectorHash(const std::string& name, RvhConfig cfg,
                                 LabelListStore& lists,
                                 std::function<Priority(Label)> prio_of)
    : cfg_(cfg), lists_(lists), prio_of_(std::move(prio_of)) {
  if (cfg_.table_depth == 0) {
    throw ConfigError("RangeVectorHash: table_depth must be > 0");
  }
  if (lists_.memory().depth() > (u32{1} << kAddrBits)) {
    throw ConfigError("RangeVectorHash: list store too deep for address "
                      "field");
  }
  if (!prio_of_) {
    throw ConfigError("RangeVectorHash: priority callback required");
  }
  mem_ = std::make_unique<hw::Memory>(name + ".rvh", cfg_.table_depth,
                                      kWordBits, cfg_.read_cycles);
  slots_.resize(cfg_.table_depth);
}

u32 RangeVectorHash::home_slot(ruleset::SegmentPrefix p) const {
  const u64 key = (u64{p.length} << kValueBits) | p.value;
  return static_cast<u32>(mix64(key ^ kHashSalt) % cfg_.table_depth);
}

u32 RangeVectorHash::find_slot(ruleset::SegmentPrefix p) const {
  u32 slot = home_slot(p);
  for (u32 probes = 0; probes < cfg_.table_depth; ++probes) {
    const SwEntry& e = slots_[slot];
    if (!e.valid) break;
    if (e.prefix == p) return slot;
    slot = (slot + 1) % cfg_.table_depth;
  }
  throw InternalError("RangeVectorHash: live prefix missing from table");
}

std::vector<Label> RangeVectorHash::compute_list(
    ruleset::SegmentPrefix p) const {
  // Leaf-pushed covering set: this prefix plus every live ancestor, in
  // the shared (priority, label value) order all engines agree on.
  std::vector<std::pair<Priority, u16>> keyed;
  for (u8 al = 0; al <= p.length; ++al) {
    const auto it =
        prefixes_.find(ruleset::SegmentPrefix{ancestor_value(p, al), al});
    if (it != prefixes_.end()) {
      keyed.emplace_back(prio_of_(it->second), it->second.value);
    }
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<Label> list;
  list.reserve(keyed.size());
  for (const auto& [prio, value] : keyed) {
    list.push_back(Label{value});
  }
  return list;
}

void RangeVectorHash::write_entry(u32 slot, hw::CommandLog& log) {
  const SwEntry& e = slots_[slot];
  log.memory_write(*mem_, slot,
                   encode_entry(e.valid, e.prefix.length, e.prefix.value,
                                e.ref.addr));
}

void RangeVectorHash::place_entry(ruleset::SegmentPrefix p,
                                  std::vector<Label> list,
                                  hw::CommandLog& log) {
  u32 slot = home_slot(p);
  for (u32 probes = 0;; ++probes) {
    if (probes >= cfg_.table_depth) {
      throw CapacityError("RangeVectorHash '" + mem_->name() +
                          "': table full at depth " +
                          std::to_string(cfg_.table_depth));
    }
    if (!slots_[slot].valid) break;
    slot = (slot + 1) % cfg_.table_depth;
  }
  SwEntry& e = slots_[slot];
  e.valid = true;
  e.prefix = p;
  e.ref = lists_.acquire(list, log);
  e.list = std::move(list);
  ++live_entries_;
  // §V.A: one hash-unit cycle to obtain the entry address, then the word.
  log.hash_compute(mem_->name() + ".hash");
  write_entry(slot, log);
}

void RangeVectorHash::erase_entry(ruleset::SegmentPrefix p,
                                  hw::CommandLog& log) {
  u32 hole = find_slot(p);
  lists_.release(slots_[hole].ref);
  slots_[hole] = SwEntry{};
  --live_entries_;
  // Backward-shift cluster repair: keep "probe until invalid" exact
  // without tombstones. Each relocated entry is one word rewrite; the
  // final hole is invalidated last.
  u32 j = hole;
  while (true) {
    j = (j + 1) % cfg_.table_depth;
    if (!slots_[j].valid) break;
    const u32 h = home_slot(slots_[j].prefix);
    const u32 dist_home = (j + cfg_.table_depth - h) % cfg_.table_depth;
    const u32 dist_hole = (j + cfg_.table_depth - hole) % cfg_.table_depth;
    if (dist_home >= dist_hole) {
      slots_[hole] = std::move(slots_[j]);
      slots_[j] = SwEntry{};
      write_entry(hole, log);
      hole = j;
    }
  }
  log.memory_write(*mem_, hole, hw::Word{});
}

void RangeVectorHash::refresh_entry(ruleset::SegmentPrefix p,
                                    hw::CommandLog& log) {
  const u32 slot = find_slot(p);
  SwEntry& e = slots_[slot];
  std::vector<Label> fresh = compute_list(p);
  if (fresh == e.list) return;
  const ListRef new_ref = lists_.acquire(fresh, log);
  lists_.release(e.ref);
  e.list = std::move(fresh);
  e.ref = new_ref;
  write_entry(slot, log);
}

template <typename Fn>
void RangeVectorHash::for_each_descendant(ruleset::SegmentPrefix p,
                                          Fn&& fn) {
  // Strict descendants occupy the contiguous value range
  // [p.value, p.value | host_mask]; SegmentPrefix orders by (value,
  // length), so one bounded map scan visits exactly the candidates.
  const u16 hi = static_cast<u16>(
      p.value | static_cast<u16>(mask_low(16u - p.length) & 0xFFFFu));
  auto it = prefixes_.lower_bound(ruleset::SegmentPrefix{p.value, 0});
  const auto end =
      prefixes_.upper_bound(ruleset::SegmentPrefix{hi, u8{16}});
  for (; it != end; ++it) {
    const ruleset::SegmentPrefix d = it->first;
    if (d.length > p.length && p.matches(d.value)) {
      fn(d);
    }
  }
}

void RangeVectorHash::note_length_added(u8 len) {
  if (len_count_[len]++ == 0) {
    live_lens_.clear();
    for (int l = 16; l >= 0; --l) {
      if (len_count_[static_cast<usize>(l)] > 0) {
        live_lens_.push_back(static_cast<u8>(l));
      }
    }
  }
}

void RangeVectorHash::note_length_removed(u8 len) {
  if (--len_count_[len] == 0) {
    live_lens_.erase(std::find(live_lens_.begin(), live_lens_.end(), len));
  }
}

void RangeVectorHash::insert(ruleset::SegmentPrefix p, Label label,
                             hw::CommandLog& log) {
  if (!prefixes_.emplace(p, label).second) {
    throw InternalError("RangeVectorHash: duplicate prefix insert");
  }
  note_length_added(p.length);
  place_entry(p, compute_list(p), log);
  for_each_descendant(p,
                      [&](ruleset::SegmentPrefix d) { refresh_entry(d, log); });
}

void RangeVectorHash::remove(ruleset::SegmentPrefix p, hw::CommandLog& log) {
  if (prefixes_.erase(p) == 0) {
    throw InternalError("RangeVectorHash: remove of unknown prefix");
  }
  note_length_removed(p.length);
  erase_entry(p, log);
  for_each_descendant(p,
                      [&](ruleset::SegmentPrefix d) { refresh_entry(d, log); });
}

void RangeVectorHash::refresh(ruleset::SegmentPrefix p, hw::CommandLog& log) {
  refresh_entry(p, log);
  for_each_descendant(p,
                      [&](ruleset::SegmentPrefix d) { refresh_entry(d, log); });
}

void RangeVectorHash::clear(hw::CommandLog& log) {
  for (u32 slot = 0; slot < slots_.size(); ++slot) {
    if (!slots_[slot].valid) continue;
    lists_.release(slots_[slot].ref);
    slots_[slot] = SwEntry{};
    log.memory_write(*mem_, slot, hw::Word{});
  }
  prefixes_.clear();
  len_count_.fill(0);
  live_lens_.clear();
  live_entries_ = 0;
}

ListRef RangeVectorHash::lookup(u16 key, hw::CycleRecorder* rec) const {
  // Probe the live range-vector signatures longest-first; the first hit
  // carries the full covering list (leaf-pushed on update), so it is
  // the longest-match answer. Each signature costs one hash cycle plus
  // its probe-cluster reads.
  for (const u8 len : live_lens_) {
    const u16 masked =
        len == 0 ? u16{0}
                 : static_cast<u16>(
                       key & ~static_cast<u16>(mask_low(16u - len) & 0xFFFFu));
    if (rec != nullptr) {
      rec->charge(1, 0);  // hash-unit address generation
    }
    u32 slot = static_cast<u32>(
        mix64(((u64{len} << kValueBits) | masked) ^ kHashSalt) %
        cfg_.table_depth);
    while (true) {
      const hw::Word w = mem_->read(slot, rec);
      hw::WordUnpacker u(w);
      const u64 valid = u.pull(1);
      const u64 elen = u.pull(kLenBits);
      const u64 evalue = u.pull(kValueBits);
      const u64 eaddr = u.pull(kAddrBits);
      if (valid == 0) break;  // miss at this signature
      if (elen == len && evalue == masked) {
        return ListRef{static_cast<u32>(eaddr)};
      }
      slot = (slot + 1) % cfg_.table_depth;
    }
  }
  return ListRef{};
}

void RangeVectorHash::lookup_batch_into(
    std::span<const BatchKey> sorted, std::span<ListRef> refs,
    std::span<hw::CycleRecorder> recs) const {
  // One real probe sequence per distinct key; duplicates within the
  // sorted run replay the representative's result and modeled cost.
  bool have_prev = false;
  u32 prev_key = 0;
  ListRef prev_ref{};
  u64 prev_cycles = 0;
  u64 prev_accesses = 0;
  for (const BatchKey& lane : sorted) {
    if (!have_prev || lane.key != prev_key) {
      hw::CycleRecorder probe;
      prev_ref = lookup(static_cast<u16>(lane.key), &probe);
      prev_cycles = probe.cycles();
      prev_accesses = probe.memory_accesses();
      prev_key = lane.key;
      have_prev = true;
    }
    refs[lane.slot] = prev_ref;
    recs[lane.slot].charge(prev_cycles, prev_accesses);
  }
}

}  // namespace pclass::alg
