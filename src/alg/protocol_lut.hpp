/// \file protocol_lut.hpp
/// Protocol-field lookup (§III.C: "a simple Look-Up Table is utilized for
/// Protocol. The protocol value addresses the table where the label is
/// contained"). A 256-word memory maps the protocol byte to its exact
/// label; the wildcard label (a rule with protocol ANY) lives in a single
/// side register so programming it costs one write, not 256.
///
/// List order (§III.C.1): "The priority label for Protocol lookup is
/// determined by the exact matching value" — exact label first, wildcard
/// second. Lookup is a single memory access (§V.B: "executed in a single
/// clock cycle").
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "alg/batch_keys.hpp"
#include "common/small_vec.hpp"
#include "common/types.hpp"
#include "hwsim/memory.hpp"
#include "hwsim/register_file.hpp"
#include "hwsim/update_bus.hpp"
#include "ruleset/rule.hpp"

namespace pclass::alg {

/// Protocol-dimension engine.
class ProtocolLut {
 public:
  explicit ProtocolLut(const std::string& name);

  ProtocolLut(const ProtocolLut&) = delete;
  ProtocolLut& operator=(const ProtocolLut&) = delete;

  // ---- controller-side update path ----

  /// Program \p match -> \p label (one LUT word, or the wildcard
  /// register).
  void insert(ruleset::ProtoMatch match, Label label, hw::CommandLog& log);

  void remove(ruleset::ProtoMatch match, hw::CommandLog& log);

  void clear(hw::CommandLog& log);

  // ---- hardware-side lookup path ----

  /// Matching labels for protocol byte \p proto: [exact?, wildcard?].
  [[nodiscard]] std::vector<Label> lookup(u8 proto,
                                          hw::CycleRecorder* rec) const;

  /// Allocation-free lookup() into caller-owned scratch.
  void lookup_into(u8 proto, hw::CycleRecorder* rec, LabelVec& out) const;

  [[nodiscard]] Label lookup_first(u8 proto, hw::CycleRecorder* rec) const;

  /// Phase-2 batch lookup over \p sorted lanes (ascending by key). The
  /// LUT word of each *distinct* protocol is fetched once; every lane
  /// of the run shares its pool range and is charged the scalar cost
  /// (one LUT read; the wildcard register rides for free). Requires
  /// spans/recs to cover every slot.
  void lookup_batch_into(std::span<const BatchKey> sorted,
                         std::span<hw::CycleRecorder> recs,
                         std::vector<Label>& pool,
                         std::span<LabelSpan> spans) const;

  /// FirstLabel batch variant: pools only the winning label (exact
  /// else wildcard) per distinct protocol; empty span = no match.
  /// Same per-lane modeled cost as lookup_first (one LUT read).
  void lookup_first_batch_into(std::span<const BatchKey> sorted,
                               std::span<hw::CycleRecorder> recs,
                               std::vector<Label>& pool,
                               std::span<LabelSpan> spans) const;

  // ---- introspection ----

  [[nodiscard]] const hw::Memory& memory() const { return lut_; }
  [[nodiscard]] const hw::RegisterFile& wildcard_register() const {
    return wc_reg_;
  }

 private:
  hw::Memory lut_;
  hw::RegisterFile wc_reg_;
};

}  // namespace pclass::alg
