#include "alg/multibit_trie.hpp"

#include <algorithm>
#include <array>

namespace pclass::alg {

namespace {

// Fixed pointer widths of the node-entry encoding. Level capacities and
// list-store depths are validated against them at construction.
constexpr unsigned kChildBits = 12;   // up to 4096 nodes per level
constexpr unsigned kAddrBits = 16;    // list store depth up to 65536
constexpr unsigned kMinWordBits = 1 + kChildBits + kAddrBits;

// Entry word layout (LSB first): child_valid(1) child(12) list_addr(16).
hw::Word encode_entry(bool child_valid, u64 child, u64 list_addr) {
  hw::WordPacker p;
  p.push(child_valid ? 1 : 0, 1);
  p.push(child, kChildBits);
  p.push(list_addr, kAddrBits);
  return p.word();
}

}  // namespace

MultiBitTrie::MultiBitTrie(const std::string& name, MbtConfig cfg,
                           LabelListStore& lists,
                           std::function<Priority(Label)> prio_of,
                           hw::Memory* shared_level,
                           usize shared_level_index)
    : cfg_(std::move(cfg)), lists_(lists), prio_of_(std::move(prio_of)) {
  if (cfg_.strides.empty()) {
    throw ConfigError("MultiBitTrie: need at least one stride");
  }
  unsigned sum = 0;
  for (unsigned s : cfg_.strides) {
    if (s == 0 || s > 12) {
      throw ConfigError("MultiBitTrie: stride must be in [1, 12]");
    }
    sum += s;
    cum_.push_back(sum);
  }
  if (sum != 16) {
    throw ConfigError("MultiBitTrie: strides must sum to 16 (one segment)");
  }
  if (cfg_.level_capacity.size() != cfg_.strides.size()) {
    throw ConfigError("MultiBitTrie: level_capacity size must match strides");
  }
  cfg_.level_capacity[0] = 1;  // exactly one root node
  for (u32 c : cfg_.level_capacity) {
    if (c == 0 || c > (u32{1} << kChildBits)) {
      throw ConfigError("MultiBitTrie: level capacity out of range");
    }
  }
  if (lists_.memory().depth() > (u32{1} << kAddrBits)) {
    throw ConfigError("MultiBitTrie: list store too deep for address field");
  }
  if (!prio_of_) {
    throw ConfigError("MultiBitTrie: priority callback required");
  }

  // The word-width override exists to match the shared block's geometry
  // (Fig. 5); owned levels always use the minimal entry width.
  const unsigned shared_word_bits =
      std::max(kMinWordBits, cfg_.word_bits_override == 0
                                 ? kMinWordBits
                                 : cfg_.word_bits_override);
  for (usize k = 0; k < cfg_.strides.size(); ++k) {
    const u32 depth = cfg_.level_capacity[k] * (u32{1} << cfg_.strides[k]);
    if (shared_level != nullptr && k == shared_level_index) {
      if (shared_level->depth() < depth ||
          shared_level->word_bits() < shared_word_bits) {
        throw ConfigError("MultiBitTrie: shared level memory too small");
      }
      mem_.push_back(shared_level);
    } else {
      owned_mem_.push_back(std::make_unique<hw::Memory>(
          name + ".L" + std::to_string(k), depth, kMinWordBits,
          cfg_.read_cycles));
      mem_.push_back(owned_mem_.back().get());
    }
  }

  pool_.resize(cfg_.strides.size());
  free_ids_.resize(cfg_.strides.size());
  // Root node: always live, entries all empty.
  SwNode root;
  root.entries.resize(usize{1} << cfg_.strides[0]);
  root.live = true;
  pool_[0].push_back(std::move(root));
}

unsigned MultiBitTrie::level_word_bits(usize level) const {
  return mem_[level]->word_bits();
}

usize MultiBitTrie::anchor_level(u8 prefix_len) const {
  for (usize k = 0; k < cum_.size(); ++k) {
    if (prefix_len <= cum_[k]) return k;
  }
  throw InternalError("MultiBitTrie: prefix longer than segment");
}

u32 MultiBitTrie::entry_index(u16 key, usize level) const {
  const unsigned shift = 16 - cum_[level];
  return static_cast<u32>((key >> shift) & mask_low(cfg_.strides[level]));
}

MultiBitTrie::Span MultiBitTrie::covered_span(ruleset::SegmentPrefix p,
                                              usize level) const {
  const unsigned prev = level == 0 ? 0 : cum_[level - 1];
  const unsigned span_bits = cum_[level] - std::max<unsigned>(p.length, prev);
  const u32 base = entry_index(p.value, level);
  // Host bits of p.value are zero, so base already has zeros in the
  // expanded positions.
  return Span{base, base + (u32{1} << span_bits) - 1};
}

i64 MultiBitTrie::alloc_node(usize level, i64 parent, u32 parent_entry,
                             hw::CommandLog& log) {
  i64 id;
  if (!free_ids_[level].empty()) {
    id = free_ids_[level].back();
    free_ids_[level].pop_back();
  } else {
    if (pool_[level].size() >= cfg_.level_capacity[level]) {
      throw CapacityError("MultiBitTrie '" + mem_[level]->name() +
                          "': node pool exhausted at level " +
                          std::to_string(level));
    }
    id = static_cast<i64>(pool_[level].size());
    pool_[level].emplace_back();
  }
  SwNode& n = pool_[level][static_cast<usize>(id)];
  n = SwNode{};
  n.entries.resize(usize{1} << cfg_.strides[level]);
  n.parent = parent;
  n.parent_entry = parent_entry;
  n.live = true;

  // Leaf-push: new entries inherit the parent entry's list.
  const std::vector<Label>& inherited =
      pool_[level - 1][static_cast<usize>(parent)].entries[parent_entry].list;
  for (u32 e = 0; e < n.entries.size(); ++e) {
    SwEntry& entry = n.entries[e];
    entry.list = inherited;
    entry.ref = inherited.empty() ? ListRef{} : lists_.acquire(inherited, log);
    write_entry(level, id, e, log);
  }
  return id;
}

void MultiBitTrie::free_node(usize level, i64 id) {
  SwNode& n = pool_[level][static_cast<usize>(id)];
  for (SwEntry& e : n.entries) {
    lists_.release(e.ref);
  }
  n = SwNode{};
  free_ids_[level].push_back(static_cast<u32>(id));
}

void MultiBitTrie::write_entry(usize level, i64 node, u32 entry,
                               hw::CommandLog& log) {
  const SwNode& n = pool_[level][static_cast<usize>(node)];
  const SwEntry& e = n.entries[entry];
  const u32 addr =
      static_cast<u32>(node) * (u32{1} << cfg_.strides[level]) + entry;
  log.memory_write(*mem_[level], addr,
                   encode_entry(e.child >= 0,
                                e.child >= 0 ? static_cast<u64>(e.child) : 0,
                                e.ref.addr));
}

i64 MultiBitTrie::walk_to_anchor(ruleset::SegmentPrefix p, bool create,
                                 hw::CommandLog& log) {
  const usize target = anchor_level(p.length);
  i64 node = 0;
  for (usize k = 0; k < target; ++k) {
    const u32 idx = entry_index(p.value, k);
    SwEntry& e = pool_[k][static_cast<usize>(node)].entries[idx];
    if (e.child < 0) {
      if (!create) {
        throw InternalError("MultiBitTrie: path missing for known prefix");
      }
      e.child = alloc_node(k + 1, node, idx, log);
      write_entry(k, node, idx, log);
      // Re-fetch: alloc_node may have grown the pool vector.
    }
    node = pool_[k][static_cast<usize>(node)].entries[idx].child;
  }
  return node;
}

std::vector<Label> MultiBitTrie::inherited_of(usize level, i64 node) const {
  const SwNode& n = pool_[level][static_cast<usize>(node)];
  if (n.parent < 0) {
    return {};
  }
  return pool_[level - 1][static_cast<usize>(n.parent)]
      .entries[n.parent_entry]
      .list;
}

std::vector<Label> MultiBitTrie::compose_list(
    const SwNode& node, usize level, u32 entry,
    const std::vector<Label>& inherited) const {
  std::vector<Label> out = inherited;
  for (const auto& [q, l] : node.anchored) {
    const Span s = covered_span(q, level);
    if (entry >= s.lo && entry <= s.hi) {
      out.push_back(l);
    }
  }
  std::sort(out.begin(), out.end(), [&](Label a, Label b) {
    const Priority pa = prio_of_(a), pb = prio_of_(b);
    return pa != pb ? pa < pb : a.value < b.value;
  });
  return out;
}

void MultiBitTrie::recompute_entry(usize level, i64 node, u32 entry,
                                   const std::vector<Label>& inherited,
                                   hw::CommandLog& log, bool force) {
  SwNode& n = pool_[level][static_cast<usize>(node)];
  std::vector<Label> fresh = compose_list(n, level, entry, inherited);
  SwEntry& e = n.entries[entry];
  const bool changed = fresh != e.list;
  if (!changed && !force) {
    return;  // nothing below can have changed either (same inherited base)
  }
  if (changed) {
    const ListRef new_ref =
        fresh.empty() ? ListRef{} : lists_.acquire(fresh, log);
    lists_.release(e.ref);
    e.ref = new_ref;
    e.list = std::move(fresh);
    write_entry(level, node, entry, log);
  }
  if (e.child >= 0) {
    const i64 child = e.child;
    const usize child_entries = usize{1} << cfg_.strides[level + 1];
    for (u32 ce = 0; ce < child_entries; ++ce) {
      recompute_entry(level + 1, child, ce, e.list, log, force);
    }
  }
}

void MultiBitTrie::recompute_span(ruleset::SegmentPrefix p,
                                  hw::CommandLog& log, bool force) {
  const auto it = prefix_anchor_.find(p);
  if (it == prefix_anchor_.end()) {
    throw InternalError("MultiBitTrie: recompute of unknown prefix");
  }
  const auto [level, node] = it->second;
  const Span s = covered_span(p, level);
  const std::vector<Label> inherited = inherited_of(level, node);
  for (u32 e = s.lo; e <= s.hi; ++e) {
    recompute_entry(level, node, e, inherited, log, force);
  }
}

void MultiBitTrie::insert(ruleset::SegmentPrefix p, Label label,
                          hw::CommandLog& log) {
  if (prefix_anchor_.contains(p)) {
    throw InternalError("MultiBitTrie: duplicate prefix insert");
  }
  const usize level = anchor_level(p.length);
  const i64 node = walk_to_anchor(p, /*create=*/true, log);
  pool_[level][static_cast<usize>(node)].anchored.emplace(p, label);
  prefix_anchor_.emplace(p, std::make_pair(level, node));
  recompute_span(p, log, /*force=*/false);
}

void MultiBitTrie::remove(ruleset::SegmentPrefix p, hw::CommandLog& log) {
  const auto it = prefix_anchor_.find(p);
  if (it == prefix_anchor_.end()) {
    throw InternalError("MultiBitTrie: remove of unknown prefix");
  }
  const auto [level, node] = it->second;
  SwNode& n = pool_[level][static_cast<usize>(node)];
  n.anchored.erase(p);
  // Recompute while the anchor entry still exists, then drop bookkeeping.
  const Span s = covered_span(p, level);
  const std::vector<Label> inherited = inherited_of(level, node);
  for (u32 e = s.lo; e <= s.hi; ++e) {
    recompute_entry(level, node, e, inherited, log, /*force=*/false);
  }
  prefix_anchor_.erase(it);
  prune_upwards(level, node, log);
}

void MultiBitTrie::refresh(ruleset::SegmentPrefix p, hw::CommandLog& log) {
  // A priority change can reorder lists anywhere under the anchor span
  // even when intermediate lists look unchanged -> forced descent.
  recompute_span(p, log, /*force=*/true);
}

void MultiBitTrie::prune_upwards(usize level, i64 node,
                                 hw::CommandLog& log) {
  while (level > 0) {
    SwNode& n = pool_[level][static_cast<usize>(node)];
    if (!n.anchored.empty()) {
      return;
    }
    for (const SwEntry& e : n.entries) {
      if (e.child >= 0) {
        return;
      }
    }
    const i64 parent = n.parent;
    const u32 parent_entry = n.parent_entry;
    free_node(level, node);
    SwEntry& pe =
        pool_[level - 1][static_cast<usize>(parent)].entries[parent_entry];
    pe.child = -1;
    write_entry(level - 1, parent, parent_entry, log);
    --level;
    node = parent;
  }
}

void MultiBitTrie::clear(hw::CommandLog& log) {
  // Free everything below the root, then reset the root entries.
  for (usize k = 1; k < pool_.size(); ++k) {
    for (usize id = 0; id < pool_[k].size(); ++id) {
      if (pool_[k][id].live) {
        free_node(k, static_cast<i64>(id));
      }
    }
    pool_[k].clear();
    free_ids_[k].clear();
  }
  SwNode& root = pool_[0][0];
  root.anchored.clear();
  for (u32 e = 0; e < root.entries.size(); ++e) {
    lists_.release(root.entries[e].ref);
    root.entries[e] = SwEntry{};
    write_entry(0, 0, e, log);
  }
  prefix_anchor_.clear();
}

ListRef MultiBitTrie::lookup(u16 key, hw::CycleRecorder* rec) const {
  u64 node = 0;
  u64 result = ListRef::kNull;
  for (usize k = 0; k < cfg_.strides.size(); ++k) {
    const u32 addr = static_cast<u32>(node) * (u32{1} << cfg_.strides[k]) +
                     entry_index(key, k);
    const hw::Word w = mem_[k]->read(addr, rec);
    hw::WordUnpacker u(w);
    const u64 child_valid = u.pull(1);
    const u64 child = u.pull(kChildBits);
    const u64 list_addr = u.pull(kAddrBits);
    if (list_addr != ListRef::kNull) {
      result = list_addr;
    }
    if (child_valid == 0) {
      break;
    }
    node = child;
  }
  return ListRef{static_cast<u32>(result)};
}

void MultiBitTrie::lookup_batch_into(std::span<const BatchKey> sorted,
                                     std::span<ListRef> refs,
                                     std::span<hw::CycleRecorder> recs) const {
  // Path cache of the previous distinct key's walk: the decoded entry
  // word at each visited level. Two sorted neighbours agree on levels
  // 0..d-1 exactly when their top cum_[d-1] bits agree, so the cached
  // words stay valid for the shared prefix of the next walk.
  struct LevelVisit {
    u64 list_addr = ListRef::kNull;
    bool child_valid = false;
    u64 child = 0;
  };
  constexpr usize kMaxLevels = 16;  // strides sum to 16, >= 1 bit each
  std::array<LevelVisit, kMaxLevels> path{};
  usize cached_depth = 0;  // levels of `path` that are valid
  u16 cached_key = 0;
  const usize levels = cfg_.strides.size();

  for (const BatchKey& lane : sorted) {
    const u16 key = static_cast<u16>(lane.key);
    hw::CycleRecorder& rec = recs[lane.slot];
    u64 node = 0;
    u64 result = ListRef::kNull;
    usize k = 0;
    bool terminated = false;
    // 1. Reuse the shared prefix of the previous walk (host-free; the
    //    modeled per-level fetch is still charged per packet).
    for (; k < cached_depth && entry_index(key, k) == entry_index(cached_key, k);
         ++k) {
      rec.charge(mem_[k]->read_cycles(), 1);
      const LevelVisit& v = path[k];
      if (v.list_addr != ListRef::kNull) result = v.list_addr;
      if (!v.child_valid) {
        terminated = true;
        ++k;
        break;
      }
      node = v.child;
    }
    // 2. Continue with real reads from the divergence level, refreshing
    //    the path cache from there down.
    if (!terminated) {
      for (; k < levels; ++k) {
        const u32 addr = static_cast<u32>(node) *
                             (u32{1} << cfg_.strides[k]) +
                         entry_index(key, k);
        hw::WordUnpacker u(mem_[k]->read(addr, &rec));
        LevelVisit v;
        v.child_valid = u.pull(1) != 0;
        v.child = u.pull(kChildBits);
        v.list_addr = u.pull(kAddrBits);
        path[k] = v;
        if (v.list_addr != ListRef::kNull) result = v.list_addr;
        if (!v.child_valid) {
          ++k;
          break;
        }
        node = v.child;
      }
      cached_depth = k;
      cached_key = key;
    }
    refs[lane.slot] = ListRef{static_cast<u32>(result)};
  }
}

u64 MultiBitTrie::live_node_bits() const {
  u64 bits = 0;
  for (usize k = 0; k < pool_.size(); ++k) {
    const u64 live = static_cast<u64>(node_count(k));
    bits += live * (u64{1} << cfg_.strides[k]) * level_word_bits(k);
  }
  return bits;
}

u64 MultiBitTrie::capacity_bits() const {
  u64 bits = 0;
  for (const hw::Memory* m : mem_) {
    bits += m->capacity_bits();
  }
  return bits;
}

usize MultiBitTrie::node_count(usize level) const {
  usize live = 0;
  for (const SwNode& n : pool_[level]) {
    if (n.live) ++live;
  }
  return live;
}

}  // namespace pclass::alg
