/// \file multibit_trie.hpp
/// Multi-bit trie (MBT) over one 16-bit IP segment — the architecture's
/// fast IP lookup algorithm (§III.C: three pipelined levels with 5-5-6
/// bit strides; §V.B: 6-cycle latency, 1 packet/cycle throughput).
///
/// Structure: a node at level k is an array of 2^stride[k] entries; an
/// entry holds an optional child-node pointer and a pointer into the
/// label-list store. Prefixes are expanded onto the entries they cover
/// (controlled prefix expansion) and label lists are *leaf-pushed*: the
/// list at any entry contains the labels of ALL prefixes covering that
/// path, in priority order, so a lookup needs only the deepest existing
/// entry ("the result from each algorithm is a pointer to a list of
/// matching labels"). This replication is exactly why the paper pairs
/// MBT with the label method — lists hold 13-bit labels, not rules, and
/// the content-addressed store dedups identical lists.
///
/// Division of labour (§IV.A): all structural computation happens here in
/// controller software; the device only receives word writes through the
/// CommandLog and serves reads at lookup time.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "alg/batch_keys.hpp"
#include "alg/label_list_store.hpp"
#include "common/types.hpp"
#include "hwsim/memory.hpp"
#include "ruleset/rule.hpp"

namespace pclass::alg {

/// Geometry of one multi-bit trie.
struct MbtConfig {
  /// Per-level strides; must sum to 16 (one IP segment).
  std::vector<unsigned> strides = {5, 5, 6};
  /// Maximum node count per level (level 0 always has exactly 1 node).
  std::vector<u32> level_capacity = {1, 256, 1024};
  /// Cycles per level read (2 models the paper's registered BRAM access:
  /// 3 levels x 2 cycles = the 6-cycle MBT latency of §V.B).
  unsigned read_cycles = 2;
  /// Optional override of the level-word width (bits), used to match the
  /// BST word geometry for Fig. 5 memory sharing. 0 = minimal width.
  unsigned word_bits_override = 0;
};

/// Multi-bit trie engine for one dimension.
class MultiBitTrie {
 public:
  /// \param prio_of  controller callback: current best rule priority of a
  ///                 label (label lists are kept sorted by it).
  /// \param shared_level  optional externally-owned memory to use for one
  ///                 level (Fig. 5 sharing); nullptr = own all levels.
  MultiBitTrie(const std::string& name, MbtConfig cfg, LabelListStore& lists,
               std::function<Priority(Label)> prio_of,
               hw::Memory* shared_level = nullptr,
               usize shared_level_index = 1);

  MultiBitTrie(const MultiBitTrie&) = delete;
  MultiBitTrie& operator=(const MultiBitTrie&) = delete;

  // ---- controller-side update path (emits device writes via log) ----

  /// Teach the trie that segment prefix \p p carries \p label.
  /// \throws CapacityError when a level node pool or list store is full.
  void insert(ruleset::SegmentPrefix p, Label label, hw::CommandLog& log);

  /// Remove prefix \p p (its label is dropped from all covered lists;
  /// emptied nodes are pruned).
  void remove(ruleset::SegmentPrefix p, hw::CommandLog& log);

  /// Re-sort lists containing \p p's label after its best-priority
  /// changed (a rule using the same field value was added/removed).
  void refresh(ruleset::SegmentPrefix p, hw::CommandLog& log);

  /// Drop everything (config-switch flush).
  void clear(hw::CommandLog& log);

  // ---- hardware-side lookup path ----

  /// Walk the levels for \p key; returns the deepest label-list pointer
  /// (empty ref = no matching prefix). Charges level reads into \p rec.
  [[nodiscard]] ListRef lookup(u16 key, hw::CycleRecorder* rec) const;

  /// Phase-2 batch walk: one call resolves every lane of \p sorted
  /// (ascending by key — see sort_batch_keys). Consecutive keys sharing
  /// a stride-prefix reuse the already-fetched node words of the
  /// previous walk, so shared trie nodes are touched once per run
  /// instead of once per packet; duplicate keys reuse the whole walk.
  ///
  /// Cycle contract: refs[lane.slot] and recs[lane.slot] receive exactly
  /// what lookup(lane.key, &recs[lane.slot]) would have produced — a
  /// reused level still charges that level's read cycles and one memory
  /// access (the modeled hardware fetches it per packet; only the *host*
  /// walk is amortized). Requires refs/recs to cover every slot.
  void lookup_batch_into(std::span<const BatchKey> sorted,
                         std::span<ListRef> refs,
                         std::span<hw::CycleRecorder> recs) const;

  // ---- introspection ----

  [[nodiscard]] usize levels() const { return cfg_.strides.size(); }
  [[nodiscard]] const hw::Memory& level_memory(usize k) const {
    return *mem_[k];
  }
  /// Bits of node storage occupied by live nodes (the paper's "memory
  /// space required" measure; excludes label lists).
  [[nodiscard]] u64 live_node_bits() const;
  /// Physical bits across all level memories (what synthesis allocates).
  [[nodiscard]] u64 capacity_bits() const;
  [[nodiscard]] usize node_count(usize level) const;
  [[nodiscard]] usize prefix_count() const { return prefix_anchor_.size(); }

 private:
  struct SwEntry {
    i64 child = -1;           ///< node id at level+1, -1 = none
    std::vector<Label> list;  ///< cached list content
    ListRef ref;              ///< device pointer of the list
  };

  struct SwNode {
    std::vector<SwEntry> entries;
    std::map<ruleset::SegmentPrefix, Label> anchored;
    i64 parent = -1;        ///< node id at level-1 (root: -1)
    u32 parent_entry = 0;   ///< entry index in the parent holding us
    bool live = false;
  };

  struct Span {
    u32 lo = 0;
    u32 hi = 0;  // inclusive entry range inside the anchor node
  };

  [[nodiscard]] usize anchor_level(u8 prefix_len) const;
  [[nodiscard]] u32 entry_index(u16 key, usize level) const;
  [[nodiscard]] Span covered_span(ruleset::SegmentPrefix p,
                                  usize level) const;
  [[nodiscard]] unsigned level_word_bits(usize level) const;

  /// Walk (creating nodes as needed) to the anchor node of \p p.
  i64 walk_to_anchor(ruleset::SegmentPrefix p, bool create,
                     hw::CommandLog& log);
  i64 alloc_node(usize level, i64 parent, u32 parent_entry,
                 hw::CommandLog& log);
  void free_node(usize level, i64 id);
  void write_entry(usize level, i64 node, u32 entry, hw::CommandLog& log);
  /// Recompute the list of one entry (and its subtree) from the inherited
  /// base list; writes device words for every change. When \p force is
  /// false the recursion prunes at unchanged entries — valid for
  /// inserts/removes (a change always propagates through the entry's own
  /// list) but NOT for priority refreshes, where a descendant list can
  /// reorder while this entry's list is unchanged.
  void recompute_entry(usize level, i64 node, u32 entry,
                       const std::vector<Label>& inherited,
                       hw::CommandLog& log, bool force);
  /// Recompute all entries covered by \p p at its anchor node.
  void recompute_span(ruleset::SegmentPrefix p, hw::CommandLog& log,
                      bool force);
  /// Prune empty nodes starting from \p node upward.
  void prune_upwards(usize level, i64 node, hw::CommandLog& log);
  [[nodiscard]] std::vector<Label> inherited_of(usize level, i64 node) const;
  [[nodiscard]] std::vector<Label> compose_list(
      const SwNode& node, usize level, u32 entry,
      const std::vector<Label>& inherited) const;

  MbtConfig cfg_;
  std::vector<unsigned> cum_;  ///< cumulative stride sums
  LabelListStore& lists_;
  std::function<Priority(Label)> prio_of_;

  std::vector<std::unique_ptr<hw::Memory>> owned_mem_;
  std::vector<hw::Memory*> mem_;  ///< per-level (may alias a shared block)

  std::vector<std::vector<SwNode>> pool_;       ///< per-level node pools
  std::vector<std::vector<u32>> free_ids_;      ///< per-level free lists
  std::map<ruleset::SegmentPrefix, std::pair<usize, i64>> prefix_anchor_;
};

}  // namespace pclass::alg
