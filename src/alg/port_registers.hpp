/// \file port_registers.hpp
/// Register-based port-field lookup (§III.C, Table IV): each unique port
/// range lives in one register holding {low, high, label}; all registers
/// compare against the packet's port in parallel (2 cycles, no memory
/// accesses). Matching labels are produced in the paper's priority order:
/// the exact-matching label first, then range matches from tightest to
/// widest ("The priority of Port labels is given by exact matching label
/// following by the tightest range matching label") — Table IV's example
/// orders B (exact 7812), C ([7810,7820]), A (full range) for port 7812.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "alg/batch_keys.hpp"
#include "common/small_vec.hpp"
#include "common/types.hpp"
#include "hwsim/register_file.hpp"
#include "hwsim/update_bus.hpp"
#include "ruleset/rule.hpp"

namespace pclass::alg {

/// Geometry of a port register bank.
struct PortRegistersConfig {
  /// Register count; must cover the unique port values of the target
  /// filter sets (acl1 needs 108 + wildcard, so 128 is the natural size
  /// for 7-bit labels).
  u32 count = 128;
  unsigned compare_cycles = 2;  ///< §V.B: "labels in two clock cycles"
};

/// Port-dimension engine.
class PortRegisterFile {
 public:
  PortRegisterFile(const std::string& name, PortRegistersConfig cfg = {});

  PortRegisterFile(const PortRegisterFile&) = delete;
  PortRegisterFile& operator=(const PortRegisterFile&) = delete;

  // ---- controller-side update path ----

  /// Program one register with \p range -> \p label.
  /// \throws CapacityError when all registers are in use.
  void insert(ruleset::PortRange range, Label label, hw::CommandLog& log);

  /// Clear the register holding \p range.
  void remove(ruleset::PortRange range, hw::CommandLog& log);

  void clear(hw::CommandLog& log);

  // ---- hardware-side lookup path ----

  /// All labels whose range contains \p port, ordered exact-first then
  /// ascending range width (Table IV order). Charges the fixed parallel
  /// compare cost; register reads are not memory accesses.
  [[nodiscard]] std::vector<Label> lookup(u16 port,
                                          hw::CycleRecorder* rec) const;

  /// Allocation-free lookup(): appends the Table IV-ordered labels into
  /// caller-owned scratch (the classifier's per-packet hot path).
  void lookup_into(u16 port, hw::CycleRecorder* rec, LabelVec& out) const;

  /// First (highest-priority) matching label only — what the FirstLabel
  /// combiner consumes. Same cost as lookup(); no allocation.
  [[nodiscard]] Label lookup_first(u16 port, hw::CycleRecorder* rec) const;

  /// Phase-2 batch lookup over \p sorted lanes (ascending by key). The
  /// parallel compare + priority network is evaluated once per
  /// *distinct* port; its Table IV-ordered labels are appended to
  /// \p pool once and every lane of the run points at that range via
  /// spans[lane.slot]. Each lane's recorder is charged the fixed
  /// parallel-compare cost (identical to the scalar lookup — register
  /// reads are never memory accesses). Requires spans/recs to cover
  /// every slot.
  void lookup_batch_into(std::span<const BatchKey> sorted,
                         std::span<hw::CycleRecorder> recs,
                         std::vector<Label>& pool,
                         std::span<LabelSpan> spans) const;

  /// FirstLabel batch variant: one winner min-scan per distinct port
  /// (no list materialization or sort), pooled as a 1-label span —
  /// empty span when no register matches. Same per-lane modeled cost
  /// as lookup_first.
  void lookup_first_batch_into(std::span<const BatchKey> sorted,
                               std::span<hw::CycleRecorder> recs,
                               std::vector<Label>& pool,
                               std::span<LabelSpan> spans) const;

  // ---- introspection ----

  [[nodiscard]] const hw::RegisterFile& registers() const { return regs_; }
  [[nodiscard]] usize range_count() const { return slot_of_.size(); }

 private:
  /// Register word layout (LSB first): valid(1) lo(16) hi(16) label(7).
  static hw::Word encode(bool valid, ruleset::PortRange r, Label l);

  hw::RegisterFile regs_;
  std::map<ruleset::PortRange, u32> slot_of_;
  std::vector<u32> free_slots_;
  u32 next_slot_ = 0;
};

}  // namespace pclass::alg
