#include "alg/label_list_store.hpp"

namespace pclass::alg {

LabelListStore::LabelListStore(std::string name, u32 depth,
                               unsigned label_bits)
    : mem_(std::move(name), depth, label_bits + 1), label_bits_(label_bits) {
  if (label_bits == 0 || label_bits > 16) {
    throw ConfigError("LabelListStore: label_bits must be in [1, 16]");
  }
  if (depth < 2) {
    throw ConfigError("LabelListStore: depth must be >= 2");
  }
}

u32 LabelListStore::allocate(u32 len) {
  // First fit over the coalesced free map; fall back to the bump pointer.
  for (auto it = free_blocks_.begin(); it != free_blocks_.end(); ++it) {
    if (it->second >= len) {
      const u32 addr = it->first;
      const u32 block_len = it->second;
      free_blocks_.erase(it);
      if (block_len > len) {
        free_blocks_.emplace(addr + len, block_len - len);
      }
      return addr;
    }
  }
  if (u64{bump_} + len > mem_.depth()) {
    throw CapacityError("LabelListStore '" + mem_.name() +
                        "': out of label memory (depth " +
                        std::to_string(mem_.depth()) + ")");
  }
  const u32 addr = bump_;
  bump_ += len;
  return addr;
}

void LabelListStore::free_block(u32 addr, u32 len) {
  auto [it, inserted] = free_blocks_.emplace(addr, len);
  if (!inserted) {
    throw InternalError("LabelListStore: double free");
  }
  // Coalesce with successor.
  if (auto next = std::next(it);
      next != free_blocks_.end() && it->first + it->second == next->first) {
    it->second += next->second;
    free_blocks_.erase(next);
  }
  // Coalesce with predecessor.
  if (it != free_blocks_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      free_blocks_.erase(it);
      it = prev;
    }
  }
  // Shrink the bump pointer when the tail becomes free.
  if (it->first + it->second == bump_) {
    bump_ = it->first;
    free_blocks_.erase(it);
  }
}

ListRef LabelListStore::acquire(const std::vector<Label>& list,
                                hw::CommandLog& log) {
  if (list.empty()) {
    throw ConfigError("LabelListStore: cannot store an empty list "
                      "(use ListRef::kNull)");
  }
  if (auto it = by_content_.find(list); it != by_content_.end()) {
    ++by_addr_.at(it->second).refcount;
    return ListRef{it->second};
  }
  const auto len = static_cast<u32>(list.size());
  const u32 addr = allocate(len);
  for (u32 i = 0; i < len; ++i) {
    hw::WordPacker p;
    p.push(list[i].value, label_bits_);
    p.push(i + 1 == len ? 1 : 0, 1);  // end-of-list flag
    log.memory_write(mem_, addr + i, p.word());
  }
  by_content_.emplace(list, addr);
  by_addr_.emplace(addr, BlockInfo{list, 1});
  live_words_ += len;
  return ListRef{addr};
}

void LabelListStore::release(ListRef ref) {
  if (ref.empty()) {
    return;
  }
  auto it = by_addr_.find(ref.addr);
  if (it == by_addr_.end() || it->second.refcount == 0) {
    throw InternalError("LabelListStore: release of unknown list");
  }
  if (--it->second.refcount == 0) {
    const auto len = static_cast<u32>(it->second.content.size());
    by_content_.erase(it->second.content);
    by_addr_.erase(it);
    free_block(ref.addr, len);
    live_words_ -= len;
  }
}

Label LabelListStore::read_first(ListRef ref, hw::CycleRecorder* rec) const {
  if (ref.empty()) {
    return Label{};
  }
  const hw::Word w = mem_.read(ref.addr, rec);
  return Label{static_cast<u16>(w.get(0, label_bits_))};
}

std::vector<Label> LabelListStore::read_list(ListRef ref,
                                             hw::CycleRecorder* rec) const {
  LabelVec scratch;
  read_list_into(ref, rec, scratch);
  return std::vector<Label>(scratch.begin(), scratch.end());
}

void LabelListStore::read_list_into(ListRef ref, hw::CycleRecorder* rec,
                                    LabelVec& out) const {
  if (ref.empty()) {
    return;
  }
  u32 addr = ref.addr;
  while (true) {
    const hw::Word w = mem_.read(addr, rec);
    out.push_back(Label{static_cast<u16>(w.get(0, label_bits_))});
    if (w.get(label_bits_, 1) != 0) {
      break;
    }
    ++addr;
  }
}

}  // namespace pclass::alg
