/// \file range_vector_hash.hpp
/// RVH-style range-vector hash engine over one 16-bit IP segment — the
/// repo's first structurally different lookup backend family (PAPERS.md:
/// *RVH: Range-Vector Hash for Fast Online Packet Classification*).
///
/// The prefix set is bucketed by its range-vector signature — here, the
/// prefix length (each length is one "range vector" over the 16-bit
/// segment space). Every anchored prefix owns one entry in a single
/// open-addressed hash table keyed by (length, masked value); the entry
/// stores the priority-ordered label list of ALL prefixes covering that
/// anchor (itself + its ancestors), so a lookup probes the live lengths
/// longest-first and the FIRST hit already carries the complete covering
/// list — no ancestor walk at lookup time.
///
/// Where the MBT pays leaf-pushed trie writes and the BST a full
/// software rebuild per update, the RVH update path is bucket-local and
/// incremental: an insert/remove/priority-refresh touches its own entry
/// plus the entries of its live descendants (a bounded map range scan),
/// and deletions repair the probe cluster in place (backward-shift), so
/// online churn — the update-storm scenarios — is its home turf.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "alg/batch_keys.hpp"
#include "alg/label_list_store.hpp"
#include "common/types.hpp"
#include "hwsim/memory.hpp"
#include "ruleset/rule.hpp"

namespace pclass::alg {

/// Geometry of one RVH engine.
struct RvhConfig {
  /// Open-addressed table depth (entries = unique prefixes of the
  /// dimension; keep the load factor comfortably below 1).
  u32 table_depth = 4096;
  /// Cycles per entry read.
  unsigned read_cycles = 1;
};

/// Range-vector hash engine for one dimension. Owns its memory — unlike
/// MBT level 2 / BST nodes it never participates in the Fig. 5 shared
/// block (its table is live in both select positions it is not).
class RangeVectorHash {
 public:
  RangeVectorHash(const std::string& name, RvhConfig cfg,
                  LabelListStore& lists,
                  std::function<Priority(Label)> prio_of);

  RangeVectorHash(const RangeVectorHash&) = delete;
  RangeVectorHash& operator=(const RangeVectorHash&) = delete;

  // ---- controller-side update path (incremental) ----

  /// Add prefix \p p carrying \p label: place one entry, then refresh
  /// the covering lists of \p p's live descendants. No rebuild.
  void insert(ruleset::SegmentPrefix p, Label label, hw::CommandLog& log);

  /// Remove prefix \p p: repair the probe cluster in place and drop the
  /// label from the descendants' covering lists.
  void remove(ruleset::SegmentPrefix p, hw::CommandLog& log);

  /// Re-sort the covering lists ordered by \p p's label priority (own
  /// entry + descendants).
  void refresh(ruleset::SegmentPrefix p, hw::CommandLog& log);

  void clear(hw::CommandLog& log);

  // ---- hardware-side lookup path ----

  /// Longest-match lookup: probe live lengths longest-first; the first
  /// hit's list is the complete covering set (leaf-pushed on update).
  [[nodiscard]] ListRef lookup(u16 key, hw::CycleRecorder* rec) const;

  /// Phase-2 batch search over \p sorted lanes (ascending by key). One
  /// real probe sequence per *distinct* key; duplicate keys replay the
  /// representative's result and modeled cost, so recs[lane.slot] is
  /// charged exactly what the scalar lookup of that key charges.
  void lookup_batch_into(std::span<const BatchKey> sorted,
                         std::span<ListRef> refs,
                         std::span<hw::CycleRecorder> recs) const;

  // ---- introspection ----

  [[nodiscard]] const hw::Memory& memory() const { return *mem_; }
  [[nodiscard]] usize entry_count() const { return live_entries_; }
  [[nodiscard]] u64 live_node_bits() const {
    return u64{live_entries_} * mem_->word_bits();
  }
  [[nodiscard]] u64 capacity_bits() const { return mem_->capacity_bits(); }
  [[nodiscard]] usize prefix_count() const { return prefixes_.size(); }
  /// Distinct live prefix lengths = probe groups of the worst-case
  /// lookup (each group costs one hash + its cluster reads).
  [[nodiscard]] usize live_length_count() const { return live_lens_.size(); }

 private:
  struct SwEntry {
    bool valid = false;
    ruleset::SegmentPrefix prefix{};
    std::vector<Label> list;  ///< covering labels, priority-ordered
    ListRef ref{};
  };

  [[nodiscard]] u32 home_slot(ruleset::SegmentPrefix p) const;
  [[nodiscard]] u32 find_slot(ruleset::SegmentPrefix p) const;
  /// Priority-ordered covering list of \p p (itself + live ancestors).
  [[nodiscard]] std::vector<Label> compute_list(
      ruleset::SegmentPrefix p) const;
  void write_entry(u32 slot, hw::CommandLog& log);
  void place_entry(ruleset::SegmentPrefix p, std::vector<Label> list,
                   hw::CommandLog& log);
  void erase_entry(ruleset::SegmentPrefix p, hw::CommandLog& log);
  /// Recompute + re-upload the covering list of one live prefix if it
  /// changed (the descendant-repair step of every mutation).
  void refresh_entry(ruleset::SegmentPrefix p, hw::CommandLog& log);
  /// Apply \p fn to every live strict descendant of \p p (longer
  /// prefixes covered by it) via a bounded map range scan.
  template <typename Fn>
  void for_each_descendant(ruleset::SegmentPrefix p, Fn&& fn);
  void note_length_added(u8 len);
  void note_length_removed(u8 len);

  RvhConfig cfg_;
  LabelListStore& lists_;
  std::function<Priority(Label)> prio_of_;

  std::unique_ptr<hw::Memory> mem_;

  std::map<ruleset::SegmentPrefix, Label> prefixes_;
  std::vector<SwEntry> slots_;           ///< table shadow (index = slot)
  std::array<u32, 17> len_count_{};      ///< live prefixes per length
  std::vector<u8> live_lens_;            ///< live lengths, descending
  u32 live_entries_ = 0;
};

}  // namespace pclass::alg
