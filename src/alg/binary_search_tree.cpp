#include "alg/binary_search_tree.hpp"

#include <algorithm>
#include <set>

namespace pclass::alg {

namespace {

constexpr unsigned kStartBits = 16;
constexpr unsigned kAddrBits = 16;
constexpr unsigned kMinWordBits = 1 + kStartBits + kAddrBits;

// Node word layout (LSB first): valid(1) start(16) list_addr(16).
hw::Word encode_node(bool valid, u16 start, u32 list_addr) {
  hw::WordPacker p;
  p.push(valid ? 1 : 0, 1);
  p.push(start, kStartBits);
  p.push(list_addr, kAddrBits);
  return p.word();
}

}  // namespace

BinarySearchTree::BinarySearchTree(const std::string& name, BstConfig cfg,
                                   LabelListStore& lists,
                                   std::function<Priority(Label)> prio_of,
                                   hw::Memory* shared_memory)
    : cfg_(cfg), lists_(lists), prio_of_(std::move(prio_of)) {
  if (cfg_.max_nodes == 0) {
    throw ConfigError("BinarySearchTree: max_nodes must be > 0");
  }
  if (lists_.memory().depth() > (u32{1} << kAddrBits)) {
    throw ConfigError("BinarySearchTree: list store too deep for address "
                      "field");
  }
  if (!prio_of_) {
    throw ConfigError("BinarySearchTree: priority callback required");
  }
  const unsigned word_bits =
      std::max(kMinWordBits, cfg_.word_bits_override == 0
                                 ? kMinWordBits
                                 : cfg_.word_bits_override);
  if (shared_memory != nullptr) {
    if (shared_memory->depth() < cfg_.max_nodes ||
        shared_memory->word_bits() < word_bits) {
      throw ConfigError("BinarySearchTree: shared memory too small");
    }
    mem_ = shared_memory;
  } else {
    owned_mem_ = std::make_unique<hw::Memory>(name + ".bst", cfg_.max_nodes,
                                              word_bits, cfg_.read_cycles);
    mem_ = owned_mem_.get();
  }
  nodes_.resize(cfg_.max_nodes);
}

void BinarySearchTree::write_node(u32 idx, hw::CommandLog& log) {
  const SwNode& n = nodes_[idx];
  log.memory_write(*mem_, idx, encode_node(n.valid, n.start, n.ref.addr));
}

void BinarySearchTree::rebuild(hw::CommandLog& log) {
  // 1. Elementary intervals of the prefix set, with covering-label lists
  //    maintained by a sweep (add at lo, drop at hi+1) so the cost is
  //    O((P + I) log P) rather than O(P * I).
  struct Event {
    u32 point;
    bool add;
    Priority prio;
    Label label;
  };
  std::vector<Event> events;
  events.reserve(prefixes_.size() * 2 + 1);
  std::vector<u32> points = {0};
  for (const auto& [p, label] : prefixes_) {
    const u32 lo = p.value;
    const u32 hi =
        p.value | static_cast<u32>(mask_low(16u - p.length) & 0xFFFFu);
    const Priority prio = prio_of_(label);
    events.push_back({lo, true, prio, label});
    points.push_back(lo);
    if (hi + 1 <= 0xFFFFu) {
      events.push_back({hi + 1, false, prio, label});
      points.push_back(hi + 1);
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.point < b.point; });

  struct Interval {
    u16 start;
    std::vector<Label> list;
  };
  std::vector<Interval> intervals;
  if (!prefixes_.empty()) {
    intervals.reserve(points.size());
    std::set<std::pair<Priority, u16>> active;  // (priority, label value)
    usize ev = 0;
    for (u32 pt : points) {
      for (; ev < events.size() && events[ev].point == pt; ++ev) {
        const auto key = std::make_pair(events[ev].prio,
                                        events[ev].label.value);
        if (events[ev].add) {
          active.insert(key);
        } else {
          active.erase(key);
        }
      }
      std::vector<Label> list;
      list.reserve(active.size());
      for (const auto& [prio, value] : active) {
        list.push_back(Label{value});
      }
      intervals.push_back({static_cast<u16>(pt), std::move(list)});
    }
  }

  // 2. Sorted-array placement: the balanced tree is implicit (midpoint
  //    binary search over interval starts), so n intervals occupy exactly
  //    n words — the memory-efficiency that motivates the BST option.
  if (intervals.size() > nodes_.size()) {
    throw CapacityError("BinarySearchTree '" + mem_->name() + "': " +
                        std::to_string(intervals.size()) +
                        " intervals exceed capacity " +
                        std::to_string(nodes_.size()));
  }
  std::vector<SwNode> fresh(nodes_.size());
  for (usize i = 0; i < intervals.size(); ++i) {
    fresh[i].valid = true;
    fresh[i].start = intervals[i].start;
    fresh[i].list = std::move(intervals[i].list);
  }

  // 3. Diff against the current shadow; upload only changed words.
  live_nodes_ = 0;
  for (u32 i = 0; i < nodes_.size(); ++i) {
    SwNode& old = nodes_[i];
    SwNode& nw = fresh[i];
    if (nw.valid) ++live_nodes_;
    const bool same = old.valid == nw.valid && old.start == nw.start &&
                      old.list == nw.list;
    if (same) {
      continue;
    }
    const ListRef new_ref = (nw.valid && !nw.list.empty())
                                ? lists_.acquire(nw.list, log)
                                : ListRef{};
    lists_.release(old.ref);
    old.valid = nw.valid;
    old.start = nw.start;
    old.list = std::move(nw.list);
    old.ref = new_ref;
    write_node(i, log);
  }
}

void BinarySearchTree::insert(ruleset::SegmentPrefix p, Label label,
                              hw::CommandLog& log) {
  if (!prefixes_.emplace(p, label).second) {
    throw InternalError("BinarySearchTree: duplicate prefix insert");
  }
  rebuild(log);
}

void BinarySearchTree::insert_bulk(
    const std::vector<std::pair<ruleset::SegmentPrefix, Label>>& batch,
    hw::CommandLog& log) {
  for (const auto& [p, label] : batch) {
    if (!prefixes_.emplace(p, label).second) {
      throw InternalError("BinarySearchTree: duplicate prefix in bulk "
                          "insert");
    }
  }
  rebuild(log);
}

void BinarySearchTree::remove(ruleset::SegmentPrefix p,
                              hw::CommandLog& log) {
  if (prefixes_.erase(p) == 0) {
    throw InternalError("BinarySearchTree: remove of unknown prefix");
  }
  rebuild(log);
}

void BinarySearchTree::refresh(ruleset::SegmentPrefix /*p*/,
                               hw::CommandLog& log) {
  rebuild(log);
}

void BinarySearchTree::clear(hw::CommandLog& log) {
  prefixes_.clear();
  rebuild(log);
}

ListRef BinarySearchTree::lookup(u16 key, hw::CycleRecorder* rec) const {
  // Predecessor binary search over the sorted interval starts. Every
  // probed midpoint is one memory read — ceil(log2 n) accesses, the
  // paper's "16 per packet" worst case for a full segment.
  if (live_nodes_ == 0) {
    return ListRef{};
  }
  i64 lo = 0;
  i64 hi = i64{live_nodes_} - 1;
  u32 best = ListRef::kNull;
  while (lo <= hi) {
    const i64 mid = lo + (hi - lo) / 2;
    const hw::Word w = mem_->read(static_cast<u32>(mid), rec);
    hw::WordUnpacker u(w);
    const u64 valid = u.pull(1);
    const u64 start = u.pull(kStartBits);
    const u64 list_addr = u.pull(kAddrBits);
    if (valid == 0) {
      throw InternalError("BinarySearchTree: invalid node inside live "
                          "range");
    }
    if (key < start) {
      hi = mid - 1;
    } else {
      best = static_cast<u32>(list_addr);  // predecessor so far
      lo = mid + 1;
    }
  }
  return ListRef{best};
}

void BinarySearchTree::lookup_batch_into(
    std::span<const BatchKey> sorted, std::span<ListRef> refs,
    std::span<hw::CycleRecorder> recs) const {
  // One real predecessor search per distinct key; duplicates within the
  // sorted run replay the representative's result and modeled cost.
  bool have_prev = false;
  u32 prev_key = 0;
  ListRef prev_ref{};
  u64 prev_cycles = 0;
  u64 prev_accesses = 0;
  for (const BatchKey& lane : sorted) {
    if (!have_prev || lane.key != prev_key) {
      hw::CycleRecorder probe;
      prev_ref = lookup(static_cast<u16>(lane.key), &probe);
      prev_cycles = probe.cycles();
      prev_accesses = probe.memory_accesses();
      prev_key = lane.key;
      have_prev = true;
    }
    refs[lane.slot] = prev_ref;
    recs[lane.slot].charge(prev_cycles, prev_accesses);
  }
}

unsigned BinarySearchTree::depth() const {
  return ceil_log2(u64{live_nodes_} + 1);
}

}  // namespace pclass::alg
