#include "alg/port_registers.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pclass::alg {

namespace {
constexpr unsigned kRegBits = 1 + 16 + 16 + kPortLabelBits;  // 40
}

PortRegisterFile::PortRegisterFile(const std::string& name,
                                   PortRegistersConfig cfg)
    : regs_(name, cfg.count, kRegBits, cfg.compare_cycles) {}

hw::Word PortRegisterFile::encode(bool valid, ruleset::PortRange r,
                                  Label l) {
  hw::WordPacker p;
  p.push(valid ? 1 : 0, 1);
  p.push(r.lo, 16);
  p.push(r.hi, 16);
  p.push(valid ? l.value : 0, kPortLabelBits);
  return p.word();
}

void PortRegisterFile::insert(ruleset::PortRange range, Label label,
                              hw::CommandLog& log) {
  if (slot_of_.contains(range)) {
    throw InternalError("PortRegisterFile: duplicate range insert");
  }
  u32 slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    if (next_slot_ >= regs_.count()) {
      throw CapacityError("PortRegisterFile '" + regs_.name() +
                          "': all " + std::to_string(regs_.count()) +
                          " registers in use");
    }
    slot = next_slot_++;
  }
  slot_of_.emplace(range, slot);
  log.register_write(regs_, slot, encode(true, range, label));
}

void PortRegisterFile::remove(ruleset::PortRange range,
                              hw::CommandLog& log) {
  const auto it = slot_of_.find(range);
  if (it == slot_of_.end()) {
    throw InternalError("PortRegisterFile: remove of unknown range");
  }
  const u32 slot = it->second;
  slot_of_.erase(it);
  free_slots_.push_back(slot);
  log.register_write(regs_, slot, encode(false, {}, {}));
}

void PortRegisterFile::clear(hw::CommandLog& log) {
  for (const auto& [range, slot] : slot_of_) {
    log.register_write(regs_, slot, encode(false, {}, {}));
  }
  slot_of_.clear();
  free_slots_.clear();
  next_slot_ = 0;
}

namespace {

/// One decoded matching register, ordered per Table IV: exact match
/// first, then tightest range, label value as a deterministic tiebreak.
struct PortMatch {
  u32 width;
  bool exact;
  Label label;

  [[nodiscard]] bool before(const PortMatch& o) const {
    if (exact != o.exact) return exact;
    if (width != o.width) return width < o.width;
    return label.value < o.label.value;
  }
};

}  // namespace

std::vector<Label> PortRegisterFile::lookup(u16 port,
                                            hw::CycleRecorder* rec) const {
  LabelVec scratch;
  lookup_into(port, rec, scratch);
  return std::vector<Label>(scratch.begin(), scratch.end());
}

void PortRegisterFile::lookup_into(u16 port, hw::CycleRecorder* rec,
                                   LabelVec& out) const {
  if (rec != nullptr) {
    regs_.charge_lookup(*rec);
  }
  // Model of the parallel compare + priority network: decode every valid
  // register word (hardware does this combinationally).
  SmallVec<PortMatch, 16> matches;
  for (u32 i = 0; i < regs_.used_count(); ++i) {
    hw::WordUnpacker u(regs_.reg(i));
    if (u.pull(1) == 0) {
      continue;
    }
    const u16 lo = static_cast<u16>(u.pull(16));
    const u16 hi = static_cast<u16>(u.pull(16));
    const Label label{static_cast<u16>(u.pull(kPortLabelBits))};
    if (lo <= port && port <= hi) {
      matches.push_back({u32{hi} - lo + 1, lo == hi, label});
    }
  }
  std::sort(matches.begin(), matches.end(),
            [](const PortMatch& a, const PortMatch& b) {
              return a.before(b);
            });
  for (const PortMatch& m : matches) {
    out.push_back(m.label);
  }
}

void PortRegisterFile::lookup_batch_into(std::span<const BatchKey> sorted,
                                         std::span<hw::CycleRecorder> recs,
                                         std::vector<Label>& pool,
                                         std::span<LabelSpan> spans) const {
  bool have_prev = false;
  u32 prev_key = 0;
  LabelSpan prev_span{};
  LabelVec scratch;
  for (const BatchKey& lane : sorted) {
    if (!have_prev || lane.key != prev_key) {
      scratch.clear();
      // Decode/sort the priority network once per distinct port; the
      // per-lane modeled cost is charged below.
      lookup_into(static_cast<u16>(lane.key), nullptr, scratch);
      prev_span.off = static_cast<u32>(pool.size());
      prev_span.len = static_cast<u32>(scratch.size());
      pool.insert(pool.end(), scratch.begin(), scratch.end());
      prev_key = lane.key;
      have_prev = true;
    }
    regs_.charge_lookup(recs[lane.slot]);
    spans[lane.slot] = prev_span;
  }
}

void PortRegisterFile::lookup_first_batch_into(
    std::span<const BatchKey> sorted, std::span<hw::CycleRecorder> recs,
    std::vector<Label>& pool, std::span<LabelSpan> spans) const {
  bool have_prev = false;
  u32 prev_key = 0;
  LabelSpan prev_span{};
  for (const BatchKey& lane : sorted) {
    if (!have_prev || lane.key != prev_key) {
      const Label first = lookup_first(static_cast<u16>(lane.key), nullptr);
      prev_span.off = static_cast<u32>(pool.size());
      prev_span.len = first.valid() ? 1 : 0;
      if (first.valid()) pool.push_back(first);
      prev_key = lane.key;
      have_prev = true;
    }
    regs_.charge_lookup(recs[lane.slot]);
    spans[lane.slot] = prev_span;
  }
}

Label PortRegisterFile::lookup_first(u16 port,
                                     hw::CycleRecorder* rec) const {
  if (rec != nullptr) {
    regs_.charge_lookup(*rec);
  }
  // Same priority network as lookup_into, tracking only the winner.
  bool found = false;
  PortMatch best{};
  for (u32 i = 0; i < regs_.used_count(); ++i) {
    hw::WordUnpacker u(regs_.reg(i));
    if (u.pull(1) == 0) {
      continue;
    }
    const u16 lo = static_cast<u16>(u.pull(16));
    const u16 hi = static_cast<u16>(u.pull(16));
    const Label label{static_cast<u16>(u.pull(kPortLabelBits))};
    if (lo <= port && port <= hi) {
      const PortMatch m{u32{hi} - lo + 1, lo == hi, label};
      if (!found || m.before(best)) {
        best = m;
        found = true;
      }
    }
  }
  return found ? best.label : Label{};
}

}  // namespace pclass::alg
