/// \file cycle_model.hpp
/// Throughput model tying the measured cycles-per-packet to line rate
/// (Tables VI/VII and the §VI conclusion): at fmax = 133.51 MHz a fully
/// pipelined MBT lookup sustains 133.51 M lookups/s, i.e. 42.7 Gbps of
/// 40-byte packets or >100 Gbps of 100-byte packets.
///
/// Cycle-charging contract these conversions rest on (and which every
/// lookup entry point — scalar or phase-2 batch — must preserve):
/// `cycles_per_packet` is the end-to-end latency of one lookup as
/// accumulated by hw::CycleRecorder charges — 1 cycle of header split,
/// plus the *maximum* over the 7 parallel dimension engines (each
/// memory read charges its block's read_cycles and one access), plus
/// the serial tail (1 cycle label merge, then per Rule Filter probe:
/// one hash cycle and one read per slot walked — or, on a
/// combination-memo hit, one cycle plus the replaced probe's reads;
/// see core::ProbeMemo, whose entries persist across batches of an
/// unchanged device and are dropped the instant the device changes).
/// The batch engine may lower cycles via memo hits but never changes
/// memory-access counts, so rates derived here stay comparable across
/// batch modes, memo lifetimes and controller path choices.
#pragma once

#include "common/types.hpp"

namespace pclass::core {

/// Converts cycle costs into rates at the model clock.
struct ThroughputModel {
  double fmax_mhz = 133.51;

  /// Lookups per second (millions) at \p cycles_per_packet.
  [[nodiscard]] double mega_lookups_per_sec(double cycles_per_packet) const {
    return cycles_per_packet <= 0.0 ? 0.0 : fmax_mhz / cycles_per_packet;
  }

  /// Line rate in Gbps for back-to-back packets of \p packet_bytes.
  [[nodiscard]] double gbps(double cycles_per_packet,
                            u32 packet_bytes) const {
    return mega_lookups_per_sec(cycles_per_packet) * 1e6 *
           static_cast<double>(packet_bytes) * 8.0 / 1e9;
  }

  /// Rules per second for an update costing \p cycles_per_rule.
  [[nodiscard]] double updates_per_sec(double cycles_per_rule) const {
    return cycles_per_rule <= 0.0 ? 0.0 : fmax_mhz * 1e6 / cycles_per_rule;
  }
};

}  // namespace pclass::core
