/// \file classifier.hpp
/// The paper's contribution: a configurable, label-based, parallel
/// single-field lookup architecture for SDN packet classification
/// (Fig. 2), with controller-driven incremental update (Fig. 4) and the
/// four-phase pipelined lookup of Fig. 3:
///
///   phase 1  split the header into 7 dimension keys
///   phase 2  per-dimension parallel lookup -> label-list pointers
///   phase 3  combine labels into the 68-bit key, hash
///   phase 4  Rule Filter access -> HPMR + action
///
/// One object models both sides of the SDN split: the *controller-side*
/// update path (label tables, structure builders — all pure software,
/// §IV.A) and the *device-side* lookup path, which touches only hw::
/// memories/registers so every cycle and access count in the evaluation
/// is measured, not estimated.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "alg/binary_search_tree.hpp"
#include "alg/label_table.hpp"
#include "alg/multibit_trie.hpp"
#include "alg/port_registers.hpp"
#include "alg/protocol_lut.hpp"
#include "core/config.hpp"
#include "core/path_controller.hpp"
#include "core/rule_filter.hpp"
#include "hwsim/pipeline.hpp"
#include "hwsim/shared_memory.hpp"
#include "hwsim/synthesis.hpp"
#include "hwsim/update_bus.hpp"
#include "net/packet.hpp"
#include "ruleset/rule_set.hpp"

namespace pclass::core {

/// Outcome and measured cost of classifying one header.
///
/// Cycle-charging contract (what every lookup entry point guarantees,
/// and what the phase-2 batch path must preserve):
///   cycles = 1 (header split) + max over the 7 dimension recorders
///            (phase 2 runs in parallel; the phase costs the slowest
///            engine) + the tail recorder (label merge + every Rule
///            Filter probe, serial);
///   memory_accesses = the *sum* of all recorders' block-memory reads.
/// The batch engine replays, per packet, exactly the charges the scalar
/// path would make; the probe memo may lower `cycles` (a hit costs one
/// cycle instead of hash + probe walk) but never changes
/// `memory_accesses` or `crossproduct_probes` (a memoized probe still
/// charges the reads it replaces — see core::ProbeMemo).
struct ClassifyResult {
  /// The matched rule (HPMR under CrossProduct; under FirstLabel, the
  /// rule owning the first-label combination, when present).
  std::optional<RuleEntry> match;
  u64 cycles = 0;            ///< end-to-end latency of this lookup
  u64 memory_accesses = 0;   ///< total block-memory reads
  u64 crossproduct_probes = 0;  ///< hash probes issued in phase 3
  /// Probes served by the snapshot-keyed combination memo (0 on the
  /// scalar path; each hit is also counted in crossproduct_probes).
  u64 memo_hits = 0;
};

/// Per-block memory occupancy snapshot.
struct MemoryBlockReport {
  std::string name;
  u64 capacity_bits = 0;
  u64 used_bits = 0;
};

/// Device memory map (Table V/VI source data).
struct MemoryReport {
  std::vector<MemoryBlockReport> blocks;
  u64 total_capacity_bits = 0;
  u64 total_used_bits = 0;
  u64 register_bits = 0;
};

/// Reusable scratch of the phase-2 batch engine: per-dimension key
/// lanes, per-packet recorders, batch-shared label pools and the
/// combination-probe memo. Callers that classify batches continuously
/// (one dataplane worker = one scratch) reuse it so the steady-state
/// batch path performs no heap allocation; the convenience
/// classify_batch(in, out) overload creates a throwaway one.
struct BatchScratch {
  std::array<std::vector<alg::BatchKey>, kNumDimensions> keys;
  std::array<std::vector<hw::CycleRecorder>, kNumDimensions> recs;
  std::array<std::vector<Label>, kNumDimensions> pools;
  std::array<std::vector<alg::LabelSpan>, kNumDimensions> spans;
  std::array<std::vector<alg::ListRef>, 4> ip_refs;

  /// One label-list read per distinct ListRef per batch: the cached
  /// pool range, the first label (FirstLabel mode) and the modeled cost
  /// to replay for every packet sharing the ref.
  struct ListReadMemo {
    u32 ref_addr = 0;
    alg::LabelSpan span{};
    Label first{};
    u64 cycles = 0;
    u64 accesses = 0;
  };
  std::array<std::vector<ListReadMemo>, 4> list_memo;

  /// One cross-product combine per distinct label-list *set* per batch:
  /// packets whose 7 label lists have identical contents (duplicate
  /// flows; distinct keys whose matching ranges coincide — e.g. two
  /// dports falling only into the same wildcard range; fw-like sets
  /// where wildcard labels dominate every list) share one odometer run
  /// and replay its verdict and modeled tail cost. The signature is a
  /// per-dimension *content hash* of the pooled list (span identity
  /// under-groups: two distinct port keys with identical lists get
  /// distinct pool ranges); the leader's spans are kept so a signature
  /// match is confirmed by exact content comparison before sharing —
  /// a hash collision can never corrupt a verdict. With the probe memo
  /// on, a repeat packet's probes are modeled as memo hits (one cycle +
  /// the replaced probe's reads each); with it off the leader's full
  /// tail is replayed, keeping cycles scalar-exact.
  struct CombineMemo {
    std::array<u64, kNumDimensions> sig{};
    std::array<alg::LabelSpan, kNumDimensions> spans{};
    std::optional<RuleEntry> match;
    u64 probes = 0;
    u64 memo_hits = 0;
    u64 tail_cycles = 0;
    u64 tail_accesses = 0;
  };
  std::vector<CombineMemo> combine_memo;

  /// Per-batch cache of span content hashes: one hash computation per
  /// distinct (off, len) span per dimension per batch (identical spans
  /// trivially share; the pools are rebuilt every batch, so this is
  /// cleared with them).
  struct SpanHash {
    u64 packed = 0;  ///< (off << 32) | len
    u64 hash = 0;
  };
  std::array<std::vector<SpanHash>, kNumDimensions> span_hashes;

  /// The snapshot-keyed combination-probe memo (see ProbeMemo's
  /// lifetime contract): persists across batches, invalidated when the
  /// device binding changes — never reset at a batch boundary unless
  /// ClassifierConfig::batch_memo_persistent is off.
  ProbeMemo memo{ProbeMemo::kDefaultSlots};
  /// Times the memo dropped its entries (initial bind, snapshot swap,
  /// in-place update, or every batch in per-batch mode); surfaced per
  /// dataplane worker as probe_memo_invalidations.
  u64 memo_invalidations = 0;

  /// The online path controller (PathPolicy::kAdaptive): a per-path
  /// linear cost model ns = a*packets + b*distinct_keys fitted from
  /// measured host time, argmin-picked per batch at the batch's own
  /// (packets, distinct) point. Replaces the hand-tuned 2%/5%
  /// window-threshold bypass gates of earlier revisions. Also the
  /// authoritative per-path batch counters (forced policies count here
  /// too).
  PathController controller;
  /// Open-addressed presence table for the controller's streaming
  /// distinct-header count (slot = mix64 of the header fingerprint; 0 is
  /// the empty sentinel, a fingerprint of 0 is tracked out-of-band).
  /// Reused across batches so the count allocates nothing in steady
  /// state and replaces the former per-batch fingerprint sort.
  std::vector<u64> distinct_fp;

  /// Telemetry taps, written by every classify_batch() call: the
  /// execution path that served the last batch and the distinct-header
  /// count the controller consumed for it (0 when the count was
  /// skipped — forced policies and the scalar mode never pay the
  /// fingerprint sort, and telemetry must not reintroduce it).
  BatchPath last_batch_path = BatchPath::kScalarLoop;
  usize last_batch_distinct = 0;
};

/// The configurable classification device plus its controller shadow.
class ConfigurableClassifier {
 public:
  explicit ConfigurableClassifier(ClassifierConfig cfg = {});
  ~ConfigurableClassifier();

  ConfigurableClassifier(const ConfigurableClassifier&) = delete;
  ConfigurableClassifier& operator=(const ConfigurableClassifier&) = delete;

  // ---- controller API (update path) ----

  /// Install one rule (Fig. 4 flow). Returns the measured update cost.
  /// \throws ConfigError on duplicate id or duplicate match part;
  ///         CapacityError when any hardware structure is full.
  hw::UpdateStats add_rule(const ruleset::Rule& r);

  /// Bulk-install a rule set (single BST rebuild per dimension when the
  /// BST configuration is active).
  hw::UpdateStats add_rules(const ruleset::RuleSet& rules);

  /// Remove an installed rule.
  hw::UpdateStats remove_rule(RuleId id);

  /// OpenFlow MODIFY: replace the action (and optionally priority) of an
  /// installed rule without touching the lookup structures — a single
  /// in-place Rule Filter rewrite (3 bus cycles, like an insert).
  /// Changing the priority additionally refreshes the IP label lists it
  /// orders.
  hw::UpdateStats modify_rule(RuleId id, ruleset::Action action);

  /// Drive the IPalg_s select line (§III.A): clears the deactivating
  /// engines, re-binds the shared blocks (Fig. 5 flush) and rebuilds the
  /// newly selected engines from the label tables. Returns the cost.
  hw::UpdateStats set_ip_algorithm(IpAlgorithm alg);

  /// Phase-3 policy (software decision; free).
  void set_combine_mode(CombineMode mode) { cfg_.combine_mode = mode; }

  /// classify_batch() strategy (software decision; free). The A/B knob
  /// the tools expose as --batch-mode.
  void set_batch_mode(BatchMode mode) { cfg_.batch_mode = mode; }

  /// Toggle combination-probe memo eligibility (phase-2 only; free).
  void set_batch_probe_memo(bool on) { cfg_.batch_probe_memo = on; }

  /// Toggle the memo's persistent (snapshot-keyed) lifetime; off = the
  /// per-batch generation reset, kept as the A/B reference (free).
  void set_batch_memo_persistent(bool on) {
    cfg_.batch_memo_persistent = on;
  }

  /// Memo associativity (2 = set-associative default, 1 = the
  /// direct-mapped A/B reference; software decision, free — the scratch
  /// memo is rebuilt at the next batch).
  /// \throws ConfigError for unsupported geometries, here rather than
  /// from the first memo-eligible batch on the hot path.
  void set_batch_memo_ways(u32 ways);

  /// Per-batch execution-path policy (adaptive controller vs forced
  /// path; software decision, free).
  void set_batch_path_policy(PathPolicy policy) {
    cfg_.batch_path_policy = policy;
  }

  // ---- data-plane API (lookup path) ----

  /// Classify a parsed 5-tuple. Charges per the ClassifyResult
  /// contract: the 7 phase-2 engines record in parallel (max), the
  /// merge + Rule Filter tail records serially (sum).
  [[nodiscard]] ClassifyResult classify(const net::FiveTuple& h) const;

  /// Parse + classify raw packet bytes; nullopt result for non-IPv4.
  [[nodiscard]] ClassifyResult classify_packet(
      std::span<const u8> bytes) const;

  /// Batched lookup: classify `in[i]` into `out[i]` for the whole span.
  /// This is the entry point the dataplane engine drives per worker
  /// batch; `out.size()` must be >= `in.size()`.
  ///
  /// Under BatchMode::kPhase2 (the default) this is a true batch
  /// engine: per-dimension keys are gathered and sorted across the
  /// whole span, each engine resolves one sorted run per batch (shared
  /// trie levels and duplicate keys are walked once on the host), and
  /// the combiner memoizes repeated label combinations. Results and
  /// per-packet memory_accesses are *identical* to the scalar path
  /// (asserted by tests/test_batch_phase2.cpp); per-packet cycles are
  /// identical with the probe memo off and <= with it on.
  ///
  /// Thread-safe against other concurrent const lookups (the update
  /// path is not — the dataplane publishes immutable snapshots instead).
  void classify_batch(std::span<const net::FiveTuple> in,
                      std::span<ClassifyResult> out) const;

  /// Same, reusing caller-owned scratch so continuous batch callers
  /// (one dataplane worker = one scratch) allocate nothing per batch.
  void classify_batch(std::span<const net::FiveTuple> in,
                      std::span<ClassifyResult> out,
                      BatchScratch& scratch) const;

  // ---- introspection ----

  [[nodiscard]] const ClassifierConfig& config() const { return cfg_; }

  /// Update epoch of this device: bumped by every update-path mutation
  /// (rule add/remove/modify, algorithm switch, reseed). Together with
  /// the process-unique device id this is what a persistent ProbeMemo
  /// binds cached verdicts to — see ProbeMemo::bind().
  [[nodiscard]] u64 device_epoch() const { return device_epoch_; }

  [[nodiscard]] IpAlgorithm ip_algorithm() const { return cfg_.ip_algorithm; }
  [[nodiscard]] CombineMode combine_mode() const { return cfg_.combine_mode; }
  [[nodiscard]] usize rule_count() const { return installed_.size(); }
  [[nodiscard]] std::optional<ruleset::Rule> installed_rule(RuleId id) const;

  /// Snapshot extraction: every installed rule (id order), so a
  /// dataplane publisher can seed a fresh replica from a live device.
  [[nodiscard]] std::vector<ruleset::Rule> installed_rules() const;

  /// Cumulative update-bus statistics since construction.
  [[nodiscard]] const hw::UpdateStats& update_stats() const {
    return bus_.stats();
  }

  /// Fig. 3 pipeline model for the current configuration.
  [[nodiscard]] hw::Pipeline lookup_pipeline() const;

  /// Memory map with capacity and live occupancy per block.
  [[nodiscard]] MemoryReport memory_report() const;

  /// Table V-shaped resource estimate for the current device.
  [[nodiscard]] hw::SynthesisReport synthesis_report() const;

  /// Unique labels currently live in dimension \p d.
  [[nodiscard]] usize label_count(Dimension d) const;

  /// The label-list store of IP dimension \p ip_dim_index (0..3), for
  /// dedup statistics (Ablation B).
  [[nodiscard]] const alg::LabelListStore& label_store(
      usize ip_dim_index) const {
    return *lists_.at(ip_dim_index);
  }

 private:
  struct InstalledRule {
    ruleset::Rule rule;
    Key68 key;
  };

  // The four IP dimensions in engine-array order.
  static constexpr std::array<Dimension, 4> kIpDims = {
      Dimension::kSrcIpHi, Dimension::kSrcIpLo, Dimension::kDstIpHi,
      Dimension::kDstIpLo};

  [[nodiscard]] static ruleset::SegmentPrefix ip_segment(
      const ruleset::Rule& r, usize ip_dim_index);

  /// Acquire all 7 labels for a rule, inserting/refreshing engine state
  /// as needed. When \p bst_bulk is non-null (bulk load under BST), new
  /// IP prefixes are staged there instead of rebuilding per rule.
  std::array<Label, kNumDimensions> acquire_labels(
      const ruleset::Rule& r, hw::CommandLog& log,
      std::array<std::vector<std::pair<ruleset::SegmentPrefix, Label>>, 4>*
          bst_bulk);

  void release_labels(const ruleset::Rule& r, hw::CommandLog& log);

  /// Charge a command batch on the update bus; returns the batch stats.
  hw::UpdateStats apply(hw::CommandLog& log);

  /// Phase-2 lookup of one IP dimension through the active engine.
  [[nodiscard]] alg::ListRef ip_lookup(usize ip_dim_index, u16 key,
                                       hw::CycleRecorder* rec) const;

  /// The BatchMode::kPhase2 engine behind classify_batch(). \p use_memo
  /// engages the combination-probe memo (the path controller or a
  /// forced policy already folded eligibility in).
  void classify_batch_phase2(std::span<const net::FiveTuple> in,
                             std::span<ClassifyResult> out,
                             BatchScratch& scratch, bool use_memo) const;

  void rebuild_active_ip_engines(hw::CommandLog& log);

  /// Insert into the rule filter, automatically re-seeding the hash and
  /// re-uploading the table when a probe-bound CapacityError hits (the
  /// controller-side recovery §IV.A implies).
  void filter_insert_with_reseed(const Key68& key, const RuleEntry& entry,
                                 hw::CommandLog& log);

  ClassifierConfig cfg_;
  u32 reseed_attempts_ = 0;
  /// Process-unique device id (from a global counter, so a destroyed
  /// classifier's id is never reused the way its address could be) and
  /// the update epoch — the persistent ProbeMemo's binding key.
  u64 device_id_;
  u64 device_epoch_ = 0;

  // Controller-side label bookkeeping.
  std::array<alg::LabelTable<ruleset::SegmentPrefix>, 4> ip_tables_;
  alg::LabelTable<ruleset::PortRange> sport_table_;
  alg::LabelTable<ruleset::PortRange> dport_table_;
  alg::LabelTable<ruleset::ProtoMatch> proto_table_;
  std::array<std::vector<Priority>, kNumDimensions> label_prio_;

  // Device-side blocks.
  std::array<std::unique_ptr<alg::LabelListStore>, 4> lists_;
  std::array<std::unique_ptr<hw::SharedMemory>, 4> shared_;
  std::array<std::unique_ptr<alg::MultiBitTrie>, 4> mbt_;
  std::array<std::unique_ptr<alg::BinarySearchTree>, 4> bst_;
  std::array<std::unique_ptr<alg::RangeVectorHash>, 4> rvh_;
  std::unique_ptr<alg::PortRegisterFile> sport_regs_;
  std::unique_ptr<alg::PortRegisterFile> dport_regs_;
  std::unique_ptr<alg::ProtocolLut> proto_lut_;
  std::unique_ptr<RuleFilter> rule_filter_;

  hw::UpdateBus bus_;
  std::map<RuleId, InstalledRule> installed_;
  std::unordered_map<u64, RuleId> match_index_;  // fingerprint -> rule
};

}  // namespace pclass::core
